// End-to-end tests for the streaming-update subsystem: ModelUpdater
// fold-in semantics, the service's epoch barrier, targeted cache
// invalidation (touched entries evicted, everything else provably still
// warm), and the replay-determinism contract — a fixed request/update
// interleave must reproduce bit-identically at any thread count.

#include "serve/model_update.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "data/synthetic.h"
#include "models/gcn.h"
#include "models/mf.h"
#include "obs/metrics.h"
#include "sampling/ground_set_builder.h"
#include "serve/service.h"

namespace lkpdpp {
namespace {

// A fresh world per test — NOT a shared singleton like serve_test's:
// the updater MUTATES the model and kernel, and the replay tests need
// identical starting states for every run.
struct StreamWorld {
  Dataset dataset;
  std::unique_ptr<MfModel> model;
  std::unique_ptr<DiversityKernel> diversity;
};

StreamWorld MakeWorld() {
  SyntheticConfig cfg;
  cfg.name = "stream-world";
  cfg.num_users = 60;
  cfg.num_items = 80;
  cfg.num_categories = 10;
  cfg.num_events = 6000;
  cfg.min_interactions = 8;
  cfg.seed = 321;
  auto ds = GenerateSyntheticDataset(cfg);
  ds.status().CheckOK();
  StreamWorld w{std::move(ds).ValueOrDie(), nullptr, nullptr};
  w.diversity = std::make_unique<DiversityKernel>(
      DiversityKernel::Random(w.dataset.num_items(), 8, /*seed=*/13));
  MfModel::Config mcfg;
  mcfg.embedding_dim = 8;
  mcfg.seed = 7;
  w.model = std::make_unique<MfModel>(w.dataset.num_users(),
                                      w.dataset.num_items(), mcfg);
  return w;
}

ServeConfig BaseServeConfig(ServeMode mode) {
  ServeConfig config;
  config.mode = mode;
  config.top_k = 5;
  config.pool_size = 20;
  config.cache_capacity = 512;
  config.seed = 4321;
  return config;
}

// A fixed, dataset-derived event stream: anchors are recorded train
// positives, so the kernel side is usually feasible.
std::vector<InteractionEvent> EventScript(const Dataset& ds, int count) {
  std::vector<InteractionEvent> events;
  events.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int user = (3 * i + 1) % ds.num_users();
    const std::vector<int>& pos = ds.TrainItems(user);
    const int item =
        pos.empty() ? 0 : pos[static_cast<size_t>(i) % pos.size()];
    events.push_back(InteractionEvent{user, item});
  }
  return events;
}

TEST(ModelUpdaterTest, CreateValidatesConfigAndModelShape) {
  StreamWorld w = MakeWorld();
  auto service = RecommendationService::Create(
      &w.dataset, w.model.get(), w.diversity.get(), nullptr,
      BaseServeConfig(ServeMode::kMapRerank));
  ASSERT_TRUE(service.ok());
  RecommendationService* svc = service->get();
  const UpdateConfig good;
  EXPECT_TRUE(ModelUpdater::Create(&w.dataset, w.model.get(),
                                   w.diversity.get(), svc, good)
                  .ok());
  UpdateConfig bad = good;
  bad.mf_learning_rate = -1.0;
  EXPECT_FALSE(ModelUpdater::Create(&w.dataset, w.model.get(),
                                    w.diversity.get(), svc, bad)
                   .ok());
  bad = good;
  bad.negatives_per_event = 0;
  EXPECT_FALSE(ModelUpdater::Create(&w.dataset, w.model.get(),
                                    w.diversity.get(), svc, bad)
                   .ok());
  bad = good;
  bad.max_batch_events = 0;
  EXPECT_FALSE(ModelUpdater::Create(&w.dataset, w.model.get(),
                                    w.diversity.get(), svc, bad)
                   .ok());
  bad = good;
  bad.kernel_set_size = w.diversity->rank() + 1;
  EXPECT_FALSE(ModelUpdater::Create(&w.dataset, w.model.get(),
                                    w.diversity.get(), svc, bad)
                   .ok());
  // ...but the kernel knobs are ignored when the kernel side is off.
  bad.update_kernel = false;
  EXPECT_TRUE(ModelUpdater::Create(&w.dataset, w.model.get(),
                                   w.diversity.get(), svc, bad)
                  .ok());
  // Catalog mismatch between kernel and dataset.
  DiversityKernel wrong =
      DiversityKernel::Random(w.dataset.num_items() + 1, 8, /*seed=*/1);
  EXPECT_FALSE(
      ModelUpdater::Create(&w.dataset, w.model.get(), &wrong, svc, good)
          .ok());
  // Null service.
  EXPECT_FALSE(ModelUpdater::Create(&w.dataset, w.model.get(),
                                    w.diversity.get(), nullptr, good)
                   .ok());
}

TEST(ModelUpdaterTest, RejectsSharedPrefixModels) {
  // GCN spreads one interaction's gradient over the whole graph: the
  // row-sparse fold-in contract cannot hold, so Create must refuse.
  StreamWorld w = MakeWorld();
  auto service = RecommendationService::Create(
      &w.dataset, w.model.get(), w.diversity.get(), nullptr,
      BaseServeConfig(ServeMode::kMapRerank));
  ASSERT_TRUE(service.ok());
  GcnModel::Config gcfg;
  gcfg.embedding_dim = 8;
  auto gcn = GcnModel::Create(w.dataset, gcfg);
  ASSERT_TRUE(gcn.ok());
  EXPECT_FALSE(ModelUpdater::Create(&w.dataset, gcn->get(),
                                    w.diversity.get(), service->get(),
                                    UpdateConfig{})
                   .ok());
}

TEST(ModelUpdaterTest, EmptyQueueIsANoOp) {
  StreamWorld w = MakeWorld();
  auto service = RecommendationService::Create(
      &w.dataset, w.model.get(), w.diversity.get(), nullptr,
      BaseServeConfig(ServeMode::kMapRerank));
  ASSERT_TRUE(service.ok());
  auto updater = ModelUpdater::Create(&w.dataset, w.model.get(),
                                      w.diversity.get(), service->get(),
                                      UpdateConfig{});
  ASSERT_TRUE(updater.ok());
  EXPECT_EQ((*updater)->pending(), 0);
  auto result = (*updater)->ApplyPending();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->events_applied, 0);
  EXPECT_EQ(result->kernel_pairs, 0);
  EXPECT_EQ(result->model_version, 0u);
  EXPECT_TRUE(result->touched_users.empty());
  EXPECT_TRUE(result->touched_items.empty());
  EXPECT_EQ((*service)->model_version(), 0u);  // No epoch published.
}

TEST(ModelUpdaterTest, RejectsOutOfCatalogEvents) {
  StreamWorld w = MakeWorld();
  auto service = RecommendationService::Create(
      &w.dataset, w.model.get(), w.diversity.get(), nullptr,
      BaseServeConfig(ServeMode::kMapRerank));
  ASSERT_TRUE(service.ok());
  auto updater = ModelUpdater::Create(&w.dataset, w.model.get(),
                                      w.diversity.get(), service->get(),
                                      UpdateConfig{});
  ASSERT_TRUE(updater.ok());
  (*updater)->Enqueue(InteractionEvent{0, w.dataset.num_items()});
  EXPECT_FALSE((*updater)->ApplyPending().ok());
  EXPECT_EQ((*service)->model_version(), 0u);  // Nothing was published.
}

TEST(ModelUpdaterTest, ApplyAdvancesVersionGaugeAndBoundsBatches) {
  StreamWorld w = MakeWorld();
  auto service = RecommendationService::Create(
      &w.dataset, w.model.get(), w.diversity.get(), nullptr,
      BaseServeConfig(ServeMode::kMapRerank));
  ASSERT_TRUE(service.ok());
  RecommendationService* svc = service->get();
  UpdateConfig ucfg;
  ucfg.max_batch_events = 4;
  auto updater = ModelUpdater::Create(&w.dataset, w.model.get(),
                                      w.diversity.get(), svc, ucfg);
  ASSERT_TRUE(updater.ok());
  for (const InteractionEvent& ev : EventScript(w.dataset, 6)) {
    (*updater)->Enqueue(ev);
  }
  EXPECT_EQ((*updater)->pending(), 6);

  auto first = (*updater)->ApplyPending();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // The batch bound caps how long the serving stall can last.
  EXPECT_EQ((*updater)->pending(), 2);
  EXPECT_EQ(first->events_applied + first->events_skipped, 4);
  EXPECT_GT(first->events_applied, 0);
  EXPECT_EQ(first->model_version, 1u);
  EXPECT_EQ(svc->model_version(), 1u);
  obs::Gauge* version_gauge =
      obs::MetricsRegistry::Global().GetGauge("lkp_model_version");
  EXPECT_EQ(version_gauge->Value(), 1.0);
  EXPECT_GE(first->max_staleness_ms, 0.0);
  // Applied events moved real rows: the result names them.
  EXPECT_FALSE(first->touched_users.empty());
  EXPECT_FALSE(first->touched_items.empty());

  auto second = (*updater)->ApplyPending();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*updater)->pending(), 0);
  EXPECT_EQ(second->model_version, 2u);
  EXPECT_EQ(version_gauge->Value(), 2.0);
}

// The acceptance-criteria test: one event's update must evict exactly
// the entries whose inputs changed, and every untouched entry must
// still be WARM (proven by cache hits on re-serve, not just counters).
TEST(ModelUpdaterTest, TargetedInvalidationKeepsUntouchedEntriesWarm) {
  StreamWorld w = MakeWorld();
  const int num_users = w.dataset.num_users();
  ServeConfig scfg = BaseServeConfig(ServeMode::kMapRerank);
  auto service = RecommendationService::Create(
      &w.dataset, w.model.get(), w.diversity.get(), nullptr, scfg);
  ASSERT_TRUE(service.ok());
  RecommendationService* svc = service->get();

  // Warm one entry per user, and snapshot every pre-update pool.
  std::vector<RecRequest> all;
  for (int u = 0; u < num_users; ++u) all.push_back(RecRequest{u});
  ASSERT_TRUE(svc->HandleBatch(all).ok());
  ASSERT_EQ(svc->cache().size(), num_users);
  std::vector<std::vector<int>> old_pools(static_cast<size_t>(num_users));
  for (int u = 0; u < num_users; ++u) {
    old_pools[static_cast<size_t>(u)] = GroundSetBuilder::BuildServingPool(
        w.dataset, u, w.model->ScoreAllItems(u), scfg.pool_size);
  }

  // One MF-only event with a tiny step (keeps most pools stable).
  UpdateConfig ucfg;
  ucfg.mf_learning_rate = 0.01;
  ucfg.update_kernel = false;
  ucfg.negatives_per_event = 1;
  auto updater = ModelUpdater::Create(&w.dataset, w.model.get(),
                                      w.diversity.get(), svc, ucfg);
  ASSERT_TRUE(updater.ok());
  const InteractionEvent ev{3, w.dataset.TrainItems(3)[0]};
  (*updater)->Enqueue(ev);
  auto result = (*updater)->ApplyPending();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->events_applied, 1);
  ASSERT_EQ(result->touched_users, std::vector<int>{ev.user});
  ASSERT_EQ(result->touched_items.size(), 2u);  // Positive + 1 negative.
  EXPECT_EQ(result->touched_items[0], ev.item);

  // Expected evictions, derived from the OLD ground sets: the event
  // user's entry plus every entry whose pool contains a touched item.
  auto touches = [&](const std::vector<int>& pool) {
    for (const int item : result->touched_items) {
      if (std::find(pool.begin(), pool.end(), item) != pool.end()) {
        return true;
      }
    }
    return false;
  };
  long expected_evicted = 0;
  std::vector<bool> evicted(static_cast<size_t>(num_users), false);
  for (int u = 0; u < num_users; ++u) {
    evicted[static_cast<size_t>(u)] =
        u == ev.user || touches(old_pools[static_cast<size_t>(u)]);
    if (evicted[static_cast<size_t>(u)]) ++expected_evicted;
  }
  EXPECT_EQ(result->invalidated_entries, expected_evicted);
  EXPECT_EQ(svc->cache().invalidations(), expected_evicted);
  EXPECT_EQ(svc->cache().size(), num_users - expected_evicted);
  long shard_sum = 0;
  for (long s : svc->cache().InvalidationsByShard()) shard_sum += s;
  EXPECT_EQ(shard_sum, svc->cache().invalidations());

  // Re-serve everyone against the updated model. An entry is warm iff
  // it survived invalidation AND its pool did not drift (drift changes
  // the key's hash — a rebuild, not a stale serve).
  auto again = svc->HandleBatch(all);
  ASSERT_TRUE(again.ok());
  int warm = 0;
  for (int u = 0; u < num_users; ++u) {
    const std::vector<int> new_pool = GroundSetBuilder::BuildServingPool(
        w.dataset, u, w.model->ScoreAllItems(u), scfg.pool_size);
    const bool expect_hit = !evicted[static_cast<size_t>(u)] &&
                            new_pool == old_pools[static_cast<size_t>(u)];
    EXPECT_EQ((*again)[static_cast<size_t>(u)].cache_hit, expect_hit)
        << "user " << u;
    if (expect_hit) ++warm;
  }
  EXPECT_FALSE((*again)[static_cast<size_t>(ev.user)].cache_hit);
  // The warm set must be non-trivial or the test proves nothing.
  EXPECT_GT(warm, 0);
}

// The replay-determinism acceptance criterion: a fixed request/update
// interleave replays bit-identically at 1, 4, and 8 threads — sampled
// item sets, touched-row lists, versions, and the summed BPR loss.
struct RunLog {
  std::vector<std::vector<int>> responses;
  std::vector<std::vector<int>> touched_users;
  std::vector<std::vector<int>> touched_items;
  std::vector<double> losses;
  std::vector<uint64_t> versions;
};

RunLog RunScriptedInterleave(int threads) {
  StreamWorld w = MakeWorld();
  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
  auto service = RecommendationService::Create(
      &w.dataset, w.model.get(), w.diversity.get(), pool.get(),
      BaseServeConfig(ServeMode::kSample));
  service.status().CheckOK();
  UpdateConfig ucfg;
  ucfg.pool = pool.get();
  auto updater = ModelUpdater::Create(&w.dataset, w.model.get(),
                                      w.diversity.get(), service->get(),
                                      ucfg);
  updater.status().CheckOK();
  const std::vector<InteractionEvent> script = EventScript(w.dataset, 48);
  RunLog log;
  size_t next_event = 0;
  for (int round = 0; round < 6; ++round) {
    std::vector<RecRequest> batch;
    for (int i = 0; i < 20; ++i) {
      batch.push_back(RecRequest{(round * 7 + i) % w.dataset.num_users()});
    }
    auto responses = (*service)->HandleBatch(batch);
    responses.status().CheckOK();
    for (const RecResponse& r : *responses) {
      log.responses.push_back(r.items);
    }
    for (int i = 0; i < 8; ++i) {
      (*updater)->Enqueue(script[next_event++]);
    }
    auto result = (*updater)->ApplyPending();
    result.status().CheckOK();
    log.touched_users.push_back(result->touched_users);
    log.touched_items.push_back(result->touched_items);
    log.losses.push_back(result->loss_sum);
    log.versions.push_back(result->model_version);
  }
  return log;
}

TEST(ModelUpdaterTest, InterleaveReplaysBitIdenticallyAcrossThreadCounts) {
  const RunLog serial = RunScriptedInterleave(1);
  ASSERT_EQ(serial.versions.back(), 6u);
  for (const int threads : {4, 8}) {
    const RunLog parallel = RunScriptedInterleave(threads);
    EXPECT_EQ(parallel.responses, serial.responses)
        << threads << " threads: sampled sets diverged";
    EXPECT_EQ(parallel.touched_users, serial.touched_users) << threads;
    EXPECT_EQ(parallel.touched_items, serial.touched_items) << threads;
    EXPECT_EQ(parallel.versions, serial.versions) << threads;
    ASSERT_EQ(parallel.losses.size(), serial.losses.size());
    for (size_t i = 0; i < serial.losses.size(); ++i) {
      // Bit-identical, not approximately equal: the reductions are
      // order-fixed by contract.
      EXPECT_EQ(parallel.losses[i], serial.losses[i])
          << threads << " threads, round " << i;
    }
  }
}

// TSan-focused: concurrent async submitters racing one update driver
// over a shared ThreadPool and a churning cache. The epoch barrier must
// keep this free of races and deadlocks.
TEST(ModelUpdaterTest, ConcurrentServingAndUpdatesStress) {
  StreamWorld w = MakeWorld();
  ThreadPool pool(4);
  ServeConfig scfg = BaseServeConfig(ServeMode::kSample);
  scfg.cache_capacity = 32;  // Eviction churn on top of invalidation.
  scfg.max_batch_size = 8;
  scfg.batch_deadline_ms = 0.1;
  auto service = RecommendationService::Create(
      &w.dataset, w.model.get(), w.diversity.get(), &pool, scfg);
  ASSERT_TRUE(service.ok());
  RecommendationService* svc = service->get();
  UpdateConfig ucfg;
  ucfg.pool = &pool;  // Shared with serving: must not deadlock.
  ucfg.max_batch_events = 16;
  auto updater = ModelUpdater::Create(&w.dataset, w.model.get(),
                                      w.diversity.get(), svc, ucfg);
  ASSERT_TRUE(updater.ok());
  const std::vector<InteractionEvent> script = EventScript(w.dataset, 60);
  std::atomic<int> failures{0};
  std::vector<std::thread> submitters;
  for (int c = 0; c < 3; ++c) {
    submitters.emplace_back([&, c] {
      std::vector<std::future<Result<RecResponse>>> futures;
      for (int i = 0; i < 40; ++i) {
        futures.push_back(svc->SubmitAsync(
            RecRequest{(c * 13 + i) % w.dataset.num_users()}));
      }
      for (auto& f : futures) {
        Result<RecResponse> resp = f.get();
        if (!resp.ok() ||
            static_cast<int>(resp->items.size()) != scfg.top_k) {
          failures.fetch_add(1);
        }
      }
    });
  }
  // The single update driver the contract allows.
  std::thread driver([&] {
    size_t next = 0;
    for (int round = 0; round < 10; ++round) {
      for (int i = 0; i < 6; ++i) {
        (*updater)->Enqueue(script[next % script.size()]);
        ++next;
      }
      if (!(*updater)->ApplyPending().ok()) failures.fetch_add(1);
    }
  });
  for (auto& t : submitters) t.join();
  driver.join();
  svc->Flush();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(svc->model_version(), 10u);
  const ServeStats stats = svc->Snapshot();
  EXPECT_EQ(stats.requests, 3 * 40);
}

}  // namespace
}  // namespace lkpdpp
