// Training-determinism harness: the data-parallel minibatch trainer
// must be bit-identical to the serial path at every thread count, for
// every backbone shape (direct-param MF, boundary-prefix GCN), for the
// diversity-kernel pre-trainer, and across the edge cases that change
// how batches shard (ragged last batch, batch-of-1, more workers than
// instances). Runs under the TSan CI job via the `thread` label.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "data/synthetic.h"
#include "exp/runner.h"
#include "kernels/diversity_kernel.h"
#include "opt/parallel_batch.h"

namespace lkpdpp {
namespace {

Dataset MakeDataset(uint64_t seed = 71) {
  SyntheticConfig cfg;
  cfg.num_users = 50;
  cfg.num_items = 70;
  cfg.num_categories = 8;
  cfg.num_events = 6000;
  cfg.seed = seed;
  auto ds = GenerateSyntheticDataset(cfg);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).ValueOrDie();
}

ExperimentSpec SmallSpec(ModelKind model) {
  ExperimentSpec spec;
  spec.model = model;
  spec.criterion = CriterionKind::kLkp;
  spec.lkp_mode = LkpMode::kPositiveOnly;
  spec.k = 3;
  spec.n = 3;
  spec.embedding_dim = 8;
  spec.epochs = 2;
  spec.eval_every = 1;
  spec.patience = 0;
  spec.batch_size = 32;
  spec.learning_rate = 0.05;
  return spec;
}

void ExpectBitEqual(const Matrix& a, const Matrix& b,
                    const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      ASSERT_EQ(a(r, c), b(r, c)) << what << " differs at (" << r << ","
                                  << c << ")";
    }
  }
}

struct TrainedRun {
  ExperimentResult result;
  std::vector<Matrix> params;
};

// Trains `spec` on a pool of `threads` workers (0 = no pool at all, the
// plain serial path) and captures the result plus final param values.
TrainedRun TrainWith(const Dataset& dataset, const ExperimentSpec& spec,
                     int threads) {
  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
  ExperimentRunner runner(&dataset);
  runner.SetThreadPool(pool.get());
  std::unique_ptr<RecModel> model;
  auto result = runner.RunAndKeepModel(spec, &model);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  TrainedRun out;
  out.result = *result;
  for (ad::Param* p : model->Params()) out.params.push_back(p->value);
  return out;
}

void ExpectRunsBitEqual(const TrainedRun& a, const TrainedRun& b,
                        const std::string& what) {
  ASSERT_EQ(a.params.size(), b.params.size());
  for (size_t i = 0; i < a.params.size(); ++i) {
    ExpectBitEqual(a.params[i], b.params[i],
                   what + " param " + std::to_string(i));
  }
  EXPECT_EQ(a.result.final_train_loss, b.result.final_train_loss) << what;
  EXPECT_EQ(a.result.best_epoch, b.result.best_epoch) << what;
  ASSERT_EQ(a.result.validation_history.size(),
            b.result.validation_history.size())
      << what;
  for (size_t i = 0; i < a.result.validation_history.size(); ++i) {
    EXPECT_EQ(a.result.validation_history[i], b.result.validation_history[i])
        << what << " validation round " << i;
  }
  for (const auto& [n, metrics] : a.result.test_metrics) {
    const auto& other = b.result.test_metrics.at(n);
    EXPECT_EQ(metrics.ndcg, other.ndcg) << what << " N=" << n;
    EXPECT_EQ(metrics.recall, other.recall) << what << " N=" << n;
    EXPECT_EQ(metrics.category_coverage, other.category_coverage)
        << what << " N=" << n;
  }
}

TEST(TrainParallelTest, MfBitIdenticalAcrossThreadCounts) {
  Dataset ds = MakeDataset();
  const ExperimentSpec spec = SmallSpec(ModelKind::kMf);
  const TrainedRun serial = TrainWith(ds, spec, /*threads=*/0);
  for (int threads : {1, 2, 4, 8}) {
    ExpectRunsBitEqual(serial, TrainWith(ds, spec, threads),
                       "MF threads=" + std::to_string(threads));
  }
}

TEST(TrainParallelTest, GcnPrefixBitIdenticalAcrossThreadCounts) {
  // GCN exercises the boundary-param path: shared propagation prefix,
  // reduced boundary gradient, Finish() backprop.
  Dataset ds = MakeDataset(13);
  const ExperimentSpec spec = SmallSpec(ModelKind::kGcn);
  const TrainedRun serial = TrainWith(ds, spec, /*threads=*/0);
  for (int threads : {2, 8}) {
    ExpectRunsBitEqual(serial, TrainWith(ds, spec, threads),
                       "GCN threads=" + std::to_string(threads));
  }
}

TEST(TrainParallelTest, RaggedLastBatchStaysDeterministic) {
  // A batch size that never divides the epoch evenly: the trailing
  // ragged batch must shard and reduce like any other.
  Dataset ds = MakeDataset(29);
  ExperimentSpec spec = SmallSpec(ModelKind::kMf);
  spec.batch_size = 7;
  const TrainedRun serial = TrainWith(ds, spec, /*threads=*/0);
  for (int threads : {2, 8}) {
    ExpectRunsBitEqual(serial, TrainWith(ds, spec, threads),
                       "ragged threads=" + std::to_string(threads));
  }
}

TEST(TrainParallelTest, BatchOfOneStaysDeterministic) {
  // Degenerate minibatch: every batch is a single instance, so most
  // workers idle on every ParallelFor — the empty-shard path.
  Dataset ds = MakeDataset(31);
  ExperimentSpec spec = SmallSpec(ModelKind::kMf);
  spec.batch_size = 1;
  spec.epochs = 1;
  const TrainedRun serial = TrainWith(ds, spec, /*threads=*/0);
  ExpectRunsBitEqual(serial, TrainWith(ds, spec, 4), "batch-of-1");
}

TEST(TrainParallelTest, MoreWorkersThanInstances) {
  // Direct harness check: 8 workers, 3 instances — five workers get an
  // empty shard, the reduction still runs 0..2 in order.
  ThreadPool pool(8);
  ad::Param p("p", Matrix{{1.0, 2.0, 3.0}});
  p.ZeroGrad();
  auto build = [&](int i, ad::Graph* g) -> Result<InstanceGrad> {
    InstanceGrad grad;
    ad::Tensor t = g->Scale(g->Parameter(&p), static_cast<double>(i + 1));
    grad.seeds.emplace_back(t, Matrix(1, 3, 1.0));
    grad.loss = static_cast<double>(i);
    return grad;
  };
  auto summary = AccumulateBatchGradients(3, &pool, build);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->contributed, 3);
  EXPECT_DOUBLE_EQ(summary->loss_sum, 3.0);
  // d/dp sum_i (i+1)*p = 1 + 2 + 3 = 6 in every coordinate.
  for (int c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(p.grad(0, c), 6.0);
}

TEST(TrainParallelTest, EmptyBatchIsANoOp) {
  ad::Param p("p", Matrix{{1.0}});
  p.ZeroGrad();
  auto build = [&](int, ad::Graph*) -> Result<InstanceGrad> {
    ADD_FAILURE() << "build must not run for an empty batch";
    return InstanceGrad{};
  };
  auto summary = AccumulateBatchGradients(0, nullptr, build);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->contributed, 0);
  EXPECT_DOUBLE_EQ(p.grad(0, 0), 0.0);
}

TEST(TrainParallelTest, DiversityKernelBitIdenticalAcrossThreadCounts) {
  Dataset ds = MakeDataset(47);
  DiversityKernel::TrainConfig cfg;
  cfg.rank = 10;
  cfg.epochs = 2;
  cfg.pairs_per_epoch = 90;  // Not a multiple of batch_size: ragged.
  cfg.set_size = 4;
  cfg.batch_size = 16;

  auto serial = DiversityKernel::Train(ds, cfg);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    DiversityKernel::TrainConfig pooled = cfg;
    pooled.pool = &pool;
    auto parallel = DiversityKernel::Train(ds, pooled);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectBitEqual(serial->factors(), parallel->factors(),
                   "diversity kernel threads=" + std::to_string(threads));
  }
}

TEST(TrainParallelTest, DiversityKernelBatchOfOne) {
  // batch_size 1 degenerates to the classic per-pair SGD schedule and
  // must still be thread-count invariant.
  Dataset ds = MakeDataset(53);
  DiversityKernel::TrainConfig cfg;
  cfg.rank = 8;
  cfg.epochs = 1;
  cfg.pairs_per_epoch = 40;
  cfg.set_size = 3;
  cfg.batch_size = 1;
  auto serial = DiversityKernel::Train(ds, cfg);
  ASSERT_TRUE(serial.ok());
  ThreadPool pool(4);
  DiversityKernel::TrainConfig pooled = cfg;
  pooled.pool = &pool;
  auto parallel = DiversityKernel::Train(ds, pooled);
  ASSERT_TRUE(parallel.ok());
  ExpectBitEqual(serial->factors(), parallel->factors(), "batch-of-1 kernel");
}

TEST(TrainParallelTest, DiversityKernelRejectsBadBatchSize) {
  Dataset ds = MakeDataset(59);
  DiversityKernel::TrainConfig cfg;
  cfg.batch_size = 0;
  EXPECT_EQ(DiversityKernel::Train(ds, cfg).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace lkpdpp
