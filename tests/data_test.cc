// Tests for dataset preparation, the synthetic generator, and CSV IO.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "data/dataset.h"
#include "data/io.h"
#include "data/synthetic.h"

namespace lkpdpp {
namespace {

std::vector<RatingEvent> DenseRatings(int users, int items_per_user,
                                      double rating = 5.0) {
  std::vector<RatingEvent> events;
  for (int u = 0; u < users; ++u) {
    for (int i = 0; i < items_per_user; ++i) {
      events.push_back({u, i, rating, i});
    }
  }
  return events;
}

CategoryTable UniformCategories(int items, int categories) {
  CategoryTable t;
  t.num_categories = categories;
  t.item_categories.resize(items);
  for (int i = 0; i < items; ++i) {
    t.item_categories[i] = {i % categories};
  }
  return t;
}

TEST(DatasetTest, BinarizationDropsLowRatings) {
  auto events = DenseRatings(15, 20, 5.0);
  // Add sub-threshold ratings on otherwise unseen items: must vanish.
  for (int u = 0; u < 15; ++u) events.push_back({u, 30 + u, 4.0, 99});
  auto ds = Dataset::FromRatings(events, UniformCategories(60, 4), "t");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_items(), 20);  // Items 30+ filtered with their 4.0s.
}

TEST(DatasetTest, MinInteractionFilterRemovesColdUsers) {
  auto events = DenseRatings(10, 20);
  // One cold user with 3 interactions.
  for (int i = 0; i < 3; ++i) events.push_back({99, i, 5.0, i});
  auto ds = Dataset::FromRatings(events, UniformCategories(20, 4), "t",
                                 5.0, /*min_interactions=*/10);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_users(), 10);
}

TEST(DatasetTest, SplitFractionsRespected) {
  auto ds = Dataset::FromRatings(DenseRatings(12, 20),
                                 UniformCategories(20, 4), "t");
  ASSERT_TRUE(ds.ok());
  for (int u = 0; u < ds->num_users(); ++u) {
    EXPECT_EQ(ds->TrainItems(u).size(), 14u);  // 70% of 20.
    EXPECT_EQ(ds->ValItems(u).size(), 2u);     // 10%.
    EXPECT_EQ(ds->TestItems(u).size(), 4u);    // Remainder.
  }
}

TEST(DatasetTest, ChronologicalOrderPreserved) {
  std::vector<RatingEvent> events;
  // User 0 rates items in reverse id order; train must follow timestamps.
  for (int i = 0; i < 12; ++i) events.push_back({0, 11 - i, 5.0, i});
  for (int u = 1; u < 12; ++u) {
    for (int i = 0; i < 12; ++i) events.push_back({u, i, 5.0, i});
  }
  auto ds = Dataset::FromRatings(events, UniformCategories(12, 3), "t");
  ASSERT_TRUE(ds.ok());
  const auto& train = ds->TrainItems(0);
  for (size_t i = 1; i < train.size(); ++i) {
    EXPECT_GT(train[i - 1], train[i]);  // Reverse-id = timestamp order.
  }
}

TEST(DatasetTest, DuplicateInteractionsDeduplicated) {
  std::vector<RatingEvent> events;
  for (int u = 0; u < 10; ++u) {
    for (int i = 0; i < 12; ++i) {
      events.push_back({u, i, 5.0, i});
      events.push_back({u, i, 5.0, 100 + i});  // Re-rating, same item.
    }
  }
  auto ds = Dataset::FromRatings(events, UniformCategories(12, 3), "t");
  ASSERT_TRUE(ds.ok());
  for (int u = 0; u < ds->num_users(); ++u) {
    std::set<int> all;
    for (int i : ds->TrainItems(u)) all.insert(i);
    for (int i : ds->ValItems(u)) all.insert(i);
    for (int i : ds->TestItems(u)) all.insert(i);
    EXPECT_EQ(all.size(), 12u);
  }
}

TEST(DatasetTest, IsObservedCoversTrainAndValOnly) {
  auto ds = Dataset::FromRatings(DenseRatings(12, 20),
                                 UniformCategories(20, 4), "t");
  ASSERT_TRUE(ds.ok());
  const int u = 0;
  for (int i : ds->TrainItems(u)) EXPECT_TRUE(ds->IsObserved(u, i));
  for (int i : ds->ValItems(u)) EXPECT_TRUE(ds->IsObserved(u, i));
  for (int i : ds->TestItems(u)) EXPECT_FALSE(ds->IsObserved(u, i));
}

TEST(DatasetTest, InvalidSplitRejected) {
  auto events = DenseRatings(12, 20);
  CategoryTable cats = UniformCategories(20, 4);
  EXPECT_FALSE(Dataset::FromRatings(events, cats, "t", 5.0, 10, 0.9, 0.2)
                   .ok());
  EXPECT_FALSE(Dataset::FromRatings(events, cats, "t", 5.0, 10, 0.0, 0.1)
                   .ok());
}

TEST(DatasetTest, EmptyAfterFilteringRejected) {
  auto events = DenseRatings(3, 4);  // Only 4 interactions per user.
  EXPECT_EQ(Dataset::FromRatings(events, UniformCategories(4, 2), "t", 5.0,
                                 /*min_interactions=*/10)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(DatasetTest, DensityMatchesCounts) {
  auto ds = Dataset::FromRatings(DenseRatings(12, 20),
                                 UniformCategories(20, 4), "t");
  ASSERT_TRUE(ds.ok());
  EXPECT_NEAR(ds->Density(),
              static_cast<double>(ds->num_interactions()) /
                  (ds->num_users() * ds->num_items()),
              1e-12);
}

TEST(DatasetTest, EvaluableUsersHaveTrainAndTest) {
  auto ds = Dataset::FromRatings(DenseRatings(12, 15),
                                 UniformCategories(15, 3), "t");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->EvaluableUsers().size(), 12u);
}

TEST(SyntheticTest, GeneratesNonEmptyDataset) {
  SyntheticConfig cfg;
  cfg.num_users = 50;
  cfg.num_items = 60;
  cfg.num_categories = 8;
  cfg.num_events = 5000;
  auto ds = GenerateSyntheticDataset(cfg);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_GT(ds->num_users(), 10);
  EXPECT_GT(ds->num_items(), 10);
  EXPECT_GT(ds->num_interactions(), 200);
  EXPECT_EQ(ds->num_categories(), 8);
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticConfig cfg;
  cfg.num_users = 40;
  cfg.num_items = 50;
  cfg.num_events = 4000;
  cfg.seed = 7;
  auto a = GenerateSyntheticDataset(cfg);
  auto b = GenerateSyntheticDataset(cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->num_users(), b->num_users());
  EXPECT_EQ(a->num_interactions(), b->num_interactions());
  ASSERT_GT(a->num_users(), 0);
  EXPECT_EQ(a->TrainItems(0), b->TrainItems(0));
}

TEST(SyntheticTest, ItemsCarryCategories) {
  SyntheticConfig cfg;
  cfg.num_users = 40;
  cfg.num_items = 50;
  cfg.num_events = 4000;
  auto ds = GenerateSyntheticDataset(cfg);
  ASSERT_TRUE(ds.ok());
  for (int i = 0; i < ds->num_items(); ++i) {
    EXPECT_GE(ds->ItemCategories(i).size(), 1u);
    for (int c : ds->ItemCategories(i)) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, ds->num_categories());
    }
  }
}

TEST(SyntheticTest, PresetsPreserveSparsityOrdering) {
  // Beauty-like must be sparser than ML-like (Table I shape).
  auto beauty = GenerateSyntheticDataset(BeautyLikeConfig(0.6));
  auto ml = GenerateSyntheticDataset(MlLikeConfig(0.6));
  ASSERT_TRUE(beauty.ok());
  ASSERT_TRUE(ml.ok());
  EXPECT_LT(beauty->Density(), ml->Density());
  EXPECT_GT(beauty->num_categories(), ml->num_categories());
}

TEST(SyntheticTest, RejectsInvalidConfig) {
  SyntheticConfig cfg;
  cfg.num_users = 0;
  EXPECT_FALSE(GenerateSyntheticDataset(cfg).ok());
}

TEST(IoTest, RatingsRoundTrip) {
  const std::string path = "/tmp/lkp_test_ratings.csv";
  std::vector<RatingEvent> events = {
      {0, 1, 5.0, 10}, {0, 2, 3.0, 11}, {4, 1, 4.5, 12}};
  ASSERT_TRUE(SaveRatingsCsv(path, events).ok());
  auto loaded = LoadRatingsCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ((*loaded)[0].user, 0);
  EXPECT_EQ((*loaded)[2].user, 4);
  EXPECT_DOUBLE_EQ((*loaded)[1].rating, 3.0);
  EXPECT_EQ((*loaded)[2].timestamp, 12);
  std::remove(path.c_str());
}

TEST(IoTest, CategoriesRoundTrip) {
  const std::string path = "/tmp/lkp_test_cats.csv";
  CategoryTable t;
  t.num_categories = 5;
  t.item_categories = {{0, 2}, {1}, {}, {4, 3, 0}};
  ASSERT_TRUE(SaveCategoriesCsv(path, t).ok());
  auto loaded = LoadCategoriesCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_categories, 5);
  ASSERT_EQ(loaded->item_categories.size(), 4u);
  EXPECT_EQ(loaded->item_categories[0], (std::vector<int>{0, 2}));
  EXPECT_TRUE(loaded->item_categories[2].empty());
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileFails) {
  EXPECT_EQ(LoadRatingsCsv("/nonexistent/p.csv").status().code(),
            StatusCode::kIOError);
  EXPECT_EQ(LoadCategoriesCsv("/nonexistent/p.csv").status().code(),
            StatusCode::kIOError);
}

TEST(IoTest, MalformedRowReportsLine) {
  const std::string path = "/tmp/lkp_test_bad.csv";
  FILE* f = fopen(path.c_str(), "w");
  fputs("# header\n1,2,5.0,3\nnot,a,row\n", f);
  fclose(f);
  auto loaded = LoadRatingsCsv(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find(":3"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lkpdpp
