// Failure-injection tests: every error path a production deployment can
// hit — singular kernels, exhausted sampling pools, malformed specs —
// must surface as a clean Status, never UB or a crash.

#include <gtest/gtest.h>

#include <cmath>

#include "common/thread_pool.h"
#include "core/kdpp.h"
#include "core/lkp.h"
#include "data/synthetic.h"
#include "exp/probes.h"
#include "exp/runner.h"
#include "kernels/diversity_kernel.h"
#include "opt/optimizer.h"
#include "opt/parallel_batch.h"
#include "sampling/diverse_pairs.h"
#include "sampling/ground_set_builder.h"

namespace lkpdpp {
namespace {

TEST(FailureTest, KdppOnZeroKernel) {
  Matrix zero(4, 4);
  // Rank 0 kernel: no k-subset has mass; must fail, not divide by zero.
  EXPECT_EQ(KDpp::Create(zero, 2).status().code(),
            StatusCode::kNumericalError);
}

TEST(FailureTest, KdppOnNanKernel) {
  Matrix k = Matrix::Identity(3);
  k(1, 1) = std::nan("");
  EXPECT_FALSE(KDpp::Create(k, 2).ok());
}

TEST(FailureTest, KdppOnInfKernel) {
  Matrix k = Matrix::Identity(3);
  k(0, 0) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(KDpp::Create(k, 1).ok());
}

TEST(FailureTest, LkpWithRankDeficientDiversityKernel) {
  // Diversity kernel of rank 1 cannot support k = 3; the criterion must
  // return an error (picked up and skipped by the trainer) rather than
  // returning garbage gradients.
  const int m = 6;
  Matrix rank1(m, m, 1.0);  // All-ones matrix: rank 1.
  LkpCriterion crit(LkpConfig{.mode = LkpMode::kPositiveOnly});
  CriterionInput in;
  in.scores = Vector(m, 0.1);
  in.num_pos = 3;
  in.diversity = &rank1;
  EXPECT_FALSE(crit.Evaluate(in).ok());
}

TEST(FailureTest, LkpSurvivesNearDuplicateItems) {
  // Two nearly identical rows: semi-definite L_{S+}; escalating jitter
  // inside the criterion must rescue the Cholesky.
  const int m = 4;
  Matrix diversity = Matrix::Identity(m);
  diversity(0, 1) = diversity(1, 0) = 1.0 - 1e-12;
  LkpCriterion crit(LkpConfig{.mode = LkpMode::kPositiveOnly});
  CriterionInput in;
  in.scores = Vector(m, 0.0);
  in.num_pos = 2;
  in.diversity = &diversity;
  auto out = crit.Evaluate(in);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(std::isfinite(out->loss));
  EXPECT_TRUE(out->dscore.AllFinite());
}

TEST(FailureTest, GroundSetBuilderSkipsShortHistories) {
  // Users with < k train positives must yield zero instances, silently.
  std::vector<RatingEvent> events;
  for (int u = 0; u < 12; ++u) {
    for (int i = 0; i < 11; ++i) events.push_back({u, i, 5.0, i});
  }
  CategoryTable cats;
  cats.num_categories = 2;
  cats.item_categories.assign(11, {0});
  auto ds = Dataset::FromRatings(events, cats, "t", 5.0, 5);
  ASSERT_TRUE(ds.ok());
  // 70% of 11 = 7 train items; k = 8 > 7.
  GroundSetBuilder builder(&*ds, 8, 2, TargetSelection::kSequential);
  Rng rng(3);
  auto insts = builder.BuildEpoch(&rng);
  ASSERT_TRUE(insts.ok());
  EXPECT_TRUE(insts->empty());
}

TEST(FailureTest, RunnerWithImpossibleKTrainsNothingButEvaluates) {
  SyntheticConfig cfg;
  cfg.num_users = 40;
  cfg.num_items = 60;
  cfg.num_events = 4000;
  cfg.seed = 3;
  auto ds = GenerateSyntheticDataset(cfg);
  ASSERT_TRUE(ds.ok());
  ExperimentRunner runner(&*ds);
  ExperimentSpec spec;
  spec.model = ModelKind::kMf;
  spec.criterion = CriterionKind::kBpr;
  spec.k = 50;  // No user has 50 train positives.
  spec.n = 50;
  spec.epochs = 2;
  spec.eval_every = 1;
  auto result = runner.Run(spec);
  // Training is a no-op but evaluation still returns metrics.
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->final_train_loss, 0.0);
}

TEST(FailureTest, RunnerRejectsNonPositiveKN) {
  SyntheticConfig cfg;
  cfg.num_users = 30;
  cfg.num_items = 40;
  cfg.num_events = 3000;
  auto ds = GenerateSyntheticDataset(cfg);
  ASSERT_TRUE(ds.ok());
  ExperimentRunner runner(&*ds);
  ExperimentSpec spec;
  spec.k = 0;
  EXPECT_FALSE(runner.Run(spec).ok());
}

TEST(FailureTest, DiversePairSamplerOnInfeasibleSetSize) {
  std::vector<RatingEvent> events;
  for (int u = 0; u < 12; ++u) {
    for (int i = 0; i < 11; ++i) events.push_back({u, i, 5.0, i});
  }
  CategoryTable cats;
  cats.num_categories = 2;
  cats.item_categories.assign(11, {0});
  auto ds = Dataset::FromRatings(events, cats, "t", 5.0, 5);
  ASSERT_TRUE(ds.ok());
  // set_size 10 exceeds every user's 7 train positives.
  DiversePairSampler sampler(&*ds, 10);
  Rng rng(5);
  EXPECT_EQ(sampler.SamplePairs(3, &rng).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(FailureTest, DiversityKernelObjectiveOnUntrainable) {
  // Objective() on a kernel whose submatrices are singular must fail
  // cleanly via the jitter-free Cholesky, not crash.
  DiversityKernel k = DiversityKernel::Random(20, 2, 1);  // rank 2 < 5.
  SyntheticConfig cfg;
  cfg.num_users = 30;
  cfg.num_items = 20;
  cfg.num_events = 3000;
  auto ds = GenerateSyntheticDataset(cfg);
  ASSERT_TRUE(ds.ok());
  Rng rng(7);
  auto j = k.Objective(*ds, 5, /*jitter=*/0.0, &rng);
  // Either a clean failure (singular) or a finite value — never UB.
  if (j.ok()) {
    EXPECT_TRUE(std::isfinite(*j));
  }
}

TEST(FailureTest, ProbeOnDatasetWithoutUsableUsers) {
  std::vector<RatingEvent> events;
  for (int u = 0; u < 12; ++u) {
    for (int i = 0; i < 11; ++i) events.push_back({u, i, 5.0, i});
  }
  CategoryTable cats;
  cats.num_categories = 2;
  cats.item_categories.assign(11, {0});
  auto ds = Dataset::FromRatings(events, cats, "t", 5.0, 5);
  ASSERT_TRUE(ds.ok());
  ExperimentRunner runner(&*ds);
  ExperimentSpec spec;
  spec.model = ModelKind::kMf;
  auto model = runner.MakeModel(spec);
  ASSERT_TRUE(model.ok());
  DiversityKernel kernel = DiversityKernel::Random(ds->num_items(), 12, 2);
  Rng rng(9);
  // k = 9 exceeds every user's history: no instances -> clean failure.
  auto probe = ProbeProbabilityByTargetCount(
      model->get(), *ds, kernel, 9, 9, 10, QualityTransform::kExp, &rng);
  EXPECT_EQ(probe.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FailureTest, EvaluateOnCriterionMismatchedScores) {
  // dscore sizing is derived from scores; a zero-length score vector is
  // rejected by every criterion.
  for (auto make : {MakeBceCriterion, MakeBprCriterion,
                    MakeSetRankCriterion}) {
    auto crit = make();
    CriterionInput in;
    in.scores = Vector();
    in.num_pos = 0;
    EXPECT_FALSE(crit->Evaluate(in).ok());
  }
}

TEST(FailureTest, ParallelBatchWorkerNumericalErrorAbortsCleanly) {
  // One worker hits a NumericalError mid-batch: the batch must drain
  // (returning at all proves no deadlock), propagate the error, flush
  // NOTHING into the params, and therefore never reach the optimizer —
  // no partial step.
  ThreadPool pool(4);
  ad::Param p("p", Matrix{{1.0, -1.0}});
  p.ZeroGrad();
  const Matrix before = p.value;

  auto build = [&](int i, ad::Graph* g) -> Result<InstanceGrad> {
    if (i == 9) {
      return Status::NumericalError("injected mid-batch blow-up");
    }
    InstanceGrad grad;
    ad::Tensor t = g->Scale(g->Parameter(&p), 2.0);
    grad.seeds.emplace_back(t, Matrix(1, 2, 1.0));
    grad.loss = 1.0;
    return grad;
  };
  auto summary = AccumulateBatchGradients(32, &pool, build);
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kNumericalError);
  // No gradient from ANY instance leaked into the shared accumulator.
  EXPECT_DOUBLE_EQ(p.grad.FrobeniusNorm(), 0.0);
  // The trainer contract: Step is only reached on OK batches, so the
  // params are exactly where they started.
  SgdOptimizer sgd(Optimizer::Options{});
  if (summary.ok()) (void)sgd.Step({&p});  // Never taken.
  EXPECT_DOUBLE_EQ(p.value(0, 0), before(0, 0));
  EXPECT_DOUBLE_EQ(p.value(0, 1), before(0, 1));
}

TEST(FailureTest, ParallelBatchReportsFirstFailureInInstanceOrder) {
  // Two workers fail with different codes; whichever thread finishes
  // first, the LOWEST instance index must determine the verdict so the
  // error is reproducible at any thread count.
  ThreadPool pool(4);
  ad::Param p("p", Matrix{{1.0}});
  p.ZeroGrad();
  auto build = [&](int i, ad::Graph* g) -> Result<InstanceGrad> {
    if (i == 5) return Status::NumericalError("later failure");
    if (i == 2) return Status::FailedPrecondition("earlier failure");
    InstanceGrad grad;
    ad::Tensor t = g->Scale(g->Parameter(&p), 1.0);
    grad.seeds.emplace_back(t, Matrix(1, 1, 1.0));
    return grad;
  };
  for (int trial = 0; trial < 8; ++trial) {
    auto summary = AccumulateBatchGradients(16, &pool, build);
    ASSERT_FALSE(summary.ok());
    EXPECT_EQ(summary.status().code(), StatusCode::kFailedPrecondition)
        << "trial " << trial;
  }
  EXPECT_DOUBLE_EQ(p.grad.FrobeniusNorm(), 0.0);
}

TEST(FailureTest, ParallelBatchBackwardFailureAbortsWithoutFlush) {
  // A bad seed shape makes Graph::Backward itself fail inside a worker;
  // same contract as a criterion failure: error out, nothing flushed.
  ThreadPool pool(2);
  ad::Param p("p", Matrix{{1.0, 2.0}});
  p.ZeroGrad();
  auto build = [&](int i, ad::Graph* g) -> Result<InstanceGrad> {
    InstanceGrad grad;
    ad::Tensor t = g->Scale(g->Parameter(&p), 2.0);
    // Instance 3 seeds with a mismatched shape.
    grad.seeds.emplace_back(
        t, i == 3 ? Matrix(1, 1, 1.0) : Matrix(1, 2, 1.0));
    return grad;
  };
  auto summary = AccumulateBatchGradients(6, &pool, build);
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kInvalidArgument);
  EXPECT_DOUBLE_EQ(p.grad.FrobeniusNorm(), 0.0);
}

TEST(FailureTest, DiversityTrainerSingularPairAbortsWithoutPartialStep) {
  // Rank-deficient factors (rank < set_size) make every pair's K_S
  // singular: the minibatch trainer must fail with the pool attached,
  // without deadlock, identically to the serial path.
  std::vector<RatingEvent> events;
  for (int u = 0; u < 12; ++u) {
    for (int i = 0; i < 11; ++i) events.push_back({u, i, 5.0, i});
  }
  CategoryTable cats;
  cats.num_categories = 2;
  cats.item_categories.assign(11, {0});
  auto ds = Dataset::FromRatings(events, cats, "t", 5.0, 5);
  ASSERT_TRUE(ds.ok());
  DiversityKernel::TrainConfig cfg;
  cfg.rank = 6;
  cfg.set_size = 6;  // set_size == rank passes validation...
  cfg.jitter = 0.0;  // ...but jitter-free K_S of duplicate rows fails.
  cfg.epochs = 1;
  cfg.pairs_per_epoch = 8;
  cfg.batch_size = 4;
  auto serial = DiversityKernel::Train(*ds, cfg);
  ThreadPool pool(4);
  cfg.pool = &pool;
  auto parallel = DiversityKernel::Train(*ds, cfg);
  // Either both succeed or both fail with the same code — the pool must
  // not change the verdict (here the items repeat categories, so the
  // unjittered Cholesky is expected to fail; accept either as long as
  // they agree).
  EXPECT_EQ(serial.ok(), parallel.ok());
  if (!serial.ok()) {
    EXPECT_EQ(serial.status().code(), parallel.status().code());
  }
}

TEST(FailureTest, CholeskyJitterEscalationInTrainer) {
  // End-to-end: training with a tiny embedding dim and aggressive
  // learning rate (which drives scores to extremes) must finish without
  // non-finite parameters.
  SyntheticConfig cfg;
  cfg.num_users = 40;
  cfg.num_items = 50;
  cfg.num_events = 4000;
  cfg.seed = 5;
  auto ds = GenerateSyntheticDataset(cfg);
  ASSERT_TRUE(ds.ok());
  ExperimentRunner runner(&*ds);
  ExperimentSpec spec;
  spec.model = ModelKind::kMf;
  spec.criterion = CriterionKind::kLkp;
  spec.k = 3;
  spec.n = 3;
  spec.embedding_dim = 4;
  spec.learning_rate = 0.5;  // Deliberately hot.
  spec.epochs = 4;
  spec.eval_every = 2;
  auto result = runner.Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(std::isfinite(result->final_train_loss));
}

}  // namespace
}  // namespace lkpdpp
