// Tests for Cholesky, LU, and the symmetric eigensolvers (the two-stage
// Householder+QL production path cross-checked against the cyclic Jacobi
// reference).

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/cholesky.h"
#include "linalg/eigen.h"
#include "linalg/lu.h"
#include "linalg/matrix.h"
#include "testing_util.h"

namespace lkpdpp {
namespace {

using testutil::RandomSpd;

TEST(CholeskyTest, KnownFactorization) {
  // A = [[4, 2], [2, 3]] has L = [[2, 0], [1, sqrt(2)]].
  Matrix a{{4, 2}, {2, 3}};
  auto chol = Cholesky::Compute(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_NEAR(chol->factor()(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(chol->factor()(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(chol->factor()(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(CholeskyTest, LogDetMatchesKnownDeterminant) {
  Matrix a{{4, 2}, {2, 3}};  // det = 8.
  auto chol = Cholesky::Compute(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_NEAR(chol->LogDet(), std::log(8.0), 1e-12);
  EXPECT_NEAR(chol->Det(), 8.0, 1e-10);
}

TEST(CholeskyTest, SolveRecoversSolution) {
  Matrix a{{4, 2}, {2, 3}};
  Vector x_true{1.5, -2.0};
  Vector b = MatVec(a, x_true);
  auto chol = Cholesky::Compute(a);
  ASSERT_TRUE(chol.ok());
  Vector x = chol->Solve(b);
  EXPECT_NEAR(x[0], x_true[0], 1e-12);
  EXPECT_NEAR(x[1], x_true[1], 1e-12);
}

TEST(CholeskyTest, InverseTimesOriginalIsIdentity) {
  Rng rng(31);
  Matrix a = RandomSpd(6, &rng);
  auto chol = Cholesky::Compute(a);
  ASSERT_TRUE(chol.ok());
  Matrix prod = MatMul(chol->Inverse(), a);
  EXPECT_LT((prod - Matrix::Identity(6)).MaxAbs(), 1e-8);
}

TEST(CholeskyTest, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_EQ(Cholesky::Compute(a).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CholeskyTest, RejectsAsymmetric) {
  Matrix a{{1, 2}, {0, 1}};
  EXPECT_EQ(Cholesky::Compute(a).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a{{1, 0}, {0, -1}};
  EXPECT_EQ(Cholesky::Compute(a).status().code(),
            StatusCode::kNumericalError);
}

TEST(CholeskyTest, JitterRescuesSemidefinite) {
  // Rank-1 PSD matrix: plain Cholesky fails at the second pivot.
  Matrix a{{1, 1}, {1, 1}};
  EXPECT_FALSE(Cholesky::Compute(a).ok());
  EXPECT_TRUE(Cholesky::Compute(a, 1e-8).ok());
}

TEST(CholeskyTest, LogDetSpdHelper) {
  Matrix a{{2, 0}, {0, 5}};
  auto ld = LogDetSpd(a);
  ASSERT_TRUE(ld.ok());
  EXPECT_NEAR(*ld, std::log(10.0), 1e-12);
}

TEST(LuTest, KnownDeterminant) {
  Matrix a{{1, 2}, {3, 4}};  // det = -2.
  auto lu = Lu::Compute(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu->Det(), -2.0, 1e-12);
}

TEST(LuTest, SingularHasZeroDet) {
  Matrix a{{1, 2}, {2, 4}};
  auto lu = Lu::Compute(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_TRUE(lu->IsSingular());
  EXPECT_DOUBLE_EQ(lu->Det(), 0.0);
  EXPECT_FALSE(lu->Solve(Vector{1, 1}).ok());
  EXPECT_FALSE(lu->Inverse().ok());
}

TEST(LuTest, SolveGeneralSystem) {
  Matrix a{{0, 2, 1}, {1, -2, -3}, {-1, 1, 2}};
  Vector x_true{2.0, -1.0, 3.0};
  Vector b = MatVec(a, x_true);
  auto lu = Lu::Compute(a);
  ASSERT_TRUE(lu.ok());
  auto x = lu->Solve(b);
  ASSERT_TRUE(x.ok());
  for (int i = 0; i < 3; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-10);
}

TEST(LuTest, InverseProduct) {
  Rng rng(37);
  Matrix a(4, 4);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) a(r, c) = rng.Normal();
  }
  a.AddDiagonal(3.0);
  auto lu = Lu::Compute(a);
  ASSERT_TRUE(lu.ok());
  auto inv = lu->Inverse();
  ASSERT_TRUE(inv.ok());
  EXPECT_LT((MatMul(*inv, a) - Matrix::Identity(4)).MaxAbs(), 1e-9);
}

TEST(LuTest, RejectsNonSquare) {
  EXPECT_FALSE(Lu::Compute(Matrix(2, 3)).ok());
}

TEST(LuTest, DeterminantHelper) {
  auto det = Determinant(Matrix{{3, 0}, {0, 7}});
  ASSERT_TRUE(det.ok());
  EXPECT_NEAR(*det, 21.0, 1e-12);
}

// Cross-check: Cholesky log-det equals LU det on random SPD matrices.
class DetCrossCheckTest : public ::testing::TestWithParam<int> {};

TEST_P(DetCrossCheckTest, CholeskyVsLu) {
  Rng rng(300 + GetParam());
  Matrix a = RandomSpd(GetParam(), &rng);
  auto chol = Cholesky::Compute(a);
  auto lu = Lu::Compute(a);
  ASSERT_TRUE(chol.ok());
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(chol->LogDet(), std::log(lu->Det()),
              1e-8 * std::fabs(chol->LogDet()) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DetCrossCheckTest,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 16));

TEST(EigenTest, DiagonalMatrixEigenvalues) {
  Matrix a = Matrix::Diagonal(Vector{3.0, 1.0, 2.0});
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[2], 3.0, 1e-12);
}

TEST(EigenTest, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  Matrix a{{2, 1}, {1, 2}};
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[1], 3.0, 1e-12);
}

TEST(EigenTest, RejectsAsymmetric) {
  Matrix a{{1, 2}, {0, 1}};
  EXPECT_FALSE(SymmetricEigen(a).ok());
}

TEST(EigenTest, HandlesSizeOneAndEmpty) {
  auto one = SymmetricEigen(Matrix{{4.0}});
  ASSERT_TRUE(one.ok());
  EXPECT_NEAR(one->eigenvalues[0], 4.0, 1e-15);
  auto zero = SymmetricEigen(Matrix(0, 0));
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->eigenvalues.size(), 0);
}

class EigenPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EigenPropertyTest, ReconstructionAndOrthonormality) {
  Rng rng(400 + GetParam());
  const int n = GetParam();
  Matrix a = RandomSpd(n, &rng, 0.1);
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());

  // V^T V = I.
  Matrix vtv = MatMulTransA(eig->eigenvectors, eig->eigenvectors);
  EXPECT_LT((vtv - Matrix::Identity(n)).MaxAbs(), 1e-9);

  // V diag(lambda) V^T = A.
  Matrix scaled = eig->eigenvectors;
  for (int c = 0; c < n; ++c) {
    for (int r = 0; r < n; ++r) scaled(r, c) *= eig->eigenvalues[c];
  }
  Matrix rebuilt = MatMulTransB(scaled, eig->eigenvectors);
  EXPECT_LT((rebuilt - a).MaxAbs(), 1e-8 * std::max(1.0, a.MaxAbs()));

  // Ascending order, all positive for SPD input.
  for (int i = 1; i < n; ++i) {
    EXPECT_LE(eig->eigenvalues[i - 1], eig->eigenvalues[i] + 1e-12);
  }
  EXPECT_GT(eig->eigenvalues[0], 0.0);

  // Eigenvalue sum equals trace; product equals determinant.
  EXPECT_NEAR(eig->eigenvalues.Sum(), a.Trace(), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenPropertyTest,
                         ::testing::Values(2, 3, 4, 6, 10, 16));

// Random symmetric (indefinite) matrix: mixed-sign spectrum.
Matrix RandomSymmetric(int n, Rng* rng) {
  Matrix a(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c <= r; ++c) {
      const double x = rng->Normal();
      a(r, c) = x;
      a(c, r) = x;
    }
  }
  return a;
}

// Cross-check the production Householder+QL solver against the Jacobi
// reference on random symmetric matrices with mixed-sign spectra.
class EigenCrossCheckTest : public ::testing::TestWithParam<int> {};

TEST_P(EigenCrossCheckTest, TridiagonalAgreesWithJacobi) {
  const int n = GetParam();
  Rng rng(500 + n);
  Matrix a = RandomSymmetric(n, &rng);
  auto tri = SymmetricEigen(a);
  auto jac = SymmetricEigenJacobi(a);
  ASSERT_TRUE(tri.ok());
  ASSERT_TRUE(jac.ok());
  const double scale = std::max(1.0, a.MaxAbs());

  // Eigenvalues agree to 1e-10 (relative to matrix scale).
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(tri->eigenvalues[i], jac->eigenvalues[i], 1e-10 * scale)
        << "eigenvalue " << i;
  }

  // V^T V = I.
  Matrix vtv = MatMulTransA(tri->eigenvectors, tri->eigenvectors);
  EXPECT_LT((vtv - Matrix::Identity(n)).MaxAbs(), 1e-10);

  // V diag(lambda) V^T = A.
  Matrix scaled = tri->eigenvectors;
  for (int c = 0; c < n; ++c) {
    for (int r = 0; r < n; ++r) scaled(r, c) *= tri->eigenvalues[c];
  }
  Matrix rebuilt = MatMulTransB(scaled, tri->eigenvectors);
  EXPECT_LT((rebuilt - a).MaxAbs(), 1e-9 * scale);

  // With canonical signs and the simple spectra of random matrices, the
  // eigenvector columns themselves line up across solvers.
  for (int i = 0; i < n; ++i) {
    double dot = 0.0;
    for (int r = 0; r < n; ++r) {
      dot += tri->eigenvectors(r, i) * jac->eigenvectors(r, i);
    }
    EXPECT_GT(dot, 1.0 - 1e-8) << "eigenvector " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenCrossCheckTest,
                         ::testing::Values(2, 3, 5, 8, 16, 33, 64));

TEST(EigenTest, RepeatedEigenvalues) {
  // 3 * I: a maximally degenerate spectrum.
  auto eye = SymmetricEigen(Matrix::Identity(4) * 3.0);
  ASSERT_TRUE(eye.ok());
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(eye->eigenvalues[i], 3.0, 1e-12);
  Matrix vtv = MatMulTransA(eye->eigenvectors, eye->eigenvectors);
  EXPECT_LT((vtv - Matrix::Identity(4)).MaxAbs(), 1e-12);

  // Two-fold degeneracy mixed with a simple eigenvalue.
  Matrix a = Matrix::Diagonal(Vector{2.0, 5.0, 2.0});
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 2.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[2], 5.0, 1e-12);
  Matrix scaled = eig->eigenvectors;
  for (int c = 0; c < 3; ++c) {
    for (int r = 0; r < 3; ++r) scaled(r, c) *= eig->eigenvalues[c];
  }
  EXPECT_LT((MatMulTransB(scaled, eig->eigenvectors) - a).MaxAbs(), 1e-10);
}

TEST(EigenTest, RankDeficientMatrix) {
  // Rank-1 outer product: one eigenvalue ||v||^2, the rest zero.
  Vector v{1.0, -2.0, 3.0, 0.5, -1.5, 2.5};
  Matrix a = Matrix::Outer(v, v);
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  const double norm2 = v.Dot(v);
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(eig->eigenvalues[i], 0.0, 1e-12 * norm2) << "null dim " << i;
  }
  EXPECT_NEAR(eig->eigenvalues[5], norm2, 1e-12 * norm2);
  // The top eigenvector is v / ||v|| up to canonical sign.
  double dot = 0.0;
  for (int r = 0; r < 6; ++r) {
    dot += eig->eigenvectors(r, 5) * v[r] / std::sqrt(norm2);
  }
  EXPECT_NEAR(std::fabs(dot), 1.0, 1e-10);
}

TEST(EigenTest, CanonicalSignMakesSolversBitComparable) {
  // Both solvers must place the largest-magnitude component of every
  // eigenvector on the positive side, so downstream sampling streams do
  // not silently flip when the solver implementation changes.
  Rng rng(77);
  Matrix a = RandomSpd(7, &rng);
  auto tri = SymmetricEigen(a);
  auto jac = SymmetricEigenJacobi(a);
  ASSERT_TRUE(tri.ok());
  ASSERT_TRUE(jac.ok());
  for (const auto* eig : {&*tri, &*jac}) {
    for (int c = 0; c < 7; ++c) {
      double peak = -1.0;
      double peak_val = 0.0;
      for (int r = 0; r < 7; ++r) {
        const double x = eig->eigenvectors(r, c);
        if (std::fabs(x) > peak) {
          peak = std::fabs(x);
          peak_val = x;
        }
      }
      EXPECT_GT(peak_val, 0.0) << "column " << c;
    }
  }
}

TEST(EigenJacobiTest, MatchesTridiagonalOnKnownMatrix) {
  Matrix a{{2, 1}, {1, 2}};
  auto eig = SymmetricEigenJacobi(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[1], 3.0, 1e-12);
}

TEST(EigenJacobiTest, ConvergenceCheckedAfterFinalSweep) {
  // Regression: a 2x2 rotation diagonalizes this matrix in exactly one
  // sweep, so max_sweeps=1 must succeed. The old implementation only
  // tested convergence at the top of each sweep and reported
  // NumericalError even though the final allowed sweep had converged.
  Matrix a{{2, 1}, {1, 2}};
  auto eig = SymmetricEigenJacobi(a, /*max_sweeps=*/1);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[1], 3.0, 1e-12);
  // Zero sweeps genuinely cannot converge a non-diagonal matrix.
  EXPECT_EQ(SymmetricEigenJacobi(a, /*max_sweeps=*/0).status().code(),
            StatusCode::kNumericalError);
  // A diagonal matrix converges with zero sweeps allowed.
  EXPECT_TRUE(
      SymmetricEigenJacobi(Matrix::Diagonal(Vector{1.0, 2.0}), 0).ok());
}

TEST(EigenJacobiTest, HandlesEdgeSizesAndRejectsAsymmetric) {
  auto one = SymmetricEigenJacobi(Matrix{{4.0}});
  ASSERT_TRUE(one.ok());
  EXPECT_NEAR(one->eigenvalues[0], 4.0, 1e-15);
  auto zero = SymmetricEigenJacobi(Matrix(0, 0));
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->eigenvalues.size(), 0);
  EXPECT_FALSE(SymmetricEigenJacobi(Matrix{{1, 2}, {0, 1}}).ok());
  EXPECT_FALSE(SymmetricEigenJacobi(Matrix(2, 3)).ok());
}

TEST(EigenTest, ExtremeUniformScalesStayAccurate) {
  // The solver must be scale-invariant in the relative sense: tiny and
  // huge uniform scalings of the same matrix give scaled spectra.
  Rng rng(88);
  Matrix base = RandomSpd(6, &rng);
  auto ref = SymmetricEigen(base);
  ASSERT_TRUE(ref.ok());
  for (double s : {1e-8, 1e8}) {
    Matrix scaled_in = base;
    scaled_in *= s;
    auto eig = SymmetricEigen(scaled_in);
    ASSERT_TRUE(eig.ok()) << "scale " << s;
    for (int i = 0; i < 6; ++i) {
      EXPECT_NEAR(eig->eigenvalues[i], s * ref->eigenvalues[i],
                  1e-10 * s * std::fabs(ref->eigenvalues[5]));
    }
  }
}

TEST(ProjectToPsdTest, ClampsNegativeEigenvalues) {
  Matrix a{{1, 0}, {0, -2}};
  auto psd = ProjectToPsd(a, 0.0);
  ASSERT_TRUE(psd.ok());
  auto eig = SymmetricEigen(*psd);
  ASSERT_TRUE(eig.ok());
  EXPECT_GE(eig->eigenvalues[0], -1e-12);
  EXPECT_NEAR(eig->eigenvalues[1], 1.0, 1e-10);
}

TEST(ProjectToPsdTest, LeavesPsdUntouched) {
  Rng rng(55);
  Matrix a = RandomSpd(5, &rng);
  auto psd = ProjectToPsd(a);
  ASSERT_TRUE(psd.ok());
  EXPECT_LT((*psd - a).MaxAbs(), 1e-8 * a.MaxAbs());
}

}  // namespace
}  // namespace lkpdpp
