// Tests for Cholesky, LU, and the symmetric Jacobi eigensolver.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/cholesky.h"
#include "linalg/eigen.h"
#include "linalg/lu.h"
#include "linalg/matrix.h"
#include "testing_util.h"

namespace lkpdpp {
namespace {

using testutil::RandomSpd;

TEST(CholeskyTest, KnownFactorization) {
  // A = [[4, 2], [2, 3]] has L = [[2, 0], [1, sqrt(2)]].
  Matrix a{{4, 2}, {2, 3}};
  auto chol = Cholesky::Compute(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_NEAR(chol->factor()(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(chol->factor()(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(chol->factor()(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(CholeskyTest, LogDetMatchesKnownDeterminant) {
  Matrix a{{4, 2}, {2, 3}};  // det = 8.
  auto chol = Cholesky::Compute(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_NEAR(chol->LogDet(), std::log(8.0), 1e-12);
  EXPECT_NEAR(chol->Det(), 8.0, 1e-10);
}

TEST(CholeskyTest, SolveRecoversSolution) {
  Matrix a{{4, 2}, {2, 3}};
  Vector x_true{1.5, -2.0};
  Vector b = MatVec(a, x_true);
  auto chol = Cholesky::Compute(a);
  ASSERT_TRUE(chol.ok());
  Vector x = chol->Solve(b);
  EXPECT_NEAR(x[0], x_true[0], 1e-12);
  EXPECT_NEAR(x[1], x_true[1], 1e-12);
}

TEST(CholeskyTest, InverseTimesOriginalIsIdentity) {
  Rng rng(31);
  Matrix a = RandomSpd(6, &rng);
  auto chol = Cholesky::Compute(a);
  ASSERT_TRUE(chol.ok());
  Matrix prod = MatMul(chol->Inverse(), a);
  EXPECT_LT((prod - Matrix::Identity(6)).MaxAbs(), 1e-8);
}

TEST(CholeskyTest, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_EQ(Cholesky::Compute(a).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CholeskyTest, RejectsAsymmetric) {
  Matrix a{{1, 2}, {0, 1}};
  EXPECT_EQ(Cholesky::Compute(a).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a{{1, 0}, {0, -1}};
  EXPECT_EQ(Cholesky::Compute(a).status().code(),
            StatusCode::kNumericalError);
}

TEST(CholeskyTest, JitterRescuesSemidefinite) {
  // Rank-1 PSD matrix: plain Cholesky fails at the second pivot.
  Matrix a{{1, 1}, {1, 1}};
  EXPECT_FALSE(Cholesky::Compute(a).ok());
  EXPECT_TRUE(Cholesky::Compute(a, 1e-8).ok());
}

TEST(CholeskyTest, LogDetSpdHelper) {
  Matrix a{{2, 0}, {0, 5}};
  auto ld = LogDetSpd(a);
  ASSERT_TRUE(ld.ok());
  EXPECT_NEAR(*ld, std::log(10.0), 1e-12);
}

TEST(LuTest, KnownDeterminant) {
  Matrix a{{1, 2}, {3, 4}};  // det = -2.
  auto lu = Lu::Compute(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu->Det(), -2.0, 1e-12);
}

TEST(LuTest, SingularHasZeroDet) {
  Matrix a{{1, 2}, {2, 4}};
  auto lu = Lu::Compute(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_TRUE(lu->IsSingular());
  EXPECT_DOUBLE_EQ(lu->Det(), 0.0);
  EXPECT_FALSE(lu->Solve(Vector{1, 1}).ok());
  EXPECT_FALSE(lu->Inverse().ok());
}

TEST(LuTest, SolveGeneralSystem) {
  Matrix a{{0, 2, 1}, {1, -2, -3}, {-1, 1, 2}};
  Vector x_true{2.0, -1.0, 3.0};
  Vector b = MatVec(a, x_true);
  auto lu = Lu::Compute(a);
  ASSERT_TRUE(lu.ok());
  auto x = lu->Solve(b);
  ASSERT_TRUE(x.ok());
  for (int i = 0; i < 3; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-10);
}

TEST(LuTest, InverseProduct) {
  Rng rng(37);
  Matrix a(4, 4);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) a(r, c) = rng.Normal();
  }
  a.AddDiagonal(3.0);
  auto lu = Lu::Compute(a);
  ASSERT_TRUE(lu.ok());
  auto inv = lu->Inverse();
  ASSERT_TRUE(inv.ok());
  EXPECT_LT((MatMul(*inv, a) - Matrix::Identity(4)).MaxAbs(), 1e-9);
}

TEST(LuTest, RejectsNonSquare) {
  EXPECT_FALSE(Lu::Compute(Matrix(2, 3)).ok());
}

TEST(LuTest, DeterminantHelper) {
  auto det = Determinant(Matrix{{3, 0}, {0, 7}});
  ASSERT_TRUE(det.ok());
  EXPECT_NEAR(*det, 21.0, 1e-12);
}

// Cross-check: Cholesky log-det equals LU det on random SPD matrices.
class DetCrossCheckTest : public ::testing::TestWithParam<int> {};

TEST_P(DetCrossCheckTest, CholeskyVsLu) {
  Rng rng(300 + GetParam());
  Matrix a = RandomSpd(GetParam(), &rng);
  auto chol = Cholesky::Compute(a);
  auto lu = Lu::Compute(a);
  ASSERT_TRUE(chol.ok());
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(chol->LogDet(), std::log(lu->Det()),
              1e-8 * std::fabs(chol->LogDet()) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DetCrossCheckTest,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 16));

TEST(EigenTest, DiagonalMatrixEigenvalues) {
  Matrix a = Matrix::Diagonal(Vector{3.0, 1.0, 2.0});
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[2], 3.0, 1e-12);
}

TEST(EigenTest, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  Matrix a{{2, 1}, {1, 2}};
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[1], 3.0, 1e-12);
}

TEST(EigenTest, RejectsAsymmetric) {
  Matrix a{{1, 2}, {0, 1}};
  EXPECT_FALSE(SymmetricEigen(a).ok());
}

TEST(EigenTest, HandlesSizeOneAndEmpty) {
  auto one = SymmetricEigen(Matrix{{4.0}});
  ASSERT_TRUE(one.ok());
  EXPECT_NEAR(one->eigenvalues[0], 4.0, 1e-15);
  auto zero = SymmetricEigen(Matrix(0, 0));
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->eigenvalues.size(), 0);
}

class EigenPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EigenPropertyTest, ReconstructionAndOrthonormality) {
  Rng rng(400 + GetParam());
  const int n = GetParam();
  Matrix a = RandomSpd(n, &rng, 0.1);
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());

  // V^T V = I.
  Matrix vtv = MatMulTransA(eig->eigenvectors, eig->eigenvectors);
  EXPECT_LT((vtv - Matrix::Identity(n)).MaxAbs(), 1e-9);

  // V diag(lambda) V^T = A.
  Matrix scaled = eig->eigenvectors;
  for (int c = 0; c < n; ++c) {
    for (int r = 0; r < n; ++r) scaled(r, c) *= eig->eigenvalues[c];
  }
  Matrix rebuilt = MatMulTransB(scaled, eig->eigenvectors);
  EXPECT_LT((rebuilt - a).MaxAbs(), 1e-8 * std::max(1.0, a.MaxAbs()));

  // Ascending order, all positive for SPD input.
  for (int i = 1; i < n; ++i) {
    EXPECT_LE(eig->eigenvalues[i - 1], eig->eigenvalues[i] + 1e-12);
  }
  EXPECT_GT(eig->eigenvalues[0], 0.0);

  // Eigenvalue sum equals trace; product equals determinant.
  EXPECT_NEAR(eig->eigenvalues.Sum(), a.Trace(), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenPropertyTest,
                         ::testing::Values(2, 3, 4, 6, 10, 16));

TEST(ProjectToPsdTest, ClampsNegativeEigenvalues) {
  Matrix a{{1, 0}, {0, -2}};
  auto psd = ProjectToPsd(a, 0.0);
  ASSERT_TRUE(psd.ok());
  auto eig = SymmetricEigen(*psd);
  ASSERT_TRUE(eig.ok());
  EXPECT_GE(eig->eigenvalues[0], -1e-12);
  EXPECT_NEAR(eig->eigenvalues[1], 1.0, 1e-10);
}

TEST(ProjectToPsdTest, LeavesPsdUntouched) {
  Rng rng(55);
  Matrix a = RandomSpd(5, &rng);
  auto psd = ProjectToPsd(a);
  ASSERT_TRUE(psd.ok());
  EXPECT_LT((*psd - a).MaxAbs(), 1e-8 * a.MaxAbs());
}

}  // namespace
}  // namespace lkpdpp
