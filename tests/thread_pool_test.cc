#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace lkpdpp {
namespace {

TEST(ThreadPoolTest, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool neg(-3);
  EXPECT_EQ(neg.num_threads(), 1);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const int n = 1000;
  std::vector<std::atomic<int>> visits(n);
  for (auto& v : visits) v.store(0);
  pool.ParallelFor(n, [&visits](int i) { visits[i].fetch_add(1); });
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEdgeSizes) {
  ThreadPool pool(3);
  int zero_calls = 0;
  pool.ParallelFor(0, [&zero_calls](int) { ++zero_calls; });
  EXPECT_EQ(zero_calls, 0);

  std::atomic<int> one_calls{0};
  pool.ParallelFor(1, [&one_calls](int) { one_calls.fetch_add(1); });
  EXPECT_EQ(one_calls.load(), 1);
}

TEST(ThreadPoolTest, ParallelForOnSingleThreadPool) {
  ThreadPool pool(1);
  std::vector<std::atomic<int>> visits(64);
  for (auto& v : visits) v.store(0);
  pool.ParallelFor(64, [&visits](int i) { visits[i].fetch_add(1); });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

// The determinism contract: index-addressed results are identical no
// matter how many threads execute the loop.
TEST(ThreadPoolTest, IndexAddressedResultsAreThreadCountInvariant) {
  const int n = 200;
  auto run = [n](int threads) {
    ThreadPool pool(threads);
    std::vector<double> out(n);
    pool.ParallelFor(n, [&out](int i) {
      // Derive a per-task stream from the index, not the worker.
      Rng rng(0xABCDEF ^ static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ULL);
      double acc = 0.0;
      for (int j = 0; j <= i % 17; ++j) acc += rng.Uniform();
      out[static_cast<size_t>(i)] = acc;
    });
    return out;
  };
  const std::vector<double> serial = run(1);
  for (int threads : {2, 4, 8}) {
    const std::vector<double> parallel = run(threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(parallel[static_cast<size_t>(i)],
                serial[static_cast<size_t>(i)])
          << "index " << i << " at " << threads << " threads";
    }
  }
}

TEST(ThreadPoolTest, SequentialParallelForsSeeConsistentState) {
  ThreadPool pool(4);
  std::vector<long> data(500, 0);
  pool.ParallelFor(500, [&data](int i) { data[static_cast<size_t>(i)] = i; });
  // The second loop reads what the first wrote: ParallelFor is a barrier.
  std::atomic<long> sum{0};
  pool.ParallelFor(500, [&data, &sum](int i) {
    sum.fetch_add(data[static_cast<size_t>(i)]);
  });
  EXPECT_EQ(sum.load(), 500L * 499 / 2);
}

TEST(ThreadPoolTest, ManySmallParallelForsStress) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(8, [&count](int) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 8);
  }
}

TEST(ThreadPoolTest, SubmitFromMultipleThreads) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &count] {
      for (int i = 0; i < 50; ++i) {
        pool.Submit([&count] { count.fetch_add(1); });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.Wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallers) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 3; ++c) {
    callers.emplace_back([&pool, &total] {
      for (int round = 0; round < 20; ++round) {
        pool.ParallelFor(16, [&total](int) { total.fetch_add(1); });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 3 * 20 * 16);
}

TEST(ThreadPoolTest, DestructorDrainsPendingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // No Wait(): the destructor must flush the queues itself.
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, ChunkedParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  // Grains below, at, and above n, plus degenerate sizes.
  for (int n : {0, 1, 7, 64, 1000}) {
    for (int grain : {1, 3, 7, 64, 5000}) {
      std::vector<std::atomic<int>> counts(static_cast<size_t>(n));
      for (auto& c : counts) c.store(0);
      pool.ParallelFor(n, grain, [&](int i) {
        counts[static_cast<size_t>(i)].fetch_add(1);
      });
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(counts[static_cast<size_t>(i)].load(), 1)
            << "n=" << n << " grain=" << grain << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ChunkedParallelForMatchesGrainOne) {
  // Index-addressed outputs are identical whatever the chunking,
  // i.e. coarsening changes scheduling, never results.
  ThreadPool pool(4);
  const int n = 512;
  std::vector<double> fine(static_cast<size_t>(n), 0.0);
  std::vector<double> coarse(static_cast<size_t>(n), 0.0);
  auto fill = [](std::vector<double>* out) {
    return [out](int i) {
      Rng rng(static_cast<uint64_t>(i) + 17);
      (*out)[static_cast<size_t>(i)] = rng.Uniform() + i;
    };
  };
  pool.ParallelFor(n, 1, fill(&fine));
  pool.ParallelFor(n, 37, fill(&coarse));
  EXPECT_EQ(fine, coarse);
}

TEST(ThreadPoolTest, ChunkedParallelForKeepsChunksOnOneThread) {
  // The whole point of the grain: one claim, one thread, `grain`
  // consecutive indices — so every index of a chunk must report the
  // same executing thread.
  ThreadPool pool(4);
  const int n = 96;
  const int grain = 8;
  std::vector<std::thread::id> owner(static_cast<size_t>(n));
  pool.ParallelFor(n, grain, [&](int i) {
    owner[static_cast<size_t>(i)] = std::this_thread::get_id();
  });
  for (int c = 0; c < n / grain; ++c) {
    for (int i = c * grain + 1; i < (c + 1) * grain; ++i) {
      EXPECT_EQ(owner[static_cast<size_t>(i)],
                owner[static_cast<size_t>(c * grain)]);
    }
  }
}

TEST(ThreadPoolTest, GrainForScalesWithSizeAndFloors) {
  ThreadPool pool(4);
  // Tiny loops floor at min_grain; big loops target ~4 chunks per lane.
  EXPECT_EQ(pool.GrainFor(1), 1);
  EXPECT_EQ(pool.GrainFor(10), 1);
  EXPECT_EQ(pool.GrainFor(10, 5), 5);
  const int lanes = pool.num_threads() + 1;
  EXPECT_EQ(pool.GrainFor(4000), 4000 / (lanes * 4));
  EXPECT_GE(pool.GrainFor(1000000), pool.GrainFor(1000));
}

TEST(ThreadPoolTest, ParallelForOrSerialGrainOverloadMatchesSerial) {
  ThreadPool pool(3);
  const int n = 200;
  std::vector<int> with_pool(static_cast<size_t>(n), 0);
  std::vector<int> serial(static_cast<size_t>(n), 0);
  ParallelForOrSerial(&pool, n, /*min_grain=*/4, [&](int i) {
    with_pool[static_cast<size_t>(i)] = 3 * i + 1;
  });
  ParallelForOrSerial(nullptr, n, /*min_grain=*/4, [&](int i) {
    serial[static_cast<size_t>(i)] = 3 * i + 1;
  });
  EXPECT_EQ(with_pool, serial);
}

TEST(ThreadPoolTest, DefaultThreadCountRespectsEnvOverride) {
  // Save/restore so this test does not leak into others.
  const char* old = std::getenv("LKP_THREADS");
  const std::string saved = old != nullptr ? old : "";
  setenv("LKP_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3);
  setenv("LKP_THREADS", "0", 1);  // Invalid: falls back to hardware.
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
  if (old != nullptr) {
    setenv("LKP_THREADS", saved.c_str(), 1);
  } else {
    unsetenv("LKP_THREADS");
  }
}

}  // namespace
}  // namespace lkpdpp
