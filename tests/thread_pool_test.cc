#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace lkpdpp {
namespace {

TEST(ThreadPoolTest, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool neg(-3);
  EXPECT_EQ(neg.num_threads(), 1);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const int n = 1000;
  std::vector<std::atomic<int>> visits(n);
  for (auto& v : visits) v.store(0);
  pool.ParallelFor(n, [&visits](int i) { visits[i].fetch_add(1); });
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEdgeSizes) {
  ThreadPool pool(3);
  int zero_calls = 0;
  pool.ParallelFor(0, [&zero_calls](int) { ++zero_calls; });
  EXPECT_EQ(zero_calls, 0);

  std::atomic<int> one_calls{0};
  pool.ParallelFor(1, [&one_calls](int) { one_calls.fetch_add(1); });
  EXPECT_EQ(one_calls.load(), 1);
}

TEST(ThreadPoolTest, ParallelForOnSingleThreadPool) {
  ThreadPool pool(1);
  std::vector<std::atomic<int>> visits(64);
  for (auto& v : visits) v.store(0);
  pool.ParallelFor(64, [&visits](int i) { visits[i].fetch_add(1); });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

// The determinism contract: index-addressed results are identical no
// matter how many threads execute the loop.
TEST(ThreadPoolTest, IndexAddressedResultsAreThreadCountInvariant) {
  const int n = 200;
  auto run = [n](int threads) {
    ThreadPool pool(threads);
    std::vector<double> out(n);
    pool.ParallelFor(n, [&out](int i) {
      // Derive a per-task stream from the index, not the worker.
      Rng rng(0xABCDEF ^ static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ULL);
      double acc = 0.0;
      for (int j = 0; j <= i % 17; ++j) acc += rng.Uniform();
      out[static_cast<size_t>(i)] = acc;
    });
    return out;
  };
  const std::vector<double> serial = run(1);
  for (int threads : {2, 4, 8}) {
    const std::vector<double> parallel = run(threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(parallel[static_cast<size_t>(i)],
                serial[static_cast<size_t>(i)])
          << "index " << i << " at " << threads << " threads";
    }
  }
}

TEST(ThreadPoolTest, SequentialParallelForsSeeConsistentState) {
  ThreadPool pool(4);
  std::vector<long> data(500, 0);
  pool.ParallelFor(500, [&data](int i) { data[static_cast<size_t>(i)] = i; });
  // The second loop reads what the first wrote: ParallelFor is a barrier.
  std::atomic<long> sum{0};
  pool.ParallelFor(500, [&data, &sum](int i) {
    sum.fetch_add(data[static_cast<size_t>(i)]);
  });
  EXPECT_EQ(sum.load(), 500L * 499 / 2);
}

TEST(ThreadPoolTest, ManySmallParallelForsStress) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(8, [&count](int) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 8);
  }
}

TEST(ThreadPoolTest, SubmitFromMultipleThreads) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &count] {
      for (int i = 0; i < 50; ++i) {
        pool.Submit([&count] { count.fetch_add(1); });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.Wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallers) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 3; ++c) {
    callers.emplace_back([&pool, &total] {
      for (int round = 0; round < 20; ++round) {
        pool.ParallelFor(16, [&total](int) { total.fetch_add(1); });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 3 * 20 * 16);
}

TEST(ThreadPoolTest, DestructorDrainsPendingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // No Wait(): the destructor must flush the queues itself.
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, DefaultThreadCountRespectsEnvOverride) {
  // Save/restore so this test does not leak into others.
  const char* old = std::getenv("LKP_THREADS");
  const std::string saved = old != nullptr ? old : "";
  setenv("LKP_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3);
  setenv("LKP_THREADS", "0", 1);  // Invalid: falls back to hardware.
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
  if (old != nullptr) {
    setenv("LKP_THREADS", saved.c_str(), 1);
  } else {
    unsetenv("LKP_THREADS");
  }
}

}  // namespace
}  // namespace lkpdpp
