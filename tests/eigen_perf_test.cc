// Perf-sanity gate for the two-stage eigensolver (CTest label: slow).
//
// The Householder+QL path is algorithmically ~an order of magnitude
// cheaper than cyclic Jacobi at serving-pool sizes (one O(n^3) reduction
// vs ~10 sweeps of 6n^3 flops each), so even on a noisy CI machine and in
// unoptimized builds it must beat Jacobi wall-clock with a wide margin at
// n >= 128. A regression of SymmetricEigen back to a naive path fails
// this test long before the throughput benches would catch it.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "linalg/eigen.h"
#include "testing_util.h"

namespace lkpdpp {
namespace {

template <typename Solver>
double BestOfMillis(const Solver& solve, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    auto eig = solve();
    EXPECT_TRUE(eig.ok());
    best = std::min(best, sw.ElapsedMillis());
  }
  return best;
}

TEST(EigenPerfTest, TridiagonalBeatsJacobiAtServingPoolSize) {
  const int n = 128;
  Rng rng(2024);
  const Matrix a = testutil::RandomSpd(n, &rng);

  const double tridiag_ms =
      BestOfMillis([&] { return SymmetricEigen(a); }, 3);
  const double jacobi_ms =
      BestOfMillis([&] { return SymmetricEigenJacobi(a); }, 2);

  // Demand a 2x margin: the observed gap is >10x, so 2x tolerates CI
  // noise while still failing on any regression to a Jacobi-class path.
  EXPECT_LT(2.0 * tridiag_ms, jacobi_ms)
      << "SymmetricEigen took " << tridiag_ms << "ms vs Jacobi "
      << jacobi_ms << "ms at n=" << n;

  // And the speed must not come at the cost of agreement.
  auto tri = SymmetricEigen(a);
  auto jac = SymmetricEigenJacobi(a);
  ASSERT_TRUE(tri.ok());
  ASSERT_TRUE(jac.ok());
  const double scale = std::max(1.0, jac->eigenvalues.Max());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(tri->eigenvalues[i], jac->eigenvalues[i], 1e-10 * scale);
  }
}

}  // namespace
}  // namespace lkpdpp
