// Tests for the tailored k-DPP distribution (paper Eq. 4/6/8).

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.h"
#include "core/esp.h"
#include "core/kdpp.h"
#include "linalg/lu.h"
#include "linalg/matrix.h"
#include "testing_util.h"

namespace lkpdpp {
namespace {

using testutil::RandomPsdKernel;

TEST(BinomialTest, KnownValues) {
  EXPECT_DOUBLE_EQ(BinomialCoefficient(10, 5), 252.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(6, 2), 15.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(3, 4), 0.0);
}

TEST(NextCombinationTest, EnumeratesAll) {
  std::vector<int> idx = {0, 1};
  int count = 1;
  while (NextCombination(&idx, 4)) ++count;
  EXPECT_EQ(count, 6);  // C(4,2).
  EXPECT_EQ(idx, (std::vector<int>{2, 3}));
}

TEST(KDppTest, CreateValidation) {
  Rng rng(1);
  Matrix k = RandomPsdKernel(5, &rng);
  EXPECT_TRUE(KDpp::Create(k, 2).ok());
  EXPECT_FALSE(KDpp::Create(k, 0).ok());
  EXPECT_FALSE(KDpp::Create(k, 6).ok());
  EXPECT_FALSE(KDpp::Create(Matrix(2, 3), 1).ok());
  // Indefinite kernel rejected.
  Matrix indef{{1, 0}, {0, -1}};
  EXPECT_EQ(KDpp::Create(indef, 1).status().code(),
            StatusCode::kNumericalError);
}

TEST(KDppTest, RejectsRankDeficientForLargeK) {
  Rng rng(2);
  // Rank-2 kernel cannot support a 4-DPP.
  Matrix k = RandomPsdKernel(6, &rng, /*rank=*/2, /*ridge=*/0.0);
  EXPECT_FALSE(KDpp::Create(k, 4).ok());
  EXPECT_TRUE(KDpp::Create(k, 2).ok());
}

TEST(KDppTest, RejectsNonSymmetricKernel) {
  Matrix asym{{1.0, 0.5, 0.0}, {0.0, 1.0, 0.5}, {0.0, 0.0, 1.0}};
  auto r = KDpp::Create(asym, 2);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(KDppTest, RejectsNonFiniteKernel) {
  Matrix nan_kernel{{1.0, 0.0}, {0.0, std::nan("")}};
  auto r = KDpp::Create(nan_kernel, 1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNumericalError);
}

TEST(KDppTest, RankDeficiencyReportsNumericalError) {
  // A rank-2 kernel has e_3 = 0: the normalizer vanishes, and Create must
  // report it as a numerical failure rather than construct a distribution
  // with no support. The diagonal kernel makes the deficiency exact.
  Matrix k = Matrix::Diagonal(Vector{1.0, 2.0, 0.0, 0.0, 0.0});
  auto r = KDpp::Create(k, 3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNumericalError);
}

TEST(KDppTest, LogProbValidatesSubset) {
  Rng rng(3);
  auto kdpp = KDpp::Create(RandomPsdKernel(6, &rng), 3);
  ASSERT_TRUE(kdpp.ok());
  EXPECT_FALSE(kdpp->LogProb({0, 1}).ok());          // Wrong cardinality.
  EXPECT_FALSE(kdpp->LogProb({0, 1, 9}).ok());       // Out of range.
  EXPECT_FALSE(kdpp->LogProb({0, 1, 1}).ok());       // Duplicate.
  EXPECT_TRUE(kdpp->LogProb({0, 2, 4}).ok());
  EXPECT_TRUE(kdpp->LogProb({4, 0, 2}).ok());        // Order-insensitive.
}

TEST(KDppTest, ProbMatchesDeterminantRatio) {
  Rng rng(4);
  Matrix kernel = RandomPsdKernel(6, &rng);
  auto kdpp = KDpp::Create(kernel, 3);
  ASSERT_TRUE(kdpp.ok());
  const std::vector<int> subset = {1, 3, 5};
  auto det = Determinant(kernel.PrincipalSubmatrix(subset));
  ASSERT_TRUE(det.ok());
  auto prob = kdpp->Prob(subset);
  ASSERT_TRUE(prob.ok());
  EXPECT_NEAR(*prob, *det / std::exp(kdpp->LogNormalizer()), 1e-10);
}

class KDppNormalizationTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(KDppNormalizationTest, ProbabilitiesSumToOne) {
  const auto [m, k] = GetParam();
  Rng rng(700 + m * 13 + k);
  auto kdpp = KDpp::Create(RandomPsdKernel(m, &rng), k);
  ASSERT_TRUE(kdpp.ok());
  auto all = kdpp->EnumerateProbabilities();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(static_cast<double>(all->size()), BinomialCoefficient(m, k));
  double total = 0.0;
  for (const auto& [subset, p] : *all) {
    EXPECT_GE(p, -1e-12);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KDppNormalizationTest,
    ::testing::Values(std::pair{4, 2}, std::pair{5, 3}, std::pair{6, 2},
                      std::pair{8, 4}, std::pair{10, 5}, std::pair{7, 1},
                      std::pair{6, 6}));

TEST(KDppTest, NormalizerMatchesEspOfEigenvalues) {
  Rng rng(5);
  Matrix kernel = RandomPsdKernel(7, &rng);
  auto kdpp = KDpp::Create(kernel, 3);
  ASSERT_TRUE(kdpp.ok());
  const double zk = ElementarySymmetric(kdpp->eigenvalues(), 3);
  EXPECT_NEAR(kdpp->LogNormalizer(), std::log(zk), 1e-10);
}

TEST(KDppTest, FullCardinalityIsCertain) {
  // k = m: only one subset exists, probability must be 1.
  Rng rng(6);
  auto kdpp = KDpp::Create(RandomPsdKernel(4, &rng), 4);
  ASSERT_TRUE(kdpp.ok());
  auto p = kdpp->Prob({0, 1, 2, 3});
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 1.0, 1e-9);
}

TEST(KDppTest, DiagonalKernelFactorizes) {
  // For a diagonal kernel, P({i,j}) proportional to d_i d_j.
  auto kdpp = KDpp::Create(Matrix::Diagonal(Vector{1.0, 2.0, 3.0}), 2);
  ASSERT_TRUE(kdpp.ok());
  const double z = 1 * 2 + 1 * 3 + 2 * 3;
  auto p01 = kdpp->Prob({0, 1});
  auto p12 = kdpp->Prob({1, 2});
  ASSERT_TRUE(p01.ok());
  ASSERT_TRUE(p12.ok());
  EXPECT_NEAR(*p01, 2.0 / z, 1e-10);
  EXPECT_NEAR(*p12, 6.0 / z, 1e-10);
}

TEST(KDppTest, RepulsionLowersSimilarPairs) {
  // Two near-identical items (0,1) and one orthogonal item (2): the
  // diverse pair must dominate the redundant pair.
  Matrix kernel{{1.0, 0.95, 0.0}, {0.95, 1.0, 0.0}, {0.0, 0.0, 1.0}};
  auto kdpp = KDpp::Create(kernel, 2);
  ASSERT_TRUE(kdpp.ok());
  auto p_similar = kdpp->Prob({0, 1});
  auto p_diverse = kdpp->Prob({0, 2});
  ASSERT_TRUE(p_similar.ok());
  ASSERT_TRUE(p_diverse.ok());
  EXPECT_GT(*p_diverse, *p_similar * 5.0);
}

TEST(KDppTest, MarginalKernelTraceEqualsK) {
  Rng rng(8);
  for (int k = 1; k <= 5; ++k) {
    auto kdpp = KDpp::Create(RandomPsdKernel(6, &rng), k);
    ASSERT_TRUE(kdpp.ok());
    EXPECT_NEAR(kdpp->MarginalKernel().Trace(), static_cast<double>(k),
                1e-8);
  }
}

TEST(KDppTest, MarginalDiagonalMatchesEnumeration) {
  Rng rng(9);
  const int m = 6, k = 3;
  auto kdpp = KDpp::Create(RandomPsdKernel(m, &rng), k);
  ASSERT_TRUE(kdpp.ok());
  auto all = kdpp->EnumerateProbabilities();
  ASSERT_TRUE(all.ok());
  Vector marginal(m);
  for (const auto& [subset, p] : *all) {
    for (int i : subset) marginal[i] += p;
  }
  const Matrix mk = kdpp->MarginalKernel();
  for (int i = 0; i < m; ++i) {
    EXPECT_NEAR(mk(i, i), marginal[i], 1e-8);
    EXPECT_GE(mk(i, i), -1e-10);
    EXPECT_LE(mk(i, i), 1.0 + 1e-10);
  }
}

TEST(KDppTest, NormalizerGradientMatchesFiniteDifference) {
  Rng rng(10);
  const int m = 5, k = 2;
  Matrix kernel = RandomPsdKernel(m, &rng);
  auto kdpp = KDpp::Create(kernel, k);
  ASSERT_TRUE(kdpp.ok());
  const Matrix grad = kdpp->NormalizerGradient();
  const double h = 1e-6;
  for (int i = 0; i < m; ++i) {
    for (int j = i; j < m; ++j) {
      Matrix plus = kernel, minus = kernel;
      plus(i, j) += h;
      minus(i, j) -= h;
      if (i != j) {
        plus(j, i) += h;
        minus(j, i) -= h;
      }
      auto kp = KDpp::Create(plus, k);
      auto km = KDpp::Create(minus, k);
      ASSERT_TRUE(kp.ok());
      ASSERT_TRUE(km.ok());
      const double fd = (std::exp(kp->LogNormalizer()) -
                         std::exp(km->LogNormalizer())) /
                        (2.0 * h);
      // Symmetric perturbation hits (i,j) and (j,i) simultaneously.
      const double expected = i == j ? grad(i, i) : grad(i, j) + grad(j, i);
      EXPECT_NEAR(fd, expected, 1e-4 * std::max(1.0, std::fabs(expected)))
          << "entry (" << i << "," << j << ")";
    }
  }
}

TEST(KDppSamplerTest, ProducesValidSubsets) {
  Rng rng(11);
  auto kdpp = KDpp::Create(RandomPsdKernel(8, &rng), 3);
  ASSERT_TRUE(kdpp.ok());
  Rng sample_rng(12);
  for (int trial = 0; trial < 200; ++trial) {
    auto s = kdpp->Sample(&sample_rng);
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(s->size(), 3u);
    for (size_t i = 1; i < s->size(); ++i) {
      EXPECT_LT((*s)[i - 1], (*s)[i]);  // Sorted, distinct.
    }
    for (int v : *s) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 8);
    }
  }
}

TEST(KDppSamplerTest, RejectsNullRng) {
  Rng rng(13);
  auto kdpp = KDpp::Create(RandomPsdKernel(4, &rng), 2);
  ASSERT_TRUE(kdpp.ok());
  EXPECT_FALSE(kdpp->Sample(nullptr).ok());
}

TEST(KDppSamplerTest, EmpiricalDistributionMatchesExact) {
  Rng rng(14);
  const int m = 5, k = 2;
  auto kdpp = KDpp::Create(RandomPsdKernel(m, &rng), k);
  ASSERT_TRUE(kdpp.ok());
  auto exact = kdpp->EnumerateProbabilities();
  ASSERT_TRUE(exact.ok());

  std::map<std::vector<int>, int> counts;
  Rng sample_rng(15);
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    auto s = kdpp->Sample(&sample_rng);
    ASSERT_TRUE(s.ok());
    ++counts[*s];
  }
  for (const auto& [subset, p] : *exact) {
    const double empirical =
        counts.count(subset)
            ? counts[subset] / static_cast<double>(trials)
            : 0.0;
    // Binomial std-dev is about sqrt(p/n) ~ 0.002; allow 5 sigma.
    EXPECT_NEAR(empirical, p, 5.0 * std::sqrt(p / trials) + 2e-3);
  }
}

TEST(KDppSamplerTest, MarginalFrequenciesMatchMarginalKernel) {
  Rng rng(16);
  const int m = 6, k = 3;
  auto kdpp = KDpp::Create(RandomPsdKernel(m, &rng), k);
  ASSERT_TRUE(kdpp.ok());
  const Matrix marginal = kdpp->MarginalKernel();

  Vector freq(m);
  Rng sample_rng(17);
  const int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    auto s = kdpp->Sample(&sample_rng);
    ASSERT_TRUE(s.ok());
    for (int i : *s) freq[i] += 1.0;
  }
  for (int i = 0; i < m; ++i) {
    EXPECT_NEAR(freq[i] / trials, marginal(i, i), 0.015) << "item " << i;
  }
}

TEST(KDppTest, RejectsEspTableOverflow) {
  // Regression: with eigenvalues {1e-150, 1e-150, 1e200, 1e200} and k=3,
  // e_3 itself is ~2e250 (finite) but the intermediate e_2 row of the
  // Algorithm-1 table overflows to inf. The old code accepted the kernel
  // and the sampler's backward walk then divided inf by inf; Create must
  // reject it with a clear NumericalError instead.
  Matrix k = Matrix::Diagonal(Vector{1e-150, 1e-150, 1e200, 1e200});
  auto r = KDpp::Create(k, 3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNumericalError);
  EXPECT_NE(r.status().message().find("ESP table"), std::string::npos);
}

TEST(KDppTest, MarginalKernelStaysFiniteAcrossMagnitudes) {
  // Regression for the log-domain marginal weights: uniform kernel
  // scalings spanning ~200 orders of magnitude must leave the marginal
  // kernel finite with trace exactly k (the marginal kernel of c*L for a
  // k-DPP is NOT scale-free, but its trace is).
  Rng rng(19);
  const Matrix base = RandomPsdKernel(6, &rng);
  for (double scale : {1e-100, 1.0, 1e100}) {
    Matrix kernel = base;
    kernel *= scale;
    auto kdpp = KDpp::Create(kernel, 3);
    ASSERT_TRUE(kdpp.ok()) << "scale " << scale;
    const Matrix mk = kdpp->MarginalKernel();
    EXPECT_TRUE(mk.AllFinite()) << "scale " << scale;
    EXPECT_NEAR(mk.Trace(), 3.0, 1e-8) << "scale " << scale;
    const Matrix g = kdpp->LogNormalizerGradient();
    EXPECT_TRUE(g.AllFinite()) << "scale " << scale;
  }
}

TEST(KDppTest, LogNormalizerGradientMatchesUnnormalized) {
  // On moderate kernels the log-domain gradient must equal the raw
  // gradient divided by Z_k to high relative accuracy.
  Rng rng(20);
  auto kdpp = KDpp::Create(RandomPsdKernel(6, &rng), 3);
  ASSERT_TRUE(kdpp.ok());
  Matrix expected = kdpp->NormalizerGradient();
  expected *= std::exp(-kdpp->LogNormalizer());
  const Matrix actual = kdpp->LogNormalizerGradient();
  EXPECT_LT((actual - expected).MaxAbs(),
            1e-10 * std::max(1.0, expected.MaxAbs()));
}

TEST(KDppTest, EnumerationGuardTriggers) {
  Rng rng(18);
  auto kdpp = KDpp::Create(RandomPsdKernel(12, &rng), 6);
  ASSERT_TRUE(kdpp.ok());
  EXPECT_FALSE(kdpp->EnumerateProbabilities(/*max_subsets=*/10).ok());
}

}  // namespace
}  // namespace lkpdpp
