// Tests for ranking metrics and the evaluator against hand-computed
// values.

#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.h"
#include "eval/metrics.h"

namespace lkpdpp {
namespace {

Dataset TinyDataset() {
  // 5 users x 12 items, single category per item: item i -> category i%4.
  std::vector<RatingEvent> events;
  for (int u = 0; u < 5; ++u) {
    for (int i = 0; i < 12; ++i) events.push_back({u, i, 5.0, i});
  }
  CategoryTable cats;
  cats.num_categories = 4;
  cats.item_categories.resize(12);
  for (int i = 0; i < 12; ++i) cats.item_categories[i] = {i % 4};
  auto ds = Dataset::FromRatings(events, cats, "tiny", 5.0, 5);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).ValueOrDie();
}

TEST(RecallTest, HandComputed) {
  // 2 of 4 test items in the top 3.
  std::vector<int> ranked = {7, 1, 9};
  std::vector<int> test = {1, 9, 2, 5};
  EXPECT_DOUBLE_EQ(RecallAtN(ranked, test, 3), 0.5);
}

TEST(RecallTest, EmptyTestSetIsZero) {
  EXPECT_DOUBLE_EQ(RecallAtN({1, 2}, {}, 2), 0.0);
}

TEST(RecallTest, CutoffShorterThanList) {
  std::vector<int> ranked = {1, 2, 3};
  std::vector<int> test = {3};
  EXPECT_DOUBLE_EQ(RecallAtN(ranked, test, 2), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtN(ranked, test, 3), 1.0);
}

TEST(NdcgTest, PerfectRankingIsOne) {
  std::vector<int> ranked = {4, 7};
  std::vector<int> test = {4, 7};
  EXPECT_NEAR(NdcgAtN(ranked, test, 2), 1.0, 1e-12);
}

TEST(NdcgTest, HandComputedPartial) {
  // Hit at position 2 only; one relevant item.
  std::vector<int> ranked = {9, 4, 8};
  std::vector<int> test = {4};
  const double dcg = 1.0 / std::log2(3.0);
  EXPECT_NEAR(NdcgAtN(ranked, test, 3), dcg / 1.0, 1e-12);
}

TEST(NdcgTest, LowerPositionScoresLess) {
  std::vector<int> test = {5};
  EXPECT_GT(NdcgAtN({5, 1, 2}, test, 3), NdcgAtN({1, 2, 5}, test, 3));
}

TEST(NdcgTest, IdealTruncatesAtTestSize) {
  // One test item, cutoff 5: IDCG = 1 (single hit at rank 1).
  std::vector<int> ranked = {0, 1, 2, 3, 9};
  std::vector<int> test = {9};
  EXPECT_NEAR(NdcgAtN(ranked, test, 5), 1.0 / std::log2(6.0), 1e-12);
}

TEST(CategoryCoverageTest, CountsDistinctCategories) {
  Dataset ds = TinyDataset();
  // Items 0,4,8 share category 0 -> coverage 1/4.
  EXPECT_DOUBLE_EQ(CategoryCoverageAtN({0, 4, 8}, 3, ds), 0.25);
  // Items 0,1,2 cover categories 0,1,2 -> 3/4.
  EXPECT_DOUBLE_EQ(CategoryCoverageAtN({0, 1, 2}, 3, ds), 0.75);
}

TEST(CategoryCoverageTest, CutoffLimitsItems) {
  Dataset ds = TinyDataset();
  EXPECT_DOUBLE_EQ(CategoryCoverageAtN({0, 1, 2, 3}, 2, ds), 0.5);
}

TEST(FScoreTest, HarmonicOfAccuracyAndCoverage) {
  const double f = FScore(0.2, 0.4, 0.6);
  const double acc = 0.3;
  EXPECT_NEAR(f, 2.0 * acc * 0.6 / (acc + 0.6), 1e-12);
}

TEST(FScoreTest, ZeroInputsGiveZero) {
  EXPECT_DOUBLE_EQ(FScore(0.0, 0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(FScore(0.5, 0.5, 0.0), 0.0);
}

TEST(FScoreTest, ReproducesPaperComposition) {
  // Beauty PR row of Table II: Re@5=.0788, Nd@5=.0808, CC@5=.0579
  // => F@5 = .0671 in the paper.
  EXPECT_NEAR(FScore(0.0788, 0.0808, 0.0579), 0.0671, 5e-4);
  // ML PR row: Re=.0831, Nd=.0895, CC=.3417 => F=.1378.
  EXPECT_NEAR(FScore(0.0831, 0.0895, 0.3417), 0.1378, 5e-4);
}

TEST(IldTest, IdenticalCategoriesGiveZero) {
  Dataset ds = TinyDataset();
  EXPECT_DOUBLE_EQ(IntraListDistanceAtN({0, 4, 8}, 3, ds), 0.0);
}

TEST(IldTest, DisjointCategoriesGiveOne) {
  Dataset ds = TinyDataset();
  EXPECT_DOUBLE_EQ(IntraListDistanceAtN({0, 1, 2}, 3, ds), 1.0);
}

TEST(IldTest, SingleItemListIsZero) {
  Dataset ds = TinyDataset();
  EXPECT_DOUBLE_EQ(IntraListDistanceAtN({0}, 1, ds), 0.0);
}

TEST(TopNTest, OrdersByScoreDescending) {
  Vector scores{0.1, 0.9, 0.5, 0.7};
  std::vector<bool> excluded(4, false);
  EXPECT_EQ(TopNExcluding(scores, 2, excluded),
            (std::vector<int>{1, 3}));
}

TEST(TopNTest, RespectsExclusions) {
  Vector scores{0.1, 0.9, 0.5, 0.7};
  std::vector<bool> excluded = {false, true, false, false};
  EXPECT_EQ(TopNExcluding(scores, 2, excluded),
            (std::vector<int>{3, 2}));
}

TEST(TopNTest, TiesBreakBySmallerIndex) {
  Vector scores{0.5, 0.5, 0.5};
  std::vector<bool> excluded(3, false);
  EXPECT_EQ(TopNExcluding(scores, 2, excluded),
            (std::vector<int>{0, 1}));
}

TEST(TopNTest, RequestLargerThanPool) {
  Vector scores{0.2, 0.4};
  std::vector<bool> excluded = {false, true};
  EXPECT_EQ(TopNExcluding(scores, 5, excluded), (std::vector<int>{0}));
}

}  // namespace
}  // namespace lkpdpp
