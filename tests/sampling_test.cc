// Tests for ground-set construction (S/R modes), negative sampling, and
// diverse pair sampling.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/synthetic.h"
#include "sampling/diverse_pairs.h"
#include "sampling/ground_set_builder.h"
#include "sampling/negative_sampler.h"

namespace lkpdpp {
namespace {

Dataset MakeDataset(uint64_t seed = 11) {
  SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 90;
  cfg.num_categories = 12;
  cfg.num_events = 7000;
  cfg.seed = seed;
  auto ds = GenerateSyntheticDataset(cfg);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).ValueOrDie();
}

int CountDistinct(const std::vector<int>& v) {
  return static_cast<int>(std::set<int>(v.begin(), v.end()).size());
}

// Dense tiny catalog: every user rated every item with the positive
// rating, so after the 70/10/20 split each user's unobserved pool is
// exactly their held-out test items.
Dataset MakeAllRatedDataset(int num_users = 12, int num_items = 12) {
  std::vector<RatingEvent> events;
  for (int u = 0; u < num_users; ++u) {
    for (int i = 0; i < num_items; ++i) events.push_back({u, i, 5.0, i});
  }
  CategoryTable cats;
  cats.num_categories = 2;
  cats.item_categories.assign(static_cast<size_t>(num_items), {0});
  auto ds = Dataset::FromRatings(events, cats, "tiny", 5.0, 5);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).ValueOrDie();
}

std::vector<int> UnobservedItems(const Dataset& ds, int user) {
  std::vector<int> out;
  for (int i = 0; i < ds.num_items(); ++i) {
    if (!ds.IsObserved(user, i)) out.push_back(i);
  }
  return out;
}

std::vector<int> ObservedItems(const Dataset& ds, int user) {
  std::vector<int> out;
  for (int i = 0; i < ds.num_items(); ++i) {
    if (ds.IsObserved(user, i)) out.push_back(i);
  }
  return out;
}

TEST(NegativeSamplerTest, AvoidsObservedAndExcluded) {
  Dataset ds = MakeDataset();
  NegativeSampler sampler(&ds);
  Rng rng(3);
  const int user = 0;
  const std::vector<int> exclude = {ds.TestItems(user).empty()
                                        ? 0
                                        : ds.TestItems(user)[0]};
  for (int trial = 0; trial < 30; ++trial) {
    auto negs = sampler.Sample(user, 6, exclude, &rng);
    ASSERT_TRUE(negs.ok());
    EXPECT_EQ(CountDistinct(*negs), 6);
    for (int item : *negs) {
      EXPECT_FALSE(ds.IsObserved(user, item));
      EXPECT_EQ(std::count(exclude.begin(), exclude.end(), item), 0);
    }
  }
}

TEST(NegativeSamplerTest, FailsWhenPoolTooSmall) {
  // Tiny dataset: a user observing nearly everything cannot yield many
  // negatives.
  std::vector<RatingEvent> events;
  for (int u = 0; u < 12; ++u) {
    for (int i = 0; i < 12; ++i) {
      if (u != 0 || i < 11) events.push_back({u, i, 5.0, i});
    }
  }
  CategoryTable cats;
  cats.num_categories = 2;
  cats.item_categories.assign(12, {0});
  auto ds = Dataset::FromRatings(events, cats, "t", 5.0, 5);
  ASSERT_TRUE(ds.ok());
  NegativeSampler sampler(&*ds);
  Rng rng(5);
  // User 0 has ~9 observed of 12 items; asking for 10 negatives fails.
  EXPECT_FALSE(sampler.Sample(0, 10, {}, &rng).ok());
}

TEST(NegativeSamplerTest, ExactPoolBoundary) {
  Dataset ds = MakeAllRatedDataset();
  NegativeSampler sampler(&ds);
  Rng rng(23);
  const std::vector<int> pool = UnobservedItems(ds, 0);
  ASSERT_FALSE(pool.empty());
  // Draining the entire pool succeeds and returns exactly the pool.
  auto all = sampler.Sample(0, static_cast<int>(pool.size()), {}, &rng);
  ASSERT_TRUE(all.ok());
  std::vector<int> sorted = *all;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, pool);
  // One more than the pool fails up front.
  auto over = sampler.Sample(0, static_cast<int>(pool.size()) + 1, {}, &rng);
  EXPECT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kFailedPrecondition);
}

TEST(NegativeSamplerTest, ObservedExcludesDoNotShrinkPool) {
  // Excluding items the user already observed must not make the sampler
  // think the unobserved pool is smaller than it is (regression: the
  // feasibility guard used to subtract |exclude| wholesale and falsely
  // reported exhaustion on small catalogs).
  Dataset ds = MakeAllRatedDataset();
  NegativeSampler sampler(&ds);
  Rng rng(25);
  const std::vector<int> pool = UnobservedItems(ds, 0);
  const std::vector<int> observed = ObservedItems(ds, 0);
  ASSERT_GT(observed.size(), pool.size());
  auto negs = sampler.Sample(0, static_cast<int>(pool.size()), observed,
                             &rng);
  ASSERT_TRUE(negs.ok());
  EXPECT_EQ(negs->size(), pool.size());
}

TEST(NegativeSamplerTest, AllObservedUserFailsGracefully) {
  // Excluding the whole unobserved pool leaves nothing to draw: the
  // effective catalog is fully observed for this user.
  Dataset ds = MakeAllRatedDataset();
  NegativeSampler sampler(&ds);
  Rng rng(27);
  const std::vector<int> pool = UnobservedItems(ds, 0);
  auto one = sampler.Sample(0, 1, pool, &rng);
  EXPECT_FALSE(one.ok());
  EXPECT_EQ(one.status().code(), StatusCode::kFailedPrecondition);
  // A zero-count request is trivially satisfiable.
  auto zero = sampler.Sample(0, 0, pool, &rng);
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(zero->empty());
}

TEST(NegativeSamplerTest, NearExhaustionUsesExactSampling) {
  // A larger catalog where the effective pool is a sliver of the item
  // space (pool/m < 1/250): the sampler must enumerate the pool rather
  // than reject (rejection needs ~m/pool attempts per draw and would
  // blow its attempt budget).
  Dataset ds = MakeAllRatedDataset(30, 1300);
  NegativeSampler sampler(&ds);
  Rng rng(35);
  const std::vector<int> pool = UnobservedItems(ds, 0);
  ASSERT_GT(pool.size(), 10u);
  // Exclude all but the last 5 unobserved items.
  const std::vector<int> exclude(pool.begin(), pool.end() - 5);
  for (int trial = 0; trial < 50; ++trial) {
    auto negs = sampler.Sample(0, 1, exclude, &rng);
    ASSERT_TRUE(negs.ok()) << negs.status().ToString();
    EXPECT_TRUE(std::find(pool.end() - 5, pool.end(), (*negs)[0]) !=
                pool.end());
  }
  // Draining the remaining sliver exactly also terminates.
  auto all = sampler.Sample(0, 5, exclude, &rng);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(CountDistinct(*all), 5);
}

TEST(GroundSetBuilderTest, KLargerThanCatalogYieldsEmptyEpoch) {
  // No user can have more train positives than there are items, so
  // k = num_items + 1 produces zero instances (and no error).
  Dataset ds = MakeDataset();
  GroundSetBuilder builder(&ds, ds.num_items() + 1, 2,
                           TargetSelection::kSequential);
  Rng rng(29);
  auto epoch = builder.BuildEpoch(&rng);
  ASSERT_TRUE(epoch.ok());
  EXPECT_TRUE(epoch->empty());
}

TEST(GroundSetBuilderTest, UserBelowKYieldsNoInstances) {
  // Every user in the tiny catalog has ~8-10 train positives; a window of
  // k = num_items can never be filled, so the ground set stays empty.
  Dataset ds = MakeAllRatedDataset();
  GroundSetBuilder builder(&ds, ds.num_items(), 1,
                           TargetSelection::kRandom);
  Rng rng(31);
  for (int u = 0; u < ds.num_users(); ++u) {
    auto insts = builder.BuildForUser(u, &rng);
    ASSERT_TRUE(insts.ok());
    EXPECT_TRUE(insts->empty()) << "user " << u;
  }
}

TEST(GroundSetBuilderTest, PropagatesNegativeSamplingExhaustion) {
  // Users observe ~80% of a 12-item catalog; asking for 10 negatives per
  // instance cannot be satisfied and must surface as an error, not an
  // abort or an undersized instance.
  Dataset ds = MakeAllRatedDataset();
  GroundSetBuilder builder(&ds, 4, 10, TargetSelection::kSequential);
  Rng rng(33);
  auto insts = builder.BuildForUser(0, &rng);
  EXPECT_FALSE(insts.ok());
  EXPECT_EQ(insts.status().code(), StatusCode::kFailedPrecondition);
}

TEST(GroundSetBuilderDeathTest, RejectsNonPositiveKAndN) {
  Dataset ds = MakeAllRatedDataset();
  EXPECT_DEATH(GroundSetBuilder(&ds, 0, 4, TargetSelection::kRandom), "");
  EXPECT_DEATH(GroundSetBuilder(&ds, 4, 0, TargetSelection::kRandom), "");
}

TEST(GroundSetBuilderTest, SequentialWindowsCoverAllTargets) {
  Dataset ds = MakeDataset();
  GroundSetBuilder builder(&ds, 4, 4, TargetSelection::kSequential);
  Rng rng(7);
  for (int u = 0; u < ds.num_users(); ++u) {
    auto insts = builder.BuildForUser(u, &rng);
    ASSERT_TRUE(insts.ok());
    const auto& train = ds.TrainItems(u);
    if (static_cast<int>(train.size()) < 4) {
      EXPECT_TRUE(insts->empty());
      continue;
    }
    std::set<int> covered;
    for (const TrainingInstance& inst : *insts) {
      for (int i = 0; i < inst.num_pos; ++i) {
        covered.insert(inst.items[static_cast<size_t>(i)]);
      }
    }
    // Every train positive appears in at least one window.
    for (int item : train) EXPECT_TRUE(covered.count(item)) << "user " << u;
  }
}

TEST(GroundSetBuilderTest, SequentialTargetsFollowChronology) {
  Dataset ds = MakeDataset();
  GroundSetBuilder builder(&ds, 5, 3, TargetSelection::kSequential);
  Rng rng(9);
  // Find a user with enough positives.
  for (int u = 0; u < ds.num_users(); ++u) {
    const auto& train = ds.TrainItems(u);
    if (static_cast<int>(train.size()) < 10) continue;
    auto insts = builder.BuildForUser(u, &rng);
    ASSERT_TRUE(insts.ok());
    ASSERT_FALSE(insts->empty());
    // First window is exactly the first k positives in order.
    const TrainingInstance& first = (*insts)[0];
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(first.items[static_cast<size_t>(i)], train[i]);
    }
    break;
  }
}

TEST(GroundSetBuilderTest, InstancesHaveDistinctItems) {
  Dataset ds = MakeDataset();
  for (TargetSelection mode :
       {TargetSelection::kSequential, TargetSelection::kRandom}) {
    GroundSetBuilder builder(&ds, 5, 5, mode);
    Rng rng(11);
    auto insts = builder.BuildEpoch(&rng);
    ASSERT_TRUE(insts.ok());
    ASSERT_FALSE(insts->empty());
    for (const TrainingInstance& inst : *insts) {
      EXPECT_EQ(inst.ground_size(), 10);
      EXPECT_EQ(inst.num_pos, 5);
      EXPECT_EQ(CountDistinct(inst.items), 10);
      // Targets observed, negatives not.
      for (int i = 0; i < inst.num_pos; ++i) {
        EXPECT_TRUE(ds.IsObserved(inst.user,
                                  inst.items[static_cast<size_t>(i)]));
      }
      for (int i = inst.num_pos; i < inst.ground_size(); ++i) {
        EXPECT_FALSE(ds.IsObserved(inst.user,
                                   inst.items[static_cast<size_t>(i)]));
      }
    }
  }
}

TEST(GroundSetBuilderTest, RandomModeVariesAcrossEpochs) {
  Dataset ds = MakeDataset();
  GroundSetBuilder builder(&ds, 4, 4, TargetSelection::kRandom);
  Rng rng(13);
  auto epoch1 = builder.BuildEpoch(&rng);
  auto epoch2 = builder.BuildEpoch(&rng);
  ASSERT_TRUE(epoch1.ok());
  ASSERT_TRUE(epoch2.ok());
  ASSERT_EQ(epoch1->size(), epoch2->size());
  int differing = 0;
  for (size_t i = 0; i < epoch1->size(); ++i) {
    if ((*epoch1)[i].items != (*epoch2)[i].items) ++differing;
  }
  EXPECT_GT(differing, static_cast<int>(epoch1->size()) / 2);
}

TEST(GroundSetBuilderTest, InstanceCountMatchesCeilOfTargets) {
  Dataset ds = MakeDataset();
  const int k = 4;
  GroundSetBuilder builder(&ds, k, 2, TargetSelection::kSequential);
  Rng rng(15);
  for (int u = 0; u < std::min(20, ds.num_users()); ++u) {
    auto insts = builder.BuildForUser(u, &rng);
    ASSERT_TRUE(insts.ok());
    const int t = static_cast<int>(ds.TrainItems(u).size());
    if (t < k) {
      EXPECT_TRUE(insts->empty());
    } else {
      EXPECT_EQ(static_cast<int>(insts->size()), (t + k - 1) / k);
    }
  }
}

TEST(TargetSelectionTest, Names) {
  EXPECT_STREQ(TargetSelectionName(TargetSelection::kSequential), "S");
  EXPECT_STREQ(TargetSelectionName(TargetSelection::kRandom), "R");
}

TEST(DiversePairsTest, PairsHaveRequestedSizeAndDisjointRoles) {
  Dataset ds = MakeDataset();
  DiversePairSampler sampler(&ds, 5);
  Rng rng(17);
  auto pairs = sampler.SamplePairs(30, &rng);
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs->size(), 30u);
  for (const DiverseSetPair& pair : *pairs) {
    EXPECT_EQ(pair.positive.size(), 5u);
    EXPECT_EQ(pair.negative.size(), 5u);
    EXPECT_EQ(CountDistinct(pair.positive), 5);
    EXPECT_EQ(CountDistinct(pair.negative), 5);
  }
}

TEST(DiversePairsTest, GreedySelectionMaximizesCoverage) {
  Dataset ds = MakeDataset();
  Rng rng(19);
  // Build a pool with known categories and verify greedy beats a random
  // subset on average coverage.
  std::vector<int> pool;
  for (int i = 0; i < ds.num_items(); ++i) pool.push_back(i);

  auto coverage = [&](const std::vector<int>& items) {
    std::set<int> cats;
    for (int i : items) {
      for (int c : ds.ItemCategories(i)) cats.insert(c);
    }
    return static_cast<int>(cats.size());
  };

  double greedy_total = 0.0, random_total = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    greedy_total += coverage(GreedyDiverseSubset(ds, pool, 5, &rng));
    std::vector<int> rand_pick = rng.SampleWithoutReplacement(
        static_cast<int>(pool.size()), 5);
    std::vector<int> rand_items;
    for (int idx : rand_pick) rand_items.push_back(pool[idx]);
    random_total += coverage(rand_items);
  }
  EXPECT_GT(greedy_total, random_total);
}

TEST(DiversePairsTest, GreedyHandlesSmallPool) {
  Dataset ds = MakeDataset();
  Rng rng(21);
  std::vector<int> pool = {0, 1};
  auto chosen = GreedyDiverseSubset(ds, pool, 5, &rng);
  EXPECT_EQ(chosen.size(), 2u);  // Pool exhausted gracefully.
}

TEST(DiversePairsTest, AnchoredPairLeadsWithAnchorAndStaysDisjoint) {
  Dataset ds = MakeDataset();
  DiversePairSampler sampler(&ds, 5);
  Rng rng(23);
  int user = -1;
  for (int u = 0; u < ds.num_users(); ++u) {
    if (static_cast<int>(ds.TrainItems(u).size()) >= 6) {
      user = u;
      break;
    }
  }
  ASSERT_GE(user, 0);
  const int anchor = ds.TrainItems(user)[0];
  auto pair = sampler.SamplePairAnchored(user, anchor, &rng);
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  ASSERT_EQ(pair->positive.size(), 5u);
  EXPECT_EQ(pair->positive[0], anchor);
  // The completion pool excluded the anchor, so it appears exactly once,
  // and the negatives avoid the whole positive set.
  EXPECT_EQ(CountDistinct(pair->positive), 5);
  ASSERT_EQ(pair->negative.size(), 5u);
  for (int n : pair->negative) {
    EXPECT_EQ(std::count(pair->positive.begin(), pair->positive.end(), n),
              0);
  }
}

TEST(DiversePairsTest, AnchoredPairAcceptsUnrecordedAnchor) {
  // The streaming anchor is typically a FRESH event the dataset has not
  // recorded; the pair must still form around it.
  Dataset ds = MakeDataset();
  DiversePairSampler sampler(&ds, 4);
  Rng rng(27);
  const int user = 0;
  const std::vector<int>& positives = ds.TrainItems(user);
  ASSERT_GE(static_cast<int>(positives.size()), 4);
  int fresh = -1;
  for (int i = 0; i < ds.num_items(); ++i) {
    if (std::count(positives.begin(), positives.end(), i) == 0) {
      fresh = i;
      break;
    }
  }
  ASSERT_GE(fresh, 0);
  auto pair = sampler.SamplePairAnchored(user, fresh, &rng);
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  EXPECT_EQ(pair->positive[0], fresh);
  EXPECT_EQ(CountDistinct(pair->positive), 4);
}

TEST(DiversePairsTest, AnchoredPairValidatesRangesAndFeasibility) {
  Dataset ds = MakeDataset();
  Rng rng(29);
  DiversePairSampler sampler(&ds, 5);
  EXPECT_FALSE(sampler.SamplePairAnchored(-1, 0, &rng).ok());
  EXPECT_FALSE(sampler.SamplePairAnchored(ds.num_users(), 0, &rng).ok());
  EXPECT_FALSE(sampler.SamplePairAnchored(0, -1, &rng).ok());
  EXPECT_FALSE(sampler.SamplePairAnchored(0, ds.num_items(), &rng).ok());
  // Too few usable positives around the anchor: soft-skippable failure.
  DiversePairSampler greedy_big(&ds, ds.num_items());
  EXPECT_FALSE(greedy_big.SamplePairAnchored(0, 0, &rng).ok());
}

}  // namespace
}  // namespace lkpdpp
