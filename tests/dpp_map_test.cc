// Tests for the standard DPP and greedy MAP inference extensions.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "core/dpp.h"
#include "core/kdpp.h"
#include "core/map_inference.h"
#include "kernels/gaussian_embedding.h"
#include "linalg/lu.h"
#include "testing_util.h"

namespace lkpdpp {
namespace {

// This suite's kernels are over-complete (rank n+2) with a 0.1 ridge for
// conditioning; seeds below are pinned against these parameters.
Matrix RandomPsd(int n, Rng* rng) {
  return testutil::RandomPsdKernel(n, rng, /*rank=*/n + 2, /*ridge=*/0.1);
}

TEST(DppTest, NormalizerIsDetLPlusI) {
  Rng rng(1);
  Matrix kernel = RandomPsd(5, &rng);
  auto dpp = Dpp::Create(kernel);
  ASSERT_TRUE(dpp.ok());
  Matrix lpi = kernel;
  lpi.AddDiagonal(1.0);
  auto det = Determinant(lpi);
  ASSERT_TRUE(det.ok());
  EXPECT_NEAR(dpp->LogNormalizer(), std::log(*det), 1e-9);
}

TEST(DppTest, ProbabilitiesOverAllSubsetsSumToOne) {
  Rng rng(2);
  const int m = 5;
  auto dpp = Dpp::Create(RandomPsd(m, &rng));
  ASSERT_TRUE(dpp.ok());
  double total = 0.0;
  // All 2^m subsets via bitmask.
  for (int mask = 0; mask < (1 << m); ++mask) {
    std::vector<int> subset;
    for (int i = 0; i < m; ++i) {
      if (mask & (1 << i)) subset.push_back(i);
    }
    auto p = dpp->Prob(subset);
    ASSERT_TRUE(p.ok());
    total += *p;
  }
  EXPECT_NEAR(total, 1.0, 1e-8);
}

TEST(DppTest, EmptySetHasNormalizerMass) {
  Rng rng(3);
  auto dpp = Dpp::Create(RandomPsd(4, &rng));
  ASSERT_TRUE(dpp.ok());
  auto p = dpp->Prob({});
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, std::exp(-dpp->LogNormalizer()), 1e-12);
}

TEST(DppTest, MarginalKernelDiagonalMatchesEnumeration) {
  Rng rng(4);
  const int m = 5;
  auto dpp = Dpp::Create(RandomPsd(m, &rng));
  ASSERT_TRUE(dpp.ok());
  Vector marginal(m);
  for (int mask = 0; mask < (1 << m); ++mask) {
    std::vector<int> subset;
    for (int i = 0; i < m; ++i) {
      if (mask & (1 << i)) subset.push_back(i);
    }
    auto p = dpp->Prob(subset);
    ASSERT_TRUE(p.ok());
    for (int i : subset) marginal[i] += *p;
  }
  const Matrix mk = dpp->MarginalKernel();
  for (int i = 0; i < m; ++i) EXPECT_NEAR(mk(i, i), marginal[i], 1e-8);
  EXPECT_NEAR(mk.Trace(), dpp->ExpectedSize(), 1e-10);
}

TEST(DppTest, SampleSizeDistributionMatchesExpectation) {
  Rng rng(5);
  auto dpp = Dpp::Create(RandomPsd(6, &rng));
  ASSERT_TRUE(dpp.ok());
  Rng sample_rng(6);
  double mean_size = 0.0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    auto s = dpp->Sample(&sample_rng);
    ASSERT_TRUE(s.ok());
    mean_size += static_cast<double>(s->size()) / trials;
    // Distinct ascending indices.
    for (size_t i = 1; i < s->size(); ++i) {
      EXPECT_LT((*s)[i - 1], (*s)[i]);
    }
  }
  EXPECT_NEAR(mean_size, dpp->ExpectedSize(), 0.05);
}

TEST(DppTest, EmpiricalMarginalsMatchKernel) {
  Rng rng(7);
  const int m = 5;
  auto dpp = Dpp::Create(RandomPsd(m, &rng));
  ASSERT_TRUE(dpp.ok());
  const Matrix mk = dpp->MarginalKernel();
  Rng sample_rng(8);
  Vector freq(m);
  const int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    auto s = dpp->Sample(&sample_rng);
    ASSERT_TRUE(s.ok());
    for (int i : *s) freq[i] += 1.0 / trials;
  }
  for (int i = 0; i < m; ++i) {
    EXPECT_NEAR(freq[i], mk(i, i), 0.015) << "item " << i;
  }
}

TEST(DppTest, ValidationErrors) {
  Rng rng(9);
  Matrix kernel = RandomPsd(4, &rng);
  auto dpp = Dpp::Create(kernel);
  ASSERT_TRUE(dpp.ok());
  EXPECT_FALSE(dpp->LogProb({0, 0}).ok());
  EXPECT_FALSE(dpp->LogProb({9}).ok());
  EXPECT_FALSE(dpp->Sample(nullptr).ok());
  EXPECT_FALSE(Dpp::Create(Matrix(2, 3)).ok());
  EXPECT_FALSE(Dpp::Create(Matrix{{1, 0}, {0, -1}}).ok());
}

TEST(DppVsKdppTest, ConditionalProbabilityMatchesKdpp) {
  // P_kDPP(S) = P_DPP(S) / sum_{|T|=k} P_DPP(T): the k-DPP is the
  // standard DPP conditioned on cardinality (paper Section II/III-A2).
  Rng rng(10);
  const int m = 6, k = 3;
  Matrix kernel = RandomPsd(m, &rng);
  auto dpp = Dpp::Create(kernel);
  auto kdpp = KDpp::Create(kernel, k);
  ASSERT_TRUE(dpp.ok());
  ASSERT_TRUE(kdpp.ok());

  double mass_k = 0.0;
  std::vector<int> idx = {0, 1, 2};
  do {
    auto p = dpp->Prob(idx);
    ASSERT_TRUE(p.ok());
    mass_k += *p;
  } while (NextCombination(&idx, m));

  const std::vector<int> probe = {1, 3, 5};
  auto p_dpp = dpp->Prob(probe);
  auto p_kdpp = kdpp->Prob(probe);
  ASSERT_TRUE(p_dpp.ok());
  ASSERT_TRUE(p_kdpp.ok());
  EXPECT_NEAR(*p_kdpp, *p_dpp / mass_k, 1e-9);
}

TEST(GreedyMapTest, DiagonalKernelPicksLargestEntries) {
  Matrix kernel = Matrix::Diagonal(Vector{0.5, 3.0, 1.0, 2.0});
  GreedyMapOptions options;
  options.max_size = 2;
  auto s = GreedyMapInference(kernel, options);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, (std::vector<int>{1, 3}));  // Selection order: 3.0, 2.0.
}

TEST(GreedyMapTest, SelectsDiverseClusterRepresentatives) {
  // Two tight clusters: greedy must pick one item from each before a
  // second item from either.
  Matrix emb{{0.0, 0.0}, {0.05, 0.0}, {3.0, 3.0}, {3.05, 3.0}};
  Matrix kernel = GaussianKernel(emb, 1.0);
  GreedyMapOptions options;
  options.max_size = 2;
  auto s = GreedyMapInference(kernel, options);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->size(), 2u);
  const bool first_cluster =
      (*s)[0] <= 1 || (*s)[1] <= 1;
  const bool second_cluster =
      (*s)[0] >= 2 || (*s)[1] >= 2;
  EXPECT_TRUE(first_cluster && second_cluster);
}

TEST(GreedyMapTest, MatchesExhaustiveArgmaxOnSmallKernels) {
  // Greedy is a (1 - 1/e)-approximation; on small well-conditioned
  // kernels it usually hits the exact argmax. We check it is never far
  // below and often equal.
  Rng rng(11);
  int exact_hits = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const int m = 6, k = 3;
    Matrix kernel = RandomPsd(m, &rng);
    GreedyMapOptions options;
    options.max_size = k;
    auto greedy = GreedyMapInference(kernel, options);
    ASSERT_TRUE(greedy.ok());
    std::vector<int> sorted = *greedy;
    std::sort(sorted.begin(), sorted.end());
    auto det_greedy = Determinant(kernel.PrincipalSubmatrix(sorted));
    ASSERT_TRUE(det_greedy.ok());

    double best = 0.0;
    std::vector<int> idx = {0, 1, 2};
    do {
      auto det = Determinant(kernel.PrincipalSubmatrix(idx));
      ASSERT_TRUE(det.ok());
      best = std::max(best, *det);
    } while (NextCombination(&idx, m));

    EXPECT_GE(*det_greedy, 0.3 * best);  // Loose submodularity bound.
    if (*det_greedy >= best * (1.0 - 1e-9)) ++exact_hits;
  }
  EXPECT_GE(exact_hits, 10);  // Exact most of the time in practice.
}

TEST(GreedyMapTest, StopsOnRankDeficiency) {
  // Rank-2 kernel: a third selection has zero gain and must not happen.
  Matrix v{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}, {2.0, -1.0}};
  Matrix kernel = MatMulTransB(v, v);
  GreedyMapOptions options;
  options.max_size = 4;
  auto s = GreedyMapInference(kernel, options);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 2u);
}

TEST(GreedyMapTest, StoppingThresholdScalesWithTheKernel) {
  // Regression for the absolute 1e-15 stop this replaced: a uniformly
  // tiny full-rank kernel must still fill the request (the old cutoff
  // reported NumericalError at 1e-150 scale), and a uniformly huge
  // rank-2 kernel must still stop at its numerical rank (the old cutoff
  // kept selecting round-off residues at 1e150 scale).
  GreedyMapOptions options;
  options.max_size = 3;
  Matrix tiny = Matrix::Diagonal(Vector{1e-150, 2e-150, 3e-150});
  auto s = GreedyMapInference(tiny, options);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(*s, (std::vector<int>{2, 1, 0}));

  Matrix v{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}, {2.0, -1.0}};
  v *= 1e75;  // Kernel entries at ~1e150 scale, still exactly rank 2.
  Matrix huge = MatMulTransB(v, v);
  options.max_size = 4;
  auto h = GreedyMapInference(huge, options);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  EXPECT_EQ(h->size(), 2u);
}

TEST(GreedyMapTest, ValidationErrors) {
  GreedyMapOptions options;
  EXPECT_FALSE(GreedyMapInference(Matrix(2, 3), options).ok());
  EXPECT_FALSE(
      GreedyMapInference(Matrix{{1, 2}, {0, 1}}, options).ok());
  options.max_size = 0;
  EXPECT_FALSE(
      GreedyMapInference(Matrix::Identity(3), options).ok());
  // All-zero kernel: no positive gain anywhere.
  options.max_size = 2;
  EXPECT_EQ(GreedyMapInference(Matrix(3, 3), options).status().code(),
            StatusCode::kNumericalError);
}

TEST(ElementaryDppSamplerTest, NeverEmitsDuplicateOnVanishedWeights) {
  // Regression: a 2-column basis over a 1-item ground set forces the
  // second iteration's residual weights to be all-zero once item 0 is
  // chosen. The old code fell back to Rng::Categorical's uniform draw
  // over ALL items, returning the duplicate subset {0, 0}; the sampler
  // must report NumericalError instead.
  Matrix basis(1, 2, 1.0);
  Rng rng(123);
  auto s = SampleElementaryDpp(basis, &rng);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kNumericalError);
}

TEST(ElementaryDppSamplerTest, AllZeroBasisFailsCleanly) {
  // No support at all: the very first draw has zero total mass.
  Matrix basis(3, 2, 0.0);
  Rng rng(124);
  auto s = SampleElementaryDpp(basis, &rng);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kNumericalError);
}

TEST(ElementaryDppSamplerTest, ValidBasisStillSamplesDistinctItems) {
  // Healthy path: spans of orthonormal eigenvectors keep emitting k
  // distinct indices after the zero-mass guard.
  Rng rng(125);
  auto kdpp = KDpp::Create(RandomPsd(6, &rng), 3);
  ASSERT_TRUE(kdpp.ok());
  Matrix basis(6, 3);
  for (int c = 0; c < 3; ++c) {
    basis.SetCol(c, kdpp->eigenvectors().Col(3 + c));
  }
  Rng sample_rng(126);
  for (int trial = 0; trial < 50; ++trial) {
    Matrix b = basis;
    auto s = SampleElementaryDpp(std::move(b), &sample_rng);
    ASSERT_TRUE(s.ok());
    ASSERT_EQ(s->size(), 3u);
    EXPECT_LT((*s)[0], (*s)[1]);
    EXPECT_LT((*s)[1], (*s)[2]);
  }
}

TEST(DiversifiedRerankTest, BalancesQualityAndDiversity) {
  // Item 1 is a near-duplicate of item 0 with slightly lower quality;
  // plain top-2 would take {0, 1}, the re-ranker must take the distinct
  // item 2 instead.
  Matrix emb{{0.0, 0.0}, {0.01, 0.0}, {4.0, 4.0}};
  Matrix diversity = GaussianKernel(emb, 1.0);
  Vector quality{2.0, 1.9, 1.0};
  auto s = DiversifiedRerank(quality, diversity, 2);
  ASSERT_TRUE(s.ok());
  std::vector<int> sorted = *s;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 2}));
}

TEST(DiversifiedRerankTest, RejectsNonPositiveQuality) {
  Matrix diversity = Matrix::Identity(2);
  EXPECT_FALSE(DiversifiedRerank(Vector{1.0, 0.0}, diversity, 1).ok());
  EXPECT_FALSE(DiversifiedRerank(Vector{1.0}, diversity, 1).ok());
}

}  // namespace
}  // namespace lkpdpp
