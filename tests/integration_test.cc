// End-to-end integration tests: full trainings through the experiment
// runner, probability-ranking probes, and criterion plug-in swaps.
// These are deliberately small (tens of users, a handful of epochs) so
// the whole file runs in seconds while still exercising every layer:
// data -> sampling -> kernels -> criterion -> autodiff -> optimizer ->
// evaluator.

#include <gtest/gtest.h>

#include <memory>

#include "data/synthetic.h"
#include "core/kdpp.h"
#include "exp/probes.h"
#include "exp/runner.h"

namespace lkpdpp {
namespace {

Dataset MakeDataset(uint64_t seed = 71) {
  SyntheticConfig cfg;
  cfg.num_users = 70;
  cfg.num_items = 90;
  cfg.num_categories = 10;
  cfg.num_events = 9000;
  cfg.seed = seed;
  auto ds = GenerateSyntheticDataset(cfg);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).ValueOrDie();
}

ExperimentSpec FastSpec() {
  ExperimentSpec spec;
  spec.model = ModelKind::kMf;
  spec.criterion = CriterionKind::kLkp;
  spec.lkp_mode = LkpMode::kNegativeAndPositive;
  spec.k = 3;
  spec.n = 3;
  spec.embedding_dim = 8;
  spec.epochs = 6;
  spec.eval_every = 2;
  spec.patience = 0;
  spec.batch_size = 32;
  spec.learning_rate = 0.05;
  return spec;
}

TEST(IntegrationTest, LkpTrainingImprovesValidationNdcg) {
  Dataset ds = MakeDataset();
  ExperimentRunner runner(&ds);
  auto result = runner.Run(FastSpec());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GE(result->validation_history.size(), 2u);
  // Validation quality at the best epoch must beat the first checkpoint.
  EXPECT_GE(result->best_validation_ndcg,
            result->validation_history.front());
  EXPECT_GT(result->best_validation_ndcg, 0.0);
}

TEST(IntegrationTest, LkpBeatsRandomRanking) {
  Dataset ds = MakeDataset();
  ExperimentRunner runner(&ds);
  auto result = runner.Run(FastSpec());
  ASSERT_TRUE(result.ok());
  // A random ranker's Recall@10 is about 10/num_items ~ 0.11 scaled by
  // test-set size; trained LkP must clearly beat chance at Recall@20.
  const double random_recall =
      20.0 / static_cast<double>(ds.num_items());
  EXPECT_GT(result->test_metrics.at(20).recall, random_recall);
}

TEST(IntegrationTest, AllCriteriaTrainOnMf) {
  Dataset ds = MakeDataset();
  ExperimentRunner runner(&ds);
  for (CriterionKind crit :
       {CriterionKind::kBce, CriterionKind::kBpr, CriterionKind::kSetRank,
        CriterionKind::kSet2SetRank, CriterionKind::kLkp}) {
    ExperimentSpec spec = FastSpec();
    spec.criterion = crit;
    spec.epochs = 3;
    auto result = runner.Run(spec);
    ASSERT_TRUE(result.ok())
        << CriterionKindName(crit) << ": " << result.status().ToString();
    EXPECT_GT(result->test_metrics.at(10).recall, 0.0)
        << CriterionKindName(crit);
  }
}

TEST(IntegrationTest, AllBackbonesTrainWithLkp) {
  Dataset ds = MakeDataset();
  ExperimentRunner runner(&ds);
  for (ModelKind model : {ModelKind::kMf, ModelKind::kGcn,
                          ModelKind::kNeuMf, ModelKind::kGcmc}) {
    ExperimentSpec spec = FastSpec();
    spec.model = model;
    spec.epochs = 3;
    auto result = runner.Run(spec);
    ASSERT_TRUE(result.ok())
        << ModelKindName(model) << ": " << result.status().ToString();
    EXPECT_TRUE(result->test_metrics.count(5)) << ModelKindName(model);
  }
}

TEST(IntegrationTest, PsAndRModeVariantsRun) {
  Dataset ds = MakeDataset();
  ExperimentRunner runner(&ds);
  ExperimentSpec spec = FastSpec();
  spec.lkp_mode = LkpMode::kPositiveOnly;
  spec.target_mode = TargetSelection::kRandom;
  spec.epochs = 3;
  auto result = runner.Run(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(spec.VariantName(), "PR");
}

TEST(IntegrationTest, ETypeKernelVariantRuns) {
  Dataset ds = MakeDataset();
  ExperimentRunner runner(&ds);
  ExperimentSpec spec = FastSpec();
  spec.lkp_mode = LkpMode::kPositiveOnly;
  spec.kernel_source = KernelSource::kEmbedding;
  spec.epochs = 3;
  auto result = runner.Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(spec.VariantName(), "PSE");
  EXPECT_GT(result->test_metrics.at(10).category_coverage, 0.0);
}

TEST(IntegrationTest, NpsWithMismatchedNRejected) {
  Dataset ds = MakeDataset();
  ExperimentRunner runner(&ds);
  ExperimentSpec spec = FastSpec();
  spec.n = spec.k + 1;
  EXPECT_EQ(runner.Run(spec).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(IntegrationTest, VariantNamesMatchPaper) {
  ExperimentSpec spec;
  spec.criterion = CriterionKind::kLkp;
  spec.lkp_mode = LkpMode::kPositiveOnly;
  spec.target_mode = TargetSelection::kSequential;
  EXPECT_EQ(spec.VariantName(), "PS");
  spec.lkp_mode = LkpMode::kNegativeAndPositive;
  EXPECT_EQ(spec.VariantName(), "NPS");
  spec.target_mode = TargetSelection::kRandom;
  EXPECT_EQ(spec.VariantName(), "NPR");
  spec.target_mode = TargetSelection::kSequential;
  spec.kernel_source = KernelSource::kEmbedding;
  EXPECT_EQ(spec.VariantName(), "NPSE");
  spec.criterion = CriterionKind::kBpr;
  EXPECT_EQ(spec.VariantName(), "BPR");
}

TEST(IntegrationTest, DiversityKernelIsCachedAcrossRuns) {
  Dataset ds = MakeDataset();
  ExperimentRunner runner(&ds);
  auto k1 = runner.GetDiversityKernel();
  auto k2 = runner.GetDiversityKernel();
  ASSERT_TRUE(k1.ok());
  ASSERT_TRUE(k2.ok());
  EXPECT_EQ(*k1, *k2);  // Same pointer: trained once.
}

TEST(IntegrationTest, TrainingSharpensTargetSubsetProbability) {
  // The Figure 4 relevance-ranking effect: after training, the group of
  // subsets with all k targets has a higher mean probability than the
  // all-negative group, and higher than before training.
  Dataset ds = MakeDataset();
  ExperimentRunner runner(&ds);
  auto kernel = runner.GetDiversityKernel();
  ASSERT_TRUE(kernel.ok());

  const int k = 3, n = 3;
  ExperimentSpec spec = FastSpec();
  spec.k = k;
  spec.n = n;

  // Untrained model probe.
  auto untrained = runner.MakeModel(spec);
  ASSERT_TRUE(untrained.ok());
  Rng probe_rng(5);
  auto before = ProbeProbabilityByTargetCount(
      untrained->get(), ds, **kernel, k, n, 40, QualityTransform::kExp,
      &probe_rng);
  ASSERT_TRUE(before.ok());

  // Trained model probe.
  std::unique_ptr<RecModel> trained;
  spec.epochs = 8;
  auto result = runner.RunAndKeepModel(spec, &trained);
  ASSERT_TRUE(result.ok());
  Rng probe_rng2(5);
  auto after = ProbeProbabilityByTargetCount(
      trained.get(), ds, **kernel, k, n, 40, QualityTransform::kExp,
      &probe_rng2);
  ASSERT_TRUE(after.ok());

  // After training: all-target group beats all-negative group.
  EXPECT_GT(after->mean_probability[k], after->mean_probability[0]);
  // And the separation grew relative to the untrained model.
  const double gap_before =
      before->mean_probability[k] - before->mean_probability[0];
  const double gap_after =
      after->mean_probability[k] - after->mean_probability[0];
  EXPECT_GT(gap_after, gap_before);
}

TEST(IntegrationTest, ProbeGroupProbabilitiesFormDistribution) {
  // Weighted by group sizes, the group means must reassemble ~1.
  Dataset ds = MakeDataset();
  ExperimentRunner runner(&ds);
  auto kernel = runner.GetDiversityKernel();
  ASSERT_TRUE(kernel.ok());
  ExperimentSpec spec = FastSpec();
  auto model = runner.MakeModel(spec);
  ASSERT_TRUE(model.ok());
  Rng rng(9);
  const int k = 3, n = 3;
  auto probe = ProbeProbabilityByTargetCount(
      model->get(), ds, **kernel, k, n, 25, QualityTransform::kExp, &rng);
  ASSERT_TRUE(probe.ok());
  double total = 0.0;
  for (int g = 0; g <= k; ++g) {
    // Group g has C(k,g)*C(n,k-g) subsets.
    total += probe->mean_probability[static_cast<size_t>(g)] *
             BinomialCoefficient(k, g) * BinomialCoefficient(n, k - g);
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(IntegrationTest, EvaluatorMetricsAreConsistent) {
  Dataset ds = MakeDataset();
  ExperimentRunner runner(&ds);
  auto result = runner.Run(FastSpec());
  ASSERT_TRUE(result.ok());
  // Monotonicity in N: recall and CC can only grow with a longer list.
  const auto& m5 = result->test_metrics.at(5);
  const auto& m10 = result->test_metrics.at(10);
  const auto& m20 = result->test_metrics.at(20);
  EXPECT_LE(m5.recall, m10.recall + 1e-12);
  EXPECT_LE(m10.recall, m20.recall + 1e-12);
  EXPECT_LE(m5.category_coverage, m10.category_coverage + 1e-12);
  EXPECT_LE(m10.category_coverage, m20.category_coverage + 1e-12);
  // All metrics within [0, 1].
  for (const auto& [n, m] : result->test_metrics) {
    EXPECT_GE(m.recall, 0.0);
    EXPECT_LE(m.recall, 1.0);
    EXPECT_GE(m.ndcg, 0.0);
    EXPECT_LE(m.ndcg, 1.0);
    EXPECT_GE(m.category_coverage, 0.0);
    EXPECT_LE(m.category_coverage, 1.0);
  }
}

}  // namespace
}  // namespace lkpdpp
