// Golden-value regression tests.
//
// The k-DPP quantities here are pinned against *hand-computed* exact
// values: for any symmetric kernel L, e_k(lambda(L)) equals the sum of
// the k x k principal minors of L, so tridiagonal kernels with small
// integer entries give closed-form normalizers and subset probabilities.
// The Rng values are pinned against the xoshiro256** / SplitMix64
// reference streams so that any change to the generator (which would
// silently re-randomize every seeded experiment in the repo) fails loudly.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/esp.h"
#include "core/kdpp.h"
#include "linalg/matrix.h"
#include "testing_util.h"

namespace lkpdpp {
namespace {

// L3 = tridiag(1, 2, 1). Principal-minor sums:
//   e_1 = tr = 6, e_2 = 3 + 4 + 3 = 10, e_3 = det = 4.
Matrix Kernel3x3() { return Matrix{{2, 1, 0}, {1, 2, 1}, {0, 1, 2}}; }

// L4 = tridiag(1, 3, 1). Principal-minor sums:
//   e_1 = 12, e_2 = 8+9+9+8+9+8 = 51, e_3 = 21+24+24+21 = 90, e_4 = 55.
Matrix Kernel4x4() {
  return Matrix{{3, 1, 0, 0}, {1, 3, 1, 0}, {0, 1, 3, 1}, {0, 0, 1, 3}};
}

TEST(EspGoldenTest, SmallIntegerValues) {
  // e_k(1,2,3,4): 1, 10, 35, 50, 24 — exact in double arithmetic.
  const Vector v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(ElementarySymmetric(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(ElementarySymmetric(v, 1), 10.0);
  EXPECT_DOUBLE_EQ(ElementarySymmetric(v, 2), 35.0);
  EXPECT_DOUBLE_EQ(ElementarySymmetric(v, 3), 50.0);
  EXPECT_DOUBLE_EQ(ElementarySymmetric(v, 4), 24.0);

  const Vector all = AllElementarySymmetric(v, 4);
  ASSERT_EQ(all.size(), 5);
  for (int k = 0; k <= 4; ++k) {
    EXPECT_DOUBLE_EQ(all[k], ElementarySymmetric(v, k)) << "e_" << k;
  }
}

TEST(EspGoldenTest, ExclusionValues) {
  // values = (1,2,3): e_1 with entry i removed is (5, 4, 3).
  const Vector v{1.0, 2.0, 3.0};
  const Vector excl = ExclusionEsp(v, 1);
  ASSERT_EQ(excl.size(), 3);
  EXPECT_DOUBLE_EQ(excl[0], 5.0);
  EXPECT_DOUBLE_EQ(excl[1], 4.0);
  EXPECT_DOUBLE_EQ(excl[2], 3.0);
}

TEST(KDppGoldenTest, LogNormalizer3x3) {
  const std::pair<int, double> cases[] = {{1, 6.0}, {2, 10.0}, {3, 4.0}};
  for (const auto& [k, zk] : cases) {
    auto kdpp = KDpp::Create(Kernel3x3(), k);
    ASSERT_TRUE(kdpp.ok()) << "k=" << k;
    EXPECT_NEAR(kdpp->LogNormalizer(), std::log(zk), 1e-12) << "k=" << k;
  }
}

TEST(KDppGoldenTest, LogProb3x3) {
  auto kdpp = KDpp::Create(Kernel3x3(), 2);
  ASSERT_TRUE(kdpp.ok());
  // P({i,j}) = det(L_{ij}) / e_2 with dets 3, 4, 3 and e_2 = 10.
  EXPECT_NEAR(*kdpp->LogProb({0, 1}), std::log(0.3), 1e-12);
  EXPECT_NEAR(*kdpp->LogProb({0, 2}), std::log(0.4), 1e-12);
  EXPECT_NEAR(*kdpp->LogProb({1, 2}), std::log(0.3), 1e-12);
  // k = 1 reduces to diagonal-proportional selection: P({i}) = 2/6.
  auto k1 = KDpp::Create(Kernel3x3(), 1);
  ASSERT_TRUE(k1.ok());
  EXPECT_NEAR(*k1->Prob({1}), 2.0 / 6.0, 1e-12);
}

TEST(KDppGoldenTest, LogNormalizer4x4) {
  const std::pair<int, double> cases[] = {
      {1, 12.0}, {2, 51.0}, {3, 90.0}, {4, 55.0}};
  for (const auto& [k, zk] : cases) {
    auto kdpp = KDpp::Create(Kernel4x4(), k);
    ASSERT_TRUE(kdpp.ok()) << "k=" << k;
    EXPECT_NEAR(kdpp->LogNormalizer(), std::log(zk), 1e-12) << "k=" << k;
  }
}

TEST(KDppGoldenTest, LogProb4x4) {
  auto k2 = KDpp::Create(Kernel4x4(), 2);
  ASSERT_TRUE(k2.ok());
  // Adjacent pairs have det 8, non-adjacent det 9; e_2 = 51.
  EXPECT_NEAR(*k2->Prob({0, 1}), 8.0 / 51.0, 1e-12);
  EXPECT_NEAR(*k2->Prob({0, 2}), 9.0 / 51.0, 1e-12);
  EXPECT_NEAR(*k2->Prob({0, 3}), 9.0 / 51.0, 1e-12);

  auto k3 = KDpp::Create(Kernel4x4(), 3);
  ASSERT_TRUE(k3.ok());
  // Contiguous triples det 21, triples with a gap det 24; e_3 = 90.
  EXPECT_NEAR(*k3->Prob({0, 1, 2}), 21.0 / 90.0, 1e-12);
  EXPECT_NEAR(*k3->Prob({0, 1, 3}), 24.0 / 90.0, 1e-12);
  EXPECT_NEAR(*k3->Prob({1, 2, 3}), 21.0 / 90.0, 1e-12);
}

TEST(RngGoldenTest, Xoshiro256StarStarReferenceStream) {
  // First outputs of xoshiro256** seeded via SplitMix64(42); these match
  // the Blackman & Vigna reference implementation bit-for-bit.
  Rng rng(42);
  EXPECT_EQ(rng.Next(), 1546998764402558742ULL);
  EXPECT_EQ(rng.Next(), 6990951692964543102ULL);
  EXPECT_EQ(rng.Next(), 12544586762248559009ULL);
  EXPECT_EQ(rng.Next(), 17057574109182124193ULL);
}

TEST(RngGoldenTest, SplitMix64Reference) {
  uint64_t state = 42;
  EXPECT_EQ(SplitMix64(&state), 13679457532755275413ULL);
}

TEST(RngGoldenTest, UniformStreamPinned) {
  Rng rng(7);
  EXPECT_DOUBLE_EQ(rng.Uniform(), 0.70057648217968960);
  EXPECT_DOUBLE_EQ(rng.Uniform(), 0.27875122947378428);
  EXPECT_DOUBLE_EQ(rng.Uniform(), 0.83962746187641979);
}

TEST(RngDeterminismTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next()) << "draw " << i;
  }
  // Mixed-distribution draws stay in lockstep too.
  Rng c(9), d(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(c.Normal(), d.Normal());
    EXPECT_EQ(c.UniformInt(1000), d.UniformInt(1000));
  }
}

TEST(RngDeterminismTest, ForkIsDeterministic) {
  Rng a(55), b(55);
  Rng fa = a.Fork(), fb = b.Fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fa.Next(), fb.Next());
  // The fork is a different stream than the parent.
  Rng parent(55);
  Rng fork = parent.Fork();
  EXPECT_NE(fork.Next(), Rng(55).Next());
}

TEST(KDppDeterminismTest, SamplingIsReproducibleFromSeed) {
  Rng kernel_rng(31);
  auto kdpp =
      KDpp::Create(testutil::RandomPsdKernel(8, &kernel_rng), 3);
  ASSERT_TRUE(kdpp.ok());
  Rng s1(77), s2(77);
  for (int trial = 0; trial < 50; ++trial) {
    auto a = kdpp->Sample(&s1);
    auto b = kdpp->Sample(&s2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << "trial " << trial;
  }
}

}  // namespace
}  // namespace lkpdpp
