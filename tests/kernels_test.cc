// Tests for the diversity kernels (Eq. 3 trainer, Gaussian E-type) and
// the quality-diversity assembly (Eq. 2).

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/synthetic.h"
#include "kernels/diversity_kernel.h"
#include "kernels/gaussian_embedding.h"
#include "kernels/quality_diversity.h"
#include "linalg/eigen.h"
#include "testing_util.h"

namespace lkpdpp {
namespace {

using testutil::RandomMatrix;

Dataset SmallDataset(uint64_t seed = 42) {
  SyntheticConfig cfg;
  cfg.name = "tiny";
  cfg.num_users = 60;
  cfg.num_items = 80;
  cfg.num_categories = 10;
  cfg.num_events = 6000;
  cfg.seed = seed;
  auto ds = GenerateSyntheticDataset(cfg);
  EXPECT_TRUE(ds.ok()) << ds.status().ToString();
  return std::move(ds).ValueOrDie();
}

TEST(DiversityKernelTest, RandomKernelHasUnitDiagonal) {
  DiversityKernel k = DiversityKernel::Random(20, 8, 1);
  for (int i = 0; i < 20; ++i) EXPECT_NEAR(k.Entry(i, i), 1.0, 1e-12);
}

TEST(DiversityKernelTest, EntriesAreBoundedCosines) {
  DiversityKernel k = DiversityKernel::Random(20, 8, 2);
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 20; ++j) {
      EXPECT_LE(std::fabs(k.Entry(i, j)), 1.0 + 1e-12);
    }
  }
}

TEST(DiversityKernelTest, SubmatrixIsPsdAndSymmetric) {
  DiversityKernel k = DiversityKernel::Random(30, 10, 3);
  Matrix sub = k.Submatrix({1, 5, 9, 22, 17});
  EXPECT_TRUE(sub.IsSymmetric());
  auto eig = SymmetricEigen(sub);
  ASSERT_TRUE(eig.ok());
  EXPECT_GE(eig->eigenvalues[0], -1e-10);
}

TEST(DiversityKernelTest, SubmatrixMatchesEntry) {
  DiversityKernel k = DiversityKernel::Random(10, 6, 4);
  Matrix sub = k.Submatrix({2, 7});
  EXPECT_NEAR(sub(0, 1), k.Entry(2, 7), 1e-12);
}

TEST(DiversityKernelTest, TrainRejectsBadConfig) {
  Dataset ds = SmallDataset();
  DiversityKernel::TrainConfig cfg;
  cfg.rank = 0;
  EXPECT_FALSE(DiversityKernel::Train(ds, cfg).ok());
  cfg.rank = 3;
  cfg.set_size = 5;  // set_size > rank: determinants vanish.
  EXPECT_FALSE(DiversityKernel::Train(ds, cfg).ok());
}

TEST(DiversityKernelTest, TrainingImprovesContrastiveObjective) {
  Dataset ds = SmallDataset();
  DiversityKernel::TrainConfig cfg;
  cfg.rank = 12;
  cfg.epochs = 6;
  cfg.pairs_per_epoch = 150;
  cfg.set_size = 4;
  cfg.seed = 5;

  DiversityKernel untrained =
      DiversityKernel::Random(ds.num_items(), cfg.rank, cfg.seed);
  auto trained = DiversityKernel::Train(ds, cfg);
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();

  Rng probe_rng(99);
  auto j_before = untrained.Objective(ds, 150, 1e-4, &probe_rng);
  Rng probe_rng2(99);
  auto j_after = trained->Objective(ds, 150, 1e-4, &probe_rng2);
  ASSERT_TRUE(j_before.ok());
  ASSERT_TRUE(j_after.ok());
  // Eq. 3 objective must move up: diverse sets gain determinant mass.
  EXPECT_GT(*j_after, *j_before);
}

TEST(DiversityKernelTest, TrainedKernelKeepsUnitRows) {
  Dataset ds = SmallDataset();
  DiversityKernel::TrainConfig cfg;
  cfg.rank = 10;
  cfg.epochs = 2;
  cfg.pairs_per_epoch = 60;
  cfg.set_size = 4;
  auto trained = DiversityKernel::Train(ds, cfg);
  ASSERT_TRUE(trained.ok());
  for (int i = 0; i < trained->num_items(); ++i) {
    EXPECT_NEAR(trained->Entry(i, i), 1.0, 1e-9);
  }
}

TEST(GaussianKernelTest, DiagonalIsOneAndSymmetric) {
  Rng rng(6);
  Matrix emb = RandomMatrix(5, 3, &rng);
  Matrix k = GaussianKernel(emb, 1.0);
  EXPECT_TRUE(k.IsSymmetric());
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(k(i, i), 1.0);
}

TEST(GaussianKernelTest, MatchesClosedForm) {
  Matrix emb{{0.0, 0.0}, {1.0, 0.0}, {0.0, 2.0}};
  Matrix k = GaussianKernel(emb, 1.0);
  EXPECT_NEAR(k(0, 1), std::exp(-0.5), 1e-12);
  EXPECT_NEAR(k(0, 2), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(k(1, 2), std::exp(-2.5), 1e-12);
}

TEST(GaussianKernelTest, WiderBandwidthRaisesSimilarity) {
  Matrix emb{{0.0}, {2.0}};
  EXPECT_LT(GaussianKernel(emb, 0.5)(0, 1), GaussianKernel(emb, 2.0)(0, 1));
}

TEST(GaussianKernelTest, IsPsd) {
  Rng rng(7);
  Matrix emb = RandomMatrix(8, 4, &rng);
  auto eig = SymmetricEigen(GaussianKernel(emb, 1.3));
  ASSERT_TRUE(eig.ok());
  EXPECT_GE(eig->eigenvalues[0], -1e-10);
}

TEST(GaussianKernelTest, BackwardMatchesFiniteDifference) {
  Rng rng(8);
  const int m = 4, d = 3;
  const double sigma = 0.9;
  Matrix emb = RandomMatrix(m, d, &rng);
  // Random upstream gradient.
  Matrix dk = RandomMatrix(m, m, &rng);
  const Matrix kernel = GaussianKernel(emb, sigma);
  const Matrix demb = GaussianKernelBackward(emb, kernel, dk, sigma);

  auto loss = [&](const Matrix& e) {
    const Matrix k = GaussianKernel(e, sigma);
    double total = 0.0;
    for (int r = 0; r < m; ++r) {
      for (int c = 0; c < m; ++c) total += dk(r, c) * k(r, c);
    }
    return total;
  };
  const double h = 1e-6;
  for (int r = 0; r < m; ++r) {
    for (int c = 0; c < d; ++c) {
      Matrix plus = emb, minus = emb;
      plus(r, c) += h;
      minus(r, c) -= h;
      const double fd = (loss(plus) - loss(minus)) / (2.0 * h);
      EXPECT_NEAR(demb(r, c), fd, 1e-5 * std::max(1.0, std::fabs(fd)))
          << "(" << r << "," << c << ")";
    }
  }
}

TEST(QualityTransformTest, ExpValuesAndClamp) {
  Vector s{0.0, 1.0, -100.0, 100.0};
  Vector q = ApplyQuality(s, QualityTransform::kExp);
  EXPECT_DOUBLE_EQ(q[0], 1.0);
  EXPECT_NEAR(q[1], std::exp(1.0), 1e-12);
  EXPECT_NEAR(q[2], std::exp(-30.0), 1e-18);  // Clamped.
  EXPECT_NEAR(q[3], std::exp(30.0), 1e-3 * std::exp(30.0));
}

TEST(QualityTransformTest, SigmoidValuesStrictlyPositive) {
  Vector s{0.0, -50.0, 50.0};
  Vector q = ApplyQuality(s, QualityTransform::kSigmoid);
  EXPECT_DOUBLE_EQ(q[0], 0.5);
  EXPECT_GT(q[1], 0.0);
  EXPECT_LT(q[2], 1.0 + 1e-12);
}

TEST(QualityTransformTest, LogDerivativeMatchesFiniteDifference) {
  for (QualityTransform t :
       {QualityTransform::kExp, QualityTransform::kSigmoid}) {
    Vector s{-1.2, 0.0, 0.7, 2.5};
    Vector deriv = QualityLogDerivative(s, t);
    const double h = 1e-6;
    for (int i = 0; i < s.size(); ++i) {
      Vector plus = s, minus = s;
      plus[i] += h;
      minus[i] -= h;
      const double fd = (std::log(ApplyQuality(plus, t)[i]) -
                         std::log(ApplyQuality(minus, t)[i])) /
                        (2.0 * h);
      EXPECT_NEAR(deriv[i], fd, 1e-5)
          << QualityTransformName(t) << " idx " << i;
    }
  }
}

TEST(AssembleKernelTest, MatchesDiagSandwich) {
  Vector q{2.0, 3.0};
  Matrix k{{1.0, 0.5}, {0.5, 1.0}};
  Matrix l = AssembleKernel(q, k);
  EXPECT_DOUBLE_EQ(l(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(l(0, 1), 3.0);  // 2 * 0.5 * 3.
  EXPECT_DOUBLE_EQ(l(1, 1), 9.0);
  EXPECT_TRUE(l.IsSymmetric());
}

TEST(AssembleKernelTest, PreservesPsd) {
  Rng rng(9);
  DiversityKernel dk = DiversityKernel::Random(6, 8, 10);
  Matrix sub = dk.Submatrix({0, 1, 2, 3, 4, 5});
  Vector q(6);
  for (int i = 0; i < 6; ++i) q[i] = std::exp(rng.Normal());
  auto eig = SymmetricEigen(AssembleKernel(q, sub));
  ASSERT_TRUE(eig.ok());
  EXPECT_GE(eig->eigenvalues[0], -1e-9);
}

}  // namespace
}  // namespace lkpdpp
