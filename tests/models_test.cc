// Tests for the CF backbones: training-path vs eval-path score agreement
// and gradient flow into every parameter.

#include <gtest/gtest.h>

#include <memory>
#include <cmath>

#include "data/synthetic.h"
#include "models/gcmc.h"
#include "models/gcn.h"
#include "models/mf.h"
#include "models/neumf.h"

namespace lkpdpp {
namespace {

Dataset MakeDataset() {
  SyntheticConfig cfg;
  cfg.num_users = 40;
  cfg.num_items = 60;
  cfg.num_categories = 8;
  cfg.num_events = 4500;
  cfg.seed = 31;
  auto ds = GenerateSyntheticDataset(cfg);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).ValueOrDie();
}

std::unique_ptr<RecModel> MakeModel(int kind, const Dataset& ds) {
  switch (kind) {
    case 0:
      return std::make_unique<MfModel>(ds.num_users(), ds.num_items(),
                                       MfModel::Config{});
    case 1: {
      auto m = GcnModel::Create(ds, GcnModel::Config{});
      EXPECT_TRUE(m.ok());
      return std::move(m).ValueOrDie();
    }
    case 2:
      return std::make_unique<NeuMfModel>(ds.num_users(), ds.num_items(),
                                          NeuMfModel::Config{});
    default: {
      auto m = GcmcModel::Create(ds, GcmcModel::Config{});
      EXPECT_TRUE(m.ok());
      return std::move(m).ValueOrDie();
    }
  }
}

class RecModelTest : public ::testing::TestWithParam<int> {};

TEST_P(RecModelTest, TrainingAndEvalScoresAgree) {
  Dataset ds = MakeDataset();
  auto model = MakeModel(GetParam(), ds);

  const int user = 3;
  const std::vector<int> items = {0, 5, 11, 20, 33};

  auto batch = model->StartBatch();
  ad::Graph graph;
  ad::Tensor scores_t = batch->ScoreItems(&graph, user, items);
  ASSERT_EQ(scores_t.rows(), static_cast<int>(items.size()));
  ASSERT_EQ(scores_t.cols(), 1);

  model->PrepareForEval();
  const Vector all = model->ScoreAllItems(user);
  ASSERT_EQ(all.size(), ds.num_items());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_NEAR(scores_t.value()(static_cast<int>(i), 0), all[items[i]],
                1e-9)
        << model->name() << " item " << items[i];
  }
}

TEST_P(RecModelTest, GradientsReachEveryParameter) {
  Dataset ds = MakeDataset();
  auto model = MakeModel(GetParam(), ds);

  for (ad::Param* p : model->Params()) p->ZeroGrad();

  // Per-instance graph with a private workspace, reduced into the
  // batch's instance params, then Finish() backpropagates any boundary
  // gradient through the shared prefix — the full training data path.
  auto batch = model->StartBatch();
  ad::GradientWorkspace ws;
  ad::Graph graph(&ws);
  ad::Tensor scores_t =
      batch->ScoreItems(&graph, 1, {2, 9, 17, 25});
  Matrix seed(scores_t.rows(), 1, 1.0);
  ASSERT_TRUE(graph.Backward({{scores_t, seed}}).ok());
  ws.FlushIntoParams();
  ASSERT_TRUE(batch->Finish().ok());

  for (ad::Param* p : model->Params()) {
    EXPECT_GT(p->grad.FrobeniusNorm(), 0.0)
        << model->name() << " param " << p->name << " got no gradient";
  }
}

TEST_P(RecModelTest, ItemRepresentationShapes) {
  Dataset ds = MakeDataset();
  auto model = MakeModel(GetParam(), ds);
  auto batch = model->StartBatch();
  ad::Graph graph;
  const std::vector<int> items = {1, 2, 3};
  ad::Tensor reps = batch->ItemRepresentations(&graph, items);
  EXPECT_EQ(reps.rows(), 3);
  EXPECT_GT(reps.cols(), 0);
}

TEST_P(RecModelTest, ScoresDifferAcrossUsers) {
  Dataset ds = MakeDataset();
  auto model = MakeModel(GetParam(), ds);
  model->PrepareForEval();
  const Vector a = model->ScoreAllItems(0);
  const Vector b = model->ScoreAllItems(1);
  double diff = 0.0;
  for (int i = 0; i < a.size(); ++i) diff += std::fabs(a[i] - b[i]);
  EXPECT_GT(diff, 1e-8) << model->name();
}

TEST_P(RecModelTest, DeterministicInitialization) {
  Dataset ds = MakeDataset();
  auto a = MakeModel(GetParam(), ds);
  auto b = MakeModel(GetParam(), ds);
  a->PrepareForEval();
  b->PrepareForEval();
  const Vector sa = a->ScoreAllItems(2);
  const Vector sb = b->ScoreAllItems(2);
  for (int i = 0; i < sa.size(); ++i) EXPECT_DOUBLE_EQ(sa[i], sb[i]);
}

INSTANTIATE_TEST_SUITE_P(AllModels, RecModelTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(MfModelTest, ScoreIsInnerProduct) {
  MfModel model(4, 6, MfModel::Config{.embedding_dim = 3, .seed = 5});
  model.PrepareForEval();
  const Vector scores = model.ScoreAllItems(2);
  auto batch = model.StartBatch();
  ad::Graph g;
  ad::Tensor t = batch->ScoreItems(&g, 2, {0, 1, 2, 3, 4, 5});
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(t.value()(i, 0), scores[i], 1e-12);
  }
}

TEST(GcnModelTest, PropagationSmoothsTowardNeighbors) {
  // After propagation, a user's representation must contain a
  // contribution from interacted items (nonzero off-block influence).
  Dataset ds = MakeDataset();
  auto model = GcnModel::Create(ds, GcnModel::Config{.num_layers = 2});
  ASSERT_TRUE(model.ok());
  (*model)->PrepareForEval();
  // Mean-of-layers with a connected graph cannot equal raw embeddings.
  auto batch = (*model)->StartBatch();
  ad::Graph g;
  const std::vector<int> items = {0};
  ad::Tensor rep = batch->ItemRepresentations(&g, items);
  const Matrix& raw = (*model)->Params()[0]->value;
  double diff = 0.0;
  for (int c = 0; c < rep.cols(); ++c) {
    diff += std::fabs(rep.value()(0, c) -
                      raw(ds.num_users() + 0, c));
  }
  EXPECT_GT(diff, 1e-9);
}

TEST(GcnModelTest, RejectsZeroLayers) {
  Dataset ds = MakeDataset();
  EXPECT_FALSE(GcnModel::Create(ds, GcnModel::Config{.num_layers = 0}).ok());
}

TEST(NeuMfModelTest, PreferredQualityIsSigmoid) {
  NeuMfModel model(3, 4, NeuMfModel::Config{});
  EXPECT_EQ(model.PreferredQuality(), QualityTransform::kSigmoid);
}

TEST(GcmcModelTest, PreferredQualityIsSigmoid) {
  Dataset ds = MakeDataset();
  auto model = GcmcModel::Create(ds, GcmcModel::Config{});
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->PreferredQuality(), QualityTransform::kSigmoid);
}

TEST(ModelNamesTest, Stable) {
  Dataset ds = MakeDataset();
  EXPECT_EQ(MakeModel(0, ds)->name(), "MF");
  EXPECT_EQ(MakeModel(1, ds)->name(), "GCN");
  EXPECT_EQ(MakeModel(2, ds)->name(), "NeuMF");
  EXPECT_EQ(MakeModel(3, ds)->name(), "GCMC");
}

}  // namespace
}  // namespace lkpdpp
