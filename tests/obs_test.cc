// Observability subsystem: metrics primitives, exporters, trace rings,
// and the serve-facing guarantees (ServeStats compatibility, tracing
// that never perturbs responses).

#include "obs/metrics.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "models/mf.h"
#include "obs/trace.h"
#include "serve/service.h"
#include "serve/stats.h"

namespace lkpdpp {
namespace {

// ---------------------------------------------------------------------
// Counter / Gauge

TEST(CounterTest, SingleThreadIncrements) {
  obs::Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42);
  c.Reset();
  EXPECT_EQ(c.Value(), 0);
}

TEST(CounterTest, ConcurrentIncrementsLoseNothing) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<long>(kThreads) * kPerThread);
}

TEST(GaugeTest, ConcurrentAddsLoseNothing) {
  obs::Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.Add(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.Value(), static_cast<double>(kThreads) * kPerThread);
  g.Set(-3.5);
  EXPECT_DOUBLE_EQ(g.Value(), -3.5);
}

// ---------------------------------------------------------------------
// Histogram

TEST(HistogramTest, BucketBoundaryEdges) {
  obs::Histogram h({1.0, 2.0, 5.0});
  // Prometheus `le` semantics: v lands in the first bucket with
  // v <= bound. Exact boundary values stay in their bound's bucket.
  h.Observe(-3.0);  // Below everything -> first bucket.
  h.Observe(1.0);   // Exactly le=1 -> first bucket.
  h.Observe(1.0000001);
  h.Observe(2.0);
  h.Observe(5.0);
  h.Observe(5.0000001);  // Over the last bound -> +Inf bucket.
  const std::vector<long> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(h.Count(), 6);
  EXPECT_NEAR(h.Sum(), -3.0 + 1.0 + 1.0000001 + 2.0 + 5.0 + 5.0000001,
              1e-9);
  h.Reset();
  EXPECT_EQ(h.Count(), 0);
  for (long c : h.BucketCounts()) EXPECT_EQ(c, 0);
}

TEST(HistogramTest, ConcurrentObservationsLoseNothing) {
  obs::Histogram h({10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(t % 2 == 0 ? 5.0 : 50.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.Count(), static_cast<long>(kThreads) * kPerThread);
  const std::vector<long> counts = h.BucketCounts();
  EXPECT_EQ(counts[0], 4L * kPerThread);
  EXPECT_EQ(counts[1], 4L * kPerThread);
  EXPECT_EQ(counts[2], 0);
}

// ---------------------------------------------------------------------
// Registry + exporters (local registries: nothing else writes into them)

TEST(MetricsRegistryTest, HandlesAreStableAndDeduplicated) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("lkp_x_total");
  obs::Counter* b = registry.GetCounter("lkp_x_total");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.NumMetrics(), 1);
  registry.GetGauge("lkp_depth");
  registry.GetHistogram("lkp_h_ms", {1.0});
  EXPECT_EQ(registry.NumMetrics(), 3);
  a->Inc(7);
  registry.ResetAll();
  EXPECT_EQ(a->Value(), 0);
  EXPECT_EQ(registry.NumMetrics(), 3);  // Registrations survive reset.
}

TEST(MetricsRegistryTest, PrometheusGolden) {
  obs::MetricsRegistry registry;
  registry.GetCounter("lkp_req_total")->Inc(3);
  registry.GetCounter("lkp_err_total{site=\"serve\"}")->Inc();
  registry.GetCounter("lkp_err_total{site=\"train\"}")->Inc(2);
  registry.GetGauge("lkp_depth")->Set(4.5);
  obs::Histogram* h = registry.GetHistogram("lkp_lat_ms", {1.0, 2.0});
  h->Observe(0.5);
  h->Observe(1.5);
  h->Observe(9.0);
  const std::string expected =
      "# TYPE lkp_err_total counter\n"
      "lkp_err_total{site=\"serve\"} 1\n"
      "lkp_err_total{site=\"train\"} 2\n"
      "# TYPE lkp_req_total counter\n"
      "lkp_req_total 3\n"
      "# TYPE lkp_depth gauge\n"
      "lkp_depth 4.5\n"
      "# TYPE lkp_lat_ms histogram\n"
      "lkp_lat_ms_bucket{le=\"1\"} 1\n"
      "lkp_lat_ms_bucket{le=\"2\"} 2\n"
      "lkp_lat_ms_bucket{le=\"+Inf\"} 3\n"
      "lkp_lat_ms_sum 11\n"
      "lkp_lat_ms_count 3\n";
  EXPECT_EQ(registry.DumpPrometheusText(), expected);
}

TEST(MetricsRegistryTest, JsonGolden) {
  obs::MetricsRegistry registry;
  registry.GetCounter("lkp_a_total")->Inc(2);
  registry.GetGauge("lkp_g")->Set(1.5);
  obs::Histogram* h = registry.GetHistogram("lkp_h", {1.0});
  h->Observe(0.5);
  h->Observe(3.0);
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"lkp_a_total\": 2\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"lkp_g\": 1.5\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"lkp_h\": {\"bounds\": [1], \"counts\": [1, 1], "
      "\"sum\": 3.5, \"count\": 2}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(registry.DumpJson(), expected);
}

TEST(MetricsRegistryTest, GlobalRegistryCarriesInstrumentedFamilies) {
  // The production call sites register lazily; poke one representative
  // path (a standalone counter does not, so use the cache-build family
  // names directly) and check Global() dumps them.
  obs::MetricsRegistry::Global().GetCounter("lkp_serve_cache_hits_total");
  const std::string text =
      obs::MetricsRegistry::Global().DumpPrometheusText();
  EXPECT_NE(text.find("lkp_serve_cache_hits_total"), std::string::npos);
}

// ---------------------------------------------------------------------
// Tracing

TEST(TraceTest, DisabledTracingWritesNothing) {
  obs::SetTraceEnabled(false);
  obs::ClearTrace();
  const long before = obs::TotalRecordedEvents();
  for (int i = 0; i < 100; ++i) {
    LKP_TRACE_SPAN("test.disabled");
  }
  EXPECT_EQ(obs::TotalRecordedEvents(), before);
  EXPECT_EQ(before, 0);
}

TEST(TraceTest, EnabledSpansLandInDump) {
  obs::SetTraceEnabled(true);
  obs::ClearTrace();
  {
    LKP_TRACE_SPAN("test.outer");
    LKP_TRACE_SPAN("test.inner");
  }
  obs::SetTraceEnabled(false);
  EXPECT_EQ(obs::TotalRecordedEvents(), 2);
  const std::string json = obs::DumpChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"test.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  obs::ClearTrace();
}

TEST(TraceTest, RingOverwritesOldestAndCountsDrops) {
  obs::SetTraceEnabled(true);
  obs::ClearTrace();
  const long dropped_before = obs::DroppedEvents();
  // A fresh thread picks up the test capacity; existing rings keep
  // their size, so run everything on the new thread.
  obs::internal::SetRingCapacityForTest(4);
  std::thread t([] {
    for (int i = 0; i < 10; ++i) {
      obs::RecordSpan("test.ring", static_cast<double>(i), 1.0);
    }
  });
  t.join();
  obs::internal::SetRingCapacityForTest(1u << 15);
  obs::SetTraceEnabled(false);
  EXPECT_EQ(obs::DroppedEvents() - dropped_before, 6);
  // The dump holds only the newest 4, oldest-first.
  const std::string json = obs::DumpChromeTraceJson();
  EXPECT_EQ(json.find("\"ts\": 5.000"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 6.000"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 9.000"), std::string::npos);
  obs::ClearTrace();
}

// ---------------------------------------------------------------------
// ServeStats / ServeRecorder compatibility (pinned: the obs migration
// must not change Snapshot() or ToString() output)

TEST(ServeStatsTest, RecorderSnapshotFieldsPinned) {
  ServeRecorder recorder(/*window_capacity=*/64, /*stripes=*/1);
  const double latencies[] = {1.0, 2.0, 3.0};
  recorder.RecordBatch(3, 0.5, latencies, 3);
  ServeStats stats;
  recorder.Snapshot(&stats);
  EXPECT_EQ(stats.requests, 3);
  EXPECT_EQ(stats.batches, 1);
  EXPECT_DOUBLE_EQ(stats.mean_batch_occupancy, 3.0);
  EXPECT_DOUBLE_EQ(stats.busy_seconds, 0.5);
  EXPECT_DOUBLE_EQ(stats.latency_p50_ms, 2.0);
  EXPECT_DOUBLE_EQ(stats.latency_p95_ms, 3.0);
  EXPECT_DOUBLE_EQ(stats.latency_p99_ms, 3.0);
  EXPECT_DOUBLE_EQ(stats.latency_max_ms, 3.0);
  EXPECT_GT(stats.wall_seconds, 0.0);
  recorder.Reset();
  ServeStats zero;
  recorder.Snapshot(&zero);
  EXPECT_EQ(zero.requests, 0);
  EXPECT_EQ(zero.batches, 0);
  EXPECT_DOUBLE_EQ(zero.busy_seconds, 0.0);
}

TEST(ServeStatsTest, ToStringPinned) {
  ServeStats stats;
  stats.requests = 100;
  stats.batches = 10;
  stats.cache_hits = 30;
  stats.cache_misses = 10;
  stats.mean_batch_occupancy = 10.0;
  stats.latency_p50_ms = 1.5;
  stats.latency_p95_ms = 4.25;
  stats.latency_p99_ms = 6.125;
  stats.latency_max_ms = 9.5;
  stats.wall_seconds = 2.0;
  stats.busy_seconds = 1.0;
  stats.throughput_rps = 50.0;
  EXPECT_EQ(stats.ToString(),
            "requests=100 batches=10 occupancy=10.0 hit_rate=0.750 "
            "p50=1.500ms p95=4.250ms p99=6.125ms max=9.500ms rps=50.0 "
            "busy/wall=0.50");
}

// ---------------------------------------------------------------------
// Tracing never perturbs serving (bit-identical responses on vs off)

ServeConfig SampleConfig() {
  ServeConfig config;
  config.mode = ServeMode::kSample;
  config.top_k = 4;
  config.pool_size = 16;
  config.cache_capacity = 64;
  config.seed = 777;
  return config;
}

std::vector<std::vector<int>> ServeSequence(const Dataset& dataset,
                                            MfModel* model,
                                            const DiversityKernel& diversity) {
  auto service = RecommendationService::Create(&dataset, model, &diversity,
                                               /*pool=*/nullptr,
                                               SampleConfig());
  service.status().CheckOK();
  std::vector<std::vector<int>> items;
  for (int round = 0; round < 3; ++round) {
    std::vector<RecRequest> batch;
    for (int u = 0; u < 10; ++u) {
      batch.push_back(RecRequest{(round * 7 + u) % dataset.num_users()});
    }
    auto responses = (*service)->HandleBatch(batch);
    responses.status().CheckOK();
    for (const RecResponse& r : *responses) items.push_back(r.items);
  }
  return items;
}

TEST(TraceTest, ServingIsBitIdenticalWithTracingOnAndOff) {
  SyntheticConfig cfg;
  cfg.name = "obs-world";
  cfg.num_users = 40;
  cfg.num_items = 60;
  cfg.num_categories = 8;
  cfg.num_events = 3000;
  cfg.min_interactions = 6;
  cfg.seed = 21;
  auto ds = GenerateSyntheticDataset(cfg);
  ds.status().CheckOK();
  Dataset dataset = std::move(ds).ValueOrDie();
  DiversityKernel diversity =
      DiversityKernel::Random(dataset.num_items(), 6, /*seed=*/3);
  MfModel::Config mcfg;
  mcfg.embedding_dim = 6;
  mcfg.seed = 5;
  MfModel model(dataset.num_users(), dataset.num_items(), mcfg);

  obs::SetTraceEnabled(false);
  const std::vector<std::vector<int>> off =
      ServeSequence(dataset, &model, diversity);

  obs::SetTraceEnabled(true);
  obs::ClearTrace();
  const std::vector<std::vector<int>> on =
      ServeSequence(dataset, &model, diversity);
  const long traced = obs::TotalRecordedEvents();
  obs::SetTraceEnabled(false);
  obs::ClearTrace();

  EXPECT_GT(traced, 0);  // Tracing actually recorded the serve path.
  EXPECT_EQ(off, on);    // ...without changing a single response.
}

}  // namespace
}  // namespace lkpdpp
