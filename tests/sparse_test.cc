// Tests for the CSR sparse matrix and graph adjacency construction.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/synthetic.h"
#include "linalg/sparse.h"
#include "models/graph_utils.h"
#include "testing_util.h"

namespace lkpdpp {
namespace {

TEST(SparseTest, FromTripletsBasic) {
  auto m = SparseMatrix::FromTriplets(
      2, 3, {{0, 1, 2.0}, {1, 0, -1.0}, {1, 2, 4.0}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->rows(), 2);
  EXPECT_EQ(m->cols(), 3);
  EXPECT_EQ(m->nnz(), 3);
  const Matrix dense = m->ToDense();
  EXPECT_DOUBLE_EQ(dense(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(dense(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(dense(0, 0), 0.0);
}

TEST(SparseTest, DuplicateTripletsSum) {
  auto m = SparseMatrix::FromTriplets(2, 2,
                                      {{0, 0, 1.0}, {0, 0, 2.5}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->nnz(), 1);
  EXPECT_DOUBLE_EQ(m->ToDense()(0, 0), 3.5);
}

TEST(SparseTest, OutOfRangeTripletRejected) {
  EXPECT_EQ(SparseMatrix::FromTriplets(2, 2, {{2, 0, 1.0}})
                .status()
                .code(),
            StatusCode::kOutOfRange);
  EXPECT_FALSE(SparseMatrix::FromTriplets(2, 2, {{0, -1, 1.0}}).ok());
  EXPECT_FALSE(SparseMatrix::FromTriplets(-1, 2, {}).ok());
}

TEST(SparseTest, EmptyMatrixWorks) {
  auto m = SparseMatrix::FromTriplets(3, 3, {});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->nnz(), 0);
  Matrix dense(3, 2, 1.0);
  EXPECT_DOUBLE_EQ(m->Multiply(dense).MaxAbs(), 0.0);
}

TEST(SparseTest, MultiplyMatchesDense) {
  Rng rng(1);
  std::vector<SparseMatrix::Triplet> triplets;
  for (int i = 0; i < 40; ++i) {
    triplets.push_back(
        {rng.UniformInt(8), rng.UniformInt(6), rng.Normal()});
  }
  auto sp = SparseMatrix::FromTriplets(8, 6, triplets);
  ASSERT_TRUE(sp.ok());
  Matrix dense = testutil::RandomMatrix(6, 4, &rng);
  const Matrix expected = MatMul(sp->ToDense(), dense);
  EXPECT_LT((sp->Multiply(dense) - expected).MaxAbs(), 1e-12);
}

TEST(SparseTest, MultiplyTransposedMatchesDense) {
  Rng rng(2);
  std::vector<SparseMatrix::Triplet> triplets;
  for (int i = 0; i < 30; ++i) {
    triplets.push_back(
        {rng.UniformInt(7), rng.UniformInt(5), rng.Normal()});
  }
  auto sp = SparseMatrix::FromTriplets(7, 5, triplets);
  ASSERT_TRUE(sp.ok());
  Matrix dense = testutil::RandomMatrix(7, 3, &rng);
  const Matrix expected = MatMul(sp->ToDense().Transpose(), dense);
  EXPECT_LT((sp->MultiplyTransposed(dense) - expected).MaxAbs(), 1e-12);
}

TEST(SparseTest, MatVecAndRowSums) {
  auto sp = SparseMatrix::FromTriplets(
      2, 3, {{0, 0, 1.0}, {0, 2, 3.0}, {1, 1, -2.0}});
  ASSERT_TRUE(sp.ok());
  Vector x{1.0, 2.0, 3.0};
  Vector y = sp->Multiply(x);
  EXPECT_DOUBLE_EQ(y[0], 10.0);
  EXPECT_DOUBLE_EQ(y[1], -4.0);
  Vector sums = sp->RowSums();
  EXPECT_DOUBLE_EQ(sums[0], 4.0);
  EXPECT_DOUBLE_EQ(sums[1], -2.0);
}

TEST(AdjacencyTest, NormalizedAdjacencyIsSymmetricAndBipartite) {
  SyntheticConfig cfg;
  cfg.num_users = 40;
  cfg.num_items = 50;
  cfg.num_events = 4000;
  auto ds = GenerateSyntheticDataset(cfg);
  ASSERT_TRUE(ds.ok());
  auto adj = BuildNormalizedAdjacency(*ds);
  ASSERT_TRUE(adj.ok());
  const int n = ds->num_users();
  const int size = n + ds->num_items();
  EXPECT_EQ(adj->rows(), size);
  EXPECT_EQ(adj->cols(), size);

  const Matrix dense = adj->ToDense();
  EXPECT_TRUE(dense.IsSymmetric(1e-12));
  // No user-user or item-item edges.
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) EXPECT_DOUBLE_EQ(dense(u, v), 0.0);
  }
  // Weight = 1/sqrt(du*di) for each train edge.
  const int u0 = 0;
  ASSERT_FALSE(ds->TrainItems(u0).empty());
  const int i0 = ds->TrainItems(u0)[0];
  int di = 0;
  for (int u = 0; u < n; ++u) {
    for (int item : ds->TrainItems(u)) {
      if (item == i0) ++di;
    }
  }
  const double expected =
      1.0 / std::sqrt(static_cast<double>(ds->TrainItems(u0).size()) * di);
  EXPECT_NEAR(dense(u0, n + i0), expected, 1e-12);
}

TEST(AdjacencyTest, SelfLoopsOptional) {
  SyntheticConfig cfg;
  cfg.num_users = 30;
  cfg.num_items = 40;
  cfg.num_events = 3000;
  auto ds = GenerateSyntheticDataset(cfg);
  ASSERT_TRUE(ds.ok());
  auto plain = BuildNormalizedAdjacency(*ds, false);
  auto looped = BuildNormalizedAdjacency(*ds, true);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(looped.ok());
  EXPECT_DOUBLE_EQ(plain->ToDense()(0, 0), 0.0);
  EXPECT_GT(looped->ToDense()(0, 0), 0.0);
}

}  // namespace
}  // namespace lkpdpp
