// Tests for elementary symmetric polynomials (paper Algorithm 1) and
// their derivatives.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/esp.h"

namespace lkpdpp {
namespace {

TEST(EspTest, DegreeZeroIsOne) {
  EXPECT_DOUBLE_EQ(ElementarySymmetric(Vector{2, 3, 4}, 0), 1.0);
  EXPECT_DOUBLE_EQ(ElementarySymmetric(Vector{}, 0), 1.0);
}

TEST(EspTest, DegreeOneIsSum) {
  EXPECT_DOUBLE_EQ(ElementarySymmetric(Vector{2, 3, 4}, 1), 9.0);
}

TEST(EspTest, FullDegreeIsProduct) {
  EXPECT_DOUBLE_EQ(ElementarySymmetric(Vector{2, 3, 4}, 3), 24.0);
}

TEST(EspTest, HandComputedMiddleDegree) {
  // e_2(2,3,4) = 2*3 + 2*4 + 3*4 = 26.
  EXPECT_DOUBLE_EQ(ElementarySymmetric(Vector{2, 3, 4}, 2), 26.0);
}

TEST(EspTest, ZeroEigenvaluesReduceDegree) {
  // With only two nonzeros, e_3 = 0.
  EXPECT_DOUBLE_EQ(ElementarySymmetric(Vector{5, 0, 7, 0}, 3), 0.0);
  EXPECT_DOUBLE_EQ(ElementarySymmetric(Vector{5, 0, 7, 0}, 2), 35.0);
}

TEST(EspTest, AllElementarySymmetricMatchesSingle) {
  Vector vals{0.5, 1.5, 2.5, 3.5};
  Vector all = AllElementarySymmetric(vals, 4);
  for (int k = 0; k <= 4; ++k) {
    EXPECT_NEAR(all[k], ElementarySymmetric(vals, k), 1e-12);
  }
}

TEST(EspTest, TableFinalEntryMatches) {
  Vector vals{1.0, 2.0, 3.0, 4.0, 5.0};
  Matrix table = EspTable(vals, 3);
  EXPECT_NEAR(table(3, 5), ElementarySymmetric(vals, 3), 1e-12);
  // Prefix property: table(l, m) is e_l over the first m values.
  Vector prefix{1.0, 2.0, 3.0};
  EXPECT_NEAR(table(2, 3), ElementarySymmetric(prefix, 2), 1e-12);
  // Row 0 all ones; column 0 zero for l >= 1.
  for (int m = 0; m <= 5; ++m) EXPECT_DOUBLE_EQ(table(0, m), 1.0);
  for (int l = 1; l <= 3; ++l) EXPECT_DOUBLE_EQ(table(l, 0), 0.0);
}

class EspBruteForceTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(EspBruteForceTest, MatchesBruteForce) {
  const auto [m, k] = GetParam();
  Rng rng(500 + m * 31 + k);
  Vector vals(m);
  for (int i = 0; i < m; ++i) vals[i] = rng.Uniform(0.0, 3.0);
  const double fast = ElementarySymmetric(vals, k);
  const double brute = ElementarySymmetricBruteForce(vals, k);
  EXPECT_NEAR(fast, brute, 1e-9 * std::max(1.0, std::fabs(brute)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EspBruteForceTest,
    ::testing::Values(std::pair{3, 2}, std::pair{5, 2}, std::pair{6, 3},
                      std::pair{8, 4}, std::pair{10, 5}, std::pair{12, 6},
                      std::pair{12, 1}, std::pair{12, 12}));

TEST(ExclusionEspTest, MatchesManualExclusion) {
  Vector vals{1.0, 2.0, 3.0, 4.0};
  Vector excl = ExclusionEsp(vals, 2);
  // Removing value i then computing e_2 by hand.
  EXPECT_NEAR(excl[0], ElementarySymmetric(Vector{2, 3, 4}, 2), 1e-12);
  EXPECT_NEAR(excl[1], ElementarySymmetric(Vector{1, 3, 4}, 2), 1e-12);
  EXPECT_NEAR(excl[2], ElementarySymmetric(Vector{1, 2, 4}, 2), 1e-12);
  EXPECT_NEAR(excl[3], ElementarySymmetric(Vector{1, 2, 3}, 2), 1e-12);
}

// d e_k / d lambda_i = e_{k-1}(lambda \ i): finite-difference check.
class EspDerivativeTest : public ::testing::TestWithParam<int> {};

TEST_P(EspDerivativeTest, ExclusionIsDerivative) {
  const int m = 8;
  const int k = GetParam();
  Rng rng(600 + k);
  Vector vals(m);
  for (int i = 0; i < m; ++i) vals[i] = rng.Uniform(0.1, 2.0);
  const Vector excl = ExclusionEsp(vals, k - 1);
  const double h = 1e-6;
  for (int i = 0; i < m; ++i) {
    Vector plus = vals, minus = vals;
    plus[i] += h;
    minus[i] -= h;
    const double fd = (ElementarySymmetric(plus, k) -
                       ElementarySymmetric(minus, k)) /
                      (2.0 * h);
    EXPECT_NEAR(excl[i], fd, 1e-5 * std::max(1.0, std::fabs(fd)));
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, EspDerivativeTest,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(EspIdentityTest, EulerIdentity) {
  // sum_i lambda_i * e_{k-1}(lambda \ i) = k * e_k.
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const int m = 4 + rng.UniformInt(8);
    const int k = 1 + rng.UniformInt(m);
    Vector vals(m);
    for (int i = 0; i < m; ++i) vals[i] = rng.Uniform(0.0, 2.0);
    const Vector excl = ExclusionEsp(vals, k - 1);
    double lhs = 0.0;
    for (int i = 0; i < m; ++i) lhs += vals[i] * excl[i];
    const double rhs = k * ElementarySymmetric(vals, k);
    EXPECT_NEAR(lhs, rhs, 1e-9 * std::max(1.0, std::fabs(rhs)));
  }
}

TEST(EspIdentityTest, PascalIdentity) {
  // e_k(lambda) = e_k(lambda \ i) + lambda_i * e_{k-1}(lambda \ i).
  Vector vals{0.7, 1.3, 2.9, 0.2, 1.1};
  const int k = 3;
  const Vector excl_k = ExclusionEsp(vals, k);
  const Vector excl_km1 = ExclusionEsp(vals, k - 1);
  const double ek = ElementarySymmetric(vals, k);
  for (int i = 0; i < vals.size(); ++i) {
    EXPECT_NEAR(ek, excl_k[i] + vals[i] * excl_km1[i], 1e-10);
  }
}

TEST(EspNumericalTest, LargeValuesStayFinite) {
  Vector vals(16);
  for (int i = 0; i < 16; ++i) vals[i] = 50.0 + i;
  const double e8 = ElementarySymmetric(vals, 8);
  EXPECT_TRUE(std::isfinite(e8));
  EXPECT_GT(e8, 0.0);
}

TEST(EspNumericalTest, TinyValuesStayPositive) {
  Vector vals(10);
  for (int i = 0; i < 10; ++i) vals[i] = 1e-8;
  const double e5 = ElementarySymmetric(vals, 5);
  EXPECT_GT(e5, 0.0);
  // C(10,5) * (1e-8)^5.
  EXPECT_NEAR(e5, 252.0 * 1e-40, 1e-45);
}

TEST(LogExclusionEspTest, MatchesLinearDomainOnModerateValues) {
  Rng rng(42);
  Vector vals(9);
  for (int i = 0; i < 9; ++i) vals[i] = rng.Uniform(0.1, 3.0);
  for (int degree : {0, 1, 3, 6, 8}) {
    const Vector raw = ExclusionEsp(vals, degree);
    const Vector logd = LogExclusionEsp(vals, degree);
    for (int i = 0; i < 9; ++i) {
      EXPECT_NEAR(logd[i], std::log(raw[i]),
                  1e-12 * std::max(1.0, std::fabs(std::log(raw[i]))))
          << "degree " << degree << " skip " << i;
    }
  }
}

TEST(LogExclusionEspTest, HandlesZeroValues) {
  // With a zero entry, excluding a *different* entry keeps the zero in
  // the pool; degree-2 polynomials over {0, 2, 3} drop the products
  // through zero: e_2({2,3} U {0}) = 6.
  Vector vals{0.0, 2.0, 3.0, 4.0};
  const Vector raw = ExclusionEsp(vals, 2);
  const Vector logd = LogExclusionEsp(vals, 2);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::exp(logd[i]), raw[i], 1e-12 * raw[i]) << "skip " << i;
  }
  // Degree 3 excluding entry 3 leaves {0,2,3}: every 3-product includes
  // the zero, so the polynomial is exactly zero -> log is -inf.
  const Vector log3 = LogExclusionEsp(vals, 3);
  EXPECT_TRUE(std::isinf(log3[3]));
  EXPECT_LT(log3[3], 0.0);
}

TEST(LogExclusionEspTest, SurvivesMagnitudesThatOverflowLinearDomain) {
  // e_2 over values ~1e200 is ~1e400: the linear-domain recursion
  // saturates to inf, the log-domain one must not. Verify against the
  // scaling identity e_d(s * mu) = s^d e_d(mu).
  const double s = 1e200;
  Vector mu{1.0, 2.0, 3.0, 4.0, 5.0};
  Vector scaled = mu;
  scaled *= s;
  const int degree = 2;
  EXPECT_FALSE(std::isfinite(ExclusionEsp(scaled, degree).Max()));
  const Vector log_scaled = LogExclusionEsp(scaled, degree);
  const Vector base = ExclusionEsp(mu, degree);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(std::isfinite(log_scaled[i])) << "skip " << i;
    EXPECT_NEAR(log_scaled[i], degree * std::log(s) + std::log(base[i]),
                1e-9) << "skip " << i;
  }
}

}  // namespace
}  // namespace lkpdpp
