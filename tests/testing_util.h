// Shared fixtures for the test suites: deterministic random kernels and
// matrices. Previously each suite carried its own copy of these helpers;
// keep semantics here stable, several suites pin seeds against them.

#ifndef LKPDPP_TESTS_TESTING_UTIL_H_
#define LKPDPP_TESTS_TESTING_UTIL_H_

#include <cmath>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace lkpdpp {
namespace testutil {

/// Dense matrix with iid standard-normal entries, filled row-major.
inline Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = rng->Normal();
  }
  return m;
}

/// Random PSD kernel V V^T / rank + ridge * I over n items. `rank` defaults
/// to n (full rank); choose rank > n for better conditioning or rank < n
/// for a genuinely rank-deficient kernel (with ridge = 0).
inline Matrix RandomPsdKernel(int n, Rng* rng, int rank = -1,
                              double ridge = 0.05) {
  if (rank < 0) rank = n;
  Matrix v = RandomMatrix(n, rank, rng);
  Matrix k = MatMulTransB(v, v);
  k *= 1.0 / rank;
  k.AddDiagonal(ridge);
  return k;
}

/// Random symmetric positive-definite matrix A A^T + ridge * I (unscaled;
/// entries grow with n). Suited to decomposition tests that want a
/// well-conditioned SPD input rather than a kernel-scaled one.
inline Matrix RandomSpd(int n, Rng* rng, double ridge = 0.5) {
  Matrix a = RandomMatrix(n, n, rng);
  Matrix spd = MatMulTransB(a, a);
  spd.AddDiagonal(ridge);
  return spd;
}

/// Unit-diagonal correlation-like PSD kernel of full rank: rows of a
/// random n x (n+2) factor are normalized to unit length before forming
/// V V^T, so every diagonal entry is exactly 1.
inline Matrix RandomCorrelationKernel(int n, Rng* rng) {
  Matrix v = RandomMatrix(n, n + 2, rng);
  for (int r = 0; r < n; ++r) {
    double norm = 0.0;
    for (int c = 0; c < n + 2; ++c) norm += v(r, c) * v(r, c);
    norm = std::sqrt(norm);
    for (int c = 0; c < n + 2; ++c) v(r, c) /= norm;
  }
  return MatMulTransB(v, v);
}

}  // namespace testutil
}  // namespace lkpdpp

#endif  // LKPDPP_TESTS_TESTING_UTIL_H_
