// Tests for the baseline criteria (BCE, BPR, SetRank, Set2SetRank).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "core/criterion.h"

namespace lkpdpp {
namespace {

Vector RandomScores(int m, Rng* rng) {
  Vector s(m);
  for (int i = 0; i < m; ++i) s[i] = rng->Normal(0.0, 1.0);
  return s;
}

double LossOf(const RankingCriterion& crit, const Vector& scores,
              int num_pos) {
  CriterionInput in;
  in.scores = scores;
  in.num_pos = num_pos;
  auto out = crit.Evaluate(in);
  EXPECT_TRUE(out.ok()) << crit.name() << ": " << out.status().ToString();
  return out->loss;
}

class BaselineCriteriaTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<RankingCriterion> Make() const {
    switch (GetParam()) {
      case 0:
        return MakeBceCriterion();
      case 1:
        return MakeBprCriterion();
      case 2:
        return MakeSetRankCriterion();
      default:
        return MakeSet2SetRankCriterion();
    }
  }
};

TEST_P(BaselineCriteriaTest, GradientMatchesFiniteDifference) {
  auto crit = Make();
  Rng rng(1000 + GetParam());
  const int k = 3, n = 4, m = k + n;
  const Vector scores = RandomScores(m, &rng);

  CriterionInput in;
  in.scores = scores;
  in.num_pos = k;
  auto out = crit->Evaluate(in);
  ASSERT_TRUE(out.ok());

  const double h = 1e-6;
  for (int i = 0; i < m; ++i) {
    Vector plus = scores, minus = scores;
    plus[i] += h;
    minus[i] -= h;
    const double fd =
        (LossOf(*crit, plus, k) - LossOf(*crit, minus, k)) / (2.0 * h);
    EXPECT_NEAR(out->dscore[i], fd, 1e-5 * std::max(1.0, std::fabs(fd)))
        << crit->name() << " score " << i;
  }
}

TEST_P(BaselineCriteriaTest, LossIsNonNegative) {
  auto crit = Make();
  Rng rng(1100 + GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const Vector scores = RandomScores(6, &rng);
    EXPECT_GE(LossOf(*crit, scores, 3), 0.0) << crit->name();
  }
}

TEST_P(BaselineCriteriaTest, PerfectSeparationNearZeroLoss) {
  auto crit = Make();
  Vector scores{20.0, 19.0, 18.0, -20.0, -19.0, -18.0};
  EXPECT_LT(LossOf(*crit, scores, 3), 1e-4) << crit->name();
}

TEST_P(BaselineCriteriaTest, InvertedRankingHasLargeLoss) {
  auto crit = Make();
  Vector good{5.0, 5.0, -5.0, -5.0};
  Vector bad{-5.0, -5.0, 5.0, 5.0};
  EXPECT_GT(LossOf(*crit, bad, 2), LossOf(*crit, good, 2) + 1.0)
      << crit->name();
}

TEST_P(BaselineCriteriaTest, DescentDirectionSeparatesSets) {
  auto crit = Make();
  CriterionInput in;
  in.scores = Vector(6, 0.0);
  in.num_pos = 3;
  auto out = crit->Evaluate(in);
  ASSERT_TRUE(out.ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_LT(out->dscore[i], 1e-12) << crit->name() << " pos " << i;
  }
  for (int i = 3; i < 6; ++i) {
    EXPECT_GT(out->dscore[i], -1e-12) << crit->name() << " neg " << i;
  }
}

TEST_P(BaselineCriteriaTest, ValidatesNumPos) {
  auto crit = Make();
  CriterionInput in;
  in.scores = Vector{1, 2, 3};
  in.num_pos = 0;
  EXPECT_FALSE(crit->Evaluate(in).ok()) << crit->name();
  in.num_pos = 3;
  EXPECT_FALSE(crit->Evaluate(in).ok()) << crit->name();
}

TEST_P(BaselineCriteriaTest, RejectsNonFiniteScores) {
  auto crit = Make();
  CriterionInput in;
  in.scores = Vector{1.0, std::nan(""), 0.0, 2.0};
  in.num_pos = 2;
  EXPECT_FALSE(crit->Evaluate(in).ok()) << crit->name();
}

TEST_P(BaselineCriteriaTest, DoesNotNeedDiversityKernel) {
  EXPECT_FALSE(Make()->NeedsDiversityKernel());
}

TEST_P(BaselineCriteriaTest, ExtremeScoresStayFinite) {
  auto crit = Make();
  Vector scores{500.0, -500.0, 300.0, -300.0};
  CriterionInput in;
  in.scores = scores;
  in.num_pos = 2;
  auto out = crit->Evaluate(in);
  ASSERT_TRUE(out.ok()) << crit->name();
  EXPECT_TRUE(std::isfinite(out->loss));
  EXPECT_TRUE(out->dscore.AllFinite());
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineCriteriaTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(BceTest, MatchesManualBinaryCrossEntropy) {
  auto crit = MakeBceCriterion();
  Vector scores{0.5, -0.25};
  const double expected =
      std::log1p(std::exp(-0.5)) + std::log1p(std::exp(-0.25));
  EXPECT_NEAR(LossOf(*crit, scores, 1), expected, 1e-10);
}

TEST(BprTest, SymmetricScoresGiveLog2) {
  auto crit = MakeBprCriterion();
  // All scores equal: every pair contributes softplus(0) = ln 2.
  Vector scores(4, 1.0);
  EXPECT_NEAR(LossOf(*crit, scores, 2), std::log(2.0), 1e-10);
}

TEST(SetRankTest, UniformScoresGiveLogSetSize) {
  auto crit = MakeSetRankCriterion();
  // Each target competes with 3 negatives at equal scores:
  // loss = log(1 + 3) per target (averaged over targets).
  Vector scores(5, 0.0);
  EXPECT_NEAR(LossOf(*crit, scores, 2), std::log(4.0), 1e-10);
}

TEST(SetRankTest, OnlyNegativesInfluenceTargetLoss) {
  auto crit = MakeSetRankCriterion();
  // Raising one target's score should not hurt the other target.
  Vector base{0.0, 0.0, 0.0, 0.0};
  Vector boosted{3.0, 0.0, 0.0, 0.0};
  EXPECT_LT(LossOf(*crit, boosted, 2), LossOf(*crit, base, 2));
}

TEST(Set2SetRankTest, SetLevelTermTightensWeakestTarget) {
  // The weakest-target-vs-strongest-negative term must make loss depend
  // on the min positive even when pairwise means are equal.
  auto with_set = MakeSet2SetRankCriterion(1.0);
  auto without_set = MakeSet2SetRankCriterion(0.0);
  Vector spread{4.0, -2.0, 0.0, 0.0};   // Weak second target.
  Vector tight{1.0, 1.0, 0.0, 0.0};     // Same mean, tight targets.
  const double delta_with = LossOf(*with_set, spread, 2) -
                            LossOf(*with_set, tight, 2);
  const double delta_without = LossOf(*without_set, spread, 2) -
                               LossOf(*without_set, tight, 2);
  EXPECT_GT(delta_with, delta_without);
}

TEST(CriteriaNameTest, NamesAreStable) {
  EXPECT_EQ(MakeBceCriterion()->name(), "BCE");
  EXPECT_EQ(MakeBprCriterion()->name(), "BPR");
  EXPECT_EQ(MakeSetRankCriterion()->name(), "SetRank");
  EXPECT_EQ(MakeSet2SetRankCriterion()->name(), "S2SRank");
}

}  // namespace
}  // namespace lkpdpp
