// Differential campaign for the factor-plus-diagonal representation:
// FactorDiagSpectrum / FactorDiagEigenvectors against the dense
// SymmetricEigen oracle, Dpp/KDpp::CreateFactorDiag against the primal
// blend build, and the serving layer's factor-diag sampling path against
// the forced-primal oracle — including the allocation probe proving the
// pool x pool kernel is never materialized, per-path attribution, the
// NaN-config validation regressions, and the Nystrom approximation's
// computed error bounds.

#include "linalg/factor_diag.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/dpp.h"
#include "core/kdpp.h"
#include "data/synthetic.h"
#include "linalg/eigen.h"
#include "kernels/nystrom.h"
#include "kernels/quality_diversity.h"
#include "models/mf.h"
#include "obs/metrics.h"
#include "serve/kernel_source.h"
#include "serve/model_update.h"
#include "serve/service.h"
#include "testing_util.h"

namespace lkpdpp {
namespace {

constexpr double kTol = 1e-10;

// Random positive diagonal with entries in about [0.1, e^2].
Vector RandomDiag(int n, Rng* rng) {
  Vector d(n);
  for (int i = 0; i < n; ++i) d[i] = std::exp(rng->Normal());
  return d;
}

// Dense oracle for W W^T + Diag(diag).
Matrix Materialize(const Matrix& w, const Vector& diag) {
  Matrix l = MatMulTransB(w, w);
  for (int i = 0; i < l.rows(); ++i) l(i, i) += diag[i];
  return l;
}

// The serving blend: Diag(q) (alpha V V^T + (1 - alpha) I) Diag(q),
// materialized primally.
Matrix BlendKernel(const Matrix& v, const Vector& q, double alpha) {
  Matrix k = MatMulTransB(v, v);
  k *= alpha;
  k.AddDiagonal(1.0 - alpha);
  return AssembleKernel(q, k);
}

// The same blend as factor-diag pieces: W = sqrt(alpha) Diag(q) V and
// D_i = (1 - alpha) q_i^2.
struct BlendPieces {
  Matrix w;
  Vector diag;
};

BlendPieces BlendFactorDiag(const Matrix& v, const Vector& q, double alpha) {
  BlendPieces out;
  out.w = v;
  const double sqrt_alpha = std::sqrt(alpha);
  for (int r = 0; r < v.rows(); ++r) {
    for (int c = 0; c < v.cols(); ++c) out.w(r, c) *= sqrt_alpha * q[r];
  }
  out.diag = Vector(v.rows());
  for (int i = 0; i < v.rows(); ++i) {
    out.diag[i] = (1.0 - alpha) * q[i] * q[i];
  }
  return out;
}

LowRankFactor MakeLowRank(Matrix m) {
  auto f = LowRankFactor::Create(std::move(m));
  f.status().CheckOK();
  return std::move(f).ValueOrDie();
}

// ---------------------------------------------------------------------
// Spectrum vs the dense oracle

struct SpectrumCase {
  int n;
  int d;
  uint64_t seed;
};

class SpectrumSweep : public ::testing::TestWithParam<SpectrumCase> {};

TEST_P(SpectrumSweep, MatchesSymmetricEigen) {
  const auto [n, d, seed] = GetParam();
  Rng rng(seed);
  const Matrix w = testutil::RandomMatrix(n, d, &rng);
  const Vector diag = RandomDiag(n, &rng);
  auto spectrum = FactorDiagSpectrum(w, diag);
  ASSERT_TRUE(spectrum.ok()) << spectrum.status().ToString();
  ASSERT_EQ(spectrum->size(), n);
  auto oracle = SymmetricEigen(Materialize(w, diag));
  ASSERT_TRUE(oracle.ok());
  const double scale = std::max(1.0, oracle->eigenvalues.Max());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR((*spectrum)[i], oracle->eigenvalues[i], 1e-9 * scale)
        << "eigenvalue " << i;
    if (i > 0) {
      EXPECT_GE((*spectrum)[i], (*spectrum)[i - 1]);
    }
  }
}

TEST_P(SpectrumSweep, EigenvectorsDiagonalizeTheOperator) {
  const auto [n, d, seed] = GetParam();
  Rng rng(seed ^ 0xE16ULL);
  const Matrix w = testutil::RandomMatrix(n, d, &rng);
  const Vector diag = RandomDiag(n, &rng);
  auto spectrum = FactorDiagSpectrum(w, diag);
  ASSERT_TRUE(spectrum.ok());
  std::vector<int> all(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) all[static_cast<size_t>(i)] = i;
  auto vecs = FactorDiagEigenvectors(w, diag, *spectrum, all);
  ASSERT_TRUE(vecs.ok()) << vecs.status().ToString();
  const Matrix l = Materialize(w, diag);
  const double scale = std::max(1.0, spectrum->Max());
  for (int c = 0; c < n; ++c) {
    Vector u(n);
    for (int r = 0; r < n; ++r) u[r] = (*vecs)(r, c);
    EXPECT_NEAR(u.Norm(), 1.0, 1e-9) << "column " << c;
    const Vector lu = MatVec(l, u);
    for (int r = 0; r < n; ++r) {
      EXPECT_NEAR(lu[r], (*spectrum)[c] * u[r], 1e-8 * scale)
          << "residual at (" << r << ", " << c << ")";
    }
    for (int c2 = c + 1; c2 < n; ++c2) {
      double dot = 0.0;
      for (int r = 0; r < n; ++r) dot += (*vecs)(r, c) * (*vecs)(r, c2);
      EXPECT_NEAR(dot, 0.0, 1e-8) << "columns " << c << ", " << c2;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranks, SpectrumSweep,
    ::testing::Values(SpectrumCase{24, 1, 11}, SpectrumCase{24, 8, 22},
                      SpectrumCase{24, 32, 33}, SpectrumCase{5, 9, 44}),
    [](const ::testing::TestParamInfo<SpectrumCase>& info) {
      return "n" + std::to_string(info.param.n) + "d" +
             std::to_string(info.param.d);
    });

TEST(FactorDiagSpectrumTest, ZeroFactorReturnsSortedDiagonal) {
  const int n = 7;
  Matrix w(n, 3);  // All zero.
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < 3; ++c) w(r, c) = 0.0;
  }
  Vector diag{3.0, 1.0, 2.0, 0.5, 5.0, 4.0, 0.25};
  auto spectrum = FactorDiagSpectrum(w, diag);
  ASSERT_TRUE(spectrum.ok());
  std::vector<double> expected{0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0};
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ((*spectrum)[i], expected[static_cast<size_t>(i)]);
  }
}

TEST(FactorDiagSpectrumTest, DuplicateDiagonalEntriesAndZeroRows) {
  // Repeated diagonal values (poles of multiplicity 3) plus factor rows
  // that are exactly zero: the cluster basis must still span the
  // invariant subspace.
  const int n = 12;
  const int d = 4;
  Rng rng(77);
  Matrix w = testutil::RandomMatrix(n, d, &rng);
  for (int c = 0; c < d; ++c) {
    w(3, c) = 0.0;  // Items 3 and 7 carry no factor mass:
    w(7, c) = 0.0;  // their diag entries are exact eigenvalues.
  }
  Vector diag(n);
  for (int i = 0; i < n; ++i) diag[i] = 1.0 + 0.5 * (i % 4);
  auto spectrum = FactorDiagSpectrum(w, diag);
  ASSERT_TRUE(spectrum.ok());
  auto oracle = SymmetricEigen(Materialize(w, diag));
  ASSERT_TRUE(oracle.ok());
  const double scale = std::max(1.0, oracle->eigenvalues.Max());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR((*spectrum)[i], oracle->eigenvalues[i], 1e-9 * scale);
  }
  std::vector<int> all(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) all[static_cast<size_t>(i)] = i;
  auto vecs = FactorDiagEigenvectors(w, diag, *spectrum, all);
  ASSERT_TRUE(vecs.ok()) << vecs.status().ToString();
  const Matrix l = Materialize(w, diag);
  for (int c = 0; c < n; ++c) {
    Vector u(n);
    for (int r = 0; r < n; ++r) u[r] = (*vecs)(r, c);
    const Vector lu = MatVec(l, u);
    for (int r = 0; r < n; ++r) {
      EXPECT_NEAR(lu[r], (*spectrum)[c] * u[r], 1e-8 * scale);
    }
  }
}

TEST(FactorDiagSpectrumTest, ErrorPaths) {
  Rng rng(5);
  const Matrix w = testutil::RandomMatrix(4, 2, &rng);
  EXPECT_FALSE(FactorDiagSpectrum(w, Vector(3)).ok());  // Length mismatch.
  Matrix bad = w;
  bad(1, 1) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(FactorDiagSpectrum(bad, Vector(4)).ok());
  // Trace overflow: factor entries at 1e200 push tr(W^T W) past double
  // range — rejected as NumericalError, not silently inf.
  Matrix huge(4, 2, 1e200);
  Vector diag(4);
  for (int i = 0; i < 4; ++i) diag[i] = 1.0;
  EXPECT_EQ(FactorDiagSpectrum(huge, diag).status().code(),
            StatusCode::kNumericalError);
  // Eigenvector column lists must be strictly ascending and in range.
  const Vector ok_diag = RandomDiag(4, &rng);
  auto spectrum = FactorDiagSpectrum(w, ok_diag);
  ASSERT_TRUE(spectrum.ok());
  EXPECT_FALSE(FactorDiagEigenvectors(w, ok_diag, *spectrum, {2, 1}).ok());
  EXPECT_FALSE(FactorDiagEigenvectors(w, ok_diag, *spectrum, {0, 0}).ok());
  EXPECT_FALSE(FactorDiagEigenvectors(w, ok_diag, *spectrum, {4}).ok());
}

// ---------------------------------------------------------------------
// Dpp / KDpp differential vs the primal blend

struct BlendCase {
  double alpha;
  int d;
  uint64_t seed;
};

class BlendSweep : public ::testing::TestWithParam<BlendCase> {};

TEST_P(BlendSweep, KDppAgreesWithPrimalEverywhere) {
  const auto [alpha, d, seed] = GetParam();
  const int n = 40;
  Rng rng(seed);
  const Matrix v = testutil::RandomMatrix(n, d, &rng);
  Vector q(n);
  for (int i = 0; i < n; ++i) q[i] = std::exp(0.5 * rng.Normal());
  const BlendPieces fd = BlendFactorDiag(v, q, alpha);

  for (int k : {1, std::min(8, d + 1), 12}) {
    auto primal = KDpp::Create(BlendKernel(v, q, alpha), k);
    ASSERT_TRUE(primal.ok()) << primal.status().ToString();
    Vector diag_copy = fd.diag;
    auto factor_diag =
        KDpp::CreateFactorDiag(MakeLowRank(fd.w), std::move(diag_copy), k);
    ASSERT_TRUE(factor_diag.ok()) << factor_diag.status().ToString();
    EXPECT_TRUE(factor_diag->is_factor_diag());
    EXPECT_FALSE(factor_diag->is_dual());
    EXPECT_EQ(factor_diag->ground_size(), n);

    const double lz_p = primal->LogNormalizer();
    EXPECT_NEAR(lz_p, factor_diag->LogNormalizer(),
                kTol * std::max(1.0, std::fabs(lz_p)))
        << "alpha=" << alpha << " k=" << k;

    // LogProb through the Gram-plus-diagonal submatrix.
    std::vector<int> subset;
    for (int i = 0; i < k; ++i) subset.push_back((3 * i + 1) % n);
    std::sort(subset.begin(), subset.end());
    subset.erase(std::unique(subset.begin(), subset.end()), subset.end());
    if (static_cast<int>(subset.size()) == k) {
      auto lp_p = primal->LogProb(subset);
      auto lp_f = factor_diag->LogProb(subset);
      ASSERT_TRUE(lp_p.ok());
      ASSERT_TRUE(lp_f.ok());
      EXPECT_NEAR(*lp_p, *lp_f, 1e-8 * std::max(1.0, std::fabs(*lp_p)));
    }

    const Vector diag_p = primal->MarginalDiagonal();
    const Vector diag_f = factor_diag->MarginalDiagonal();
    const Matrix mk_p = primal->MarginalKernel();
    const Matrix mk_f = factor_diag->MarginalKernel();
    double trace = 0.0;
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(diag_p[i], diag_f[i], 1e-8) << "item " << i;
      trace += diag_f[i];
      for (int j = 0; j < n; ++j) {
        EXPECT_NEAR(mk_p(i, j), mk_f(i, j), 1e-8);
      }
    }
    EXPECT_NEAR(trace, static_cast<double>(k), 1e-7);

    // Fixed-seed sample streams coincide draw for draw: the factor-diag
    // sampler walks the same full spectrum the primal walks.
    Rng master_p(seed ^ 0xFD01ULL);
    Rng master_f(seed ^ 0xFD01ULL);
    for (int t = 0; t < 100; ++t) {
      Rng fork_p = master_p.Fork();
      Rng fork_f = master_f.Fork();
      auto sp = primal->Sample(&fork_p);
      auto sf = factor_diag->Sample(&fork_f);
      ASSERT_TRUE(sp.ok()) << sp.status().ToString();
      ASSERT_TRUE(sf.ok()) << sf.status().ToString();
      ASSERT_EQ(static_cast<int>(sf->size()), k);
      EXPECT_EQ(*sp, *sf)
          << "draw " << t << " diverged (alpha=" << alpha << ", d=" << d
          << ", k=" << k << ")";
    }
  }
}

TEST_P(BlendSweep, DppAgreesWithPrimal) {
  const auto [alpha, d, seed] = GetParam();
  const int n = 24;
  Rng rng(seed ^ 0xD99ULL);
  const Matrix v = testutil::RandomMatrix(n, d, &rng);
  Vector q(n);
  for (int i = 0; i < n; ++i) q[i] = std::exp(0.5 * rng.Normal());
  const BlendPieces fd = BlendFactorDiag(v, q, alpha);

  auto primal = Dpp::Create(BlendKernel(v, q, alpha));
  ASSERT_TRUE(primal.ok()) << primal.status().ToString();
  Vector diag_copy = fd.diag;
  auto factor_diag =
      Dpp::CreateFactorDiag(MakeLowRank(fd.w), std::move(diag_copy));
  ASSERT_TRUE(factor_diag.ok()) << factor_diag.status().ToString();
  EXPECT_TRUE(factor_diag->is_factor_diag());

  const double lz_p = primal->LogNormalizer();
  EXPECT_NEAR(lz_p, factor_diag->LogNormalizer(),
              kTol * std::max(1.0, std::fabs(lz_p)));
  EXPECT_NEAR(primal->ExpectedSize(), factor_diag->ExpectedSize(), 1e-8);
  const Vector diag_p = primal->MarginalDiagonal();
  const Vector diag_f = factor_diag->MarginalDiagonal();
  const Matrix mk_p = primal->MarginalKernel();
  const Matrix mk_f = factor_diag->MarginalKernel();
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(diag_p[i], diag_f[i], 1e-8);
    for (int j = 0; j < n; ++j) EXPECT_NEAR(mk_p(i, j), mk_f(i, j), 1e-8);
  }
  for (const auto& s :
       std::vector<std::vector<int>>{{}, {0}, {2, 7}, {1, 5, 9}}) {
    auto lp_p = primal->LogProb(s);
    auto lp_f = factor_diag->LogProb(s);
    ASSERT_TRUE(lp_p.ok());
    ASSERT_TRUE(lp_f.ok());
    EXPECT_NEAR(*lp_p, *lp_f, 1e-8 * std::max(1.0, std::fabs(*lp_p)));
  }
  Rng master_p(seed ^ 0xFD02ULL);
  Rng master_f(seed ^ 0xFD02ULL);
  for (int t = 0; t < 100; ++t) {
    Rng fork_p = master_p.Fork();
    Rng fork_f = master_f.Fork();
    auto sp = primal->Sample(&fork_p);
    auto sf = factor_diag->Sample(&fork_f);
    ASSERT_TRUE(sp.ok()) << sp.status().ToString();
    ASSERT_TRUE(sf.ok()) << sf.status().ToString();
    EXPECT_EQ(*sp, *sf) << "draw " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Blends, BlendSweep,
    ::testing::Values(BlendCase{0.25, 1, 501}, BlendCase{0.25, 8, 502},
                      BlendCase{0.25, 32, 503}, BlendCase{0.5, 1, 504},
                      BlendCase{0.5, 8, 505}, BlendCase{0.5, 32, 506},
                      BlendCase{0.99, 1, 507}, BlendCase{0.99, 8, 508},
                      BlendCase{0.99, 32, 509}),
    [](const ::testing::TestParamInfo<BlendCase>& info) {
      return "alpha" + std::to_string(static_cast<int>(info.param.alpha * 100)) +
             "d" + std::to_string(info.param.d);
    });

TEST(FactorDiagKDppTest, RankDeficientFactorAgreesWithPrimal) {
  // d = 8 columns but only rank 4 (columns duplicated). The added
  // diagonal keeps the blend full-rank, so every k up to n works — and
  // must match the primal build on the same degenerate factor.
  const int n = 20;
  Rng rng(91);
  Matrix v = testutil::RandomMatrix(n, 8, &rng);
  for (int c = 4; c < 8; ++c) {
    for (int r = 0; r < n; ++r) v(r, c) = v(r, c - 4);
  }
  Vector q(n);
  for (int i = 0; i < n; ++i) q[i] = std::exp(0.3 * rng.Normal());
  const double alpha = 0.6;
  const BlendPieces fd = BlendFactorDiag(v, q, alpha);
  auto primal = KDpp::Create(BlendKernel(v, q, alpha), 6);
  ASSERT_TRUE(primal.ok());
  auto factor_diag = KDpp::CreateFactorDiag(MakeLowRank(fd.w),
                                            Vector(fd.diag), 6);
  ASSERT_TRUE(factor_diag.ok()) << factor_diag.status().ToString();
  EXPECT_NEAR(primal->LogNormalizer(), factor_diag->LogNormalizer(),
              kTol * std::max(1.0, std::fabs(primal->LogNormalizer())));
  Rng master_p(17);
  Rng master_f(17);
  for (int t = 0; t < 100; ++t) {
    Rng fork_p = master_p.Fork();
    Rng fork_f = master_f.Fork();
    auto sp = primal->Sample(&fork_p);
    auto sf = factor_diag->Sample(&fork_f);
    ASSERT_TRUE(sp.ok());
    ASSERT_TRUE(sf.ok());
    EXPECT_EQ(*sp, *sf) << "draw " << t;
  }
}

TEST(FactorDiagKDppTest, ExtremeQualityScalesRejectIdentically) {
  // Quality scales spanning 1e-150 .. 1e150 push the blended spectrum
  // toward double range. k = 1 keeps e_1 finite and must agree; k = 2
  // overflows the ESP table and BOTH representations must reject with
  // the same code rather than sample from a corrupted table.
  const int n = 10;
  Rng rng(47);
  const Matrix v = testutil::RandomMatrix(n, 4, &rng);
  Vector q(n);
  const double scales[4] = {1e150, 1.0, 1e-150, 0.5};
  for (int i = 0; i < n; ++i) q[i] = scales[i % 4];
  const double alpha = 0.5;
  const BlendPieces fd = BlendFactorDiag(v, q, alpha);

  auto primal_1 = KDpp::Create(BlendKernel(v, q, alpha), 1);
  auto factor_1 =
      KDpp::CreateFactorDiag(MakeLowRank(fd.w), Vector(fd.diag), 1);
  ASSERT_TRUE(primal_1.ok()) << primal_1.status().ToString();
  ASSERT_TRUE(factor_1.ok()) << factor_1.status().ToString();
  const double lz_p = primal_1->LogNormalizer();
  EXPECT_NEAR(lz_p, factor_1->LogNormalizer(), 1e-9 * std::fabs(lz_p));

  auto primal_2 = KDpp::Create(BlendKernel(v, q, alpha), 2);
  auto factor_2 =
      KDpp::CreateFactorDiag(MakeLowRank(fd.w), Vector(fd.diag), 2);
  EXPECT_EQ(primal_2.status().code(), StatusCode::kNumericalError)
      << primal_2.status().ToString();
  EXPECT_EQ(factor_2.status().code(), StatusCode::kNumericalError)
      << factor_2.status().ToString();
}

TEST(FactorDiagKDppTest, CreateFactorDiagValidatesArguments) {
  Rng rng(3);
  const Matrix v = testutil::RandomMatrix(6, 3, &rng);
  const Vector diag = RandomDiag(6, &rng);
  EXPECT_FALSE(
      KDpp::CreateFactorDiag(MakeLowRank(v), Vector(diag), 0).ok());
  EXPECT_FALSE(
      KDpp::CreateFactorDiag(MakeLowRank(v), Vector(diag), 7).ok());
  EXPECT_FALSE(KDpp::CreateFactorDiag(MakeLowRank(v), Vector(3), 2).ok());
  Vector bad = diag;
  bad[2] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(
      KDpp::CreateFactorDiag(MakeLowRank(v), std::move(bad), 2).ok());
  auto kdpp = KDpp::CreateFactorDiag(MakeLowRank(v), Vector(diag), 2);
  ASSERT_TRUE(kdpp.ok());
  EXPECT_FALSE(kdpp->Sample(nullptr).ok());
}

// ---------------------------------------------------------------------
// Serving: factor-diag sampling vs the forced-primal oracle

struct ServeWorld {
  Dataset dataset;
  std::unique_ptr<MfModel> model;
  DiversityKernel diversity;
};

ServeWorld* World() {
  static ServeWorld* world = [] {
    SyntheticConfig cfg;
    cfg.name = "factor-diag-world";
    cfg.num_users = 60;
    cfg.num_items = 80;
    cfg.num_categories = 10;
    cfg.num_events = 6000;
    cfg.min_interactions = 8;
    cfg.seed = 77;
    auto ds = GenerateSyntheticDataset(cfg);
    ds.status().CheckOK();
    Dataset dataset = std::move(ds).ValueOrDie();
    DiversityKernel diversity =
        DiversityKernel::Random(dataset.num_items(), 8, /*seed=*/23);
    auto* w = new ServeWorld{std::move(dataset), nullptr,
                             std::move(diversity)};
    MfModel::Config mcfg;
    mcfg.embedding_dim = 8;
    mcfg.seed = 5;
    w->model = std::make_unique<MfModel>(w->dataset.num_users(),
                                         w->dataset.num_items(), mcfg);
    return w;
  }();
  return world;
}

ServeConfig SampleConfig(double alpha) {
  ServeConfig config;
  config.mode = ServeMode::kSample;
  config.top_k = 5;
  config.pool_size = 20;
  config.kernel_blend_alpha = alpha;
  config.cache_capacity = 256;
  config.seed = 4321;
  return config;
}

std::vector<RecRequest> RoundRobinBatch(int batch_size, int offset) {
  std::vector<RecRequest> batch;
  const int num_users = World()->dataset.num_users();
  for (int i = 0; i < batch_size; ++i) {
    batch.push_back(RecRequest{(offset + i) % num_users});
  }
  return batch;
}

TEST(FactorDiagServeTest, BlendedSamplingMatchesForcedPrimalExactly) {
  ServeWorld* w = World();
  for (double alpha : {0.25, 0.5, 0.99}) {
    ServeConfig fd_cfg = SampleConfig(alpha);
    ServeConfig primal_cfg = fd_cfg;
    primal_cfg.force_primal = true;
    auto fd_service = RecommendationService::Create(
        &w->dataset, w->model.get(), &w->diversity, nullptr, fd_cfg);
    auto primal_service = RecommendationService::Create(
        &w->dataset, w->model.get(), &w->diversity, nullptr, primal_cfg);
    ASSERT_TRUE(fd_service.ok());
    ASSERT_TRUE(primal_service.ok());
    int factor_diag_responses = 0;
    for (int b = 0; b < 3; ++b) {
      auto rf = (*fd_service)->HandleBatch(RoundRobinBatch(24, b * 5));
      auto rp = (*primal_service)->HandleBatch(RoundRobinBatch(24, b * 5));
      ASSERT_TRUE(rf.ok()) << rf.status().ToString();
      ASSERT_TRUE(rp.ok()) << rp.status().ToString();
      ASSERT_EQ(rf->size(), rp->size());
      for (size_t i = 0; i < rf->size(); ++i) {
        EXPECT_EQ((*rf)[i].items, (*rp)[i].items)
            << "alpha " << alpha << " batch " << b << " request " << i
            << ": factor-diag and primal sampling diverged";
        EXPECT_EQ((*rp)[i].path, ServePath::kPrimal);
        EXPECT_FALSE((*rp)[i].dual_path);
        if ((*rf)[i].path == ServePath::kFactorDiagSample) {
          EXPECT_TRUE((*rf)[i].dual_path);
          ++factor_diag_responses;
        }
      }
    }
    // The factor-diag path actually engaged (rank 8 < pool 20).
    EXPECT_GT(factor_diag_responses, 0) << "alpha " << alpha;
  }
}

TEST(FactorDiagServeTest, NeverMaterializesPoolByPoolKernel) {
  // Allocation-probe proof: a synchronous (pool-less) service running
  // blended sampling through the factor-diag path never constructs a
  // Matrix with pool_size^2 elements. The forced-primal oracle on the
  // same batch does (that is what the probe is calibrated against).
  ServeWorld* w = World();
  ServeConfig fd_cfg = SampleConfig(0.5);
  fd_cfg.cache_capacity = 0;  // Every request rebuilds: probe sees builds.
  auto fd_service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr, fd_cfg);
  ASSERT_TRUE(fd_service.ok());
  const long pool_sq =
      static_cast<long>(fd_cfg.pool_size) * fd_cfg.pool_size;
  matrix_probe::Arm();
  ASSERT_TRUE((*fd_service)->HandleBatch(RoundRobinBatch(8, 0)).ok());
  const long peak_fd = matrix_probe::Disarm();
  EXPECT_GT(peak_fd, 0);
  EXPECT_LT(peak_fd, pool_sq)
      << "factor-diag sampling materialized a pool x pool matrix";

  ServeConfig primal_cfg = fd_cfg;
  primal_cfg.force_primal = true;
  auto primal_service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr, primal_cfg);
  ASSERT_TRUE(primal_service.ok());
  matrix_probe::Arm();
  ASSERT_TRUE((*primal_service)->HandleBatch(RoundRobinBatch(8, 0)).ok());
  const long peak_primal = matrix_probe::Disarm();
  EXPECT_GE(peak_primal, pool_sq)
      << "probe calibration: the primal path must materialize the kernel";
}

TEST(FactorDiagServeTest, BitIdenticalAcrossThreadCounts) {
  ServeWorld* w = World();
  auto serve_many = [&](int threads) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
    auto service = RecommendationService::Create(
        &w->dataset, w->model.get(), &w->diversity, pool.get(),
        SampleConfig(0.5));
    service.status().CheckOK();
    std::vector<std::vector<int>> all_items;
    bool saw_factor_diag = false;
    for (int b = 0; b < 4; ++b) {
      auto responses = (*service)->HandleBatch(RoundRobinBatch(25, b * 7));
      responses.status().CheckOK();
      for (const RecResponse& r : *responses) {
        all_items.push_back(r.items);
        saw_factor_diag =
            saw_factor_diag || r.path == ServePath::kFactorDiagSample;
      }
    }
    EXPECT_TRUE(saw_factor_diag);
    return all_items;
  };
  const auto serial = serve_many(/*threads=*/1);
  for (int threads : {4, 8}) {
    const auto parallel = serve_many(threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i], serial[i])
          << "factor-diag response " << i << " diverged at " << threads
          << " threads";
    }
  }
}

// ---------------------------------------------------------------------
// Per-path attribution (regression: factor-backed MAP used to count
// into lkp_serve_dual_path_total, conflating it with dual sampling)

TEST(FactorDiagServeTest, PathAttributionIsPerRepresentation) {
  ServeWorld* w = World();
  obs::Counter* legacy_dual = obs::MetricsRegistry::Global().GetCounter(
      "lkp_serve_dual_path_total");
  obs::Counter* factor_map = obs::MetricsRegistry::Global().GetCounter(
      "lkp_serve_path_total{path=\"factor_map\"}");
  obs::Counter* factor_diag_sample =
      obs::MetricsRegistry::Global().GetCounter(
          "lkp_serve_path_total{path=\"factor_diag_sample\"}");
  obs::Counter* dual_sample = obs::MetricsRegistry::Global().GetCounter(
      "lkp_serve_path_total{path=\"dual_sample\"}");

  // MAP with the factor rep: path attribution goes to factor_map and the
  // legacy dual-sampling counter must NOT move (the old conflation).
  {
    ServeConfig cfg = SampleConfig(0.5);
    cfg.mode = ServeMode::kMapRerank;
    auto service = RecommendationService::Create(
        &w->dataset, w->model.get(), &w->diversity, nullptr, cfg);
    ASSERT_TRUE(service.ok());
    const long dual_before = legacy_dual->Value();
    const long map_before = factor_map->Value();
    auto responses = (*service)->HandleBatch(RoundRobinBatch(16, 0));
    ASSERT_TRUE(responses.ok());
    bool saw_factor_map = false;
    for (const RecResponse& r : *responses) {
      if (r.items.empty()) continue;
      EXPECT_EQ(r.path, ServePath::kFactorMap);
      EXPECT_TRUE(r.dual_path);
      saw_factor_map = true;
    }
    EXPECT_TRUE(saw_factor_map);
    EXPECT_GT(factor_map->Value(), map_before);
    EXPECT_EQ(legacy_dual->Value(), dual_before)
        << "factor-backed MAP builds must not count as dual sampling";
  }

  // Blended sampling attributes to factor_diag_sample, not dual_sample.
  {
    auto service = RecommendationService::Create(
        &w->dataset, w->model.get(), &w->diversity, nullptr,
        SampleConfig(0.5));
    ASSERT_TRUE(service.ok());
    const long fd_before = factor_diag_sample->Value();
    const long dual_before = dual_sample->Value();
    const long legacy_before = legacy_dual->Value();
    ASSERT_TRUE((*service)->HandleBatch(RoundRobinBatch(16, 0)).ok());
    EXPECT_GT(factor_diag_sample->Value(), fd_before);
    EXPECT_EQ(dual_sample->Value(), dual_before);
    EXPECT_EQ(legacy_dual->Value(), legacy_before);
  }

  // Pure-diversity sampling still attributes to dual_sample (and the
  // legacy counter still tracks it).
  {
    auto service = RecommendationService::Create(
        &w->dataset, w->model.get(), &w->diversity, nullptr,
        SampleConfig(1.0));
    ASSERT_TRUE(service.ok());
    const long dual_before = dual_sample->Value();
    const long legacy_before = legacy_dual->Value();
    auto responses = (*service)->HandleBatch(RoundRobinBatch(16, 0));
    ASSERT_TRUE(responses.ok());
    for (const RecResponse& r : *responses) {
      if (r.items.empty()) continue;
      EXPECT_EQ(r.path, ServePath::kDualSample);
      EXPECT_TRUE(r.dual_path);
    }
    EXPECT_GT(dual_sample->Value(), dual_before);
    EXPECT_GT(legacy_dual->Value(), legacy_before);
  }

  // MAP at alpha == 0 attributes to diag_map and reports dual_path
  // false, as before.
  {
    ServeConfig cfg = SampleConfig(0.0);
    cfg.mode = ServeMode::kMapRerank;
    auto service = RecommendationService::Create(
        &w->dataset, w->model.get(), &w->diversity, nullptr, cfg);
    ASSERT_TRUE(service.ok());
    auto responses = (*service)->HandleBatch(RoundRobinBatch(8, 0));
    ASSERT_TRUE(responses.ok());
    for (const RecResponse& r : *responses) {
      if (r.items.empty()) continue;
      EXPECT_EQ(r.path, ServePath::kDiagMap);
      EXPECT_FALSE(r.dual_path);
    }
  }
}

TEST(FactorDiagServeTest, ServePathNamesAreStable) {
  EXPECT_STREQ(ServePathName(ServePath::kPrimal), "primal");
  EXPECT_STREQ(ServePathName(ServePath::kDualSample), "dual_sample");
  EXPECT_STREQ(ServePathName(ServePath::kFactorDiagSample),
               "factor_diag_sample");
  EXPECT_STREQ(ServePathName(ServePath::kFactorMap), "factor_map");
  EXPECT_STREQ(ServePathName(ServePath::kDiagMap), "diag_map");
}

// ---------------------------------------------------------------------
// Config validation regressions (NaN used to pass the range checks)

TEST(ConfigValidationTest, ServeConfigRejectsNonFiniteFields) {
  ServeWorld* w = World();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  auto create = [&](const ServeConfig& cfg) {
    return RecommendationService::Create(&w->dataset, w->model.get(),
                                         &w->diversity, nullptr, cfg)
        .ok();
  };
  // Regression: `alpha < 0 || alpha > 1` waved NaN straight through.
  ServeConfig cfg = SampleConfig(0.5);
  cfg.kernel_blend_alpha = nan;
  EXPECT_FALSE(create(cfg));
  cfg = SampleConfig(0.5);
  cfg.kernel_blend_alpha = inf;
  EXPECT_FALSE(create(cfg));
  cfg = SampleConfig(0.5);
  cfg.batch_deadline_ms = nan;
  EXPECT_FALSE(create(cfg));
  cfg = SampleConfig(0.5);
  cfg.batch_deadline_ms = inf;
  EXPECT_FALSE(create(cfg));
  cfg = SampleConfig(0.5);
  cfg.approx_error_budget = nan;
  EXPECT_FALSE(create(cfg));
  cfg = SampleConfig(0.5);
  cfg.approx_factor_rank = -1;
  EXPECT_FALSE(create(cfg));
  EXPECT_TRUE(create(SampleConfig(0.5)));
}

TEST(ConfigValidationTest, UpdateConfigRejectsNonFiniteJitter) {
  ServeWorld* w = World();
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr,
      SampleConfig(0.5));
  ASSERT_TRUE(service.ok());
  UpdateConfig cfg;
  cfg.kernel_set_size = 4;
  cfg.kernel_jitter = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ModelUpdater::Create(&w->dataset, w->model.get(),
                                    &w->diversity, service->get(), cfg)
                   .ok());
  cfg.kernel_jitter = 1e-4;
  EXPECT_TRUE(ModelUpdater::Create(&w->dataset, w->model.get(),
                                   &w->diversity, service->get(), cfg)
                  .ok());
}

TEST(ConfigValidationTest, TrainConfigRejectsNonFiniteRates) {
  ServeWorld* w = World();
  DiversityKernel::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.pairs_per_epoch = 4;
  cfg.learning_rate = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(DiversityKernel::Train(w->dataset, cfg).ok());
  cfg.learning_rate = 0.05;
  cfg.jitter = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(DiversityKernel::Train(w->dataset, cfg).ok());
}

// ---------------------------------------------------------------------
// Nystrom approximation: computed bounds, and the serving budget gate

TEST(NystromTest, FullRankReconstructsExactly) {
  Rng rng(19);
  const int n = 12;
  const Matrix k = testutil::RandomCorrelationKernel(n, &rng);
  auto approx = PivotedCholeskyApproximation(
      n, n, 0.0, [&](int i, int j) { return k(i, j); });
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  EXPECT_LE(approx->trace_error_bound, 1e-8);
  const Matrix rebuilt = MatMulTransB(approx->factor, approx->factor);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      EXPECT_NEAR(rebuilt(i, j), k(i, j), 1e-7) << "(" << i << "," << j
                                                << ")";
    }
  }
}

TEST(NystromTest, TruncatedBoundsAreValid) {
  Rng rng(29);
  const int n = 16;
  const Matrix k = testutil::RandomCorrelationKernel(n, &rng);
  for (int max_rank : {2, 4, 8}) {
    auto approx = PivotedCholeskyApproximation(
        n, max_rank, 0.0, [&](int i, int j) { return k(i, j); });
    ASSERT_TRUE(approx.ok());
    EXPECT_LE(approx->factor.cols(), max_rank);
    const Matrix rebuilt = MatMulTransB(approx->factor, approx->factor);
    double max_err = 0.0;
    double trace_err = 0.0;
    for (int i = 0; i < n; ++i) {
      trace_err += k(i, i) - rebuilt(i, i);
      for (int j = 0; j < n; ++j) {
        max_err = std::max(max_err, std::fabs(k(i, j) - rebuilt(i, j)));
      }
    }
    // The computed bounds are exact identities of the partial Cholesky;
    // allow round-off slack only.
    EXPECT_LE(max_err, approx->entry_error_bound + 1e-9)
        << "max_rank=" << max_rank;
    EXPECT_LE(std::fabs(trace_err - approx->trace_error_bound), 1e-8);
    // Bounds shrink (weakly) as rank grows.
  }
}

TEST(NystromTest, GaussianNystromMatchesExactSubmatrix) {
  Rng rng(31);
  const Matrix embeddings = testutil::RandomMatrix(30, 5, &rng);
  const std::vector<int> pool{2, 5, 9, 11, 14, 17, 20, 23, 26, 29};
  const double sigma = 1.5;
  GaussianKernelSource source(embeddings, sigma, /*max_rank=*/10);
  const Matrix exact = source.PoolSubmatrix(pool);
  EXPECT_EQ(exact.rows(), 10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(exact(i, i), 1.0);
  // Full-rank Nystrom reconstructs the exact submatrix.
  auto approx = GaussianNystrom(embeddings, pool, sigma, 10, 0.0);
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  const Matrix rebuilt = MatMulTransB(approx->factor, approx->factor);
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      EXPECT_NEAR(rebuilt(i, j), exact(i, j), 1e-8);
    }
  }
  // Truncated Nystrom honors its own computed bound.
  auto truncated = GaussianNystrom(embeddings, pool, sigma, 4, 0.0);
  ASSERT_TRUE(truncated.ok());
  const Matrix coarse = MatMulTransB(truncated->factor, truncated->factor);
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      EXPECT_LE(std::fabs(coarse(i, j) - exact(i, j)),
                truncated->entry_error_bound + 1e-9);
    }
  }
  EXPECT_GT(truncated->entry_error_bound, 0.0);
}

TEST(NystromTest, RejectsBadArguments) {
  EXPECT_FALSE(PivotedCholeskyApproximation(0, 4, 0.0, nullptr).ok());
  EXPECT_FALSE(
      PivotedCholeskyApproximation(4, 0, 0.0, [](int, int) { return 1.0; })
          .ok());
  EXPECT_FALSE(PivotedCholeskyApproximation(
                   4, 2, std::numeric_limits<double>::quiet_NaN(),
                   [](int, int) { return 1.0; })
                   .ok());
  Rng rng(7);
  const Matrix e = testutil::RandomMatrix(6, 3, &rng);
  EXPECT_FALSE(GaussianNystrom(e, {0, 1}, 0.0, 2, 0.0).ok());
  EXPECT_FALSE(GaussianNystrom(e, {0, 9}, 1.0, 2, 0.0).ok());
  EXPECT_FALSE(GaussianNystrom(e, {}, 1.0, 2, 0.0).ok());
}

TEST(GaussianServeTest, ApproximationIsOptInAndBudgetGated) {
  ServeWorld* w = World();
  Rng rng(41);
  Matrix embeddings =
      testutil::RandomMatrix(w->dataset.num_items(), 6, &rng);
  obs::Counter* fallback = obs::MetricsRegistry::Global().GetCounter(
      "lkp_serve_approx_fallback_total");

  // Default config (approx_factor_rank == 0): approximation disabled,
  // every pool serves exactly through the primal path.
  {
    auto service = RecommendationService::CreateGaussian(
        &w->dataset, w->model.get(), Matrix(embeddings), 1.5, nullptr,
        SampleConfig(0.5));
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    auto responses = (*service)->HandleBatch(RoundRobinBatch(12, 0));
    ASSERT_TRUE(responses.ok()) << responses.status().ToString();
    for (const RecResponse& r : *responses) {
      if (r.items.empty()) continue;
      EXPECT_EQ(r.path, ServePath::kPrimal);
    }
  }

  // Opt in with a generous budget: factor-backed sampling engages.
  {
    ServeConfig cfg = SampleConfig(0.5);
    cfg.approx_factor_rank = 6;
    cfg.approx_error_budget = 1.0;  // Gaussian entries are <= 1 anyway.
    auto service = RecommendationService::CreateGaussian(
        &w->dataset, w->model.get(), Matrix(embeddings), 1.5, nullptr,
        cfg);
    ASSERT_TRUE(service.ok());
    auto responses = (*service)->HandleBatch(RoundRobinBatch(12, 0));
    ASSERT_TRUE(responses.ok()) << responses.status().ToString();
    bool engaged = false;
    for (const RecResponse& r : *responses) {
      engaged = engaged || r.path == ServePath::kFactorDiagSample;
    }
    EXPECT_TRUE(engaged) << "approximate factor never engaged";
  }

  // Opt in with an impossible budget: every pool falls back to the
  // exact primal build, the fallback counter says so, and the responses
  // are bit-identical to the never-opted-in service.
  {
    ServeConfig cfg = SampleConfig(0.5);
    cfg.approx_factor_rank = 4;
    cfg.approx_error_budget = 0.0;
    auto gated = RecommendationService::CreateGaussian(
        &w->dataset, w->model.get(), Matrix(embeddings), 1.5, nullptr,
        cfg);
    auto exact = RecommendationService::CreateGaussian(
        &w->dataset, w->model.get(), Matrix(embeddings), 1.5, nullptr,
        SampleConfig(0.5));
    ASSERT_TRUE(gated.ok());
    ASSERT_TRUE(exact.ok());
    const long before = fallback->Value();
    auto rg = (*gated)->HandleBatch(RoundRobinBatch(12, 0));
    auto re = (*exact)->HandleBatch(RoundRobinBatch(12, 0));
    ASSERT_TRUE(rg.ok());
    ASSERT_TRUE(re.ok());
    EXPECT_GT(fallback->Value(), before);
    for (size_t i = 0; i < rg->size(); ++i) {
      EXPECT_EQ((*rg)[i].path, ServePath::kPrimal);
      EXPECT_EQ((*rg)[i].items, (*re)[i].items)
          << "budget fallback changed a response";
    }
  }
}

}  // namespace
}  // namespace lkpdpp
