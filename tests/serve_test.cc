#include "serve/service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/map_inference.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/mf.h"
#include "obs/metrics.h"
#include "serve/kernel_cache.h"
#include "serve/stats.h"

namespace lkpdpp {
namespace {

// Shared small world: a synthetic dataset, an (untrained but
// deterministic) MF model, and a random diversity kernel. Untrained is
// fine — serving only needs ScoreAllItems to be a pure function.
struct ServeWorld {
  Dataset dataset;
  std::unique_ptr<MfModel> model;
  DiversityKernel diversity;
};

ServeWorld* World() {
  static ServeWorld* world = [] {
    SyntheticConfig cfg;
    cfg.name = "serve-world";
    cfg.num_users = 70;
    cfg.num_items = 90;
    cfg.num_categories = 12;
    cfg.num_events = 7000;
    cfg.min_interactions = 8;
    cfg.seed = 99;
    auto ds = GenerateSyntheticDataset(cfg);
    ds.status().CheckOK();
    Dataset dataset = std::move(ds).ValueOrDie();
    DiversityKernel diversity =
        DiversityKernel::Random(dataset.num_items(), 8, /*seed=*/11);
    auto* w = new ServeWorld{std::move(dataset), nullptr,
                             std::move(diversity)};
    MfModel::Config mcfg;
    mcfg.embedding_dim = 8;
    mcfg.seed = 5;
    w->model = std::make_unique<MfModel>(w->dataset.num_users(),
                                         w->dataset.num_items(), mcfg);
    return w;
  }();
  return world;
}

ServeConfig BaseConfig(ServeMode mode) {
  ServeConfig config;
  config.mode = mode;
  config.top_k = 5;
  config.pool_size = 20;
  config.cache_capacity = 256;
  config.seed = 1234;
  return config;
}

std::vector<RecRequest> RoundRobinBatch(int batch_size, int offset) {
  std::vector<RecRequest> batch;
  batch.reserve(static_cast<size_t>(batch_size));
  const int num_users = World()->dataset.num_users();
  for (int i = 0; i < batch_size; ++i) {
    batch.push_back(RecRequest{(offset + i) % num_users});
  }
  return batch;
}

// ---------------------------------------------------------------------
// KernelCache

std::shared_ptr<const ServedKernel> DummyEntry(double fill) {
  auto e = std::make_shared<ServedKernel>();
  e->rep = std::make_shared<const PrimalKernelRep>(Matrix(2, 2, fill));
  return e;
}

TEST(KernelCacheTest, MissThenHit) {
  KernelCache cache(4);
  EXPECT_EQ(cache.Get(1, 42), nullptr);
  EXPECT_EQ(cache.misses(), 1);
  cache.Put(1, 42, DummyEntry(1.0));
  auto hit = cache.Get(1, 42);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->rep->Entry(0, 0), 1.0);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.size(), 1);
}

TEST(KernelCacheTest, DistinguishesUserAndHash) {
  KernelCache cache(8);
  cache.Put(1, 42, DummyEntry(1.0));
  EXPECT_EQ(cache.Get(2, 42), nullptr);
  EXPECT_EQ(cache.Get(1, 43), nullptr);
  EXPECT_NE(cache.Get(1, 42), nullptr);
}

TEST(KernelCacheTest, EvictsLeastRecentlyUsed) {
  KernelCache cache(2);
  cache.Put(1, 10, DummyEntry(1.0));
  cache.Put(2, 20, DummyEntry(2.0));
  // Touch (1, 10) so (2, 20) becomes the LRU entry.
  ASSERT_NE(cache.Get(1, 10), nullptr);
  cache.Put(3, 30, DummyEntry(3.0));
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.Get(2, 20), nullptr);  // Evicted.
  EXPECT_NE(cache.Get(1, 10), nullptr);
  EXPECT_NE(cache.Get(3, 30), nullptr);
}

TEST(KernelCacheTest, CapacityZeroDisablesCaching) {
  KernelCache cache(0);
  cache.Put(1, 10, DummyEntry(1.0));
  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.Get(1, 10), nullptr);
}

TEST(KernelCacheTest, PutRefreshesExistingKey) {
  KernelCache cache(2);
  cache.Put(1, 10, DummyEntry(1.0));
  cache.Put(1, 10, DummyEntry(7.0));
  EXPECT_EQ(cache.size(), 1);
  auto e = cache.Get(1, 10);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->rep->Entry(0, 0), 7.0);
}

TEST(KernelCacheTest, ClearEmptiesEverything) {
  KernelCache cache(4);
  cache.Put(1, 10, DummyEntry(1.0));
  cache.Put(2, 20, DummyEntry(2.0));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.Get(1, 10), nullptr);
}

// Like DummyEntry, but with a ground set the reverse indices can bucket.
std::shared_ptr<const ServedKernel> DummyEntryWithItems(
    double fill, std::vector<int> items) {
  auto e = std::make_shared<ServedKernel>();
  e->rep = std::make_shared<const PrimalKernelRep>(Matrix(2, 2, fill));
  e->items = std::move(items);
  return e;
}

TEST(KernelCacheTest, InvalidateUsersEvictsOnlyTouchedUsers) {
  KernelCache cache(8);  // Single shard: exact counts.
  cache.Put(1, 10, DummyEntryWithItems(1.0, {4, 5}));
  cache.Put(1, 11, DummyEntryWithItems(1.5, {5, 6}));
  cache.Put(2, 20, DummyEntryWithItems(2.0, {4}));
  cache.Put(3, 30, DummyEntryWithItems(3.0, {7}));
  EXPECT_EQ(cache.InvalidateUsers({1}), 2);  // Both of user 1's pools.
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(cache.Get(1, 10), nullptr);
  EXPECT_EQ(cache.Get(1, 11), nullptr);
  EXPECT_NE(cache.Get(2, 20), nullptr);
  EXPECT_NE(cache.Get(3, 30), nullptr);
  EXPECT_EQ(cache.invalidations(), 2);
  EXPECT_EQ(cache.evictions(), 0);  // Invalidation is not LRU eviction.
  EXPECT_EQ(cache.InvalidateUsers({42}), 0);  // Unknown user: no-op.
}

TEST(KernelCacheTest, InvalidateItemsCountsMultiItemEntriesOnce) {
  KernelCache cache(8);
  // (1, 10) contains BOTH touched items: it must evict — and count —
  // exactly once even though it sits in two drained buckets.
  cache.Put(1, 10, DummyEntryWithItems(1.0, {4, 5}));
  cache.Put(2, 20, DummyEntryWithItems(2.0, {5}));
  cache.Put(3, 30, DummyEntryWithItems(3.0, {6}));
  EXPECT_EQ(cache.InvalidateItems({4, 5}), 2);
  EXPECT_EQ(cache.Get(1, 10), nullptr);
  EXPECT_EQ(cache.Get(2, 20), nullptr);
  EXPECT_NE(cache.Get(3, 30), nullptr);
  EXPECT_EQ(cache.invalidations(), 2);
}

TEST(KernelCacheTest, ReverseIndexFollowsEvictionAndRefresh) {
  KernelCache cache(2);  // Single-shard exact LRU.
  cache.Put(1, 10, DummyEntryWithItems(1.0, {4}));
  cache.Put(2, 20, DummyEntryWithItems(2.0, {5}));
  cache.Put(3, 30, DummyEntryWithItems(3.0, {6}));  // Evicts (1, 10).
  EXPECT_EQ(cache.evictions(), 1);
  // The evicted entry left the reverse indices with it.
  EXPECT_EQ(cache.InvalidateUsers({1}), 0);
  EXPECT_EQ(cache.InvalidateItems({4}), 0);
  // A Put-refresh rebinds the key to the NEW entry's ground set.
  cache.Put(2, 20, DummyEntryWithItems(2.5, {7}));
  EXPECT_EQ(cache.InvalidateItems({5}), 0);  // Old set no longer indexed.
  EXPECT_EQ(cache.InvalidateItems({7}), 1);  // New set is.
  EXPECT_EQ(cache.Get(2, 20), nullptr);
}

TEST(KernelCacheTest, ClearDropsReverseIndices) {
  KernelCache cache(8);
  cache.Put(1, 10, DummyEntryWithItems(1.0, {4}));
  cache.Put(2, 20, DummyEntryWithItems(2.0, {5}));
  cache.Clear();
  EXPECT_EQ(cache.InvalidateUsers({1}), 0);
  EXPECT_EQ(cache.InvalidateItems({5}), 0);
  EXPECT_EQ(cache.invalidations(), 0);
}

TEST(KernelCacheTest, InvalidationsByShardSumToTotal) {
  KernelCache cache(256);  // Default sharding.
  ASSERT_GT(cache.num_shards(), 1);
  for (int u = 0; u < 40; ++u) {
    cache.Put(u, 100 + static_cast<uint64_t>(u),
              DummyEntryWithItems(1.0, {u % 7}));
  }
  std::vector<int> even_users;
  for (int u = 0; u < 40; u += 2) even_users.push_back(u);
  EXPECT_EQ(cache.InvalidateUsers(even_users), 20);
  // Odd users whose ground set contains item 3: u % 7 == 3 for u in
  // {3, 17, 31}.
  EXPECT_EQ(cache.InvalidateItems({3}), 3);
  long sum = 0;
  for (long s : cache.InvalidationsByShard()) sum += s;
  EXPECT_EQ(sum, cache.invalidations());
  EXPECT_EQ(cache.invalidations(), 23);
  EXPECT_EQ(cache.size(), 40 - 23);
  // ResetCounters zeroes the per-shard attribution too.
  cache.ResetCounters();
  EXPECT_EQ(cache.invalidations(), 0);
  for (long s : cache.InvalidationsByShard()) EXPECT_EQ(s, 0);
}

TEST(KernelCacheTest, HashIsOrderAndContentSensitive) {
  const uint64_t a = HashGroundSet({1, 2, 3});
  EXPECT_EQ(a, HashGroundSet({1, 2, 3}));
  EXPECT_NE(a, HashGroundSet({3, 2, 1}));
  EXPECT_NE(a, HashGroundSet({1, 2}));
  EXPECT_NE(a, HashGroundSet({1, 2, 4}));
  EXPECT_NE(HashGroundSet({}), HashGroundSet({0}));
}

// ---------------------------------------------------------------------
// Percentiles

TEST(ServeStatsTest, PercentileNearestRank) {
  std::vector<double> sample{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(sample, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(sample, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(sample, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0);
}

// ---------------------------------------------------------------------
// RecommendationService

TEST(ServeTest, CreateRejectsInvalidConfigs) {
  ServeWorld* w = World();
  ServeConfig bad_k = BaseConfig(ServeMode::kMapRerank);
  bad_k.top_k = 0;
  EXPECT_FALSE(RecommendationService::Create(&w->dataset, w->model.get(),
                                             &w->diversity, nullptr, bad_k)
                   .ok());

  ServeConfig bad_pool = BaseConfig(ServeMode::kMapRerank);
  bad_pool.pool_size = 3;  // < top_k
  EXPECT_FALSE(RecommendationService::Create(&w->dataset, w->model.get(),
                                             &w->diversity, nullptr,
                                             bad_pool)
                   .ok());

  DiversityKernel wrong_size = DiversityKernel::Random(7, 4, 1);
  EXPECT_FALSE(RecommendationService::Create(&w->dataset, w->model.get(),
                                             &wrong_size, nullptr,
                                             BaseConfig(ServeMode::kMapRerank))
                   .ok());
}

TEST(ServeTest, RejectsOutOfRangeUsers) {
  ServeWorld* w = World();
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr,
      BaseConfig(ServeMode::kMapRerank));
  ASSERT_TRUE(service.ok());
  EXPECT_FALSE((*service)->HandleBatch({RecRequest{-1}}).ok());
  EXPECT_FALSE(
      (*service)->HandleBatch({RecRequest{w->dataset.num_users()}}).ok());
  auto empty = (*service)->HandleBatch({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(ServeTest, ResponsesHaveKDistinctUnobservedItems) {
  ServeWorld* w = World();
  for (ServeMode mode : {ServeMode::kMapRerank, ServeMode::kSample}) {
    auto service = RecommendationService::Create(
        &w->dataset, w->model.get(), &w->diversity, nullptr,
        BaseConfig(mode));
    ASSERT_TRUE(service.ok());
    auto responses = (*service)->HandleBatch(RoundRobinBatch(32, 0));
    ASSERT_TRUE(responses.ok()) << responses.status().ToString();
    for (const RecResponse& r : *responses) {
      EXPECT_EQ(static_cast<int>(r.items.size()), 5);
      std::set<int> distinct(r.items.begin(), r.items.end());
      EXPECT_EQ(distinct.size(), r.items.size());
      for (int item : r.items) {
        EXPECT_GE(item, 0);
        EXPECT_LT(item, w->dataset.num_items());
        EXPECT_FALSE(w->dataset.IsObserved(r.user, item))
            << "recommended an already-observed item";
      }
    }
  }
}

std::vector<std::vector<int>> ServeManyBatches(ServeMode mode, int threads) {
  ServeWorld* w = World();
  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, pool.get(),
      BaseConfig(mode));
  service.status().CheckOK();
  std::vector<std::vector<int>> all_items;
  for (int b = 0; b < 4; ++b) {
    auto responses = (*service)->HandleBatch(RoundRobinBatch(25, b * 7));
    responses.status().CheckOK();
    for (const RecResponse& r : *responses) all_items.push_back(r.items);
  }
  return all_items;
}

TEST(ServeTest, RecommendationsBitIdenticalAcrossThreadCounts) {
  for (ServeMode mode : {ServeMode::kMapRerank, ServeMode::kSample}) {
    const auto serial = ServeManyBatches(mode, /*threads=*/0);
    for (int threads : {1, 2, 4}) {
      const auto parallel = ServeManyBatches(mode, threads);
      ASSERT_EQ(parallel.size(), serial.size());
      for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(parallel[i], serial[i])
            << ServeModeName(mode) << " response " << i << " diverged at "
            << threads << " threads";
      }
    }
  }
}

TEST(ServeTest, RepeatRequestsHitTheCacheWithIdenticalResults) {
  ServeWorld* w = World();
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr,
      BaseConfig(ServeMode::kMapRerank));
  ASSERT_TRUE(service.ok());
  const std::vector<RecRequest> batch = RoundRobinBatch(20, 0);
  auto first = (*service)->HandleBatch(batch);
  ASSERT_TRUE(first.ok());
  auto second = (*service)->HandleBatch(batch);
  ASSERT_TRUE(second.ok());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_FALSE((*first)[i].cache_hit);
    EXPECT_TRUE((*second)[i].cache_hit);
    EXPECT_EQ((*first)[i].items, (*second)[i].items);
  }
  const ServeStats stats = (*service)->Snapshot();
  EXPECT_EQ(stats.cache_hits, 20);
  EXPECT_EQ(stats.cache_misses, 20);
  EXPECT_DOUBLE_EQ(stats.CacheHitRate(), 0.5);
}

TEST(ServeTest, DuplicateUsersInOneBatchShareKernelWork) {
  ServeWorld* w = World();
  ServeConfig config = BaseConfig(ServeMode::kMapRerank);
  config.cache_capacity = 0;  // No cross-batch memoization to hide behind.
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr, config);
  ASSERT_TRUE(service.ok());
  std::vector<RecRequest> batch(12, RecRequest{0});
  auto responses = (*service)->HandleBatch(batch);
  ASSERT_TRUE(responses.ok());
  for (const RecResponse& r : *responses) {
    EXPECT_EQ(r.items, (*responses)[0].items);
  }
  // The kernel stage ran once for the one unique user, not per request.
  EXPECT_EQ((*service)->Snapshot().cache_misses, 1);
}

TEST(ServeTest, TinyCacheStillServesCorrectly) {
  ServeWorld* w = World();
  ServeConfig config = BaseConfig(ServeMode::kMapRerank);
  config.cache_capacity = 1;  // Constant eviction churn.
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr, config);
  ASSERT_TRUE(service.ok());
  auto baseline = (*service)->HandleBatch(RoundRobinBatch(10, 0));
  ASSERT_TRUE(baseline.ok());
  auto again = (*service)->HandleBatch(RoundRobinBatch(10, 0));
  ASSERT_TRUE(again.ok());
  for (size_t i = 0; i < baseline->size(); ++i) {
    EXPECT_EQ((*baseline)[i].items, (*again)[i].items)
        << "eviction changed a recommendation";
  }
  EXPECT_LE((*service)->cache().size(), 1);
  EXPECT_GT((*service)->cache().evictions(), 0);
}

TEST(ServeTest, MapModeMatchesDirectGreedyRerank) {
  ServeWorld* w = World();
  ServeConfig config = BaseConfig(ServeMode::kMapRerank);
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr, config);
  ASSERT_TRUE(service.ok());
  const int user = 3;
  auto response = (*service)->HandleOne(user);
  ASSERT_TRUE(response.ok());

  // Reproduce the pipeline by hand.
  w->model->PrepareForEval();
  const Vector scores = w->model->ScoreAllItems(user);
  const std::vector<int> pool = GroundSetBuilder::BuildServingPool(
      w->dataset, user, scores, config.pool_size);
  ASSERT_FALSE(pool.empty());
  Vector pool_scores(static_cast<int>(pool.size()));
  for (size_t i = 0; i < pool.size(); ++i) {
    pool_scores[static_cast<int>(i)] = scores[pool[i]];
  }
  Matrix k_sub = w->diversity.Submatrix(pool);
  k_sub *= config.kernel_blend_alpha;
  k_sub.AddDiagonal(1.0 - config.kernel_blend_alpha);
  const Matrix kernel =
      AssembleKernel(ApplyQuality(pool_scores, config.quality), k_sub);
  GreedyMapOptions opts;
  opts.max_size = config.top_k;
  auto local = GreedyMapInference(kernel, opts);
  ASSERT_TRUE(local.ok());
  std::vector<int> expected;
  for (int idx : *local) expected.push_back(pool[static_cast<size_t>(idx)]);
  EXPECT_EQ(response->items, expected);
}

// MAP-mode kernels ride the FactorDiagKernelRep whenever the diversity
// factor (rank 8) is thinner than the pool (20) — for ANY blend alpha,
// unlike the sampling dual path. The selections must be bit-identical
// to the forced-primal oracle: the rep synthesizes entries with the
// exact primal arithmetic (linalg/kernel_rep.h).
TEST(ServeTest, MapFactorRepMatchesForcedPrimalExactly) {
  ServeWorld* w = World();
  for (double alpha : {0.5, 1.0}) {
    ServeConfig factor_cfg = BaseConfig(ServeMode::kMapRerank);
    factor_cfg.kernel_blend_alpha = alpha;
    ServeConfig primal_cfg = factor_cfg;
    primal_cfg.force_primal = true;
    auto factor_service = RecommendationService::Create(
        &w->dataset, w->model.get(), &w->diversity, nullptr, factor_cfg);
    auto primal_service = RecommendationService::Create(
        &w->dataset, w->model.get(), &w->diversity, nullptr, primal_cfg);
    ASSERT_TRUE(factor_service.ok());
    ASSERT_TRUE(primal_service.ok());
    int factor_responses = 0;
    for (int b = 0; b < 3; ++b) {
      auto rf = (*factor_service)->HandleBatch(RoundRobinBatch(24, b * 5));
      auto rp = (*primal_service)->HandleBatch(RoundRobinBatch(24, b * 5));
      ASSERT_TRUE(rf.ok()) << rf.status().ToString();
      ASSERT_TRUE(rp.ok()) << rp.status().ToString();
      ASSERT_EQ(rf->size(), rp->size());
      for (size_t i = 0; i < rf->size(); ++i) {
        EXPECT_EQ((*rf)[i].items, (*rp)[i].items)
            << "alpha " << alpha << " batch " << b << " request " << i
            << ": factor and primal MAP selections diverged";
        EXPECT_FALSE((*rp)[i].dual_path);
        if ((*rf)[i].dual_path) ++factor_responses;
      }
    }
    // The factor rep actually engaged (rank 8 < pool 20 everywhere).
    EXPECT_GT(factor_responses, 0) << "alpha " << alpha;
  }
}

TEST(ServeTest, MapFactorRepBitIdenticalAcrossThreadCounts) {
  ServeWorld* w = World();
  auto serve_many = [&](int threads) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
    auto service = RecommendationService::Create(
        &w->dataset, w->model.get(), &w->diversity, pool.get(),
        BaseConfig(ServeMode::kMapRerank));
    service.status().CheckOK();
    std::vector<std::vector<int>> all_items;
    bool saw_factor = false;
    for (int b = 0; b < 4; ++b) {
      auto responses = (*service)->HandleBatch(RoundRobinBatch(25, b * 7));
      responses.status().CheckOK();
      for (const RecResponse& r : *responses) {
        all_items.push_back(r.items);
        saw_factor = saw_factor || r.dual_path;
      }
    }
    EXPECT_TRUE(saw_factor);
    return all_items;
  };
  const auto serial = serve_many(/*threads=*/0);
  for (int threads : {1, 2, 4}) {
    const auto parallel = serve_many(threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i], serial[i])
          << "MAP factor-rep response " << i << " diverged at " << threads
          << " threads";
    }
  }
}

// Degenerate pools: a rank-1 diversity kernel makes every pool item a
// scalar multiple of every other (maximal duplication/ties). Greedy
// selects one item and score-order backfill tops the list up; the
// result must agree bit for bit between representations and across
// thread counts.
TEST(ServeTest, RankOneDiversityPoolsAgreeAcrossRepsAndThreads) {
  ServeWorld* w = World();
  DiversityKernel rank1 =
      DiversityKernel::Random(w->dataset.num_items(), 1, /*seed=*/17);
  ServeConfig factor_cfg = BaseConfig(ServeMode::kMapRerank);
  factor_cfg.kernel_blend_alpha = 1.0;  // No identity blend: true rank 1.
  ServeConfig primal_cfg = factor_cfg;
  primal_cfg.force_primal = true;
  auto serve_all = [&](const ServeConfig& cfg, int threads) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
    auto service = RecommendationService::Create(
        &w->dataset, w->model.get(), &rank1, pool.get(), cfg);
    service.status().CheckOK();
    auto responses = (*service)->HandleBatch(RoundRobinBatch(30, 0));
    responses.status().CheckOK();
    std::vector<std::vector<int>> items;
    for (const RecResponse& r : *responses) {
      EXPECT_EQ(static_cast<int>(r.items.size()), cfg.top_k)
          << "backfill must keep rank-deficient responses full";
      items.push_back(r.items);
    }
    return items;
  };
  const auto oracle = serve_all(primal_cfg, 0);
  for (int threads : {0, 2, 4}) {
    EXPECT_EQ(serve_all(factor_cfg, threads), oracle)
        << "rank-1 pools diverged at " << threads << " threads";
  }
}

// Satellite: MAP-mode cache entries never eigendecompose — every build
// bumps lkp_kernel_cache_eig_skipped_total instead, factor and primal
// alike.
TEST(ServeTest, MapModeBuildsSkipEigendecomposition) {
  ServeWorld* w = World();
  obs::Counter* skipped = obs::MetricsRegistry::Global().GetCounter(
      "lkp_kernel_cache_eig_skipped_total");
  for (bool force_primal : {false, true}) {
    ServeConfig cfg = BaseConfig(ServeMode::kMapRerank);
    cfg.force_primal = force_primal;
    auto service = RecommendationService::Create(
        &w->dataset, w->model.get(), &w->diversity, nullptr, cfg);
    ASSERT_TRUE(service.ok());
    const long before = skipped->Value();
    ASSERT_TRUE((*service)->HandleBatch(RoundRobinBatch(16, 0)).ok());
    const long skipped_delta = skipped->Value() - before;
    EXPECT_EQ(skipped_delta, (*service)->cache().builds())
        << "force_primal=" << force_primal
        << ": every MAP build must skip the eigendecomposition";
    EXPECT_GT(skipped_delta, 0);
  }
  // Sampling-mode builds DO decompose and must not touch the counter.
  auto sampling = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr,
      BaseConfig(ServeMode::kSample));
  ASSERT_TRUE(sampling.ok());
  const long before = skipped->Value();
  ASSERT_TRUE((*sampling)->HandleBatch(RoundRobinBatch(8, 0)).ok());
  EXPECT_EQ(skipped->Value(), before);
}

TEST(ServeTest, ServingPoolIsScoreSortedAndUnobserved) {
  ServeWorld* w = World();
  w->model->PrepareForEval();
  const int user = 1;
  const Vector scores = w->model->ScoreAllItems(user);
  const std::vector<int> pool =
      GroundSetBuilder::BuildServingPool(w->dataset, user, scores, 20);
  ASSERT_EQ(static_cast<int>(pool.size()), 20);
  for (size_t i = 0; i + 1 < pool.size(); ++i) {
    EXPECT_GE(scores[pool[i]], scores[pool[i + 1]]) << "pool not sorted";
  }
  for (int item : pool) {
    EXPECT_FALSE(w->dataset.IsObserved(user, item));
  }
  // Requesting more than the unobserved catalog truncates gracefully.
  const std::vector<int> all = GroundSetBuilder::BuildServingPool(
      w->dataset, user, scores, w->dataset.num_items() + 5);
  EXPECT_LT(static_cast<int>(all.size()), w->dataset.num_items() + 5);
}

TEST(ServeTest, SampleModeVariesAcrossRequestsButNotAcrossRuns) {
  ServeWorld* w = World();
  auto make = [&] {
    return RecommendationService::Create(&w->dataset, w->model.get(),
                                         &w->diversity, nullptr,
                                         BaseConfig(ServeMode::kSample));
  };
  auto a = make();
  auto b = make();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Same user served repeatedly should (with overwhelming probability)
  // not always return the same set — it's a sample, not an argmax.
  std::set<std::vector<int>> seen;
  std::vector<std::vector<int>> stream_a;
  for (int i = 0; i < 12; ++i) {
    auto r = (*a)->HandleOne(2);
    ASSERT_TRUE(r.ok());
    seen.insert(r->items);
    stream_a.push_back(r->items);
  }
  EXPECT_GT(seen.size(), 1u);
  // But an identically seeded twin replays the exact stream.
  for (int i = 0; i < 12; ++i) {
    auto r = (*b)->HandleOne(2);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->items, stream_a[static_cast<size_t>(i)])
        << "request " << i << " diverged between seeded twins";
  }
}

TEST(ServeTest, StatsTrackRequestsBatchesAndLatency) {
  ServeWorld* w = World();
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr,
      BaseConfig(ServeMode::kMapRerank));
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->HandleBatch(RoundRobinBatch(16, 0)).ok());
  ASSERT_TRUE((*service)->HandleBatch(RoundRobinBatch(8, 3)).ok());
  const ServeStats stats = (*service)->Snapshot();
  EXPECT_EQ(stats.requests, 24);
  EXPECT_EQ(stats.batches, 2);
  EXPECT_DOUBLE_EQ(stats.mean_batch_occupancy, 12.0);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.throughput_rps, 0.0);
  EXPECT_GE(stats.latency_p95_ms, stats.latency_p50_ms);
  EXPECT_GE(stats.latency_max_ms, stats.latency_p99_ms);
  EXPECT_FALSE(stats.ToString().empty());

  (*service)->ResetStats();
  const ServeStats reset = (*service)->Snapshot();
  EXPECT_EQ(reset.requests, 0);
  EXPECT_EQ(reset.batches, 0);
  // The stats window includes the cache counters, but the entries stay.
  EXPECT_EQ(reset.cache_hits, 0);
  EXPECT_EQ(reset.cache_misses, 0);
  EXPECT_GT((*service)->cache().size(), 0);
}

// Concurrency stress: a shared service hammered from several caller
// threads over a shared pool, in sampling mode (the mode with the most
// shared state). Run under ASan/UBSan in CI plus the dedicated TSan job.
TEST(ServeTest, ConcurrentCallersStress) {
  ServeWorld* w = World();
  ThreadPool pool(4);
  ServeConfig config = BaseConfig(ServeMode::kSample);
  config.cache_capacity = 8;  // Force eviction churn under contention.
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, &pool, config);
  ASSERT_TRUE(service.ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&, c] {
      for (int b = 0; b < 5; ++b) {
        auto r = (*service)->HandleBatch(RoundRobinBatch(12, c * 13 + b));
        if (!r.ok()) {
          failures.fetch_add(1);
          continue;
        }
        for (const RecResponse& resp : *r) {
          if (static_cast<int>(resp.items.size()) != config.top_k) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ((*service)->Snapshot().requests, 4 * 5 * 12);
}

// ---------------------------------------------------------------------
// Low-rank dual serving path

// Pure-diversity blend: the conditioned kernel is exactly
// Diag(q) K_S Diag(q) with K_S = F_S F_S^T, so sampling-mode entries are
// built through the dual path whenever the factor is thinner than the
// pool (serve-world diversity rank is 8, pools are 20).
ServeConfig DualConfig() {
  ServeConfig config = BaseConfig(ServeMode::kSample);
  config.kernel_blend_alpha = 1.0;
  return config;
}

TEST(ServeTest, DualPathMatchesForcedPrimalExactly) {
  ServeWorld* w = World();
  ServeConfig dual_cfg = DualConfig();
  ServeConfig primal_cfg = DualConfig();
  primal_cfg.force_primal = true;
  auto dual_service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr, dual_cfg);
  auto primal_service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr, primal_cfg);
  ASSERT_TRUE(dual_service.ok());
  ASSERT_TRUE(primal_service.ok());
  int dual_responses = 0;
  for (int b = 0; b < 3; ++b) {
    auto rd = (*dual_service)->HandleBatch(RoundRobinBatch(24, b * 5));
    auto rp = (*primal_service)->HandleBatch(RoundRobinBatch(24, b * 5));
    ASSERT_TRUE(rd.ok()) << rd.status().ToString();
    ASSERT_TRUE(rp.ok()) << rp.status().ToString();
    ASSERT_EQ(rd->size(), rp->size());
    for (size_t i = 0; i < rd->size(); ++i) {
      EXPECT_EQ((*rd)[i].items, (*rp)[i].items)
          << "batch " << b << " request " << i
          << ": dual and primal representations diverged";
      EXPECT_FALSE((*rp)[i].dual_path);
      if ((*rd)[i].dual_path) ++dual_responses;
    }
  }
  // The dual path actually engaged (rank 8 < pool 20 everywhere).
  EXPECT_GT(dual_responses, 0);
}

TEST(ServeTest, DualPathBitIdenticalAcrossThreadCounts) {
  ServeWorld* w = World();
  auto serve_many = [&](int threads) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
    auto service = RecommendationService::Create(
        &w->dataset, w->model.get(), &w->diversity, pool.get(),
        DualConfig());
    service.status().CheckOK();
    std::vector<std::vector<int>> all_items;
    bool saw_dual = false;
    for (int b = 0; b < 4; ++b) {
      auto responses = (*service)->HandleBatch(RoundRobinBatch(25, b * 7));
      responses.status().CheckOK();
      for (const RecResponse& r : *responses) {
        all_items.push_back(r.items);
        saw_dual = saw_dual || r.dual_path;
      }
    }
    EXPECT_TRUE(saw_dual);
    return all_items;
  };
  const auto serial = serve_many(/*threads=*/0);
  for (int threads : {1, 2, 4}) {
    const auto parallel = serve_many(threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i], serial[i])
          << "dual-path response " << i << " diverged at " << threads
          << " threads";
    }
  }
}

TEST(ServeTest, DualEntriesSurviveLruEvictionChurn) {
  ServeWorld* w = World();
  ServeConfig config = DualConfig();
  config.cache_capacity = 1;  // Every factored entry is evicted in turn.
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr, config);
  ASSERT_TRUE(service.ok());
  // Same seed, untouched cache: the reference stream for the same batch.
  auto reference = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr, DualConfig());
  ASSERT_TRUE(reference.ok());
  const std::vector<RecRequest> batch = RoundRobinBatch(10, 0);
  auto churned = (*service)->HandleBatch(batch);
  auto golden = (*reference)->HandleBatch(batch);
  ASSERT_TRUE(churned.ok());
  ASSERT_TRUE(golden.ok());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ((*churned)[i].items, (*golden)[i].items)
        << "eviction churn changed a dual-path recommendation";
    EXPECT_TRUE((*churned)[i].dual_path);
  }
  EXPECT_LE((*service)->cache().size(), 1);
  EXPECT_GT((*service)->cache().evictions(), 0);
}

// A bespoke world where pool sizes straddle the factor rank: user 0 has
// rated the whole catalog, so after the 70/10 train/val split their
// servable pool (the ~20% test remainder, 6 items) is smaller than the
// diversity rank (8) and goes primal, while everyone else's pool (16)
// exceeds it and goes dual — mixed representations in ONE cache, served
// interchangeably.
struct MixedWorld {
  Dataset dataset;
  std::unique_ptr<MfModel> model;
  DiversityKernel diversity;
};

MixedWorld* Mixed() {
  static MixedWorld* world = [] {
    const int num_items = 30;
    std::vector<RatingEvent> events;
    long ts = 0;
    // User 0: rates every item -> only the test split stays servable.
    for (int item = 0; item < num_items; ++item) {
      events.push_back(RatingEvent{0, item, 5.0, ts++});
    }
    // Users 1..6: six ratings each, staggered so every item keeps at
    // least one positive after filtering.
    for (int user = 1; user <= 6; ++user) {
      for (int j = 0; j < 6; ++j) {
        const int item = (user * 5 + j * 4) % num_items;
        events.push_back(RatingEvent{user, item, 5.0, ts++});
      }
    }
    CategoryTable categories;
    categories.num_categories = 5;
    categories.item_categories.resize(num_items);
    for (int item = 0; item < num_items; ++item) {
      categories.item_categories[static_cast<size_t>(item)] = {item % 5};
    }
    auto ds = Dataset::FromRatings(events, std::move(categories),
                                   "mixed-world", /*positive_threshold=*/5.0,
                                   /*min_interactions=*/1);
    ds.status().CheckOK();
    Dataset dataset = std::move(ds).ValueOrDie();
    DiversityKernel diversity =
        DiversityKernel::Random(dataset.num_items(), 8, /*seed=*/19);
    auto* w = new MixedWorld{std::move(dataset), nullptr,
                             std::move(diversity)};
    MfModel::Config mcfg;
    mcfg.embedding_dim = 6;
    mcfg.seed = 9;
    w->model = std::make_unique<MfModel>(w->dataset.num_users(),
                                         w->dataset.num_items(), mcfg);
    return w;
  }();
  return world;
}

TEST(ServeTest, MixedDualAndPrimalEntriesShareOneCacheCorrectly) {
  MixedWorld* w = Mixed();
  ServeConfig config;
  config.mode = ServeMode::kSample;
  config.kernel_blend_alpha = 1.0;
  config.top_k = 2;
  config.pool_size = 16;
  config.cache_capacity = 64;
  config.seed = 77;
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr, config);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  std::vector<RecRequest> batch;
  for (int u = 0; u < w->dataset.num_users(); ++u) {
    batch.push_back(RecRequest{u});
  }
  auto cold = (*service)->HandleBatch(batch);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  bool saw_primal = false;
  bool saw_dual = false;
  for (const RecResponse& r : *cold) {
    EXPECT_FALSE(r.cache_hit);
    if (r.items.empty()) continue;
    (r.dual_path ? saw_dual : saw_primal) = true;
  }
  EXPECT_TRUE(saw_dual) << "no pool exceeded the factor rank";
  EXPECT_TRUE(saw_primal) << "no pool stayed under the factor rank";

  // Warm pass: every entry — dual or primal — hits, keeps its
  // representation, and still serves valid recommendations.
  auto warm = (*service)->HandleBatch(batch);
  ASSERT_TRUE(warm.ok());
  for (size_t i = 0; i < warm->size(); ++i) {
    const RecResponse& r = (*warm)[i];
    if (r.items.empty()) continue;
    EXPECT_TRUE(r.cache_hit) << "user " << r.user;
    EXPECT_EQ(r.dual_path, (*cold)[i].dual_path)
        << "cache hit changed representation for user " << r.user;
    std::set<int> distinct(r.items.begin(), r.items.end());
    EXPECT_EQ(distinct.size(), r.items.size());
    for (int item : r.items) {
      EXPECT_FALSE(w->dataset.IsObserved(r.user, item));
    }
  }
  EXPECT_EQ((*service)->Snapshot().cache_hits,
            static_cast<long>(batch.size()));
}

// ---------------------------------------------------------------------
// Evaluator on the pool

TEST(ServeTest, ParallelEvaluatorMatchesSerialExactly) {
  ServeWorld* w = World();
  Evaluator serial(&w->dataset);
  const auto expected = serial.Evaluate(w->model.get(), {5, 10});
  const double expected_val = serial.ValidationNdcg(w->model.get(), 10);

  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    Evaluator parallel(&w->dataset);
    parallel.SetThreadPool(&pool);
    const auto got = parallel.Evaluate(w->model.get(), {5, 10});
    ASSERT_EQ(got.size(), expected.size());
    for (const auto& [n, m] : expected) {
      const MetricSet& g = got.at(n);
      EXPECT_EQ(g.recall, m.recall) << "cutoff " << n;
      EXPECT_EQ(g.ndcg, m.ndcg) << "cutoff " << n;
      EXPECT_EQ(g.category_coverage, m.category_coverage) << "cutoff " << n;
      EXPECT_EQ(g.f_score, m.f_score) << "cutoff " << n;
      EXPECT_EQ(g.ild, m.ild) << "cutoff " << n;
    }
    EXPECT_EQ(parallel.ValidationNdcg(w->model.get(), 10), expected_val);
  }
}

// ---------------------------------------------------------------------
// Sharded cache + in-flight build guard

TEST(KernelCacheTest, ShardCountClampsToCapacity) {
  // Big caches spread across the requested stripes; small ones collapse
  // so the exact-LRU tests above stay meaningful.
  EXPECT_EQ(KernelCache(256, 16).num_shards(), 16);
  EXPECT_EQ(KernelCache(64, 16).num_shards(), 8);
  EXPECT_EQ(KernelCache(2).num_shards(), 1);
  EXPECT_EQ(KernelCache(0).num_shards(), 1);
  EXPECT_EQ(KernelCache(1024, 1).num_shards(), 1);
}

TEST(KernelCacheTest, ShardedCacheServesEveryKeyAndHonorsBudget) {
  KernelCache cache(128, 16);
  ASSERT_EQ(cache.num_shards(), 16);
  // Eviction is per shard (8 entries each here), so a skewed key->shard
  // draw may evict below the global budget; what must always hold is
  // that every inserted key is either retained (and correct) or counted
  // as an eviction.
  for (int k = 0; k < 100; ++k) {
    cache.Put(k, static_cast<uint64_t>(k) * 31 + 7, DummyEntry(k));
  }
  EXPECT_EQ(cache.size() + cache.evictions(), 100);
  EXPECT_GT(cache.size(), 128 / 2);  // Shards share the load.
  long present = 0;
  for (int k = 0; k < 100; ++k) {
    auto e = cache.Get(k, static_cast<uint64_t>(k) * 31 + 7);
    if (e != nullptr) {
      EXPECT_EQ(e->rep->Entry(0, 0), static_cast<double>(k));
      ++present;
    }
  }
  EXPECT_EQ(present, cache.size());
  // Overfill: total size never exceeds the budget, whatever the shards
  // the evictions land in.
  for (int k = 100; k < 400; ++k) {
    cache.Put(k, static_cast<uint64_t>(k) * 31 + 7, DummyEntry(k));
  }
  EXPECT_LE(cache.size(), 128);
  EXPECT_GT(cache.evictions(), 0);
}

// Regression test for the duplicate-user cold-batch race: concurrent
// misses on ONE key must run the builder once — the first caller owns
// the build, the rest block on the in-flight guard and share.
TEST(KernelCacheTest, GetOrBuildBuildsOnceUnderConcurrentMisses) {
  KernelCache cache(64);
  const std::vector<int> items{3, 1, 4, 1, 5};
  const uint64_t hash = HashGroundSet(items);
  std::atomic<int> builder_runs{0};
  std::atomic<int> hit_count{0};
  constexpr int kCallers = 8;
  std::vector<std::thread> callers;
  std::vector<std::shared_ptr<const ServedKernel>> got(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      bool was_hit = false;
      auto r = cache.GetOrBuild(7, hash, items, [&] {
        builder_runs.fetch_add(1);
        // Widen the race window so every caller lands mid-build.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        auto e = std::make_shared<ServedKernel>();
        e->items = items;
        e->rep = std::make_shared<const PrimalKernelRep>(Matrix(2, 2, 9.0));
        return Result<std::shared_ptr<const ServedKernel>>(std::move(e));
      }, &was_hit);
      ASSERT_TRUE(r.ok());
      got[static_cast<size_t>(c)] = *r;
      if (was_hit) hit_count.fetch_add(1);
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(builder_runs.load(), 1);
  EXPECT_EQ(cache.builds(), 1);
  // Piggybacking on an in-flight build is not a cache hit: the entry
  // was absent when every one of these calls arrived.
  EXPECT_EQ(hit_count.load(), 0);
  for (int c = 1; c < kCallers; ++c) {
    EXPECT_EQ(got[static_cast<size_t>(c)], got[0]);  // Shared pointer.
  }
  // The winner's entry was cached: the next call is a plain hit.
  bool was_hit = false;
  auto again = cache.GetOrBuild(7, hash, items, [&] {
    builder_runs.fetch_add(1);
    return Result<std::shared_ptr<const ServedKernel>>(
        Status::Internal("must not rebuild"));
  }, &was_hit);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(was_hit);
  EXPECT_EQ(builder_runs.load(), 1);
}

TEST(KernelCacheTest, GetOrBuildPropagatesErrorsAndCachesNothing) {
  KernelCache cache(16);
  const std::vector<int> items{1, 2};
  const uint64_t hash = HashGroundSet(items);
  auto fail = cache.GetOrBuild(1, hash, items, [] {
    return Result<std::shared_ptr<const ServedKernel>>(
        Status::Internal("boom"));
  });
  EXPECT_FALSE(fail.ok());
  EXPECT_EQ(cache.size(), 0);
  // A failed build leaves no poisoned guard behind: the next call
  // builds fresh and succeeds.
  auto ok = cache.GetOrBuild(1, hash, items, [&] {
    auto e = std::make_shared<ServedKernel>();
    e->items = items;
    return Result<std::shared_ptr<const ServedKernel>>(std::move(e));
  });
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(cache.builds(), 2);
  EXPECT_EQ(cache.size(), 1);
}

TEST(KernelCacheTest, GetOrBuildDetectsHashCollisionByItems) {
  KernelCache cache(16);
  const std::vector<int> items{1, 2, 3};
  const std::vector<int> other{9, 8, 7};
  const uint64_t hash = 42;  // Deliberately shared: a forced collision.
  auto build_for = [](const std::vector<int>& which) {
    return [&which] {
      auto e = std::make_shared<ServedKernel>();
      e->items = which;
      return Result<std::shared_ptr<const ServedKernel>>(std::move(e));
    };
  };
  ASSERT_TRUE(cache.GetOrBuild(1, hash, items, build_for(items)).ok());
  bool was_hit = true;
  auto r = cache.GetOrBuild(1, hash, other, build_for(other), &was_hit);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(was_hit);  // Stale entry must not be served.
  EXPECT_EQ((*r)->items, other);
}

// ---------------------------------------------------------------------
// Latency summaries and the lock-striped recorder

TEST(ServeStatsTest, SummarizeLatenciesPinnedWindows) {
  // 1-element window: every quantile is that element.
  LatencySummary one = SummarizeLatencies({7.5});
  EXPECT_DOUBLE_EQ(one.p50, 7.5);
  EXPECT_DOUBLE_EQ(one.p95, 7.5);
  EXPECT_DOUBLE_EQ(one.p99, 7.5);
  EXPECT_DOUBLE_EQ(one.max, 7.5);

  // Even length, shuffled: nearest-rank p50 of {1,2,3,4} is 2 (rank
  // ceil(0.5 * 4) = 2), not the 2.5 a midpoint interpolation would give.
  LatencySummary even = SummarizeLatencies({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(even.p50, 2.0);
  EXPECT_DOUBLE_EQ(even.p95, 4.0);
  EXPECT_DOUBLE_EQ(even.p99, 4.0);
  EXPECT_DOUBLE_EQ(even.max, 4.0);

  // Odd length: p50 is the true median.
  LatencySummary odd = SummarizeLatencies({5.0, 1.0, 4.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(odd.p50, 3.0);
  EXPECT_DOUBLE_EQ(odd.p95, 5.0);

  LatencySummary empty = SummarizeLatencies({});
  EXPECT_DOUBLE_EQ(empty.p50, 0.0);
  EXPECT_DOUBLE_EQ(empty.max, 0.0);
}

TEST(ServeStatsTest, SummarizeLatenciesMatchesPercentileOnLargeWindows) {
  // The O(n) nth_element path must agree with the sort-based
  // Percentile() on every quantile it reports.
  Rng rng(123);
  std::vector<double> window(1000);
  for (double& x : window) x = rng.Uniform() * 50.0;
  const LatencySummary s = SummarizeLatencies(window);
  EXPECT_DOUBLE_EQ(s.p50, Percentile(window, 0.50));
  EXPECT_DOUBLE_EQ(s.p95, Percentile(window, 0.95));
  EXPECT_DOUBLE_EQ(s.p99, Percentile(window, 0.99));
  EXPECT_DOUBLE_EQ(s.max, Percentile(window, 1.0));
}

TEST(ServeStatsTest, RecorderMergesStripesAndSeparatesBusyFromWall) {
  ServeRecorder recorder(/*window_capacity=*/1024, /*stripes=*/4);
  const double batch1[] = {1.0, 2.0, 3.0};
  const double batch2[] = {4.0};
  recorder.RecordBatch(3, 0.5, batch1, 3);
  recorder.RecordBatch(1, 0.25, batch2, 1);
  ServeStats stats;
  recorder.Snapshot(&stats);
  EXPECT_EQ(stats.requests, 4);
  EXPECT_EQ(stats.batches, 2);
  EXPECT_DOUBLE_EQ(stats.mean_batch_occupancy, 2.0);
  // busy = summed batch walls; wall = monotonic window elapsed. The
  // batches above took ~0s of real time, so wall stays far below the
  // 0.75s of claimed busy time — the overlap bug this fixes reported
  // those 0.75s AS the wall.
  EXPECT_DOUBLE_EQ(stats.busy_seconds, 0.75);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_LT(stats.wall_seconds, 0.5);
  EXPECT_GT(stats.throughput_rps, 4 / 0.5);
  // Percentiles span stripes: the window is {1,2,3,4} after merging.
  EXPECT_DOUBLE_EQ(stats.latency_p50_ms, 2.0);
  EXPECT_DOUBLE_EQ(stats.latency_max_ms, 4.0);

  recorder.Reset();
  ServeStats cleared;
  recorder.Snapshot(&cleared);
  EXPECT_EQ(cleared.requests, 0);
  EXPECT_DOUBLE_EQ(cleared.busy_seconds, 0.0);
}

TEST(ServeStatsTest, RecorderConcurrentRecordsAllCounted) {
  ServeRecorder recorder(1024, 8);
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&recorder] {
      const double lat[] = {1.0, 2.0};
      for (int i = 0; i < 250; ++i) {
        recorder.RecordBatch(2, 0.001, lat, 2);
      }
    });
  }
  for (auto& t : writers) t.join();
  ServeStats stats;
  recorder.Snapshot(&stats);
  EXPECT_EQ(stats.requests, 2000);
  EXPECT_EQ(stats.batches, 1000);
  EXPECT_NEAR(stats.busy_seconds, 1.0, 1e-9);
}

// ---------------------------------------------------------------------
// Async admission

// The core admission contract: a SubmitAsync stream resolves to the
// bit-identical responses a synchronous caller gets for the same
// arrival order, regardless of how the batcher slices it.
TEST(ServeTest, AsyncAdmissionMatchesSyncBitExactly) {
  ServeWorld* w = World();
  for (const ServeMode mode : {ServeMode::kMapRerank, ServeMode::kSample}) {
    // A shuffled arrival order (not the round-robin the batches were
    // built in): what must match is this order, fork by fork.
    std::vector<RecRequest> trace = RoundRobinBatch(40, 5);
    Rng shuffle_rng(77);
    shuffle_rng.Shuffle(&trace);

    ServeConfig sync_config = BaseConfig(mode);
    auto sync_service = RecommendationService::Create(
        &w->dataset, w->model.get(), &w->diversity, nullptr, sync_config);
    ASSERT_TRUE(sync_service.ok());
    auto sync_responses = (*sync_service)->HandleBatch(trace);
    ASSERT_TRUE(sync_responses.ok());

    // Tiny batches + zero deadline force many different slicings of the
    // same arrival sequence.
    ServeConfig async_config = BaseConfig(mode);
    async_config.max_batch_size = 7;
    async_config.batch_deadline_ms = 0.0;
    auto async_service = RecommendationService::Create(
        &w->dataset, w->model.get(), &w->diversity, nullptr, async_config);
    ASSERT_TRUE(async_service.ok());
    std::vector<std::future<Result<RecResponse>>> futures;
    for (const RecRequest& r : trace) {
      futures.push_back((*async_service)->SubmitAsync(r));
    }
    (*async_service)->Flush();
    for (size_t i = 0; i < futures.size(); ++i) {
      Result<RecResponse> resp = futures[i].get();
      ASSERT_TRUE(resp.ok());
      EXPECT_EQ(resp->items, (*sync_responses)[i].items)
          << ServeModeName(mode) << " request " << i;
      EXPECT_EQ(resp->user, trace[i].user);
    }
    const ServeStats stats = (*async_service)->Snapshot();
    EXPECT_EQ(stats.requests, 40);
    EXPECT_GE(stats.batches, 40 / 7);  // Occupancy-bounded slicing.
  }
}

TEST(ServeTest, AsyncAdmissionSlicingInvariance) {
  // Two async services with very different flush policies (deadline
  // flusher vs occupancy flusher) must produce identical streams.
  ServeWorld* w = World();
  const std::vector<RecRequest> trace = RoundRobinBatch(30, 11);
  std::vector<std::vector<int>> reference;
  for (const int max_batch : {3, 64}) {
    ServeConfig config = BaseConfig(ServeMode::kSample);
    config.max_batch_size = max_batch;
    config.batch_deadline_ms = max_batch == 64 ? 0.2 : 50.0;
    auto service = RecommendationService::Create(
        &w->dataset, w->model.get(), &w->diversity, nullptr, config);
    ASSERT_TRUE(service.ok());
    std::vector<std::future<Result<RecResponse>>> futures;
    for (const RecRequest& r : trace) {
      futures.push_back((*service)->SubmitAsync(r));
    }
    (*service)->Flush();
    std::vector<std::vector<int>> got;
    for (auto& f : futures) {
      Result<RecResponse> resp = f.get();
      ASSERT_TRUE(resp.ok());
      got.push_back(resp->items);
    }
    if (reference.empty()) {
      reference = std::move(got);
    } else {
      EXPECT_EQ(got, reference);
    }
  }
}

TEST(ServeTest, DestructorResolvesQueuedRequests) {
  ServeWorld* w = World();
  ServeConfig config = BaseConfig(ServeMode::kMapRerank);
  config.batch_deadline_ms = 1000.0;  // Nothing flushes on its own.
  config.max_batch_size = 1024;
  std::vector<std::future<Result<RecResponse>>> futures;
  {
    auto service = RecommendationService::Create(
        &w->dataset, w->model.get(), &w->diversity, nullptr, config);
    ASSERT_TRUE(service.ok());
    for (int i = 0; i < 5; ++i) {
      futures.push_back((*service)->SubmitAsync(RecRequest{i}));
    }
    // Destroyed with the deadline far in the future: the destructor
    // must drain, not abandon, the queue.
  }
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().ok());
  }
}

// TSan-focused stress: async admission + sharded cache + eviction churn
// + the dual/primal mix, all at once. Runs under the dedicated TSan CI
// job via the `thread` label on this suite.
TEST(ServeTest, AsyncAdmissionConcurrentSubmittersStress) {
  ServeWorld* w = World();
  ThreadPool pool(4);
  ServeConfig config = BaseConfig(ServeMode::kSample);
  config.kernel_blend_alpha = 1.0;  // Dual path active (rank 8 < pool 20).
  config.cache_capacity = 16;       // Constant eviction churn.
  config.max_batch_size = 8;
  config.batch_deadline_ms = 0.1;
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, &pool, config);
  ASSERT_TRUE(service.ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> submitters;
  for (int c = 0; c < 4; ++c) {
    submitters.emplace_back([&, c] {
      std::vector<std::future<Result<RecResponse>>> futures;
      for (int i = 0; i < 60; ++i) {
        futures.push_back((*service)->SubmitAsync(
            RecRequest{(c * 17 + i) % w->dataset.num_users()}));
      }
      for (auto& f : futures) {
        Result<RecResponse> resp = f.get();
        if (!resp.ok() ||
            static_cast<int>(resp->items.size()) != config.top_k) {
          failures.fetch_add(1);
        }
      }
    });
  }
  // One synchronous caller interleaves with the async stream.
  std::thread sync_caller([&] {
    for (int b = 0; b < 10; ++b) {
      if (!(*service)->HandleBatch(RoundRobinBatch(6, b * 7)).ok()) {
        failures.fetch_add(1);
      }
    }
  });
  for (auto& t : submitters) t.join();
  sync_caller.join();
  EXPECT_EQ(failures.load(), 0);
  const ServeStats stats = (*service)->Snapshot();
  EXPECT_EQ(stats.requests, 4 * 60 + 10 * 6);
  EXPECT_GT((*service)->cache().evictions(), 0);
}

// Duplicate users racing across concurrent cold batches: the in-flight
// guard (not just per-batch dedup) must collapse the kernel builds.
TEST(ServeTest, ConcurrentColdBatchesForOneUserBuildOnce) {
  ServeWorld* w = World();
  ThreadPool pool(4);
  ServeConfig config = BaseConfig(ServeMode::kSample);
  config.cache_capacity = 64;
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, &pool, config);
  ASSERT_TRUE(service.ok());
  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      // Every batch names only user 3: all four callers race on one key.
      const std::vector<RecRequest> batch(8, RecRequest{3});
      if (!(*service)->HandleBatch(batch).ok()) failures.fetch_add(1);
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ((*service)->cache().builds(), 1);
}

// Regression for the stale-flush leak: a Flush() arriving while the
// batcher was BUSY with an empty queue set adm_flush_, and nothing
// cleared it when the batch finished without a take — so the NEXT
// submission dispatched immediately instead of waiting out its
// occupancy/deadline window. The flag must die at the flush rendezvous.
TEST(ServeTest, FlushWhileBusyDoesNotLeakIntoNextBatchWindow) {
  ServeWorld* w = World();
  ServeConfig config = BaseConfig(ServeMode::kMapRerank);
  config.max_batch_size = 2;
  config.batch_deadline_ms = 10000.0;  // Nothing flushes on its own.
  std::atomic<int> batches{0};
  std::atomic<bool> first_batch_taken{false};
  std::atomic<bool> second_flush_entered{false};
  config.on_batch_for_test = [&](int) {
    if (batches.fetch_add(1) != 0) return;  // Only stall the first batch.
    first_batch_taken = true;
    while (!second_flush_entered.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Give Flush() #2 time to block on the idle cv with the flush flag
    // set. (Worst-case scheduling means it has not yet when we proceed:
    // the test then passes vacuously, it never falsely fails.)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  };
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr, config);
  ASSERT_TRUE(service.ok());

  auto first = (*service)->SubmitAsync(RecRequest{0});
  // Flush #1 (helper thread): queue non-empty, dispatches the batch.
  std::thread flusher([&] { (*service)->Flush(); });
  while (!first_batch_taken.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Flush #2 lands while the batcher is busy and the queue is empty —
  // exactly the leaking interleave.
  second_flush_entered = true;
  (*service)->Flush();
  flusher.join();
  ASSERT_TRUE(first.get().ok());

  // Probe: a fresh request must now sit in its deadline window, not
  // resolve immediately off a leaked flush flag.
  auto probe = (*service)->SubmitAsync(RecRequest{1});
  EXPECT_EQ(probe.wait_for(std::chrono::milliseconds(250)),
            std::future_status::timeout)
      << "stale flush flag leaked into the next batch window";
  (*service)->Flush();
  auto resp = probe.get();
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(static_cast<int>(resp->items.size()), config.top_k);
}

// batch_deadline_ms == 0 means "flush as fast as the batcher can spin":
// every submission dispatches on its own — no Flush() needed, no request
// skipped — and the batcher parks between arrivals instead of spinning.
TEST(ServeTest, DeadlineZeroDispatchesImmediatelyWithoutSkips) {
  ServeWorld* w = World();
  ServeConfig config = BaseConfig(ServeMode::kMapRerank);
  config.max_batch_size = 1024;    // Occupancy never triggers.
  config.batch_deadline_ms = 0.0;  // Deadline is always already past.
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr, config);
  ASSERT_TRUE(service.ok());
  const int kRequests = 12;
  for (int i = 0; i < kRequests; ++i) {
    auto f = (*service)->SubmitAsync(RecRequest{i % w->dataset.num_users()});
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
              std::future_status::ready)
        << "request " << i << " was skipped, not dispatched";
    auto resp = f.get();
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(static_cast<int>(resp->items.size()), config.top_k);
  }
  const ServeStats stats = (*service)->Snapshot();
  EXPECT_EQ(stats.requests, kRequests);
  // Each submission waited for its response before the next one, so
  // every request must have dispatched in a batch of its own.
  EXPECT_EQ(stats.batches, kRequests);
}

// alpha == 0 short-circuits MAP builds to the O(pool)-memory diagonal
// rep; selections must stay bit-identical to the forced-primal oracle.
TEST(ServeTest, AlphaZeroDiagPathMatchesForcedPrimalOracle) {
  ServeWorld* w = World();
  obs::Counter* diag_total = obs::MetricsRegistry::Global().GetCounter(
      "lkp_serve_diag_path_total");
  ServeConfig diag_cfg = BaseConfig(ServeMode::kMapRerank);
  diag_cfg.kernel_blend_alpha = 0.0;
  ServeConfig primal_cfg = diag_cfg;
  primal_cfg.force_primal = true;
  auto diag_service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr, diag_cfg);
  auto primal_service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr, primal_cfg);
  ASSERT_TRUE(diag_service.ok());
  ASSERT_TRUE(primal_service.ok());
  const long before = diag_total->Value();
  for (int b = 0; b < 3; ++b) {
    auto rd = (*diag_service)->HandleBatch(RoundRobinBatch(24, b * 5));
    auto rp = (*primal_service)->HandleBatch(RoundRobinBatch(24, b * 5));
    ASSERT_TRUE(rd.ok()) << rd.status().ToString();
    ASSERT_TRUE(rp.ok()) << rp.status().ToString();
    ASSERT_EQ(rd->size(), rp->size());
    for (size_t i = 0; i < rd->size(); ++i) {
      EXPECT_EQ((*rd)[i].items, (*rp)[i].items)
          << "batch " << b << " request " << i
          << ": diag and primal MAP selections diverged";
      EXPECT_EQ(static_cast<int>((*rd)[i].items.size()), diag_cfg.top_k);
    }
  }
  // Every diag-service build took the short circuit; the forced-primal
  // oracle (same alpha, interleaved above) never did.
  const long diag_builds = diag_total->Value() - before;
  EXPECT_EQ(diag_builds, (*diag_service)->cache().builds());
  EXPECT_GT(diag_builds, 0);
}

}  // namespace
}  // namespace lkpdpp
