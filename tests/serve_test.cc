#include "serve/service.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/map_inference.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/mf.h"
#include "serve/kernel_cache.h"
#include "serve/stats.h"

namespace lkpdpp {
namespace {

// Shared small world: a synthetic dataset, an (untrained but
// deterministic) MF model, and a random diversity kernel. Untrained is
// fine — serving only needs ScoreAllItems to be a pure function.
struct ServeWorld {
  Dataset dataset;
  std::unique_ptr<MfModel> model;
  DiversityKernel diversity;
};

ServeWorld* World() {
  static ServeWorld* world = [] {
    SyntheticConfig cfg;
    cfg.name = "serve-world";
    cfg.num_users = 70;
    cfg.num_items = 90;
    cfg.num_categories = 12;
    cfg.num_events = 7000;
    cfg.min_interactions = 8;
    cfg.seed = 99;
    auto ds = GenerateSyntheticDataset(cfg);
    ds.status().CheckOK();
    Dataset dataset = std::move(ds).ValueOrDie();
    DiversityKernel diversity =
        DiversityKernel::Random(dataset.num_items(), 8, /*seed=*/11);
    auto* w = new ServeWorld{std::move(dataset), nullptr,
                             std::move(diversity)};
    MfModel::Config mcfg;
    mcfg.embedding_dim = 8;
    mcfg.seed = 5;
    w->model = std::make_unique<MfModel>(w->dataset.num_users(),
                                         w->dataset.num_items(), mcfg);
    return w;
  }();
  return world;
}

ServeConfig BaseConfig(ServeMode mode) {
  ServeConfig config;
  config.mode = mode;
  config.top_k = 5;
  config.pool_size = 20;
  config.cache_capacity = 256;
  config.seed = 1234;
  return config;
}

std::vector<RecRequest> RoundRobinBatch(int batch_size, int offset) {
  std::vector<RecRequest> batch;
  batch.reserve(static_cast<size_t>(batch_size));
  const int num_users = World()->dataset.num_users();
  for (int i = 0; i < batch_size; ++i) {
    batch.push_back(RecRequest{(offset + i) % num_users});
  }
  return batch;
}

// ---------------------------------------------------------------------
// KernelCache

std::shared_ptr<const ServedKernel> DummyEntry(double fill) {
  auto e = std::make_shared<ServedKernel>();
  e->kernel = Matrix(2, 2, fill);
  return e;
}

TEST(KernelCacheTest, MissThenHit) {
  KernelCache cache(4);
  EXPECT_EQ(cache.Get(1, 42), nullptr);
  EXPECT_EQ(cache.misses(), 1);
  cache.Put(1, 42, DummyEntry(1.0));
  auto hit = cache.Get(1, 42);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->kernel(0, 0), 1.0);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.size(), 1);
}

TEST(KernelCacheTest, DistinguishesUserAndHash) {
  KernelCache cache(8);
  cache.Put(1, 42, DummyEntry(1.0));
  EXPECT_EQ(cache.Get(2, 42), nullptr);
  EXPECT_EQ(cache.Get(1, 43), nullptr);
  EXPECT_NE(cache.Get(1, 42), nullptr);
}

TEST(KernelCacheTest, EvictsLeastRecentlyUsed) {
  KernelCache cache(2);
  cache.Put(1, 10, DummyEntry(1.0));
  cache.Put(2, 20, DummyEntry(2.0));
  // Touch (1, 10) so (2, 20) becomes the LRU entry.
  ASSERT_NE(cache.Get(1, 10), nullptr);
  cache.Put(3, 30, DummyEntry(3.0));
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.Get(2, 20), nullptr);  // Evicted.
  EXPECT_NE(cache.Get(1, 10), nullptr);
  EXPECT_NE(cache.Get(3, 30), nullptr);
}

TEST(KernelCacheTest, CapacityZeroDisablesCaching) {
  KernelCache cache(0);
  cache.Put(1, 10, DummyEntry(1.0));
  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.Get(1, 10), nullptr);
}

TEST(KernelCacheTest, PutRefreshesExistingKey) {
  KernelCache cache(2);
  cache.Put(1, 10, DummyEntry(1.0));
  cache.Put(1, 10, DummyEntry(7.0));
  EXPECT_EQ(cache.size(), 1);
  auto e = cache.Get(1, 10);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kernel(0, 0), 7.0);
}

TEST(KernelCacheTest, ClearEmptiesEverything) {
  KernelCache cache(4);
  cache.Put(1, 10, DummyEntry(1.0));
  cache.Put(2, 20, DummyEntry(2.0));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.Get(1, 10), nullptr);
}

TEST(KernelCacheTest, HashIsOrderAndContentSensitive) {
  const uint64_t a = HashGroundSet({1, 2, 3});
  EXPECT_EQ(a, HashGroundSet({1, 2, 3}));
  EXPECT_NE(a, HashGroundSet({3, 2, 1}));
  EXPECT_NE(a, HashGroundSet({1, 2}));
  EXPECT_NE(a, HashGroundSet({1, 2, 4}));
  EXPECT_NE(HashGroundSet({}), HashGroundSet({0}));
}

// ---------------------------------------------------------------------
// Percentiles

TEST(ServeStatsTest, PercentileNearestRank) {
  std::vector<double> sample{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(sample, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(sample, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(sample, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0);
}

// ---------------------------------------------------------------------
// RecommendationService

TEST(ServeTest, CreateRejectsInvalidConfigs) {
  ServeWorld* w = World();
  ServeConfig bad_k = BaseConfig(ServeMode::kMapRerank);
  bad_k.top_k = 0;
  EXPECT_FALSE(RecommendationService::Create(&w->dataset, w->model.get(),
                                             &w->diversity, nullptr, bad_k)
                   .ok());

  ServeConfig bad_pool = BaseConfig(ServeMode::kMapRerank);
  bad_pool.pool_size = 3;  // < top_k
  EXPECT_FALSE(RecommendationService::Create(&w->dataset, w->model.get(),
                                             &w->diversity, nullptr,
                                             bad_pool)
                   .ok());

  DiversityKernel wrong_size = DiversityKernel::Random(7, 4, 1);
  EXPECT_FALSE(RecommendationService::Create(&w->dataset, w->model.get(),
                                             &wrong_size, nullptr,
                                             BaseConfig(ServeMode::kMapRerank))
                   .ok());
}

TEST(ServeTest, RejectsOutOfRangeUsers) {
  ServeWorld* w = World();
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr,
      BaseConfig(ServeMode::kMapRerank));
  ASSERT_TRUE(service.ok());
  EXPECT_FALSE((*service)->HandleBatch({RecRequest{-1}}).ok());
  EXPECT_FALSE(
      (*service)->HandleBatch({RecRequest{w->dataset.num_users()}}).ok());
  auto empty = (*service)->HandleBatch({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(ServeTest, ResponsesHaveKDistinctUnobservedItems) {
  ServeWorld* w = World();
  for (ServeMode mode : {ServeMode::kMapRerank, ServeMode::kSample}) {
    auto service = RecommendationService::Create(
        &w->dataset, w->model.get(), &w->diversity, nullptr,
        BaseConfig(mode));
    ASSERT_TRUE(service.ok());
    auto responses = (*service)->HandleBatch(RoundRobinBatch(32, 0));
    ASSERT_TRUE(responses.ok()) << responses.status().ToString();
    for (const RecResponse& r : *responses) {
      EXPECT_EQ(static_cast<int>(r.items.size()), 5);
      std::set<int> distinct(r.items.begin(), r.items.end());
      EXPECT_EQ(distinct.size(), r.items.size());
      for (int item : r.items) {
        EXPECT_GE(item, 0);
        EXPECT_LT(item, w->dataset.num_items());
        EXPECT_FALSE(w->dataset.IsObserved(r.user, item))
            << "recommended an already-observed item";
      }
    }
  }
}

std::vector<std::vector<int>> ServeManyBatches(ServeMode mode, int threads) {
  ServeWorld* w = World();
  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, pool.get(),
      BaseConfig(mode));
  service.status().CheckOK();
  std::vector<std::vector<int>> all_items;
  for (int b = 0; b < 4; ++b) {
    auto responses = (*service)->HandleBatch(RoundRobinBatch(25, b * 7));
    responses.status().CheckOK();
    for (const RecResponse& r : *responses) all_items.push_back(r.items);
  }
  return all_items;
}

TEST(ServeTest, RecommendationsBitIdenticalAcrossThreadCounts) {
  for (ServeMode mode : {ServeMode::kMapRerank, ServeMode::kSample}) {
    const auto serial = ServeManyBatches(mode, /*threads=*/0);
    for (int threads : {1, 2, 4}) {
      const auto parallel = ServeManyBatches(mode, threads);
      ASSERT_EQ(parallel.size(), serial.size());
      for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(parallel[i], serial[i])
            << ServeModeName(mode) << " response " << i << " diverged at "
            << threads << " threads";
      }
    }
  }
}

TEST(ServeTest, RepeatRequestsHitTheCacheWithIdenticalResults) {
  ServeWorld* w = World();
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr,
      BaseConfig(ServeMode::kMapRerank));
  ASSERT_TRUE(service.ok());
  const std::vector<RecRequest> batch = RoundRobinBatch(20, 0);
  auto first = (*service)->HandleBatch(batch);
  ASSERT_TRUE(first.ok());
  auto second = (*service)->HandleBatch(batch);
  ASSERT_TRUE(second.ok());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_FALSE((*first)[i].cache_hit);
    EXPECT_TRUE((*second)[i].cache_hit);
    EXPECT_EQ((*first)[i].items, (*second)[i].items);
  }
  const ServeStats stats = (*service)->Snapshot();
  EXPECT_EQ(stats.cache_hits, 20);
  EXPECT_EQ(stats.cache_misses, 20);
  EXPECT_DOUBLE_EQ(stats.CacheHitRate(), 0.5);
}

TEST(ServeTest, DuplicateUsersInOneBatchShareKernelWork) {
  ServeWorld* w = World();
  ServeConfig config = BaseConfig(ServeMode::kMapRerank);
  config.cache_capacity = 0;  // No cross-batch memoization to hide behind.
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr, config);
  ASSERT_TRUE(service.ok());
  std::vector<RecRequest> batch(12, RecRequest{0});
  auto responses = (*service)->HandleBatch(batch);
  ASSERT_TRUE(responses.ok());
  for (const RecResponse& r : *responses) {
    EXPECT_EQ(r.items, (*responses)[0].items);
  }
  // The kernel stage ran once for the one unique user, not per request.
  EXPECT_EQ((*service)->Snapshot().cache_misses, 1);
}

TEST(ServeTest, TinyCacheStillServesCorrectly) {
  ServeWorld* w = World();
  ServeConfig config = BaseConfig(ServeMode::kMapRerank);
  config.cache_capacity = 1;  // Constant eviction churn.
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr, config);
  ASSERT_TRUE(service.ok());
  auto baseline = (*service)->HandleBatch(RoundRobinBatch(10, 0));
  ASSERT_TRUE(baseline.ok());
  auto again = (*service)->HandleBatch(RoundRobinBatch(10, 0));
  ASSERT_TRUE(again.ok());
  for (size_t i = 0; i < baseline->size(); ++i) {
    EXPECT_EQ((*baseline)[i].items, (*again)[i].items)
        << "eviction changed a recommendation";
  }
  EXPECT_LE((*service)->cache().size(), 1);
  EXPECT_GT((*service)->cache().evictions(), 0);
}

TEST(ServeTest, MapModeMatchesDirectGreedyRerank) {
  ServeWorld* w = World();
  ServeConfig config = BaseConfig(ServeMode::kMapRerank);
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr, config);
  ASSERT_TRUE(service.ok());
  const int user = 3;
  auto response = (*service)->HandleOne(user);
  ASSERT_TRUE(response.ok());

  // Reproduce the pipeline by hand.
  w->model->PrepareForEval();
  const Vector scores = w->model->ScoreAllItems(user);
  const std::vector<int> pool = GroundSetBuilder::BuildServingPool(
      w->dataset, user, scores, config.pool_size);
  ASSERT_FALSE(pool.empty());
  Vector pool_scores(static_cast<int>(pool.size()));
  for (size_t i = 0; i < pool.size(); ++i) {
    pool_scores[static_cast<int>(i)] = scores[pool[i]];
  }
  Matrix k_sub = w->diversity.Submatrix(pool);
  k_sub *= config.kernel_blend_alpha;
  k_sub.AddDiagonal(1.0 - config.kernel_blend_alpha);
  const Matrix kernel =
      AssembleKernel(ApplyQuality(pool_scores, config.quality), k_sub);
  GreedyMapOptions opts;
  opts.max_size = config.top_k;
  auto local = GreedyMapInference(kernel, opts);
  ASSERT_TRUE(local.ok());
  std::vector<int> expected;
  for (int idx : *local) expected.push_back(pool[static_cast<size_t>(idx)]);
  EXPECT_EQ(response->items, expected);
}

TEST(ServeTest, ServingPoolIsScoreSortedAndUnobserved) {
  ServeWorld* w = World();
  w->model->PrepareForEval();
  const int user = 1;
  const Vector scores = w->model->ScoreAllItems(user);
  const std::vector<int> pool =
      GroundSetBuilder::BuildServingPool(w->dataset, user, scores, 20);
  ASSERT_EQ(static_cast<int>(pool.size()), 20);
  for (size_t i = 0; i + 1 < pool.size(); ++i) {
    EXPECT_GE(scores[pool[i]], scores[pool[i + 1]]) << "pool not sorted";
  }
  for (int item : pool) {
    EXPECT_FALSE(w->dataset.IsObserved(user, item));
  }
  // Requesting more than the unobserved catalog truncates gracefully.
  const std::vector<int> all = GroundSetBuilder::BuildServingPool(
      w->dataset, user, scores, w->dataset.num_items() + 5);
  EXPECT_LT(static_cast<int>(all.size()), w->dataset.num_items() + 5);
}

TEST(ServeTest, SampleModeVariesAcrossRequestsButNotAcrossRuns) {
  ServeWorld* w = World();
  auto make = [&] {
    return RecommendationService::Create(&w->dataset, w->model.get(),
                                         &w->diversity, nullptr,
                                         BaseConfig(ServeMode::kSample));
  };
  auto a = make();
  auto b = make();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Same user served repeatedly should (with overwhelming probability)
  // not always return the same set — it's a sample, not an argmax.
  std::set<std::vector<int>> seen;
  std::vector<std::vector<int>> stream_a;
  for (int i = 0; i < 12; ++i) {
    auto r = (*a)->HandleOne(2);
    ASSERT_TRUE(r.ok());
    seen.insert(r->items);
    stream_a.push_back(r->items);
  }
  EXPECT_GT(seen.size(), 1u);
  // But an identically seeded twin replays the exact stream.
  for (int i = 0; i < 12; ++i) {
    auto r = (*b)->HandleOne(2);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->items, stream_a[static_cast<size_t>(i)])
        << "request " << i << " diverged between seeded twins";
  }
}

TEST(ServeTest, StatsTrackRequestsBatchesAndLatency) {
  ServeWorld* w = World();
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr,
      BaseConfig(ServeMode::kMapRerank));
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->HandleBatch(RoundRobinBatch(16, 0)).ok());
  ASSERT_TRUE((*service)->HandleBatch(RoundRobinBatch(8, 3)).ok());
  const ServeStats stats = (*service)->Snapshot();
  EXPECT_EQ(stats.requests, 24);
  EXPECT_EQ(stats.batches, 2);
  EXPECT_DOUBLE_EQ(stats.mean_batch_occupancy, 12.0);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.throughput_rps, 0.0);
  EXPECT_GE(stats.latency_p95_ms, stats.latency_p50_ms);
  EXPECT_GE(stats.latency_max_ms, stats.latency_p99_ms);
  EXPECT_FALSE(stats.ToString().empty());

  (*service)->ResetStats();
  const ServeStats reset = (*service)->Snapshot();
  EXPECT_EQ(reset.requests, 0);
  EXPECT_EQ(reset.batches, 0);
  // The stats window includes the cache counters, but the entries stay.
  EXPECT_EQ(reset.cache_hits, 0);
  EXPECT_EQ(reset.cache_misses, 0);
  EXPECT_GT((*service)->cache().size(), 0);
}

// Concurrency stress: a shared service hammered from several caller
// threads over a shared pool, in sampling mode (the mode with the most
// shared state). Run under ASan/UBSan in CI plus the dedicated TSan job.
TEST(ServeTest, ConcurrentCallersStress) {
  ServeWorld* w = World();
  ThreadPool pool(4);
  ServeConfig config = BaseConfig(ServeMode::kSample);
  config.cache_capacity = 8;  // Force eviction churn under contention.
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, &pool, config);
  ASSERT_TRUE(service.ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&, c] {
      for (int b = 0; b < 5; ++b) {
        auto r = (*service)->HandleBatch(RoundRobinBatch(12, c * 13 + b));
        if (!r.ok()) {
          failures.fetch_add(1);
          continue;
        }
        for (const RecResponse& resp : *r) {
          if (static_cast<int>(resp.items.size()) != config.top_k) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ((*service)->Snapshot().requests, 4 * 5 * 12);
}

// ---------------------------------------------------------------------
// Low-rank dual serving path

// Pure-diversity blend: the conditioned kernel is exactly
// Diag(q) K_S Diag(q) with K_S = F_S F_S^T, so sampling-mode entries are
// built through the dual path whenever the factor is thinner than the
// pool (serve-world diversity rank is 8, pools are 20).
ServeConfig DualConfig() {
  ServeConfig config = BaseConfig(ServeMode::kSample);
  config.kernel_blend_alpha = 1.0;
  return config;
}

TEST(ServeTest, DualPathMatchesForcedPrimalExactly) {
  ServeWorld* w = World();
  ServeConfig dual_cfg = DualConfig();
  ServeConfig primal_cfg = DualConfig();
  primal_cfg.force_primal = true;
  auto dual_service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr, dual_cfg);
  auto primal_service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr, primal_cfg);
  ASSERT_TRUE(dual_service.ok());
  ASSERT_TRUE(primal_service.ok());
  int dual_responses = 0;
  for (int b = 0; b < 3; ++b) {
    auto rd = (*dual_service)->HandleBatch(RoundRobinBatch(24, b * 5));
    auto rp = (*primal_service)->HandleBatch(RoundRobinBatch(24, b * 5));
    ASSERT_TRUE(rd.ok()) << rd.status().ToString();
    ASSERT_TRUE(rp.ok()) << rp.status().ToString();
    ASSERT_EQ(rd->size(), rp->size());
    for (size_t i = 0; i < rd->size(); ++i) {
      EXPECT_EQ((*rd)[i].items, (*rp)[i].items)
          << "batch " << b << " request " << i
          << ": dual and primal representations diverged";
      EXPECT_FALSE((*rp)[i].dual_path);
      if ((*rd)[i].dual_path) ++dual_responses;
    }
  }
  // The dual path actually engaged (rank 8 < pool 20 everywhere).
  EXPECT_GT(dual_responses, 0);
}

TEST(ServeTest, DualPathBitIdenticalAcrossThreadCounts) {
  ServeWorld* w = World();
  auto serve_many = [&](int threads) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
    auto service = RecommendationService::Create(
        &w->dataset, w->model.get(), &w->diversity, pool.get(),
        DualConfig());
    service.status().CheckOK();
    std::vector<std::vector<int>> all_items;
    bool saw_dual = false;
    for (int b = 0; b < 4; ++b) {
      auto responses = (*service)->HandleBatch(RoundRobinBatch(25, b * 7));
      responses.status().CheckOK();
      for (const RecResponse& r : *responses) {
        all_items.push_back(r.items);
        saw_dual = saw_dual || r.dual_path;
      }
    }
    EXPECT_TRUE(saw_dual);
    return all_items;
  };
  const auto serial = serve_many(/*threads=*/0);
  for (int threads : {1, 2, 4}) {
    const auto parallel = serve_many(threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i], serial[i])
          << "dual-path response " << i << " diverged at " << threads
          << " threads";
    }
  }
}

TEST(ServeTest, DualEntriesSurviveLruEvictionChurn) {
  ServeWorld* w = World();
  ServeConfig config = DualConfig();
  config.cache_capacity = 1;  // Every factored entry is evicted in turn.
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr, config);
  ASSERT_TRUE(service.ok());
  // Same seed, untouched cache: the reference stream for the same batch.
  auto reference = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr, DualConfig());
  ASSERT_TRUE(reference.ok());
  const std::vector<RecRequest> batch = RoundRobinBatch(10, 0);
  auto churned = (*service)->HandleBatch(batch);
  auto golden = (*reference)->HandleBatch(batch);
  ASSERT_TRUE(churned.ok());
  ASSERT_TRUE(golden.ok());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ((*churned)[i].items, (*golden)[i].items)
        << "eviction churn changed a dual-path recommendation";
    EXPECT_TRUE((*churned)[i].dual_path);
  }
  EXPECT_LE((*service)->cache().size(), 1);
  EXPECT_GT((*service)->cache().evictions(), 0);
}

// A bespoke world where pool sizes straddle the factor rank: user 0 has
// rated the whole catalog, so after the 70/10 train/val split their
// servable pool (the ~20% test remainder, 6 items) is smaller than the
// diversity rank (8) and goes primal, while everyone else's pool (16)
// exceeds it and goes dual — mixed representations in ONE cache, served
// interchangeably.
struct MixedWorld {
  Dataset dataset;
  std::unique_ptr<MfModel> model;
  DiversityKernel diversity;
};

MixedWorld* Mixed() {
  static MixedWorld* world = [] {
    const int num_items = 30;
    std::vector<RatingEvent> events;
    long ts = 0;
    // User 0: rates every item -> only the test split stays servable.
    for (int item = 0; item < num_items; ++item) {
      events.push_back(RatingEvent{0, item, 5.0, ts++});
    }
    // Users 1..6: six ratings each, staggered so every item keeps at
    // least one positive after filtering.
    for (int user = 1; user <= 6; ++user) {
      for (int j = 0; j < 6; ++j) {
        const int item = (user * 5 + j * 4) % num_items;
        events.push_back(RatingEvent{user, item, 5.0, ts++});
      }
    }
    CategoryTable categories;
    categories.num_categories = 5;
    categories.item_categories.resize(num_items);
    for (int item = 0; item < num_items; ++item) {
      categories.item_categories[static_cast<size_t>(item)] = {item % 5};
    }
    auto ds = Dataset::FromRatings(events, std::move(categories),
                                   "mixed-world", /*positive_threshold=*/5.0,
                                   /*min_interactions=*/1);
    ds.status().CheckOK();
    Dataset dataset = std::move(ds).ValueOrDie();
    DiversityKernel diversity =
        DiversityKernel::Random(dataset.num_items(), 8, /*seed=*/19);
    auto* w = new MixedWorld{std::move(dataset), nullptr,
                             std::move(diversity)};
    MfModel::Config mcfg;
    mcfg.embedding_dim = 6;
    mcfg.seed = 9;
    w->model = std::make_unique<MfModel>(w->dataset.num_users(),
                                         w->dataset.num_items(), mcfg);
    return w;
  }();
  return world;
}

TEST(ServeTest, MixedDualAndPrimalEntriesShareOneCacheCorrectly) {
  MixedWorld* w = Mixed();
  ServeConfig config;
  config.mode = ServeMode::kSample;
  config.kernel_blend_alpha = 1.0;
  config.top_k = 2;
  config.pool_size = 16;
  config.cache_capacity = 64;
  config.seed = 77;
  auto service = RecommendationService::Create(
      &w->dataset, w->model.get(), &w->diversity, nullptr, config);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  std::vector<RecRequest> batch;
  for (int u = 0; u < w->dataset.num_users(); ++u) {
    batch.push_back(RecRequest{u});
  }
  auto cold = (*service)->HandleBatch(batch);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  bool saw_primal = false;
  bool saw_dual = false;
  for (const RecResponse& r : *cold) {
    EXPECT_FALSE(r.cache_hit);
    if (r.items.empty()) continue;
    (r.dual_path ? saw_dual : saw_primal) = true;
  }
  EXPECT_TRUE(saw_dual) << "no pool exceeded the factor rank";
  EXPECT_TRUE(saw_primal) << "no pool stayed under the factor rank";

  // Warm pass: every entry — dual or primal — hits, keeps its
  // representation, and still serves valid recommendations.
  auto warm = (*service)->HandleBatch(batch);
  ASSERT_TRUE(warm.ok());
  for (size_t i = 0; i < warm->size(); ++i) {
    const RecResponse& r = (*warm)[i];
    if (r.items.empty()) continue;
    EXPECT_TRUE(r.cache_hit) << "user " << r.user;
    EXPECT_EQ(r.dual_path, (*cold)[i].dual_path)
        << "cache hit changed representation for user " << r.user;
    std::set<int> distinct(r.items.begin(), r.items.end());
    EXPECT_EQ(distinct.size(), r.items.size());
    for (int item : r.items) {
      EXPECT_FALSE(w->dataset.IsObserved(r.user, item));
    }
  }
  EXPECT_EQ((*service)->Snapshot().cache_hits,
            static_cast<long>(batch.size()));
}

// ---------------------------------------------------------------------
// Evaluator on the pool

TEST(ServeTest, ParallelEvaluatorMatchesSerialExactly) {
  ServeWorld* w = World();
  Evaluator serial(&w->dataset);
  const auto expected = serial.Evaluate(w->model.get(), {5, 10});
  const double expected_val = serial.ValidationNdcg(w->model.get(), 10);

  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    Evaluator parallel(&w->dataset);
    parallel.SetThreadPool(&pool);
    const auto got = parallel.Evaluate(w->model.get(), {5, 10});
    ASSERT_EQ(got.size(), expected.size());
    for (const auto& [n, m] : expected) {
      const MetricSet& g = got.at(n);
      EXPECT_EQ(g.recall, m.recall) << "cutoff " << n;
      EXPECT_EQ(g.ndcg, m.ndcg) << "cutoff " << n;
      EXPECT_EQ(g.category_coverage, m.category_coverage) << "cutoff " << n;
      EXPECT_EQ(g.f_score, m.f_score) << "cutoff " << n;
      EXPECT_EQ(g.ild, m.ild) << "cutoff " << n;
    }
    EXPECT_EQ(parallel.ValidationNdcg(w->model.get(), 10), expected_val);
  }
}

}  // namespace
}  // namespace lkpdpp
