// Tests for the reverse-mode autodiff tape: forward values and gradients
// of every op against central finite differences.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "autodiff/graph.h"
#include "common/rng.h"
#include "linalg/sparse.h"
#include "testing_util.h"

namespace lkpdpp {
namespace {

using ad::Graph;
using ad::Param;
using ad::Tensor;
using testutil::RandomMatrix;

// Numerically checks dSum(f(params))/dparam against param.grad for a
// forward function rebuilt per perturbation.
void GradCheck(std::vector<Param*> params,
               const std::function<Tensor(Graph*)>& forward,
               double tol = 1e-5) {
  // Analytic pass: seed with ones (loss = sum of outputs).
  Graph g;
  Tensor out = forward(&g);
  Matrix seed(out.rows(), out.cols());
  for (int r = 0; r < seed.rows(); ++r) {
    for (int c = 0; c < seed.cols(); ++c) seed(r, c) = 1.0;
  }
  for (Param* p : params) p->ZeroGrad();
  ASSERT_TRUE(g.Backward({{out, seed}}).ok());

  auto loss_value = [&]() {
    Graph fresh;
    Tensor t = forward(&fresh);
    double total = 0.0;
    const Matrix& v = t.value();
    for (int r = 0; r < v.rows(); ++r) {
      for (int c = 0; c < v.cols(); ++c) total += v(r, c);
    }
    return total;
  };

  const double h = 1e-6;
  for (Param* p : params) {
    for (int r = 0; r < p->value.rows(); ++r) {
      for (int c = 0; c < p->value.cols(); ++c) {
        const double orig = p->value(r, c);
        p->value(r, c) = orig + h;
        const double plus = loss_value();
        p->value(r, c) = orig - h;
        const double minus = loss_value();
        p->value(r, c) = orig;
        const double fd = (plus - minus) / (2.0 * h);
        EXPECT_NEAR(p->grad(r, c), fd, tol * std::max(1.0, std::fabs(fd)))
            << p->name << "(" << r << "," << c << ")";
      }
    }
  }
}

TEST(AutodiffForwardTest, ConstantHoldsValue) {
  Graph g;
  Tensor t = g.Constant(Matrix{{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(t.value()(1, 0), 3.0);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 2);
}

TEST(AutodiffForwardTest, ArithmeticValues) {
  Graph g;
  Tensor a = g.Constant(Matrix{{1, 2}});
  Tensor b = g.Constant(Matrix{{3, 5}});
  EXPECT_DOUBLE_EQ(g.Add(a, b).value()(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(g.Sub(a, b).value()(0, 0), -2.0);
  EXPECT_DOUBLE_EQ(g.Mul(a, b).value()(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(g.Scale(a, -2.0).value()(0, 0), -2.0);
}

TEST(AutodiffForwardTest, ActivationValues) {
  Graph g;
  Tensor x = g.Constant(Matrix{{-1.0, 0.0, 2.0}});
  const Matrix relu = g.Relu(x).value();
  EXPECT_DOUBLE_EQ(relu(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(relu(0, 2), 2.0);
  const Matrix sig = g.Sigmoid(x).value();
  EXPECT_NEAR(sig(0, 1), 0.5, 1e-12);
  const Matrix th = g.Tanh(x).value();
  EXPECT_NEAR(th(0, 2), std::tanh(2.0), 1e-12);
}

TEST(AutodiffForwardTest, StructuralOps) {
  Graph g;
  Tensor a = g.Constant(Matrix{{1, 2}, {3, 4}, {5, 6}});
  const Matrix gathered = g.GatherRows(a, {2, 0}).value();
  EXPECT_DOUBLE_EQ(gathered(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(gathered(1, 0), 1.0);

  const Matrix sliced = g.SliceRows(a, 1, 2).value();
  EXPECT_DOUBLE_EQ(sliced(0, 0), 3.0);

  Tensor row = g.Constant(Matrix{{10, 20}});
  const Matrix repeated = g.RepeatRow(row, 3).value();
  EXPECT_EQ(repeated.rows(), 3);
  EXPECT_DOUBLE_EQ(repeated(2, 1), 20.0);

  const Matrix cat = g.ConcatCols(a, a).value();
  EXPECT_EQ(cat.cols(), 4);
  EXPECT_DOUBLE_EQ(cat(1, 3), 4.0);

  const Matrix rs = g.RowSum(a).value();
  EXPECT_EQ(rs.cols(), 1);
  EXPECT_DOUBLE_EQ(rs(2, 0), 11.0);

  const Matrix broad = g.AddRowBroadcast(a, row).value();
  EXPECT_DOUBLE_EQ(broad(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(broad(2, 1), 26.0);
}

TEST(AutodiffGradTest, MatMul) {
  Rng rng(1);
  Param a("a", RandomMatrix(3, 4, &rng));
  Param b("b", RandomMatrix(4, 2, &rng));
  GradCheck({&a, &b}, [&](Graph* g) {
    return g->MatMul(g->Parameter(&a), g->Parameter(&b));
  });
}

TEST(AutodiffGradTest, MatMulTransB) {
  Rng rng(2);
  Param a("a", RandomMatrix(3, 4, &rng));
  Param b("b", RandomMatrix(5, 4, &rng));
  GradCheck({&a, &b}, [&](Graph* g) {
    return g->MatMulTransB(g->Parameter(&a), g->Parameter(&b));
  });
}

TEST(AutodiffGradTest, ElementwiseChain) {
  Rng rng(3);
  Param a("a", RandomMatrix(3, 3, &rng));
  Param b("b", RandomMatrix(3, 3, &rng));
  GradCheck({&a, &b}, [&](Graph* g) {
    Tensor x = g->Mul(g->Parameter(&a), g->Parameter(&b));
    return g->Sub(g->Scale(x, 1.5), g->Parameter(&a));
  });
}

TEST(AutodiffGradTest, Activations) {
  Rng rng(4);
  Param a("a", RandomMatrix(4, 3, &rng));
  GradCheck({&a}, [&](Graph* g) {
    return g->Sigmoid(g->Tanh(g->Parameter(&a)));
  });
  // ReLU checked away from the kink.
  Param b("b", RandomMatrix(4, 3, &rng));
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 3; ++c) {
      if (std::fabs(b.value(r, c)) < 0.05) b.value(r, c) = 0.5;
    }
  }
  GradCheck({&b}, [&](Graph* g) { return g->Relu(g->Parameter(&b)); });
}

TEST(AutodiffGradTest, GatherAndSlice) {
  Rng rng(5);
  Param a("a", RandomMatrix(5, 3, &rng));
  GradCheck({&a}, [&](Graph* g) {
    Tensor gathered = g->GatherRows(g->Parameter(&a), {0, 2, 2, 4});
    return g->SliceRows(gathered, 1, 3);
  });
}

TEST(AutodiffGradTest, BroadcastRepeatConcatRowSum) {
  Rng rng(6);
  Param a("a", RandomMatrix(4, 3, &rng));
  Param row("row", RandomMatrix(1, 3, &rng));
  GradCheck({&a, &row}, [&](Graph* g) {
    Tensor broad = g->AddRowBroadcast(g->Parameter(&a), g->Parameter(&row));
    Tensor rep = g->RepeatRow(g->Parameter(&row), 4);
    Tensor cat = g->ConcatCols(broad, rep);
    return g->RowSum(cat);
  });
}

TEST(AutodiffGradTest, SpmmMatchesDense) {
  Rng rng(7);
  auto sparse = SparseMatrix::FromTriplets(
      3, 4,
      {{0, 1, 2.0}, {1, 0, -1.0}, {1, 3, 0.5}, {2, 2, 3.0}});
  ASSERT_TRUE(sparse.ok());
  Param x("x", RandomMatrix(4, 2, &rng));

  // Forward matches dense multiply.
  Graph g;
  Tensor out = g.Spmm(&*sparse, g.Parameter(&x));
  const Matrix dense = MatMul(sparse->ToDense(), x.value);
  EXPECT_LT((out.value() - dense).MaxAbs(), 1e-12);

  GradCheck({&x}, [&](Graph* g2) {
    return g2->Spmm(&*sparse, g2->Parameter(&x));
  });
}

TEST(AutodiffGradTest, MeanOfLayers) {
  Rng rng(8);
  Param a("a", RandomMatrix(3, 2, &rng));
  GradCheck({&a}, [&](Graph* g) {
    Tensor t = g->Parameter(&a);
    Tensor s = g->Scale(t, 2.0);
    return g->MeanOf({t, s, g->Mul(t, t)});
  });
}

TEST(AutodiffGradTest, DeepCompositeNetwork) {
  // NeuMF-shaped pipeline: gather -> concat -> affine -> relu -> affine.
  Rng rng(9);
  Param emb("emb", RandomMatrix(6, 4, &rng));
  Param w1("w1", RandomMatrix(8, 5, &rng));
  Param b1("b1", RandomMatrix(1, 5, &rng));
  Param w2("w2", RandomMatrix(5, 1, &rng));
  GradCheck(
      {&emb, &w1, &b1, &w2},
      [&](Graph* g) {
        Tensor u = g->RepeatRow(g->GatherRows(g->Parameter(&emb), {1}), 3);
        Tensor items = g->GatherRows(g->Parameter(&emb), {0, 3, 5});
        Tensor x = g->ConcatCols(u, items);
        Tensor z = g->Relu(
            g->AddRowBroadcast(g->MatMul(x, g->Parameter(&w1)),
                               g->Parameter(&b1)));
        return g->MatMul(z, g->Parameter(&w2));
      },
      1e-4);
}

TEST(AutodiffBackwardTest, MultipleSeedsAccumulate) {
  Param a("a", Matrix{{1.0, 2.0}});
  Graph g;
  Tensor t = g.Parameter(&a);
  Tensor x = g.Scale(t, 2.0);
  Tensor y = g.Scale(t, 3.0);
  a.ZeroGrad();
  ASSERT_TRUE(
      g.Backward({{x, Matrix{{1.0, 1.0}}}, {y, Matrix{{1.0, 1.0}}}}).ok());
  // d(2a + 3a)/da = 5.
  EXPECT_DOUBLE_EQ(a.grad(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(a.grad(0, 1), 5.0);
}

TEST(AutodiffBackwardTest, SharedSubexpressionGradientsSum) {
  Param a("a", Matrix{{2.0}});
  Graph g;
  Tensor t = g.Parameter(&a);
  Tensor sq = g.Mul(t, t);  // a^2; d/da = 2a = 4.
  a.ZeroGrad();
  ASSERT_TRUE(g.Backward({{sq, Matrix{{1.0}}}}).ok());
  EXPECT_DOUBLE_EQ(a.grad(0, 0), 4.0);
}

TEST(AutodiffBackwardTest, SecondBackwardFails) {
  Param a("a", Matrix{{1.0}});
  Graph g;
  Tensor t = g.Parameter(&a);
  ASSERT_TRUE(g.Backward({{t, Matrix{{1.0}}}}).ok());
  EXPECT_EQ(g.Backward({{t, Matrix{{1.0}}}}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(AutodiffBackwardTest, SeedShapeMismatchFails) {
  Param a("a", Matrix{{1.0, 2.0}});
  Graph g;
  Tensor t = g.Parameter(&a);
  EXPECT_EQ(g.Backward({{t, Matrix{{1.0}}}}).code(),
            StatusCode::kInvalidArgument);
}

TEST(AutodiffBackwardTest, ForeignTensorRejected) {
  Graph g1, g2;
  Tensor t = g1.Constant(Matrix{{1.0}});
  EXPECT_FALSE(g2.Backward({{t, Matrix{{1.0}}}}).ok());
}

TEST(AutodiffBackwardTest, ParamGradAccumulatesAcrossGraphs) {
  Param a("a", Matrix{{1.0}});
  a.ZeroGrad();
  for (int i = 0; i < 3; ++i) {
    Graph g;
    Tensor t = g.Parameter(&a);
    ASSERT_TRUE(g.Backward({{t, Matrix{{1.0}}}}).ok());
  }
  EXPECT_DOUBLE_EQ(a.grad(0, 0), 3.0);
}

TEST(AutodiffWorkspaceTest, InterceptsParamGradsUntilFlushed) {
  Param a("a", Matrix{{1.0, 2.0}});
  a.ZeroGrad();
  ad::GradientWorkspace ws;
  Graph g(&ws);
  Tensor t = g.Scale(g.Parameter(&a), 3.0);
  ASSERT_TRUE(g.Backward({{t, Matrix{{1.0, 1.0}}}}).ok());
  // Nothing lands on the shared accumulator until the explicit flush.
  EXPECT_DOUBLE_EQ(a.grad(0, 0), 0.0);
  EXPECT_FALSE(ws.empty());
  ws.FlushIntoParams();
  EXPECT_DOUBLE_EQ(a.grad(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.grad(0, 1), 3.0);
  // Replay is additive: flushing again doubles the accumulator.
  ws.FlushIntoParams();
  EXPECT_DOUBLE_EQ(a.grad(0, 0), 6.0);
}

TEST(AutodiffWorkspaceTest, RowScattersStayRowSparse) {
  // GatherRows through a workspace must not allocate a dense buffer of
  // the full param shape; observable contract: the flush touches only
  // the gathered rows.
  Param emb("emb", Matrix(100, 2, 1.0));
  emb.ZeroGrad();
  ad::GradientWorkspace ws;
  Graph g(&ws);
  Tensor rows = g.GatherRows(g.Parameter(&emb), {3, 97, 3});
  ASSERT_TRUE(g.Backward({{rows, Matrix{{1, 2}, {3, 4}, {5, 6}}}}).ok());
  ws.FlushIntoParams();
  EXPECT_DOUBLE_EQ(emb.grad(3, 0), 6.0);   // 1 + 5 (duplicate row).
  EXPECT_DOUBLE_EQ(emb.grad(3, 1), 8.0);   // 2 + 6.
  EXPECT_DOUBLE_EQ(emb.grad(97, 0), 3.0);
  for (int r = 0; r < 100; ++r) {
    if (r == 3 || r == 97) continue;
    EXPECT_DOUBLE_EQ(emb.grad(r, 0), 0.0) << r;
  }
}

// ---------------------------------------------------------------------
// Property test: for random small graphs, the per-instance gradients
// collected in N private workspaces, reduced in the fixed instance
// order, equal the single-graph batch gradient to BIT precision.
//
// Each "instance" is a randomly shaped chain over shared params; the
// single-graph reference builds all N instance subgraphs on one tape
// (instance N-1 first, so its reverse-sweep contribution order matches
// a 0..N-1 workspace flush) and calls Backward once with all N seeds.
// ---------------------------------------------------------------------

struct RandomInstanceSpec {
  std::vector<int> rows;  // Gather targets into the embedding param.
  int activation = 0;     // 0 none, 1 relu, 2 tanh, 3 sigmoid.
  double scale = 1.0;
  bool row_sum = false;
};

Tensor BuildRandomInstance(Graph* g, Param* emb, Param* w,
                           const RandomInstanceSpec& spec) {
  Tensor x = g->GatherRows(g->Parameter(emb), spec.rows);
  Tensor y = g->MatMul(x, g->Parameter(w));
  switch (spec.activation) {
    case 1: y = g->Relu(y); break;
    case 2: y = g->Tanh(y); break;
    case 3: y = g->Sigmoid(y); break;
    default: break;
  }
  y = g->Scale(y, spec.scale);
  if (spec.row_sum) y = g->RowSum(y);
  return y;
}

TEST(AutodiffWorkspaceTest, WorkspaceSumMatchesSingleGraphBitExactly) {
  Rng rng(2024);
  for (int round = 0; round < 20; ++round) {
    const int num_rows = 6 + rng.UniformInt(6);
    const int dim = 2 + rng.UniformInt(3);
    const int out_dim = 1 + rng.UniformInt(3);
    Param emb("emb", RandomMatrix(num_rows, dim, &rng));
    Param w("w", RandomMatrix(dim, out_dim, &rng));

    const int n = 2 + rng.UniformInt(4);
    std::vector<RandomInstanceSpec> specs(static_cast<size_t>(n));
    for (auto& s : specs) {
      // Distinct rows per instance (as every backbone gathers): each
      // param element then receives at most one addition per instance,
      // which is what makes pre-folded leaf gradients and replayed
      // workspace entries agree bit-for-bit.
      std::vector<int> all_rows(static_cast<size_t>(num_rows));
      for (int i = 0; i < num_rows; ++i) all_rows[static_cast<size_t>(i)] = i;
      rng.Shuffle(&all_rows);
      const int gathered = 1 + rng.UniformInt(4);
      s.rows.assign(all_rows.begin(), all_rows.begin() + gathered);
      s.activation = rng.UniformInt(4);
      s.scale = rng.Uniform(-2.0, 2.0);
      s.row_sum = rng.Bernoulli(0.5);
    }

    // Reference: one shared graph, instances built in REVERSE order so
    // the reverse node sweep emits contributions in instance order
    // 0..N-1, matching the workspace flush below.
    emb.ZeroGrad();
    w.ZeroGrad();
    {
      Graph shared;
      std::vector<std::pair<Tensor, Matrix>> seeds;
      for (int i = n - 1; i >= 0; --i) {
        Tensor out = BuildRandomInstance(&shared, &emb, &w,
                                         specs[static_cast<size_t>(i)]);
        seeds.emplace_back(out, Matrix(out.rows(), out.cols(), 1.0));
      }
      ASSERT_TRUE(shared.Backward(seeds).ok());
    }
    const Matrix ref_demb = emb.grad;
    const Matrix ref_dw = w.grad;

    // Candidate: one private graph + workspace per instance, flushed in
    // instance order 0..N-1.
    emb.ZeroGrad();
    w.ZeroGrad();
    std::vector<ad::GradientWorkspace> workspaces(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      Graph g(&workspaces[static_cast<size_t>(i)]);
      Tensor out =
          BuildRandomInstance(&g, &emb, &w, specs[static_cast<size_t>(i)]);
      ASSERT_TRUE(
          g.Backward({{out, Matrix(out.rows(), out.cols(), 1.0)}}).ok());
    }
    for (int i = 0; i < n; ++i) {
      workspaces[static_cast<size_t>(i)].FlushIntoParams();
    }

    for (int r = 0; r < ref_demb.rows(); ++r) {
      for (int c = 0; c < ref_demb.cols(); ++c) {
        ASSERT_EQ(emb.grad(r, c), ref_demb(r, c))
            << "round " << round << " demb(" << r << "," << c << ")";
      }
    }
    for (int r = 0; r < ref_dw.rows(); ++r) {
      for (int c = 0; c < ref_dw.cols(); ++c) {
        ASSERT_EQ(w.grad(r, c), ref_dw(r, c))
            << "round " << round << " dw(" << r << "," << c << ")";
      }
    }
  }
}

}  // namespace
}  // namespace lkpdpp
