// Differential tests for KernelRep: FactorDiagKernelRep must be
// bit-identical to the materialized primal pipeline — entries, rows,
// diagonals, and (therefore) every greedy-MAP selection — across ranks,
// blend alphas, rank-deficient factors, duplicated rows, and exact
// ties. Also pins the relative stopping threshold (kernels at 1e-150 /
// 1e150 scale rerank correctly) and the no-materialization guarantee of
// the factor path (allocation probe).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/map_inference.h"
#include "kernels/quality_diversity.h"
#include "linalg/kernel_rep.h"
#include "linalg/low_rank.h"
#include "linalg/matrix.h"
#include "testing_util.h"

namespace lkpdpp {
namespace {

// The serving builder's primal pipeline, reproduced operation for
// operation: ascending-column factor dots (DiversityKernel::Entry),
// *= alpha, AddDiagonal(delta), AssembleKernel. The differential
// contract under test is that FactorDiagKernelRep equals THIS, bit for
// bit.
Matrix MaterializeConditioned(const Matrix& v, const Vector& quality,
                              double alpha) {
  const int n = v.rows();
  Matrix k(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double s = 0.0;
      for (int c = 0; c < v.cols(); ++c) s += v(i, c) * v(j, c);
      k(i, j) = s;
    }
  }
  k *= alpha;
  k.AddDiagonal(1.0 - alpha);
  return AssembleKernel(quality, k);
}

Vector PositiveQuality(int n, Rng* rng) {
  Vector q(n);
  for (int i = 0; i < n; ++i) q[i] = std::exp(0.3 * rng->Normal());
  return q;
}

FactorDiagKernelRep MakeFactorRep(const Matrix& v, const Vector& quality,
                                  double alpha) {
  auto rep = FactorDiagKernelRep::Create(v, quality, alpha, 1.0 - alpha);
  EXPECT_TRUE(rep.ok()) << rep.status().ToString();
  return *rep;
}

TEST(KernelRepTest, EntriesBitIdenticalAcrossRanksAndAlphas) {
  Rng rng(41);
  const int n = 12;
  for (int d : {1, 2, 8, 32}) {
    for (double alpha : {0.5, 1.0}) {
      const Matrix v = testutil::RandomMatrix(n, d, &rng);
      const Vector q = PositiveQuality(n, &rng);
      const Matrix primal = MaterializeConditioned(v, q, alpha);
      const FactorDiagKernelRep rep = MakeFactorRep(v, q, alpha);
      ASSERT_EQ(rep.size(), n);

      std::vector<double> row(n), diag(n);
      rep.FillDiag(diag.data());
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(diag[static_cast<size_t>(i)], primal(i, i))
            << "diag " << i << " d=" << d << " alpha=" << alpha;
      }
      for (int j = 0; j < n; ++j) {
        rep.FillRow(j, row.data());
        for (int i = 0; i < n; ++i) {
          EXPECT_EQ(row[static_cast<size_t>(i)], primal(j, i))
              << "row " << j << " col " << i << " d=" << d
              << " alpha=" << alpha;
          EXPECT_EQ(rep.Entry(j, i), primal(j, i));
        }
      }
    }
  }
}

TEST(KernelRepTest, GreedySelectionsBitIdenticalAcrossReps) {
  Rng rng(42);
  const int n = 20;
  for (int d : {1, 2, 8, 32}) {
    for (double alpha : {0.5, 1.0}) {
      const Matrix v = testutil::RandomMatrix(n, d, &rng);
      const Vector q = PositiveQuality(n, &rng);
      const FactorDiagKernelRep factor_rep = MakeFactorRep(v, q, alpha);
      const PrimalKernelRep primal_rep(MaterializeConditioned(v, q, alpha));

      GreedyMapOptions opts;
      opts.max_size = 8;
      auto via_factor = GreedyMapInference(factor_rep, opts);
      auto via_primal = GreedyMapInference(primal_rep, opts);
      ASSERT_TRUE(via_factor.ok()) << via_factor.status().ToString();
      ASSERT_TRUE(via_primal.ok()) << via_primal.status().ToString();
      // Identical doubles -> identical branches -> identical sets, in
      // identical selection order. No tolerance.
      EXPECT_EQ(*via_factor, *via_primal) << "d=" << d << " alpha=" << alpha;
      // With alpha < 1 the identity blend keeps the kernel full rank, so
      // greedy must fill the request even past the factor rank.
      if (alpha < 1.0) {
        EXPECT_EQ(static_cast<int>(via_factor->size()), opts.max_size);
      }
    }
  }
}

TEST(KernelRepTest, RankDeficientSelectionsAgreeAndStopAtRank) {
  // Pure-diversity blend (alpha = 1) with d << n: the kernel has rank
  // d, so greedy must stop at d selections on BOTH representations.
  Rng rng(43);
  const int n = 16, d = 3;
  const Matrix v = testutil::RandomMatrix(n, d, &rng);
  const Vector q = PositiveQuality(n, &rng);
  const FactorDiagKernelRep factor_rep = MakeFactorRep(v, q, 1.0);
  const PrimalKernelRep primal_rep(MaterializeConditioned(v, q, 1.0));

  GreedyMapOptions opts;
  opts.max_size = 10;
  auto via_factor = GreedyMapInference(factor_rep, opts);
  auto via_primal = GreedyMapInference(primal_rep, opts);
  ASSERT_TRUE(via_factor.ok());
  ASSERT_TRUE(via_primal.ok());
  EXPECT_EQ(*via_factor, *via_primal);
  EXPECT_EQ(via_factor->size(), static_cast<size_t>(d));
}

TEST(KernelRepTest, DuplicatedRowsNeverSelectedTwiceOnEitherRep) {
  // Items 0/4 and 2/9 are exact duplicates (identical factor rows AND
  // identical quality). A duplicate's residual gain collapses to
  // round-off once its twin is selected, which the relative threshold
  // classifies as zero — so each pair contributes at most one item, and
  // both representations agree on which.
  Rng rng(44);
  const int n = 10, d = 4;
  Matrix v = testutil::RandomMatrix(n, d, &rng);
  Vector q = PositiveQuality(n, &rng);
  for (int c = 0; c < d; ++c) {
    v(4, c) = v(0, c);
    v(9, c) = v(2, c);
  }
  q[4] = q[0];
  q[9] = q[2];

  for (double alpha : {1.0}) {
    const FactorDiagKernelRep factor_rep = MakeFactorRep(v, q, alpha);
    const PrimalKernelRep primal_rep(MaterializeConditioned(v, q, alpha));
    GreedyMapOptions opts;
    opts.max_size = n;
    auto via_factor = GreedyMapInference(factor_rep, opts);
    auto via_primal = GreedyMapInference(primal_rep, opts);
    ASSERT_TRUE(via_factor.ok());
    ASSERT_TRUE(via_primal.ok());
    EXPECT_EQ(*via_factor, *via_primal);
    const bool both_first =
        std::count(via_factor->begin(), via_factor->end(), 0) +
            std::count(via_factor->begin(), via_factor->end(), 4) >
        1;
    const bool both_second =
        std::count(via_factor->begin(), via_factor->end(), 2) +
            std::count(via_factor->begin(), via_factor->end(), 9) >
        1;
    EXPECT_FALSE(both_first) << "duplicate pair {0, 4} selected twice";
    EXPECT_FALSE(both_second) << "duplicate pair {2, 9} selected twice";
  }
}

TEST(KernelRepTest, ExactGainTiesBreakIdenticallyAcrossReps) {
  // Orthogonal factor rows with equal norms and equal quality: every
  // remaining item ties exactly at every step. The argmax scan keeps
  // the FIRST strict maximum, so both representations must walk the
  // same lowest-index-first order — any drift in the tie-break is a
  // bit-exactness violation by construction.
  const int n = 6;
  Matrix v(n, n);
  for (int i = 0; i < n; ++i) v(i, i) = 2.0;
  Vector q(n, 1.5);
  const FactorDiagKernelRep factor_rep = MakeFactorRep(v, q, 1.0);
  const PrimalKernelRep primal_rep(MaterializeConditioned(v, q, 1.0));

  GreedyMapOptions opts;
  opts.max_size = 4;
  auto via_factor = GreedyMapInference(factor_rep, opts);
  auto via_primal = GreedyMapInference(primal_rep, opts);
  ASSERT_TRUE(via_factor.ok());
  ASSERT_TRUE(via_primal.ok());
  EXPECT_EQ(*via_factor, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(*via_factor, *via_primal);
}

TEST(KernelRepTest, StoppingThresholdIsRelativeToKernelScale) {
  // Rank-2 factor over 4 items, scaled to the extremes. The absolute
  // 1e-15 cutoff this replaced either refused uniformly tiny kernels
  // (every gain "vanished" at 1e-150 scale) or ran past the numerical
  // rank on huge ones; the relative rule must select exactly rank = 2
  // items at every scale.
  Matrix base{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}, {2.0, -1.0}};
  for (double scale : {1e-150, 1.0, 1e150}) {
    Matrix v = base;
    // Scale the FACTOR by sqrt(scale) so the kernel scales by `scale`
    // exactly while staying an exact V V^T.
    v *= std::sqrt(scale);
    const Vector q(4, 1.0);
    const FactorDiagKernelRep factor_rep = MakeFactorRep(v, q, 1.0);
    const PrimalKernelRep primal_rep(MaterializeConditioned(v, q, 1.0));
    GreedyMapOptions opts;
    opts.max_size = 4;
    auto via_factor = GreedyMapInference(factor_rep, opts);
    auto via_primal = GreedyMapInference(primal_rep, opts);
    ASSERT_TRUE(via_factor.ok())
        << "scale " << scale << ": " << via_factor.status().ToString();
    ASSERT_TRUE(via_primal.ok())
        << "scale " << scale << ": " << via_primal.status().ToString();
    EXPECT_EQ(via_factor->size(), 2u) << "scale " << scale;
    EXPECT_EQ(*via_factor, *via_primal) << "scale " << scale;
  }
}

TEST(KernelRepTest, FactorPathNeverMaterializesTheKernel) {
  // Arm the allocation probe around rep construction + greedy: the
  // factor path may allocate O(n d) but never an n x n Matrix. The
  // probe hooks every Matrix constructor, so a regression that
  // materializes anywhere inside the path trips the bound.
  Rng rng(45);
  const int n = 64, d = 4;
  const Matrix v = testutil::RandomMatrix(n, d, &rng);
  const Vector q = PositiveQuality(n, &rng);

  matrix_probe::Arm();
  auto rep = FactorDiagKernelRep::Create(v, q, 0.5, 0.5);
  ASSERT_TRUE(rep.ok());
  GreedyMapOptions opts;
  opts.max_size = 10;
  auto selected = GreedyMapInference(*rep, opts);
  const long factor_peak = matrix_probe::Disarm();
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->size(), 10u);
  EXPECT_LT(factor_peak, static_cast<long>(n) * n)
      << "factor-path greedy MAP materialized an n x n kernel";
  EXPECT_LE(factor_peak, static_cast<long>(n) * d);

  // Probe sanity: the primal pipeline DOES allocate n x n, and the
  // probe sees it.
  matrix_probe::Arm();
  const Matrix primal = MaterializeConditioned(v, q, 0.5);
  const long primal_peak = matrix_probe::Disarm();
  EXPECT_GE(primal_peak, static_cast<long>(n) * n);
  (void)primal;
}

TEST(KernelRepTest, PrimalViewAndOwnedAgree) {
  Rng rng(46);
  const Matrix kernel = testutil::RandomPsdKernel(5, &rng);
  const PrimalKernelRep owned(kernel);
  const PrimalKernelRep view = PrimalKernelRep::View(kernel);
  ASSERT_EQ(owned.size(), 5);
  ASSERT_EQ(view.size(), 5);
  EXPECT_EQ(owned.kind(), KernelRepKind::kPrimal);
  std::vector<double> a(5), b(5);
  for (int j = 0; j < 5; ++j) {
    owned.FillRow(j, a.data());
    view.FillRow(j, b.data());
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(a[static_cast<size_t>(i)], kernel(j, i));
      EXPECT_EQ(b[static_cast<size_t>(i)], kernel(j, i));
    }
  }
}

// alpha == 0 collapses the blend to Diag(q)(delta I)Diag(q). The
// O(pool)-memory DiagKernelRep must equal the full materialized primal
// pipeline at that point bit for bit: +-0.0 * K_ij + delta == delta on
// the diagonal (IEEE: adding a signed zero is exact), the (s_i * delta)
// * s_i grouping mirrors AssembleKernel's left-to-right order, and the
// off-diagonal sign-of-zero difference (+0.0 vs the primal's +-0.0)
// never changes a greedy selection (zeros only enter as c^2 = +0.0 and
// x - 0.0 == x).
TEST(KernelRepTest, DiagRepMatchesMaterializedAlphaZeroBitExactly) {
  Rng rng(404);
  for (const int n : {1, 5, 24}) {
    const Matrix v = testutil::RandomMatrix(n, std::min(n, 6), &rng);
    const Vector q = PositiveQuality(n, &rng);
    const Matrix primal = MaterializeConditioned(v, q, /*alpha=*/0.0);
    auto diag = DiagKernelRep::Create(q, 1.0);
    ASSERT_TRUE(diag.ok()) << diag.status().ToString();
    ASSERT_EQ(diag->size(), n);
    std::vector<double> d(static_cast<size_t>(n));
    diag->FillDiag(d.data());
    std::vector<double> row(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(d[static_cast<size_t>(i)], primal(i, i)) << "diag " << i;
      diag->FillRow(i, row.data());
      for (int j = 0; j < n; ++j) {
        EXPECT_EQ(diag->Entry(i, j), i == j ? primal(i, j) : 0.0)
            << "entry (" << i << ", " << j << ")";
        EXPECT_EQ(row[static_cast<size_t>(j)], diag->Entry(i, j));
      }
    }
    // The contract serving relies on: identical greedy selections.
    GreedyMapOptions opts;
    opts.max_size = std::min(n, 4);
    auto from_diag = GreedyMapInference(*diag, opts);
    auto from_primal = GreedyMapInference(PrimalKernelRep(primal), opts);
    ASSERT_TRUE(from_diag.ok());
    ASSERT_TRUE(from_primal.ok());
    EXPECT_EQ(*from_diag, *from_primal) << "n = " << n;
  }
}

TEST(KernelRepTest, KindNamesAreStable) {
  EXPECT_STREQ(KernelRepKindName(KernelRepKind::kPrimal), "primal");
  EXPECT_STREQ(KernelRepKindName(KernelRepKind::kFactorDiag), "factor_diag");
  EXPECT_STREQ(KernelRepKindName(KernelRepKind::kDiag), "diag");
}

TEST(KernelRepTest, CreateValidationErrors) {
  const Matrix v = Matrix(3, 2, 1.0);
  // Scale length mismatch.
  EXPECT_FALSE(FactorDiagKernelRep::Create(v, Vector(2, 1.0), 1.0, 0.0).ok());
  // Negative / non-finite blend terms would break PSD-ness.
  EXPECT_FALSE(FactorDiagKernelRep::Create(v, Vector(3, 1.0), -0.1, 0.0).ok());
  EXPECT_FALSE(FactorDiagKernelRep::Create(v, Vector(3, 1.0), 1.0, -1.0).ok());
  EXPECT_FALSE(FactorDiagKernelRep::Create(
                   v, Vector(3, 1.0), std::nan(""), 0.0)
                   .ok());
  // Non-finite scale.
  Vector bad(3, 1.0);
  bad[1] = std::nan("");
  EXPECT_FALSE(FactorDiagKernelRep::Create(v, bad, 1.0, 0.0).ok());
  // Empty factor.
  EXPECT_FALSE(
      FactorDiagKernelRep::Create(Matrix(0, 0), Vector(), 1.0, 0.0).ok());
  // DiagKernelRep: empty scale, non-finite scale, bad delta.
  EXPECT_FALSE(DiagKernelRep::Create(Vector(), 1.0).ok());
  EXPECT_FALSE(DiagKernelRep::Create(bad, 1.0).ok());
  EXPECT_FALSE(DiagKernelRep::Create(Vector(3, 1.0), -0.5).ok());
  EXPECT_FALSE(DiagKernelRep::Create(Vector(3, 1.0), std::nan("")).ok());
  EXPECT_TRUE(DiagKernelRep::Create(Vector(3, 1.0), 0.0).ok());
}

}  // namespace
}  // namespace lkpdpp
