// Tests for SGD/Adam optimizers: update math, clipping, convergence.

#include <gtest/gtest.h>

#include <cmath>

#include "opt/optimizer.h"

namespace lkpdpp {
namespace {

TEST(SgdTest, SingleStepMatchesFormula) {
  ad::Param p("p", Matrix{{1.0, -2.0}});
  p.grad = Matrix{{0.5, 1.0}};
  Optimizer::Options opts;
  opts.learning_rate = 0.1;
  opts.clip_norm = 0.0;
  SgdOptimizer sgd(opts);
  sgd.Step({&p});
  EXPECT_NEAR(p.value(0, 0), 1.0 - 0.1 * 0.5, 1e-12);
  EXPECT_NEAR(p.value(0, 1), -2.0 - 0.1 * 1.0, 1e-12);
  // Grad zeroed after step.
  EXPECT_DOUBLE_EQ(p.grad.FrobeniusNorm(), 0.0);
}

TEST(SgdTest, WeightDecayShrinksParameters) {
  ad::Param p("p", Matrix{{10.0}});
  p.grad = Matrix{{0.0}};
  Optimizer::Options opts;
  opts.learning_rate = 0.1;
  opts.weight_decay = 0.5;
  opts.clip_norm = 0.0;
  SgdOptimizer sgd(opts);
  sgd.Step({&p});
  EXPECT_NEAR(p.value(0, 0), 10.0 - 0.1 * 0.5 * 10.0, 1e-12);
}

TEST(ClippingTest, GlobalNormScalesAllParams) {
  ad::Param a("a", Matrix{{0.0}});
  ad::Param b("b", Matrix{{0.0}});
  a.grad = Matrix{{3.0}};
  b.grad = Matrix{{4.0}};  // Global norm = 5.
  const double pre = Optimizer::ClipGlobalNorm({&a, &b}, 1.0);
  EXPECT_NEAR(pre, 5.0, 1e-12);
  EXPECT_NEAR(a.grad(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(b.grad(0, 0), 0.8, 1e-12);
}

TEST(ClippingTest, NoScalingBelowThreshold) {
  ad::Param a("a", Matrix{{0.0}});
  a.grad = Matrix{{0.5}};
  Optimizer::ClipGlobalNorm({&a}, 1.0);
  EXPECT_NEAR(a.grad(0, 0), 0.5, 1e-12);
}

TEST(ClippingTest, ZeroDisablesClipping) {
  ad::Param a("a", Matrix{{0.0}});
  a.grad = Matrix{{100.0}};
  Optimizer::ClipGlobalNorm({&a}, 0.0);
  EXPECT_NEAR(a.grad(0, 0), 100.0, 1e-12);
}

TEST(AdamTest, FirstStepMovesByLearningRate) {
  // With bias correction, the very first Adam step is ~lr * sign(g).
  ad::Param p("p", Matrix{{0.0}});
  p.grad = Matrix{{2.0}};
  AdamOptimizer::AdamOptions opts;
  opts.learning_rate = 0.1;
  opts.clip_norm = 0.0;
  AdamOptimizer adam(opts);
  adam.Step({&p});
  EXPECT_NEAR(p.value(0, 0), -0.1, 1e-6);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize f(x) = 0.5 * sum((x - t)^2) to the target t.
  ad::Param p("p", Matrix{{5.0, -3.0}});
  const Matrix target{{1.0, 2.0}};
  AdamOptimizer::AdamOptions opts;
  opts.learning_rate = 0.05;
  AdamOptimizer adam(opts);
  for (int step = 0; step < 2000; ++step) {
    p.grad = p.value - target;
    adam.Step({&p});
  }
  EXPECT_NEAR(p.value(0, 0), 1.0, 1e-3);
  EXPECT_NEAR(p.value(0, 1), 2.0, 1e-3);
}

TEST(AdamTest, HandlesMultipleParamsIndependently) {
  ad::Param a("a", Matrix{{4.0}});
  ad::Param b("b", Matrix{{-4.0}});
  AdamOptimizer::AdamOptions opts;
  opts.learning_rate = 0.1;
  AdamOptimizer adam(opts);
  for (int step = 0; step < 800; ++step) {
    a.grad = Matrix{{a.value(0, 0)}};
    b.grad = Matrix{{b.value(0, 0)}};
    adam.Step({&a, &b});
  }
  EXPECT_NEAR(a.value(0, 0), 0.0, 1e-2);
  EXPECT_NEAR(b.value(0, 0), 0.0, 1e-2);
}

TEST(AdamTest, AdaptsToGradientScale) {
  // Adam's per-coordinate normalization moves tiny-gradient coordinates
  // at a comparable pace to large-gradient ones.
  ad::Param p("p", Matrix{{1.0, 1.0}});
  AdamOptimizer::AdamOptions opts;
  opts.learning_rate = 0.01;
  opts.clip_norm = 0.0;
  AdamOptimizer adam(opts);
  for (int step = 0; step < 100; ++step) {
    p.grad = Matrix{{1000.0 * p.value(0, 0), 0.001 * p.value(0, 1)}};
    adam.Step({&p});
  }
  // Both coordinates should have moved substantially toward zero.
  EXPECT_LT(p.value(0, 0), 0.7);
  EXPECT_LT(p.value(0, 1), 0.7);
}

TEST(OptimizerNamesTest, Stable) {
  EXPECT_EQ(SgdOptimizer(Optimizer::Options{}).name(), "SGD");
  EXPECT_EQ(AdamOptimizer(AdamOptimizer::AdamOptions{}).name(), "Adam");
}

}  // namespace
}  // namespace lkpdpp
