// Tests for SGD/Adam optimizers: update math, clipping, convergence,
// and the non-finite-gradient failure path.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/thread_pool.h"
#include "opt/optimizer.h"

namespace lkpdpp {
namespace {

TEST(SgdTest, SingleStepMatchesFormula) {
  ad::Param p("p", Matrix{{1.0, -2.0}});
  p.grad = Matrix{{0.5, 1.0}};
  Optimizer::Options opts;
  opts.learning_rate = 0.1;
  opts.clip_norm = 0.0;
  SgdOptimizer sgd(opts);
  ASSERT_TRUE(sgd.Step({&p}).ok());
  EXPECT_NEAR(p.value(0, 0), 1.0 - 0.1 * 0.5, 1e-12);
  EXPECT_NEAR(p.value(0, 1), -2.0 - 0.1 * 1.0, 1e-12);
  // Grad zeroed after step.
  EXPECT_DOUBLE_EQ(p.grad.FrobeniusNorm(), 0.0);
}

TEST(SgdTest, WeightDecayShrinksParameters) {
  ad::Param p("p", Matrix{{10.0}});
  p.grad = Matrix{{0.0}};
  Optimizer::Options opts;
  opts.learning_rate = 0.1;
  opts.weight_decay = 0.5;
  opts.clip_norm = 0.0;
  SgdOptimizer sgd(opts);
  ASSERT_TRUE(sgd.Step({&p}).ok());
  EXPECT_NEAR(p.value(0, 0), 10.0 - 0.1 * 0.5 * 10.0, 1e-12);
}

TEST(ClippingTest, GlobalNormScalesAllParams) {
  ad::Param a("a", Matrix{{0.0}});
  ad::Param b("b", Matrix{{0.0}});
  a.grad = Matrix{{3.0}};
  b.grad = Matrix{{4.0}};  // Global norm = 5.
  auto pre = Optimizer::ClipGlobalNorm({&a, &b}, 1.0);
  ASSERT_TRUE(pre.ok());
  EXPECT_NEAR(*pre, 5.0, 1e-12);
  EXPECT_NEAR(a.grad(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(b.grad(0, 0), 0.8, 1e-12);
}

TEST(ClippingTest, NoScalingBelowThreshold) {
  ad::Param a("a", Matrix{{0.0}});
  a.grad = Matrix{{0.5}};
  ASSERT_TRUE(Optimizer::ClipGlobalNorm({&a}, 1.0).ok());
  EXPECT_NEAR(a.grad(0, 0), 0.5, 1e-12);
}

TEST(ClippingTest, ZeroDisablesClipping) {
  ad::Param a("a", Matrix{{0.0}});
  a.grad = Matrix{{100.0}};
  ASSERT_TRUE(Optimizer::ClipGlobalNorm({&a}, 0.0).ok());
  EXPECT_NEAR(a.grad(0, 0), 100.0, 1e-12);
}

TEST(ClippingTest, NanGradientIsANumericalError) {
  // Regression: a NaN gradient used to produce a NaN norm and silently
  // scale every gradient (and then every parameter) to NaN.
  ad::Param a("a", Matrix{{0.0, 0.0}});
  ad::Param b("healthy", Matrix{{0.0}});
  a.grad = Matrix{{1.0, std::nan("")}};
  b.grad = Matrix{{1e3}};
  auto clipped = Optimizer::ClipGlobalNorm({&a, &b}, 1.0);
  ASSERT_FALSE(clipped.ok());
  EXPECT_EQ(clipped.status().code(), StatusCode::kNumericalError);
  // The culprit param is named and NO grad was rescaled.
  EXPECT_NE(clipped.status().ToString().find("'a'"), std::string::npos);
  EXPECT_DOUBLE_EQ(b.grad(0, 0), 1e3);
}

TEST(ClippingTest, InfGradientIsANumericalError) {
  ad::Param a("a", Matrix{{0.0}});
  a.grad = Matrix{{std::numeric_limits<double>::infinity()}};
  EXPECT_EQ(Optimizer::ClipGlobalNorm({&a}, 5.0).status().code(),
            StatusCode::kNumericalError);
}

TEST(ClippingTest, PooledClippingMatchesSerial) {
  // The per-param norm fan-out must not change the clip factor.
  ThreadPool pool(4);
  std::vector<Matrix> serial_grads;
  for (int trial = 0; trial < 2; ++trial) {
    ad::Param a("a", Matrix{{0.0, 0.0}});
    ad::Param b("b", Matrix{{0.0}, {0.0}});
    a.grad = Matrix{{3.0, 1.0}};
    b.grad = Matrix{{4.0}, {2.0}};
    auto pre = Optimizer::ClipGlobalNorm({&a, &b}, 1.0,
                                         trial == 0 ? nullptr : &pool);
    ASSERT_TRUE(pre.ok());
    if (trial == 0) {
      serial_grads = {a.grad, b.grad};
    } else {
      for (int c = 0; c < 2; ++c) {
        EXPECT_DOUBLE_EQ(a.grad(0, c), serial_grads[0](0, c));
        EXPECT_DOUBLE_EQ(b.grad(c, 0), serial_grads[1](c, 0));
      }
    }
  }
}

TEST(SgdTest, NonFiniteGradLeavesParamsUntouched) {
  ad::Param p("p", Matrix{{2.0}});
  p.grad = Matrix{{std::nan("")}};
  Optimizer::Options opts;
  opts.learning_rate = 0.1;
  SgdOptimizer sgd(opts);
  EXPECT_EQ(sgd.Step({&p}).code(), StatusCode::kNumericalError);
  // No partial update: value intact, grad preserved for inspection.
  EXPECT_DOUBLE_EQ(p.value(0, 0), 2.0);
  EXPECT_TRUE(std::isnan(p.grad(0, 0)));
}

TEST(AdamTest, NonFiniteGradLeavesParamsAndMomentsUntouched) {
  ad::Param p("p", Matrix{{1.0}});
  AdamOptimizer::AdamOptions opts;
  opts.learning_rate = 0.1;
  AdamOptimizer adam(opts);
  // One healthy step to materialize moment state.
  p.grad = Matrix{{0.5}};
  ASSERT_TRUE(adam.Step({&p}).ok());
  const double after_first = p.value(0, 0);
  // Poisoned step must fail without moving the value.
  p.grad = Matrix{{std::numeric_limits<double>::infinity()}};
  EXPECT_EQ(adam.Step({&p}).code(), StatusCode::kNumericalError);
  EXPECT_DOUBLE_EQ(p.value(0, 0), after_first);
  // Recovery: a finite grad afterwards steps normally.
  p.grad = Matrix{{0.5}};
  EXPECT_TRUE(adam.Step({&p}).ok());
  EXPECT_LT(p.value(0, 0), after_first);
}

TEST(AdamTest, FirstStepMovesByLearningRate) {
  // With bias correction, the very first Adam step is ~lr * sign(g).
  ad::Param p("p", Matrix{{0.0}});
  p.grad = Matrix{{2.0}};
  AdamOptimizer::AdamOptions opts;
  opts.learning_rate = 0.1;
  opts.clip_norm = 0.0;
  AdamOptimizer adam(opts);
  ASSERT_TRUE(adam.Step({&p}).ok());
  EXPECT_NEAR(p.value(0, 0), -0.1, 1e-6);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize f(x) = 0.5 * sum((x - t)^2) to the target t.
  ad::Param p("p", Matrix{{5.0, -3.0}});
  const Matrix target{{1.0, 2.0}};
  AdamOptimizer::AdamOptions opts;
  opts.learning_rate = 0.05;
  AdamOptimizer adam(opts);
  for (int step = 0; step < 2000; ++step) {
    p.grad = p.value - target;
    ASSERT_TRUE(adam.Step({&p}).ok());
  }
  EXPECT_NEAR(p.value(0, 0), 1.0, 1e-3);
  EXPECT_NEAR(p.value(0, 1), 2.0, 1e-3);
}

TEST(AdamTest, HandlesMultipleParamsIndependently) {
  ad::Param a("a", Matrix{{4.0}});
  ad::Param b("b", Matrix{{-4.0}});
  AdamOptimizer::AdamOptions opts;
  opts.learning_rate = 0.1;
  AdamOptimizer adam(opts);
  for (int step = 0; step < 800; ++step) {
    a.grad = Matrix{{a.value(0, 0)}};
    b.grad = Matrix{{b.value(0, 0)}};
    ASSERT_TRUE(adam.Step({&a, &b}).ok());
  }
  EXPECT_NEAR(a.value(0, 0), 0.0, 1e-2);
  EXPECT_NEAR(b.value(0, 0), 0.0, 1e-2);
}

TEST(AdamTest, PooledStepBitIdenticalToSerial) {
  // The same trajectory must fall out whether the per-param update
  // loops run serially or on a pool.
  ThreadPool pool(4);
  Matrix serial_a, serial_b;
  for (int trial = 0; trial < 2; ++trial) {
    ad::Param a("a", Matrix{{4.0, -1.0}});
    ad::Param b("b", Matrix{{-4.0}, {2.0}});
    AdamOptimizer::AdamOptions opts;
    opts.learning_rate = 0.1;
    AdamOptimizer adam(opts);
    if (trial == 1) adam.SetThreadPool(&pool);
    for (int step = 0; step < 50; ++step) {
      a.grad = a.value;
      b.grad = b.value;
      ASSERT_TRUE(adam.Step({&a, &b}).ok());
    }
    if (trial == 0) {
      serial_a = a.value;
      serial_b = b.value;
    } else {
      EXPECT_DOUBLE_EQ(a.value(0, 0), serial_a(0, 0));
      EXPECT_DOUBLE_EQ(a.value(0, 1), serial_a(0, 1));
      EXPECT_DOUBLE_EQ(b.value(0, 0), serial_b(0, 0));
      EXPECT_DOUBLE_EQ(b.value(1, 0), serial_b(1, 0));
    }
  }
}

TEST(AdamTest, AdaptsToGradientScale) {
  // Adam's per-coordinate normalization moves tiny-gradient coordinates
  // at a comparable pace to large-gradient ones.
  ad::Param p("p", Matrix{{1.0, 1.0}});
  AdamOptimizer::AdamOptions opts;
  opts.learning_rate = 0.01;
  opts.clip_norm = 0.0;
  AdamOptimizer adam(opts);
  for (int step = 0; step < 100; ++step) {
    p.grad = Matrix{{1000.0 * p.value(0, 0), 0.001 * p.value(0, 1)}};
    ASSERT_TRUE(adam.Step({&p}).ok());
  }
  // Both coordinates should have moved substantially toward zero.
  EXPECT_LT(p.value(0, 0), 0.7);
  EXPECT_LT(p.value(0, 1), 0.7);
}

TEST(OptimizerNamesTest, Stable) {
  EXPECT_EQ(SgdOptimizer(Optimizer::Options{}).name(), "SGD");
  EXPECT_EQ(AdamOptimizer(AdamOptimizer::AdamOptions{}).name(), "Adam");
}

}  // namespace
}  // namespace lkpdpp
