// Tests for src/common: Status/Result, RNG, string utilities.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace lkpdpp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NumericalError("x").code(), StatusCode::kNumericalError);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("a"), Status::Internal("a"));
  EXPECT_FALSE(Status::Internal("a") == Status::Internal("b"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::NotFound("gone"); };
  auto wrapper = [&]() -> Status {
    LKP_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::OutOfRange("idx"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveValueTransfersOwnership) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = r.MoveValue();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto makes = []() -> Result<int> { return 7; };
  auto wrapper = [&]() -> Result<int> {
    LKP_ASSIGN_OR_RETURN(int x, makes());
    return x + 1;
  };
  EXPECT_EQ(*wrapper(), 8);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto fails = []() -> Result<int> {
    return Status::Internal("boom");
  };
  auto wrapper = [&]() -> Result<int> {
    LKP_ASSIGN_OR_RETURN(int x, fails());
    return x;
  };
  EXPECT_EQ(wrapper().status().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanApproximatesHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(13);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.UniformInt(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All values hit.
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NormalMomentsMatchStandard) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(29);
  std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.015);
}

TEST(RngTest, CategoricalIgnoresNegativeWeights) {
  Rng rng(31);
  std::vector<double> w = {-5.0, 1.0};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(rng.Categorical(w), 1);
}

TEST(RngTest, CategoricalAllZeroFallsBackToUniform) {
  Rng rng(37);
  std::vector<double> w = {0.0, 0.0, 0.0};
  std::set<int> seen;
  for (int i = 0; i < 300; ++i) seen.insert(rng.Categorical(w));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(41);
  for (int trial = 0; trial < 50; ++trial) {
    auto s = rng.SampleWithoutReplacement(20, 6);
    std::set<int> distinct(s.begin(), s.end());
    EXPECT_EQ(distinct.size(), 6u);
    for (int v : s) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 20);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(43);
  auto s = rng.SampleWithoutReplacement(5, 5);
  std::sort(s.begin(), s.end());
  EXPECT_EQ(s, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(47);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(51);
  Rng child = a.Fork();
  // Child stream differs from the parent's continuation.
  EXPECT_NE(child.Next(), a.Next());
}

TEST(StringUtilTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, StrSplitKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, StrTrim) {
  EXPECT_EQ(StrTrim("  x y \t\n"), "x y");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
}

TEST(StringUtilTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("prefix-rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
}

}  // namespace
}  // namespace lkpdpp
