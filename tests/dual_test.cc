// Differential campaign: the low-rank dual representation (CreateDual,
// Gartrell et al. 2016) against the primal path (Create) everywhere the
// two overlap. The contract under test is strict: for the same factor V
// the two representations must agree on eigenvalue multisets, detected
// rank, normalizers, and marginal probabilities to 1e-10 — and, for a
// shared Rng::Fork discipline, produce IDENTICAL sample streams, because
// the dual sampler consumes its Rng draw-for-draw like the primal one.
// Coverage spans ranks d in {1, 2, 8, 32}, rank-deficient factors,
// duplicated rows (identical items), and extreme column scales
// (1e-150 / 1e150).

#include "linalg/low_rank.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/dpp.h"
#include "core/kdpp.h"
#include "kernels/quality_diversity.h"
#include "testing_util.h"

namespace lkpdpp {
namespace {

constexpr double kTol = 1e-10;

LowRankFactor MakeFactor(int n, int d, uint64_t seed) {
  Rng rng(seed);
  auto f = LowRankFactor::Create(testutil::RandomMatrix(n, d, &rng));
  f.status().CheckOK();
  return std::move(f).ValueOrDie();
}

// Factor with orthonormal columns scaled so L = V V^T has exactly the
// given spectrum (plus n - d zeros). Two passes: orthonormalize via
// Gram-Schmidt (projections against unit columns, so no division by
// prior norms is needed), then scale each unit column by sqrt(lambda).
// n must comfortably exceed d so the columns stay independent.
LowRankFactor MakeFactorWithSpectrum(int n, const std::vector<double>& lambda,
                                     uint64_t seed) {
  const int d = static_cast<int>(lambda.size());
  Rng rng(seed);
  Matrix v = testutil::RandomMatrix(n, d, &rng);
  for (int c = 0; c < d; ++c) {
    for (int prev = 0; prev < c; ++prev) {
      double dot = 0.0;
      for (int r = 0; r < n; ++r) dot += v(r, c) * v(r, prev);
      for (int r = 0; r < n; ++r) v(r, c) -= dot * v(r, prev);
    }
    double norm = 0.0;
    for (int r = 0; r < n; ++r) norm += v(r, c) * v(r, c);
    norm = std::sqrt(norm);
    for (int r = 0; r < n; ++r) v(r, c) /= norm;
  }
  for (int c = 0; c < d; ++c) {
    const double scale = std::sqrt(lambda[static_cast<size_t>(c)]);
    for (int r = 0; r < n; ++r) v(r, c) *= scale;
  }
  auto f = LowRankFactor::Create(std::move(v));
  f.status().CheckOK();
  return std::move(f).ValueOrDie();
}

int CountPositive(const Vector& v) {
  int count = 0;
  for (int i = 0; i < v.size(); ++i) {
    if (v[i] > 0.0) ++count;
  }
  return count;
}

// ---------------------------------------------------------------------
// LowRankFactor basics

TEST(LowRankFactorTest, CreateRejectsBadInput) {
  EXPECT_FALSE(LowRankFactor::Create(Matrix()).ok());
  EXPECT_FALSE(LowRankFactor::Create(Matrix(0, 3)).ok());
  Matrix bad(2, 2, 1.0);
  bad(1, 1) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(LowRankFactor::Create(std::move(bad)).ok());
}

TEST(LowRankFactorTest, GramAndMaterializeAreConsistent) {
  const LowRankFactor f = MakeFactor(9, 4, 17);
  const Matrix c = f.Gram();
  const Matrix l = f.Materialize();
  ASSERT_EQ(c.rows(), 4);
  ASSERT_EQ(l.rows(), 9);
  // Same trace: tr(V^T V) = tr(V V^T) = ||V||_F^2.
  EXPECT_NEAR(c.Trace(), l.Trace(), 1e-12 * std::fabs(l.Trace()));
  EXPECT_TRUE(c.IsSymmetric());
  EXPECT_TRUE(l.IsSymmetric());
}

TEST(LowRankFactorTest, SubsetGramMatchesMaterializedSubmatrix) {
  const LowRankFactor f = MakeFactor(12, 5, 3);
  const std::vector<int> rows{1, 4, 7, 11};
  const Matrix direct = f.SubsetGram(rows);
  const Matrix via_l = f.Materialize().PrincipalSubmatrix(rows);
  for (int i = 0; i < direct.rows(); ++i) {
    for (int j = 0; j < direct.cols(); ++j) {
      EXPECT_NEAR(direct(i, j), via_l(i, j), 1e-12)
          << "(" << i << "," << j << ")";
    }
  }
}

TEST(LowRankFactorTest, SelectAndScaleRowsComposeConditioning) {
  const LowRankFactor f = MakeFactor(10, 3, 21);
  const std::vector<int> pool{0, 3, 5, 6, 9};
  Vector q(5);
  for (int i = 0; i < 5; ++i) q[i] = 0.5 + 0.25 * i;
  const LowRankFactor conditioned = f.SelectRows(pool).ScaleRows(q);
  // Diag(q) L_S Diag(q) assembled primally.
  const Matrix expected =
      AssembleKernel(q, f.Materialize().PrincipalSubmatrix(pool));
  const Matrix got = conditioned.Materialize();
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_NEAR(got(i, j), expected(i, j), 1e-12);
    }
  }
}

TEST(LowRankFactorTest, LiftedEigenvectorsAreEigenvectorsOfL) {
  const LowRankFactor f = MakeFactor(11, 4, 8);
  auto dual = f.EigenDual();
  ASSERT_TRUE(dual.ok());
  std::vector<int> all;
  for (int j = 0; j < 4; ++j) {
    ASSERT_GT(dual->eigenvalues[j], 0.0);
    all.push_back(j);
  }
  const Matrix u = f.LiftEigenvectors(dual->eigenvalues, dual->dual_vectors,
                                      all);
  const Matrix l = f.Materialize();
  for (int j = 0; j < 4; ++j) {
    const double lam = dual->eigenvalues[j];
    Vector uj(11);
    for (int r = 0; r < 11; ++r) uj[r] = u(r, j);
    // Unit norm and L u = lambda u.
    EXPECT_NEAR(uj.Norm(), 1.0, 1e-10);
    const Vector lu = MatVec(l, uj);
    for (int r = 0; r < 11; ++r) {
      EXPECT_NEAR(lu[r], lam * uj[r], 1e-9 * std::max(1.0, lam));
    }
  }
  // Orthogonality across lifted columns.
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      double dot = 0.0;
      for (int r = 0; r < 11; ++r) dot += u(r, a) * u(r, b);
      EXPECT_NEAR(dot, 0.0, 1e-10);
    }
  }
}

TEST(LowRankFactorTest, LiftedVectorsMatchPrimalEigenvectorsInSign) {
  // Well-separated spectrum so primal and dual eigenvectors are unique
  // up to sign — which the shared canonicalization then fixes equal.
  const LowRankFactor f =
      MakeFactorWithSpectrum(13, {1.0, 2.0, 4.0, 8.0}, 29);
  auto primal = SymmetricEigen(f.Materialize());
  ASSERT_TRUE(primal.ok());
  auto dual = f.EigenDual();
  ASSERT_TRUE(dual.ok());
  const Matrix lifted = f.LiftEigenvectors(dual->eigenvalues,
                                           dual->dual_vectors, {0, 1, 2, 3});
  // Primal ascending spectrum: 9 zeros then our 4 values at columns 9..12.
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(primal->eigenvalues[9 + j], dual->eigenvalues[j], 1e-10);
    for (int r = 0; r < 13; ++r) {
      EXPECT_NEAR(primal->eigenvectors(r, 9 + j), lifted(r, j), 1e-9)
          << "eigenvector " << j << " row " << r;
    }
  }
}

TEST(LowRankFactorTest, CanonicalizeColumnSignsFlipsNegativePeaks) {
  Matrix m{{0.1, -0.3}, {-0.9, 0.2}, {0.4, -0.8}};
  CanonicalizeColumnSigns(&m);
  EXPECT_GT(m(1, 0), 0.0);  // Peak of column 0 was -0.9.
  EXPECT_GT(m(2, 1), 0.0);  // Peak of column 1 was -0.8.
  EXPECT_LT(m(0, 0), 0.0);
}

// ---------------------------------------------------------------------
// Spectrum agreement

struct DualCase {
  int n;
  int d;
  uint64_t seed;
};

class DualRankSweep : public ::testing::TestWithParam<DualCase> {};

TEST_P(DualRankSweep, EigenvalueMultisetsAgree) {
  const auto [n, d, seed] = GetParam();
  const LowRankFactor f = MakeFactor(n, d, seed);
  auto primal = SymmetricEigen(f.Materialize());
  ASSERT_TRUE(primal.ok());
  ASSERT_TRUE(ClampSpectrumToPsd(&primal->eigenvalues, n).ok());
  auto dual = f.EigenDual();
  ASSERT_TRUE(dual.ok());
  ASSERT_EQ(dual->eigenvalues.size(), d);

  // Same detected rank; the dual spectrum is the primal one minus n - d
  // structural zeros.
  const int rank_primal = CountPositive(primal->eigenvalues);
  const int rank_dual = CountPositive(dual->eigenvalues);
  EXPECT_EQ(rank_primal, rank_dual);
  const double scale = std::max(1.0, primal->eigenvalues.Max());
  for (int j = 0; j < d; ++j) {
    EXPECT_NEAR(primal->eigenvalues[n - d + j], dual->eigenvalues[j],
                kTol * scale)
        << "eigenvalue " << j;
  }
  for (int j = 0; j < n - d; ++j) {
    EXPECT_EQ(primal->eigenvalues[j], 0.0) << "padding eigenvalue " << j;
  }
}

TEST_P(DualRankSweep, KDppNormalizersAndMarginalsAgree) {
  const auto [n, d, seed] = GetParam();
  const LowRankFactor f = MakeFactor(n, d, seed);
  for (int k : {1, std::max(1, d / 2), d}) {
    auto primal = KDpp::Create(f.Materialize(), k);
    ASSERT_TRUE(primal.ok()) << primal.status().ToString();
    auto dual = KDpp::CreateDual(f, k);
    ASSERT_TRUE(dual.ok()) << dual.status().ToString();
    EXPECT_TRUE(dual->is_dual());
    EXPECT_FALSE(primal->is_dual());
    EXPECT_EQ(primal->ground_size(), n);
    EXPECT_EQ(dual->ground_size(), n);

    const double lz_p = primal->LogNormalizer();
    const double lz_d = dual->LogNormalizer();
    EXPECT_NEAR(lz_p, lz_d, kTol * std::max(1.0, std::fabs(lz_p)))
        << "k=" << k;

    // Marginal probabilities: diagonal both ways, plus the full marginal
    // kernels, plus the primal diagonal against its own kernel.
    const Vector diag_p = primal->MarginalDiagonal();
    const Vector diag_d = dual->MarginalDiagonal();
    const Matrix mk_p = primal->MarginalKernel();
    const Matrix mk_d = dual->MarginalKernel();
    double trace = 0.0;
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(diag_p[i], diag_d[i], kTol) << "item " << i << " k=" << k;
      EXPECT_NEAR(mk_p(i, i), diag_p[i], kTol);
      trace += diag_d[i];
      for (int j = 0; j < n; ++j) {
        EXPECT_NEAR(mk_p(i, j), mk_d(i, j), kTol);
      }
    }
    EXPECT_NEAR(trace, static_cast<double>(k), 1e-8);
  }
}

TEST_P(DualRankSweep, KDppSampleStreamsAreBitIdentical) {
  const auto [n, d, seed] = GetParam();
  const LowRankFactor f = MakeFactor(n, d, seed);
  for (int k : {1, d}) {
    auto primal = KDpp::Create(f.Materialize(), k);
    ASSERT_TRUE(primal.ok());
    auto dual = KDpp::CreateDual(f, k);
    ASSERT_TRUE(dual.ok());
    // Shared Rng::Fork discipline: two master generators with the same
    // seed fork one child per draw, exactly like the serving layer.
    Rng master_p(seed ^ 0xD0A1ULL);
    Rng master_d(seed ^ 0xD0A1ULL);
    for (int t = 0; t < 200; ++t) {
      Rng fork_p = master_p.Fork();
      Rng fork_d = master_d.Fork();
      auto sample_p = primal->Sample(&fork_p);
      auto sample_d = dual->Sample(&fork_d);
      ASSERT_TRUE(sample_p.ok()) << sample_p.status().ToString();
      ASSERT_TRUE(sample_d.ok()) << sample_d.status().ToString();
      ASSERT_EQ(static_cast<int>(sample_p->size()), k);
      EXPECT_EQ(*sample_p, *sample_d)
          << "draw " << t << " diverged (d=" << d << ", k=" << k << ")";
    }
  }
}

TEST_P(DualRankSweep, DppAgreesAndSamplesIdentically) {
  const auto [n, d, seed] = GetParam();
  const LowRankFactor f = MakeFactor(n, d, seed);
  auto primal = Dpp::Create(f.Materialize());
  ASSERT_TRUE(primal.ok());
  auto dual = Dpp::CreateDual(f);
  ASSERT_TRUE(dual.ok());
  EXPECT_TRUE(dual->is_dual());
  EXPECT_EQ(dual->ground_size(), n);

  const double lz_p = primal->LogNormalizer();
  EXPECT_NEAR(lz_p, dual->LogNormalizer(),
              kTol * std::max(1.0, std::fabs(lz_p)));
  EXPECT_NEAR(primal->ExpectedSize(), dual->ExpectedSize(), kTol * d);
  const Vector diag_p = primal->MarginalDiagonal();
  const Vector diag_d = dual->MarginalDiagonal();
  const Matrix mk_p = primal->MarginalKernel();
  const Matrix mk_d = dual->MarginalKernel();
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(diag_p[i], diag_d[i], kTol);
    EXPECT_NEAR(mk_p(i, i), diag_p[i], kTol);
    for (int j = 0; j < n; ++j) {
      EXPECT_NEAR(mk_p(i, j), mk_d(i, j), kTol);
    }
  }

  // The dual sampler burns the primal's zero-eigenvalue draws, so the
  // streams coincide subset-for-subset.
  Rng master_p(seed ^ 0xD1B2ULL);
  Rng master_d(seed ^ 0xD1B2ULL);
  for (int t = 0; t < 200; ++t) {
    Rng fork_p = master_p.Fork();
    Rng fork_d = master_d.Fork();
    auto sample_p = primal->Sample(&fork_p);
    auto sample_d = dual->Sample(&fork_d);
    ASSERT_TRUE(sample_p.ok());
    ASSERT_TRUE(sample_d.ok());
    EXPECT_EQ(*sample_p, *sample_d) << "draw " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranks, DualRankSweep,
    ::testing::Values(DualCase{48, 1, 101}, DualCase{48, 2, 202},
                      DualCase{48, 8, 303}, DualCase{48, 32, 404}),
    [](const ::testing::TestParamInfo<DualCase>& info) {
      return "n" + std::to_string(info.param.n) + "d" +
             std::to_string(info.param.d);
    });

// ---------------------------------------------------------------------
// Probabilities

TEST(DualKDppTest, EnumeratedProbabilitiesAgreeAndSumToOne) {
  const LowRankFactor f = MakeFactor(10, 4, 55);
  const int k = 3;
  auto primal = KDpp::Create(f.Materialize(), k);
  ASSERT_TRUE(primal.ok());
  auto dual = KDpp::CreateDual(f, k);
  ASSERT_TRUE(dual.ok());
  auto probs_p = primal->EnumerateProbabilities();
  auto probs_d = dual->EnumerateProbabilities();
  ASSERT_TRUE(probs_p.ok());
  ASSERT_TRUE(probs_d.ok());
  ASSERT_EQ(probs_p->size(), probs_d->size());
  double total = 0.0;
  for (size_t i = 0; i < probs_p->size(); ++i) {
    EXPECT_EQ((*probs_p)[i].first, (*probs_d)[i].first);
    EXPECT_NEAR((*probs_p)[i].second, (*probs_d)[i].second, kTol);
    total += (*probs_d)[i].second;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DualDppTest, LogProbAgreesIncludingEmptySet) {
  const LowRankFactor f = MakeFactor(9, 3, 77);
  auto primal = Dpp::Create(f.Materialize());
  ASSERT_TRUE(primal.ok());
  auto dual = Dpp::CreateDual(f);
  ASSERT_TRUE(dual.ok());
  const std::vector<std::vector<int>> subsets{
      {}, {0}, {4}, {2, 7}, {0, 3, 8}, {1, 2, 5}};
  for (const auto& s : subsets) {
    auto lp_p = primal->LogProb(s);
    auto lp_d = dual->LogProb(s);
    ASSERT_TRUE(lp_p.ok());
    ASSERT_TRUE(lp_d.ok());
    EXPECT_NEAR(*lp_p, *lp_d, kTol * std::max(1.0, std::fabs(*lp_p)));
  }
  // A subset larger than the rank has probability zero: the Gram of 4
  // rows of a rank-3 factor is exactly singular.
  auto lp = dual->LogProb({0, 1, 2, 3});
  ASSERT_TRUE(lp.ok());
  EXPECT_EQ(*lp, -std::numeric_limits<double>::infinity());
  // Error paths validate identically.
  EXPECT_FALSE(dual->LogProb({0, 0}).ok());
  EXPECT_FALSE(dual->LogProb({-1}).ok());
  EXPECT_FALSE(dual->LogProb({9}).ok());
}

// ---------------------------------------------------------------------
// Rank deficiency and the shared zero clamp

TEST(DualRankDeficiencyTest, DuplicatedColumnsDetectEqualRank) {
  // d = 8 columns but only rank 4: columns 4..7 copy columns 0..3.
  const int n = 24;
  Rng rng(13);
  Matrix v = testutil::RandomMatrix(n, 8, &rng);
  for (int c = 4; c < 8; ++c) {
    for (int r = 0; r < n; ++r) v(r, c) = v(r, c - 4);
  }
  auto f = LowRankFactor::Create(std::move(v));
  ASSERT_TRUE(f.ok());

  auto primal_eig = SymmetricEigen(f->Materialize());
  ASSERT_TRUE(primal_eig.ok());
  ASSERT_TRUE(ClampSpectrumToPsd(&primal_eig->eigenvalues, n).ok());
  auto dual_eig = f->EigenDual();
  ASSERT_TRUE(dual_eig.ok());
  EXPECT_EQ(CountPositive(primal_eig->eigenvalues), 4);
  EXPECT_EQ(CountPositive(dual_eig->eigenvalues), 4);

  // k <= rank: both representations work and their streams coincide.
  const int k = 3;
  auto primal = KDpp::Create(f->Materialize(), k);
  ASSERT_TRUE(primal.ok());
  auto dual = KDpp::CreateDual(*f, k);
  ASSERT_TRUE(dual.ok());
  EXPECT_NEAR(primal->LogNormalizer(), dual->LogNormalizer(),
              kTol * std::max(1.0, std::fabs(primal->LogNormalizer())));
  Rng master_p(7);
  Rng master_d(7);
  for (int t = 0; t < 100; ++t) {
    Rng fork_p = master_p.Fork();
    Rng fork_d = master_d.Fork();
    auto sp = primal->Sample(&fork_p);
    auto sd = dual->Sample(&fork_d);
    ASSERT_TRUE(sp.ok()) << sp.status().ToString();
    ASSERT_TRUE(sd.ok()) << sd.status().ToString();
    EXPECT_EQ(*sp, *sd) << "draw " << t;
  }

  // k > rank: both representations refuse with NumericalError.
  auto primal_bad = KDpp::Create(f->Materialize(), 5);
  auto dual_bad = KDpp::CreateDual(*f, 5);
  EXPECT_EQ(primal_bad.status().code(), StatusCode::kNumericalError)
      << primal_bad.status().ToString();
  EXPECT_EQ(dual_bad.status().code(), StatusCode::kNumericalError)
      << dual_bad.status().ToString();
}

// Regression for the representation-independent zero clamp: an
// eigenvalue below n*eps*lambda_max must clamp to zero on BOTH paths
// (the dual one clamps at primal ground size n, not its own d), and one
// above must survive on both. Before the clamp was shared, a dual
// threshold of d*eps*lambda_max would have kept eigenvalues the primal
// path discards, making detected rank depend on the representation.
TEST(DualRankDeficiencyTest, ZeroClampIsRepresentationIndependent) {
  const int n = 32;
  // n*eps*lambda_max = 32 * 2.2e-16 * 1.0 ~= 7.1e-15. One eigenvalue
  // two decades below the threshold, one two decades above.
  const std::vector<double> lambda{1.0, 0.25, 1e-12, 1e-17};
  const LowRankFactor f = MakeFactorWithSpectrum(n, lambda, 91);

  auto primal = SymmetricEigen(f.Materialize());
  ASSERT_TRUE(primal.ok());
  ASSERT_TRUE(ClampSpectrumToPsd(&primal->eigenvalues, n).ok());
  auto dual = f.EigenDual();
  ASSERT_TRUE(dual.ok());

  EXPECT_EQ(CountPositive(primal->eigenvalues), 3);
  EXPECT_EQ(CountPositive(dual->eigenvalues), 3);
  // The surviving small eigenvalue agrees; the tiny one is exactly zero.
  EXPECT_EQ(dual->eigenvalues[0], 0.0);
  EXPECT_NEAR(dual->eigenvalues[1], 1e-12, 1e-14);
  EXPECT_NEAR(primal->eigenvalues[n - 3], 1e-12, 1e-14);
  EXPECT_EQ(primal->eigenvalues[n - 4], 0.0);

  // And the k-DPPs built both ways agree on the detected rank they
  // expose through eigenvalues().
  auto kdpp_p = KDpp::Create(f.Materialize(), 2);
  auto kdpp_d = KDpp::CreateDual(f, 2);
  ASSERT_TRUE(kdpp_p.ok());
  ASSERT_TRUE(kdpp_d.ok());
  EXPECT_EQ(CountPositive(kdpp_p->eigenvalues()),
            CountPositive(kdpp_d->eigenvalues()));
}

TEST(DualRankDeficiencyTest, ClampSpectrumRejectsIndefinite) {
  Vector lam{-0.5, 1.0, 2.0};
  EXPECT_EQ(ClampSpectrumToPsd(&lam, 3).code(), StatusCode::kNumericalError);
  Vector noise{-1e-18, 1.0};
  ASSERT_TRUE(ClampSpectrumToPsd(&noise, 2).ok());
  EXPECT_EQ(noise[0], 0.0);
  EXPECT_EQ(noise[1], 1.0);
}

// ---------------------------------------------------------------------
// Duplicated rows (identical catalog items)

TEST(DualEdgeCaseTest, DuplicatedRowsAgreeEverywhere) {
  const int n = 16;
  Rng rng(31);
  Matrix v = testutil::RandomMatrix(n, 6, &rng);
  for (int c = 0; c < 6; ++c) v(1, c) = v(0, c);  // Items 0 and 1 identical.
  auto f = LowRankFactor::Create(std::move(v));
  ASSERT_TRUE(f.ok());
  const int k = 3;
  auto primal = KDpp::Create(f->Materialize(), k);
  ASSERT_TRUE(primal.ok());
  auto dual = KDpp::CreateDual(*f, k);
  ASSERT_TRUE(dual.ok());
  EXPECT_NEAR(primal->LogNormalizer(), dual->LogNormalizer(),
              kTol * std::max(1.0, std::fabs(primal->LogNormalizer())));

  // A subset containing both duplicates has determinant exactly zero.
  auto lp = dual->LogProb({0, 1, 5});
  ASSERT_TRUE(lp.ok());
  EXPECT_EQ(*lp, -std::numeric_limits<double>::infinity());

  const Vector diag_p = primal->MarginalDiagonal();
  const Vector diag_d = dual->MarginalDiagonal();
  for (int i = 0; i < n; ++i) EXPECT_NEAR(diag_p[i], diag_d[i], kTol);
  // Identical items have identical inclusion probability.
  EXPECT_NEAR(diag_d[0], diag_d[1], 1e-9);

  Rng master_p(3);
  Rng master_d(3);
  for (int t = 0; t < 100; ++t) {
    Rng fork_p = master_p.Fork();
    Rng fork_d = master_d.Fork();
    auto sp = primal->Sample(&fork_p);
    auto sd = dual->Sample(&fork_d);
    ASSERT_TRUE(sp.ok());
    ASSERT_TRUE(sd.ok());
    EXPECT_EQ(*sp, *sd) << "draw " << t;
  }
}

// ---------------------------------------------------------------------
// Extreme scales

TEST(DualEdgeCaseTest, ExtremeColumnScalesAgree) {
  // Column norms spanning 1e-150 .. 1e150: eigenvalues of L span
  // ~1e-300 .. ~1e300. e_1 stays finite; rank detection must agree and
  // the normalizer/marginals must match relatively.
  const int n = 12;
  Rng rng(47);
  Matrix v = testutil::RandomMatrix(n, 4, &rng);
  const double scales[4] = {1e150, 1.0, 1e-150, 0.5};
  for (int c = 0; c < 4; ++c) {
    for (int r = 0; r < n; ++r) v(r, c) *= scales[c];
  }
  auto f = LowRankFactor::Create(std::move(v));
  ASSERT_TRUE(f.ok());

  const int k = 1;  // e_1 = sum lambda ~ 1e300: finite, near the edge.
  auto primal = KDpp::Create(f->Materialize(), k);
  ASSERT_TRUE(primal.ok()) << primal.status().ToString();
  auto dual = KDpp::CreateDual(*f, k);
  ASSERT_TRUE(dual.ok()) << dual.status().ToString();
  const double lz_p = primal->LogNormalizer();
  const double lz_d = dual->LogNormalizer();
  EXPECT_NEAR(lz_p, lz_d, 1e-10 * std::fabs(lz_p));
  EXPECT_EQ(CountPositive(primal->eigenvalues()),
            CountPositive(dual->eigenvalues()));

  const Vector diag_p = primal->MarginalDiagonal();
  const Vector diag_d = dual->MarginalDiagonal();
  for (int i = 0; i < n; ++i) {
    const double scale = std::max(std::fabs(diag_p[i]), 1e-300);
    EXPECT_LE(std::fabs(diag_p[i] - diag_d[i]) / scale, 1e-8)
        << "item " << i;
  }

  // With k = 2 the intermediate e_2 ~ 1e600 overflows the ESP table:
  // both representations must reject identically rather than sample
  // from a corrupted table.
  auto primal_of = KDpp::Create(f->Materialize(), 2);
  auto dual_of = KDpp::CreateDual(*f, 2);
  EXPECT_EQ(primal_of.status().code(), StatusCode::kNumericalError);
  EXPECT_EQ(dual_of.status().code(), StatusCode::kNumericalError);
}

TEST(DualEdgeCaseTest, TinyScalesSampleIdentically) {
  // All-tiny factors: column scale 1e-60 puts every eigenvalue near
  // 1e-120 and the k=2 normalizer near 1e-240, far below anything the
  // serving stack produces. The phase-1 walk runs at that scale and the
  // two representations must still walk in lockstep. (1e-150 columns
  // would push kernel entries to the 1e-300 denormal boundary, where
  // the k=2 normalizer underflows to zero and — before that — the
  // primal QL iteration's relative convergence test underflows and
  // Create fails: primal-representation limits, not properties the dual
  // can be differentially tested against. The mixed-scale test above
  // covers the 1e-150/1e150 columns themselves.)
  const int n = 10;
  Rng rng(53);
  Matrix v = testutil::RandomMatrix(n, 3, &rng);
  for (int c = 0; c < 3; ++c) {
    for (int r = 0; r < n; ++r) v(r, c) *= 1e-60;
  }
  auto f = LowRankFactor::Create(std::move(v));
  ASSERT_TRUE(f.ok());
  auto primal = KDpp::Create(f->Materialize(), 2);
  ASSERT_TRUE(primal.ok()) << primal.status().ToString();
  auto dual = KDpp::CreateDual(*f, 2);
  ASSERT_TRUE(dual.ok()) << dual.status().ToString();
  Rng master_p(11);
  Rng master_d(11);
  for (int t = 0; t < 50; ++t) {
    Rng fork_p = master_p.Fork();
    Rng fork_d = master_d.Fork();
    auto sp = primal->Sample(&fork_p);
    auto sd = dual->Sample(&fork_d);
    ASSERT_TRUE(sp.ok()) << sp.status().ToString();
    ASSERT_TRUE(sd.ok()) << sd.status().ToString();
    EXPECT_EQ(*sp, *sd) << "draw " << t;
  }
}

TEST(DualEdgeCaseTest, WideFactorAgreesAndSamplesIdentically) {
  // d > n: more embedding dimensions than items. C is d x d with d - n
  // structural zeros beyond L's spectrum; the Dpp sampler must skip
  // those (consuming nothing) so both representations still burn
  // exactly n phase-1 draws, and the k-DPP walk must normalize and
  // sample identically.
  const int n = 5;
  const int d = 9;
  const LowRankFactor f = MakeFactor(n, d, 83);
  auto dual_eig = f.EigenDual();
  ASSERT_TRUE(dual_eig.ok());
  EXPECT_LE(CountPositive(dual_eig->eigenvalues), n);

  auto primal_dpp = Dpp::Create(f.Materialize());
  auto dual_dpp = Dpp::CreateDual(f);
  ASSERT_TRUE(primal_dpp.ok());
  ASSERT_TRUE(dual_dpp.ok());
  EXPECT_NEAR(primal_dpp->LogNormalizer(), dual_dpp->LogNormalizer(),
              kTol * std::max(1.0, std::fabs(primal_dpp->LogNormalizer())));
  Rng master_p(29);
  Rng master_d(29);
  for (int t = 0; t < 100; ++t) {
    Rng fork_p = master_p.Fork();
    Rng fork_d = master_d.Fork();
    auto sp = primal_dpp->Sample(&fork_p);
    auto sd = dual_dpp->Sample(&fork_d);
    ASSERT_TRUE(sp.ok());
    ASSERT_TRUE(sd.ok());
    EXPECT_EQ(*sp, *sd) << "draw " << t;
  }

  const int k = 3;
  auto primal = KDpp::Create(f.Materialize(), k);
  auto dual = KDpp::CreateDual(f, k);
  ASSERT_TRUE(primal.ok());
  ASSERT_TRUE(dual.ok());
  EXPECT_NEAR(primal->LogNormalizer(), dual->LogNormalizer(),
              kTol * std::max(1.0, std::fabs(primal->LogNormalizer())));
  const Vector diag_p = primal->MarginalDiagonal();
  const Vector diag_d = dual->MarginalDiagonal();
  for (int i = 0; i < n; ++i) EXPECT_NEAR(diag_p[i], diag_d[i], kTol);
  Rng km_p(31);
  Rng km_d(31);
  for (int t = 0; t < 100; ++t) {
    Rng fork_p = km_p.Fork();
    Rng fork_d = km_d.Fork();
    auto sp = primal->Sample(&fork_p);
    auto sd = dual->Sample(&fork_d);
    ASSERT_TRUE(sp.ok()) << sp.status().ToString();
    ASSERT_TRUE(sd.ok()) << sd.status().ToString();
    EXPECT_EQ(*sp, *sd) << "draw " << t;
  }
}

// ---------------------------------------------------------------------
// Conditioning in the dual (the serving-path composition)

TEST(DualConditioningTest, PoolSelectionPlusQualityMatchesPrimal) {
  // Mirror RecommendationService::PrepareUser: catalog factor -> pool
  // row subset -> quality row scaling, all in the dual; against the
  // primal build that materializes and conditions the pool kernel.
  const int catalog = 40;
  const LowRankFactor f = MakeFactor(catalog, 6, 67);
  const std::vector<int> pool{2, 5, 7, 11, 12, 17, 20, 23, 24,
                              28, 30, 31, 33, 36, 37, 38, 39, 1};
  Vector quality(static_cast<int>(pool.size()));
  Rng rng(5);
  for (int i = 0; i < quality.size(); ++i) {
    quality[i] = std::exp(rng.Normal());
  }

  const LowRankFactor conditioned = f.SelectRows(pool).ScaleRows(quality);
  const Matrix primal_kernel =
      AssembleKernel(quality, f.Materialize().PrincipalSubmatrix(pool));

  const int k = 4;
  auto primal = KDpp::Create(primal_kernel, k);
  ASSERT_TRUE(primal.ok());
  auto dual = KDpp::CreateDual(conditioned, k);
  ASSERT_TRUE(dual.ok());
  EXPECT_NEAR(primal->LogNormalizer(), dual->LogNormalizer(),
              kTol * std::max(1.0, std::fabs(primal->LogNormalizer())));
  const Vector diag_p = primal->MarginalDiagonal();
  const Vector diag_d = dual->MarginalDiagonal();
  for (int i = 0; i < diag_p.size(); ++i) {
    EXPECT_NEAR(diag_p[i], diag_d[i], kTol);
  }
  Rng master_p(23);
  Rng master_d(23);
  for (int t = 0; t < 100; ++t) {
    Rng fork_p = master_p.Fork();
    Rng fork_d = master_d.Fork();
    auto sp = primal->Sample(&fork_p);
    auto sd = dual->Sample(&fork_d);
    ASSERT_TRUE(sp.ok());
    ASSERT_TRUE(sd.ok());
    EXPECT_EQ(*sp, *sd) << "draw " << t;
  }
}

TEST(DualConditioningTest, ScaleRowsFactorsAssembleKernel) {
  Rng rng(71);
  auto factor = LowRankFactor::Create(testutil::RandomMatrix(7, 3, &rng));
  ASSERT_TRUE(factor.ok());
  Vector q(7);
  for (int i = 0; i < 7; ++i) q[i] = 0.1 + 0.3 * i;
  const Matrix direct = AssembleKernel(q, factor->Materialize());
  const Matrix via_factor = factor->ScaleRows(q).Materialize();
  for (int i = 0; i < 7; ++i) {
    for (int j = 0; j < 7; ++j) {
      EXPECT_NEAR(via_factor(i, j), direct(i, j),
                  1e-12 * std::max(1.0, std::fabs(direct(i, j))));
    }
  }
}

// ---------------------------------------------------------------------
// Error paths

TEST(DualErrorTest, CreateDualValidatesArguments) {
  const LowRankFactor f = MakeFactor(6, 3, 3);
  EXPECT_FALSE(KDpp::CreateDual(f, 0).ok());
  EXPECT_FALSE(KDpp::CreateDual(f, 7).ok());
  // k above the factor's rank bound cannot be normalized.
  EXPECT_EQ(KDpp::CreateDual(f, 4).status().code(),
            StatusCode::kNumericalError);
  auto kdpp = KDpp::CreateDual(f, 2);
  ASSERT_TRUE(kdpp.ok());
  EXPECT_FALSE(kdpp->Sample(nullptr).ok());
}

}  // namespace
}  // namespace lkpdpp
