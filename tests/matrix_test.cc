// Tests for src/linalg/matrix: dense vector/matrix arithmetic.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/matrix.h"
#include "testing_util.h"

namespace lkpdpp {
namespace {

using testutil::RandomMatrix;

TEST(VectorTest, ConstructionAndAccess) {
  Vector v(3, 2.5);
  EXPECT_EQ(v.size(), 3);
  EXPECT_DOUBLE_EQ(v[0], 2.5);
  v[1] = -1.0;
  EXPECT_DOUBLE_EQ(v.at(1), -1.0);
}

TEST(VectorTest, InitializerList) {
  Vector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(VectorTest, Arithmetic) {
  Vector a{1, 2, 3};
  Vector b{4, 5, 6};
  Vector c = a + b;
  EXPECT_DOUBLE_EQ(c[0], 5.0);
  c -= a;
  EXPECT_DOUBLE_EQ(c[2], 6.0);
  c *= 2.0;
  EXPECT_DOUBLE_EQ(c[1], 10.0);
}

TEST(VectorTest, Reductions) {
  Vector v{3.0, -4.0, 0.0};
  EXPECT_DOUBLE_EQ(v.Sum(), -1.0);
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.Max(), 3.0);
  EXPECT_DOUBLE_EQ(v.Min(), -4.0);
}

TEST(VectorTest, DotProduct) {
  Vector a{1, 2, 3};
  Vector b{4, -5, 6};
  EXPECT_DOUBLE_EQ(a.Dot(b), 4 - 10 + 18);
}

TEST(VectorTest, AllFiniteDetectsNan) {
  Vector v{1.0, 2.0};
  EXPECT_TRUE(v.AllFinite());
  v[1] = std::nan("");
  EXPECT_FALSE(v.AllFinite());
}

TEST(MatrixTest, ConstructionIdentityDiagonal) {
  Matrix i = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  Matrix d = Matrix::Diagonal(Vector{2, 3});
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, OuterProduct) {
  Matrix o = Matrix::Outer(Vector{1, 2}, Vector{3, 4, 5});
  EXPECT_EQ(o.rows(), 2);
  EXPECT_EQ(o.cols(), 3);
  EXPECT_DOUBLE_EQ(o(1, 2), 10.0);
}

TEST(MatrixTest, RowColDiagAccessors) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_DOUBLE_EQ(m.Row(1)[2], 6.0);
  EXPECT_DOUBLE_EQ(m.Col(1)[0], 2.0);
  Matrix sq{{1, 2}, {3, 4}};
  Vector d = sq.Diag();
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[1], 4.0);
}

TEST(MatrixTest, SetRowSetCol) {
  Matrix m(2, 2);
  m.SetRow(0, Vector{1, 2});
  m.SetCol(1, Vector{7, 8});
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 8.0);
}

TEST(MatrixTest, Submatrix) {
  Matrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  Matrix s = m.Submatrix({0, 2}, {1});
  EXPECT_EQ(s.rows(), 2);
  EXPECT_EQ(s.cols(), 1);
  EXPECT_DOUBLE_EQ(s(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(s(1, 0), 8.0);
}

TEST(MatrixTest, PrincipalSubmatrixPreservesSymmetry) {
  Matrix m{{1, 2, 3}, {2, 5, 6}, {3, 6, 9}};
  Matrix s = m.PrincipalSubmatrix({0, 2});
  EXPECT_TRUE(s.IsSymmetric());
  EXPECT_DOUBLE_EQ(s(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 9.0);
}

TEST(MatrixTest, Transpose) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, TraceFrobeniusMaxAbs) {
  Matrix m{{1, -2}, {3, 4}};
  EXPECT_DOUBLE_EQ(m.Trace(), 5.0);
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), std::sqrt(1 + 4 + 9 + 16));
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 4.0);
}

TEST(MatrixTest, AddDiagonal) {
  Matrix m = Matrix::Identity(2);
  m.AddDiagonal(0.5);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
}

TEST(MatrixTest, SymmetrizeAveragesOffDiagonal) {
  Matrix m{{1, 3}, {5, 2}};
  m.Symmetrize();
  EXPECT_DOUBLE_EQ(m(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 4.0);
  EXPECT_TRUE(m.IsSymmetric());
}

TEST(MatrixTest, IsSymmetricTolerance) {
  Matrix m{{1.0, 2.0}, {2.0 + 1e-12, 1.0}};
  EXPECT_TRUE(m.IsSymmetric(1e-10));
  EXPECT_FALSE(m.IsSymmetric(1e-14));
}

TEST(MatMulTest, KnownProduct) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatMulTest, IdentityIsNeutral) {
  Rng rng(3);
  Matrix a = RandomMatrix(4, 4, &rng);
  Matrix prod = MatMul(a, Matrix::Identity(4));
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_NEAR(prod(r, c), a(r, c), 1e-12);
    }
  }
}

TEST(MatMulTest, TransAEqualsExplicitTranspose) {
  Rng rng(5);
  Matrix a = RandomMatrix(4, 3, &rng);
  Matrix b = RandomMatrix(4, 5, &rng);
  Matrix expected = MatMul(a.Transpose(), b);
  Matrix got = MatMulTransA(a, b);
  for (int r = 0; r < got.rows(); ++r) {
    for (int c = 0; c < got.cols(); ++c) {
      EXPECT_NEAR(got(r, c), expected(r, c), 1e-12);
    }
  }
}

TEST(MatMulTest, TransBEqualsExplicitTranspose) {
  Rng rng(7);
  Matrix a = RandomMatrix(3, 4, &rng);
  Matrix b = RandomMatrix(5, 4, &rng);
  Matrix expected = MatMul(a, b.Transpose());
  Matrix got = MatMulTransB(a, b);
  for (int r = 0; r < got.rows(); ++r) {
    for (int c = 0; c < got.cols(); ++c) {
      EXPECT_NEAR(got(r, c), expected(r, c), 1e-12);
    }
  }
}

TEST(MatVecTest, MatchesMatMul) {
  Rng rng(9);
  Matrix a = RandomMatrix(4, 3, &rng);
  Vector x{1.0, -2.0, 0.5};
  Vector y = MatVec(a, x);
  for (int r = 0; r < 4; ++r) {
    double expected = 0.0;
    for (int c = 0; c < 3; ++c) expected += a(r, c) * x[c];
    EXPECT_NEAR(y[r], expected, 1e-12);
  }
}

TEST(MatVecTest, TransAMatchesTranspose) {
  Rng rng(11);
  Matrix a = RandomMatrix(4, 3, &rng);
  Vector x{1.0, 2.0, 3.0, 4.0};
  Vector got = MatVecTransA(a, x);
  Vector expected = MatVec(a.Transpose(), x);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(got[i], expected[i], 1e-12);
}

TEST(HadamardTest, Elementwise) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{2, 0}, {1, -1}};
  Matrix h = Hadamard(a, b);
  EXPECT_DOUBLE_EQ(h(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(h(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(h(1, 1), -4.0);
}

// Property sweep: (AB)C == A(BC) across shapes.
class MatMulAssocTest : public ::testing::TestWithParam<int> {};

TEST_P(MatMulAssocTest, Associativity) {
  Rng rng(100 + GetParam());
  const int n = GetParam();
  Matrix a = RandomMatrix(n, n + 1, &rng);
  Matrix b = RandomMatrix(n + 1, n + 2, &rng);
  Matrix c = RandomMatrix(n + 2, n, &rng);
  Matrix left = MatMul(MatMul(a, b), c);
  Matrix right = MatMul(a, MatMul(b, c));
  EXPECT_LT((left - right).MaxAbs(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatMulAssocTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// Property sweep: transpose is an involution and (AB)^T = B^T A^T.
class TransposeLawTest : public ::testing::TestWithParam<int> {};

TEST_P(TransposeLawTest, ProductTranspose) {
  Rng rng(200 + GetParam());
  const int n = GetParam();
  Matrix a = RandomMatrix(n, n + 2, &rng);
  Matrix b = RandomMatrix(n + 2, n + 1, &rng);
  Matrix lhs = MatMul(a, b).Transpose();
  Matrix rhs = MatMul(b.Transpose(), a.Transpose());
  EXPECT_LT((lhs - rhs).MaxAbs(), 1e-10);
  EXPECT_LT((a.Transpose().Transpose() - a).MaxAbs(), 1e-15);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TransposeLawTest,
                         ::testing::Values(1, 2, 4, 7));

// Unblocked reference products for validating the cache-blocked GEMM
// paths at sizes that straddle the internal tile edge (64).
Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < a.cols(); ++k) {
      for (int j = 0; j < b.cols(); ++j) out(i, j) += a(i, k) * b(k, j);
    }
  }
  return out;
}

class BlockedGemmTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BlockedGemmTest, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(900 + m + 7 * k + 31 * n);
  Matrix a = RandomMatrix(m, k, &rng);
  Matrix b = RandomMatrix(k, n, &rng);
  EXPECT_LT((MatMul(a, b) - NaiveMatMul(a, b)).MaxAbs(), 1e-10);

  Matrix at = a.Transpose();
  EXPECT_LT((MatMulTransA(at, b) - NaiveMatMul(a, b)).MaxAbs(), 1e-10);

  Matrix bt = b.Transpose();
  EXPECT_LT((MatMulTransB(a, bt) - NaiveMatMul(a, b)).MaxAbs(), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    TileStraddlingShapes, BlockedGemmTest,
    ::testing::Values(std::tuple{3, 5, 2},        // far below one tile
                      std::tuple{64, 64, 64},     // exactly one tile
                      std::tuple{65, 64, 63},     // straddles on m only
                      std::tuple{65, 130, 47},    // ragged multi-tile k
                      std::tuple{128, 65, 129},   // straddles everywhere
                      std::tuple{1, 200, 1}));    // degenerate slivers

TEST(BlockedGemmTest, BlockingPreservesBitExactResults) {
  // The tiled loops must visit the reduction index in naive order, so
  // results are bit-identical to the unblocked loops (golden baselines
  // depend on this).
  Rng rng(901);
  Matrix a = RandomMatrix(70, 90, &rng);
  Matrix b = RandomMatrix(90, 80, &rng);
  const Matrix blocked = MatMul(a, b);
  const Matrix naive = NaiveMatMul(a, b);
  for (int i = 0; i < blocked.rows(); ++i) {
    for (int j = 0; j < blocked.cols(); ++j) {
      EXPECT_EQ(blocked(i, j), naive(i, j)) << "(" << i << "," << j << ")";
    }
  }
}

}  // namespace
}  // namespace lkpdpp
