// Tests for the LkP criterion: losses, closed-form gradients (checked
// against central finite differences), and input validation.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/lkp.h"
#include "kernels/gaussian_embedding.h"
#include "testing_util.h"

namespace lkpdpp {
namespace {

// Unit-diagonal correlation-like PSD matrix of full rank.
Matrix RandomDiversityKernel(int m, Rng* rng) {
  return testutil::RandomCorrelationKernel(m, rng);
}

Vector RandomScores(int m, Rng* rng) {
  Vector s(m);
  for (int i = 0; i < m; ++i) s[i] = rng->Normal(0.0, 0.8);
  return s;
}

double LossAt(const LkpCriterion& crit, const Vector& scores,
              const Matrix& diversity, int num_pos) {
  CriterionInput in;
  in.scores = scores;
  in.num_pos = num_pos;
  in.diversity = &diversity;
  auto out = crit.Evaluate(in);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out->loss;
}

struct GradCase {
  LkpMode mode;
  QualityTransform quality;
  int k;
  int n;
};

class LkpGradientTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(LkpGradientTest, ScoreGradientMatchesFiniteDifference) {
  const GradCase gc = GetParam();
  Rng rng(900 + gc.k * 7 + gc.n);
  const int m = gc.k + gc.n;
  const Matrix diversity = RandomDiversityKernel(m, &rng);
  const Vector scores = RandomScores(m, &rng);

  LkpConfig cfg;
  cfg.mode = gc.mode;
  cfg.quality = gc.quality;
  cfg.jitter = 0.0;  // Exact gradients need an unjittered objective.
  LkpCriterion crit(cfg);

  CriterionInput in;
  in.scores = scores;
  in.num_pos = gc.k;
  in.diversity = &diversity;
  auto out = crit.Evaluate(in);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  const double h = 1e-5;
  for (int i = 0; i < m; ++i) {
    Vector plus = scores, minus = scores;
    plus[i] += h;
    minus[i] -= h;
    const double fd =
        (LossAt(crit, plus, diversity, gc.k) -
         LossAt(crit, minus, diversity, gc.k)) /
        (2.0 * h);
    EXPECT_NEAR(out->dscore[i], fd,
                2e-4 * std::max(1.0, std::fabs(fd)))
        << "score " << i << " mode " << LkpModeName(gc.mode);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LkpGradientTest,
    ::testing::Values(
        GradCase{LkpMode::kPositiveOnly, QualityTransform::kExp, 3, 2},
        GradCase{LkpMode::kPositiveOnly, QualityTransform::kExp, 5, 5},
        GradCase{LkpMode::kPositiveOnly, QualityTransform::kSigmoid, 4, 3},
        GradCase{LkpMode::kPositiveOnly, QualityTransform::kExp, 2, 6},
        GradCase{LkpMode::kNegativeAndPositive, QualityTransform::kExp, 3,
                 3},
        GradCase{LkpMode::kNegativeAndPositive, QualityTransform::kExp, 5,
                 5},
        GradCase{LkpMode::kNegativeAndPositive,
                 QualityTransform::kSigmoid, 4, 4}));

TEST(LkpKernelGradientTest, KernelGradientMatchesFiniteDifference) {
  Rng rng(42);
  const int k = 3, n = 3, m = k + n;
  Matrix diversity = RandomDiversityKernel(m, &rng);
  const Vector scores = RandomScores(m, &rng);

  LkpConfig cfg;
  cfg.mode = LkpMode::kNegativeAndPositive;
  cfg.jitter = 0.0;
  LkpCriterion crit(cfg);

  CriterionInput in;
  in.scores = scores;
  in.num_pos = k;
  in.diversity = &diversity;
  in.want_kernel_grad = true;
  auto out = crit.Evaluate(in);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->dkernel.rows(), m);

  const double h = 1e-6;
  for (int i = 0; i < m; ++i) {
    for (int j = i + 1; j < m; ++j) {
      Matrix plus = diversity, minus = diversity;
      plus(i, j) += h;
      plus(j, i) += h;
      minus(i, j) -= h;
      minus(j, i) -= h;
      const double fd = (LossAt(crit, scores, plus, k) -
                         LossAt(crit, scores, minus, k)) /
                        (2.0 * h);
      const double expected = out->dkernel(i, j) + out->dkernel(j, i);
      EXPECT_NEAR(fd, expected, 2e-4 * std::max(1.0, std::fabs(expected)))
          << "kernel entry (" << i << "," << j << ")";
    }
  }
}

TEST(LkpValidationTest, RequiresDiversityKernel) {
  LkpCriterion crit(LkpConfig{});
  CriterionInput in;
  in.scores = Vector{1, 2, 3, 4};
  in.num_pos = 2;
  EXPECT_EQ(crit.Evaluate(in).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LkpValidationTest, RejectsKernelShapeMismatch) {
  LkpCriterion crit(LkpConfig{});
  Matrix wrong = Matrix::Identity(3);
  CriterionInput in;
  in.scores = Vector{1, 2, 3, 4};
  in.num_pos = 2;
  in.diversity = &wrong;
  EXPECT_FALSE(crit.Evaluate(in).ok());
}

TEST(LkpValidationTest, NpsRequiresEqualKandN) {
  LkpConfig cfg;
  cfg.mode = LkpMode::kNegativeAndPositive;
  LkpCriterion crit(cfg);
  Matrix diversity = Matrix::Identity(5);
  CriterionInput in;
  in.scores = Vector{1, 2, 3, 4, 5};
  in.num_pos = 2;  // n = 3 != k = 2.
  in.diversity = &diversity;
  EXPECT_EQ(crit.Evaluate(in).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LkpValidationTest, RejectsDegenerateNumPos) {
  LkpConfig cfg;
  cfg.mode = LkpMode::kPositiveOnly;
  LkpCriterion crit(cfg);
  Matrix diversity = Matrix::Identity(4);
  CriterionInput in;
  in.scores = Vector{1, 2, 3, 4};
  in.diversity = &diversity;
  in.num_pos = 0;
  EXPECT_FALSE(crit.Evaluate(in).ok());
  in.num_pos = 4;  // No negatives.
  EXPECT_FALSE(crit.Evaluate(in).ok());
}

TEST(LkpValidationTest, RejectsNonFiniteScores) {
  LkpCriterion crit(LkpConfig{.mode = LkpMode::kPositiveOnly});
  Matrix diversity = Matrix::Identity(4);
  CriterionInput in;
  in.scores = Vector{1, std::nan(""), 3, 4};
  in.num_pos = 2;
  in.diversity = &diversity;
  EXPECT_EQ(crit.Evaluate(in).status().code(),
            StatusCode::kNumericalError);
}

TEST(LkpBehaviorTest, RaisingTargetScoresLowersLoss) {
  Rng rng(77);
  const int k = 3, m = 6;
  const Matrix diversity = RandomDiversityKernel(m, &rng);
  LkpCriterion crit(LkpConfig{.mode = LkpMode::kPositiveOnly});

  Vector low(m, 0.0);
  Vector high = low;
  for (int i = 0; i < k; ++i) high[i] = 2.0;
  EXPECT_LT(LossAt(crit, high, diversity, k),
            LossAt(crit, low, diversity, k));
}

TEST(LkpBehaviorTest, NpsPenalizesStrongNegatives) {
  Rng rng(78);
  const int k = 3, m = 6;
  const Matrix diversity = RandomDiversityKernel(m, &rng);
  LkpCriterion crit(
      LkpConfig{.mode = LkpMode::kNegativeAndPositive});

  Vector balanced(m, 0.0);
  Vector neg_heavy = balanced;
  for (int i = k; i < m; ++i) neg_heavy[i] = 2.5;
  EXPECT_GT(LossAt(crit, neg_heavy, diversity, k),
            LossAt(crit, balanced, diversity, k));
}

TEST(LkpBehaviorTest, GradientPushesTargetsUpNegativesDown) {
  Rng rng(79);
  const int k = 3, m = 6;
  const Matrix diversity = RandomDiversityKernel(m, &rng);
  LkpCriterion crit(
      LkpConfig{.mode = LkpMode::kNegativeAndPositive});
  CriterionInput in;
  in.scores = Vector(m, 0.0);
  in.num_pos = k;
  in.diversity = &diversity;
  auto out = crit.Evaluate(in);
  ASSERT_TRUE(out.ok());
  // At a symmetric starting point, descent (-grad) should raise target
  // scores and lower negative scores on average.
  double pos_grad = 0.0, neg_grad = 0.0;
  for (int i = 0; i < k; ++i) pos_grad += out->dscore[i];
  for (int i = k; i < m; ++i) neg_grad += out->dscore[i];
  EXPECT_LT(pos_grad, 0.0);
  EXPECT_GT(neg_grad, 0.0);
}

TEST(LkpBehaviorTest, DiverseTargetsGetHigherProbability) {
  // Two instances with identical scores; one target set spans near-
  // orthogonal diversity directions, the other is nearly collinear.
  const int k = 2, m = 4;
  Vector scores{1.0, 1.0, 0.0, 0.0};

  Matrix diverse = Matrix::Identity(m);
  Matrix monotonous = Matrix::Identity(m);
  monotonous(0, 1) = monotonous(1, 0) = 0.95;

  LkpCriterion crit(LkpConfig{.mode = LkpMode::kPositiveOnly});
  auto p_div = crit.TargetSubsetProbability(scores, diverse, k);
  auto p_mono = crit.TargetSubsetProbability(scores, monotonous, k);
  ASSERT_TRUE(p_div.ok());
  ASSERT_TRUE(p_mono.ok());
  EXPECT_GT(*p_div, *p_mono);
}

TEST(LkpBehaviorTest, ExtremeScoresRemainFinite) {
  Rng rng(80);
  const int k = 3, m = 6;
  const Matrix diversity = RandomDiversityKernel(m, &rng);
  LkpCriterion crit(
      LkpConfig{.mode = LkpMode::kNegativeAndPositive});
  CriterionInput in;
  in.scores = Vector{50.0, -50.0, 40.0, -45.0, 55.0, -60.0};
  in.num_pos = k;
  in.diversity = &diversity;
  auto out = crit.Evaluate(in);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(std::isfinite(out->loss));
  EXPECT_TRUE(out->dscore.AllFinite());
}

TEST(LkpBehaviorTest, NameEncodesModeAndQuality) {
  EXPECT_EQ(LkpCriterion(LkpConfig{.mode = LkpMode::kPositiveOnly,
                                   .quality = QualityTransform::kExp})
                .name(),
            "LkP-PS(exp)");
  EXPECT_EQ(
      LkpCriterion(LkpConfig{.mode = LkpMode::kNegativeAndPositive,
                             .quality = QualityTransform::kSigmoid})
          .name(),
      "LkP-NPS(sigmoid)");
}

TEST(LkpBehaviorTest, NeedsDiversityKernel) {
  EXPECT_TRUE(LkpCriterion(LkpConfig{}).NeedsDiversityKernel());
}

}  // namespace
}  // namespace lkpdpp
