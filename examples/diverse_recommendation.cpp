// Diverse recommendation: the workload the paper's introduction
// motivates. A pairwise criterion (BPR) concentrates a user's list on
// their dominant categories; LkP's set-level objective balances
// relevance with category coverage. This example trains both on the same
// data and compares per-list diversity.
//
//   ./build/examples/diverse_recommendation

#include <algorithm>
#include <cstdio>
#include <set>

#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "exp/runner.h"

namespace {

double MeanCoverage(lkpdpp::RecModel* model, const lkpdpp::Dataset& ds,
                    lkpdpp::Evaluator* evaluator, int n) {
  double total = 0.0;
  int count = 0;
  for (int u : ds.EvaluableUsers()) {
    const std::vector<int> top = evaluator->TopNForUser(model, u, n);
    total += lkpdpp::CategoryCoverageAtN(top, n, ds);
    ++count;
  }
  return count > 0 ? total / count : 0.0;
}

}  // namespace

int main() {
  using namespace lkpdpp;
  SyntheticConfig cfg;
  cfg.name = "diverse";
  cfg.num_users = 150;
  cfg.num_items = 180;
  cfg.num_categories = 16;
  cfg.num_events = 18000;
  // Focused users: strong dominant-category preference, the regime where
  // diversification matters most.
  cfg.user_affinity_concentration = 0.2;
  auto dataset = GenerateSyntheticDataset(cfg);
  dataset.status().CheckOK();

  ExperimentRunner runner(&*dataset);
  Evaluator evaluator(&*dataset);

  struct Contender {
    const char* label;
    CriterionKind criterion;
  };
  std::printf("%-8s %10s %10s %10s %10s\n", "method", "Re@10", "Nd@10",
              "CC@10", "F@10");
  double cc[2] = {0.0, 0.0};
  double nd[2] = {0.0, 0.0};
  int idx = 0;
  for (const Contender& c : {Contender{"BPR", CriterionKind::kBpr},
                             Contender{"LkP", CriterionKind::kLkp}}) {
    ExperimentSpec spec;
    spec.model = ModelKind::kGcn;
    spec.criterion = c.criterion;
    spec.lkp_mode = LkpMode::kNegativeAndPositive;
    spec.epochs = 30;
    std::unique_ptr<RecModel> model;
    auto result = runner.RunAndKeepModel(spec, &model);
    result.status().CheckOK();
    const MetricSet& m = result->test_metrics.at(10);
    std::printf("%-8s %10.4f %10.4f %10.4f %10.4f\n", c.label, m.recall,
                m.ndcg, m.category_coverage, m.f_score);

    // Per-list coverage including items outside the test set — the
    // user-facing notion of a "varied" page of recommendations.
    std::printf("         mean top-10 category coverage: %.4f\n",
                MeanCoverage(model.get(), *dataset, &evaluator, 10));
    cc[idx] = m.category_coverage;
    nd[idx] = m.ndcg;
    ++idx;
  }
  std::printf("\nOn this draw %s leads relevance (Nd@10 %.4f vs %.4f) and "
              "%s leads coverage (CC@10 %.4f vs %.4f) — the "
              "relevance/diversity balance Figure 1 of the paper "
              "illustrates. Re-seed the generator to explore the "
              "trade-off surface.\n",
              nd[1] >= nd[0] ? "LkP" : "BPR", std::max(nd[0], nd[1]),
              std::min(nd[0], nd[1]), cc[1] >= cc[0] ? "LkP" : "BPR",
              std::max(cc[0], cc[1]), std::min(cc[0], cc[1]));
  return 0;
}
