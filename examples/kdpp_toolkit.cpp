// k-DPP toolkit: using the probabilistic core directly, outside any
// recommender. Builds a quality x diversity kernel over a small catalog,
// inspects exact subset probabilities, draws exact k-DPP samples, and
// verifies the marginal kernel — the machinery behind Eq. 4-6 of the
// paper, exposed as a standalone library.
//
//   ./build/examples/kdpp_toolkit

#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "core/kdpp.h"
#include "kernels/gaussian_embedding.h"
#include "kernels/quality_diversity.h"

int main() {
  using namespace lkpdpp;

  // A toy catalog of 8 items in 2D feature space: two tight clusters and
  // two outliers, with varying quality.
  Matrix features{{0.0, 0.0}, {0.1, 0.0},  {0.0, 0.1},  {2.0, 2.0},
                  {2.1, 2.0}, {-2.0, 1.0}, {1.0, -2.0}, {0.5, 0.5}};
  Vector scores{1.2, 1.1, 1.0, 0.9, 1.3, 0.6, 0.8, 1.0};

  const Matrix diversity = GaussianKernel(features, /*sigma=*/1.0);
  const Vector quality = ApplyQuality(scores, QualityTransform::kExp);
  const Matrix kernel = AssembleKernel(quality, diversity);

  const int k = 3;
  auto kdpp = KDpp::Create(kernel, k);
  kdpp.status().CheckOK();
  std::printf("3-DPP over 8 items, log Z_3 = %.4f\n",
              kdpp->LogNormalizer());

  // Exact probabilities: print the most and least likely triples.
  auto all = kdpp->EnumerateProbabilities();
  all.status().CheckOK();
  std::sort(all->begin(), all->end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  auto show = [&](size_t idx) {
    const auto& [subset, p] = (*all)[idx];
    std::printf("  {%d, %d, %d}  P = %.4f\n", subset[0], subset[1],
                subset[2], p);
  };
  std::printf("most likely triples (diverse, high-quality):\n");
  show(0);
  show(1);
  std::printf("least likely triples (clustered items repel):\n");
  show(all->size() - 2);
  show(all->size() - 1);

  // Exact sampling and empirical marginals vs the marginal kernel.
  Rng rng(42);
  Vector freq(8);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    auto s = kdpp->Sample(&rng);
    s.status().CheckOK();
    for (int i : *s) freq[i] += 1.0 / trials;
  }
  const Matrix marginal = kdpp->MarginalKernel();
  std::printf("\nitem   P(i in S) exact   empirical (%d samples)\n",
              trials);
  for (int i = 0; i < 8; ++i) {
    std::printf("%4d %17.4f %12.4f\n", i, marginal(i, i), freq[i]);
  }
  std::printf("marginal kernel trace = %.4f (must equal k = %d)\n",
              marginal.Trace(), k);
  return 0;
}
