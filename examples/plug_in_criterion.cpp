// Plug-in criterion swap: the paper's generality claim (Table IV).
//
// NeuMF ships with a BCE objective. Because lkpdpp models expose scores
// through the RankingCriterion interface, upgrading NeuMF to LkP is a
// one-line change to the experiment spec — no model code is touched.
// This example runs NeuMF with its native objective, then with LkP_PS
// and LkP_NPS, and prints the improvement rows the way Table IV does.
//
//   ./build/examples/plug_in_criterion

#include <cstdio>
#include <vector>

#include "data/synthetic.h"
#include "exp/runner.h"
#include "exp/table.h"

int main() {
  using namespace lkpdpp;
  auto dataset = GenerateSyntheticDataset(AnimeLikeConfig(0.8));
  dataset.status().CheckOK();
  ExperimentRunner runner(&*dataset);

  ExperimentSpec base;
  base.model = ModelKind::kNeuMf;
  base.epochs = 30;

  std::vector<TableRow> rows;

  // Native objective.
  ExperimentSpec native = base;
  native.criterion = CriterionKind::kBce;
  auto original = runner.Run(native);
  original.status().CheckOK();
  rows.push_back({"NeuMF", original->test_metrics});

  // The one-line rework: swap the criterion, keep everything else.
  for (LkpMode mode :
       {LkpMode::kPositiveOnly, LkpMode::kNegativeAndPositive}) {
    ExperimentSpec rework = base;
    rework.criterion = CriterionKind::kLkp;
    rework.lkp_mode = mode;
    auto result = runner.Run(rework);
    result.status().CheckOK();
    rows.push_back(
        {mode == LkpMode::kPositiveOnly ? "NeuMF_PS" : "NeuMF_NPS",
         result->test_metrics});
  }

  PrintMetricTable("NeuMF vs LkP-reworked NeuMF (anime-sim)", rows,
                   {5, 10, 20});

  std::printf("\nImprov(%%) of the better rework over the original:\n");
  for (int n : {5, 10, 20}) {
    const double base_f = rows[0].metrics.at(n).f_score;
    const double best_f = std::max(rows[1].metrics.at(n).f_score,
                                   rows[2].metrics.at(n).f_score);
    std::printf("  F@%-2d %+6.2f%%\n", n, ImprovementPercent(best_f, base_f));
  }
  return 0;
}
