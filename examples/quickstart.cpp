// Quickstart: train a recommender with the LkP criterion in ~40 lines.
//
// Generates a small synthetic implicit-feedback dataset, trains matrix
// factorization under LkP_NPS (the paper's strongest variant), and
// prints one user's category-annotated top-5 recommendations plus the
// test metrics.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "exp/runner.h"

int main() {
  using namespace lkpdpp;

  // 1. Data: a category-structured implicit-feedback world.
  SyntheticConfig data_cfg;
  data_cfg.name = "quickstart";
  data_cfg.num_users = 120;
  data_cfg.num_items = 150;
  data_cfg.num_categories = 12;
  data_cfg.num_events = 14000;
  auto dataset = GenerateSyntheticDataset(data_cfg);
  dataset.status().CheckOK();
  std::printf("dataset: %d users x %d items, %ld interactions, "
              "%d categories\n",
              dataset->num_users(), dataset->num_items(),
              dataset->num_interactions(), dataset->num_categories());

  // 2. Experiment: MF backbone + LkP_NPS criterion, k = n = 5.
  ExperimentRunner runner(&*dataset);
  ExperimentSpec spec;
  spec.model = ModelKind::kMf;
  spec.criterion = CriterionKind::kLkp;
  spec.lkp_mode = LkpMode::kNegativeAndPositive;
  spec.k = 5;
  spec.n = 5;
  spec.epochs = 30;

  std::unique_ptr<RecModel> model;
  auto result = runner.RunAndKeepModel(spec, &model);
  result.status().CheckOK();
  std::printf("trained %s with %s: best epoch %d (val NDCG@10 %.4f)\n",
              ModelKindName(spec.model), spec.VariantName().c_str(),
              result->best_epoch, result->best_validation_ndcg);

  // 3. Recommend: category-annotated top-5 for one user.
  Evaluator evaluator(&*dataset);
  const int user = dataset->EvaluableUsers().front();
  std::printf("\ntop-5 for user %d:\n", user);
  for (int item : evaluator.TopNForUser(model.get(), user, 5)) {
    std::printf("  item %-4d categories:", item);
    for (int c : dataset->ItemCategories(item)) std::printf(" %d", c);
    std::printf("\n");
  }

  // 4. Metrics.
  std::printf("\ntest metrics:\n");
  for (const auto& [n, m] : result->test_metrics) {
    std::printf("  @%-2d  Recall %.4f  NDCG %.4f  CC %.4f  F %.4f\n", n,
                m.recall, m.ndcg, m.category_coverage, m.f_score);
  }
  return 0;
}
