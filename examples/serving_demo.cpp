// Online serving: the batched, multi-threaded k-DPP recommendation
// engine layered on a trained model.
//
// Trains a small MF backbone with LkP, wraps it in a
// RecommendationService via the experiment runner (which shares its
// pre-learned diversity kernel), then serves batched top-k requests in
// both modes — greedy MAP rerank and exact k-DPP sampling — with
// tracing on, and prints the serving stats plus the process-wide
// Prometheus metrics dump. The accumulated per-stage trace is written
// as Chrome trace-event JSON, loadable in Perfetto (ui.perfetto.dev)
// or chrome://tracing.
//
//   ./build/examples/serving_demo
//   # then open serving_demo_trace.json in Perfetto

#include <cstdio>

#include "common/thread_pool.h"
#include "data/synthetic.h"
#include "exp/runner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/service.h"

int main() {
  using namespace lkpdpp;
  auto dataset = GenerateSyntheticDataset(BeautyLikeConfig(0.6));
  dataset.status().CheckOK();

  // Record per-stage spans for everything below (training included).
  obs::SetTraceEnabled(true);

  // One work-stealing pool serves both offline evaluation and online
  // requests.
  ThreadPool pool(ThreadPool::DefaultThreadCount());
  ExperimentRunner runner(&*dataset);
  runner.SetThreadPool(&pool);

  ExperimentSpec spec;
  spec.model = ModelKind::kMf;
  spec.criterion = CriterionKind::kLkp;
  spec.epochs = 18;
  std::unique_ptr<RecModel> model;
  auto trained = runner.RunAndKeepModel(spec, &model);
  trained.status().CheckOK();
  std::printf("trained %s with LkP: best val NDCG@10 %.4f (epoch %d)\n\n",
              model->name().c_str(), trained->best_validation_ndcg,
              trained->best_epoch);

  for (ServeMode mode : {ServeMode::kMapRerank, ServeMode::kSample}) {
    ServeConfig config;
    config.mode = mode;
    config.top_k = 5;
    config.pool_size = 25;
    auto service = runner.MakeService(model.get(), config);
    service.status().CheckOK();

    // Serve a few batches; users repeat across batches, so the kernel
    // cache absorbs the O(n^3) work after the first round.
    for (int round = 0; round < 3; ++round) {
      std::vector<RecRequest> batch;
      for (int u = 0; u < 24; ++u) {
        batch.push_back(RecRequest{u % dataset->num_users()});
      }
      auto responses = (*service)->HandleBatch(batch);
      responses.status().CheckOK();
      if (round == 0 && mode == ServeMode::kMapRerank) {
        const RecResponse& r = responses->front();
        std::printf("user %d, %s top-%d:", r.user, ServeModeName(mode),
                    config.top_k);
        for (int item : r.items) std::printf(" %d", item);
        std::printf("\n");
      }
    }
    const ServeStats stats = (*service)->Snapshot();
    std::printf("[%s] %s\n", ServeModeName(mode),
                stats.ToString().c_str());
  }

  // Everything the run just did, as Prometheus text exposition: serve
  // counters and latency histograms, cache hits/misses/builds, pool
  // queue depth, training batches — one registry, one dump.
  std::printf("\n--- metrics (Prometheus text exposition) ---\n%s",
              obs::MetricsRegistry::Global().DumpPrometheusText().c_str());

  const char* trace_path = "serving_demo_trace.json";
  if (obs::DumpChromeTrace(trace_path)) {
    std::printf("\nwrote %ld trace events to %s — open it in Perfetto "
                "(ui.perfetto.dev) or chrome://tracing.\n",
                obs::TotalRecordedEvents(), trace_path);
  }

  std::printf("\nsame pool, same kernels: the serving path is the "
              "architectural seam future sharding/async work plugs "
              "into.\n");
  return 0;
}
