// DPP MAP re-ranking: the related-work extension (Chen et al. 2018)
// layered on top of an LkP-trained model. Takes a trained recommender's
// top-30 candidate pool for each user and re-ranks it with fast greedy
// MAP inference over the quality x diversity kernel, comparing plain
// top-10 against the diversified top-10.
//
//   ./build/examples/map_rerank

#include <cstdio>

#include "core/map_inference.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "exp/runner.h"
#include "kernels/quality_diversity.h"

int main() {
  using namespace lkpdpp;
  auto dataset = GenerateSyntheticDataset(BeautyLikeConfig(0.8));
  dataset.status().CheckOK();
  ExperimentRunner runner(&*dataset);
  Evaluator evaluator(&*dataset);

  // Train a recommender with LkP_NPS.
  ExperimentSpec spec;
  spec.model = ModelKind::kMf;
  spec.criterion = CriterionKind::kLkp;
  spec.epochs = 30;
  std::unique_ptr<RecModel> model;
  auto result = runner.RunAndKeepModel(spec, &model);
  result.status().CheckOK();
  auto kernel = runner.GetDiversityKernel();
  kernel.status().CheckOK();

  const int pool_size = 30;
  const int top_n = 10;
  double cc_plain = 0.0;
  double cc_rerank = 0.0;
  double re_plain = 0.0;
  double re_rerank = 0.0;
  int users = 0;

  for (int u : dataset->EvaluableUsers()) {
    const std::vector<int> pool =
        evaluator.TopNForUser(model.get(), u, pool_size);
    if (static_cast<int>(pool.size()) < top_n) continue;

    // Plain list: first top_n of the pool.
    std::vector<int> plain(pool.begin(), pool.begin() + top_n);

    // Diversified list: greedy MAP over the pool's kernel.
    const Vector all_scores = model->ScoreAllItems(u);
    Vector scores(static_cast<int>(pool.size()));
    for (size_t i = 0; i < pool.size(); ++i) {
      scores[static_cast<int>(i)] = all_scores[pool[i]];
    }
    auto picked = DiversifiedRerank(
        ApplyQuality(scores, QualityTransform::kExp),
        (*kernel)->Submatrix(pool), top_n);
    if (!picked.ok()) continue;
    std::vector<int> reranked;
    for (int local : *picked) reranked.push_back(pool[local]);

    cc_plain += CategoryCoverageAtN(plain, top_n, *dataset);
    cc_rerank += CategoryCoverageAtN(reranked, top_n, *dataset);
    re_plain += RecallAtN(plain, dataset->TestItems(u), top_n);
    re_rerank += RecallAtN(reranked, dataset->TestItems(u), top_n);
    ++users;
  }
  if (users == 0) {
    std::printf("no evaluable users\n");
    return 0;
  }
  std::printf("averaged over %d users (top-%d from a %d-item pool):\n",
              users, top_n, pool_size);
  std::printf("  %-18s Recall %.4f   CategoryCoverage %.4f\n",
              "plain top-N", re_plain / users, cc_plain / users);
  std::printf("  %-18s Recall %.4f   CategoryCoverage %.4f\n",
              "greedy MAP rerank", re_rerank / users, cc_rerank / users);
  std::printf("\nMAP re-ranking trades recall for coverage on top of an "
              "already-trained model; LkP moves the same trade-off into "
              "training itself.\n");
  return 0;
}
