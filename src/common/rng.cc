#include "common/rng.h"

#include <cmath>
#include <cstdlib>
#include <iostream>

namespace lkpdpp {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (int i = 0; i < 4; ++i) s_[i] = SplitMix64(&sm);
  // Avoid the all-zero state, which is a fixed point of xoshiro.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int Rng::UniformInt(int n) {
  if (n <= 0) {
    std::cerr << "Rng::UniformInt requires n > 0, got " << n << std::endl;
    std::abort();
  }
  // Rejection sampling to remove modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t x;
  do {
    x = Next();
  } while (x >= limit);
  return static_cast<int>(x % un);
}

int Rng::UniformInt(int lo, int hi) { return lo + UniformInt(hi - lo + 1); }

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return UniformInt(static_cast<int>(weights.size()));
  double target = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0.0 ? weights[i] : 0.0);
    if (target < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int count) {
  if (count > n) {
    std::cerr << "SampleWithoutReplacement: count " << count << " > n " << n
              << std::endl;
    std::abort();
  }
  std::vector<int> out;
  out.reserve(count);
  if (count * 3 < n) {
    // Floyd's algorithm: O(count) expected draws, no O(n) allocation.
    std::vector<int> chosen;
    for (int j = n - count; j < n; ++j) {
      int t = UniformInt(j + 1);
      bool seen = false;
      for (int c : chosen) {
        if (c == t) {
          seen = true;
          break;
        }
      }
      chosen.push_back(seen ? j : t);
    }
    out = std::move(chosen);
  } else {
    std::vector<int> all(n);
    for (int i = 0; i < n; ++i) all[i] = i;
    Shuffle(&all);
    out.assign(all.begin(), all.begin() + count);
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xA3C59AC2ULL); }

}  // namespace lkpdpp
