#include "common/thread_pool.h"

#include <cstdlib>

#include "common/logging.h"
#include "obs/metrics.h"

namespace lkpdpp {

namespace {

// Process-wide pool metrics (all pools aggregate): how much work flows
// through, how often idle workers have to steal, and how deep the
// queues currently run. Handles are cached once; increments are
// lock-free sharded atomics (see obs/metrics.h).
obs::Counter* PoolTasksTotal() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("lkp_pool_tasks_total");
  return counter;
}
obs::Counter* PoolStealsTotal() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("lkp_pool_steals_total");
  return counter;
}
obs::Gauge* PoolQueueDepth() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("lkp_pool_queue_depth");
  return gauge;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lk(idle_mu_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  LKP_CHECK(task != nullptr);
  PoolTasksTotal()->Inc();
  PoolQueueDepth()->Add(1.0);
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    ++pending_;
  }
  const unsigned slot =
      next_queue_.fetch_add(1, std::memory_order_relaxed) %
      static_cast<unsigned>(workers_.size());
  Worker& w = *workers_[slot];
  {
    std::lock_guard<std::mutex> lk(w.mu);
    w.queue.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lk(idle_mu_);
    ++work_signal_;
  }
  idle_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lk(pending_mu_);
  pending_cv_.wait(lk, [this] { return pending_ == 0; });
}

void ThreadPool::RunTask(std::function<void()>* task) {
  (*task)();
  std::lock_guard<std::mutex> lk(pending_mu_);
  if (--pending_ == 0) pending_cv_.notify_all();
}

bool ThreadPool::PopOwn(int self, std::function<void()>* task) {
  Worker& w = *workers_[static_cast<size_t>(self)];
  {
    std::lock_guard<std::mutex> lk(w.mu);
    if (w.queue.empty()) return false;
    *task = std::move(w.queue.back());
    w.queue.pop_back();
  }
  PoolQueueDepth()->Add(-1.0);
  return true;
}

bool ThreadPool::Steal(int self, std::function<void()>* task) {
  const int n = static_cast<int>(workers_.size());
  // Scan victims starting just past ourselves so thieves spread out.
  for (int off = 1; off < n; ++off) {
    Worker& w = *workers_[static_cast<size_t>((self + off) % n)];
    {
      std::lock_guard<std::mutex> lk(w.mu);
      if (w.queue.empty()) continue;
      *task = std::move(w.queue.front());
      w.queue.pop_front();
    }
    PoolStealsTotal()->Inc();
    PoolQueueDepth()->Add(-1.0);
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(int self) {
  unsigned long seen_signal = 0;
  std::function<void()> task;
  while (true) {
    if (PopOwn(self, &task) || Steal(self, &task)) {
      RunTask(&task);
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lk(idle_mu_);
    if (stop_) return;
    if (work_signal_ == seen_signal) {
      idle_cv_.wait(lk, [this, seen_signal] {
        return stop_ || work_signal_ != seen_signal;
      });
      if (stop_) return;
    }
    seen_signal = work_signal_;
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  ParallelFor(n, /*grain=*/1, fn);
}

void ThreadPool::ParallelFor(int n, int grain,
                             const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  if (n <= grain) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  // Shared claim state over *chunks* of `grain` indices. Helpers that get
  // scheduled after the loop is drained see next >= chunks and return
  // immediately; the shared_ptr keeps the state alive past this call for
  // those stragglers.
  struct State {
    std::atomic<int> next{0};
    std::atomic<int> completed{0};
    int n;
    int grain;
    int chunks;
    std::function<void(int)> fn;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();
  state->n = n;
  state->grain = grain;
  state->chunks = (n + grain - 1) / grain;
  state->fn = fn;

  auto drain = [](const std::shared_ptr<State>& s) {
    int c;
    while ((c = s->next.fetch_add(1, std::memory_order_relaxed)) <
           s->chunks) {
      const int begin = c * s->grain;
      const int end = std::min(s->n, begin + s->grain);
      for (int i = begin; i < end; ++i) s->fn(i);
      if (s->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          s->chunks) {
        std::lock_guard<std::mutex> lk(s->mu);
        s->cv.notify_all();
      }
    }
  };

  const int helpers = std::min(num_threads(), state->chunks - 1);
  for (int h = 0; h < helpers; ++h) {
    Submit([state, drain] { drain(state); });
  }
  // The calling thread claims chunks too, so completion never depends
  // on the helpers actually being scheduled.
  drain(state);
  std::unique_lock<std::mutex> lk(state->mu);
  state->cv.wait(lk, [&state] {
    return state->completed.load(std::memory_order_acquire) ==
           state->chunks;
  });
}

int ThreadPool::GrainFor(int n, int min_grain) const {
  if (min_grain < 1) min_grain = 1;
  const int lanes = num_threads() + 1;  // Workers + the calling thread.
  const int grain = n / (lanes * 4);
  return grain > min_grain ? grain : min_grain;
}

int ThreadPool::DefaultThreadCount(int max_default) {
  const char* env = std::getenv("LKP_THREADS");
  if (env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw < 1) return 1;
  return hw < max_default ? hw : max_default;
}

}  // namespace lkpdpp
