// Status: lightweight error-handling type in the Arrow/RocksDB idiom.
//
// Library code in lkpdpp does not throw exceptions on expected failure
// paths; fallible operations return a Status (or Result<T>, see result.h)
// that callers must inspect. Exceptions are reserved for programmer errors
// surfaced by LKP_CHECK in debug contexts.

#ifndef LKPDPP_COMMON_STATUS_H_
#define LKPDPP_COMMON_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>

namespace lkpdpp {

/// Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kInternal = 6,
  kNumericalError = 7,  ///< Ill-conditioned / non-PSD / non-finite values.
  kIOError = 8,
};

/// Returns a human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
///
/// Statuses are cheap to copy in the OK case (empty message). Use the
/// static factories (`Status::InvalidArgument(...)` etc.) to construct
/// errors, and `LKP_RETURN_IF_ERROR` to propagate them.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Aborts the process with a diagnostic if the status is not OK.
  /// Intended for call sites where failure is a programming error.
  void CheckOK() const {
    if (!ok()) {
      std::cerr << "Status not OK: " << ToString() << std::endl;
      std::abort();
    }
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller.
#define LKP_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::lkpdpp::Status _st = (expr);           \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace lkpdpp

#endif  // LKPDPP_COMMON_STATUS_H_
