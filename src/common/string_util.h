// Small string helpers used by table formatters and IO.

#ifndef LKPDPP_COMMON_STRING_UTIL_H_
#define LKPDPP_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace lkpdpp {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> StrSplit(const std::string& s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string StrTrim(const std::string& s);

/// Joins the pieces with `sep`.
std::string StrJoin(const std::vector<std::string>& pieces,
                    const std::string& sep);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

}  // namespace lkpdpp

#endif  // LKPDPP_COMMON_STRING_UTIL_H_
