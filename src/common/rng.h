// Deterministic pseudo-random number generation.
//
// All randomness in lkpdpp flows through Rng so every experiment is
// bit-reproducible from a single seed. The generator is xoshiro256**
// seeded via SplitMix64, following the reference implementations by
// Blackman & Vigna.

#ifndef LKPDPP_COMMON_RNG_H_
#define LKPDPP_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace lkpdpp {

/// SplitMix64 step; used for seeding and cheap hashing.
uint64_t SplitMix64(uint64_t* state);

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// Not thread-safe; create one Rng per thread / per experiment and derive
/// child generators with `Fork()` when independent streams are needed.
class Rng {
 public:
  /// Seeds the four-word state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int UniformInt(int n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Standard normal via Box-Muller (cached pair).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Non-positive weights are treated as zero; if all weights are zero the
  /// draw is uniform.
  int Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (int i = static_cast<int>(v->size()) - 1; i > 0; --i) {
      int j = UniformInt(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples `count` distinct values from [0, n) uniformly (Floyd's
  /// algorithm for small count, shuffle-prefix otherwise). Requires
  /// count <= n.
  std::vector<int> SampleWithoutReplacement(int n, int count);

  /// Derives an independent child generator (jump via reseeding).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace lkpdpp

#endif  // LKPDPP_COMMON_RNG_H_
