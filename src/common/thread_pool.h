// General-purpose work-stealing thread pool.
//
// Each worker owns a deque: it pops its own work LIFO (cache-warm) and
// steals FIFO from a random victim when idle, so bursty task graphs
// balance themselves without a global bottleneck. External submissions
// are sprayed round-robin across the worker deques.
//
// Determinism contract: the pool never introduces randomness into task
// *results* — callers that need random draws fork one Rng per task in
// submission order (Rng::Fork) before dispatch, so outputs are
// bit-identical at any thread count. ParallelFor writes results by index
// for the same reason.

#ifndef LKPDPP_COMMON_THREAD_POOL_H_
#define LKPDPP_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lkpdpp {

/// Fixed-size pool of worker threads with per-worker stealing deques.
/// Thread-safe: Submit / ParallelFor may be called from any thread,
/// including concurrently. Destruction waits for all submitted work.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1). A 1-thread pool is a
  /// valid degenerate case; ParallelFor additionally runs the calling
  /// thread as a worker, so even `num_threads == 1` overlaps two lanes.
  explicit ThreadPool(int num_threads);

  /// Waits for every submitted task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a fire-and-forget task.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// Runs fn(0) .. fn(n-1), blocking until all complete. Iterations are
  /// claimed dynamically by the workers *and* the calling thread, so this
  /// cannot deadlock even when every worker is busy elsewhere. `fn` must
  /// be safe to invoke concurrently for distinct indices.
  void ParallelFor(int n, const std::function<void(int)>& fn);

  /// Chunked ParallelFor: workers claim contiguous runs of `grain`
  /// iterations at a time instead of single indices, so tiny per-index
  /// bodies pay one atomic claim (and at most one dispatch) per chunk
  /// rather than per index. grain <= 1 degenerates to the unchunked
  /// form. Iteration results must still be written into index-addressed
  /// slots; chunking changes only the claim granularity, never which
  /// indices run, so outputs stay bit-identical to the serial loop.
  void ParallelFor(int n, int grain, const std::function<void(int)>& fn);

  /// A grain that yields ~4 chunks per worker lane: coarse enough to
  /// amortize dispatch on tiny bodies, fine enough to rebalance when
  /// chunk costs are uneven. Never below `min_grain`.
  int GrainFor(int n, int min_grain = 1) const;

  /// Thread count from the LKP_THREADS environment variable, falling back
  /// to std::thread::hardware_concurrency() capped at `max_default`.
  static int DefaultThreadCount(int max_default = 8);

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> queue;
  };

  void WorkerLoop(int self);
  /// Pops from the back of worker `self`'s own deque.
  bool PopOwn(int self, std::function<void()>* task);
  /// Steals from the front of some other worker's deque.
  bool Steal(int self, std::function<void()>* task);
  void RunTask(std::function<void()>* task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Round-robin injection cursor for external submissions.
  std::atomic<unsigned> next_queue_{0};

  // Sleep/wake machinery: work_signal_ increments on every Submit so
  // sleeping workers can tell "new work arrived since I last looked".
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  unsigned long work_signal_ = 0;
  bool stop_ = false;

  // Outstanding-task accounting for Wait() and the destructor.
  std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  long pending_ = 0;
};

/// Runs fn(0) .. fn(n-1) on `pool`, or inline on the calling thread
/// when `pool` is null — the shared "optional parallelism" dispatch
/// used by the trainers and the optimizer. Callers must write results
/// into index-addressed slots; both paths are then bit-identical by
/// construction.
inline void ParallelForOrSerial(ThreadPool* pool, int n,
                                const std::function<void(int)>& fn) {
  if (pool != nullptr) {
    pool->ParallelFor(n, fn);
    return;
  }
  for (int i = 0; i < n; ++i) fn(i);
}

/// Grain-size variant: chunks the loop with pool->GrainFor(n, min_grain)
/// so tiny per-index bodies amortize dispatch. Serial path unchanged.
inline void ParallelForOrSerial(ThreadPool* pool, int n, int min_grain,
                                const std::function<void(int)>& fn) {
  if (pool != nullptr) {
    pool->ParallelFor(n, pool->GrainFor(n, min_grain), fn);
    return;
  }
  for (int i = 0; i < n; ++i) fn(i);
}

}  // namespace lkpdpp

#endif  // LKPDPP_COMMON_THREAD_POOL_H_
