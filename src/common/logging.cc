#include "common/logging.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "obs/metrics.h"

namespace lkpdpp {

namespace {
LogLevel g_level = [] {
  const char* env = std::getenv("LKP_LOG_LEVEL");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 0 && v <= 3) return static_cast<LogLevel>(v);
  }
  return LogLevel::kInfo;
}();

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* file) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

// "HH:MM:SS.mmm" wall-clock UTC timestamp into `buf`.
void FormatTimestamp(char* buf, size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm_utc;
  gmtime_r(&secs, &tm_utc);
  std::snprintf(buf, size, "%02d:%02d:%02d.%03d", tm_utc.tm_hour,
                tm_utc.tm_min, tm_utc.tm_sec, millis);
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  // The whole line — prefix, message, newline — is assembled first and
  // emitted with a single write, so lines from concurrent threads come
  // out whole instead of interleaved piecewise.
  char stamp[32];
  FormatTimestamp(stamp, sizeof(stamp));
  std::ostringstream line;
  line << "[" << LevelName(level_) << " " << stamp << " T"
       << obs::CurrentThreadId() << " " << Basename(file_) << ":" << line_
       << "] " << stream_.str() << "\n";
  const std::string text = line.str();
  std::ostream& os = level_ >= LogLevel::kWarning ? std::cerr : std::cout;
  os.write(text.data(), static_cast<std::streamsize>(text.size()));
  os.flush();
}

FatalMessage::FatalMessage(const char* file, int line, const char* expr) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: " << expr
          << " ";
}

FatalMessage::~FatalMessage() {
  const std::string text = stream_.str() + "\n";
  std::cerr.write(text.data(), static_cast<std::streamsize>(text.size()));
  std::cerr.flush();
  std::abort();
}

}  // namespace internal
}  // namespace lkpdpp
