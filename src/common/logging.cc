#include "common/logging.h"

#include <cstdlib>

namespace lkpdpp {

namespace {
LogLevel g_level = [] {
  const char* env = std::getenv("LKP_LOG_LEVEL");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 0 && v <= 3) return static_cast<LogLevel>(v);
  }
  return LogLevel::kInfo;
}();

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  (level_ >= LogLevel::kWarning ? std::cerr : std::cout)
      << stream_.str() << std::endl;
}

FatalMessage::FatalMessage(const char* file, int line, const char* expr) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: " << expr
          << " ";
}

FatalMessage::~FatalMessage() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace lkpdpp
