// Minimal leveled logging and assertion macros.
//
// LKP_CHECK aborts on violated invariants (programmer errors); expected
// failures use Status/Result instead (see status.h).

#ifndef LKPDPP_COMMON_LOGGING_H_
#define LKPDPP_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace lkpdpp {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Defaults to kInfo,
/// overridable via the LKP_LOG_LEVEL environment variable (0-3).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Buffers one log statement and emits it as a single pre-assembled
/// line — "[LEVEL <utc-time> T<tid> file:line] message\n" — with one
/// write() call in the destructor, so concurrent threads never
/// interleave fragments of each other's lines.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* expr);
  [[noreturn]] ~FatalMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define LKP_LOG(level)                                                     \
  if (::lkpdpp::LogLevel::level >= ::lkpdpp::GetLogLevel())                \
  ::lkpdpp::internal::LogMessage(::lkpdpp::LogLevel::level, __FILE__,      \
                                 __LINE__)                                 \
      .stream()

#define LKP_CHECK(expr)                                                   \
  if (!(expr))                                                            \
  ::lkpdpp::internal::FatalMessage(__FILE__, __LINE__, #expr).stream()

#define LKP_CHECK_GE(a, b) LKP_CHECK((a) >= (b))
#define LKP_CHECK_GT(a, b) LKP_CHECK((a) > (b))
#define LKP_CHECK_LE(a, b) LKP_CHECK((a) <= (b))
#define LKP_CHECK_LT(a, b) LKP_CHECK((a) < (b))
#define LKP_CHECK_EQ(a, b) LKP_CHECK((a) == (b))
#define LKP_CHECK_NE(a, b) LKP_CHECK((a) != (b))

}  // namespace lkpdpp

#endif  // LKPDPP_COMMON_LOGGING_H_
