#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace lkpdpp {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string StrTrim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' ||
                   s[b] == '\n')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n')) {
    --e;
  }
  return s.substr(b, e - b);
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace lkpdpp
