// Wall-clock stopwatch for benchmark harnesses.

#ifndef LKPDPP_COMMON_STOPWATCH_H_
#define LKPDPP_COMMON_STOPWATCH_H_

#include <chrono>

namespace lkpdpp {

/// Measures elapsed wall time; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lkpdpp

#endif  // LKPDPP_COMMON_STOPWATCH_H_
