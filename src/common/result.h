// Result<T>: value-or-Status, the return type of fallible factories.
//
// Mirrors arrow::Result. Use `LKP_ASSIGN_OR_RETURN(lhs, expr)` to unwrap
// inside functions that themselves return Status/Result.

#ifndef LKPDPP_COMMON_RESULT_H_
#define LKPDPP_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <utility>
#include <variant>

#include "common/status.h"

namespace lkpdpp {

/// Holds either a successfully produced T or the Status explaining why
/// production failed. A Result is never "empty": default construction is
/// disabled, and constructing from an OK status aborts.
template <typename T>
class Result {
 public:
  /// Implicit: allows `return value;` from Result-returning functions.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit: allows `return Status::InvalidArgument(...)`.
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    if (std::get<Status>(payload_).ok()) {
      std::cerr << "Result constructed from OK status" << std::endl;
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The error status; OK if the result holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(payload_);
  }

  /// Access to the value. Aborts if the Result holds an error.
  const T& ValueOrDie() const& {
    EnsureOk();
    return std::get<T>(payload_);
  }
  T& ValueOrDie() & {
    EnsureOk();
    return std::get<T>(payload_);
  }
  T&& ValueOrDie() && {
    EnsureOk();
    return std::move(std::get<T>(payload_));
  }

  /// Moves the value out. Aborts if the Result holds an error.
  T MoveValue() {
    EnsureOk();
    return std::move(std::get<T>(payload_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void EnsureOk() const {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: " << status().ToString()
                << std::endl;
      std::abort();
    }
  }

  std::variant<T, Status> payload_;
};

#define LKP_CONCAT_IMPL(a, b) a##b
#define LKP_CONCAT(a, b) LKP_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error returns the Status, on
/// success binds the value to `lhs` (which may include a declaration).
#define LKP_ASSIGN_OR_RETURN(lhs, expr)                       \
  auto LKP_CONCAT(_result_, __LINE__) = (expr);               \
  if (!LKP_CONCAT(_result_, __LINE__).ok())                   \
    return LKP_CONCAT(_result_, __LINE__).status();           \
  lhs = std::move(LKP_CONCAT(_result_, __LINE__)).ValueOrDie()

}  // namespace lkpdpp

#endif  // LKPDPP_COMMON_RESULT_H_
