// The recommendation-model interface criteria plug into.
//
// A RecModel owns trainable parameters and exposes two views:
//   * a differentiable view (StartBatch + ScoreItems/ItemRepresentations)
//     used during training — scores come back as autodiff tensors so a
//     criterion's dLoss/dScore seed can flow back to parameters;
//   * a plain evaluation view (PrepareForEval + ScoreAllItems) used by
//     the metric pipeline, which needs scores for the whole catalog.
// Keeping criteria and models decoupled behind this interface is what
// the paper's Table IV "rework" experiments exercise: swapping a model's
// native objective for LkP without touching the model.

#ifndef LKPDPP_MODELS_REC_MODEL_H_
#define LKPDPP_MODELS_REC_MODEL_H_

#include <string>
#include <vector>

#include "autodiff/graph.h"
#include "kernels/quality_diversity.h"

namespace lkpdpp {

class RecModel {
 public:
  virtual ~RecModel() = default;

  virtual std::string name() const = 0;
  virtual int num_users() const = 0;
  virtual int num_items() const = 0;

  /// Binds parameters into the given per-batch graph and builds any
  /// shared forward structure (e.g. GCN propagation). Must be called
  /// before ScoreItems / ItemRepresentations on that graph.
  virtual void StartBatch(ad::Graph* graph) = 0;

  /// Raw scores of `user` for `items`, shape (|items| x 1).
  virtual ad::Tensor ScoreItems(ad::Graph* graph, int user,
                                const std::vector<int>& items) = 0;

  /// Final item representations (|items| x d), consumed by the E-type
  /// Gaussian diversity kernel.
  virtual ad::Tensor ItemRepresentations(ad::Graph* graph,
                                         const std::vector<int>& items) = 0;

  /// Refreshes any cached forward state used by ScoreAllItems.
  virtual void PrepareForEval() = 0;

  /// No-grad scores of `user` for every catalog item.
  virtual Vector ScoreAllItems(int user) const = 0;

  virtual std::vector<ad::Param*> Params() = 0;

  /// The quality transform LkP should apply to this model's raw scores
  /// (exp for inner-product scores, sigmoid for classifier logits).
  virtual QualityTransform PreferredQuality() const {
    return QualityTransform::kExp;
  }
};

}  // namespace lkpdpp

#endif  // LKPDPP_MODELS_REC_MODEL_H_
