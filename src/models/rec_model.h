// The recommendation-model interface criteria plug into.
//
// A RecModel owns trainable parameters and exposes two views:
//   * a differentiable view (StartBatch -> RecModel::Batch) used during
//     training — scores come back as autodiff tensors so a criterion's
//     dLoss/dScore seed can flow back to parameters;
//   * a plain evaluation view (PrepareForEval + ScoreAllItems) used by
//     the metric pipeline, which needs scores for the whole catalog.
// Keeping criteria and models decoupled behind this interface is what
// the paper's Table IV "rework" experiments exercise: swapping a model's
// native objective for LkP without touching the model.
//
// The differentiable view is built for data-parallel minibatches. A
// Batch runs any shared forward structure (e.g. GCN propagation) ONCE
// on a prefix graph it owns, and exposes the resulting representations
// as per-batch *boundary parameters*. Training instances then score
// through per-instance graphs that bind those boundary params (and any
// directly-consumed model params) read-only, so many instances can be
// evaluated concurrently; after their gradient workspaces are reduced
// in instance order, Finish() backpropagates the reduced boundary
// gradients through the prefix into the real model parameters.

#ifndef LKPDPP_MODELS_REC_MODEL_H_
#define LKPDPP_MODELS_REC_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "autodiff/graph.h"
#include "kernels/quality_diversity.h"

namespace lkpdpp {

class RecModel {
 public:
  /// Differentiable view of one minibatch. Construction (StartBatch)
  /// runs the model's shared forward pass; ScoreItems and
  /// ItemRepresentations build per-instance subgraphs on caller-owned
  /// graphs and are safe to call concurrently with distinct graphs.
  class Batch {
   public:
    virtual ~Batch() = default;

    /// Raw scores of `user` for `items`, shape (|items| x 1), built on
    /// the given per-instance graph. Gradients land on the params the
    /// instance subgraph binds: the batch's boundary params (fed to the
    /// model through Finish) and/or model params consumed directly.
    virtual ad::Tensor ScoreItems(ad::Graph* graph, int user,
                                  const std::vector<int>& items) = 0;

    /// Final item representations (|items| x d), consumed by the E-type
    /// Gaussian diversity kernel.
    virtual ad::Tensor ItemRepresentations(
        ad::Graph* graph, const std::vector<int>& items) = 0;

    /// Backpropagates the reduced boundary gradients through the shared
    /// prefix graph into the model's params. Call exactly once, after
    /// all instance gradients have been reduced. A no-op for models
    /// whose instances touch their params directly.
    virtual Status Finish() = 0;
  };

  virtual ~RecModel() = default;

  virtual std::string name() const = 0;
  virtual int num_users() const = 0;
  virtual int num_items() const = 0;

  /// Opens a minibatch: runs the shared forward structure and returns
  /// the batch's differentiable view. The model must outlive the batch,
  /// and parameter values must not change while a batch is alive.
  virtual std::unique_ptr<Batch> StartBatch() = 0;

  /// Refreshes any cached forward state used by ScoreAllItems.
  virtual void PrepareForEval() = 0;

  /// No-grad scores of `user` for every catalog item.
  virtual Vector ScoreAllItems(int user) const = 0;

  virtual std::vector<ad::Param*> Params() = 0;

  /// The quality transform LkP should apply to this model's raw scores
  /// (exp for inner-product scores, sigmoid for classifier logits).
  virtual QualityTransform PreferredQuality() const {
    return QualityTransform::kExp;
  }
};

}  // namespace lkpdpp

#endif  // LKPDPP_MODELS_REC_MODEL_H_
