// GCMC: graph convolutional matrix completion [van den Berg et al. 2017].
//
// A compact re-implementation of the graph auto-encoder used in Table IV:
// one graph-convolution encoder layer over the user-item graph (with a
// dense self-connection), and a bilinear softmax decoder over rating
// levels. With binarized implicit feedback there are two levels, and the
// two-class softmax NLL reduces exactly to BCE on the logit difference,
// so the model exposes score = logit(like) - logit(dislike) and its
// native objective is the BCE criterion; LkP reworks swap that criterion
// and read quality through a sigmoid.

#ifndef LKPDPP_MODELS_GCMC_H_
#define LKPDPP_MODELS_GCMC_H_

#include <memory>

#include "common/result.h"
#include "data/dataset.h"
#include "models/rec_model.h"

namespace lkpdpp {

class GcmcModel final : public RecModel {
 public:
  struct Config {
    int embedding_dim = 16;
    int hidden_dim = 16;
    double init_scale = 0.1;
    uint64_t seed = 4;
  };

  static Result<std::unique_ptr<GcmcModel>> Create(const Dataset& dataset,
                                                   const Config& config);

  std::string name() const override { return "GCMC"; }
  int num_users() const override { return num_users_; }
  int num_items() const override { return num_items_; }

  std::unique_ptr<Batch> StartBatch() override;
  void PrepareForEval() override;
  Vector ScoreAllItems(int user) const override;
  std::vector<ad::Param*> Params() override;
  QualityTransform PreferredQuality() const override {
    return QualityTransform::kSigmoid;
  }

 private:
  GcmcModel(int num_users, int num_items, SparseMatrix adjacency,
            const Config& config);

  /// Encoder forward without autodiff (for evaluation).
  Matrix EncodeEval() const;

  int num_users_;
  int num_items_;
  SparseMatrix adjacency_;
  ad::Param features_;   // (N+M) x d input embeddings.
  ad::Param w_conv_;     // d x h neighbor-aggregation weight.
  ad::Param w_self_;     // d x h self-connection weight.
  ad::Param decoder_;    // h x h bilinear decoder (like-vs-dislike).
  Matrix eval_cache_;
};

}  // namespace lkpdpp

#endif  // LKPDPP_MODELS_GCMC_H_
