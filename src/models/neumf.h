// NeuMF: GMF + MLP neural collaborative filtering [He et al. 2017].
//
// The classic two-tower model the paper uses in Table IV: a generalized
// matrix factorization branch (elementwise product of embeddings) fused
// with an MLP branch over concatenated embeddings. Raw output is a
// classification logit, so its native objective is BCE and LkP quality
// uses sigmoid.

#ifndef LKPDPP_MODELS_NEUMF_H_
#define LKPDPP_MODELS_NEUMF_H_

#include <vector>

#include "models/rec_model.h"

namespace lkpdpp {

class NeuMfModel final : public RecModel {
 public:
  struct Config {
    int embedding_dim = 16;
    int hidden1 = 32;
    int hidden2 = 16;
    double init_scale = 0.1;
    uint64_t seed = 3;
  };

  NeuMfModel(int num_users, int num_items, const Config& config);

  std::string name() const override { return "NeuMF"; }
  int num_users() const override { return num_users_; }
  int num_items() const override { return num_items_; }

  std::unique_ptr<Batch> StartBatch() override;
  void PrepareForEval() override {}
  Vector ScoreAllItems(int user) const override;
  std::vector<ad::Param*> Params() override;
  QualityTransform PreferredQuality() const override {
    return QualityTransform::kSigmoid;
  }

 private:
  int num_users_;
  int num_items_;
  ad::Param user_gmf_;
  ad::Param item_gmf_;
  ad::Param user_mlp_;
  ad::Param item_mlp_;
  ad::Param w1_;
  ad::Param b1_;
  ad::Param w2_;
  ad::Param b2_;
  ad::Param h_out_;
};

}  // namespace lkpdpp

#endif  // LKPDPP_MODELS_NEUMF_H_
