#include "models/gcmc.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "models/graph_utils.h"

namespace lkpdpp {

namespace {
Matrix RandomInit(int rows, int cols, double scale, Rng* rng) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = rng->Normal(0.0, scale);
  }
  return m;
}
}  // namespace

GcmcModel::GcmcModel(int num_users, int num_items, SparseMatrix adjacency,
                     const Config& config)
    : num_users_(num_users),
      num_items_(num_items),
      adjacency_(std::move(adjacency)),
      features_("gcmc.features", Matrix()),
      w_conv_("gcmc.w_conv", Matrix()),
      w_self_("gcmc.w_self", Matrix()),
      decoder_("gcmc.decoder", Matrix()) {
  Rng rng(config.seed);
  features_.value = RandomInit(num_users + num_items, config.embedding_dim,
                               config.init_scale, &rng);
  const double wscale =
      std::sqrt(2.0 / (config.embedding_dim + config.hidden_dim));
  w_conv_.value =
      RandomInit(config.embedding_dim, config.hidden_dim, wscale, &rng);
  w_self_.value =
      RandomInit(config.embedding_dim, config.hidden_dim, wscale, &rng);
  decoder_.value = RandomInit(config.hidden_dim, config.hidden_dim,
                              1.0 / std::sqrt(config.hidden_dim), &rng);
  for (ad::Param* p : Params()) p->ZeroGrad();
}

Result<std::unique_ptr<GcmcModel>> GcmcModel::Create(const Dataset& dataset,
                                                     const Config& config) {
  LKP_ASSIGN_OR_RETURN(SparseMatrix adj, BuildNormalizedAdjacency(dataset));
  return std::unique_ptr<GcmcModel>(new GcmcModel(
      dataset.num_users(), dataset.num_items(), std::move(adj), config));
}

namespace {

// The encoder prefix (one graph convolution + self-connection) runs
// once per batch; instances decode from a boundary param wrapping the
// encoded table plus the bilinear decoder bound directly. Finish
// backpropagates the reduced boundary gradient through the encoder.
class GcmcBatch final : public RecModel::Batch {
 public:
  GcmcBatch(ad::Param* features, ad::Param* w_conv, ad::Param* w_self,
            ad::Param* decoder, const SparseMatrix* adjacency,
            int num_users)
      : num_users_(num_users),
        decoder_(decoder),
        boundary_("gcmc.encoded", Matrix()) {
    ad::Tensor x = prefix_.Parameter(features);
    ad::Tensor wc = prefix_.Parameter(w_conv);
    ad::Tensor ws = prefix_.Parameter(w_self);
    // H = relu(A_hat X W_c + X W_s).
    ad::Tensor agg = prefix_.MatMul(prefix_.Spmm(adjacency, x), wc);
    ad::Tensor self = prefix_.MatMul(x, ws);
    encoded_ = prefix_.Relu(prefix_.Add(agg, self));
    boundary_.value = encoded_.value();
    boundary_.ZeroGrad();
  }

  ad::Tensor ScoreItems(ad::Graph* graph, int user,
                        const std::vector<int>& items) override {
    const int m = static_cast<int>(items.size());
    ad::Tensor enc = graph->Parameter(&boundary_);
    ad::Tensor qd = graph->Parameter(decoder_);
    ad::Tensor hu = graph->RepeatRow(graph->GatherRows(enc, {user}), m);
    ad::Tensor hi = graph->GatherRows(enc, Shift(items));
    // score_i = h_u^T Q h_i, batched as rowsum(h_u_rep ⊙ (h_i Q^T)).
    ad::Tensor proj = graph->MatMulTransB(hi, qd);
    return graph->RowSum(graph->Mul(hu, proj));
  }

  ad::Tensor ItemRepresentations(ad::Graph* graph,
                                 const std::vector<int>& items) override {
    return graph->GatherRows(graph->Parameter(&boundary_), Shift(items));
  }

  Status Finish() override {
    return prefix_.Backward({{encoded_, boundary_.grad}});
  }

 private:
  std::vector<int> Shift(const std::vector<int>& items) const {
    std::vector<int> shifted(items.size());
    for (size_t i = 0; i < items.size(); ++i) {
      shifted[i] = num_users_ + items[i];
    }
    return shifted;
  }

  int num_users_;
  ad::Param* decoder_;
  ad::Graph prefix_;
  ad::Tensor encoded_;
  ad::Param boundary_;
};

}  // namespace

std::unique_ptr<RecModel::Batch> GcmcModel::StartBatch() {
  return std::make_unique<GcmcBatch>(&features_, &w_conv_, &w_self_,
                                     &decoder_, &adjacency_, num_users_);
}

Matrix GcmcModel::EncodeEval() const {
  Matrix agg = MatMul(adjacency_.Multiply(features_.value), w_conv_.value);
  Matrix self = MatMul(features_.value, w_self_.value);
  agg += self;
  for (int r = 0; r < agg.rows(); ++r) {
    for (int c = 0; c < agg.cols(); ++c) {
      if (agg(r, c) < 0.0) agg(r, c) = 0.0;
    }
  }
  return agg;
}

void GcmcModel::PrepareForEval() { eval_cache_ = EncodeEval(); }

Vector GcmcModel::ScoreAllItems(int user) const {
  LKP_CHECK(!eval_cache_.empty()) << "PrepareForEval not called";
  const Vector hu = eval_cache_.Row(user);
  const Vector proj = MatVecTransA(decoder_.value, hu);  // Q^T h_u.
  Vector out(num_items_);
  for (int i = 0; i < num_items_; ++i) {
    const double* hi = eval_cache_.RowPtr(num_users_ + i);
    double s = 0.0;
    for (int c = 0; c < eval_cache_.cols(); ++c) s += hi[c] * proj[c];
    out[i] = s;
  }
  return out;
}

std::vector<ad::Param*> GcmcModel::Params() {
  return {&features_, &w_conv_, &w_self_, &decoder_};
}

}  // namespace lkpdpp
