#include "models/gcmc.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "models/graph_utils.h"

namespace lkpdpp {

namespace {
Matrix RandomInit(int rows, int cols, double scale, Rng* rng) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = rng->Normal(0.0, scale);
  }
  return m;
}
}  // namespace

GcmcModel::GcmcModel(int num_users, int num_items, SparseMatrix adjacency,
                     const Config& config)
    : num_users_(num_users),
      num_items_(num_items),
      adjacency_(std::move(adjacency)),
      features_("gcmc.features", Matrix()),
      w_conv_("gcmc.w_conv", Matrix()),
      w_self_("gcmc.w_self", Matrix()),
      decoder_("gcmc.decoder", Matrix()) {
  Rng rng(config.seed);
  features_.value = RandomInit(num_users + num_items, config.embedding_dim,
                               config.init_scale, &rng);
  const double wscale =
      std::sqrt(2.0 / (config.embedding_dim + config.hidden_dim));
  w_conv_.value =
      RandomInit(config.embedding_dim, config.hidden_dim, wscale, &rng);
  w_self_.value =
      RandomInit(config.embedding_dim, config.hidden_dim, wscale, &rng);
  decoder_.value = RandomInit(config.hidden_dim, config.hidden_dim,
                              1.0 / std::sqrt(config.hidden_dim), &rng);
  for (ad::Param* p : Params()) p->ZeroGrad();
}

Result<std::unique_ptr<GcmcModel>> GcmcModel::Create(const Dataset& dataset,
                                                     const Config& config) {
  LKP_ASSIGN_OR_RETURN(SparseMatrix adj, BuildNormalizedAdjacency(dataset));
  return std::unique_ptr<GcmcModel>(new GcmcModel(
      dataset.num_users(), dataset.num_items(), std::move(adj), config));
}

void GcmcModel::StartBatch(ad::Graph* graph) {
  ad::Tensor x = graph->Parameter(&features_);
  ad::Tensor wc = graph->Parameter(&w_conv_);
  ad::Tensor ws = graph->Parameter(&w_self_);
  // H = relu(A_hat X W_c + X W_s).
  ad::Tensor agg = graph->MatMul(graph->Spmm(&adjacency_, x), wc);
  ad::Tensor self = graph->MatMul(x, ws);
  encoded_ = graph->Relu(graph->Add(agg, self));
}

ad::Tensor GcmcModel::ScoreItems(ad::Graph* graph, int user,
                                 const std::vector<int>& items) {
  LKP_CHECK(encoded_.valid()) << "StartBatch not called";
  const int m = static_cast<int>(items.size());
  ad::Tensor qd = graph->Parameter(&decoder_);
  ad::Tensor hu =
      graph->RepeatRow(graph->GatherRows(encoded_, {user}), m);
  std::vector<int> shifted(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    shifted[i] = num_users_ + items[i];
  }
  ad::Tensor hi = graph->GatherRows(encoded_, shifted);
  // score_i = h_u^T Q h_i, batched as rowsum(h_u_rep ⊙ (h_i Q^T)).
  ad::Tensor proj = graph->MatMulTransB(hi, qd);
  return graph->RowSum(graph->Mul(hu, proj));
}

ad::Tensor GcmcModel::ItemRepresentations(ad::Graph* graph,
                                          const std::vector<int>& items) {
  LKP_CHECK(encoded_.valid()) << "StartBatch not called";
  std::vector<int> shifted(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    shifted[i] = num_users_ + items[i];
  }
  return graph->GatherRows(encoded_, shifted);
}

Matrix GcmcModel::EncodeEval() const {
  Matrix agg = MatMul(adjacency_.Multiply(features_.value), w_conv_.value);
  Matrix self = MatMul(features_.value, w_self_.value);
  agg += self;
  for (int r = 0; r < agg.rows(); ++r) {
    for (int c = 0; c < agg.cols(); ++c) {
      if (agg(r, c) < 0.0) agg(r, c) = 0.0;
    }
  }
  return agg;
}

void GcmcModel::PrepareForEval() { eval_cache_ = EncodeEval(); }

Vector GcmcModel::ScoreAllItems(int user) const {
  LKP_CHECK(!eval_cache_.empty()) << "PrepareForEval not called";
  const Vector hu = eval_cache_.Row(user);
  const Vector proj = MatVecTransA(decoder_.value, hu);  // Q^T h_u.
  Vector out(num_items_);
  for (int i = 0; i < num_items_; ++i) {
    const double* hi = eval_cache_.RowPtr(num_users_ + i);
    double s = 0.0;
    for (int c = 0; c < eval_cache_.cols(); ++c) s += hi[c] * proj[c];
    out[i] = s;
  }
  return out;
}

std::vector<ad::Param*> GcmcModel::Params() {
  return {&features_, &w_conv_, &w_self_, &decoder_};
}

}  // namespace lkpdpp
