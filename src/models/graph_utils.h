// Bipartite interaction-graph construction for graph-based models.

#ifndef LKPDPP_MODELS_GRAPH_UTILS_H_
#define LKPDPP_MODELS_GRAPH_UTILS_H_

#include "common/result.h"
#include "data/dataset.h"
#include "linalg/sparse.h"

namespace lkpdpp {

/// Builds the symmetrically normalized adjacency of the user-item train
/// graph on the joint node set [users | items] (size N+M):
///   A_hat[u, N+i] = A_hat[N+i, u] = 1 / sqrt(deg(u) * deg(i)).
/// Isolated nodes simply have empty rows. `add_self_loops` optionally
/// adds D^-1-style self connections (GCMC encoder variant).
Result<SparseMatrix> BuildNormalizedAdjacency(const Dataset& dataset,
                                              bool add_self_loops = false);

}  // namespace lkpdpp

#endif  // LKPDPP_MODELS_GRAPH_UTILS_H_
