#include "models/gcn.h"

#include "common/logging.h"
#include "common/rng.h"
#include "models/graph_utils.h"

namespace lkpdpp {

GcnModel::GcnModel(int num_users, int num_items, SparseMatrix adjacency,
                   const Config& config)
    : num_users_(num_users),
      num_items_(num_items),
      num_layers_(config.num_layers),
      adjacency_(std::move(adjacency)),
      embeddings_("gcn.embeddings", Matrix()) {
  Rng rng(config.seed);
  Matrix init(num_users + num_items, config.embedding_dim);
  for (int r = 0; r < init.rows(); ++r) {
    for (int c = 0; c < init.cols(); ++c) {
      init(r, c) = rng.Normal(0.0, config.init_scale);
    }
  }
  embeddings_.value = std::move(init);
  embeddings_.ZeroGrad();
}

Result<std::unique_ptr<GcnModel>> GcnModel::Create(const Dataset& dataset,
                                                   const Config& config) {
  if (config.num_layers < 1) {
    return Status::InvalidArgument("GCN needs at least one layer");
  }
  LKP_ASSIGN_OR_RETURN(SparseMatrix adj, BuildNormalizedAdjacency(dataset));
  return std::unique_ptr<GcnModel>(new GcnModel(
      dataset.num_users(), dataset.num_items(), std::move(adj), config));
}

namespace {

// The propagation prefix runs once per batch; instances gather from a
// boundary param wrapping the propagated table, and Finish
// backpropagates the reduced boundary gradient through the prefix into
// the embedding table.
class GcnBatch final : public RecModel::Batch {
 public:
  GcnBatch(ad::Param* embeddings, const SparseMatrix* adjacency,
           int num_layers, int num_users)
      : num_users_(num_users), boundary_("gcn.propagated", Matrix()) {
    ad::Tensor e0 = prefix_.Parameter(embeddings);
    std::vector<ad::Tensor> layers = {e0};
    ad::Tensor cur = e0;
    for (int l = 0; l < num_layers; ++l) {
      cur = prefix_.Spmm(adjacency, cur);
      layers.push_back(cur);
    }
    propagated_ = prefix_.MeanOf(layers);
    boundary_.value = propagated_.value();
    boundary_.ZeroGrad();
  }

  ad::Tensor ScoreItems(ad::Graph* graph, int user,
                        const std::vector<int>& items) override {
    ad::Tensor prop = graph->Parameter(&boundary_);
    ad::Tensor u_row = graph->GatherRows(prop, {user});
    ad::Tensor rows = graph->GatherRows(prop, Shift(items));
    return graph->MatMulTransB(rows, u_row);
  }

  ad::Tensor ItemRepresentations(ad::Graph* graph,
                                 const std::vector<int>& items) override {
    return graph->GatherRows(graph->Parameter(&boundary_), Shift(items));
  }

  Status Finish() override {
    return prefix_.Backward({{propagated_, boundary_.grad}});
  }

 private:
  std::vector<int> Shift(const std::vector<int>& items) const {
    std::vector<int> shifted(items.size());
    for (size_t i = 0; i < items.size(); ++i) {
      shifted[i] = num_users_ + items[i];
    }
    return shifted;
  }

  int num_users_;
  ad::Graph prefix_;
  ad::Tensor propagated_;
  ad::Param boundary_;
};

}  // namespace

std::unique_ptr<RecModel::Batch> GcnModel::StartBatch() {
  return std::make_unique<GcnBatch>(&embeddings_, &adjacency_, num_layers_,
                                    num_users_);
}

Matrix GcnModel::PropagateEval() const {
  Matrix acc = embeddings_.value;
  Matrix cur = embeddings_.value;
  for (int l = 0; l < num_layers_; ++l) {
    cur = adjacency_.Multiply(cur);
    acc += cur;
  }
  acc *= 1.0 / (num_layers_ + 1.0);
  return acc;
}

void GcnModel::PrepareForEval() { eval_cache_ = PropagateEval(); }

Vector GcnModel::ScoreAllItems(int user) const {
  LKP_CHECK(!eval_cache_.empty()) << "PrepareForEval not called";
  const Vector u = eval_cache_.Row(user);
  Vector out(num_items_);
  for (int i = 0; i < num_items_; ++i) {
    const double* row = eval_cache_.RowPtr(num_users_ + i);
    double s = 0.0;
    for (int c = 0; c < eval_cache_.cols(); ++c) s += row[c] * u[c];
    out[i] = s;
  }
  return out;
}

std::vector<ad::Param*> GcnModel::Params() { return {&embeddings_}; }

}  // namespace lkpdpp
