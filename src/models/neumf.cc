#include "models/neumf.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace lkpdpp {

namespace {
Matrix RandomInit(int rows, int cols, double scale, Rng* rng) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = rng->Normal(0.0, scale);
  }
  return m;
}
}  // namespace

NeuMfModel::NeuMfModel(int num_users, int num_items, const Config& config)
    : num_users_(num_users),
      num_items_(num_items),
      user_gmf_("neumf.user_gmf", Matrix()),
      item_gmf_("neumf.item_gmf", Matrix()),
      user_mlp_("neumf.user_mlp", Matrix()),
      item_mlp_("neumf.item_mlp", Matrix()),
      w1_("neumf.w1", Matrix()),
      b1_("neumf.b1", Matrix()),
      w2_("neumf.w2", Matrix()),
      b2_("neumf.b2", Matrix()),
      h_out_("neumf.h_out", Matrix()) {
  LKP_CHECK_GT(num_users, 0);
  LKP_CHECK_GT(num_items, 0);
  Rng rng(config.seed);
  const int d = config.embedding_dim;
  user_gmf_.value = RandomInit(num_users, d, config.init_scale, &rng);
  item_gmf_.value = RandomInit(num_items, d, config.init_scale, &rng);
  user_mlp_.value = RandomInit(num_users, d, config.init_scale, &rng);
  item_mlp_.value = RandomInit(num_items, d, config.init_scale, &rng);
  // Xavier-ish scaling for the dense layers.
  w1_.value = RandomInit(2 * d, config.hidden1,
                         std::sqrt(2.0 / (2 * d + config.hidden1)), &rng);
  b1_.value = Matrix(1, config.hidden1);
  w2_.value =
      RandomInit(config.hidden1, config.hidden2,
                 std::sqrt(2.0 / (config.hidden1 + config.hidden2)), &rng);
  b2_.value = Matrix(1, config.hidden2);
  h_out_.value = RandomInit(d + config.hidden2, 1,
                            std::sqrt(2.0 / (d + config.hidden2)), &rng);
  for (ad::Param* p : Params()) p->ZeroGrad();
}

namespace {

// No shared prefix: the GMF/MLP towers are rebuilt per instance on the
// instance's own graph, binding the model params directly.
class NeuMfBatch final : public RecModel::Batch {
 public:
  struct Weights {
    ad::Param* user_gmf;
    ad::Param* item_gmf;
    ad::Param* user_mlp;
    ad::Param* item_mlp;
    ad::Param* w1;
    ad::Param* b1;
    ad::Param* w2;
    ad::Param* b2;
    ad::Param* h_out;
  };

  explicit NeuMfBatch(const Weights& w) : w_(w) {}

  ad::Tensor ScoreItems(ad::Graph* graph, int user,
                        const std::vector<int>& items) override {
    const int m = static_cast<int>(items.size());
    // GMF branch: p_u ⊙ q_i.
    ad::Tensor pu_g = graph->RepeatRow(
        graph->GatherRows(graph->Parameter(w_.user_gmf), {user}), m);
    ad::Tensor qi_g = graph->GatherRows(graph->Parameter(w_.item_gmf), items);
    ad::Tensor gmf = graph->Mul(pu_g, qi_g);
    // MLP branch over [p_u | q_i].
    ad::Tensor pu_m = graph->RepeatRow(
        graph->GatherRows(graph->Parameter(w_.user_mlp), {user}), m);
    ad::Tensor qi_m = graph->GatherRows(graph->Parameter(w_.item_mlp), items);
    ad::Tensor x = graph->ConcatCols(pu_m, qi_m);
    ad::Tensor z1 = graph->Relu(graph->AddRowBroadcast(
        graph->MatMul(x, graph->Parameter(w_.w1)), graph->Parameter(w_.b1)));
    ad::Tensor z2 = graph->Relu(graph->AddRowBroadcast(
        graph->MatMul(z1, graph->Parameter(w_.w2)), graph->Parameter(w_.b2)));
    // Fusion head.
    ad::Tensor fused = graph->ConcatCols(gmf, z2);
    return graph->MatMul(fused, graph->Parameter(w_.h_out));
  }

  ad::Tensor ItemRepresentations(ad::Graph* graph,
                                 const std::vector<int>& items) override {
    return graph->GatherRows(graph->Parameter(w_.item_mlp), items);
  }

  Status Finish() override { return Status::OK(); }

 private:
  Weights w_;
};

}  // namespace

std::unique_ptr<RecModel::Batch> NeuMfModel::StartBatch() {
  return std::make_unique<NeuMfBatch>(NeuMfBatch::Weights{
      &user_gmf_, &item_gmf_, &user_mlp_, &item_mlp_, &w1_, &b1_, &w2_,
      &b2_, &h_out_});
}

Vector NeuMfModel::ScoreAllItems(int user) const {
  const int m = num_items_;
  const int d = user_gmf_.value.cols();
  const Vector pu_g = user_gmf_.value.Row(user);
  const Vector pu_m = user_mlp_.value.Row(user);

  // MLP input [p_u | q_i] for all items, then two ReLU layers.
  Matrix x(m, 2 * d);
  for (int i = 0; i < m; ++i) {
    for (int c = 0; c < d; ++c) {
      x(i, c) = pu_m[c];
      x(i, d + c) = item_mlp_.value(i, c);
    }
  }
  Matrix z1 = MatMul(x, w1_.value);
  for (int i = 0; i < z1.rows(); ++i) {
    for (int c = 0; c < z1.cols(); ++c) {
      z1(i, c) = std::max(0.0, z1(i, c) + b1_.value(0, c));
    }
  }
  Matrix z2 = MatMul(z1, w2_.value);
  for (int i = 0; i < z2.rows(); ++i) {
    for (int c = 0; c < z2.cols(); ++c) {
      z2(i, c) = std::max(0.0, z2(i, c) + b2_.value(0, c));
    }
  }

  Vector out(m);
  for (int i = 0; i < m; ++i) {
    double s = 0.0;
    for (int c = 0; c < d; ++c) {
      s += pu_g[c] * item_gmf_.value(i, c) * h_out_.value(c, 0);
    }
    for (int c = 0; c < z2.cols(); ++c) {
      s += z2(i, c) * h_out_.value(d + c, 0);
    }
    out[i] = s;
  }
  return out;
}

std::vector<ad::Param*> NeuMfModel::Params() {
  return {&user_gmf_, &item_gmf_, &user_mlp_, &item_mlp_, &w1_,
          &b1_,       &w2_,       &b2_,       &h_out_};
}

}  // namespace lkpdpp
