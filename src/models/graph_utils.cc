#include "models/graph_utils.h"

#include <cmath>
#include <vector>

namespace lkpdpp {

Result<SparseMatrix> BuildNormalizedAdjacency(const Dataset& dataset,
                                              bool add_self_loops) {
  const int n = dataset.num_users();
  const int m = dataset.num_items();
  const int size = n + m;

  std::vector<int> user_deg(static_cast<size_t>(n), 0);
  std::vector<int> item_deg(static_cast<size_t>(m), 0);
  for (int u = 0; u < n; ++u) {
    for (int i : dataset.TrainItems(u)) {
      ++user_deg[static_cast<size_t>(u)];
      ++item_deg[static_cast<size_t>(i)];
    }
  }

  std::vector<SparseMatrix::Triplet> triplets;
  for (int u = 0; u < n; ++u) {
    for (int i : dataset.TrainItems(u)) {
      const double w =
          1.0 / std::sqrt(static_cast<double>(user_deg[u]) *
                          static_cast<double>(item_deg[i]));
      triplets.push_back({u, n + i, w});
      triplets.push_back({n + i, u, w});
    }
  }
  if (add_self_loops) {
    for (int v = 0; v < size; ++v) {
      const int deg =
          v < n ? user_deg[static_cast<size_t>(v)]
                : item_deg[static_cast<size_t>(v - n)];
      triplets.push_back({v, v, 1.0 / (1.0 + deg)});
    }
  }
  return SparseMatrix::FromTriplets(size, size, std::move(triplets));
}

}  // namespace lkpdpp
