// Matrix factorization: the basic inner-product CF model (Table III).

#ifndef LKPDPP_MODELS_MF_H_
#define LKPDPP_MODELS_MF_H_

#include <memory>

#include "common/rng.h"
#include "models/rec_model.h"

namespace lkpdpp {

/// y_hat(u, i) = <p_u, q_i>. Scores are unbounded inner products, so LkP
/// quality uses exp (Eq. 13).
class MfModel final : public RecModel {
 public:
  struct Config {
    int embedding_dim = 16;
    double init_scale = 0.1;
    uint64_t seed = 1;
  };

  MfModel(int num_users, int num_items, const Config& config);

  std::string name() const override { return "MF"; }
  int num_users() const override { return num_users_; }
  int num_items() const override { return num_items_; }

  std::unique_ptr<Batch> StartBatch() override;
  void PrepareForEval() override {}
  Vector ScoreAllItems(int user) const override;
  std::vector<ad::Param*> Params() override;

 private:
  int num_users_;
  int num_items_;
  ad::Param user_emb_;
  ad::Param item_emb_;
};

}  // namespace lkpdpp

#endif  // LKPDPP_MODELS_MF_H_
