// GCN backbone: high-order propagation on the user-item graph.
//
// The paper's Table II deploys every criterion on "the basic GCN
// framework that learns representations from high-order connectivities
// referring to NGCF". This implementation propagates a joint embedding
// table through `num_layers` rounds of symmetric-normalized neighbor
// aggregation and averages the layer outputs (the simplified propagation
// popularized by LightGCN, which NGCF's successors converged on).
// Scores are inner products of the propagated representations.

#ifndef LKPDPP_MODELS_GCN_H_
#define LKPDPP_MODELS_GCN_H_

#include <memory>

#include "common/result.h"
#include "data/dataset.h"
#include "models/rec_model.h"

namespace lkpdpp {

class GcnModel final : public RecModel {
 public:
  struct Config {
    int embedding_dim = 16;
    int num_layers = 2;
    double init_scale = 0.1;
    uint64_t seed = 2;
  };

  /// Builds the normalized adjacency from the dataset's train edges.
  static Result<std::unique_ptr<GcnModel>> Create(const Dataset& dataset,
                                                  const Config& config);

  std::string name() const override { return "GCN"; }
  int num_users() const override { return num_users_; }
  int num_items() const override { return num_items_; }

  std::unique_ptr<Batch> StartBatch() override;
  void PrepareForEval() override;
  Vector ScoreAllItems(int user) const override;
  std::vector<ad::Param*> Params() override;

 private:
  GcnModel(int num_users, int num_items, SparseMatrix adjacency,
           const Config& config);

  /// Plain (no-grad) propagation of the current embeddings.
  Matrix PropagateEval() const;

  int num_users_;
  int num_items_;
  int num_layers_;
  SparseMatrix adjacency_;
  ad::Param embeddings_;  // (N+M) x d joint table.
  Matrix eval_cache_;     // PrepareForEval output.
};

}  // namespace lkpdpp

#endif  // LKPDPP_MODELS_GCN_H_
