#include "models/mf.h"

#include "common/logging.h"

namespace lkpdpp {

namespace {
Matrix RandomInit(int rows, int cols, double scale, Rng* rng) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = rng->Normal(0.0, scale);
  }
  return m;
}
}  // namespace

MfModel::MfModel(int num_users, int num_items, const Config& config)
    : num_users_(num_users),
      num_items_(num_items),
      user_emb_("mf.user_emb", Matrix()),
      item_emb_("mf.item_emb", Matrix()) {
  LKP_CHECK_GT(num_users, 0);
  LKP_CHECK_GT(num_items, 0);
  Rng rng(config.seed);
  user_emb_.value =
      RandomInit(num_users, config.embedding_dim, config.init_scale, &rng);
  item_emb_.value =
      RandomInit(num_items, config.embedding_dim, config.init_scale, &rng);
  user_emb_.ZeroGrad();
  item_emb_.ZeroGrad();
}

namespace {

// MF has no shared batch prefix: instances gather straight from the
// embedding tables, so the instance params ARE the model params and
// Finish has nothing to backpropagate.
class MfBatch final : public RecModel::Batch {
 public:
  MfBatch(ad::Param* user_emb, ad::Param* item_emb)
      : user_emb_(user_emb), item_emb_(item_emb) {}

  ad::Tensor ScoreItems(ad::Graph* graph, int user,
                        const std::vector<int>& items) override {
    ad::Tensor u_row = graph->GatherRows(graph->Parameter(user_emb_), {user});
    ad::Tensor rows = graph->GatherRows(graph->Parameter(item_emb_), items);
    return graph->MatMulTransB(rows, u_row);  // (|items| x 1)
  }

  ad::Tensor ItemRepresentations(ad::Graph* graph,
                                 const std::vector<int>& items) override {
    return graph->GatherRows(graph->Parameter(item_emb_), items);
  }

  Status Finish() override { return Status::OK(); }

 private:
  ad::Param* user_emb_;
  ad::Param* item_emb_;
};

}  // namespace

std::unique_ptr<RecModel::Batch> MfModel::StartBatch() {
  return std::make_unique<MfBatch>(&user_emb_, &item_emb_);
}

Vector MfModel::ScoreAllItems(int user) const {
  LKP_CHECK(user >= 0 && user < num_users_);
  return MatVec(item_emb_.value, user_emb_.value.Row(user));
}

std::vector<ad::Param*> MfModel::Params() {
  return {&user_emb_, &item_emb_};
}

}  // namespace lkpdpp
