// Uniform negative sampling over each user's unobserved items.

#ifndef LKPDPP_SAMPLING_NEGATIVE_SAMPLER_H_
#define LKPDPP_SAMPLING_NEGATIVE_SAMPLER_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"

namespace lkpdpp {

/// Draws distinct unobserved items for a user, uniformly at random.
class NegativeSampler {
 public:
  explicit NegativeSampler(const Dataset* dataset) : dataset_(dataset) {}

  /// Samples `count` distinct items that are neither observed by `user`
  /// (train or validation positives) nor contained in `exclude`.
  /// Fails if the user's unobserved pool is smaller than `count`.
  Result<std::vector<int>> Sample(int user, int count,
                                  const std::vector<int>& exclude,
                                  Rng* rng) const;

 private:
  const Dataset* dataset_;
};

}  // namespace lkpdpp

#endif  // LKPDPP_SAMPLING_NEGATIVE_SAMPLER_H_
