// Training instances: the k+n ground sets LkP trains on.
//
// A training instance pairs a user with a ground set of k observed
// (target) items and n unobserved items (Section III-B1 of the paper).
// The first `num_pos` entries of `items` are the targets.

#ifndef LKPDPP_SAMPLING_INSTANCE_H_
#define LKPDPP_SAMPLING_INSTANCE_H_

#include <vector>

namespace lkpdpp {

struct TrainingInstance {
  int user = 0;
  /// Global item ids; entries [0, num_pos) are observed targets, entries
  /// [num_pos, size) are sampled unobserved items. All distinct.
  std::vector<int> items;
  int num_pos = 0;

  int ground_size() const { return static_cast<int>(items.size()); }
  int num_neg() const { return ground_size() - num_pos; }
};

}  // namespace lkpdpp

#endif  // LKPDPP_SAMPLING_INSTANCE_H_
