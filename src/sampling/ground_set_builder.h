// Ground-set construction: the S and R training-instance modes.
//
// Section IV-A2 of the paper defines two instance-construction modes:
//   S (sequential): k targets selected in the order they occurred using a
//     sliding window over the user's chronological positives, plus n
//     random unobserved items;
//   R (random): k targets and n unobserved items drawn at random.
// Both guarantee every target item of a user appears in at least one
// instance per epoch, keeping the number of set-level instances no larger
// than the pointwise/BPR instance count (fair-comparison argument in
// Section III-B4).

#ifndef LKPDPP_SAMPLING_GROUND_SET_BUILDER_H_
#define LKPDPP_SAMPLING_GROUND_SET_BUILDER_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "linalg/matrix.h"
#include "sampling/instance.h"
#include "sampling/negative_sampler.h"

namespace lkpdpp {

/// How the k targets of an instance are chosen.
enum class TargetSelection {
  kSequential,  ///< "S": sliding window over chronological positives.
  kRandom,      ///< "R": uniform sample of k positives.
};

const char* TargetSelectionName(TargetSelection mode);

/// Builds one epoch's worth of k+n ground sets.
class GroundSetBuilder {
 public:
  /// `k` targets and `n` negatives per instance. Users with fewer than k
  /// train positives produce no instances (they still participate in
  /// evaluation).
  GroundSetBuilder(const Dataset* dataset, int k, int n,
                   TargetSelection mode);

  int k() const { return k_; }
  int n() const { return n_; }
  TargetSelection mode() const { return mode_; }

  /// All instances for `user` in this epoch: ceil(T / k) windows covering
  /// every target at least once (the final window is back-shifted to stay
  /// in range rather than padded). Fails only on negative-sampling
  /// exhaustion.
  Result<std::vector<TrainingInstance>> BuildForUser(int user,
                                                     Rng* rng) const;

  /// Instances for every user, in user order (callers shuffle).
  Result<std::vector<TrainingInstance>> BuildEpoch(Rng* rng) const;

  /// Serving-side ground set: the user's `pool_size` highest-scoring
  /// items that are neither train nor validation positives, in
  /// descending-score order (ties broken by smaller item id, so the pool
  /// is bit-deterministic at any thread count). Returns fewer than
  /// `pool_size` items when the unobserved catalog is smaller. `scores`
  /// must cover the full catalog. Static: serving pools depend only on
  /// the dataset, not on the k/n/mode training shape.
  static std::vector<int> BuildServingPool(const Dataset& dataset, int user,
                                           const Vector& scores,
                                           int pool_size);

 private:
  const Dataset* dataset_;
  NegativeSampler negatives_;
  int k_;
  int n_;
  TargetSelection mode_;
};

}  // namespace lkpdpp

#endif  // LKPDPP_SAMPLING_GROUND_SET_BUILDER_H_
