// Sampling (T+, T-) set pairs for diversity-kernel training.
//
// Equation 3 of the paper trains the diversity kernel K by contrasting
// log det(K_{T+}) against log det(K_{T-}), where T+ is a category-diverse
// subset of a user's observed items (broad coverage) and T- contains
// negative items. This sampler produces those pairs from the dataset.

#ifndef LKPDPP_SAMPLING_DIVERSE_PAIRS_H_
#define LKPDPP_SAMPLING_DIVERSE_PAIRS_H_

#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"

namespace lkpdpp {

/// A contrastive pair of item sets used by the Eq. 3 objective.
struct DiverseSetPair {
  std::vector<int> positive;  ///< Category-diverse observed items (T+).
  std::vector<int> negative;  ///< Items with unobserved/monotonous mix (T-).
};

class DiversePairSampler {
 public:
  /// Pairs have `set_size` items each.
  DiversePairSampler(const Dataset* dataset, int set_size);

  /// Builds one pair from a random user: T+ greedily maximizes category
  /// coverage over the user's train positives (ties randomized); T- mixes
  /// random unobserved items. Fails for users with too few positives, in
  /// which case callers should retry with another draw.
  Result<DiverseSetPair> SamplePair(Rng* rng) const;

  /// Builds one pair anchored at an observed interaction (user, item) —
  /// the streaming fold-in entry point (serve/model_update.h): T+ is
  /// forced to contain `item` (first), completed to set_size with a
  /// greedy category-diverse selection over the user's OTHER train
  /// positives; T- samples unobserved items as in SamplePair. The anchor
  /// itself need not be a recorded positive (it is typically the fresh
  /// event being folded in). Fails when the user lacks set_size - 1
  /// usable positives around the anchor; streaming callers soft-skip.
  Result<DiverseSetPair> SamplePairAnchored(int user, int item,
                                            Rng* rng) const;

  /// Draws `count` pairs, skipping infeasible users (retries bounded).
  Result<std::vector<DiverseSetPair>> SamplePairs(int count, Rng* rng) const;

 private:
  const Dataset* dataset_;
  int set_size_;
};

/// Greedy max-coverage selection of `count` items from `pool` by their
/// category sets (exposed for tests and for the Figure 5 case study).
std::vector<int> GreedyDiverseSubset(const Dataset& dataset,
                                     const std::vector<int>& pool, int count,
                                     Rng* rng);

}  // namespace lkpdpp

#endif  // LKPDPP_SAMPLING_DIVERSE_PAIRS_H_
