#include "sampling/negative_sampler.h"

#include <algorithm>

#include "common/string_util.h"

namespace lkpdpp {

Result<std::vector<int>> NegativeSampler::Sample(
    int user, int count, const std::vector<int>& exclude, Rng* rng) const {
  const int m = dataset_->num_items();
  const int observed =
      static_cast<int>(dataset_->TrainItems(user).size() +
                       dataset_->ValItems(user).size());
  if (m - observed - static_cast<int>(exclude.size()) < count) {
    return Status::FailedPrecondition(
        StrFormat("user %d has fewer than %d unobserved items", user,
                  count));
  }
  std::vector<int> out;
  out.reserve(static_cast<size_t>(count));
  // Rejection sampling; the unobserved pool is large relative to count in
  // any realistic recommendation dataset, so this terminates quickly.
  int attempts = 0;
  const int max_attempts = 1000 * count + 1000;
  while (static_cast<int>(out.size()) < count) {
    if (++attempts > max_attempts) {
      return Status::Internal("negative sampling failed to terminate");
    }
    const int item = rng->UniformInt(m);
    if (dataset_->IsObserved(user, item)) continue;
    if (std::find(exclude.begin(), exclude.end(), item) != exclude.end()) {
      continue;
    }
    if (std::find(out.begin(), out.end(), item) != out.end()) continue;
    out.push_back(item);
  }
  return out;
}

}  // namespace lkpdpp
