#include "sampling/negative_sampler.h"

#include <algorithm>

#include "common/string_util.h"

namespace lkpdpp {

Result<std::vector<int>> NegativeSampler::Sample(
    int user, int count, const std::vector<int>& exclude, Rng* rng) const {
  const int m = dataset_->num_items();
  const int observed =
      static_cast<int>(dataset_->TrainItems(user).size() +
                       dataset_->ValItems(user).size());
  // Excluded items that are already observed (or duplicated, or out of
  // range) do not shrink the unobserved pool; only count the rest, so the
  // feasibility guard is exact even on small catalogs where the targets
  // passed in `exclude` are all observed positives.
  std::vector<int> extra_excluded = exclude;
  std::sort(extra_excluded.begin(), extra_excluded.end());
  extra_excluded.erase(
      std::unique(extra_excluded.begin(), extra_excluded.end()),
      extra_excluded.end());
  int excluded_unobserved = 0;
  for (int item : extra_excluded) {
    if (item >= 0 && item < m && !dataset_->IsObserved(user, item)) {
      ++excluded_unobserved;
    }
  }
  const int pool = m - observed - excluded_unobserved;
  if (pool < count) {
    return Status::FailedPrecondition(
        StrFormat("user %d has fewer than %d unobserved items", user,
                  count));
  }
  // Rejection sampling needs ~(m/pool) attempts per draw, against a
  // budget of ~1000 per requested item; enumerate the pool and sample
  // exactly only when the request nearly drains the pool or the pool is
  // a sliver of the catalog (< 1/250, leaving 4x budget margin) — an
  // O(m) scan is a hot-path regression anywhere rejection still works.
  if (2 * count > pool || static_cast<long>(m) > 250L * pool) {
    std::vector<int> candidates;
    candidates.reserve(static_cast<size_t>(pool));
    for (int item = 0; item < m; ++item) {
      if (dataset_->IsObserved(user, item)) continue;
      if (std::binary_search(extra_excluded.begin(), extra_excluded.end(),
                             item)) {
        continue;
      }
      candidates.push_back(item);
    }
    std::vector<int> idx = rng->SampleWithoutReplacement(
        static_cast<int>(candidates.size()), count);
    std::vector<int> out;
    out.reserve(static_cast<size_t>(count));
    for (int i : idx) out.push_back(candidates[static_cast<size_t>(i)]);
    return out;
  }
  std::vector<int> out;
  out.reserve(static_cast<size_t>(count));
  int attempts = 0;
  const int max_attempts = 1000 * count + 1000;
  while (static_cast<int>(out.size()) < count) {
    if (++attempts > max_attempts) {
      return Status::Internal("negative sampling failed to terminate");
    }
    const int item = rng->UniformInt(m);
    if (dataset_->IsObserved(user, item)) continue;
    if (std::binary_search(extra_excluded.begin(), extra_excluded.end(),
                           item)) {
      continue;
    }
    if (std::find(out.begin(), out.end(), item) != out.end()) continue;
    out.push_back(item);
  }
  return out;
}

}  // namespace lkpdpp
