#include "sampling/ground_set_builder.h"

#include <algorithm>

#include "common/logging.h"

namespace lkpdpp {

const char* TargetSelectionName(TargetSelection mode) {
  switch (mode) {
    case TargetSelection::kSequential:
      return "S";
    case TargetSelection::kRandom:
      return "R";
  }
  return "?";
}

GroundSetBuilder::GroundSetBuilder(const Dataset* dataset, int k, int n,
                                   TargetSelection mode)
    : dataset_(dataset), negatives_(dataset), k_(k), n_(n), mode_(mode) {
  LKP_CHECK_GT(k, 0);
  LKP_CHECK_GT(n, 0);
}

Result<std::vector<TrainingInstance>> GroundSetBuilder::BuildForUser(
    int user, Rng* rng) const {
  const std::vector<int>& positives = dataset_->TrainItems(user);
  const int t = static_cast<int>(positives.size());
  std::vector<TrainingInstance> out;
  if (t < k_) return out;

  // Window start offsets with stride k; back-shift the last window so it
  // ends exactly at the last positive.
  std::vector<int> starts;
  for (int s = 0; s + k_ <= t; s += k_) starts.push_back(s);
  if (starts.empty() || starts.back() + k_ < t) starts.push_back(t - k_);

  out.reserve(starts.size());
  for (int start : starts) {
    TrainingInstance inst;
    inst.user = user;
    inst.num_pos = k_;
    if (mode_ == TargetSelection::kSequential) {
      inst.items.assign(positives.begin() + start,
                        positives.begin() + start + k_);
    } else {
      // R mode: targets drawn uniformly without replacement; the window
      // machinery still fixes the per-epoch instance count.
      std::vector<int> pick = rng->SampleWithoutReplacement(t, k_);
      inst.items.reserve(static_cast<size_t>(k_ + n_));
      for (int p : pick) inst.items.push_back(positives[p]);
    }
    LKP_ASSIGN_OR_RETURN(std::vector<int> negs,
                         negatives_.Sample(user, n_, inst.items, rng));
    inst.items.insert(inst.items.end(), negs.begin(), negs.end());
    out.push_back(std::move(inst));
  }
  return out;
}

Result<std::vector<TrainingInstance>> GroundSetBuilder::BuildEpoch(
    Rng* rng) const {
  std::vector<TrainingInstance> out;
  for (int u = 0; u < dataset_->num_users(); ++u) {
    LKP_ASSIGN_OR_RETURN(std::vector<TrainingInstance> user_insts,
                         BuildForUser(u, rng));
    for (TrainingInstance& inst : user_insts) {
      out.push_back(std::move(inst));
    }
  }
  return out;
}

std::vector<int> GroundSetBuilder::BuildServingPool(const Dataset& dataset,
                                                    int user,
                                                    const Vector& scores,
                                                    int pool_size) {
  LKP_CHECK_EQ(scores.size(), dataset.num_items());
  std::vector<int> candidates;
  candidates.reserve(static_cast<size_t>(dataset.num_items()));
  for (int i = 0; i < dataset.num_items(); ++i) {
    if (!dataset.IsObserved(user, i)) candidates.push_back(i);
  }
  if (pool_size < static_cast<int>(candidates.size())) {
    std::partial_sort(candidates.begin(), candidates.begin() + pool_size,
                      candidates.end(), [&scores](int a, int b) {
                        if (scores[a] != scores[b]) {
                          return scores[a] > scores[b];
                        }
                        return a < b;
                      });
    candidates.resize(static_cast<size_t>(pool_size));
  } else {
    std::sort(candidates.begin(), candidates.end(),
              [&scores](int a, int b) {
                if (scores[a] != scores[b]) return scores[a] > scores[b];
                return a < b;
              });
  }
  return candidates;
}

}  // namespace lkpdpp
