#include "sampling/diverse_pairs.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "sampling/negative_sampler.h"

namespace lkpdpp {

DiversePairSampler::DiversePairSampler(const Dataset* dataset, int set_size)
    : dataset_(dataset), set_size_(set_size) {
  LKP_CHECK_GT(set_size, 0);
}

std::vector<int> GreedyDiverseSubset(const Dataset& dataset,
                                     const std::vector<int>& pool, int count,
                                     Rng* rng) {
  std::vector<int> shuffled = pool;
  rng->Shuffle(&shuffled);

  std::vector<int> chosen;
  std::vector<bool> covered(static_cast<size_t>(dataset.num_categories()),
                            false);
  std::vector<bool> used(shuffled.size(), false);

  while (static_cast<int>(chosen.size()) < count) {
    int best = -1;
    int best_gain = -1;
    for (size_t i = 0; i < shuffled.size(); ++i) {
      if (used[i]) continue;
      int gain = 0;
      for (int c : dataset.ItemCategories(shuffled[i])) {
        if (!covered[static_cast<size_t>(c)]) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;  // Pool exhausted.
    used[static_cast<size_t>(best)] = true;
    chosen.push_back(shuffled[static_cast<size_t>(best)]);
    for (int c : dataset.ItemCategories(shuffled[static_cast<size_t>(best)])) {
      covered[static_cast<size_t>(c)] = true;
    }
  }
  return chosen;
}

Result<DiverseSetPair> DiversePairSampler::SamplePair(Rng* rng) const {
  const int user = rng->UniformInt(dataset_->num_users());
  const std::vector<int>& positives = dataset_->TrainItems(user);
  if (static_cast<int>(positives.size()) < set_size_) {
    return Status::FailedPrecondition(
        StrFormat("user %d has %zu < %d train positives", user,
                  positives.size(), set_size_));
  }
  DiverseSetPair pair;
  pair.positive = GreedyDiverseSubset(*dataset_, positives, set_size_, rng);
  NegativeSampler negatives(dataset_);
  LKP_ASSIGN_OR_RETURN(
      pair.negative,
      negatives.Sample(user, set_size_, pair.positive, rng));
  return pair;
}

Result<DiverseSetPair> DiversePairSampler::SamplePairAnchored(
    int user, int item, Rng* rng) const {
  if (user < 0 || user >= dataset_->num_users()) {
    return Status::OutOfRange(
        StrFormat("user %d outside [0, %d)", user, dataset_->num_users()));
  }
  if (item < 0 || item >= dataset_->num_items()) {
    return Status::OutOfRange(
        StrFormat("item %d outside [0, %d)", item, dataset_->num_items()));
  }
  const std::vector<int>& positives = dataset_->TrainItems(user);
  std::vector<int> pool;
  pool.reserve(positives.size());
  for (int p : positives) {
    if (p != item) pool.push_back(p);
  }
  if (static_cast<int>(pool.size()) < set_size_ - 1) {
    return Status::FailedPrecondition(
        StrFormat("user %d has %zu usable positives < %d needed around the "
                  "anchor",
                  user, pool.size(), set_size_ - 1));
  }
  DiverseSetPair pair;
  pair.positive.push_back(item);
  const std::vector<int> rest =
      GreedyDiverseSubset(*dataset_, pool, set_size_ - 1, rng);
  pair.positive.insert(pair.positive.end(), rest.begin(), rest.end());
  NegativeSampler negatives(dataset_);
  LKP_ASSIGN_OR_RETURN(
      pair.negative, negatives.Sample(user, set_size_, pair.positive, rng));
  return pair;
}

Result<std::vector<DiverseSetPair>> DiversePairSampler::SamplePairs(
    int count, Rng* rng) const {
  std::vector<DiverseSetPair> out;
  out.reserve(static_cast<size_t>(count));
  int failures = 0;
  const int max_failures = 50 * count + 100;
  while (static_cast<int>(out.size()) < count) {
    Result<DiverseSetPair> pair = SamplePair(rng);
    if (pair.ok()) {
      out.push_back(std::move(pair).ValueOrDie());
    } else if (++failures > max_failures) {
      return Status::FailedPrecondition(
          "too few users with enough positives for diverse-pair sampling");
    }
  }
  return out;
}

}  // namespace lkpdpp
