// First-order optimizers over autodiff Params.
//
// The paper trains everything with Adam and a grid-searched learning
// rate; SGD is kept for ablations. Both support L2 weight decay and
// global-norm gradient clipping (DPP log-likelihoods can spike early in
// training).
//
// Steps are fallible: a non-finite gradient norm (an instance that blew
// up upstream) aborts the update with a NumericalError before any
// parameter is touched, instead of silently scaling every gradient by
// NaN. With a thread pool attached, the per-parameter update loops run
// in parallel — updates for distinct params touch disjoint memory and
// the global-norm reduction stays in fixed parameter order, so stepping
// is bit-identical at any thread count.

#ifndef LKPDPP_OPT_OPTIMIZER_H_
#define LKPDPP_OPT_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "autodiff/graph.h"
#include "common/result.h"
#include "common/thread_pool.h"

namespace lkpdpp {

/// Base optimizer: owns no parameters, steps the ones it is given.
class Optimizer {
 public:
  struct Options {
    double learning_rate = 0.01;
    double weight_decay = 0.0;
    /// 0 disables clipping.
    double clip_norm = 5.0;
  };

  virtual ~Optimizer() = default;
  virtual std::string name() const = 0;

  /// Applies one update using each param's accumulated grad, then zeroes
  /// the grads. On error (non-finite gradient norm) no param is
  /// modified and the grads are left in place for inspection.
  virtual Status Step(const std::vector<ad::Param*>& params) = 0;

  /// Fans the per-param update loops out over `pool` (results are
  /// bit-identical to the serial path). Pass nullptr to go serial.
  void SetThreadPool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

  /// Scales all gradients so the global L2 norm is at most `clip_norm`;
  /// returns the pre-clip norm. Fails with NumericalError on a
  /// non-finite norm (NaN/Inf gradients), leaving all grads untouched.
  static Result<double> ClipGlobalNorm(const std::vector<ad::Param*>& params,
                                       double clip_norm,
                                       ThreadPool* pool = nullptr);

 protected:
  /// Runs fn(i) for each param index, on the pool when attached.
  void ForEachParam(int n, const std::function<void(int)>& fn) const;

 private:
  ThreadPool* pool_ = nullptr;
};

/// Plain SGD with optional weight decay.
class SgdOptimizer final : public Optimizer {
 public:
  explicit SgdOptimizer(Options options) : options_(options) {}
  std::string name() const override { return "SGD"; }
  Status Step(const std::vector<ad::Param*>& params) override;

 private:
  Options options_;
};

/// Adam (Kingma & Ba) with bias correction.
class AdamOptimizer final : public Optimizer {
 public:
  struct AdamOptions : Options {
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
  };

  explicit AdamOptimizer(AdamOptions options) : options_(options) {}
  std::string name() const override { return "Adam"; }
  Status Step(const std::vector<ad::Param*>& params) override;

 private:
  struct State {
    Matrix m;
    Matrix v;
  };
  AdamOptions options_;
  long t_ = 0;
  // Keyed by Param pointer; params must be stable across steps.
  std::vector<std::pair<ad::Param*, State>> states_;

  State& StateFor(ad::Param* p);
};

}  // namespace lkpdpp

#endif  // LKPDPP_OPT_OPTIMIZER_H_
