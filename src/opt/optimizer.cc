#include "opt/optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace lkpdpp {

double Optimizer::ClipGlobalNorm(const std::vector<ad::Param*>& params,
                                 double clip_norm) {
  double total = 0.0;
  for (ad::Param* p : params) {
    const double n = p->grad.FrobeniusNorm();
    total += n * n;
  }
  total = std::sqrt(total);
  if (clip_norm > 0.0 && total > clip_norm) {
    const double scale = clip_norm / total;
    for (ad::Param* p : params) p->grad *= scale;
  }
  return total;
}

void SgdOptimizer::Step(const std::vector<ad::Param*>& params) {
  ClipGlobalNorm(params, options_.clip_norm);
  for (ad::Param* p : params) {
    for (int r = 0; r < p->value.rows(); ++r) {
      for (int c = 0; c < p->value.cols(); ++c) {
        const double g =
            p->grad(r, c) + options_.weight_decay * p->value(r, c);
        p->value(r, c) -= options_.learning_rate * g;
      }
    }
    p->ZeroGrad();
  }
}

AdamOptimizer::State& AdamOptimizer::StateFor(ad::Param* p) {
  for (auto& [param, state] : states_) {
    if (param == p) return state;
  }
  states_.push_back(
      {p, State{Matrix(p->value.rows(), p->value.cols()),
                Matrix(p->value.rows(), p->value.cols())}});
  return states_.back().second;
}

void AdamOptimizer::Step(const std::vector<ad::Param*>& params) {
  ClipGlobalNorm(params, options_.clip_norm);
  ++t_;
  const double bc1 = 1.0 - std::pow(options_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(options_.beta2, static_cast<double>(t_));
  for (ad::Param* p : params) {
    State& s = StateFor(p);
    for (int r = 0; r < p->value.rows(); ++r) {
      for (int c = 0; c < p->value.cols(); ++c) {
        const double g =
            p->grad(r, c) + options_.weight_decay * p->value(r, c);
        s.m(r, c) = options_.beta1 * s.m(r, c) + (1.0 - options_.beta1) * g;
        s.v(r, c) =
            options_.beta2 * s.v(r, c) + (1.0 - options_.beta2) * g * g;
        const double mhat = s.m(r, c) / bc1;
        const double vhat = s.v(r, c) / bc2;
        p->value(r, c) -=
            options_.learning_rate * mhat /
            (std::sqrt(vhat) + options_.epsilon);
      }
    }
    p->ZeroGrad();
  }
}

}  // namespace lkpdpp
