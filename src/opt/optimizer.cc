#include "opt/optimizer.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lkpdpp {

namespace {

// Non-finite gradients caught by ClipGlobalNorm before any parameter
// was touched, attributed to the optimizer site.
obs::Counter* OptNumericalErrors() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "lkp_numerical_errors_total{site=\"optimizer\"}");
  return counter;
}

}  // namespace

void Optimizer::ForEachParam(int n,
                             const std::function<void(int)>& fn) const {
  ParallelForOrSerial(pool_, n, fn);
}

Result<double> Optimizer::ClipGlobalNorm(
    const std::vector<ad::Param*>& params, double clip_norm,
    ThreadPool* pool) {
  const int n = static_cast<int>(params.size());
  // Per-param norms computed in parallel, reduced in fixed param order
  // so the total (and thus the scale factor) is thread-count invariant.
  std::vector<double> sq(static_cast<size_t>(n), 0.0);
  ParallelForOrSerial(pool, n, [&](int i) {
    const double nrm = params[static_cast<size_t>(i)]->grad.FrobeniusNorm();
    sq[static_cast<size_t>(i)] = nrm * nrm;
  });
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += sq[static_cast<size_t>(i)];
  total = std::sqrt(total);
  if (!std::isfinite(total)) {
    OptNumericalErrors()->Inc();
    // Name a culprit to make the error actionable.
    for (int i = 0; i < n; ++i) {
      if (!params[static_cast<size_t>(i)]->grad.AllFinite()) {
        return Status::NumericalError(
            StrFormat("non-finite gradient in param '%s'",
                      params[static_cast<size_t>(i)]->name.c_str()));
      }
    }
    return Status::NumericalError("non-finite global gradient norm");
  }
  if (clip_norm > 0.0 && total > clip_norm) {
    const double scale = clip_norm / total;
    ParallelForOrSerial(pool, n, [&](int i) {
      params[static_cast<size_t>(i)]->grad *= scale;
    });
  }
  return total;
}

Status SgdOptimizer::Step(const std::vector<ad::Param*>& params) {
  LKP_TRACE_SPAN("train.step");
  LKP_RETURN_IF_ERROR(
      ClipGlobalNorm(params, options_.clip_norm, thread_pool()).status());
  ForEachParam(static_cast<int>(params.size()), [&](int i) {
    ad::Param* p = params[static_cast<size_t>(i)];
    for (int r = 0; r < p->value.rows(); ++r) {
      for (int c = 0; c < p->value.cols(); ++c) {
        const double g =
            p->grad(r, c) + options_.weight_decay * p->value(r, c);
        p->value(r, c) -= options_.learning_rate * g;
      }
    }
    p->ZeroGrad();
  });
  return Status::OK();
}

AdamOptimizer::State& AdamOptimizer::StateFor(ad::Param* p) {
  for (auto& [param, state] : states_) {
    if (param == p) return state;
  }
  states_.push_back(
      {p, State{Matrix(p->value.rows(), p->value.cols()),
                Matrix(p->value.rows(), p->value.cols())}});
  return states_.back().second;
}

Status AdamOptimizer::Step(const std::vector<ad::Param*>& params) {
  LKP_TRACE_SPAN("train.step");
  LKP_RETURN_IF_ERROR(
      ClipGlobalNorm(params, options_.clip_norm, thread_pool()).status());
  // Materialize moment states serially: StateFor mutates the registry
  // and must not race with the parallel update loop below.
  for (ad::Param* p : params) StateFor(p);
  ++t_;
  const double bc1 = 1.0 - std::pow(options_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(options_.beta2, static_cast<double>(t_));
  ForEachParam(static_cast<int>(params.size()), [&](int i) {
    ad::Param* p = params[static_cast<size_t>(i)];
    State& s = StateFor(p);
    for (int r = 0; r < p->value.rows(); ++r) {
      for (int c = 0; c < p->value.cols(); ++c) {
        const double g =
            p->grad(r, c) + options_.weight_decay * p->value(r, c);
        s.m(r, c) = options_.beta1 * s.m(r, c) + (1.0 - options_.beta1) * g;
        s.v(r, c) =
            options_.beta2 * s.v(r, c) + (1.0 - options_.beta2) * g * g;
        const double mhat = s.m(r, c) / bc1;
        const double vhat = s.v(r, c) / bc2;
        p->value(r, c) -=
            options_.learning_rate * mhat /
            (std::sqrt(vhat) + options_.epsilon);
      }
    }
    p->ZeroGrad();
  });
  return Status::OK();
}

}  // namespace lkpdpp
