#include "opt/parallel_batch.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace lkpdpp {

namespace {

// Process-wide training metrics: how many instances flow through the
// minibatch path, how many are skipped, and how often a batch aborts on
// numerical breakdown before touching the parameters.
obs::Counter* TrainInstancesTotal() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "lkp_train_instances_total");
  return counter;
}
obs::Counter* TrainSkippedTotal() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "lkp_train_skipped_total");
  return counter;
}
obs::Counter* TrainBatchesTotal() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "lkp_train_batches_total");
  return counter;
}
obs::Counter* TrainNonFiniteAborts() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "lkp_train_nonfinite_aborts_total");
  return counter;
}
obs::Counter* TrainNumericalErrors() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "lkp_numerical_errors_total{site=\"train\"}");
  return counter;
}

struct InstanceOutcome {
  Status status;  // OK even when skipped; the workspace is just empty.
  Status skip_reason;
  bool contributed = false;
  double loss = 0.0;
  ad::GradientWorkspace workspace;
};

}  // namespace

Result<BatchGradSummary> AccumulateBatchGradients(
    int num_instances, ThreadPool* pool,
    const std::function<Result<InstanceGrad>(int, ad::Graph*)>& build,
    int grain) {
  if (num_instances < 0) {
    return Status::InvalidArgument("negative instance count");
  }
  std::vector<InstanceOutcome> outcomes(
      static_cast<size_t>(num_instances));

  auto run_one = [&](int i) {
    InstanceOutcome& out = outcomes[static_cast<size_t>(i)];
    ad::Graph graph(&out.workspace);
    Result<InstanceGrad> built = [&]() -> Result<InstanceGrad> {
      LKP_TRACE_SPAN("train.forward");
      return build(i, &graph);
    }();
    if (!built.ok()) {
      out.status = built.status();
      out.workspace.Clear();
      return;
    }
    if (built->seeds.empty()) {  // Skipped instance.
      out.skip_reason = built->skip_reason;
      return;
    }
    Status backward;
    {
      LKP_TRACE_SPAN("train.backward");
      backward = graph.Backward(built->seeds);
    }
    if (!backward.ok()) {
      out.status = backward;
      out.workspace.Clear();
      return;
    }
    out.loss = built->loss;
    out.contributed = true;
  };

  {
    LKP_TRACE_SPAN("train.batch");
    if (pool != nullptr) {
      if (grain <= 0) grain = pool->GrainFor(num_instances);
      pool->ParallelFor(num_instances, grain, run_one);
    } else {
      for (int i = 0; i < num_instances; ++i) run_one(i);
    }
  }
  TrainBatchesTotal()->Inc();
  TrainInstancesTotal()->Inc(num_instances);

  // First failure in instance order wins (deterministic across thread
  // counts); nothing has touched the params yet at this point.
  for (const InstanceOutcome& out : outcomes) {
    if (!out.status.ok()) {
      if (out.status.code() == StatusCode::kNumericalError) {
        TrainNonFiniteAborts()->Inc();
        TrainNumericalErrors()->Inc();
      }
      return out.status;
    }
  }

  LKP_TRACE_SPAN("train.reduce");
  BatchGradSummary summary;
  for (int i = 0; i < num_instances; ++i) {
    const InstanceOutcome& out = outcomes[static_cast<size_t>(i)];
    if (!out.contributed) {
      if (!out.skip_reason.ok()) summary.skipped.emplace_back(i, out.skip_reason);
      continue;
    }
    out.workspace.FlushIntoParams();
    ++summary.contributed;
    summary.loss_sum += out.loss;
  }
  if (!summary.skipped.empty()) {
    TrainSkippedTotal()->Inc(static_cast<long>(summary.skipped.size()));
  }
  return summary;
}

}  // namespace lkpdpp
