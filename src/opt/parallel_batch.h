// Data-parallel minibatch gradient accumulation with a deterministic
// reduction.
//
// Minibatch objectives in this repo (LkP and the baseline criteria, BPR
// in Rendle et al.'s formulation, the EM gradients of Gillenwater et
// al.) are sums of independent per-instance terms, so the batch can be
// sharded across threads: every instance gets a private autodiff Graph
// whose parameter gradients land in a private GradientWorkspace, and the
// workspaces are reduced into the shared Param::grad accumulators in
// fixed instance order 0..N-1 afterwards. Work distribution across
// threads is dynamic (ThreadPool::ParallelFor), but because each
// instance's computation depends only on read-only state and the
// reduction replays contributions in instance order, the result is
// bit-identical at any thread count — including the inline serial path
// used when no pool is attached.

#ifndef LKPDPP_OPT_PARALLEL_BATCH_H_
#define LKPDPP_OPT_PARALLEL_BATCH_H_

#include <functional>
#include <utility>
#include <vector>

#include "autodiff/graph.h"
#include "common/result.h"
#include "common/thread_pool.h"

namespace lkpdpp {

/// What one instance contributes to the batch.
struct InstanceGrad {
  /// Seed gradients to backpropagate through the instance's graph.
  /// Empty means the instance is skipped (it contributes nothing) —
  /// the soft-failure path for ill-conditioned instances.
  std::vector<std::pair<ad::Tensor, Matrix>> seeds;
  /// The instance's loss term (summed into BatchGradSummary::loss_sum).
  double loss = 0.0;
  /// Optional reason for an empty-seed skip, reported back through
  /// BatchGradSummary::skipped (does NOT abort the batch).
  Status skip_reason;
};

/// Aggregate over one batch.
struct BatchGradSummary {
  /// Instances that produced seeds (skipped ones excluded).
  long contributed = 0;
  double loss_sum = 0.0;
  /// Soft-skipped instances with a reason, in instance order.
  std::vector<std::pair<int, Status>> skipped;
};

/// Computes the summed gradient of `num_instances` independent loss
/// terms into the params referenced by the instances' graphs.
///
/// For each instance i, `build(i, graph)` constructs the instance's
/// subgraph on the given private graph (bound to a private workspace)
/// and returns its seeds, an empty InstanceGrad to skip it, or an error
/// to abort the batch. `build` runs concurrently for distinct instances
/// when `pool` is non-null and must only read shared state; it is run
/// inline on the calling thread when `pool` is null.
///
/// Error semantics: every instance task runs to completion (no
/// cancellation, so there is nothing to deadlock on), then the first
/// failing instance in index order determines the returned error and
/// NO gradients are flushed — the caller skips its optimizer step, so a
/// mid-batch failure can never leave a partial update behind.
///
/// `grain` coarsens the ParallelFor dispatch (contiguous runs of
/// `grain` instances per claim); 0 picks pool->GrainFor(num_instances).
/// Chunking changes only which thread runs an instance, never the
/// instance-order reduction, so results stay bit-identical.
Result<BatchGradSummary> AccumulateBatchGradients(
    int num_instances, ThreadPool* pool,
    const std::function<Result<InstanceGrad>(int instance,
                                             ad::Graph* graph)>& build,
    int grain = 0);

}  // namespace lkpdpp

#endif  // LKPDPP_OPT_PARALLEL_BATCH_H_
