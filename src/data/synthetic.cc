#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace lkpdpp {

namespace {

// Dirichlet(alpha, .., alpha) draw via normalized Gamma(alpha, 1) samples.
// Gamma sampling uses Marsaglia & Tsang for alpha >= 1 and the boost
// transform for alpha < 1.
double SampleGamma(double alpha, Rng* rng) {
  if (alpha < 1.0) {
    const double u = std::max(rng->Uniform(), 1e-12);
    return SampleGamma(alpha + 1.0, rng) * std::pow(u, 1.0 / alpha);
  }
  const double d = alpha - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = rng->Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = rng->Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(std::max(u, 1e-300)) <
        0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::vector<double> SampleDirichlet(int dim, double alpha, Rng* rng) {
  std::vector<double> out(static_cast<size_t>(dim));
  double total = 0.0;
  for (double& x : out) {
    x = SampleGamma(alpha, rng);
    total += x;
  }
  if (total <= 0.0) {
    for (double& x : out) x = 1.0 / dim;
  } else {
    for (double& x : out) x /= total;
  }
  return out;
}

}  // namespace

Result<Dataset> GenerateSyntheticDataset(const SyntheticConfig& config) {
  if (config.num_users <= 0 || config.num_items <= 0 ||
      config.num_categories <= 0 || config.num_events <= 0) {
    return Status::InvalidArgument("synthetic config sizes must be positive");
  }
  Rng rng(config.seed);

  // --- Item side: categories and popularity. ---
  CategoryTable cats;
  cats.num_categories = config.num_categories;
  cats.item_categories.resize(static_cast<size_t>(config.num_items));
  for (int i = 0; i < config.num_items; ++i) {
    std::vector<int>& ic = cats.item_categories[static_cast<size_t>(i)];
    ic.push_back(rng.UniformInt(config.num_categories));
    // Poisson-ish extras via repeated Bernoulli halving.
    double remaining = config.extra_categories_mean;
    while (remaining > 0.0 && rng.Bernoulli(std::min(remaining, 0.9)) &&
           static_cast<int>(ic.size()) < config.num_categories) {
      int extra = rng.UniformInt(config.num_categories);
      if (std::find(ic.begin(), ic.end(), extra) == ic.end()) {
        ic.push_back(extra);
      }
      remaining -= 1.0;
    }
    std::sort(ic.begin(), ic.end());
  }

  std::vector<double> popularity(static_cast<size_t>(config.num_items));
  for (int i = 0; i < config.num_items; ++i) {
    popularity[static_cast<size_t>(i)] =
        1.0 / std::pow(static_cast<double>(i + 1),
                       config.popularity_exponent);
  }
  // Shuffle so popularity does not correlate with item id / category.
  rng.Shuffle(&popularity);

  // Per-category item lists, weighted by popularity for fast draws.
  std::vector<std::vector<int>> items_of_category(
      static_cast<size_t>(config.num_categories));
  for (int i = 0; i < config.num_items; ++i) {
    for (int c : cats.item_categories[static_cast<size_t>(i)]) {
      items_of_category[static_cast<size_t>(c)].push_back(i);
    }
  }

  // --- User side: affinities. ---
  std::vector<std::vector<double>> affinity(
      static_cast<size_t>(config.num_users));
  for (int u = 0; u < config.num_users; ++u) {
    affinity[static_cast<size_t>(u)] = SampleDirichlet(
        config.num_categories, config.user_affinity_concentration, &rng);
  }

  // --- Event generation with category momentum. ---
  std::vector<RatingEvent> events;
  events.reserve(static_cast<size_t>(config.num_events));
  std::vector<int> last_category(static_cast<size_t>(config.num_users), -1);
  std::vector<long> user_clock(static_cast<size_t>(config.num_users), 0);

  for (long e = 0; e < config.num_events; ++e) {
    const int u = rng.UniformInt(config.num_users);
    const auto& aff = affinity[static_cast<size_t>(u)];

    int category;
    if (last_category[static_cast<size_t>(u)] >= 0 &&
        rng.Bernoulli(config.category_momentum)) {
      category = last_category[static_cast<size_t>(u)];
    } else {
      category = rng.Categorical(aff);
    }
    const auto& pool = items_of_category[static_cast<size_t>(category)];
    if (pool.empty()) continue;
    std::vector<double> w(pool.size());
    for (size_t i = 0; i < pool.size(); ++i) {
      w[i] = popularity[static_cast<size_t>(pool[i])];
    }
    const int item = pool[static_cast<size_t>(rng.Categorical(w))];
    last_category[static_cast<size_t>(u)] = category;

    // Rating: affinity between user and the item's categories drives the
    // chance of a 5; everything else gets 1..4 (discarded by
    // binarization).
    double match = 0.0;
    for (int c : cats.item_categories[static_cast<size_t>(item)]) {
      match = std::max(match, aff[static_cast<size_t>(c)]);
    }
    const double p5 = std::min(
        0.95, config.positive_affinity_boost *
                  (0.15 + match * config.num_categories * 0.08));
    const double rating =
        rng.Bernoulli(p5) ? 5.0 : static_cast<double>(rng.UniformInt(1, 4));

    events.push_back(RatingEvent{u, item, rating,
                                 user_clock[static_cast<size_t>(u)]++});
  }

  return Dataset::FromRatings(events, std::move(cats), config.name,
                              /*positive_threshold=*/5.0,
                              config.min_interactions);
}

Result<Dataset> GenerateServingWorld(const ServingWorldConfig& config) {
  if (config.num_users <= 0 || config.num_items <= 0 ||
      config.num_categories <= 0 || config.events_per_user <= 0 ||
      config.categories_per_user <= 0) {
    return Status::InvalidArgument(
        "serving world config sizes must be positive");
  }
  if (config.events_per_user < 5) {
    return Status::InvalidArgument(
        "events_per_user below the interaction floor would drop users");
  }
  Rng rng(config.seed);

  // One primary category per item (round-robin keeps every category
  // populated even when items barely outnumber categories), plus an
  // occasional random extra so the category table has some overlap.
  CategoryTable cats;
  cats.num_categories = config.num_categories;
  cats.item_categories.resize(static_cast<size_t>(config.num_items));
  std::vector<std::vector<int>> items_of_category(
      static_cast<size_t>(config.num_categories));
  for (int i = 0; i < config.num_items; ++i) {
    std::vector<int>& ic = cats.item_categories[static_cast<size_t>(i)];
    const int primary = i % config.num_categories;
    ic.push_back(primary);
    items_of_category[static_cast<size_t>(primary)].push_back(i);
    if (rng.Bernoulli(0.3)) {
      const int extra = rng.UniformInt(config.num_categories);
      if (extra != primary) {
        ic.push_back(extra);
        items_of_category[static_cast<size_t>(extra)].push_back(i);
      }
    }
    std::sort(ic.begin(), ic.end());
  }

  // Per-category popularity CDF: within a category, the j-th member item
  // carries Zipf weight (j+1)^-s. Inverse-CDF draws are then one
  // upper_bound per event instead of an O(items) Categorical.
  std::vector<std::vector<double>> category_cdf(
      static_cast<size_t>(config.num_categories));
  for (int c = 0; c < config.num_categories; ++c) {
    const auto& members = items_of_category[static_cast<size_t>(c)];
    auto& cdf = category_cdf[static_cast<size_t>(c)];
    cdf.resize(members.size());
    double total = 0.0;
    for (size_t j = 0; j < members.size(); ++j) {
      total += 1.0 / std::pow(static_cast<double>(j + 1),
                              config.popularity_exponent);
      cdf[j] = total;
    }
  }

  const int cats_per_user =
      std::min(config.categories_per_user, config.num_categories);
  std::vector<RatingEvent> events;
  events.reserve(static_cast<size_t>(config.num_users) *
                 static_cast<size_t>(config.events_per_user));
  std::vector<int> preferred(static_cast<size_t>(cats_per_user));
  for (int u = 0; u < config.num_users; ++u) {
    // A user's taste: a few distinct preferred categories.
    for (int p = 0; p < cats_per_user; ++p) {
      int c;
      bool fresh;
      do {
        c = rng.UniformInt(config.num_categories);
        fresh = true;
        for (int q = 0; q < p; ++q) {
          if (preferred[static_cast<size_t>(q)] == c) fresh = false;
        }
      } while (!fresh);
      preferred[static_cast<size_t>(p)] = c;
    }
    for (int e = 0; e < config.events_per_user; ++e) {
      const int c =
          preferred[static_cast<size_t>(rng.UniformInt(cats_per_user))];
      const auto& members = items_of_category[static_cast<size_t>(c)];
      const auto& cdf = category_cdf[static_cast<size_t>(c)];
      if (members.empty()) continue;  // Unreachable with round-robin.
      const double draw = rng.Uniform() * cdf.back();
      const size_t j = static_cast<size_t>(
          std::upper_bound(cdf.begin(), cdf.end(), draw) - cdf.begin());
      const int item = members[std::min(j, members.size() - 1)];
      events.push_back(RatingEvent{u, item, 5.0, static_cast<long>(e)});
    }
  }

  // Floor of 5: users carry events_per_user >= 5 raw positives each, so
  // the user filter never fires; the item filter may drop deep-tail
  // items, which costs affected users at most a few events.
  return Dataset::FromRatings(events, std::move(cats), config.name,
                              /*positive_threshold=*/5.0,
                              /*min_interactions=*/5);
}

SyntheticConfig BeautyLikeConfig(double scale, uint64_t seed) {
  SyntheticConfig c;
  c.name = "beauty-sim";
  // Beauty: most categories, sparsest matrix (Table I: 52k x 57k, 0.4M,
  // 213 categories). Scaled down, preserving the sparsity ordering.
  c.num_users = static_cast<int>(260 * scale);
  c.num_items = static_cast<int>(320 * scale);
  c.num_categories = 48;
  c.num_events = static_cast<long>(26000 * scale);
  c.user_affinity_concentration = 0.25;
  c.popularity_exponent = 0.9;
  c.category_momentum = 0.6;
  c.extra_categories_mean = 0.4;
  c.positive_affinity_boost = 0.55;
  c.seed = seed;
  return c;
}

SyntheticConfig MlLikeConfig(double scale, uint64_t seed) {
  SyntheticConfig c;
  c.name = "ml-sim";
  // ML-1M: few genres, densest matrix (6k x 3.4k, 1M, 18 categories).
  c.num_users = static_cast<int>(220 * scale);
  c.num_items = static_cast<int>(180 * scale);
  c.num_categories = 18;
  c.num_events = static_cast<long>(42000 * scale);
  c.user_affinity_concentration = 0.45;
  c.popularity_exponent = 0.7;
  c.category_momentum = 0.5;
  c.extra_categories_mean = 1.1;
  c.positive_affinity_boost = 0.8;
  c.seed = seed;
  return c;
}

SyntheticConfig AnimeLikeConfig(double scale, uint64_t seed) {
  SyntheticConfig c;
  c.name = "anime-sim";
  // Anime: intermediate (73.5k x 12.2k, 1M, 43 categories).
  c.num_users = static_cast<int>(260 * scale);
  c.num_items = static_cast<int>(220 * scale);
  c.num_categories = 30;
  c.num_events = static_cast<long>(36000 * scale);
  c.user_affinity_concentration = 0.35;
  c.popularity_exponent = 0.8;
  c.category_momentum = 0.55;
  c.extra_categories_mean = 0.8;
  c.positive_affinity_boost = 0.7;
  c.seed = seed;
  return c;
}

}  // namespace lkpdpp
