// Synthetic implicit-feedback dataset generator.
//
// SUBSTITUTION (see DESIGN.md §3): the paper evaluates on Amazon-Beauty,
// MovieLens-1M, and the Anime dataset, none of which ship with this
// repository. The generator below produces datasets with the same
// statistical levers the paper's analysis depends on:
//   * users carry Dirichlet-distributed category affinities (the
//     concentration controls how diverse a user's taste is);
//   * items carry 1..3 categories and Zipf-distributed popularity;
//   * consecutive interactions of a user exhibit category momentum, so
//     the S-mode (sequential sliding window) sampler sees correlated
//     targets, exactly the structure Section IV-B1 discusses;
//   * ratings are 1..5 with 5s concentrated on affine (user, item) pairs,
//     so thresholding at 5 reproduces the paper's binarization.
// Presets mirror the relative shape of Table I: Beauty-like (many
// categories, very sparse), ML-like (few categories, dense), Anime-like
// (intermediate).

#ifndef LKPDPP_DATA_SYNTHETIC_H_
#define LKPDPP_DATA_SYNTHETIC_H_

#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"

namespace lkpdpp {

/// Parameters of the synthetic world.
struct SyntheticConfig {
  std::string name = "synthetic";
  int num_users = 300;
  int num_items = 400;
  int num_categories = 24;
  /// Target number of rating events to draw (pre-filtering).
  long num_events = 30000;
  /// Dirichlet concentration of user category affinity; smaller = more
  /// focused users.
  double user_affinity_concentration = 0.3;
  /// Zipf exponent of item popularity.
  double popularity_exponent = 0.8;
  /// Probability that consecutive events of a user stay in a category the
  /// user interacted with last (sequential category momentum).
  double category_momentum = 0.55;
  /// Expected extra categories per item beyond the primary one.
  double extra_categories_mean = 0.7;
  /// Probability scale that an affine (user, item) event is rated 5.
  double positive_affinity_boost = 0.75;
  int min_interactions = 10;
  uint64_t seed = 42;
};

/// Draws a full rating log plus category table and prepares a Dataset
/// following the paper's protocol.
Result<Dataset> GenerateSyntheticDataset(const SyntheticConfig& config);

/// A serving-scale world: populations large enough to exercise the
/// online path (100k+ users) while keeping generation cost at
/// O(events * log items). Compared with GenerateSyntheticDataset it
/// trades the per-event Dirichlet/affinity machinery for a fixed set of
/// preferred categories per user and precomputed inverse-CDF popularity
/// tables per category, so the event loop never touches an O(items)
/// weight vector. Every user receives exactly events_per_user positive
/// events, which guarantees all of them survive the interaction floor
/// and remain addressable by serving requests.
struct ServingWorldConfig {
  std::string name = "serving-world";
  int num_users = 100000;
  int num_items = 2000;
  int num_categories = 32;
  /// Positive events drawn per user (all rated 5.0). Must stay >= the
  /// FromRatings interaction floor used below (5) for users to survive.
  int events_per_user = 12;
  /// Preferred categories per user; events are drawn from these.
  int categories_per_user = 3;
  /// Zipf exponent of within-category item popularity.
  double popularity_exponent = 0.8;
  uint64_t seed = 42;
};

Result<Dataset> GenerateServingWorld(const ServingWorldConfig& config);

/// Table-I-shaped presets, scaled by `scale` (>= 1 enlarges populations).
/// Names: "beauty-sim", "ml-sim", "anime-sim".
SyntheticConfig BeautyLikeConfig(double scale = 1.0, uint64_t seed = 42);
SyntheticConfig MlLikeConfig(double scale = 1.0, uint64_t seed = 43);
SyntheticConfig AnimeLikeConfig(double scale = 1.0, uint64_t seed = 44);

}  // namespace lkpdpp

#endif  // LKPDPP_DATA_SYNTHETIC_H_
