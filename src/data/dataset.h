// Implicit-feedback dataset representation.
//
// Follows the paper's protocol (Section IV-A1): explicit ratings are
// binarized (rating == 5 -> positive), users/items with fewer than
// `min_interactions` positives are filtered, and each user's positives are
// split 70/10/20 into train/validation/test preserving interaction order
// (the S-mode sampler relies on per-user chronology).

#ifndef LKPDPP_DATA_DATASET_H_
#define LKPDPP_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace lkpdpp {

/// One explicit-feedback event, pre-binarization.
struct RatingEvent {
  int user = 0;
  int item = 0;
  double rating = 0.0;
  /// Monotone per-user ordering key (timestamp surrogate).
  long timestamp = 0;
};

/// Item -> category memberships. Items may span several categories (e.g.
/// movie genres), which is what makes Category Coverage a meaningful
/// diversity metric.
struct CategoryTable {
  int num_categories = 0;
  /// item_categories[i] lists the (distinct, sorted) categories of item i.
  std::vector<std::vector<int>> item_categories;
};

/// A fully prepared implicit-feedback dataset.
class Dataset {
 public:
  /// Binarizes ratings (>= `positive_threshold` becomes a positive),
  /// filters users and items with fewer than `min_interactions` positives
  /// (applied once, as in the paper), and splits per user into
  /// train/val/test with the given fractions. Following the paper's
  /// protocol the 20% test items are selected *at random* per user
  /// (seeded by `split_seed`); the chronological order of the surviving
  /// items is preserved inside each split, which is what the S-mode
  /// sliding-window sampler consumes. User/item ids are re-indexed to be
  /// dense.
  ///
  /// Fails if the split fractions are invalid or the filtered data is
  /// empty.
  static Result<Dataset> FromRatings(const std::vector<RatingEvent>& events,
                                     CategoryTable categories,
                                     std::string name,
                                     double positive_threshold = 5.0,
                                     int min_interactions = 10,
                                     double train_frac = 0.7,
                                     double val_frac = 0.1,
                                     uint64_t split_seed = 13);

  const std::string& name() const { return name_; }
  int num_users() const { return num_users_; }
  int num_items() const { return num_items_; }
  int num_categories() const { return categories_.num_categories; }
  long num_interactions() const { return num_interactions_; }

  /// Density of the positive interaction matrix.
  double Density() const;

  /// Chronologically ordered train positives of `user`.
  const std::vector<int>& TrainItems(int user) const {
    return train_[static_cast<size_t>(user)];
  }
  const std::vector<int>& ValItems(int user) const {
    return val_[static_cast<size_t>(user)];
  }
  const std::vector<int>& TestItems(int user) const {
    return test_[static_cast<size_t>(user)];
  }

  /// True if `item` is a train or validation positive of `user`
  /// (membership test backed by per-user sorted arrays).
  bool IsObserved(int user, int item) const;

  /// Categories of an item (possibly several).
  const std::vector<int>& ItemCategories(int item) const {
    return categories_.item_categories[static_cast<size_t>(item)];
  }

  const CategoryTable& categories() const { return categories_; }

  /// Users with at least one train and one test positive (evaluation set).
  std::vector<int> EvaluableUsers() const;

 private:
  Dataset() = default;

  std::string name_;
  int num_users_ = 0;
  int num_items_ = 0;
  long num_interactions_ = 0;
  CategoryTable categories_;
  std::vector<std::vector<int>> train_;  // per-user, chronological order
  std::vector<std::vector<int>> val_;
  std::vector<std::vector<int>> test_;
  std::vector<std::vector<int>> observed_sorted_;  // train+val, sorted
};

}  // namespace lkpdpp

#endif  // LKPDPP_DATA_DATASET_H_
