#include "data/io.h"

#include <fstream>

#include "common/string_util.h"

namespace lkpdpp {

Result<std::vector<RatingEvent>> LoadRatingsCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::vector<RatingEvent> events;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = StrTrim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const std::vector<std::string> fields = StrSplit(trimmed, ',');
    if (fields.size() != 4) {
      return Status::IOError(
          StrFormat("%s:%d: expected 4 fields, got %zu", path.c_str(),
                    line_no, fields.size()));
    }
    RatingEvent e;
    try {
      e.user = std::stoi(fields[0]);
      e.item = std::stoi(fields[1]);
      e.rating = std::stod(fields[2]);
      e.timestamp = std::stol(fields[3]);
    } catch (const std::exception&) {
      return Status::IOError(
          StrFormat("%s:%d: malformed numeric field", path.c_str(),
                    line_no));
    }
    events.push_back(e);
  }
  return events;
}

Status SaveRatingsCsv(const std::string& path,
                      const std::vector<RatingEvent>& events) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# user,item,rating,timestamp\n";
  for (const RatingEvent& e : events) {
    out << e.user << ',' << e.item << ',' << e.rating << ',' << e.timestamp
        << '\n';
  }
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

Result<CategoryTable> LoadCategoriesCsv(const std::string& path,
                                        int num_categories_hint) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  CategoryTable table;
  table.num_categories = num_categories_hint;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = StrTrim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const std::vector<std::string> fields = StrSplit(trimmed, ',');
    if (fields.size() != 2) {
      return Status::IOError(
          StrFormat("%s:%d: expected 2 fields, got %zu", path.c_str(),
                    line_no, fields.size()));
    }
    int item = 0;
    std::vector<int> cats;
    try {
      item = std::stoi(fields[0]);
      for (const std::string& c : StrSplit(fields[1], ';')) {
        if (!StrTrim(c).empty()) cats.push_back(std::stoi(c));
      }
    } catch (const std::exception&) {
      return Status::IOError(
          StrFormat("%s:%d: malformed numeric field", path.c_str(),
                    line_no));
    }
    if (item < 0) {
      return Status::IOError(
          StrFormat("%s:%d: negative item id", path.c_str(), line_no));
    }
    if (item >= static_cast<int>(table.item_categories.size())) {
      table.item_categories.resize(static_cast<size_t>(item) + 1);
    }
    for (int c : cats) {
      table.num_categories = std::max(table.num_categories, c + 1);
    }
    table.item_categories[static_cast<size_t>(item)] = std::move(cats);
  }
  return table;
}

Status SaveCategoriesCsv(const std::string& path,
                         const CategoryTable& table) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# item,categories(;-separated)\n";
  for (size_t i = 0; i < table.item_categories.size(); ++i) {
    out << i << ',';
    const auto& cats = table.item_categories[i];
    for (size_t c = 0; c < cats.size(); ++c) {
      if (c > 0) out << ';';
      out << cats[c];
    }
    out << '\n';
  }
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

}  // namespace lkpdpp
