// CSV import/export of rating logs and category tables.
//
// Lets users run the library on real dataset dumps (e.g. an actual
// MovieLens export) with the same pipeline the synthetic generator feeds.
// Format:
//   ratings CSV:    user,item,rating,timestamp   (one event per line)
//   categories CSV: item,cat0[;cat1;cat2...]     (one item per line)

#ifndef LKPDPP_DATA_IO_H_
#define LKPDPP_DATA_IO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace lkpdpp {

/// Parses a ratings CSV. Lines starting with '#' and blank lines are
/// skipped. Fails on malformed rows with the offending line number.
Result<std::vector<RatingEvent>> LoadRatingsCsv(const std::string& path);

/// Writes a ratings CSV.
Status SaveRatingsCsv(const std::string& path,
                      const std::vector<RatingEvent>& events);

/// Parses a category CSV; `num_categories` is inferred as max id + 1
/// unless a larger value is given.
Result<CategoryTable> LoadCategoriesCsv(const std::string& path,
                                        int num_categories_hint = 0);

/// Writes a category CSV.
Status SaveCategoriesCsv(const std::string& path,
                         const CategoryTable& table);

}  // namespace lkpdpp

#endif  // LKPDPP_DATA_IO_H_
