#include "data/dataset.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/string_util.h"

namespace lkpdpp {

Result<Dataset> Dataset::FromRatings(const std::vector<RatingEvent>& events,
                                     CategoryTable categories,
                                     std::string name,
                                     double positive_threshold,
                                     int min_interactions,
                                     double train_frac, double val_frac,
                                     uint64_t split_seed) {
  if (train_frac <= 0.0 || val_frac < 0.0 ||
      train_frac + val_frac >= 1.0) {
    return Status::InvalidArgument(
        StrFormat("invalid split fractions train=%.2f val=%.2f", train_frac,
                  val_frac));
  }

  // Binarize.
  std::vector<RatingEvent> positives;
  positives.reserve(events.size());
  for (const RatingEvent& e : events) {
    if (e.rating >= positive_threshold) positives.push_back(e);
  }

  // Filter users/items below the interaction floor (single pass, as the
  // paper describes "filter out long-tailed users and items with fewer
  // than 10 interactions").
  std::map<int, int> user_count;
  std::map<int, int> item_count;
  for (const RatingEvent& e : positives) {
    ++user_count[e.user];
    ++item_count[e.item];
  }
  std::vector<RatingEvent> kept;
  kept.reserve(positives.size());
  for (const RatingEvent& e : positives) {
    if (user_count[e.user] >= min_interactions &&
        item_count[e.item] >= min_interactions) {
      kept.push_back(e);
    }
  }
  if (kept.empty()) {
    return Status::FailedPrecondition(
        "no interactions survive thresholding and filtering");
  }

  // Dense re-indexing.
  std::map<int, int> user_map;
  std::map<int, int> item_map;
  for (const RatingEvent& e : kept) {
    user_map.emplace(e.user, 0);
    item_map.emplace(e.item, 0);
  }
  int next = 0;
  for (auto& [orig, dense] : user_map) dense = next++;
  next = 0;
  for (auto& [orig, dense] : item_map) dense = next++;

  Dataset ds;
  ds.name_ = std::move(name);
  ds.num_users_ = static_cast<int>(user_map.size());
  ds.num_items_ = static_cast<int>(item_map.size());

  // Remap the category table onto the dense item ids. Items unseen in the
  // category table get an empty category list.
  CategoryTable remapped;
  remapped.num_categories = categories.num_categories;
  remapped.item_categories.resize(static_cast<size_t>(ds.num_items_));
  for (const auto& [orig, dense] : item_map) {
    if (orig >= 0 &&
        orig < static_cast<int>(categories.item_categories.size())) {
      auto cats = categories.item_categories[static_cast<size_t>(orig)];
      std::sort(cats.begin(), cats.end());
      cats.erase(std::unique(cats.begin(), cats.end()), cats.end());
      remapped.item_categories[static_cast<size_t>(dense)] = std::move(cats);
    }
  }
  ds.categories_ = std::move(remapped);

  // Group per user, order by timestamp (stable on ties).
  std::vector<std::vector<std::pair<long, int>>> per_user(
      static_cast<size_t>(ds.num_users_));
  for (const RatingEvent& e : kept) {
    per_user[static_cast<size_t>(user_map[e.user])].emplace_back(
        e.timestamp, item_map[e.item]);
  }

  ds.train_.resize(static_cast<size_t>(ds.num_users_));
  ds.val_.resize(static_cast<size_t>(ds.num_users_));
  ds.test_.resize(static_cast<size_t>(ds.num_users_));
  ds.observed_sorted_.resize(static_cast<size_t>(ds.num_users_));
  long total = 0;

  for (int u = 0; u < ds.num_users_; ++u) {
    auto& evts = per_user[static_cast<size_t>(u)];
    std::stable_sort(evts.begin(), evts.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    // Deduplicate repeated (user, item) positives, keeping first
    // occurrence to preserve chronology.
    std::vector<int> items;
    items.reserve(evts.size());
    std::vector<int> seen;
    for (const auto& [ts, item] : evts) {
      if (std::find(seen.begin(), seen.end(), item) == seen.end()) {
        seen.push_back(item);
        items.push_back(item);
      }
    }
    const int count = static_cast<int>(items.size());
    total += count;
    int n_train = static_cast<int>(train_frac * count);
    int n_val = static_cast<int>(val_frac * count);
    if (n_train == 0 && count > 0) n_train = 1;
    if (n_train + n_val > count) n_val = count - n_train;

    // Random per-user assignment (paper protocol: test items are chosen
    // at random), with chronological order preserved inside each split.
    Rng split_rng(split_seed ^ (0x9E3779B97F4A7C15ULL *
                                (static_cast<uint64_t>(u) + 1)));
    std::vector<int> order(items.size());
    for (size_t i = 0; i < items.size(); ++i) order[i] = static_cast<int>(i);
    split_rng.Shuffle(&order);
    // role: 0 = train, 1 = val, 2 = test, assigned by shuffled position.
    std::vector<int> role(items.size(), 2);
    for (int i = 0; i < n_train; ++i) role[static_cast<size_t>(order[i])] = 0;
    for (int i = n_train; i < n_train + n_val; ++i) {
      role[static_cast<size_t>(order[i])] = 1;
    }

    auto& tr = ds.train_[static_cast<size_t>(u)];
    auto& va = ds.val_[static_cast<size_t>(u)];
    auto& te = ds.test_[static_cast<size_t>(u)];
    for (size_t i = 0; i < items.size(); ++i) {
      switch (role[i]) {
        case 0:
          tr.push_back(items[i]);
          break;
        case 1:
          va.push_back(items[i]);
          break;
        default:
          te.push_back(items[i]);
          break;
      }
    }

    auto& obs = ds.observed_sorted_[static_cast<size_t>(u)];
    obs = tr;
    obs.insert(obs.end(), va.begin(), va.end());
    std::sort(obs.begin(), obs.end());
  }
  ds.num_interactions_ = total;
  return ds;
}

double Dataset::Density() const {
  if (num_users_ == 0 || num_items_ == 0) return 0.0;
  return static_cast<double>(num_interactions_) /
         (static_cast<double>(num_users_) * num_items_);
}

bool Dataset::IsObserved(int user, int item) const {
  const auto& obs = observed_sorted_[static_cast<size_t>(user)];
  return std::binary_search(obs.begin(), obs.end(), item);
}

std::vector<int> Dataset::EvaluableUsers() const {
  std::vector<int> out;
  for (int u = 0; u < num_users_; ++u) {
    if (!train_[static_cast<size_t>(u)].empty() &&
        !test_[static_cast<size_t>(u)].empty()) {
      out.push_back(u);
    }
  }
  return out;
}

}  // namespace lkpdpp
