#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace lkpdpp {
namespace obs {

int CurrentThreadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace {

// Shortest round-trippable decimal for a metric value: integers print
// without a fractional part, everything else with %g precision wide
// enough for exporter goldens to stay stable.
std::string FormatNumber(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

// Splits "family{label="x"}" into its family part; names without a
// label block are their own family.
std::string FamilyOf(const std::string& name) {
  const size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

// Minimal JSON string escaping (metric names are ASCII identifiers
// plus label punctuation; quotes/backslashes are the only risks).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 4);
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         std::adjacent_find(bounds_.begin(), bounds_.end()) ==
             bounds_.end());
  buckets_ = std::make_unique<std::atomic<long>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double v) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) -
      bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.Inc();
  sum_.Add(v);
}

std::vector<long> Histogram::BucketCounts() const {
  std::vector<long> out(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.Reset();
  sum_.Reset();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // Never dies.
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(
    const std::string& name, const std::vector<double>& upper_bounds) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(upper_bounds);
  return slot.get();
}

std::string MetricsRegistry::DumpPrometheusText() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  std::string last_family;
  auto type_line = [&](const std::string& name, const char* type) {
    const std::string family = FamilyOf(name);
    if (family != last_family) {
      out += "# TYPE " + family + " " + type + "\n";
      last_family = family;
    }
  };
  for (const auto& [name, counter] : counters_) {
    type_line(name, "counter");
    out += name + " " + FormatNumber(static_cast<double>(counter->Value())) +
           "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    type_line(name, "gauge");
    out += name + " " + FormatNumber(gauge->Value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    type_line(name, "histogram");
    const std::vector<long> counts = histogram->BucketCounts();
    long cumulative = 0;
    for (size_t i = 0; i < histogram->bounds().size(); ++i) {
      cumulative += counts[i];
      out += name + "_bucket{le=\"" + FormatNumber(histogram->bounds()[i]) +
             "\"} " + FormatNumber(static_cast<double>(cumulative)) + "\n";
    }
    cumulative += counts.back();
    out += name + "_bucket{le=\"+Inf\"} " +
           FormatNumber(static_cast<double>(cumulative)) + "\n";
    out += name + "_sum " + FormatNumber(histogram->Sum()) + "\n";
    out += name + "_count " +
           FormatNumber(static_cast<double>(histogram->Count())) + "\n";
  }
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) + "\": " +
           FormatNumber(static_cast<double>(counter->Value()));
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) + "\": " + FormatNumber(gauge->Value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(name) + "\": {\"bounds\": [";
    for (size_t i = 0; i < histogram->bounds().size(); ++i) {
      if (i > 0) out += ", ";
      out += FormatNumber(histogram->bounds()[i]);
    }
    out += "], \"counts\": [";
    const std::vector<long> counts = histogram->BucketCounts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += FormatNumber(static_cast<double>(counts[i]));
    }
    out += "], \"sum\": " + FormatNumber(histogram->Sum()) +
           ", \"count\": " +
           FormatNumber(static_cast<double>(histogram->Count())) + "}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

int MetricsRegistry::NumMetrics() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(counters_.size() + gauges_.size() +
                          histograms_.size());
}

const std::vector<double>& LatencyBucketsMs() {
  static const std::vector<double>* buckets = new std::vector<double>{
      0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
      250.0, 500.0, 1000.0, 2500.0, 5000.0};
  return *buckets;
}

}  // namespace obs
}  // namespace lkpdpp
