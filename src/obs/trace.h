// Per-stage trace spans: scoped timers writing into per-thread bounded
// ring buffers, exported as Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing).
//
//   {
//     LKP_TRACE_SPAN("serve.cache_build");
//     ... expensive work ...
//   }   // span closes here
//
// When tracing is disabled (the default), LKP_TRACE_SPAN compiles down
// to one relaxed atomic load and a null-pointer branch — no clock
// reads, no ring writes, no allocation — so the deterministic hot
// paths are unperturbed. Spans never touch RNG state in either mode:
// enabling tracing changes timing only, and responses stay
// bit-identical (asserted by tests/obs_test.cc and bench/obs_overhead).
//
// Enabling: SetTraceEnabled(true) programmatically, or set the
// LKP_TRACE=<path> environment variable — tracing then starts enabled
// and the accumulated trace is written to <path> at process exit.
// LKP_TRACE_BUFFER overrides the per-thread ring capacity (events).
//
// Span naming convention: <subsystem>.<stage>, e.g. serve.batch,
// serve.cache_build, train.backward, all lowercase, stages nested by
// scope. Names must be string literals (the ring stores the pointer).
//
// Concurrency: each thread owns its ring; a ring's mutex is touched
// only by its owner (uncontended) and by a dumping/clearing thread.
// Rings outlive their threads, so a dump after worker shutdown still
// sees their spans.

#ifndef LKPDPP_OBS_TRACE_H_
#define LKPDPP_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <string>

namespace lkpdpp {
namespace obs {

namespace internal {
extern std::atomic<bool> g_trace_enabled;
/// One-time init from the environment (LKP_TRACE / LKP_TRACE_BUFFER);
/// returns whether tracing starts enabled.
bool InitTraceFromEnv();
/// Overrides the capacity used for rings created AFTER the call
/// (existing rings keep theirs). Tests only.
void SetRingCapacityForTest(size_t capacity);
}  // namespace internal

/// True when spans are being recorded. The inline fast path is one
/// relaxed load; the first call (re)plays the env-var initialization.
inline bool TraceEnabled() {
  static const bool init = internal::InitTraceFromEnv();
  (void)init;
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

void SetTraceEnabled(bool on);

/// Microseconds on the trace clock (monotonic, zero at process start).
double NowMicros();

/// Converts a steady_clock time point onto the trace clock — for spans
/// whose start was captured on another thread (admission wait).
double ToTraceMicros(std::chrono::steady_clock::time_point tp);

/// Appends a completed span to the calling thread's ring. `name` must
/// be a string literal. When the ring is full the oldest event is
/// overwritten and the dropped counter increments.
void RecordSpan(const char* name, double ts_us, double dur_us);

/// Events currently held across all rings / overwritten so far.
long TotalRecordedEvents();
long DroppedEvents();

/// Empties every ring and zeroes the dropped counter (tests, and
/// windowed dumps). Safe while other threads record — their next span
/// lands in the emptied ring.
void ClearTrace();

/// The accumulated trace as Chrome trace-event JSON ("X" complete
/// events; ts/dur in microseconds; tid = CurrentThreadId()).
std::string DumpChromeTraceJson();

/// Writes DumpChromeTraceJson() to `path`. Returns false on I/O error.
bool DumpChromeTrace(const std::string& path);

/// RAII span. Inactive (and branch-only) when constructed with null —
/// which is what LKP_TRACE_SPAN does whenever tracing is disabled.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(name), start_us_(name != nullptr ? NowMicros() : 0.0) {}
  ~TraceSpan() {
    if (name_ != nullptr) {
      RecordSpan(name_, start_us_, NowMicros() - start_us_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  double start_us_;
};

}  // namespace obs
}  // namespace lkpdpp

#define LKP_OBS_CONCAT_INNER(a, b) a##b
#define LKP_OBS_CONCAT(a, b) LKP_OBS_CONCAT_INNER(a, b)

/// Scoped trace span; `name` must be a string literal. Disabled
/// tracing costs one relaxed load + branch.
#define LKP_TRACE_SPAN(name)                                       \
  ::lkpdpp::obs::TraceSpan LKP_OBS_CONCAT(lkp_trace_span_,         \
                                          __LINE__)(               \
      ::lkpdpp::obs::TraceEnabled() ? (name) : nullptr)

#endif  // LKPDPP_OBS_TRACE_H_
