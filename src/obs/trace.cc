#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace lkpdpp {
namespace obs {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {

struct TraceEvent {
  const char* name;
  double ts_us;
  double dur_us;
};

// One ring per thread, owned by the global list so dumps after thread
// exit still see the events. The ring mutex is uncontended in steady
// state (owner-only); dump/clear are the only cross-thread touches.
struct Ring {
  std::mutex mu;
  int tid = 0;
  std::vector<TraceEvent> events;  // Bounded: capacity fixed at creation.
  size_t cursor = 0;               // Next overwrite slot once full.
  size_t capacity = 0;
  long dropped = 0;
};

struct TraceState {
  std::mutex mu;  // Guards the ring list, not the rings.
  std::vector<std::unique_ptr<Ring>> rings;
  std::atomic<size_t> ring_capacity{1u << 15};
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  std::string exit_dump_path;
};

TraceState& State() {
  static TraceState* state = new TraceState();  // Never dies.
  return *state;
}

Ring* ThisThreadRing() {
  thread_local Ring* ring = [] {
    TraceState& state = State();
    auto owned = std::make_unique<Ring>();
    owned->tid = CurrentThreadId();
    owned->capacity = state.ring_capacity.load(std::memory_order_relaxed);
    Ring* raw = owned.get();
    std::lock_guard<std::mutex> lk(state.mu);
    state.rings.push_back(std::move(owned));
    return raw;
  }();
  return ring;
}

void DumpAtExit() {
  const std::string& path = State().exit_dump_path;
  if (path.empty()) return;
  if (DumpChromeTrace(path)) {
    std::fprintf(stderr, "[obs] wrote Chrome trace to %s (%ld events)\n",
                 path.c_str(), TotalRecordedEvents());
  } else {
    std::fprintf(stderr, "[obs] FAILED to write Chrome trace to %s\n",
                 path.c_str());
  }
}

}  // namespace

namespace internal {

bool InitTraceFromEnv() {
  const char* buffer = std::getenv("LKP_TRACE_BUFFER");
  if (buffer != nullptr) {
    const long capacity = std::atol(buffer);
    if (capacity > 0) {
      State().ring_capacity.store(static_cast<size_t>(capacity),
                                  std::memory_order_relaxed);
    }
  }
  const char* path = std::getenv("LKP_TRACE");
  if (path != nullptr && path[0] != '\0') {
    State().exit_dump_path = path;
    std::atexit(DumpAtExit);
    g_trace_enabled.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void SetRingCapacityForTest(size_t capacity) {
  State().ring_capacity.store(capacity, std::memory_order_relaxed);
}

}  // namespace internal

void SetTraceEnabled(bool on) {
  (void)TraceEnabled();  // Ensure env init ran first so it never wins later.
  internal::g_trace_enabled.store(on, std::memory_order_relaxed);
}

double NowMicros() {
  return ToTraceMicros(std::chrono::steady_clock::now());
}

double ToTraceMicros(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration<double, std::micro>(tp - State().epoch)
      .count();
}

void RecordSpan(const char* name, double ts_us, double dur_us) {
  Ring* ring = ThisThreadRing();
  std::lock_guard<std::mutex> lk(ring->mu);
  if (ring->events.size() < ring->capacity) {
    ring->events.push_back(TraceEvent{name, ts_us, dur_us});
    return;
  }
  if (ring->capacity == 0) {
    ++ring->dropped;
    return;
  }
  ring->events[ring->cursor] = TraceEvent{name, ts_us, dur_us};
  ring->cursor = (ring->cursor + 1) % ring->capacity;
  ++ring->dropped;
}

long TotalRecordedEvents() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lk(state.mu);
  long total = 0;
  for (const auto& ring : state.rings) {
    std::lock_guard<std::mutex> rlk(ring->mu);
    total += static_cast<long>(ring->events.size());
  }
  return total;
}

long DroppedEvents() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lk(state.mu);
  long total = 0;
  for (const auto& ring : state.rings) {
    std::lock_guard<std::mutex> rlk(ring->mu);
    total += ring->dropped;
  }
  return total;
}

void ClearTrace() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lk(state.mu);
  for (const auto& ring : state.rings) {
    std::lock_guard<std::mutex> rlk(ring->mu);
    ring->events.clear();
    ring->cursor = 0;
    ring->dropped = 0;
  }
}

std::string DumpChromeTraceJson() {
  TraceState& state = State();
  std::string out =
      "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  char buf[256];
  std::lock_guard<std::mutex> lk(state.mu);
  for (const auto& ring : state.rings) {
    std::lock_guard<std::mutex> rlk(ring->mu);
    // Oldest-first: the slice [cursor, end) precedes [0, cursor) once
    // the ring has wrapped (cursor is the next overwrite target).
    const size_t n = ring->events.size();
    const size_t start = n == ring->capacity ? ring->cursor : 0;
    for (size_t i = 0; i < n; ++i) {
      const TraceEvent& e = ring->events[(start + i) % n];
      std::snprintf(buf, sizeof(buf),
                    "%s\n{\"name\": \"%s\", \"cat\": \"lkp\", "
                    "\"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                    "\"pid\": 1, \"tid\": %d}",
                    first ? "" : ",", e.name, e.ts_us, e.dur_us,
                    ring->tid);
      first = false;
      out += buf;
    }
  }
  out += "\n]}\n";
  return out;
}

bool DumpChromeTrace(const std::string& path) {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file.is_open()) return false;
  const std::string json = DumpChromeTraceJson();
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  return file.good();
}

}  // namespace obs
}  // namespace lkpdpp
