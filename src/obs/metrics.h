// Process-wide metrics: named counters, gauges, and fixed-bucket
// histograms behind a MetricsRegistry, with Prometheus text exposition
// and a JSON dump for bench baselines.
//
// Design constraints, in order:
//   1. Hot-path increments must never contend. Counter spreads its
//      value across cacheline-padded atomic cells indexed by a dense
//      per-thread id, so concurrent Inc() calls from different threads
//      touch different cachelines; Value() sums the cells.
//   2. Handles are stable. GetCounter/GetGauge/GetHistogram return
//      pointers that live as long as the process — call sites cache
//      them in function-local statics and pay one mutex acquisition
//      ever, not one per increment.
//   3. No dependencies above the standard library. obs sits BELOW
//      lkp_common in the link order so logging, the thread pool, and
//      everything else can publish metrics without a cycle.
//
// Naming convention: lkp_<subsystem>_<what>_<unit-or-total>, e.g.
// lkp_serve_requests_total, lkp_pool_queue_depth,
// lkp_serve_request_latency_ms. A name may carry a Prometheus label
// suffix (lkp_numerical_errors_total{site="serve"}); the exporter
// groups such series under one # TYPE family line.

#ifndef LKPDPP_OBS_METRICS_H_
#define LKPDPP_OBS_METRICS_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lkpdpp {
namespace obs {

/// Dense small id for the calling thread: 0, 1, 2, ... in first-use
/// order, stable for the thread's lifetime. Used to pick counter cells
/// and to stamp log lines / trace events.
int CurrentThreadId();

/// Monotonically increasing counter. Inc is lock-free and (across
/// threads) contention-free: each thread lands in one of kCells
/// cacheline-padded atomics. Usable standalone or via the registry.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(long n = 1) {
    cells_[static_cast<unsigned>(CurrentThreadId()) % kCells].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  long Value() const {
    long total = 0;
    for (const Cell& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes the cells (stats windows / tests). Not atomic with respect
  /// to concurrent Inc — reset quiescent counters only.
  void Reset() {
    for (Cell& cell : cells_) cell.v.store(0, std::memory_order_relaxed);
  }

  static constexpr unsigned kCells = 16;

 private:
  struct alignas(64) Cell {
    std::atomic<long> v{0};
  };
  Cell cells_[kCells];
};

/// Last-writer-wins instantaneous value with atomic Add (CAS loop).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }

  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with Prometheus `le` semantics: an
/// observation v lands in the first bucket whose upper bound satisfies
/// v <= bound, or in the implicit +Inf overflow bucket. Bounds are
/// fixed at construction; Observe is lock-free.
class Histogram {
 public:
  /// `upper_bounds` must be strictly ascending (checked); the +Inf
  /// bucket is implicit and always present.
  explicit Histogram(std::vector<double> upper_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v);

  long Count() const { return count_.Value(); }
  double Sum() const { return sum_.Value(); }
  const std::vector<double>& bounds() const { return bounds_; }

  /// Per-bucket (non-cumulative) counts; the last entry is the +Inf
  /// overflow bucket, so the vector has bounds().size() + 1 entries.
  std::vector<long> BucketCounts() const;

  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<long>[]> buckets_;  // bounds_.size() + 1
  Counter count_;
  Gauge sum_;
};

/// Named metric table. `Global()` is the process-wide instance every
/// production call site uses; separate instances exist so exporter
/// tests can run against a registry nothing else writes into.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  /// Finds or creates the named metric. Pointers remain valid for the
  /// registry's lifetime; repeated calls with one name return the same
  /// pointer. A histogram's bounds are fixed by its first Get; later
  /// calls ignore the argument.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& upper_bounds);

  /// Prometheus text exposition (one # TYPE line per family, series in
  /// lexicographic name order, histograms with cumulative _bucket /
  /// _sum / _count series).
  std::string DumpPrometheusText() const;

  /// Machine-readable dump for bench baselines:
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string DumpJson() const;

  /// Zeroes every value, keeping registrations and pointers valid.
  void ResetAll();

  int NumMetrics() const;

 private:
  mutable std::mutex mu_;
  // Ordered maps so export order is deterministic (golden tests).
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Default latency bucket ladder (milliseconds): 0.05..5000 in
/// roughly-2.5x steps. Shared by the serve/train histograms so the
/// exposition stays comparable across subsystems.
const std::vector<double>& LatencyBucketsMs();

}  // namespace obs
}  // namespace lkpdpp

#endif  // LKPDPP_OBS_METRICS_H_
