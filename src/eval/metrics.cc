#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace lkpdpp {

double RecallAtN(const std::vector<int>& ranked,
                 const std::vector<int>& test_items, int n) {
  if (test_items.empty()) return 0.0;
  const int limit = std::min<int>(n, static_cast<int>(ranked.size()));
  int hits = 0;
  for (int i = 0; i < limit; ++i) {
    if (std::find(test_items.begin(), test_items.end(), ranked[i]) !=
        test_items.end()) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(test_items.size());
}

double NdcgAtN(const std::vector<int>& ranked,
               const std::vector<int>& test_items, int n) {
  if (test_items.empty()) return 0.0;
  const int limit = std::min<int>(n, static_cast<int>(ranked.size()));
  double dcg = 0.0;
  for (int i = 0; i < limit; ++i) {
    if (std::find(test_items.begin(), test_items.end(), ranked[i]) !=
        test_items.end()) {
      dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
    }
  }
  const int ideal_hits =
      std::min<int>(n, static_cast<int>(test_items.size()));
  double idcg = 0.0;
  for (int i = 0; i < ideal_hits; ++i) {
    idcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return idcg > 0.0 ? dcg / idcg : 0.0;
}

double CategoryCoverageAtN(const std::vector<int>& ranked, int n,
                           const Dataset& dataset) {
  if (dataset.num_categories() == 0) return 0.0;
  const int limit = std::min<int>(n, static_cast<int>(ranked.size()));
  std::vector<bool> covered(static_cast<size_t>(dataset.num_categories()),
                            false);
  int count = 0;
  for (int i = 0; i < limit; ++i) {
    for (int c : dataset.ItemCategories(ranked[i])) {
      if (!covered[static_cast<size_t>(c)]) {
        covered[static_cast<size_t>(c)] = true;
        ++count;
      }
    }
  }
  return static_cast<double>(count) /
         static_cast<double>(dataset.num_categories());
}

double FScore(double recall, double ndcg, double category_coverage) {
  const double acc = 0.5 * (recall + ndcg);
  const double denom = acc + category_coverage;
  if (denom <= 0.0) return 0.0;
  return 2.0 * acc * category_coverage / denom;
}

double IntraListDistanceAtN(const std::vector<int>& ranked, int n,
                            const Dataset& dataset) {
  const int limit = std::min<int>(n, static_cast<int>(ranked.size()));
  if (limit < 2) return 0.0;
  double total = 0.0;
  int pairs = 0;
  for (int i = 0; i < limit; ++i) {
    const auto& ci = dataset.ItemCategories(ranked[i]);
    for (int j = i + 1; j < limit; ++j) {
      const auto& cj = dataset.ItemCategories(ranked[j]);
      // Jaccard distance between the two sorted category lists.
      size_t a = 0, b = 0;
      int inter = 0;
      while (a < ci.size() && b < cj.size()) {
        if (ci[a] == cj[b]) {
          ++inter;
          ++a;
          ++b;
        } else if (ci[a] < cj[b]) {
          ++a;
        } else {
          ++b;
        }
      }
      const int uni =
          static_cast<int>(ci.size() + cj.size()) - inter;
      total += uni > 0 ? 1.0 - static_cast<double>(inter) / uni : 0.0;
      ++pairs;
    }
  }
  return pairs > 0 ? total / pairs : 0.0;
}

std::vector<int> TopNExcluding(const Vector& scores, int n,
                               const std::vector<bool>& excluded) {
  LKP_CHECK_EQ(static_cast<int>(excluded.size()), scores.size());
  std::vector<int> candidates;
  candidates.reserve(static_cast<size_t>(scores.size()));
  for (int i = 0; i < scores.size(); ++i) {
    if (!excluded[static_cast<size_t>(i)]) candidates.push_back(i);
  }
  const int take = std::min<int>(n, static_cast<int>(candidates.size()));
  std::partial_sort(candidates.begin(), candidates.begin() + take,
                    candidates.end(), [&](int a, int b) {
                      if (scores[a] != scores[b]) {
                        return scores[a] > scores[b];
                      }
                      return a < b;
                    });
  candidates.resize(static_cast<size_t>(take));
  return candidates;
}

}  // namespace lkpdpp
