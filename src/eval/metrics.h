// Ranking metrics (Section IV-A2 of the paper).
//
//   Recall@N   |top-N ∩ test| / |test|
//   NDCG@N     binary-relevance DCG over the top-N, normalized by the
//              ideal DCG for this user's test-set size
//   CC@N       category coverage: |union of categories of top-N| / |C|
//   F@N        harmonic mean between accuracy and diversity, with
//              accuracy = (Recall@N + NDCG@N)/2 and diversity = CC@N
//              (this composition reproduces the paper's reported F
//              values from its Re/Nd/CC columns)
//   ILD@N      intra-list distance over item category sets (Jaccard
//              distance); reported by the library though the paper omits
//              it for implicit feedback.

#ifndef LKPDPP_EVAL_METRICS_H_
#define LKPDPP_EVAL_METRICS_H_

#include <vector>

#include "data/dataset.h"
#include "linalg/matrix.h"

namespace lkpdpp {

/// Per-cutoff metric bundle, averaged over users by the evaluator.
struct MetricSet {
  double recall = 0.0;
  double ndcg = 0.0;
  double category_coverage = 0.0;
  double f_score = 0.0;
  double ild = 0.0;
};

/// Recall@N given a ranked list and the user's test positives.
double RecallAtN(const std::vector<int>& ranked,
                 const std::vector<int>& test_items, int n);

/// NDCG@N with binary relevance.
double NdcgAtN(const std::vector<int>& ranked,
               const std::vector<int>& test_items, int n);

/// Category coverage of the first n recommendations.
double CategoryCoverageAtN(const std::vector<int>& ranked, int n,
                           const Dataset& dataset);

/// Harmonic mean of accuracy ((recall+ndcg)/2) and coverage.
double FScore(double recall, double ndcg, double category_coverage);

/// Mean pairwise Jaccard distance between category sets of the top n.
double IntraListDistanceAtN(const std::vector<int>& ranked, int n,
                            const Dataset& dataset);

/// Indices of the top-n scores, descending, excluding `excluded` items
/// (partial selection; ties broken by smaller index for determinism).
std::vector<int> TopNExcluding(const Vector& scores, int n,
                               const std::vector<bool>& excluded);

}  // namespace lkpdpp

#endif  // LKPDPP_EVAL_METRICS_H_
