#include "eval/evaluator.h"

#include <algorithm>

namespace lkpdpp {

std::vector<bool> Evaluator::ExclusionMask(int user) const {
  std::vector<bool> excluded(static_cast<size_t>(dataset_->num_items()),
                             false);
  for (int i : dataset_->TrainItems(user)) {
    excluded[static_cast<size_t>(i)] = true;
  }
  for (int i : dataset_->ValItems(user)) {
    excluded[static_cast<size_t>(i)] = true;
  }
  return excluded;
}

void Evaluator::ForEach(int n, const std::function<void(int)>& fn) const {
  if (pool_ != nullptr) {
    pool_->ParallelFor(n, fn);
  } else {
    for (int i = 0; i < n; ++i) fn(i);
  }
}

std::map<int, MetricSet> Evaluator::Evaluate(
    RecModel* model, const std::vector<int>& cutoffs) const {
  model->PrepareForEval();
  std::map<int, MetricSet> totals;
  for (int n : cutoffs) totals[n] = MetricSet{};

  const std::vector<int> users = dataset_->EvaluableUsers();
  const int max_n =
      *std::max_element(cutoffs.begin(), cutoffs.end());

  // Per-user metric rows land in index-addressed slots; the reduction
  // below walks them in user order so sums are bit-identical at any
  // thread count.
  std::vector<std::map<int, MetricSet>> rows(users.size());
  ForEach(static_cast<int>(users.size()), [&](int i) {
    const int u = users[static_cast<size_t>(i)];
    const Vector scores = model->ScoreAllItems(u);
    const std::vector<int> ranked =
        TopNExcluding(scores, max_n, ExclusionMask(u));
    const std::vector<int>& test = dataset_->TestItems(u);
    std::map<int, MetricSet>& row = rows[static_cast<size_t>(i)];
    for (int n : cutoffs) {
      MetricSet m;
      m.recall = RecallAtN(ranked, test, n);
      m.ndcg = NdcgAtN(ranked, test, n);
      m.category_coverage = CategoryCoverageAtN(ranked, n, *dataset_);
      m.f_score = FScore(m.recall, m.ndcg, m.category_coverage);
      m.ild = IntraListDistanceAtN(ranked, n, *dataset_);
      row[n] = m;
    }
  });
  for (const std::map<int, MetricSet>& row : rows) {
    for (const auto& [n, m] : row) {
      MetricSet& t = totals[n];
      t.recall += m.recall;
      t.ndcg += m.ndcg;
      t.category_coverage += m.category_coverage;
      t.f_score += m.f_score;
      t.ild += m.ild;
    }
  }
  const double inv = users.empty() ? 0.0 : 1.0 / users.size();
  for (auto& [n, m] : totals) {
    m.recall *= inv;
    m.ndcg *= inv;
    m.category_coverage *= inv;
    m.f_score *= inv;
    m.ild *= inv;
  }
  return totals;
}

double Evaluator::ValidationNdcg(RecModel* model, int cutoff) const {
  model->PrepareForEval();
  const int num_users = dataset_->num_users();
  // One slot per user; skipped users keep a sentinel so the ordered
  // reduction matches the serial loop exactly.
  std::vector<double> ndcg(static_cast<size_t>(num_users), -1.0);
  ForEach(num_users, [&](int u) {
    const std::vector<int>& val = dataset_->ValItems(u);
    if (val.empty() || dataset_->TrainItems(u).empty()) return;
    // Exclude only train positives: validation items are the targets.
    std::vector<bool> excluded(
        static_cast<size_t>(dataset_->num_items()), false);
    for (int i : dataset_->TrainItems(u)) {
      excluded[static_cast<size_t>(i)] = true;
    }
    const Vector scores = model->ScoreAllItems(u);
    const std::vector<int> ranked = TopNExcluding(scores, cutoff, excluded);
    ndcg[static_cast<size_t>(u)] = NdcgAtN(ranked, val, cutoff);
  });
  double total = 0.0;
  int count = 0;
  for (double v : ndcg) {
    if (v < 0.0) continue;
    total += v;
    ++count;
  }
  return count > 0 ? total / count : 0.0;
}

std::vector<int> Evaluator::TopNForUser(RecModel* model, int user,
                                        int n) const {
  model->PrepareForEval();
  const Vector scores = model->ScoreAllItems(user);
  return TopNExcluding(scores, n, ExclusionMask(user));
}

}  // namespace lkpdpp
