#include "eval/evaluator.h"

#include <algorithm>

namespace lkpdpp {

std::vector<bool> Evaluator::ExclusionMask(int user) const {
  std::vector<bool> excluded(static_cast<size_t>(dataset_->num_items()),
                             false);
  for (int i : dataset_->TrainItems(user)) {
    excluded[static_cast<size_t>(i)] = true;
  }
  for (int i : dataset_->ValItems(user)) {
    excluded[static_cast<size_t>(i)] = true;
  }
  return excluded;
}

std::map<int, MetricSet> Evaluator::Evaluate(
    RecModel* model, const std::vector<int>& cutoffs) const {
  model->PrepareForEval();
  std::map<int, MetricSet> totals;
  for (int n : cutoffs) totals[n] = MetricSet{};

  const std::vector<int> users = dataset_->EvaluableUsers();
  const int max_n =
      *std::max_element(cutoffs.begin(), cutoffs.end());
  for (int u : users) {
    const Vector scores = model->ScoreAllItems(u);
    const std::vector<int> ranked =
        TopNExcluding(scores, max_n, ExclusionMask(u));
    const std::vector<int>& test = dataset_->TestItems(u);
    for (int n : cutoffs) {
      MetricSet& m = totals[n];
      const double re = RecallAtN(ranked, test, n);
      const double nd = NdcgAtN(ranked, test, n);
      const double cc = CategoryCoverageAtN(ranked, n, *dataset_);
      m.recall += re;
      m.ndcg += nd;
      m.category_coverage += cc;
      m.f_score += FScore(re, nd, cc);
      m.ild += IntraListDistanceAtN(ranked, n, *dataset_);
    }
  }
  const double inv = users.empty() ? 0.0 : 1.0 / users.size();
  for (auto& [n, m] : totals) {
    m.recall *= inv;
    m.ndcg *= inv;
    m.category_coverage *= inv;
    m.f_score *= inv;
    m.ild *= inv;
  }
  return totals;
}

double Evaluator::ValidationNdcg(RecModel* model, int cutoff) const {
  model->PrepareForEval();
  double total = 0.0;
  int count = 0;
  for (int u = 0; u < dataset_->num_users(); ++u) {
    const std::vector<int>& val = dataset_->ValItems(u);
    if (val.empty() || dataset_->TrainItems(u).empty()) continue;
    // Exclude only train positives: validation items are the targets.
    std::vector<bool> excluded(
        static_cast<size_t>(dataset_->num_items()), false);
    for (int i : dataset_->TrainItems(u)) {
      excluded[static_cast<size_t>(i)] = true;
    }
    const Vector scores = model->ScoreAllItems(u);
    const std::vector<int> ranked = TopNExcluding(scores, cutoff, excluded);
    total += NdcgAtN(ranked, val, cutoff);
    ++count;
  }
  return count > 0 ? total / count : 0.0;
}

std::vector<int> Evaluator::TopNForUser(RecModel* model, int user,
                                        int n) const {
  model->PrepareForEval();
  const Vector scores = model->ScoreAllItems(user);
  return TopNExcluding(scores, n, ExclusionMask(user));
}

}  // namespace lkpdpp
