// Whole-catalog top-N evaluation against held-out test positives.

#ifndef LKPDPP_EVAL_EVALUATOR_H_
#define LKPDPP_EVAL_EVALUATOR_H_

#include <map>
#include <vector>

#include "common/thread_pool.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "models/rec_model.h"

namespace lkpdpp {

/// Scores every evaluable user's full catalog (excluding their train and
/// validation positives from the candidates, the standard protocol),
/// extracts top-N lists, and averages the metrics.
///
/// With a ThreadPool attached, per-user scoring fans out over the pool.
/// Per-user results land in index-addressed slots and are reduced in user
/// order, so metrics are bit-identical at any thread count.
class Evaluator {
 public:
  explicit Evaluator(const Dataset* dataset) : dataset_(dataset) {}

  /// Attaches (or detaches, with nullptr) a pool for parallel per-user
  /// evaluation. The pool must outlive the evaluator's calls.
  void SetThreadPool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

  /// Metrics averaged over evaluable users, keyed by cutoff N.
  /// Calls model->PrepareForEval() once.
  std::map<int, MetricSet> Evaluate(RecModel* model,
                                    const std::vector<int>& cutoffs) const;

  /// Single-number validation criterion (NDCG at the given cutoff), used
  /// for early stopping / best-epoch tracking against the validation
  /// split.
  double ValidationNdcg(RecModel* model, int cutoff) const;

  /// The ranked top-N list of one user (post-exclusion); exposed for the
  /// Figure 5 case study.
  std::vector<int> TopNForUser(RecModel* model, int user, int n) const;

 private:
  std::vector<bool> ExclusionMask(int user) const;
  /// Runs fn(i) for i in [0, n), over the pool when attached.
  void ForEach(int n, const std::function<void(int)>& fn) const;

  const Dataset* dataset_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace lkpdpp

#endif  // LKPDPP_EVAL_EVALUATOR_H_
