// Whole-catalog top-N evaluation against held-out test positives.

#ifndef LKPDPP_EVAL_EVALUATOR_H_
#define LKPDPP_EVAL_EVALUATOR_H_

#include <map>
#include <vector>

#include "data/dataset.h"
#include "eval/metrics.h"
#include "models/rec_model.h"

namespace lkpdpp {

/// Scores every evaluable user's full catalog (excluding their train and
/// validation positives from the candidates, the standard protocol),
/// extracts top-N lists, and averages the metrics.
class Evaluator {
 public:
  explicit Evaluator(const Dataset* dataset) : dataset_(dataset) {}

  /// Metrics averaged over evaluable users, keyed by cutoff N.
  /// Calls model->PrepareForEval() once.
  std::map<int, MetricSet> Evaluate(RecModel* model,
                                    const std::vector<int>& cutoffs) const;

  /// Single-number validation criterion (NDCG at the given cutoff), used
  /// for early stopping / best-epoch tracking against the validation
  /// split.
  double ValidationNdcg(RecModel* model, int cutoff) const;

  /// The ranked top-N list of one user (post-exclusion); exposed for the
  /// Figure 5 case study.
  std::vector<int> TopNForUser(RecModel* model, int user, int n) const;

 private:
  std::vector<bool> ExclusionMask(int user) const;
  const Dataset* dataset_;
};

}  // namespace lkpdpp

#endif  // LKPDPP_EVAL_EVALUATOR_H_
