#include "autodiff/graph.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace lkpdpp::ad {

const Matrix& Tensor::value() const {
  LKP_CHECK(valid());
  return graph->value(*this);
}

const Matrix& Graph::value(const Tensor& t) const {
  LKP_CHECK(t.id >= 0 && t.id < size());
  return nodes_[static_cast<size_t>(t.id)].value;
}

Tensor Graph::MakeNode(Matrix value, std::vector<int> parents,
                       std::function<void(Graph*, int)> backward) {
  Node n;
  n.value = std::move(value);
  n.parents = std::move(parents);
  n.backward = std::move(backward);
  nodes_.push_back(std::move(n));
  return Tensor{size() - 1, this};
}

Matrix& Graph::GradRef(int id) {
  Node& n = node(id);
  if (!n.has_grad) {
    n.grad = Matrix(n.value.rows(), n.value.cols());
    n.has_grad = true;
  }
  return n.grad;
}

void Graph::AccumulateGrad(int id, const Matrix& g) {
  Matrix& grad = GradRef(id);
  LKP_CHECK(grad.rows() == g.rows() && grad.cols() == g.cols())
      << "gradient shape mismatch at node " << id;
  grad += g;
}

Tensor Graph::Constant(Matrix value) {
  return MakeNode(std::move(value), {}, nullptr);
}

Tensor Graph::Parameter(Param* param) {
  LKP_CHECK(param != nullptr);
  Tensor t = MakeNode(param->value, {}, nullptr);
  node(t.id).param = param;
  return t;
}

Tensor Graph::GatherRows(Tensor input, std::vector<int> rows) {
  const Matrix& in = value(input);
  Matrix out(static_cast<int>(rows.size()), in.cols());
  for (size_t r = 0; r < rows.size(); ++r) {
    LKP_CHECK(rows[r] >= 0 && rows[r] < in.rows());
    for (int c = 0; c < in.cols(); ++c) {
      out(static_cast<int>(r), c) = in(rows[r], c);
    }
  }
  auto rows_copy = rows;
  const int parent = input.id;
  return MakeNode(std::move(out), {parent},
                  [parent, rows_copy](Graph* g, int self) {
                    const Matrix& up = g->node(self).grad;
                    Matrix& down = g->GradRef(parent);
                    for (size_t r = 0; r < rows_copy.size(); ++r) {
                      for (int c = 0; c < up.cols(); ++c) {
                        down(rows_copy[r], c) +=
                            up(static_cast<int>(r), c);
                      }
                    }
                  });
}

Tensor Graph::Add(Tensor a, Tensor b) {
  const int pa = a.id, pb = b.id;
  return MakeNode(value(a) + value(b), {pa, pb},
                  [pa, pb](Graph* g, int self) {
                    const Matrix& up = g->node(self).grad;
                    g->AccumulateGrad(pa, up);
                    g->AccumulateGrad(pb, up);
                  });
}

Tensor Graph::Sub(Tensor a, Tensor b) {
  const int pa = a.id, pb = b.id;
  return MakeNode(value(a) - value(b), {pa, pb},
                  [pa, pb](Graph* g, int self) {
                    const Matrix& up = g->node(self).grad;
                    g->AccumulateGrad(pa, up);
                    Matrix neg = up;
                    neg *= -1.0;
                    g->AccumulateGrad(pb, neg);
                  });
}

Tensor Graph::Mul(Tensor a, Tensor b) {
  const int pa = a.id, pb = b.id;
  return MakeNode(Hadamard(value(a), value(b)), {pa, pb},
                  [pa, pb](Graph* g, int self) {
                    const Matrix& up = g->node(self).grad;
                    g->AccumulateGrad(pa, Hadamard(up, g->node(pb).value));
                    g->AccumulateGrad(pb, Hadamard(up, g->node(pa).value));
                  });
}

Tensor Graph::Scale(Tensor a, double s) {
  const int pa = a.id;
  return MakeNode(value(a) * s, {pa}, [pa, s](Graph* g, int self) {
    g->AccumulateGrad(pa, g->node(self).grad * s);
  });
}

Tensor Graph::MatMul(Tensor a, Tensor b) {
  const int pa = a.id, pb = b.id;
  return MakeNode(
      lkpdpp::MatMul(value(a), value(b)), {pa, pb},
      [pa, pb](Graph* g, int self) {
        const Matrix& up = g->node(self).grad;
        // dA = up * B^T ; dB = A^T * up.
        g->AccumulateGrad(pa, lkpdpp::MatMulTransB(up, g->node(pb).value));
        g->AccumulateGrad(pb, lkpdpp::MatMulTransA(g->node(pa).value, up));
      });
}

Tensor Graph::MatMulTransB(Tensor a, Tensor b) {
  const int pa = a.id, pb = b.id;
  return MakeNode(
      lkpdpp::MatMulTransB(value(a), value(b)), {pa, pb},
      [pa, pb](Graph* g, int self) {
        const Matrix& up = g->node(self).grad;
        // out = A B^T: dA = up * B ; dB = up^T * A.
        g->AccumulateGrad(pa, lkpdpp::MatMul(up, g->node(pb).value));
        g->AccumulateGrad(pb, lkpdpp::MatMulTransA(up, g->node(pa).value));
      });
}

Tensor Graph::AddRowBroadcast(Tensor a, Tensor row) {
  const Matrix& av = value(a);
  const Matrix& rv = value(row);
  LKP_CHECK_EQ(rv.rows(), 1);
  LKP_CHECK_EQ(rv.cols(), av.cols());
  Matrix out = av;
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out(r, c) += rv(0, c);
  }
  const int pa = a.id, pr = row.id;
  return MakeNode(std::move(out), {pa, pr}, [pa, pr](Graph* g, int self) {
    const Matrix& up = g->node(self).grad;
    g->AccumulateGrad(pa, up);
    Matrix rsum(1, up.cols());
    for (int r = 0; r < up.rows(); ++r) {
      for (int c = 0; c < up.cols(); ++c) rsum(0, c) += up(r, c);
    }
    g->AccumulateGrad(pr, rsum);
  });
}

Tensor Graph::RepeatRow(Tensor row, int count) {
  const Matrix& rv = value(row);
  LKP_CHECK_EQ(rv.rows(), 1);
  LKP_CHECK_GT(count, 0);
  Matrix out(count, rv.cols());
  for (int r = 0; r < count; ++r) {
    for (int c = 0; c < rv.cols(); ++c) out(r, c) = rv(0, c);
  }
  const int pr = row.id;
  return MakeNode(std::move(out), {pr}, [pr](Graph* g, int self) {
    const Matrix& up = g->node(self).grad;
    Matrix rsum(1, up.cols());
    for (int r = 0; r < up.rows(); ++r) {
      for (int c = 0; c < up.cols(); ++c) rsum(0, c) += up(r, c);
    }
    g->AccumulateGrad(pr, rsum);
  });
}

Tensor Graph::ConcatCols(Tensor a, Tensor b) {
  const Matrix& av = value(a);
  const Matrix& bv = value(b);
  LKP_CHECK_EQ(av.rows(), bv.rows());
  Matrix out(av.rows(), av.cols() + bv.cols());
  for (int r = 0; r < av.rows(); ++r) {
    for (int c = 0; c < av.cols(); ++c) out(r, c) = av(r, c);
    for (int c = 0; c < bv.cols(); ++c) out(r, av.cols() + c) = bv(r, c);
  }
  const int pa = a.id, pb = b.id;
  const int acols = av.cols();
  return MakeNode(std::move(out), {pa, pb},
                  [pa, pb, acols](Graph* g, int self) {
                    const Matrix& up = g->node(self).grad;
                    Matrix da(up.rows(), acols);
                    Matrix db(up.rows(), up.cols() - acols);
                    for (int r = 0; r < up.rows(); ++r) {
                      for (int c = 0; c < acols; ++c) da(r, c) = up(r, c);
                      for (int c = acols; c < up.cols(); ++c) {
                        db(r, c - acols) = up(r, c);
                      }
                    }
                    g->AccumulateGrad(pa, da);
                    g->AccumulateGrad(pb, db);
                  });
}

Tensor Graph::SliceRows(Tensor a, int start, int count) {
  const Matrix& av = value(a);
  LKP_CHECK(start >= 0 && count >= 0 && start + count <= av.rows());
  Matrix out(count, av.cols());
  for (int r = 0; r < count; ++r) {
    for (int c = 0; c < av.cols(); ++c) out(r, c) = av(start + r, c);
  }
  const int pa = a.id;
  return MakeNode(std::move(out), {pa}, [pa, start](Graph* g, int self) {
    const Matrix& up = g->node(self).grad;
    Matrix& down = g->GradRef(pa);
    for (int r = 0; r < up.rows(); ++r) {
      for (int c = 0; c < up.cols(); ++c) down(start + r, c) += up(r, c);
    }
  });
}

Tensor Graph::RowSum(Tensor a) {
  const Matrix& av = value(a);
  Matrix out(av.rows(), 1);
  for (int r = 0; r < av.rows(); ++r) {
    double s = 0.0;
    for (int c = 0; c < av.cols(); ++c) s += av(r, c);
    out(r, 0) = s;
  }
  const int pa = a.id;
  return MakeNode(std::move(out), {pa}, [pa](Graph* g, int self) {
    const Matrix& up = g->node(self).grad;
    Matrix& down = g->GradRef(pa);
    for (int r = 0; r < down.rows(); ++r) {
      for (int c = 0; c < down.cols(); ++c) down(r, c) += up(r, 0);
    }
  });
}

Tensor Graph::Relu(Tensor a) {
  Matrix out = value(a);
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) {
      if (out(r, c) < 0.0) out(r, c) = 0.0;
    }
  }
  const int pa = a.id;
  return MakeNode(std::move(out), {pa}, [pa](Graph* g, int self) {
    const Matrix& up = g->node(self).grad;
    const Matrix& val = g->node(self).value;
    Matrix down = up;
    for (int r = 0; r < down.rows(); ++r) {
      for (int c = 0; c < down.cols(); ++c) {
        if (val(r, c) <= 0.0) down(r, c) = 0.0;
      }
    }
    g->AccumulateGrad(pa, down);
  });
}

Tensor Graph::Sigmoid(Tensor a) {
  Matrix out = value(a);
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) {
      const double x = out(r, c);
      out(r, c) = x >= 0.0 ? 1.0 / (1.0 + std::exp(-x))
                           : std::exp(x) / (1.0 + std::exp(x));
    }
  }
  const int pa = a.id;
  return MakeNode(std::move(out), {pa}, [pa](Graph* g, int self) {
    const Matrix& up = g->node(self).grad;
    const Matrix& val = g->node(self).value;
    Matrix down = up;
    for (int r = 0; r < down.rows(); ++r) {
      for (int c = 0; c < down.cols(); ++c) {
        down(r, c) *= val(r, c) * (1.0 - val(r, c));
      }
    }
    g->AccumulateGrad(pa, down);
  });
}

Tensor Graph::Tanh(Tensor a) {
  Matrix out = value(a);
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out(r, c) = std::tanh(out(r, c));
  }
  const int pa = a.id;
  return MakeNode(std::move(out), {pa}, [pa](Graph* g, int self) {
    const Matrix& up = g->node(self).grad;
    const Matrix& val = g->node(self).value;
    Matrix down = up;
    for (int r = 0; r < down.rows(); ++r) {
      for (int c = 0; c < down.cols(); ++c) {
        down(r, c) *= 1.0 - val(r, c) * val(r, c);
      }
    }
    g->AccumulateGrad(pa, down);
  });
}

Tensor Graph::Spmm(const SparseMatrix* sparse, Tensor dense) {
  LKP_CHECK(sparse != nullptr);
  const int pd = dense.id;
  return MakeNode(sparse->Multiply(value(dense)), {pd},
                  [pd, sparse](Graph* g, int self) {
                    g->AccumulateGrad(
                        pd, sparse->MultiplyTransposed(g->node(self).grad));
                  });
}

Tensor Graph::MeanOf(const std::vector<Tensor>& tensors) {
  LKP_CHECK(!tensors.empty());
  Matrix out = value(tensors[0]);
  for (size_t i = 1; i < tensors.size(); ++i) out += value(tensors[i]);
  const double inv = 1.0 / static_cast<double>(tensors.size());
  out *= inv;
  std::vector<int> parents;
  parents.reserve(tensors.size());
  for (const Tensor& t : tensors) parents.push_back(t.id);
  auto parent_ids = parents;
  return MakeNode(std::move(out), std::move(parents),
                  [parent_ids, inv](Graph* g, int self) {
                    const Matrix up = g->node(self).grad * inv;
                    for (int p : parent_ids) g->AccumulateGrad(p, up);
                  });
}

Status Graph::Backward(const std::vector<std::pair<Tensor, Matrix>>& seeds) {
  if (backward_done_) {
    return Status::FailedPrecondition("Backward already run on this graph");
  }
  backward_done_ = true;
  for (const auto& [tensor, seed] : seeds) {
    if (tensor.graph != this || tensor.id < 0 || tensor.id >= size()) {
      return Status::InvalidArgument("seed tensor not from this graph");
    }
    const Node& n = nodes_[static_cast<size_t>(tensor.id)];
    if (seed.rows() != n.value.rows() || seed.cols() != n.value.cols()) {
      return Status::InvalidArgument(
          StrFormat("seed shape %dx%d does not match tensor %dx%d",
                    seed.rows(), seed.cols(), n.value.rows(),
                    n.value.cols()));
    }
    AccumulateGrad(tensor.id, seed);
  }
  // Nodes were created in topological order; sweep in reverse.
  for (int id = size() - 1; id >= 0; --id) {
    Node& n = node(id);
    if (!n.has_grad) continue;
    if (n.param != nullptr) {
      n.param->grad += n.grad;
    }
    if (n.backward) n.backward(this, id);
  }
  return Status::OK();
}

}  // namespace lkpdpp::ad
