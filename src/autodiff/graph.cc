#include "autodiff/graph.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace lkpdpp::ad {

void GradientWorkspace::AccumulateDense(Param* param, Matrix g) {
  LKP_CHECK(param != nullptr);
  LKP_CHECK(g.rows() == param->value.rows() &&
            g.cols() == param->value.cols())
      << "dense gradient shape mismatch for param " << param->name;
  entries_.push_back(Entry{param, {}, std::move(g)});
}

void GradientWorkspace::AccumulateRows(Param* param,
                                       const std::vector<int>& rows,
                                       Matrix up) {
  LKP_CHECK(param != nullptr);
  LKP_CHECK_EQ(static_cast<int>(rows.size()), up.rows());
  LKP_CHECK_EQ(up.cols(), param->value.cols());
  entries_.push_back(Entry{param, rows, std::move(up)});
}

void GradientWorkspace::FlushIntoParams() const {
  for (const Entry& e : entries_) {
    Matrix& grad = e.param->grad;
    if (e.rows.empty()) {
      grad += e.data;
      continue;
    }
    for (size_t r = 0; r < e.rows.size(); ++r) {
      const int row = e.rows[r];
      for (int c = 0; c < e.data.cols(); ++c) {
        grad(row, c) += e.data(static_cast<int>(r), c);
      }
    }
  }
}

const Matrix& Tensor::value() const {
  LKP_CHECK(valid());
  return graph->value(*this);
}

const Matrix& Graph::value(const Tensor& t) const {
  LKP_CHECK(t.id >= 0 && t.id < size());
  return NodeValue(t.id);
}

const Matrix& Graph::NodeValue(int id) const {
  const Node& n = nodes_[static_cast<size_t>(id)];
  return n.external != nullptr ? *n.external : n.value;
}

Tensor Graph::MakeNode(Matrix value, std::vector<int> parents,
                       std::function<void(Graph*, int)> backward) {
  Node n;
  n.value = std::move(value);
  n.parents = std::move(parents);
  n.backward = std::move(backward);
  nodes_.push_back(std::move(n));
  return Tensor{size() - 1, this};
}

Matrix& Graph::GradRef(int id) {
  Node& n = node(id);
  if (!n.has_grad) {
    const Matrix& v = NodeValue(id);
    n.grad = Matrix(v.rows(), v.cols());
    n.has_grad = true;
  }
  return n.grad;
}

void Graph::AccumulateGrad(int id, const Matrix& g) {
  Node& n = node(id);
  if (n.param != nullptr && workspace_ != nullptr) {
    workspace_->AccumulateDense(n.param, g);
    return;
  }
  Matrix& grad = GradRef(id);
  LKP_CHECK(grad.rows() == g.rows() && grad.cols() == g.cols())
      << "gradient shape mismatch at node " << id;
  grad += g;
}

void Graph::AccumulateGrad(int id, Matrix&& g) {
  Node& n = node(id);
  if (n.param != nullptr && workspace_ != nullptr) {
    workspace_->AccumulateDense(n.param, std::move(g));
    return;
  }
  Matrix& grad = GradRef(id);
  LKP_CHECK(grad.rows() == g.rows() && grad.cols() == g.cols())
      << "gradient shape mismatch at node " << id;
  grad += g;
}

void Graph::ScatterRowGrads(int id, const std::vector<int>& rows,
                            Matrix up) {
  Node& n = node(id);
  if (n.param != nullptr && workspace_ != nullptr) {
    workspace_->AccumulateRows(n.param, rows, std::move(up));
    return;
  }
  Matrix& down = GradRef(id);
  for (size_t r = 0; r < rows.size(); ++r) {
    for (int c = 0; c < up.cols(); ++c) {
      down(rows[r], c) += up(static_cast<int>(r), c);
    }
  }
}

Tensor Graph::Constant(Matrix value) {
  return MakeNode(std::move(value), {}, nullptr);
}

Tensor Graph::Parameter(Param* param) {
  LKP_CHECK(param != nullptr);
  Tensor t = MakeNode(Matrix(), {}, nullptr);
  node(t.id).param = param;
  node(t.id).external = &param->value;
  return t;
}

Tensor Graph::GatherRows(Tensor input, std::vector<int> rows) {
  const Matrix& in = value(input);
  Matrix out(static_cast<int>(rows.size()), in.cols());
  for (size_t r = 0; r < rows.size(); ++r) {
    LKP_CHECK(rows[r] >= 0 && rows[r] < in.rows());
    for (int c = 0; c < in.cols(); ++c) {
      out(static_cast<int>(r), c) = in(rows[r], c);
    }
  }
  auto rows_copy = rows;
  const int parent = input.id;
  return MakeNode(std::move(out), {parent},
                  [parent, rows_copy](Graph* g, int self) {
                    // A node's grad is dead once its own backward runs,
                    // so hand the buffer over instead of copying it.
                    g->ScatterRowGrads(parent, rows_copy,
                                       std::move(g->node(self).grad));
                  });
}

Tensor Graph::Add(Tensor a, Tensor b) {
  const int pa = a.id, pb = b.id;
  return MakeNode(value(a) + value(b), {pa, pb},
                  [pa, pb](Graph* g, int self) {
                    const Matrix& up = g->node(self).grad;
                    g->AccumulateGrad(pa, up);
                    g->AccumulateGrad(pb, up);
                  });
}

Tensor Graph::Sub(Tensor a, Tensor b) {
  const int pa = a.id, pb = b.id;
  return MakeNode(value(a) - value(b), {pa, pb},
                  [pa, pb](Graph* g, int self) {
                    const Matrix& up = g->node(self).grad;
                    g->AccumulateGrad(pa, up);
                    Matrix neg = up;
                    neg *= -1.0;
                    g->AccumulateGrad(pb, std::move(neg));
                  });
}

Tensor Graph::Mul(Tensor a, Tensor b) {
  const int pa = a.id, pb = b.id;
  return MakeNode(Hadamard(value(a), value(b)), {pa, pb},
                  [pa, pb](Graph* g, int self) {
                    const Matrix& up = g->node(self).grad;
                    g->AccumulateGrad(pa, Hadamard(up, g->NodeValue(pb)));
                    g->AccumulateGrad(pb, Hadamard(up, g->NodeValue(pa)));
                  });
}

Tensor Graph::Scale(Tensor a, double s) {
  const int pa = a.id;
  return MakeNode(value(a) * s, {pa}, [pa, s](Graph* g, int self) {
    g->AccumulateGrad(pa, g->node(self).grad * s);
  });
}

Tensor Graph::MatMul(Tensor a, Tensor b) {
  const int pa = a.id, pb = b.id;
  return MakeNode(
      lkpdpp::MatMul(value(a), value(b)), {pa, pb},
      [pa, pb](Graph* g, int self) {
        const Matrix& up = g->node(self).grad;
        // dA = up * B^T ; dB = A^T * up.
        g->AccumulateGrad(pa, lkpdpp::MatMulTransB(up, g->NodeValue(pb)));
        g->AccumulateGrad(pb, lkpdpp::MatMulTransA(g->NodeValue(pa), up));
      });
}

Tensor Graph::MatMulTransB(Tensor a, Tensor b) {
  const int pa = a.id, pb = b.id;
  return MakeNode(
      lkpdpp::MatMulTransB(value(a), value(b)), {pa, pb},
      [pa, pb](Graph* g, int self) {
        const Matrix& up = g->node(self).grad;
        // out = A B^T: dA = up * B ; dB = up^T * A.
        g->AccumulateGrad(pa, lkpdpp::MatMul(up, g->NodeValue(pb)));
        g->AccumulateGrad(pb, lkpdpp::MatMulTransA(up, g->NodeValue(pa)));
      });
}

Tensor Graph::AddRowBroadcast(Tensor a, Tensor row) {
  const Matrix& av = value(a);
  const Matrix& rv = value(row);
  LKP_CHECK_EQ(rv.rows(), 1);
  LKP_CHECK_EQ(rv.cols(), av.cols());
  Matrix out = av;
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out(r, c) += rv(0, c);
  }
  const int pa = a.id, pr = row.id;
  return MakeNode(std::move(out), {pa, pr}, [pa, pr](Graph* g, int self) {
    const Matrix& up = g->node(self).grad;
    g->AccumulateGrad(pa, up);
    Matrix rsum(1, up.cols());
    for (int r = 0; r < up.rows(); ++r) {
      for (int c = 0; c < up.cols(); ++c) rsum(0, c) += up(r, c);
    }
    g->AccumulateGrad(pr, std::move(rsum));
  });
}

Tensor Graph::RepeatRow(Tensor row, int count) {
  const Matrix& rv = value(row);
  LKP_CHECK_EQ(rv.rows(), 1);
  LKP_CHECK_GT(count, 0);
  Matrix out(count, rv.cols());
  for (int r = 0; r < count; ++r) {
    for (int c = 0; c < rv.cols(); ++c) out(r, c) = rv(0, c);
  }
  const int pr = row.id;
  return MakeNode(std::move(out), {pr}, [pr](Graph* g, int self) {
    const Matrix& up = g->node(self).grad;
    Matrix rsum(1, up.cols());
    for (int r = 0; r < up.rows(); ++r) {
      for (int c = 0; c < up.cols(); ++c) rsum(0, c) += up(r, c);
    }
    g->AccumulateGrad(pr, std::move(rsum));
  });
}

Tensor Graph::ConcatCols(Tensor a, Tensor b) {
  const Matrix& av = value(a);
  const Matrix& bv = value(b);
  LKP_CHECK_EQ(av.rows(), bv.rows());
  Matrix out(av.rows(), av.cols() + bv.cols());
  for (int r = 0; r < av.rows(); ++r) {
    for (int c = 0; c < av.cols(); ++c) out(r, c) = av(r, c);
    for (int c = 0; c < bv.cols(); ++c) out(r, av.cols() + c) = bv(r, c);
  }
  const int pa = a.id, pb = b.id;
  const int acols = av.cols();
  return MakeNode(std::move(out), {pa, pb},
                  [pa, pb, acols](Graph* g, int self) {
                    const Matrix& up = g->node(self).grad;
                    Matrix da(up.rows(), acols);
                    Matrix db(up.rows(), up.cols() - acols);
                    for (int r = 0; r < up.rows(); ++r) {
                      for (int c = 0; c < acols; ++c) da(r, c) = up(r, c);
                      for (int c = acols; c < up.cols(); ++c) {
                        db(r, c - acols) = up(r, c);
                      }
                    }
                    g->AccumulateGrad(pa, std::move(da));
                    g->AccumulateGrad(pb, std::move(db));
                  });
}

Tensor Graph::SliceRows(Tensor a, int start, int count) {
  const Matrix& av = value(a);
  LKP_CHECK(start >= 0 && count >= 0 && start + count <= av.rows());
  Matrix out(count, av.cols());
  for (int r = 0; r < count; ++r) {
    for (int c = 0; c < av.cols(); ++c) out(r, c) = av(start + r, c);
  }
  const int pa = a.id;
  return MakeNode(std::move(out), {pa}, [pa, start](Graph* g, int self) {
    const int up_rows = g->node(self).grad.rows();
    std::vector<int> rows(static_cast<size_t>(up_rows));
    for (int r = 0; r < up_rows; ++r) rows[static_cast<size_t>(r)] = start + r;
    g->ScatterRowGrads(pa, rows, std::move(g->node(self).grad));
  });
}

Tensor Graph::RowSum(Tensor a) {
  const Matrix& av = value(a);
  Matrix out(av.rows(), 1);
  for (int r = 0; r < av.rows(); ++r) {
    double s = 0.0;
    for (int c = 0; c < av.cols(); ++c) s += av(r, c);
    out(r, 0) = s;
  }
  const int pa = a.id;
  return MakeNode(std::move(out), {pa}, [pa](Graph* g, int self) {
    const Matrix& up = g->node(self).grad;
    const Matrix& pv = g->NodeValue(pa);
    Matrix down(pv.rows(), pv.cols());
    for (int r = 0; r < down.rows(); ++r) {
      for (int c = 0; c < down.cols(); ++c) down(r, c) = up(r, 0);
    }
    g->AccumulateGrad(pa, std::move(down));
  });
}

Tensor Graph::Relu(Tensor a) {
  Matrix out = value(a);
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) {
      if (out(r, c) < 0.0) out(r, c) = 0.0;
    }
  }
  const int pa = a.id;
  return MakeNode(std::move(out), {pa}, [pa](Graph* g, int self) {
    const Matrix& up = g->node(self).grad;
    const Matrix& val = g->node(self).value;
    Matrix down = up;
    for (int r = 0; r < down.rows(); ++r) {
      for (int c = 0; c < down.cols(); ++c) {
        if (val(r, c) <= 0.0) down(r, c) = 0.0;
      }
    }
    g->AccumulateGrad(pa, std::move(down));
  });
}

Tensor Graph::Sigmoid(Tensor a) {
  Matrix out = value(a);
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) {
      const double x = out(r, c);
      out(r, c) = x >= 0.0 ? 1.0 / (1.0 + std::exp(-x))
                           : std::exp(x) / (1.0 + std::exp(x));
    }
  }
  const int pa = a.id;
  return MakeNode(std::move(out), {pa}, [pa](Graph* g, int self) {
    const Matrix& up = g->node(self).grad;
    const Matrix& val = g->node(self).value;
    Matrix down = up;
    for (int r = 0; r < down.rows(); ++r) {
      for (int c = 0; c < down.cols(); ++c) {
        down(r, c) *= val(r, c) * (1.0 - val(r, c));
      }
    }
    g->AccumulateGrad(pa, std::move(down));
  });
}

Tensor Graph::Tanh(Tensor a) {
  Matrix out = value(a);
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out(r, c) = std::tanh(out(r, c));
  }
  const int pa = a.id;
  return MakeNode(std::move(out), {pa}, [pa](Graph* g, int self) {
    const Matrix& up = g->node(self).grad;
    const Matrix& val = g->node(self).value;
    Matrix down = up;
    for (int r = 0; r < down.rows(); ++r) {
      for (int c = 0; c < down.cols(); ++c) {
        down(r, c) *= 1.0 - val(r, c) * val(r, c);
      }
    }
    g->AccumulateGrad(pa, std::move(down));
  });
}

Tensor Graph::Spmm(const SparseMatrix* sparse, Tensor dense) {
  LKP_CHECK(sparse != nullptr);
  const int pd = dense.id;
  return MakeNode(sparse->Multiply(value(dense)), {pd},
                  [pd, sparse](Graph* g, int self) {
                    g->AccumulateGrad(
                        pd, sparse->MultiplyTransposed(g->node(self).grad));
                  });
}

Tensor Graph::MeanOf(const std::vector<Tensor>& tensors) {
  LKP_CHECK(!tensors.empty());
  Matrix out = value(tensors[0]);
  for (size_t i = 1; i < tensors.size(); ++i) out += value(tensors[i]);
  const double inv = 1.0 / static_cast<double>(tensors.size());
  out *= inv;
  std::vector<int> parents;
  parents.reserve(tensors.size());
  for (const Tensor& t : tensors) parents.push_back(t.id);
  auto parent_ids = parents;
  return MakeNode(std::move(out), std::move(parents),
                  [parent_ids, inv](Graph* g, int self) {
                    const Matrix up = g->node(self).grad * inv;
                    for (int p : parent_ids) g->AccumulateGrad(p, up);
                  });
}

Status Graph::Backward(const std::vector<std::pair<Tensor, Matrix>>& seeds) {
  if (backward_done_) {
    return Status::FailedPrecondition("Backward already run on this graph");
  }
  backward_done_ = true;
  for (const auto& [tensor, seed] : seeds) {
    if (tensor.graph != this || tensor.id < 0 || tensor.id >= size()) {
      return Status::InvalidArgument("seed tensor not from this graph");
    }
    const Matrix& v = NodeValue(tensor.id);
    if (seed.rows() != v.rows() || seed.cols() != v.cols()) {
      return Status::InvalidArgument(
          StrFormat("seed shape %dx%d does not match tensor %dx%d",
                    seed.rows(), seed.cols(), v.rows(), v.cols()));
    }
    AccumulateGrad(tensor.id, seed);
  }
  // Nodes were created in topological order; sweep in reverse. With a
  // workspace attached, parameter contributions were intercepted at the
  // accumulation sites, so leaves carry no grad of their own.
  for (int id = size() - 1; id >= 0; --id) {
    Node& n = node(id);
    if (!n.has_grad) continue;
    if (n.param != nullptr && workspace_ == nullptr) {
      n.param->grad += n.grad;
    }
    if (n.backward) n.backward(this, id);
  }
  return Status::OK();
}

}  // namespace lkpdpp::ad
