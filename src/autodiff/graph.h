// Minimal reverse-mode automatic differentiation over dense matrices.
//
// The paper's criterion gradients are closed-form (core/lkp.cc), but its
// neural backbones (GCN propagation, NeuMF's MLP, GCMC's graph
// auto-encoder) need backpropagation through several layers. This tape
// covers exactly that: a Graph is built fresh per training batch, values
// are computed eagerly on construction, and Backward() accumulates
// gradients into externally owned Param structs from caller-supplied
// seed gradients — which is how the externally computed criterion
// gradients (dLoss/dScore, dLoss/dEmbedding) are injected.
//
// Nodes are created in topological order by construction, so the
// backward pass is a simple reverse sweep. No graph reuse, no shape
// polymorphism: everything is a Matrix (vectors are m x 1).

#ifndef LKPDPP_AUTODIFF_GRAPH_H_
#define LKPDPP_AUTODIFF_GRAPH_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"

namespace lkpdpp::ad {

class Graph;

/// Lightweight handle to a graph node.
struct Tensor {
  int id = -1;
  Graph* graph = nullptr;

  bool valid() const { return graph != nullptr && id >= 0; }
  const Matrix& value() const;
  int rows() const { return value().rows(); }
  int cols() const { return value().cols(); }
};

/// A trainable parameter: value plus gradient accumulator, owned by the
/// model (not the graph), so parameters persist across batches.
struct Param {
  std::string name;
  Matrix value;
  Matrix grad;

  Param(std::string n, Matrix v)
      : name(std::move(n)), value(std::move(v)),
        grad(value.rows(), value.cols()) {}

  void ZeroGrad() { grad = Matrix(value.rows(), value.cols()); }
};

/// One computation tape. Build, read values, call Backward once.
class Graph {
 public:
  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  /// Leaf with no gradient.
  Tensor Constant(Matrix value);

  /// Leaf bound to an external parameter; Backward accumulates into
  /// `param->grad`. The param must outlive the graph.
  Tensor Parameter(Param* param);

  /// out.row(i) = input.row(rows[i]); gradient scatters rows back.
  Tensor GatherRows(Tensor input, std::vector<int> rows);

  Tensor Add(Tensor a, Tensor b);
  Tensor Sub(Tensor a, Tensor b);
  /// Elementwise product.
  Tensor Mul(Tensor a, Tensor b);
  Tensor Scale(Tensor a, double s);

  Tensor MatMul(Tensor a, Tensor b);
  /// a * b^T.
  Tensor MatMulTransB(Tensor a, Tensor b);

  /// a (m x d) + row (1 x d) broadcast over rows.
  Tensor AddRowBroadcast(Tensor a, Tensor row);
  /// (1 x d) -> (count x d).
  Tensor RepeatRow(Tensor row, int count);
  /// Horizontal concatenation [a | b].
  Tensor ConcatCols(Tensor a, Tensor b);
  /// Row range [start, start+count).
  Tensor SliceRows(Tensor a, int start, int count);
  /// (m x d) -> (m x 1) row sums.
  Tensor RowSum(Tensor a);

  Tensor Relu(Tensor a);
  Tensor Sigmoid(Tensor a);
  Tensor Tanh(Tensor a);

  /// Constant CSR matrix times dense tensor; the sparse matrix must
  /// outlive the graph. Gradient is A^T * upstream.
  Tensor Spmm(const SparseMatrix* sparse, Tensor dense);

  /// Mean of several same-shaped tensors (GCN layer aggregation).
  Tensor MeanOf(const std::vector<Tensor>& tensors);

  const Matrix& value(const Tensor& t) const;

  /// Reverse sweep from the given seed gradients (pairs of tensor and
  /// dLoss/dTensor with matching shape). May be called once per graph.
  /// Fails on shape mismatches or double invocation.
  Status Backward(const std::vector<std::pair<Tensor, Matrix>>& seeds);

  int size() const { return static_cast<int>(nodes_.size()); }

 private:
  struct Node {
    Matrix value;
    Matrix grad;           // Allocated lazily during Backward.
    bool has_grad = false;
    Param* param = nullptr;
    std::vector<int> parents;
    // Propagates node.grad into parents' grads (and param->grad).
    std::function<void(Graph*, int)> backward;
  };

  Tensor MakeNode(Matrix value, std::vector<int> parents,
                  std::function<void(Graph*, int)> backward);
  Node& node(int id) { return nodes_[static_cast<size_t>(id)]; }
  Matrix& GradRef(int id);
  void AccumulateGrad(int id, const Matrix& g);

  std::vector<Node> nodes_;
  bool backward_done_ = false;

  friend struct Tensor;
};

}  // namespace lkpdpp::ad

#endif  // LKPDPP_AUTODIFF_GRAPH_H_
