// Minimal reverse-mode automatic differentiation over dense matrices.
//
// The paper's criterion gradients are closed-form (core/lkp.cc), but its
// neural backbones (GCN propagation, NeuMF's MLP, GCMC's graph
// auto-encoder) need backpropagation through several layers. This tape
// covers exactly that: a Graph is built fresh per training instance (or
// batch), values are computed eagerly on construction, and Backward()
// accumulates gradients from caller-supplied seed gradients — which is
// how the externally computed criterion gradients (dLoss/dScore,
// dLoss/dEmbedding) are injected.
//
// Nodes are created in topological order by construction, so the
// backward pass is a simple reverse sweep. No graph reuse, no shape
// polymorphism: everything is a Matrix (vectors are m x 1).
//
// Data-parallel training: parameter leaves reference the Param's value
// in place (no copy), so many graphs over the same parameters can be
// built concurrently as long as nobody mutates the values. A graph
// constructed with a GradientWorkspace routes every parameter-gradient
// contribution into that workspace instead of the shared Param::grad
// accumulators, so each worker thread writes only its own buffers; the
// trainer then reduces the workspaces into the Params in a fixed
// instance order (see opt/parallel_batch.h), which keeps training
// bit-identical at any thread count.

#ifndef LKPDPP_AUTODIFF_GRAPH_H_
#define LKPDPP_AUTODIFF_GRAPH_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/sparse.h"

namespace lkpdpp::ad {

class Graph;

/// Lightweight handle to a graph node.
struct Tensor {
  int id = -1;
  Graph* graph = nullptr;

  bool valid() const { return graph != nullptr && id >= 0; }
  const Matrix& value() const;
  int rows() const { return value().rows(); }
  int cols() const { return value().cols(); }
};

/// A trainable parameter: value plus gradient accumulator, owned by the
/// model (not the graph), so parameters persist across batches.
struct Param {
  std::string name;
  Matrix value;
  Matrix grad;

  Param(std::string n, Matrix v)
      : name(std::move(n)), value(std::move(v)),
        grad(value.rows(), value.cols()) {}

  void ZeroGrad() { grad = Matrix(value.rows(), value.cols()); }
};

/// Private per-thread gradient sink.
///
/// Instead of accumulating into the shared Param::grad matrices, a graph
/// bound to a workspace records every parameter-gradient contribution as
/// an entry in a chronological log: either a dense block (full parameter
/// shape) or a row scatter (the GatherRows / SliceRows backward paths),
/// so a training instance that only touches a handful of embedding rows
/// never allocates a dense embedding-sized buffer.
///
/// FlushIntoParams() replays the log into the Params' own grad
/// accumulators in arrival order. Because entries are replayed
/// individually (not pre-reduced), flushing N instance workspaces in a
/// fixed instance order performs exactly the same elementary additions,
/// in exactly the same order, as one backward sweep over a single graph
/// holding those instances — so the reduction is bit-identical to the
/// serial path at any thread count.
class GradientWorkspace {
 public:
  GradientWorkspace() = default;
  GradientWorkspace(GradientWorkspace&&) = default;
  GradientWorkspace& operator=(GradientWorkspace&&) = default;
  GradientWorkspace(const GradientWorkspace&) = delete;
  GradientWorkspace& operator=(const GradientWorkspace&) = delete;

  /// Records grad(param) += g (shape must match the param). Takes the
  /// matrix by value so backward closures can move freshly computed
  /// gradients into the log without an extra copy.
  void AccumulateDense(Param* param, Matrix g);

  /// Records grad(param).row(rows[r]) += up.row(r) for each r. Takes
  /// the matrix by value so the caller can move a dead buffer in.
  void AccumulateRows(Param* param, const std::vector<int>& rows,
                      Matrix up);

  /// Replays the log into each entry's Param::grad, in arrival order.
  /// May be called repeatedly (e.g. after Clear + reuse).
  void FlushIntoParams() const;

  bool empty() const { return entries_.empty(); }
  void Clear() { entries_.clear(); }

 private:
  struct Entry {
    Param* param = nullptr;
    /// Empty: `data` is a dense block of the param's full shape.
    /// Otherwise: `data` has rows.size() rows scattered to these rows.
    std::vector<int> rows;
    Matrix data;
  };
  std::vector<Entry> entries_;
};

/// One computation tape. Build, read values, call Backward once.
class Graph {
 public:
  Graph() = default;
  /// All parameter gradients produced by Backward go into `workspace`
  /// (which must outlive the graph) instead of Param::grad.
  explicit Graph(GradientWorkspace* workspace) : workspace_(workspace) {}
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  /// Leaf with no gradient.
  Tensor Constant(Matrix value);

  /// Leaf bound to an external parameter; the node references
  /// `param->value` in place (no copy), so the param must outlive the
  /// graph and its value must not be mutated while the graph is alive.
  /// Backward accumulates into `param->grad` (or the workspace).
  Tensor Parameter(Param* param);

  /// out.row(i) = input.row(rows[i]); gradient scatters rows back.
  Tensor GatherRows(Tensor input, std::vector<int> rows);

  Tensor Add(Tensor a, Tensor b);
  Tensor Sub(Tensor a, Tensor b);
  /// Elementwise product.
  Tensor Mul(Tensor a, Tensor b);
  Tensor Scale(Tensor a, double s);

  Tensor MatMul(Tensor a, Tensor b);
  /// a * b^T.
  Tensor MatMulTransB(Tensor a, Tensor b);

  /// a (m x d) + row (1 x d) broadcast over rows.
  Tensor AddRowBroadcast(Tensor a, Tensor row);
  /// (1 x d) -> (count x d).
  Tensor RepeatRow(Tensor row, int count);
  /// Horizontal concatenation [a | b].
  Tensor ConcatCols(Tensor a, Tensor b);
  /// Row range [start, start+count).
  Tensor SliceRows(Tensor a, int start, int count);
  /// (m x d) -> (m x 1) row sums.
  Tensor RowSum(Tensor a);

  Tensor Relu(Tensor a);
  Tensor Sigmoid(Tensor a);
  Tensor Tanh(Tensor a);

  /// Constant CSR matrix times dense tensor; the sparse matrix must
  /// outlive the graph. Gradient is A^T * upstream.
  Tensor Spmm(const SparseMatrix* sparse, Tensor dense);

  /// Mean of several same-shaped tensors (GCN layer aggregation).
  Tensor MeanOf(const std::vector<Tensor>& tensors);

  const Matrix& value(const Tensor& t) const;

  /// Reverse sweep from the given seed gradients (pairs of tensor and
  /// dLoss/dTensor with matching shape). May be called once per graph.
  /// Fails on shape mismatches or double invocation.
  Status Backward(const std::vector<std::pair<Tensor, Matrix>>& seeds);

  int size() const { return static_cast<int>(nodes_.size()); }

 private:
  struct Node {
    Matrix value;
    /// Set for parameter leaves: the node's value lives in the Param.
    const Matrix* external = nullptr;
    Matrix grad;           // Allocated lazily during Backward.
    bool has_grad = false;
    Param* param = nullptr;
    std::vector<int> parents;
    // Propagates node.grad into parents' grads (and param->grad).
    std::function<void(Graph*, int)> backward;
  };

  Tensor MakeNode(Matrix value, std::vector<int> parents,
                  std::function<void(Graph*, int)> backward);
  Node& node(int id) { return nodes_[static_cast<size_t>(id)]; }
  /// The node's forward value (owned or external).
  const Matrix& NodeValue(int id) const;
  Matrix& GradRef(int id);
  void AccumulateGrad(int id, const Matrix& g);
  /// Overload for freshly computed gradients: moves into the workspace
  /// log when `id` is a parameter leaf (no copy on the hot path).
  void AccumulateGrad(int id, Matrix&& g);
  /// grad(id).row(rows[r]) += up.row(r); routed to the workspace when
  /// `id` is a parameter leaf, so sparse row updates stay sparse. `up`
  /// is taken by value: callers hand over the (dead) source buffer.
  void ScatterRowGrads(int id, const std::vector<int>& rows, Matrix up);

  std::vector<Node> nodes_;
  GradientWorkspace* workspace_ = nullptr;
  bool backward_done_ = false;

  friend struct Tensor;
};

}  // namespace lkpdpp::ad

#endif  // LKPDPP_AUTODIFF_GRAPH_H_
