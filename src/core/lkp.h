// LkP: the paper's k-DPP set-level ranking optimization criterion.
//
// Given a ground set of k targets and n unobserved items with model
// scores s and diversity submatrix K, LkP builds the personalized kernel
// L = Diag(q) K Diag(q) (q = quality transform of s, Eq. 2/13) and
// minimizes the negative log-likelihood of the tailored k-DPP:
//
//   PS  (Eq. 7):  loss = -log P_k(S+) = -(log det(L_{S+}) - log Z_k)
//   NPS (Eq. 10): loss = -log P_k(S+) - log(1 - P_k(S-))
//
// where Z_k = e_k(eigenvalues(L)) and S- is the set of the n = k
// unobserved items. Gradients are closed-form (Eq. 12):
//
//   d log det(L_S)/dL = Pad(L_S^{-1}),
//   d log Z_k / dL    = sum_i e_{k-1}(lambda \ i) u_i u_i^T / Z_k,
//
// then chained into raw scores via dL_ij/ds_m = L_ij (t_m 1[i=m] +
// t_m 1[j=m]) with t = d log q / ds, and optionally into the diversity
// kernel via dL_ij/dK_ij = q_i q_j (the E-type path).

#ifndef LKPDPP_CORE_LKP_H_
#define LKPDPP_CORE_LKP_H_

#include <string>

#include "core/criterion.h"
#include "kernels/quality_diversity.h"

namespace lkpdpp {

/// Which LkP objective to optimize.
enum class LkpMode {
  kPositiveOnly,        ///< "PS/PR": Eq. 7, inclusion of the target set.
  kNegativeAndPositive, ///< "NPS/NPR": Eq. 10, plus exclusion of S-.
};

const char* LkpModeName(LkpMode mode);

struct LkpConfig {
  LkpMode mode = LkpMode::kNegativeAndPositive;
  QualityTransform quality = QualityTransform::kExp;
  /// Diagonal jitter applied to kernel submatrices before factorization.
  double jitter = 1e-8;
  /// Clamp for 1 - P(S-) in the NPS log (numerical floor).
  double exclusion_floor = 1e-9;
  /// ABLATION ONLY: when false, drops the Z_k normalizer from the
  /// objective (raw log-determinants). The paper reports this destroys
  /// the ranking interpretation and training stability (Section IV-B2);
  /// bench/ablation_normalization reproduces that finding.
  bool normalize = true;
};

/// The LkP criterion (paper Section III-B/III-C).
class LkpCriterion final : public RankingCriterion {
 public:
  explicit LkpCriterion(LkpConfig config) : config_(config) {}

  std::string name() const override;
  bool NeedsDiversityKernel() const override { return true; }

  /// Requires: in.diversity != null, square, sized to the ground set;
  /// 1 <= num_pos < ground size. NPS additionally requires
  /// num_neg == num_pos (the paper sets n = k when exclusion is used, so
  /// S- is well-defined with cardinality k).
  Result<CriterionOutput> Evaluate(const CriterionInput& in) const override;

  /// Exact probability of the target subset under the tailored k-DPP for
  /// the given instance — used by the Figure 4 probability-ranking probe.
  Result<double> TargetSubsetProbability(const Vector& scores,
                                         const Matrix& diversity,
                                         int num_pos) const;

  const LkpConfig& config() const { return config_; }

 private:
  LkpConfig config_;
};

}  // namespace lkpdpp

#endif  // LKPDPP_CORE_LKP_H_
