#include "core/map_inference.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/string_util.h"
#include "kernels/quality_diversity.h"

namespace lkpdpp {

Result<std::vector<int>> GreedyMapInference(const KernelRep& kernel,
                                            const GreedyMapOptions& options) {
  const int m = kernel.size();
  if (m < 1) {
    return Status::InvalidArgument("MAP inference needs a non-empty kernel");
  }
  if (options.max_size < 1) {
    return Status::InvalidArgument("max_size must be positive");
  }
  const int limit = std::min(options.max_size, m);

  // Incremental Cholesky (Chen et al. 2018): for each candidate i we
  // maintain c_i, the row of the Cholesky factor of L_{S u {i}}
  // restricted to the selected set, and d2_i = L_ii - ||c_i||^2, the
  // squared pivot = marginal determinant gain of adding i. The c_i live
  // in one flat m x limit buffer (candidate i's row at c[i * limit]),
  // sized once up front: no per-candidate reallocation inside the loop,
  // and step t's column sits at a fixed stride for every candidate.
  std::vector<double> d2(static_cast<size_t>(m));
  kernel.FillDiag(d2.data());

  // Stopping threshold, relative to the kernel's diagonal scale (see
  // header): a pivot below 1e-15 * max_diag is round-off, not signal,
  // whatever the absolute magnitude of the kernel.
  double max_diag = 0.0;
  for (int i = 0; i < m; ++i) {
    max_diag = std::max(max_diag, d2[static_cast<size_t>(i)]);
  }
  const double tol = 1e-15 * max_diag;

  std::vector<double> c(static_cast<size_t>(m) * static_cast<size_t>(limit));
  std::vector<double> row(static_cast<size_t>(m));
  std::vector<bool> selected(static_cast<size_t>(m), false);
  std::vector<int> out;
  out.reserve(static_cast<size_t>(limit));

  while (static_cast<int>(out.size()) < limit) {
    int best = -1;
    double best_d2 = 0.0;
    for (int i = 0; i < m; ++i) {
      if (selected[static_cast<size_t>(i)]) continue;
      if (d2[static_cast<size_t>(i)] > best_d2) {
        best_d2 = d2[static_cast<size_t>(i)];
        best = i;
      }
    }
    // Vanishing gains: adding any remaining item zeroes the determinant
    // to within round-off of the kernel's own scale.
    if (best < 0 || best_d2 <= tol ||
        std::log(best_d2) < options.min_log_gain) {
      break;
    }
    const int step = static_cast<int>(out.size());
    selected[static_cast<size_t>(best)] = true;
    out.push_back(best);
    const double dj = std::sqrt(best_d2);
    kernel.FillRow(best, row.data());
    const double* cj = c.data() + static_cast<size_t>(best) * limit;
    for (int i = 0; i < m; ++i) {
      if (selected[static_cast<size_t>(i)]) continue;
      double* ci = c.data() + static_cast<size_t>(i) * limit;
      double dot = 0.0;
      for (int t = 0; t < step; ++t) dot += cj[t] * ci[t];
      const double e = (row[static_cast<size_t>(i)] - dot) / dj;
      ci[step] = e;
      d2[static_cast<size_t>(i)] -= e * e;
    }
  }
  if (out.empty()) {
    return Status::NumericalError(
        "greedy MAP: no item has positive determinant gain");
  }
  return out;
}

Result<std::vector<int>> GreedyMapInference(const Matrix& kernel,
                                            const GreedyMapOptions& options) {
  if (kernel.cols() != kernel.rows()) {
    return Status::InvalidArgument(
        StrFormat("MAP inference needs a square kernel, got %dx%d",
                  kernel.rows(), kernel.cols()));
  }
  if (!kernel.IsSymmetric(1e-8 * std::max(1.0, kernel.MaxAbs()))) {
    return Status::InvalidArgument("MAP inference needs a symmetric kernel");
  }
  return GreedyMapInference(PrimalKernelRep::View(kernel), options);
}

Result<std::vector<int>> DiversifiedRerank(const Vector& quality,
                                           const Matrix& diversity,
                                           int top_n) {
  if (quality.size() != diversity.rows()) {
    return Status::InvalidArgument(
        StrFormat("quality size %d does not match kernel %dx%d",
                  quality.size(), diversity.rows(), diversity.cols()));
  }
  for (int i = 0; i < quality.size(); ++i) {
    if (!(quality[i] > 0.0)) {
      return Status::InvalidArgument("quality entries must be positive");
    }
  }
  const Matrix l = AssembleKernel(quality, diversity);
  GreedyMapOptions options;
  options.max_size = top_n;
  return GreedyMapInference(l, options);
}

}  // namespace lkpdpp
