#include "core/map_inference.h"

#include <cmath>
#include <vector>

#include "common/string_util.h"
#include "kernels/quality_diversity.h"

namespace lkpdpp {

Result<std::vector<int>> GreedyMapInference(const Matrix& kernel,
                                            const GreedyMapOptions& options) {
  const int m = kernel.rows();
  if (kernel.cols() != m) {
    return Status::InvalidArgument(
        StrFormat("MAP inference needs a square kernel, got %dx%d",
                  kernel.rows(), kernel.cols()));
  }
  if (!kernel.IsSymmetric(1e-8 * std::max(1.0, kernel.MaxAbs()))) {
    return Status::InvalidArgument("MAP inference needs a symmetric kernel");
  }
  if (options.max_size < 1) {
    return Status::InvalidArgument("max_size must be positive");
  }

  // Incremental Cholesky (Chen et al. 2018): for each candidate i we
  // maintain c_i, the row of the Cholesky factor of L_{S u {i}}
  // restricted to the selected set, and d2_i = L_ii - ||c_i||^2, the
  // squared pivot = marginal determinant gain of adding i.
  std::vector<double> d2(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) d2[static_cast<size_t>(i)] = kernel(i, i);
  std::vector<std::vector<double>> c(static_cast<size_t>(m));
  std::vector<bool> selected(static_cast<size_t>(m), false);
  std::vector<int> out;

  const int limit = std::min(options.max_size, m);
  while (static_cast<int>(out.size()) < limit) {
    int best = -1;
    double best_d2 = 0.0;
    for (int i = 0; i < m; ++i) {
      if (selected[static_cast<size_t>(i)]) continue;
      if (d2[static_cast<size_t>(i)] > best_d2) {
        best_d2 = d2[static_cast<size_t>(i)];
        best = i;
      }
    }
    // Vanishing gains: adding any remaining item zeroes the determinant.
    if (best < 0 || best_d2 <= 1e-15 ||
        std::log(best_d2) < options.min_log_gain) {
      break;
    }
    selected[static_cast<size_t>(best)] = true;
    out.push_back(best);
    const double dj = std::sqrt(best_d2);
    const std::vector<double>& cj = c[static_cast<size_t>(best)];
    for (int i = 0; i < m; ++i) {
      if (selected[static_cast<size_t>(i)]) continue;
      std::vector<double>& ci = c[static_cast<size_t>(i)];
      double dot = 0.0;
      for (size_t t = 0; t < cj.size(); ++t) dot += cj[t] * ci[t];
      const double e = (kernel(best, i) - dot) / dj;
      ci.push_back(e);
      d2[static_cast<size_t>(i)] -= e * e;
    }
  }
  if (out.empty()) {
    return Status::NumericalError(
        "greedy MAP: no item has positive determinant gain");
  }
  return out;
}

Result<std::vector<int>> DiversifiedRerank(const Vector& quality,
                                           const Matrix& diversity,
                                           int top_n) {
  if (quality.size() != diversity.rows()) {
    return Status::InvalidArgument(
        StrFormat("quality size %d does not match kernel %dx%d",
                  quality.size(), diversity.rows(), diversity.cols()));
  }
  for (int i = 0; i < quality.size(); ++i) {
    if (!(quality[i] > 0.0)) {
      return Status::InvalidArgument("quality entries must be positive");
    }
  }
  const Matrix l = AssembleKernel(quality, diversity);
  GreedyMapOptions options;
  options.max_size = top_n;
  return GreedyMapInference(l, options);
}

}  // namespace lkpdpp
