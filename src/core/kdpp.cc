#include "core/kdpp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"
#include "core/dpp.h"
#include "core/esp.h"
#include "linalg/lu.h"

namespace lkpdpp {

namespace {

// Validates a subset: sorted copy, in-range, distinct, cardinality k.
Result<std::vector<int>> ValidateSubset(const std::vector<int>& subset, int k,
                                        int m) {
  if (static_cast<int>(subset.size()) != k) {
    return Status::InvalidArgument(
        StrFormat("k-DPP subset must have cardinality %d, got %zu", k,
                  subset.size()));
  }
  std::vector<int> sorted = subset;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] < 0 || sorted[i] >= m) {
      return Status::OutOfRange(
          StrFormat("subset index %d outside ground set of size %d",
                    sorted[i], m));
    }
    if (i > 0 && sorted[i] == sorted[i - 1]) {
      return Status::InvalidArgument(
          StrFormat("duplicate index %d in subset", sorted[i]));
    }
  }
  return sorted;
}

}  // namespace

KDpp::KDpp(Matrix kernel, int k, EigenDecomposition eig, double log_zk,
           Matrix esp_table)
    : kernel_(std::move(kernel)),
      k_(k),
      eig_(std::move(eig)),
      log_zk_(log_zk),
      esp_table_(std::move(esp_table)) {}

Result<KDpp> KDpp::Create(Matrix kernel, int k) {
  if (kernel.rows() != kernel.cols()) {
    return Status::InvalidArgument(
        StrFormat("k-DPP kernel must be square, got %dx%d", kernel.rows(),
                  kernel.cols()));
  }
  const int m = kernel.rows();
  if (k < 1 || k > m) {
    return Status::InvalidArgument(
        StrFormat("k=%d outside [1, %d]", k, m));
  }
  if (!kernel.AllFinite()) {
    return Status::NumericalError("k-DPP kernel contains non-finite values");
  }
  LKP_ASSIGN_OR_RETURN(EigenDecomposition eig, SymmetricEigen(kernel));
  // Clamp eigenvalues indistinguishable from zero at working precision
  // (either sign: exact zeros of rank-deficient kernels come back as
  // +/- O(eps * lambda_max) noise, and a spurious positive would make
  // the rank check below pass vacuously). Genuinely indefinite kernels
  // are rejected.
  const double lam_max = std::max(eig.eigenvalues.Max(), 0.0);
  const double neg_tol = -1e-8 * std::max(1.0, lam_max);
  const double zero_tol =
      static_cast<double>(m) * std::numeric_limits<double>::epsilon() *
      lam_max;
  for (int i = 0; i < eig.eigenvalues.size(); ++i) {
    if (eig.eigenvalues[i] < neg_tol) {
      return Status::NumericalError(
          StrFormat("kernel is not PSD: eigenvalue %d = %.3e", i,
                    eig.eigenvalues[i]));
    }
    if (eig.eigenvalues[i] < zero_tol) eig.eigenvalues[i] = 0.0;
  }
  // One Algorithm-1 DP table serves both the normalizer (last column)
  // and every subsequent Sample call's backward walk.
  Matrix esp_table = EspTable(eig.eigenvalues, k);
  if (!esp_table.AllFinite()) {
    // An intermediate e_l can overflow while e_k itself stays finite
    // (huge eigenvalues balanced by tiny ones); the sampler's backward
    // walk would then divide inf by inf, so reject loudly here.
    return Status::NumericalError(
        StrFormat("ESP table overflowed for k=%d over %d eigenvalues: "
                  "eigenvalue dynamic range too large for exact sampling",
                  k, m));
  }
  const double zk = esp_table(k, m);
  if (!(zk > 0.0) || !std::isfinite(zk)) {
    return Status::NumericalError(
        StrFormat("k-DPP normalizer e_%d = %.3e is not positive/finite "
                  "(kernel rank < k?)",
                  k, zk));
  }
  return KDpp(std::move(kernel), k, std::move(eig), std::log(zk),
              std::move(esp_table));
}

Result<double> KDpp::LogProb(const std::vector<int>& subset) const {
  LKP_ASSIGN_OR_RETURN(std::vector<int> sorted,
                       ValidateSubset(subset, k_, ground_size()));
  const Matrix sub = kernel_.PrincipalSubmatrix(sorted);
  LKP_ASSIGN_OR_RETURN(double det, Determinant(sub));
  if (det <= 0.0) {
    // PSD principal minors are >= 0; tiny negatives are round-off.
    return -std::numeric_limits<double>::infinity();
  }
  return std::log(det) - log_zk_;
}

Result<double> KDpp::Prob(const std::vector<int>& subset) const {
  LKP_ASSIGN_OR_RETURN(double lp, LogProb(subset));
  return std::exp(lp);
}

Result<std::vector<std::pair<std::vector<int>, double>>>
KDpp::EnumerateProbabilities(long max_subsets) const {
  const int m = ground_size();
  const double count = BinomialCoefficient(m, k_);
  if (count > static_cast<double>(max_subsets)) {
    return Status::FailedPrecondition(
        StrFormat("C(%d,%d) = %.0f exceeds enumeration limit %ld", m, k_,
                  count, max_subsets));
  }
  std::vector<std::pair<std::vector<int>, double>> out;
  out.reserve(static_cast<size_t>(count));
  std::vector<int> idx(k_);
  for (int i = 0; i < k_; ++i) idx[i] = i;
  while (true) {
    LKP_ASSIGN_OR_RETURN(double p, Prob(idx));
    out.emplace_back(idx, p);
    if (!NextCombination(&idx, m)) break;
  }
  return out;
}

Result<std::vector<int>> KDpp::Sample(Rng* rng) const {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  const int m = ground_size();
  const Vector& lambda = eig_.eigenvalues;

  // Phase 1 (Kulesza & Taskar Alg. 8): choose k eigenvector indices J,
  // P(n in J) proportional to products of eigenvalues, by walking the
  // ESP table (precomputed at Create) backwards.
  const Matrix& table = esp_table_;
  std::vector<int> selected;
  selected.reserve(k_);
  int l = k_;
  for (int col = m; col >= 1 && l > 0; --col) {
    if (l > col) {
      return Status::Internal("k-DPP sampler ran out of eigenvalues");
    }
    const double denom = table(l, col);
    if (denom <= 0.0) {
      return Status::NumericalError("zero mass in ESP table during sampling");
    }
    const double p_include = lambda[col - 1] * table(l - 1, col - 1) / denom;
    if (rng->Uniform() < p_include) {
      selected.push_back(col - 1);
      --l;
    }
  }
  if (l != 0) {
    return Status::Internal("k-DPP sampler selected fewer than k vectors");
  }

  // Phase 2: sample the elementary DPP spanned by the selected
  // eigenvectors (shared with the standard DPP sampler in dpp.h).
  Matrix v(m, k_);
  for (int c = 0; c < k_; ++c) {
    v.SetCol(c, eig_.eigenvectors.Col(selected[static_cast<size_t>(c)]));
  }
  return SampleElementaryDpp(std::move(v), rng);
}

namespace {

// sum_c w_c u_c u_c^T as (V diag(w)) V^T, symmetrized against round-off.
Matrix WeightedEigenvectorOuter(const Matrix& vecs, const Vector& w) {
  const int m = vecs.rows();
  Matrix scaled(m, m);
  for (int c = 0; c < m; ++c) {
    for (int r = 0; r < m; ++r) scaled(r, c) = vecs(r, c) * w[c];
  }
  Matrix out = MatMulTransB(scaled, vecs);
  out.Symmetrize();
  return out;
}

}  // namespace

Matrix KDpp::MarginalKernel() const {
  const int m = ground_size();
  const Vector& lambda = eig_.eigenvalues;
  // Per-column weight lambda[c] * e_{k-1}(lambda \ c) / Z_k, assembled in
  // log domain: the raw exclusion polynomial overflows to inf (and the
  // zero-eigenvalue columns then produce 0 * inf = NaN) long before the
  // ratio itself leaves double range.
  const Vector log_excl = LogExclusionEsp(lambda, k_ - 1);
  Vector w(m);
  for (int c = 0; c < m; ++c) {
    w[c] = lambda[c] > 0.0
               ? std::exp(std::log(lambda[c]) + log_excl[c] - log_zk_)
               : 0.0;
  }
  return WeightedEigenvectorOuter(eig_.eigenvectors, w);
}

Matrix KDpp::NormalizerGradient() const {
  const int m = ground_size();
  const Vector log_excl = LogExclusionEsp(eig_.eigenvalues, k_ - 1);
  Vector w(m);
  for (int c = 0; c < m; ++c) w[c] = std::exp(log_excl[c]);
  return WeightedEigenvectorOuter(eig_.eigenvectors, w);
}

Matrix KDpp::LogNormalizerGradient() const {
  const int m = ground_size();
  // exp(log e_{k-1}(lambda \ c) - log Z_k) directly, instead of scaling
  // NormalizerGradient by exp(-log Z_k): the unnormalized gradient can
  // overflow even when the normalized one is well inside double range.
  const Vector log_excl = LogExclusionEsp(eig_.eigenvalues, k_ - 1);
  Vector w(m);
  for (int c = 0; c < m; ++c) w[c] = std::exp(log_excl[c] - log_zk_);
  return WeightedEigenvectorOuter(eig_.eigenvectors, w);
}

double BinomialCoefficient(int m, int k) {
  if (k < 0 || k > m) return 0.0;
  k = std::min(k, m - k);
  double out = 1.0;
  for (int i = 1; i <= k; ++i) {
    out = out * static_cast<double>(m - k + i) / static_cast<double>(i);
  }
  return out;
}

bool NextCombination(std::vector<int>* idx, int m) {
  const int k = static_cast<int>(idx->size());
  int pos = k - 1;
  while (pos >= 0 && (*idx)[pos] == m - k + pos) --pos;
  if (pos < 0) return false;
  ++(*idx)[pos];
  for (int j = pos + 1; j < k; ++j) (*idx)[j] = (*idx)[j - 1] + 1;
  return true;
}

}  // namespace lkpdpp
