#include "core/kdpp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/dpp.h"
#include "core/esp.h"
#include "linalg/factor_diag.h"
#include "linalg/lu.h"

namespace lkpdpp {

namespace {

// Validates a subset: sorted copy, in-range, distinct, cardinality k.
Result<std::vector<int>> ValidateSubset(const std::vector<int>& subset, int k,
                                        int m) {
  if (static_cast<int>(subset.size()) != k) {
    return Status::InvalidArgument(
        StrFormat("k-DPP subset must have cardinality %d, got %zu", k,
                  subset.size()));
  }
  std::vector<int> sorted = subset;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] < 0 || sorted[i] >= m) {
      return Status::OutOfRange(
          StrFormat("subset index %d outside ground set of size %d",
                    sorted[i], m));
    }
    if (i > 0 && sorted[i] == sorted[i - 1]) {
      return Status::InvalidArgument(
          StrFormat("duplicate index %d in subset", sorted[i]));
    }
  }
  return sorted;
}

// Shared spectrum -> (ESP table, log Z_k) finishing for both
// representations. `eigenvalues` must already be PSD-clamped; `m` is the
// primal ground size (only used in messages). Fails on ESP overflow or a
// vanished normalizer, identically for primal and dual spectra (the
// padding zeros of the primal spectrum leave every ESP bit-unchanged:
// e_l <- e_l + 0 * e_{l-1}).
Result<std::pair<Matrix, double>> FinishSpectrum(const Vector& eigenvalues,
                                                 int k, int m) {
  // One Algorithm-1 DP table serves both the normalizer (last column)
  // and every subsequent Sample call's backward walk.
  Matrix esp_table = EspTable(eigenvalues, k);
  if (!esp_table.AllFinite()) {
    // An intermediate e_l can overflow while e_k itself stays finite
    // (huge eigenvalues balanced by tiny ones); the sampler's backward
    // walk would then divide inf by inf, so reject loudly here.
    return Status::NumericalError(
        StrFormat("ESP table overflowed for k=%d over %d eigenvalues: "
                  "eigenvalue dynamic range too large for exact sampling",
                  k, m));
  }
  const double zk = esp_table(k, eigenvalues.size());
  if (!(zk > 0.0) || !std::isfinite(zk)) {
    return Status::NumericalError(
        StrFormat("k-DPP normalizer e_%d = %.3e is not positive/finite "
                  "(kernel rank < k?)",
                  k, zk));
  }
  return std::make_pair(std::move(esp_table), std::log(zk));
}

}  // namespace

KDpp::KDpp(Matrix kernel, int k, EigenDecomposition eig, double log_zk,
           Matrix esp_table)
    : kernel_(std::move(kernel)),
      k_(k),
      eig_(std::move(eig)),
      log_zk_(log_zk),
      esp_table_(std::move(esp_table)) {}

KDpp::KDpp(LowRankFactor factor, int k, EigenDecomposition dual_eig,
           double log_zk, Matrix esp_table)
    : factor_(std::move(factor)),
      dual_(true),
      k_(k),
      eig_(std::move(dual_eig)),
      log_zk_(log_zk),
      esp_table_(std::move(esp_table)) {}

KDpp::KDpp(LowRankFactor factor, Vector fd_diag, int k, Vector spectrum,
           double log_zk, Matrix esp_table)
    : factor_(std::move(factor)),
      fd_diag_(std::move(fd_diag)),
      factor_diag_(true),
      k_(k),
      log_zk_(log_zk),
      esp_table_(std::move(esp_table)) {
  eig_.eigenvalues = std::move(spectrum);
}

Result<KDpp> KDpp::Create(Matrix kernel, int k) {
  if (kernel.rows() != kernel.cols()) {
    return Status::InvalidArgument(
        StrFormat("k-DPP kernel must be square, got %dx%d", kernel.rows(),
                  kernel.cols()));
  }
  const int m = kernel.rows();
  if (k < 1 || k > m) {
    return Status::InvalidArgument(
        StrFormat("k=%d outside [1, %d]", k, m));
  }
  if (!kernel.AllFinite()) {
    return Status::NumericalError("k-DPP kernel contains non-finite values");
  }
  LKP_ASSIGN_OR_RETURN(EigenDecomposition eig, SymmetricEigen(kernel));
  // Clamp eigenvalues indistinguishable from zero at working precision
  // (either sign: exact zeros of rank-deficient kernels come back as
  // +/- O(eps * lambda_max) noise, and a spurious positive would make
  // the rank check below pass vacuously). Genuinely indefinite kernels
  // are rejected. The policy lives in ClampSpectrumToPsd so the dual
  // path below detects the same rank from the same kernel.
  LKP_RETURN_IF_ERROR(ClampSpectrumToPsd(&eig.eigenvalues, m));
  LKP_ASSIGN_OR_RETURN(auto finish, FinishSpectrum(eig.eigenvalues, k, m));
  return KDpp(std::move(kernel), k, std::move(eig), finish.second,
              std::move(finish.first));
}

Result<KDpp> KDpp::CreateDual(LowRankFactor factor, int k) {
  const int m = factor.ground_size();
  if (m < 1) {
    return Status::InvalidArgument("dual k-DPP requires a non-empty factor");
  }
  if (k < 1 || k > m) {
    return Status::InvalidArgument(
        StrFormat("k=%d outside [1, %d]", k, m));
  }
  if (k > factor.rank_bound()) {
    // rank(L) <= d < k: no cardinality-k subset has positive probability.
    // Primal Create discovers this as e_k = 0; report it the same way
    // without building a table the ESP recursion cannot size.
    return Status::NumericalError(
        StrFormat("k-DPP normalizer e_%d = 0 is not positive/finite "
                  "(kernel rank < k?): factor rank bound is %d",
                  k, factor.rank_bound()));
  }
  // EigenDual applies ClampSpectrumToPsd at primal ground size m, so a
  // rank-deficient kernel reports the same rank as KDpp::Create would.
  LKP_ASSIGN_OR_RETURN(DualEigen dual, factor.EigenDual());
  LKP_ASSIGN_OR_RETURN(auto finish, FinishSpectrum(dual.eigenvalues, k, m));
  EigenDecomposition eig;
  eig.eigenvalues = std::move(dual.eigenvalues);
  eig.eigenvectors = std::move(dual.dual_vectors);
  return KDpp(std::move(factor), k, std::move(eig), finish.second,
              std::move(finish.first));
}

Result<KDpp> KDpp::CreateFactorDiag(LowRankFactor factor, Vector diag,
                                    int k) {
  const int m = factor.ground_size();
  if (m < 1) {
    return Status::InvalidArgument(
        "factor-diag k-DPP requires a non-empty factor");
  }
  if (k < 1 || k > m) {
    return Status::InvalidArgument(
        StrFormat("k=%d outside [1, %d]", k, m));
  }
  if (diag.size() != m) {
    return Status::InvalidArgument(
        StrFormat("factor-diag k-DPP diagonal length %d != ground size %d",
                  diag.size(), m));
  }
  if (!diag.AllFinite()) {
    return Status::NumericalError(
        "factor-diag k-DPP diagonal contains non-finite values");
  }
  // No rank pre-check: the added diagonal generally makes L full-rank;
  // genuinely rank-deficient spectra (zero diagonal entries on the
  // factor's null rows) fall out of FinishSpectrum as e_k = 0 with the
  // identical primal wording. The clamp runs at ground size m exactly
  // like Create, so rank detection is representation-independent.
  LKP_ASSIGN_OR_RETURN(Vector spectrum, FactorDiagSpectrum(factor.v(), diag));
  LKP_RETURN_IF_ERROR(ClampSpectrumToPsd(&spectrum, m));
  LKP_ASSIGN_OR_RETURN(auto finish, FinishSpectrum(spectrum, k, m));
  return KDpp(std::move(factor), std::move(diag), k, std::move(spectrum),
              finish.second, std::move(finish.first));
}

Result<double> KDpp::LogProb(const std::vector<int>& subset) const {
  LKP_ASSIGN_OR_RETURN(std::vector<int> sorted,
                       ValidateSubset(subset, k_, ground_size()));
  // det(L_S) from the kernel submatrix, or from the Gram of the factor's
  // rows (plus the added diagonal in factor-diag mode) — the same k x k
  // matrix, assembled without materializing L.
  Matrix sub = dual_ || factor_diag_ ? factor_.SubsetGram(sorted)
                                     : kernel_.PrincipalSubmatrix(sorted);
  if (factor_diag_) {
    for (size_t i = 0; i < sorted.size(); ++i) {
      sub(static_cast<int>(i), static_cast<int>(i)) += fd_diag_[sorted[i]];
    }
  }
  LKP_ASSIGN_OR_RETURN(double det, Determinant(sub));
  if (det <= 0.0) {
    // PSD principal minors are >= 0; tiny negatives are round-off.
    return -std::numeric_limits<double>::infinity();
  }
  return std::log(det) - log_zk_;
}

Result<double> KDpp::Prob(const std::vector<int>& subset) const {
  LKP_ASSIGN_OR_RETURN(double lp, LogProb(subset));
  return std::exp(lp);
}

Result<std::vector<std::pair<std::vector<int>, double>>>
KDpp::EnumerateProbabilities(long max_subsets) const {
  const int m = ground_size();
  const double count = BinomialCoefficient(m, k_);
  if (count > static_cast<double>(max_subsets)) {
    return Status::FailedPrecondition(
        StrFormat("C(%d,%d) = %.0f exceeds enumeration limit %ld", m, k_,
                  count, max_subsets));
  }
  std::vector<std::pair<std::vector<int>, double>> out;
  out.reserve(static_cast<size_t>(count));
  std::vector<int> idx(k_);
  for (int i = 0; i < k_; ++i) idx[i] = i;
  while (true) {
    LKP_ASSIGN_OR_RETURN(double p, Prob(idx));
    out.emplace_back(idx, p);
    if (!NextCombination(&idx, m)) break;
  }
  return out;
}

Result<std::vector<int>> KDpp::Sample(Rng* rng) const {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  const int m = ground_size();
  const Vector& lambda = eig_.eigenvalues;

  // Phase 1 (Kulesza & Taskar Alg. 8): choose k eigenvector indices J,
  // P(n in J) proportional to products of eigenvalues, by walking the
  // ESP table (precomputed at Create) backwards. The walk is identical
  // for both representations: it starts at the top of the ascending
  // spectrum and always completes its k selections before descending
  // into the zero eigenvalues (inclusion is forced once the remaining
  // positive eigenvalues are exactly the l still needed), so the
  // (m - d) padding zeros the dual spectrum omits are never visited and
  // both representations consume the Rng draw-for-draw.
  const Matrix& table = esp_table_;
  std::vector<int> selected;
  selected.reserve(k_);
  int l = k_;
  for (int col = lambda.size(); col >= 1 && l > 0; --col) {
    if (l > col) {
      return Status::Internal("k-DPP sampler ran out of eigenvalues");
    }
    const double denom = table(l, col);
    if (denom <= 0.0) {
      return Status::NumericalError("zero mass in ESP table during sampling");
    }
    const double p_include = lambda[col - 1] * table(l - 1, col - 1) / denom;
    if (rng->Uniform() < p_include) {
      selected.push_back(col - 1);
      --l;
    }
  }
  if (l != 0) {
    return Status::Internal("k-DPP sampler selected fewer than k vectors");
  }

  // Phase 2: sample the elementary DPP spanned by the selected
  // eigenvectors (shared with the standard DPP sampler in dpp.h). Dual
  // mode lifts the selected dual vectors to L-space on demand:
  // O(m d k) for the lift, never an m x m materialization.
  if (dual_) {
    Matrix basis = factor_.LiftEigenvectors(eig_.eigenvalues,
                                            eig_.eigenvectors, selected);
    return SampleElementaryDpp(std::move(basis), rng);
  }
  // Factor-diag mode materializes just the k selected eigenvectors of
  // W W^T + D (never m x m). The backward walk pushes columns in
  // descending order; the materializer wants them ascending. Column
  // order within the basis is immaterial to the elementary sampler.
  if (factor_diag_) {
    std::vector<int> ascending = selected;
    std::sort(ascending.begin(), ascending.end());
    LKP_ASSIGN_OR_RETURN(
        Matrix basis, FactorDiagEigenvectors(factor_.v(), fd_diag_,
                                             eig_.eigenvalues, ascending));
    return SampleElementaryDpp(std::move(basis), rng);
  }
  Matrix v(m, k_);
  for (int c = 0; c < k_; ++c) {
    v.SetCol(c, eig_.eigenvectors.Col(selected[static_cast<size_t>(c)]));
  }
  return SampleElementaryDpp(std::move(v), rng);
}

namespace {

// sum_c w_c u_c u_c^T as (V diag(w)) V^T, symmetrized against round-off.
Matrix WeightedEigenvectorOuter(const Matrix& vecs, const Vector& w) {
  const int m = vecs.rows();
  Matrix scaled(m, m);
  for (int c = 0; c < m; ++c) {
    for (int r = 0; r < m; ++r) scaled(r, c) = vecs(r, c) * w[c];
  }
  Matrix out = MatMulTransB(scaled, vecs);
  out.Symmetrize();
  return out;
}

}  // namespace

// Per-column marginal weight lambda[c] * e_{k-1}(lambda \ c) / Z_k,
// assembled in log domain: the raw exclusion polynomial overflows to inf
// (and the zero-eigenvalue columns then produce 0 * inf = NaN) long
// before the ratio itself leaves double range. Works on either spectrum
// — the padding zeros the dual omits would all get weight zero, and
// excluding a value from a zero-padded list leaves every ESP unchanged.
Vector KDpp::MarginalWeights() const {
  const Vector& lambda = eig_.eigenvalues;
  const Vector log_excl = LogExclusionEsp(lambda, k_ - 1);
  Vector w(lambda.size());
  for (int c = 0; c < lambda.size(); ++c) {
    w[c] = lambda[c] > 0.0
               ? std::exp(std::log(lambda[c]) + log_excl[c] - log_zk_)
               : 0.0;
  }
  return w;
}

Matrix KDpp::MarginalKernel() const {
  const Vector w = MarginalWeights();
  if (dual_) {
    return WeightedLiftedOuter(factor_, eig_.eigenvalues,
                               eig_.eigenvectors, w);
  }
  if (factor_diag_) {
    Result<Matrix> out =
        FactorDiagWeightedOuter(factor_.v(), fd_diag_, eig_.eigenvalues, w);
    LKP_CHECK(out.ok()) << out.status().ToString();
    return std::move(out).ValueOrDie();
  }
  return WeightedEigenvectorOuter(eig_.eigenvectors, w);
}

Vector KDpp::MarginalDiagonal() const {
  const Vector w = MarginalWeights();
  if (dual_) {
    return WeightedLiftedDiagonal(factor_, eig_.eigenvalues,
                                  eig_.eigenvectors, w);
  }
  if (factor_diag_) {
    Result<Vector> out = FactorDiagWeightedDiagonal(factor_.v(), fd_diag_,
                                                    eig_.eigenvalues, w);
    LKP_CHECK(out.ok()) << out.status().ToString();
    return std::move(out).ValueOrDie();
  }
  return WeightedEigenvectorDiagonal(eig_.eigenvectors, w);
}

Matrix KDpp::NormalizerGradient() const {
  LKP_CHECK(!dual_ && !factor_diag_)
      << "NormalizerGradient is primal-only: d Z_k / d L needs the full "
         "eigenvector set, which the factored representations never hold";
  const int m = ground_size();
  const Vector log_excl = LogExclusionEsp(eig_.eigenvalues, k_ - 1);
  Vector w(m);
  for (int c = 0; c < m; ++c) w[c] = std::exp(log_excl[c]);
  return WeightedEigenvectorOuter(eig_.eigenvectors, w);
}

Matrix KDpp::LogNormalizerGradient() const {
  LKP_CHECK(!dual_ && !factor_diag_)
      << "LogNormalizerGradient is primal-only: d log Z_k / d L needs "
         "the full eigenvector set, which the factored representations "
         "never hold";
  const int m = ground_size();
  // exp(log e_{k-1}(lambda \ c) - log Z_k) directly, instead of scaling
  // NormalizerGradient by exp(-log Z_k): the unnormalized gradient can
  // overflow even when the normalized one is well inside double range.
  const Vector log_excl = LogExclusionEsp(eig_.eigenvalues, k_ - 1);
  Vector w(m);
  for (int c = 0; c < m; ++c) w[c] = std::exp(log_excl[c] - log_zk_);
  return WeightedEigenvectorOuter(eig_.eigenvectors, w);
}

double BinomialCoefficient(int m, int k) {
  if (k < 0 || k > m) return 0.0;
  k = std::min(k, m - k);
  double out = 1.0;
  for (int i = 1; i <= k; ++i) {
    out = out * static_cast<double>(m - k + i) / static_cast<double>(i);
  }
  return out;
}

bool NextCombination(std::vector<int>* idx, int m) {
  const int k = static_cast<int>(idx->size());
  int pos = k - 1;
  while (pos >= 0 && (*idx)[pos] == m - k + pos) --pos;
  if (pos < 0) return false;
  ++(*idx)[pos];
  for (int j = pos + 1; j < k; ++j) (*idx)[j] = (*idx)[j - 1] + 1;
  return true;
}

}  // namespace lkpdpp
