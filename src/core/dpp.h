// Standard (unconstrained-cardinality) DPP over a small ground set.
//
// The paper conditions on cardinality (k-DPP, kdpp.h) precisely because
// the standard DPP's variable-size competition muddles ranking signals
// (Section III-B1). The standard DPP is still the foundational object:
//   P(S) = det(L_S) / det(L + I)              (paper Eq. 1)
// and this class provides it for comparison experiments, the MAP
// re-ranking extension (map_inference.h), and tests that contrast the
// two normalizations.

#ifndef LKPDPP_CORE_DPP_H_
#define LKPDPP_CORE_DPP_H_

#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "linalg/eigen.h"
#include "linalg/low_rank.h"
#include "linalg/matrix.h"

namespace lkpdpp {

/// An exact standard DPP with PSD kernel L over {0..m-1}.
///
/// Two representations share this type. The primal one (Create) holds the
/// n x n kernel and its full eigendecomposition. The dual one
/// (CreateDual) holds a rank-d factor V with L = V V^T plus the d x d
/// dual eigendecomposition, and never materializes L: probabilities come
/// from Gram determinants and sampling lifts dual eigenvectors on demand
/// (Gartrell et al. 2016). Both representations define the same
/// distribution, and for a fixed seed Sample draws the same subsets
/// either way: the dual sampler consumes its Rng in the exact draw order
/// of the primal sampler (including the selection draws the primal spends
/// on zero eigenvalues), so swapping representations cannot re-randomize
/// a stream.
class Dpp {
 public:
  /// Fails on non-square/non-symmetric/indefinite kernels (round-off
  /// negatives are clamped).
  static Result<Dpp> Create(Matrix kernel);

  /// Builds the DPP with kernel L = V V^T from its factor, at
  /// O(n d^2 + d^3) instead of O(n^3). Same PSD clamp as Create, applied
  /// at primal ground size, so rank detection is representation-
  /// independent.
  static Result<Dpp> CreateDual(LowRankFactor factor);

  int ground_size() const {
    return dual_ ? factor_.ground_size() : kernel_.rows();
  }
  bool is_dual() const { return dual_; }

  /// Primal-mode kernel. Empty in dual mode (the whole point is never
  /// materializing it); use factor() there.
  const Matrix& kernel() const { return kernel_; }
  /// Dual-mode factor V. Empty (0 x 0 v()) in primal mode.
  const LowRankFactor& factor() const { return factor_; }

  /// Primal mode: all n eigenvalues of L, ascending. Dual mode: the d
  /// eigenvalues of the dual kernel C = V^T V, ascending — L's spectrum
  /// is these plus (n - d) implicit zeros.
  const Vector& eigenvalues() const { return eig_.eigenvalues; }

  /// log det(L + I): the normalizer over all 2^m subsets.
  double LogNormalizer() const { return log_z_; }

  /// log P(S) for any subset, including the empty set (det of an empty
  /// matrix is 1). Fails on duplicates/out-of-range.
  Result<double> LogProb(const std::vector<int>& subset) const;
  Result<double> Prob(const std::vector<int>& subset) const;

  /// Marginal kernel M = L (L + I)^{-1}; M_ii = P(i in S). Dual mode
  /// assembles it from lifted eigenvectors at O(n^2 r) — prefer
  /// MarginalDiagonal when only inclusion probabilities are needed.
  Matrix MarginalKernel() const;

  /// diag(M) without materializing M: P(i in S) for every item.
  Vector MarginalDiagonal() const;

  /// Expected sample cardinality: sum_i lambda_i / (1 + lambda_i).
  double ExpectedSize() const;

  /// Exact sample (Hough et al. / Kulesza & Taskar Alg. 1): choose each
  /// eigenvector independently with probability lambda/(1+lambda), then
  /// sample the induced elementary DPP. Returned indices ascend.
  Result<std::vector<int>> Sample(Rng* rng) const;

 private:
  Dpp(Matrix kernel, EigenDecomposition eig, double log_z);
  Dpp(LowRankFactor factor, EigenDecomposition dual_eig, double log_z);
  Matrix kernel_;       // Primal mode only.
  LowRankFactor factor_;  // Dual mode only.
  bool dual_ = false;
  // Primal: eigenpairs of L. Dual: eigenpairs of C = V^T V (d x d).
  EigenDecomposition eig_;
  double log_z_;
};

/// Samples the elementary DPP spanned by the given orthonormal columns
/// (selects exactly `basis.cols()` items). Shared by Dpp and KDpp.
/// `basis` is consumed. Fails with NumericalError on basis collapse or
/// when the residual selection weights over unchosen items vanish (the
/// sampler never emits a duplicate index).
Result<std::vector<int>> SampleElementaryDpp(Matrix basis, Rng* rng);

}  // namespace lkpdpp

#endif  // LKPDPP_CORE_DPP_H_
