// Standard (unconstrained-cardinality) DPP over a small ground set.
//
// The paper conditions on cardinality (k-DPP, kdpp.h) precisely because
// the standard DPP's variable-size competition muddles ranking signals
// (Section III-B1). The standard DPP is still the foundational object:
//   P(S) = det(L_S) / det(L + I)              (paper Eq. 1)
// and this class provides it for comparison experiments, the MAP
// re-ranking extension (map_inference.h), and tests that contrast the
// two normalizations.

#ifndef LKPDPP_CORE_DPP_H_
#define LKPDPP_CORE_DPP_H_

#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "linalg/eigen.h"
#include "linalg/low_rank.h"
#include "linalg/matrix.h"

namespace lkpdpp {

/// An exact standard DPP with PSD kernel L over {0..m-1}.
///
/// Three representations share this type. The primal one (Create) holds
/// the n x n kernel and its full eigendecomposition. The dual one
/// (CreateDual) holds a rank-d factor V with L = V V^T plus the d x d
/// dual eigendecomposition, and never materializes L: probabilities come
/// from Gram determinants and sampling lifts dual eigenvectors on demand
/// (Gartrell et al. 2016). The factor-diag one (CreateFactorDiag) holds
/// L = W W^T + Diag(diag) — the blended serving shape — with the full
/// n-length spectrum computed by inertia bisection
/// (linalg/factor_diag.h) and eigenvectors materialized per draw, again
/// never forming n x n. All define the same distribution, and for a
/// fixed seed Sample draws the same subsets in any representation: the
/// dual sampler consumes its Rng in the exact draw order of the primal
/// sampler (including the selection draws the primal spends on zero
/// eigenvalues), and the factor-diag sampler walks the same full
/// spectrum the primal walks, so swapping representations cannot
/// re-randomize a stream.
class Dpp {
 public:
  /// Fails on non-square/non-symmetric/indefinite kernels (round-off
  /// negatives are clamped).
  static Result<Dpp> Create(Matrix kernel);

  /// Builds the DPP with kernel L = V V^T from its factor, at
  /// O(n d^2 + d^3) instead of O(n^3). Same PSD clamp as Create, applied
  /// at primal ground size, so rank detection is representation-
  /// independent.
  static Result<Dpp> CreateDual(LowRankFactor factor);

  /// Builds the DPP with kernel L = W W^T + Diag(diag) from the factor
  /// and the added diagonal, without materializing L: the full spectrum
  /// comes from FactorDiagSpectrum and gets the same PSD clamp as
  /// Create. O(n d) memory; spectrum time O(n^2 d^2 log(1/eps)).
  static Result<Dpp> CreateFactorDiag(LowRankFactor factor, Vector diag);

  int ground_size() const {
    return kernel_.rows() > 0 ? kernel_.rows() : factor_.ground_size();
  }
  bool is_dual() const { return dual_; }
  bool is_factor_diag() const { return factor_diag_; }

  /// Primal-mode kernel. Empty in dual/factor-diag modes (the whole
  /// point is never materializing it); use factor() there.
  const Matrix& kernel() const { return kernel_; }
  /// Dual-mode factor V / factor-diag-mode factor W. Empty (0 x 0 v())
  /// in primal mode.
  const LowRankFactor& factor() const { return factor_; }
  /// Factor-diag mode: the added diagonal D. Empty otherwise.
  const Vector& added_diagonal() const { return fd_diag_; }

  /// Primal and factor-diag modes: all n eigenvalues of L, ascending.
  /// Dual mode: the d eigenvalues of the dual kernel C = V^T V,
  /// ascending — L's spectrum is these plus (n - d) implicit zeros.
  const Vector& eigenvalues() const { return eig_.eigenvalues; }

  /// log det(L + I): the normalizer over all 2^m subsets.
  double LogNormalizer() const { return log_z_; }

  /// log P(S) for any subset, including the empty set (det of an empty
  /// matrix is 1). Fails on duplicates/out-of-range.
  Result<double> LogProb(const std::vector<int>& subset) const;
  Result<double> Prob(const std::vector<int>& subset) const;

  /// Marginal kernel M = L (L + I)^{-1}; M_ii = P(i in S). Dual mode
  /// assembles it from lifted eigenvectors at O(n^2 r) — prefer
  /// MarginalDiagonal when only inclusion probabilities are needed.
  Matrix MarginalKernel() const;

  /// diag(M) without materializing M: P(i in S) for every item.
  Vector MarginalDiagonal() const;

  /// Expected sample cardinality: sum_i lambda_i / (1 + lambda_i).
  double ExpectedSize() const;

  /// Exact sample (Hough et al. / Kulesza & Taskar Alg. 1): choose each
  /// eigenvector independently with probability lambda/(1+lambda), then
  /// sample the induced elementary DPP. Returned indices ascend.
  Result<std::vector<int>> Sample(Rng* rng) const;

 private:
  Dpp(Matrix kernel, EigenDecomposition eig, double log_z);
  Dpp(LowRankFactor factor, EigenDecomposition dual_eig, double log_z);
  Dpp(LowRankFactor factor, Vector fd_diag, Vector spectrum, double log_z);
  Matrix kernel_;         // Primal mode only.
  LowRankFactor factor_;  // Dual and factor-diag modes.
  Vector fd_diag_;        // Factor-diag mode only: the added diagonal.
  bool dual_ = false;
  bool factor_diag_ = false;
  // Primal: eigenpairs of L. Dual: eigenpairs of C = V^T V (d x d).
  // Factor-diag: the full n-length spectrum of W W^T + D; eigenvectors
  // stay empty and are materialized on demand (linalg/factor_diag.h).
  EigenDecomposition eig_;
  double log_z_;
};

/// Samples the elementary DPP spanned by the given orthonormal columns
/// (selects exactly `basis.cols()` items). Shared by Dpp and KDpp.
/// `basis` is consumed. Fails with NumericalError on basis collapse or
/// when the residual selection weights over unchosen items vanish (the
/// sampler never emits a duplicate index).
Result<std::vector<int>> SampleElementaryDpp(Matrix basis, Rng* rng);

}  // namespace lkpdpp

#endif  // LKPDPP_CORE_DPP_H_
