// Standard (unconstrained-cardinality) DPP over a small ground set.
//
// The paper conditions on cardinality (k-DPP, kdpp.h) precisely because
// the standard DPP's variable-size competition muddles ranking signals
// (Section III-B1). The standard DPP is still the foundational object:
//   P(S) = det(L_S) / det(L + I)              (paper Eq. 1)
// and this class provides it for comparison experiments, the MAP
// re-ranking extension (map_inference.h), and tests that contrast the
// two normalizations.

#ifndef LKPDPP_CORE_DPP_H_
#define LKPDPP_CORE_DPP_H_

#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"

namespace lkpdpp {

/// An exact standard DPP with PSD kernel L over {0..m-1}.
class Dpp {
 public:
  /// Fails on non-square/non-symmetric/indefinite kernels (round-off
  /// negatives are clamped).
  static Result<Dpp> Create(Matrix kernel);

  int ground_size() const { return kernel_.rows(); }
  const Matrix& kernel() const { return kernel_; }
  const Vector& eigenvalues() const { return eig_.eigenvalues; }

  /// log det(L + I): the normalizer over all 2^m subsets.
  double LogNormalizer() const { return log_z_; }

  /// log P(S) for any subset, including the empty set (det of an empty
  /// matrix is 1). Fails on duplicates/out-of-range.
  Result<double> LogProb(const std::vector<int>& subset) const;
  Result<double> Prob(const std::vector<int>& subset) const;

  /// Marginal kernel M = L (L + I)^{-1}; M_ii = P(i in S).
  Matrix MarginalKernel() const;

  /// Expected sample cardinality: sum_i lambda_i / (1 + lambda_i).
  double ExpectedSize() const;

  /// Exact sample (Hough et al. / Kulesza & Taskar Alg. 1): choose each
  /// eigenvector independently with probability lambda/(1+lambda), then
  /// sample the induced elementary DPP. Returned indices ascend.
  Result<std::vector<int>> Sample(Rng* rng) const;

 private:
  Dpp(Matrix kernel, EigenDecomposition eig, double log_z);
  Matrix kernel_;
  EigenDecomposition eig_;
  double log_z_;
};

/// Samples the elementary DPP spanned by the given orthonormal columns
/// (selects exactly `basis.cols()` items). Shared by Dpp and KDpp.
/// `basis` is consumed. Fails with NumericalError on basis collapse or
/// when the residual selection weights over unchosen items vanish (the
/// sampler never emits a duplicate index).
Result<std::vector<int>> SampleElementaryDpp(Matrix basis, Rng* rng);

}  // namespace lkpdpp

#endif  // LKPDPP_CORE_DPP_H_
