// The pluggable ranking-criterion interface.
//
// Every optimization criterion in the paper — LkP (PS/NPS) and the
// baselines BCE, BPR, SetRank, Set2SetRank — consumes the model's raw
// scores for one training instance's ground set (first num_pos entries
// are observed targets) and produces a loss plus dLoss/dScore. LkP
// variants additionally consume a diversity-kernel submatrix and can
// emit dLoss/dKernel for the trainable E-type kernel. Models never see
// the criterion internals, which is what makes the Table IV "rework"
// experiments a one-line swap.

#ifndef LKPDPP_CORE_CRITERION_H_
#define LKPDPP_CORE_CRITERION_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "linalg/matrix.h"

namespace lkpdpp {

/// Inputs a criterion sees for one training instance.
struct CriterionInput {
  /// Raw model scores for the ground set; entries [0, num_pos) belong to
  /// observed targets, the rest to sampled unobserved items.
  Vector scores;
  int num_pos = 0;
  /// Diversity kernel submatrix over the ground set (LkP only; may be
  /// null for score-only criteria).
  const Matrix* diversity = nullptr;
  /// Request dLoss/dKernel (the E-type trainable-kernel path).
  bool want_kernel_grad = false;
};

/// A criterion's verdict on one instance.
struct CriterionOutput {
  double loss = 0.0;
  /// dLoss/dScore, same length as input scores.
  Vector dscore;
  /// dLoss/dKernel (ground x ground); empty unless want_kernel_grad.
  Matrix dkernel;
};

/// Minimization objective over scored ground sets.
class RankingCriterion {
 public:
  virtual ~RankingCriterion() = default;

  virtual std::string name() const = 0;

  /// True if the criterion consumes a diversity kernel submatrix.
  virtual bool NeedsDiversityKernel() const { return false; }

  /// Computes loss and gradients for one instance. Implementations must
  /// validate num_pos and sizes.
  virtual Result<CriterionOutput> Evaluate(const CriterionInput& in) const = 0;
};

/// Factory helpers for the four baseline criteria (definitions in
/// core/baseline_criteria.cc).
std::unique_ptr<RankingCriterion> MakeBceCriterion();
std::unique_ptr<RankingCriterion> MakeBprCriterion();
std::unique_ptr<RankingCriterion> MakeSetRankCriterion();
std::unique_ptr<RankingCriterion> MakeSet2SetRankCriterion(
    double set_level_weight = 1.0);

}  // namespace lkpdpp

#endif  // LKPDPP_CORE_CRITERION_H_
