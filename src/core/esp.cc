#include "core/esp.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.h"

namespace lkpdpp {

namespace {

// log(exp(a) + exp(b)) without leaving log space; -inf encodes zero.
inline double LogAddExp(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  return hi + std::log1p(std::exp(lo - hi));
}

}  // namespace

double ElementarySymmetric(const Vector& values, int k) {
  LKP_CHECK(k >= 0 && k <= values.size())
      << "k=" << k << " over " << values.size() << " values";
  if (k == 0) return 1.0;
  // Rolling single-row variant of Algorithm 1: e[l] holds e_l over the
  // prefix processed so far; update high-to-low so e[l-1] is the previous
  // prefix's value.
  std::vector<double> e(static_cast<size_t>(k) + 1, 0.0);
  e[0] = 1.0;
  for (int m = 0; m < values.size(); ++m) {
    const double lam = values[m];
    for (int l = std::min(k, m + 1); l >= 1; --l) {
      e[l] += lam * e[l - 1];
    }
  }
  return e[k];
}

Vector AllElementarySymmetric(const Vector& values, int kmax) {
  LKP_CHECK(kmax >= 0 && kmax <= values.size());
  std::vector<double> e(static_cast<size_t>(kmax) + 1, 0.0);
  e[0] = 1.0;
  for (int m = 0; m < values.size(); ++m) {
    const double lam = values[m];
    for (int l = std::min(kmax, m + 1); l >= 1; --l) {
      e[l] += lam * e[l - 1];
    }
  }
  return Vector(std::move(e));
}

Matrix EspTable(const Vector& values, int k) {
  LKP_CHECK(k >= 0 && k <= values.size());
  const int m = values.size();
  Matrix table(k + 1, m + 1);
  for (int col = 0; col <= m; ++col) table(0, col) = 1.0;
  for (int l = 1; l <= k; ++l) {
    table(l, 0) = 0.0;
    for (int col = 1; col <= m; ++col) {
      table(l, col) =
          table(l, col - 1) + values[col - 1] * table(l - 1, col - 1);
    }
  }
  return table;
}

Vector ExclusionEsp(const Vector& values, int degree) {
  const int m = values.size();
  LKP_CHECK(degree >= 0 && degree <= m - 1)
      << "degree=" << degree << " over " << m << " values";
  Vector out(m);
  std::vector<double> e(static_cast<size_t>(degree) + 1, 0.0);
  for (int skip = 0; skip < m; ++skip) {
    std::fill(e.begin(), e.end(), 0.0);
    e[0] = 1.0;
    int seen = 0;
    for (int i = 0; i < m; ++i) {
      if (i == skip) continue;
      const double lam = values[i];
      for (int l = std::min(degree, seen + 1); l >= 1; --l) {
        e[l] += lam * e[l - 1];
      }
      ++seen;
    }
    out[skip] = e[degree];
  }
  return out;
}

Vector LogExclusionEsp(const Vector& values, int degree) {
  const int m = values.size();
  LKP_CHECK(degree >= 0 && degree <= m - 1)
      << "degree=" << degree << " over " << m << " values";
  const double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> logv(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    LKP_CHECK_GE(values[i], 0.0) << "LogExclusionEsp requires values >= 0";
    logv[static_cast<size_t>(i)] =
        values[i] > 0.0 ? std::log(values[i]) : kNegInf;
  }
  // Same per-excluded-index recursion as ExclusionEsp, with every
  // `e[l] += lam * e[l-1]` replaced by its log-space counterpart.
  Vector out(m);
  std::vector<double> e(static_cast<size_t>(degree) + 1, kNegInf);
  for (int skip = 0; skip < m; ++skip) {
    std::fill(e.begin(), e.end(), kNegInf);
    e[0] = 0.0;
    int seen = 0;
    for (int i = 0; i < m; ++i) {
      if (i == skip) continue;
      const double log_lam = logv[static_cast<size_t>(i)];
      for (int l = std::min(degree, seen + 1); l >= 1; --l) {
        e[l] = LogAddExp(e[l], log_lam + e[l - 1]);
      }
      ++seen;
    }
    out[skip] = e[degree];
  }
  return out;
}

double ElementarySymmetricBruteForce(const Vector& values, int k) {
  const int m = values.size();
  LKP_CHECK(k >= 0 && k <= m);
  if (k == 0) return 1.0;
  // Iterate all k-combinations in lexicographic order.
  std::vector<int> idx(k);
  for (int i = 0; i < k; ++i) idx[i] = i;
  double total = 0.0;
  while (true) {
    double prod = 1.0;
    for (int i : idx) prod *= values[i];
    total += prod;
    // Advance combination.
    int pos = k - 1;
    while (pos >= 0 && idx[pos] == m - k + pos) --pos;
    if (pos < 0) break;
    ++idx[pos];
    for (int j = pos + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
  return total;
}

}  // namespace lkpdpp
