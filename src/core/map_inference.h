// Fast greedy MAP inference for DPPs (Chen, Zhang & Zhou, NeurIPS 2018).
//
// The diversified re-ranking technique the paper's related-work section
// builds on: greedily grow S maximizing det(L_S), with each step's
// marginal gains maintained by an incremental Cholesky factorization so
// the whole selection costs O(M * size^2) instead of O(M * size^3).
// Provided as a library extension — combine a trained model's scores
// with the diversity kernel and re-rank a candidate pool.
//
// The greedy loop is representation-generic: it reads the kernel only
// through KernelRep's FillDiag / FillRow primitives, so it runs
// unchanged over a materialized Matrix (O(1) row reads) or a
// FactorDiagKernelRep (rows synthesized at O(n d) — the whole selection
// is O(k n d + k^2 n) without ever touching an n x n array). Because
// FactorDiagKernelRep's entries are bit-identical to the materialized
// pipeline's (see linalg/kernel_rep.h), both paths take identical
// branches and select identical sets.
//
// Stopping rule: the loop stops when the best remaining squared pivot
// d^2 falls to <= 1e-15 * max_i L(i, i). The threshold is RELATIVE to
// the kernel's diagonal scale — an absolute cutoff misreads uniformly
// tiny kernels (every gain "vanishes" at 1e-150 scale) and uniformly
// huge ones (round-off residues at 1e150 scale look like genuine gains
// past the numerical rank).

#ifndef LKPDPP_CORE_MAP_INFERENCE_H_
#define LKPDPP_CORE_MAP_INFERENCE_H_

#include <vector>

#include "common/result.h"
#include "linalg/kernel_rep.h"
#include "linalg/matrix.h"

namespace lkpdpp {

struct GreedyMapOptions {
  /// Stop after this many selections.
  int max_size = 10;
  /// Stop once the best marginal log-det gain falls below this value
  /// (log d^2 < min_log_gain). -inf disables the stop.
  double min_log_gain = -1e300;
};

/// Greedy argmax of det(L_S) over any kernel representation: returns
/// selected indices in selection order. The rep must describe a
/// symmetric PSD kernel (Matrix callers are validated by the overload
/// below; factor-built reps are PSD by construction). Fails if nothing
/// has positive gain; returns fewer than max_size items once gains fall
/// below 1e-15 * max diagonal (numerical rank exhausted).
Result<std::vector<int>> GreedyMapInference(const KernelRep& kernel,
                                            const GreedyMapOptions& options);

/// Matrix entry point: validates shape/symmetry, then runs the generic
/// loop over a non-owning primal view.
Result<std::vector<int>> GreedyMapInference(const Matrix& kernel,
                                            const GreedyMapOptions& options);

/// Convenience: diversified top-N re-ranking. Builds the quality x
/// diversity kernel L = Diag(q) K Diag(q) over a candidate pool and runs
/// greedy MAP. `quality` must be positive.
Result<std::vector<int>> DiversifiedRerank(const Vector& quality,
                                           const Matrix& diversity,
                                           int top_n);

}  // namespace lkpdpp

#endif  // LKPDPP_CORE_MAP_INFERENCE_H_
