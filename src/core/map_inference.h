// Fast greedy MAP inference for DPPs (Chen, Zhang & Zhou, NeurIPS 2018).
//
// The diversified re-ranking technique the paper's related-work section
// builds on: greedily grow S maximizing det(L_S), with each step's
// marginal gains maintained by an incremental Cholesky factorization so
// the whole selection costs O(M * size^2) instead of O(M * size^3).
// Provided as a library extension — combine a trained model's scores
// with the diversity kernel and re-rank a candidate pool.

#ifndef LKPDPP_CORE_MAP_INFERENCE_H_
#define LKPDPP_CORE_MAP_INFERENCE_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace lkpdpp {

struct GreedyMapOptions {
  /// Stop after this many selections.
  int max_size = 10;
  /// Stop once the best marginal log-det gain falls below this value
  /// (log d^2 < min_log_gain). -inf disables the stop.
  double min_log_gain = -1e300;
};

/// Greedy argmax of det(L_S): returns selected indices in selection
/// order. `kernel` must be square, symmetric, PSD with strictly positive
/// diagonal mass to select from. Fails on invalid kernels; returns fewer
/// than max_size items if gains vanish (numerically rank-deficient
/// kernels).
Result<std::vector<int>> GreedyMapInference(const Matrix& kernel,
                                            const GreedyMapOptions& options);

/// Convenience: diversified top-N re-ranking. Builds the quality x
/// diversity kernel L = Diag(q) K Diag(q) over a candidate pool and runs
/// greedy MAP. `quality` must be positive.
Result<std::vector<int>> DiversifiedRerank(const Vector& quality,
                                           const Matrix& diversity,
                                           int top_n);

}  // namespace lkpdpp

#endif  // LKPDPP_CORE_MAP_INFERENCE_H_
