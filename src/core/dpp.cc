#include "core/dpp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"
#include "linalg/factor_diag.h"
#include "linalg/lu.h"

namespace lkpdpp {

Result<std::vector<int>> SampleElementaryDpp(Matrix basis, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  const int m = basis.rows();
  int dim = basis.cols();
  std::vector<int> items;
  items.reserve(static_cast<size_t>(dim));

  while (dim > 0) {
    std::vector<double> weights(static_cast<size_t>(m), 0.0);
    for (int i = 0; i < m; ++i) {
      double s = 0.0;
      for (int c = 0; c < dim; ++c) s += basis(i, c) * basis(i, c);
      weights[static_cast<size_t>(i)] = s;
    }
    for (int chosen : items) weights[static_cast<size_t>(chosen)] = 0.0;
    double total = 0.0;
    for (double w : weights) total += w;
    if (!(total > 0.0)) {
      // All residual mass underflowed (or went non-finite). Categorical's
      // uniform fallback would ignore the already-chosen items and could
      // emit a duplicate index; fail loudly instead.
      return Status::NumericalError(
          "elementary DPP sampler: residual weights vanished over "
          "unchosen items");
    }
    const int item = rng->Categorical(weights);
    items.push_back(item);
    if (dim == 1) break;

    // Eliminate the e_item component using the largest pivot column,
    // drop it, then re-orthonormalize.
    int pivot = 0;
    double best = std::fabs(basis(item, 0));
    for (int c = 1; c < dim; ++c) {
      if (std::fabs(basis(item, c)) > best) {
        best = std::fabs(basis(item, c));
        pivot = c;
      }
    }
    if (best <= 0.0) {
      return Status::NumericalError(
          "elementary DPP sampler: chosen item has no support");
    }
    for (int c = 0; c < dim; ++c) {
      if (c == pivot) continue;
      const double f = basis(item, c) / basis(item, pivot);
      for (int r = 0; r < m; ++r) basis(r, c) -= f * basis(r, pivot);
    }
    if (pivot != dim - 1) {
      for (int r = 0; r < m; ++r) basis(r, pivot) = basis(r, dim - 1);
    }
    --dim;
    for (int c = 0; c < dim; ++c) {
      for (int prev = 0; prev < c; ++prev) {
        double dot = 0.0;
        for (int r = 0; r < m; ++r) dot += basis(r, c) * basis(r, prev);
        for (int r = 0; r < m; ++r) basis(r, c) -= dot * basis(r, prev);
      }
      double norm = 0.0;
      for (int r = 0; r < m; ++r) norm += basis(r, c) * basis(r, c);
      norm = std::sqrt(norm);
      if (norm <= 1e-12) {
        return Status::NumericalError(
            "elementary DPP sampler: basis collapsed");
      }
      for (int r = 0; r < m; ++r) basis(r, c) /= norm;
    }
  }
  std::sort(items.begin(), items.end());
  return items;
}

Dpp::Dpp(Matrix kernel, EigenDecomposition eig, double log_z)
    : kernel_(std::move(kernel)), eig_(std::move(eig)), log_z_(log_z) {}

Dpp::Dpp(LowRankFactor factor, EigenDecomposition dual_eig, double log_z)
    : factor_(std::move(factor)),
      dual_(true),
      eig_(std::move(dual_eig)),
      log_z_(log_z) {}

Dpp::Dpp(LowRankFactor factor, Vector fd_diag, Vector spectrum, double log_z)
    : factor_(std::move(factor)),
      fd_diag_(std::move(fd_diag)),
      factor_diag_(true),
      log_z_(log_z) {
  eig_.eigenvalues = std::move(spectrum);
}

Result<Dpp> Dpp::Create(Matrix kernel) {
  if (kernel.rows() != kernel.cols()) {
    return Status::InvalidArgument(
        StrFormat("DPP kernel must be square, got %dx%d", kernel.rows(),
                  kernel.cols()));
  }
  if (!kernel.AllFinite()) {
    return Status::NumericalError("DPP kernel contains non-finite values");
  }
  LKP_ASSIGN_OR_RETURN(EigenDecomposition eig, SymmetricEigen(kernel));
  // Shared PSD-boundary handling (see ClampSpectrumToPsd): eigenvalues
  // within working precision of zero (either sign) are clamped to exactly
  // zero, genuinely indefinite kernels are rejected.
  LKP_RETURN_IF_ERROR(
      ClampSpectrumToPsd(&eig.eigenvalues, kernel.rows()));
  double log_z = 0.0;
  for (int i = 0; i < eig.eigenvalues.size(); ++i) {
    log_z += std::log1p(eig.eigenvalues[i]);
  }
  return Dpp(std::move(kernel), std::move(eig), log_z);
}

Result<Dpp> Dpp::CreateDual(LowRankFactor factor) {
  if (factor.ground_size() < 1) {
    return Status::InvalidArgument("dual DPP requires a non-empty factor");
  }
  // EigenDual applies the same clamp as Create, at primal ground size.
  LKP_ASSIGN_OR_RETURN(DualEigen dual, factor.EigenDual());
  // The (n - d) eigenvalues of L missing from the dual spectrum are
  // exactly zero and contribute log1p(0) = 0 to log det(L + I).
  double log_z = 0.0;
  for (int i = 0; i < dual.eigenvalues.size(); ++i) {
    log_z += std::log1p(dual.eigenvalues[i]);
  }
  EigenDecomposition eig;
  eig.eigenvalues = std::move(dual.eigenvalues);
  eig.eigenvectors = std::move(dual.dual_vectors);
  return Dpp(std::move(factor), std::move(eig), log_z);
}

Result<Dpp> Dpp::CreateFactorDiag(LowRankFactor factor, Vector diag) {
  const int n = factor.ground_size();
  if (n < 1) {
    return Status::InvalidArgument(
        "factor-diag DPP requires a non-empty factor");
  }
  if (diag.size() != n) {
    return Status::InvalidArgument(
        StrFormat("factor-diag DPP diagonal length %d != ground size %d",
                  diag.size(), n));
  }
  if (!diag.AllFinite()) {
    return Status::NumericalError(
        "factor-diag DPP diagonal contains non-finite values");
  }
  // The full n-length spectrum of W W^T + D, then the exact PSD-boundary
  // policy Create applies — the same clamp at the same ground size, so
  // rank detection is representation-independent.
  LKP_ASSIGN_OR_RETURN(Vector spectrum, FactorDiagSpectrum(factor.v(), diag));
  LKP_RETURN_IF_ERROR(ClampSpectrumToPsd(&spectrum, n));
  double log_z = 0.0;
  for (int i = 0; i < spectrum.size(); ++i) log_z += std::log1p(spectrum[i]);
  return Dpp(std::move(factor), std::move(diag), std::move(spectrum), log_z);
}

Result<double> Dpp::LogProb(const std::vector<int>& subset) const {
  std::vector<int> sorted = subset;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] < 0 || sorted[i] >= ground_size()) {
      return Status::OutOfRange(
          StrFormat("subset index %d outside ground set of size %d",
                    sorted[i], ground_size()));
    }
    if (i > 0 && sorted[i] == sorted[i - 1]) {
      return Status::InvalidArgument(
          StrFormat("duplicate index %d in subset", sorted[i]));
    }
  }
  if (sorted.empty()) return -log_z_;  // det of empty matrix is 1.
  // det(L_S) from the kernel submatrix, or from the Gram of the factor's
  // rows (plus the added diagonal in factor-diag mode) — the same
  // matrix, assembled without materializing L.
  Matrix sub = dual_ || factor_diag_ ? factor_.SubsetGram(sorted)
                                     : kernel_.PrincipalSubmatrix(sorted);
  if (factor_diag_) {
    for (size_t i = 0; i < sorted.size(); ++i) {
      sub(static_cast<int>(i), static_cast<int>(i)) += fd_diag_[sorted[i]];
    }
  }
  LKP_ASSIGN_OR_RETURN(double det, Determinant(sub));
  if (det <= 0.0) return -std::numeric_limits<double>::infinity();
  return std::log(det) - log_z_;
}

Result<double> Dpp::Prob(const std::vector<int>& subset) const {
  LKP_ASSIGN_OR_RETURN(double lp, LogProb(subset));
  return std::exp(lp);
}

// Per-column marginal weight lambda / (1 + lambda) — zero exactly on
// zero eigenvalues, in either representation.
static Vector DppMarginalWeights(const Vector& lambda) {
  Vector w(lambda.size());
  for (int c = 0; c < lambda.size(); ++c) {
    w[c] = lambda[c] / (1.0 + lambda[c]);
  }
  return w;
}

Matrix Dpp::MarginalKernel() const {
  const int m = ground_size();
  const Vector w = DppMarginalWeights(eig_.eigenvalues);
  if (factor_diag_) {
    Result<Matrix> out = FactorDiagWeightedOuter(
        factor_.v(), fd_diag_, eig_.eigenvalues, w);
    LKP_CHECK(out.ok()) << out.status().ToString();
    return std::move(out).ValueOrDie();
  }
  if (dual_) {
    return WeightedLiftedOuter(factor_, eig_.eigenvalues,
                               eig_.eigenvectors, w);
  }
  Matrix scaled(m, m);
  for (int c = 0; c < m; ++c) {
    for (int r = 0; r < m; ++r) {
      scaled(r, c) = eig_.eigenvectors(r, c) * w[c];
    }
  }
  Matrix out = MatMulTransB(scaled, eig_.eigenvectors);
  out.Symmetrize();
  return out;
}

Vector Dpp::MarginalDiagonal() const {
  const Vector w = DppMarginalWeights(eig_.eigenvalues);
  if (factor_diag_) {
    Result<Vector> out = FactorDiagWeightedDiagonal(
        factor_.v(), fd_diag_, eig_.eigenvalues, w);
    LKP_CHECK(out.ok()) << out.status().ToString();
    return std::move(out).ValueOrDie();
  }
  if (dual_) {
    return WeightedLiftedDiagonal(factor_, eig_.eigenvalues,
                                  eig_.eigenvectors, w);
  }
  return WeightedEigenvectorDiagonal(eig_.eigenvectors, w);
}

double Dpp::ExpectedSize() const {
  double s = 0.0;
  for (int i = 0; i < eig_.eigenvalues.size(); ++i) {
    s += eig_.eigenvalues[i] / (1.0 + eig_.eigenvalues[i]);
  }
  return s;
}

Result<std::vector<int>> Dpp::Sample(Rng* rng) const {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  const int m = ground_size();
  if (dual_) {
    const Vector& lambda = eig_.eigenvalues;
    const int d = lambda.size();
    // Draw-for-draw compatible with the primal sampler, which spends one
    // (never-selecting) Uniform() on each of L's zero eigenvalues. The
    // ascending spectra line up as
    //   primal: (m - r) zeros, then the r positives;
    //   dual:   (d - r) zeros, then the same r positives;
    // so a thin factor (d < m) burns m - d extra draws to mirror the
    // primal's leading zeros, and a wide factor (d > m) skips its d - m
    // leading structural zeros (C cannot have rank above m) without
    // consuming anything. Either way exactly m draws are consumed and a
    // fixed seed yields the same subset in either representation.
    for (int i = 0; i < m - d; ++i) {
      if (rng->Uniform() < 0.0) {
        return Status::Internal("zero eigenvalue selected in dual sampler");
      }
    }
    const int skip = std::max(0, d - m);
    for (int j = 0; j < skip; ++j) {
      if (lambda[j] != 0.0) {
        // Rank above the ground size is impossible; a positive here means
        // the clamp failed to absorb dual-eigensolve noise.
        return Status::Internal(
            "wide dual factor carries more positive eigenvalues than the "
            "ground set admits");
      }
    }
    std::vector<int> selected;
    for (int j = skip; j < d; ++j) {
      const double lam = lambda[j];
      if (rng->Uniform() < lam / (1.0 + lam)) selected.push_back(j);
    }
    if (selected.empty()) return std::vector<int>{};
    Matrix basis = factor_.LiftEigenvectors(eig_.eigenvalues,
                                            eig_.eigenvectors, selected);
    return SampleElementaryDpp(std::move(basis), rng);
  }
  // Primal and factor-diag modes share the selection walk bit for bit:
  // both hold the full n-length spectrum, so a fixed seed selects the
  // same eigenvector indices (given equal spectra).
  std::vector<int> selected;
  for (int i = 0; i < m; ++i) {
    const double lam = eig_.eigenvalues[i];
    if (rng->Uniform() < lam / (1.0 + lam)) selected.push_back(i);
  }
  if (selected.empty()) return std::vector<int>{};
  if (factor_diag_) {
    // Materialize exactly the selected eigenvectors of W W^T + D —
    // n x |selected|, never n x n.
    LKP_ASSIGN_OR_RETURN(
        Matrix basis,
        FactorDiagEigenvectors(factor_.v(), fd_diag_, eig_.eigenvalues,
                               selected));
    return SampleElementaryDpp(std::move(basis), rng);
  }
  Matrix basis(m, static_cast<int>(selected.size()));
  for (size_t c = 0; c < selected.size(); ++c) {
    basis.SetCol(static_cast<int>(c),
                 eig_.eigenvectors.Col(selected[c]));
  }
  return SampleElementaryDpp(std::move(basis), rng);
}

}  // namespace lkpdpp
