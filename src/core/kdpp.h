// The tailored k-DPP distribution over a small ground set.
//
// Given a PSD kernel L over a ground set of m = k+n items, a k-DPP assigns
// to every subset S of cardinality exactly k the probability
//   P(S) = det(L_S) / e_k(lambda(L))            (paper Eq. 4, 6)
// where e_k is the k-th elementary symmetric polynomial of the kernel's
// eigenvalues. This file provides exact probabilities, exhaustive
// enumeration (the ground sets in LkP are small by construction), exact
// sampling (Kulesza & Taskar, Alg. 8), the k-DPP marginal kernel, and the
// gradient of the normalizer needed by the LkP criterion.

#ifndef LKPDPP_CORE_KDPP_H_
#define LKPDPP_CORE_KDPP_H_

#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"

namespace lkpdpp {

/// An exact k-DPP over a ground set {0, .., m-1} with PSD kernel L.
class KDpp {
 public:
  /// Builds the distribution. Fails if the kernel is not square/symmetric,
  /// if k is outside [1, m], if e_k underflows to zero (kernel rank < k,
  /// in which case no cardinality-k subset has positive probability), or
  /// if any intermediate elementary symmetric polynomial overflows double
  /// range (the sampler's ESP-table walk would be corrupted).
  /// Slightly negative eigenvalues from round-off are clamped to zero.
  static Result<KDpp> Create(Matrix kernel, int k);

  int k() const { return k_; }
  int ground_size() const { return kernel_.rows(); }

  const Matrix& kernel() const { return kernel_; }
  const Vector& eigenvalues() const { return eig_.eigenvalues; }
  const Matrix& eigenvectors() const { return eig_.eigenvectors; }

  /// log Z_k = log e_k(lambda).
  double LogNormalizer() const { return log_zk_; }

  /// log P(S) for a subset of cardinality k. Fails for wrong cardinality,
  /// duplicate or out-of-range indices. Singular det(L_S) yields -inf.
  Result<double> LogProb(const std::vector<int>& subset) const;

  /// P(S) = exp(LogProb).
  Result<double> Prob(const std::vector<int>& subset) const;

  /// Enumerates every cardinality-k subset with its probability,
  /// in lexicographic subset order. Fails if C(m, k) exceeds `max_subsets`
  /// (guards accidental exponential blowups).
  Result<std::vector<std::pair<std::vector<int>, double>>>
  EnumerateProbabilities(long max_subsets = 1000000) const;

  /// Exact sample of a cardinality-k subset (ascending indices).
  /// Two-phase algorithm: select an elementary DPP (eigenvector subset of
  /// size k) by walking the ESP table, then sample the elementary DPP by
  /// iterative projection. The ESP table is computed once at Create time
  /// and shared by all Sample calls, so repeated draws skip the O(m*k)
  /// table rebuild. Thread-safe: concurrent calls with distinct Rngs only
  /// read shared state.
  Result<std::vector<int>> Sample(Rng* rng) const;

  /// Marginal kernel M with M_ii = P(i in S); in general
  ///   M = sum_n [lambda_n * e_{k-1}(lambda \ n) / e_k] u_n u_n^T,
  /// whose trace is exactly k. The per-column weights are assembled in
  /// log domain, so wide eigenvalue dynamic ranges cannot overflow the
  /// exclusion polynomials into inf/NaN entries.
  Matrix MarginalKernel() const;

  /// Gradient of the normalizer: d Z_k / d L
  ///   = sum_n e_{k-1}(lambda \ n) u_n u_n^T.
  /// Unnormalized: entries overflow to inf where the gradient itself
  /// exceeds double range; prefer LogNormalizerGradient for training.
  Matrix NormalizerGradient() const;

  /// Gradient of log Z_k w.r.t. L (NormalizerGradient / Z_k), computed in
  /// log domain so it stays finite whenever Z_k does.
  Matrix LogNormalizerGradient() const;

 private:
  KDpp(Matrix kernel, int k, EigenDecomposition eig, double log_zk,
       Matrix esp_table);

  Matrix kernel_;
  int k_;
  EigenDecomposition eig_;
  double log_zk_;
  Matrix esp_table_;  // Full Algorithm-1 table, reused by every Sample;
                      // its last column holds e_0..e_k over all
                      // eigenvalues (e_k is the normalizer).
};

/// Number of cardinality-k subsets of an m-set, as a double (exact for the
/// small m used here).
double BinomialCoefficient(int m, int k);

/// Iterates lexicographic k-combinations of {0..m-1}. Returns false when
/// `idx` was the last combination. `idx` must hold a valid combination.
bool NextCombination(std::vector<int>* idx, int m);

}  // namespace lkpdpp

#endif  // LKPDPP_CORE_KDPP_H_
