// The tailored k-DPP distribution over a small ground set.
//
// Given a PSD kernel L over a ground set of m = k+n items, a k-DPP assigns
// to every subset S of cardinality exactly k the probability
//   P(S) = det(L_S) / e_k(lambda(L))            (paper Eq. 4, 6)
// where e_k is the k-th elementary symmetric polynomial of the kernel's
// eigenvalues. This file provides exact probabilities, exhaustive
// enumeration (the ground sets in LkP are small by construction), exact
// sampling (Kulesza & Taskar, Alg. 8), the k-DPP marginal kernel, and the
// gradient of the normalizer needed by the LkP criterion.

#ifndef LKPDPP_CORE_KDPP_H_
#define LKPDPP_CORE_KDPP_H_

#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "linalg/eigen.h"
#include "linalg/low_rank.h"
#include "linalg/matrix.h"

namespace lkpdpp {

/// An exact k-DPP over a ground set {0, .., m-1} with PSD kernel L.
///
/// Three representations share this type. The primal one (Create)
/// eigendecomposes the m x m kernel. The dual one (CreateDual) takes a
/// rank-d factor V with L = V V^T and works entirely through the d x d
/// dual kernel C = V^T V (Gartrell et al. 2016): construction costs
/// O(m d^2 + d^3) instead of O(m^3), each Sample costs O(m d k), and the
/// m x m kernel is never materialized. The factor-diag one
/// (CreateFactorDiag) takes L = W W^T + Diag(diag) — the blended
/// serving kernel after quality conditioning — computes the full
/// m-length spectrum by inertia bisection (linalg/factor_diag.h), and
/// materializes only the k eigenvectors each draw selects; memory stays
/// O(m d), still never m x m. All define the same distribution; the
/// dual sampler consumes its Rng in the exact draw order of the primal
/// sampler, and the factor-diag sampler walks the same full spectrum the
/// primal walks, so a fixed seed yields the same subset stream in any
/// representation.
class KDpp {
 public:
  /// Builds the distribution. Fails if the kernel is not square/symmetric,
  /// if k is outside [1, m], if e_k underflows to zero (kernel rank < k,
  /// in which case no cardinality-k subset has positive probability), or
  /// if any intermediate elementary symmetric polynomial overflows double
  /// range (the sampler's ESP-table walk would be corrupted).
  /// Slightly negative eigenvalues from round-off are clamped to zero.
  static Result<KDpp> Create(Matrix kernel, int k);

  /// Builds the k-DPP with kernel L = V V^T from its factor, without
  /// materializing L. Applies the same spectrum checks as Create — PSD
  /// clamp at primal ground size (rank detection is representation-
  /// independent), rank >= k, ESP-table overflow rejection.
  static Result<KDpp> CreateDual(LowRankFactor factor, int k);

  /// Builds the k-DPP with kernel L = W W^T + Diag(diag) from the factor
  /// and the added diagonal, without materializing L. Applies the same
  /// spectrum checks as Create — PSD clamp at primal ground size, then
  /// the shared ESP finishing, so rank-deficiency (e_k = 0) and ESP
  /// overflow are rejected with the identical primal wording.
  static Result<KDpp> CreateFactorDiag(LowRankFactor factor, Vector diag,
                                       int k);

  int k() const { return k_; }
  int ground_size() const {
    return kernel_.rows() > 0 ? kernel_.rows() : factor_.ground_size();
  }
  bool is_dual() const { return dual_; }
  bool is_factor_diag() const { return factor_diag_; }

  /// Primal-mode kernel. Empty in dual/factor-diag modes; use factor()
  /// there.
  const Matrix& kernel() const { return kernel_; }
  /// Dual-mode factor V / factor-diag-mode factor W. Empty (0 x 0 v())
  /// in primal mode.
  const LowRankFactor& factor() const { return factor_; }
  /// Factor-diag mode: the added diagonal D. Empty otherwise.
  const Vector& added_diagonal() const { return fd_diag_; }

  /// Primal and factor-diag modes: all m eigenvalues of L, ascending.
  /// Dual mode: the d eigenvalues of C = V^T V, ascending — L's spectrum
  /// is these plus (m - d) implicit zeros, which no ESP or sampler ever
  /// needs.
  const Vector& eigenvalues() const { return eig_.eigenvalues; }
  /// Primal mode: eigenvectors of L. Dual mode: eigenvectors of C (d x d
  /// dual vectors; lift via factor().LiftEigenvectors to reach L-space).
  /// Factor-diag mode: empty — eigenvectors are materialized on demand
  /// (linalg/factor_diag.h), never stored.
  const Matrix& eigenvectors() const { return eig_.eigenvectors; }

  /// log Z_k = log e_k(lambda).
  double LogNormalizer() const { return log_zk_; }

  /// log P(S) for a subset of cardinality k. Fails for wrong cardinality,
  /// duplicate or out-of-range indices. Singular det(L_S) yields -inf.
  Result<double> LogProb(const std::vector<int>& subset) const;

  /// P(S) = exp(LogProb).
  Result<double> Prob(const std::vector<int>& subset) const;

  /// Enumerates every cardinality-k subset with its probability,
  /// in lexicographic subset order. Fails if C(m, k) exceeds `max_subsets`
  /// (guards accidental exponential blowups).
  Result<std::vector<std::pair<std::vector<int>, double>>>
  EnumerateProbabilities(long max_subsets = 1000000) const;

  /// Exact sample of a cardinality-k subset (ascending indices).
  /// Two-phase algorithm: select an elementary DPP (eigenvector subset of
  /// size k) by walking the ESP table, then sample the elementary DPP by
  /// iterative projection. The ESP table is computed once at Create time
  /// and shared by all Sample calls, so repeated draws skip the O(m*k)
  /// table rebuild. Thread-safe: concurrent calls with distinct Rngs only
  /// read shared state.
  Result<std::vector<int>> Sample(Rng* rng) const;

  /// Marginal kernel M with M_ii = P(i in S); in general
  ///   M = sum_n [lambda_n * e_{k-1}(lambda \ n) / e_k] u_n u_n^T,
  /// whose trace is exactly k. The per-column weights are assembled in
  /// log domain, so wide eigenvalue dynamic ranges cannot overflow the
  /// exclusion polynomials into inf/NaN entries. Dual mode assembles the
  /// sum from lifted eigenvectors at O(m^2 r); zero eigenvalues carry
  /// zero weight in either representation, so the (m - d) implicit zeros
  /// contribute nothing.
  Matrix MarginalKernel() const;

  /// diag(M) without materializing M: P(i in S) for every item. O(m^2)
  /// primal, O(m d r) dual.
  Vector MarginalDiagonal() const;

  /// Gradient of the normalizer: d Z_k / d L
  ///   = sum_n e_{k-1}(lambda \ n) u_n u_n^T.
  /// Unnormalized: entries overflow to inf where the gradient itself
  /// exceeds double range; prefer LogNormalizerGradient for training.
  /// Primal mode only (LKP_CHECK): the gradient has components along
  /// L's null-space eigenvectors, which the dual factor cannot
  /// represent — training paths construct primal KDpps.
  Matrix NormalizerGradient() const;

  /// Gradient of log Z_k w.r.t. L (NormalizerGradient / Z_k), computed in
  /// log domain so it stays finite whenever Z_k does. Primal mode only
  /// (LKP_CHECK), see NormalizerGradient.
  Matrix LogNormalizerGradient() const;

 private:
  KDpp(Matrix kernel, int k, EigenDecomposition eig, double log_zk,
       Matrix esp_table);
  KDpp(LowRankFactor factor, int k, EigenDecomposition dual_eig,
       double log_zk, Matrix esp_table);
  KDpp(LowRankFactor factor, Vector fd_diag, int k, Vector spectrum,
       double log_zk, Matrix esp_table);

  /// Per-spectrum-column marginal weight lambda_c e_{k-1}(lambda \ c)/Z_k.
  Vector MarginalWeights() const;

  Matrix kernel_;         // Primal mode only.
  LowRankFactor factor_;  // Dual and factor-diag modes.
  Vector fd_diag_;        // Factor-diag mode only: the added diagonal.
  bool dual_ = false;
  bool factor_diag_ = false;
  int k_;
  // Primal: eigenpairs of L. Dual: eigenpairs of C = V^T V (d x d).
  EigenDecomposition eig_;
  double log_zk_;
  Matrix esp_table_;  // Full Algorithm-1 table over eigenvalues() (m+1
                      // columns primal, d+1 dual), reused by every
                      // Sample; its last column holds e_0..e_k (e_k is
                      // the normalizer, identical either way because
                      // zero eigenvalues leave ESPs unchanged).
};

/// Number of cardinality-k subsets of an m-set, as a double (exact for the
/// small m used here).
double BinomialCoefficient(int m, int k);

/// Iterates lexicographic k-combinations of {0..m-1}. Returns false when
/// `idx` was the last combination. `idx` must hold a valid combination.
bool NextCombination(std::vector<int>* idx, int m);

}  // namespace lkpdpp

#endif  // LKPDPP_CORE_KDPP_H_
