// Elementary symmetric polynomials (ESP) over kernel eigenvalues.
//
// The k-DPP normalization constant is Z_k = e_k(lambda_1..lambda_m)
// (Eq. 6 of the paper), computed by the O(m*k) recursion of the paper's
// Algorithm 1. The gradient of Z_k w.r.t. the kernel additionally needs
// the "exclusion" polynomials e_{k-1}(lambda with lambda_i removed),
// since d e_k / d lambda_i = e_{k-1}(lambda \ i).

#ifndef LKPDPP_CORE_ESP_H_
#define LKPDPP_CORE_ESP_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace lkpdpp {

/// Computes e_k(values) by the Algorithm-1 recursion:
///   e_l^m = e_l^{m-1} + lambda_m * e_{l-1}^{m-1}.
/// Requires 0 <= k <= values.size(); e_0 = 1 by convention.
double ElementarySymmetric(const Vector& values, int k);

/// All of e_0 .. e_kmax over `values` in one pass; result has size kmax+1.
/// Requires 0 <= kmax <= values.size().
Vector AllElementarySymmetric(const Vector& values, int kmax);

/// Full Algorithm-1 DP table: entry (l, m) holds e_l over the first m
/// values, for l in [0, k], m in [0, size]. Row 0 is all ones. Used by the
/// k-DPP sampler, which walks the table backwards.
Matrix EspTable(const Vector& values, int k);

/// Exclusion polynomials: out[i] = e_{degree}(values with entry i removed).
/// This equals the partial derivative d e_{degree+1} / d lambda_i.
///
/// Computed by re-running the recursion per excluded index, O(m^2 k),
/// which is exact and division-free (the classic "divide by the root"
/// shortcut is numerically unstable when eigenvalues are near zero).
/// Requires 0 <= degree <= values.size() - 1.
Vector ExclusionEsp(const Vector& values, int degree);

/// Log-domain exclusion polynomials for non-negative `values`:
///   out[i] = log e_{degree}(values with entry i removed),
/// with -inf denoting an exactly-zero polynomial. Runs the Algorithm-1
/// recursion in log space (log-sum-exp updates), so it cannot overflow
/// even when the raw polynomials exceed double range — the k-DPP marginal
/// kernel and normalizer gradients divide these by Z_k, and the ratios
/// are representable even when numerator and denominator are not.
/// Requires 0 <= degree <= values.size() - 1 and values >= 0 (kernel
/// eigenvalues are clamped non-negative upstream).
Vector LogExclusionEsp(const Vector& values, int degree);

/// Brute-force ESP by subset enumeration; exponential, test-only reference.
double ElementarySymmetricBruteForce(const Vector& values, int k);

}  // namespace lkpdpp

#endif  // LKPDPP_CORE_ESP_H_
