// Baseline ranking criteria: BCE, BPR, SetRank, Set2SetRank.
//
// All four operate on the same k+n scored ground sets as LkP so that the
// number and content of training instances is identical across criteria
// (the paper's fair-comparison setup, Section III-B4).
//
//   BCE       pointwise binary cross-entropy on each item [He et al. 17].
//   BPR       pairwise log-sigmoid over all (target, negative) pairs
//             [Rendle et al. 12].
//   SetRank   setwise permutation probability: each target should beat
//             the whole negative set, a Plackett-Luce style softmax
//             [Wang et al. 20].
//   S2SRank   Set2SetRank: item-to-item comparisons across the sets plus
//             a set-to-set distance term comparing a soft-min over
//             targets with a soft-max over negatives [Chen et al. 21].

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/string_util.h"
#include "core/criterion.h"

namespace lkpdpp {

namespace {

// log(1 + exp(x)) without overflow.
double Softplus(double x) {
  if (x > 30.0) return x;
  if (x < -30.0) return 0.0;
  return std::log1p(std::exp(x));
}

double Sigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

Status ValidateInput(const CriterionInput& in) {
  const int m = in.scores.size();
  if (in.num_pos < 1 || in.num_pos >= m) {
    return Status::InvalidArgument(
        StrFormat("num_pos=%d must lie in [1, %d)", in.num_pos, m));
  }
  if (!in.scores.AllFinite()) {
    return Status::NumericalError("non-finite scores");
  }
  return Status::OK();
}

class BceCriterion final : public RankingCriterion {
 public:
  std::string name() const override { return "BCE"; }

  Result<CriterionOutput> Evaluate(const CriterionInput& in) const override {
    LKP_RETURN_IF_ERROR(ValidateInput(in));
    const int m = in.scores.size();
    CriterionOutput out;
    out.dscore = Vector(m);
    for (int i = 0; i < m; ++i) {
      const double y = i < in.num_pos ? 1.0 : 0.0;
      // loss_i = softplus(s) - y*s; gradient sigmoid(s) - y.
      out.loss += Softplus(in.scores[i]) - y * in.scores[i];
      out.dscore[i] = Sigmoid(in.scores[i]) - y;
    }
    return out;
  }
};

class BprCriterion final : public RankingCriterion {
 public:
  std::string name() const override { return "BPR"; }

  Result<CriterionOutput> Evaluate(const CriterionInput& in) const override {
    LKP_RETURN_IF_ERROR(ValidateInput(in));
    const int m = in.scores.size();
    const int k = in.num_pos;
    CriterionOutput out;
    out.dscore = Vector(m);
    // Average over all (i, j) pairs so the loss scale is insensitive to
    // k and n.
    const double w = 1.0 / (static_cast<double>(k) * (m - k));
    for (int i = 0; i < k; ++i) {
      for (int j = k; j < m; ++j) {
        const double diff = in.scores[i] - in.scores[j];
        out.loss += w * Softplus(-diff);
        const double g = -w * Sigmoid(-diff);
        out.dscore[i] += g;
        out.dscore[j] -= g;
      }
    }
    return out;
  }
};

class SetRankCriterion final : public RankingCriterion {
 public:
  std::string name() const override { return "SetRank"; }

  Result<CriterionOutput> Evaluate(const CriterionInput& in) const override {
    LKP_RETURN_IF_ERROR(ValidateInput(in));
    const int m = in.scores.size();
    const int k = in.num_pos;
    CriterionOutput out;
    out.dscore = Vector(m);
    const double w = 1.0 / k;
    for (int i = 0; i < k; ++i) {
      // loss_i = -log P(i ranks first among {i} U negatives)
      //        = logsumexp(s_i, s_neg) - s_i.
      double max_s = in.scores[i];
      for (int j = k; j < m; ++j) max_s = std::max(max_s, in.scores[j]);
      double z = std::exp(in.scores[i] - max_s);
      for (int j = k; j < m; ++j) z += std::exp(in.scores[j] - max_s);
      const double lse = max_s + std::log(z);
      out.loss += w * (lse - in.scores[i]);
      const double p_i = std::exp(in.scores[i] - lse);
      out.dscore[i] += w * (p_i - 1.0);
      for (int j = k; j < m; ++j) {
        out.dscore[j] += w * std::exp(in.scores[j] - lse);
      }
    }
    return out;
  }
};

class Set2SetRankCriterion final : public RankingCriterion {
 public:
  explicit Set2SetRankCriterion(double set_level_weight)
      : set_level_weight_(set_level_weight) {}

  std::string name() const override { return "S2SRank"; }

  Result<CriterionOutput> Evaluate(const CriterionInput& in) const override {
    LKP_RETURN_IF_ERROR(ValidateInput(in));
    const int m = in.scores.size();
    const int k = in.num_pos;
    CriterionOutput out;
    out.dscore = Vector(m);

    // (1) Item-to-item comparisons across the two sets.
    const double w = 1.0 / (static_cast<double>(k) * (m - k));
    for (int i = 0; i < k; ++i) {
      for (int j = k; j < m; ++j) {
        const double diff = in.scores[i] - in.scores[j];
        out.loss += w * Softplus(-diff);
        const double g = -w * Sigmoid(-diff);
        out.dscore[i] += g;
        out.dscore[j] -= g;
      }
    }

    // (2) Set-to-set distance: the weakest target should still beat the
    // strongest negative. Soft-min / soft-max keep it differentiable.
    double lse_neg_max = in.scores[k];
    for (int j = k; j < m; ++j) lse_neg_max = std::max(lse_neg_max,
                                                       in.scores[j]);
    double zneg = 0.0;
    for (int j = k; j < m; ++j) zneg += std::exp(in.scores[j] - lse_neg_max);
    const double softmax_neg = lse_neg_max + std::log(zneg);

    double lse_pos_max = -in.scores[0];
    for (int i = 0; i < k; ++i) lse_pos_max = std::max(lse_pos_max,
                                                       -in.scores[i]);
    double zpos = 0.0;
    for (int i = 0; i < k; ++i) zpos += std::exp(-in.scores[i] - lse_pos_max);
    const double softmin_pos = -(lse_pos_max + std::log(zpos));

    const double margin = softmin_pos - softmax_neg;
    out.loss += set_level_weight_ * Softplus(-margin);
    const double gm = -set_level_weight_ * Sigmoid(-margin);
    // d softmin_pos / ds_i = exp(-s_i - lse_pos_max) / zpos.
    for (int i = 0; i < k; ++i) {
      out.dscore[i] += gm * std::exp(-in.scores[i] - lse_pos_max) / zpos;
    }
    // d softmax_neg / ds_j = exp(s_j - lse_neg_max) / zneg.
    for (int j = k; j < m; ++j) {
      out.dscore[j] -= gm * std::exp(in.scores[j] - lse_neg_max) / zneg;
    }
    return out;
  }

 private:
  double set_level_weight_;
};

}  // namespace

std::unique_ptr<RankingCriterion> MakeBceCriterion() {
  return std::make_unique<BceCriterion>();
}
std::unique_ptr<RankingCriterion> MakeBprCriterion() {
  return std::make_unique<BprCriterion>();
}
std::unique_ptr<RankingCriterion> MakeSetRankCriterion() {
  return std::make_unique<SetRankCriterion>();
}
std::unique_ptr<RankingCriterion> MakeSet2SetRankCriterion(
    double set_level_weight) {
  return std::make_unique<Set2SetRankCriterion>(set_level_weight);
}

}  // namespace lkpdpp
