#include "core/lkp.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "core/kdpp.h"
#include "linalg/cholesky.h"

namespace lkpdpp {

namespace {

// Cholesky with escalating jitter: DPP submatrices are PSD by
// construction but can be numerically semi-definite (low-rank diversity
// kernels); a vanishing diagonal boost restores factorability without
// visibly perturbing the objective.
Result<Cholesky> RobustCholesky(const Matrix& a, double jitter) {
  double j = jitter;
  const double scale = std::max(1.0, a.Trace() / std::max(1, a.rows()));
  for (int attempt = 0; attempt < 4; ++attempt) {
    Result<Cholesky> chol = Cholesky::Compute(a, j);
    if (chol.ok()) return chol;
    j = std::max(j * 100.0, 1e-10 * scale);
  }
  return Cholesky::Compute(a, 1e-4 * scale);
}

// Adds the inverse of the principal submatrix indexed by `idx` into the
// full-size gradient accumulator with the given sign.
void AccumulatePaddedInverse(const Matrix& inv, const std::vector<int>& idx,
                             double sign, Matrix* acc) {
  const int s = static_cast<int>(idx.size());
  for (int i = 0; i < s; ++i) {
    for (int j = 0; j < s; ++j) {
      (*acc)(idx[i], idx[j]) += sign * inv(i, j);
    }
  }
}

}  // namespace

const char* LkpModeName(LkpMode mode) {
  switch (mode) {
    case LkpMode::kPositiveOnly:
      return "PS";
    case LkpMode::kNegativeAndPositive:
      return "NPS";
  }
  return "?";
}

std::string LkpCriterion::name() const {
  return StrFormat("LkP-%s(%s)", LkpModeName(config_.mode),
                   QualityTransformName(config_.quality));
}

Result<CriterionOutput> LkpCriterion::Evaluate(
    const CriterionInput& in) const {
  const int m = in.scores.size();
  const int k = in.num_pos;
  if (in.diversity == nullptr) {
    return Status::InvalidArgument("LkP requires a diversity kernel");
  }
  if (in.diversity->rows() != m || in.diversity->cols() != m) {
    return Status::InvalidArgument(
        StrFormat("diversity kernel is %dx%d but ground set has %d items",
                  in.diversity->rows(), in.diversity->cols(), m));
  }
  if (k < 1 || k >= m) {
    return Status::InvalidArgument(
        StrFormat("num_pos=%d must lie in [1, %d)", k, m));
  }
  const bool exclusion = config_.mode == LkpMode::kNegativeAndPositive;
  if (exclusion && m - k != k) {
    return Status::InvalidArgument(
        StrFormat("NPS requires n == k for the ranking interpretation "
                  "(got k=%d, n=%d)",
                  k, m - k));
  }
  if (!in.scores.AllFinite()) {
    return Status::NumericalError("non-finite scores passed to LkP");
  }

  const Vector q = ApplyQuality(in.scores, config_.quality);
  const Vector t = QualityLogDerivative(in.scores, config_.quality);
  const Matrix kernel = AssembleKernel(q, *in.diversity);

  // Tailored k-DPP over the ground set: eigenvalues feed Z_k (Eq. 6) and
  // eigenvectors feed its gradient. The normalize=false ablation drops
  // both (raw unnormalized determinants).
  double log_zk = 0.0;
  Matrix dlogz(m, m);
  if (config_.normalize) {
    LKP_ASSIGN_OR_RETURN(KDpp kdpp, KDpp::Create(kernel, k));
    log_zk = kdpp.LogNormalizer();
    dlogz = kdpp.LogNormalizerGradient();
  }

  std::vector<int> pos_idx(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) pos_idx[static_cast<size_t>(i)] = i;
  const Matrix l_pos = kernel.PrincipalSubmatrix(pos_idx);
  LKP_ASSIGN_OR_RETURN(Cholesky chol_pos,
                       RobustCholesky(l_pos, config_.jitter));
  const double logdet_pos = chol_pos.LogDet();
  const Matrix inv_pos = chol_pos.Inverse();

  // loss = -(log det(L_{S+}) - log Z_k)  [+ exclusion term below]
  double loss = -(logdet_pos - log_zk);
  // dloss/dL accumulator: +dlogZ from the normalizer, -Pad(L_{S+}^{-1}).
  Matrix g = dlogz;
  AccumulatePaddedInverse(inv_pos, pos_idx, -1.0, &g);

  if (exclusion) {
    std::vector<int> neg_idx(static_cast<size_t>(m - k));
    for (int i = k; i < m; ++i) neg_idx[static_cast<size_t>(i - k)] = i;
    const Matrix l_neg = kernel.PrincipalSubmatrix(neg_idx);
    LKP_ASSIGN_OR_RETURN(Cholesky chol_neg,
                         RobustCholesky(l_neg, config_.jitter));
    const double log_p_neg = chol_neg.LogDet() - log_zk;
    const double p_neg = std::exp(std::min(log_p_neg, 0.0));
    const double one_minus =
        std::max(1.0 - p_neg, config_.exclusion_floor);
    loss += -std::log(one_minus);
    // d(-log(1-P-))/dL = [P-/(1-P-)] * (Pad(L_{S-}^{-1}) - dlogZ).
    const double c = p_neg / one_minus;
    if (c > 0.0) {
      const Matrix inv_neg = chol_neg.Inverse();
      AccumulatePaddedInverse(inv_neg, neg_idx, c, &g);
      Matrix scaled_dlogz = dlogz;
      scaled_dlogz *= -c;
      g += scaled_dlogz;
    }
  }

  CriterionOutput out;
  out.loss = loss;
  out.dscore = Vector(m);
  // Chain rule into raw scores: dL_ij/ds_m = L_ij t_m (1[i=m] + 1[j=m]).
  for (int i = 0; i < m; ++i) {
    double s = 0.0;
    for (int j = 0; j < m; ++j) s += g(i, j) * kernel(i, j);
    out.dscore[i] = 2.0 * t[i] * s;
  }
  if (in.want_kernel_grad) {
    out.dkernel = Matrix(m, m);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < m; ++j) {
        out.dkernel(i, j) = g(i, j) * q[i] * q[j];
      }
    }
    // The diagonal of the diversity kernel is structurally 1 (unit-norm
    // rows / Gaussian kernel), so no gradient flows through it.
    for (int i = 0; i < m; ++i) out.dkernel(i, i) = 0.0;
  }
  if (!out.dscore.AllFinite()) {
    return Status::NumericalError("LkP produced non-finite gradients");
  }
  return out;
}

Result<double> LkpCriterion::TargetSubsetProbability(
    const Vector& scores, const Matrix& diversity, int num_pos) const {
  const Vector q = ApplyQuality(scores, config_.quality);
  const Matrix kernel = AssembleKernel(q, diversity);
  LKP_ASSIGN_OR_RETURN(KDpp kdpp, KDpp::Create(kernel, num_pos));
  std::vector<int> idx(static_cast<size_t>(num_pos));
  for (int i = 0; i < num_pos; ++i) idx[static_cast<size_t>(i)] = i;
  return kdpp.Prob(idx);
}

}  // namespace lkpdpp
