#include "linalg/cholesky.h"

#include <cmath>

#include "common/string_util.h"

namespace lkpdpp {

Result<Cholesky> Cholesky::Compute(const Matrix& a, double jitter) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument(
        StrFormat("Cholesky requires square matrix, got %dx%d", a.rows(),
                  a.cols()));
  }
  if (!a.IsSymmetric(1e-8 * std::max(1.0, a.MaxAbs()))) {
    return Status::InvalidArgument("Cholesky requires symmetric matrix");
  }
  const int n = a.rows();
  Matrix l(n, n);
  for (int j = 0; j < n; ++j) {
    double d = a(j, j) + jitter;
    for (int k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (!(d > 0.0) || !std::isfinite(d)) {
      return Status::NumericalError(
          StrFormat("matrix not positive definite at pivot %d (d=%.3e)", j,
                    d));
    }
    const double ljj = std::sqrt(d);
    l(j, j) = ljj;
    for (int i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (int k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / ljj;
    }
  }
  return Cholesky(std::move(l));
}

double Cholesky::LogDet() const {
  double s = 0.0;
  for (int i = 0; i < l_.rows(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

double Cholesky::Det() const { return std::exp(LogDet()); }

Vector Cholesky::Solve(const Vector& b) const {
  const int n = size();
  LKP_CHECK_EQ(b.size(), n);
  // Forward solve L y = b.
  Vector y(n);
  for (int i = 0; i < n; ++i) {
    double s = b[i];
    for (int k = 0; k < i; ++k) s -= l_(i, k) * y[k];
    y[i] = s / l_(i, i);
  }
  // Backward solve L^T x = y.
  Vector x(n);
  for (int i = n - 1; i >= 0; --i) {
    double s = y[i];
    for (int k = i + 1; k < n; ++k) s -= l_(k, i) * x[k];
    x[i] = s / l_(i, i);
  }
  return x;
}

Matrix Cholesky::Solve(const Matrix& b) const {
  LKP_CHECK_EQ(b.rows(), size());
  Matrix out(b.rows(), b.cols());
  for (int c = 0; c < b.cols(); ++c) {
    out.SetCol(c, Solve(b.Col(c)));
  }
  return out;
}

Matrix Cholesky::Inverse() const { return Solve(Matrix::Identity(size())); }

Result<double> LogDetSpd(const Matrix& a, double jitter) {
  LKP_ASSIGN_OR_RETURN(Cholesky chol, Cholesky::Compute(a, jitter));
  return chol.LogDet();
}

}  // namespace lkpdpp
