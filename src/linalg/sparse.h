// Compressed sparse row matrix for graph propagation.
//
// GCN backbones multiply the (symmetrically normalized) user-item
// adjacency against dense embedding matrices each layer; CSR keeps that
// O(nnz * d) instead of O((N+M)^2 * d).

#ifndef LKPDPP_LINALG_SPARSE_H_
#define LKPDPP_LINALG_SPARSE_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace lkpdpp {

/// Immutable CSR matrix of doubles.
class SparseMatrix {
 public:
  /// A coordinate-format entry used during construction.
  struct Triplet {
    int row;
    int col;
    double value;
  };

  /// Builds a CSR matrix from unordered triplets. Duplicate (row, col)
  /// entries are summed. Fails on out-of-range indices.
  static Result<SparseMatrix> FromTriplets(int rows, int cols,
                                           std::vector<Triplet> triplets);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int nnz() const { return static_cast<int>(values_.size()); }

  /// Sparse x dense product: (rows x cols) * (cols x d) -> (rows x d).
  Matrix Multiply(const Matrix& dense) const;

  /// Transposed product: A^T * dense, shape (cols x d).
  Matrix MultiplyTransposed(const Matrix& dense) const;

  /// Sparse x vector.
  Vector Multiply(const Vector& x) const;

  /// Row sums (useful for degree normalization).
  Vector RowSums() const;

  /// Densifies; intended for tests on tiny matrices.
  Matrix ToDense() const;

  const std::vector<int>& row_offsets() const { return row_offsets_; }
  const std::vector<int>& col_indices() const { return col_indices_; }
  const std::vector<double>& values() const { return values_; }

 private:
  SparseMatrix(int rows, int cols, std::vector<int> row_offsets,
               std::vector<int> col_indices, std::vector<double> values)
      : rows_(rows),
        cols_(cols),
        row_offsets_(std::move(row_offsets)),
        col_indices_(std::move(col_indices)),
        values_(std::move(values)) {}

  int rows_;
  int cols_;
  std::vector<int> row_offsets_;
  std::vector<int> col_indices_;
  std::vector<double> values_;
};

}  // namespace lkpdpp

#endif  // LKPDPP_LINALG_SPARSE_H_
