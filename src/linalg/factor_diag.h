// Exact spectral decomposition of factor-plus-diagonal kernels
// L = W·Wᵀ + Diag(d) without materializing the n x n operator.
//
// Blended serving kernels have exactly this shape after quality
// conditioning: Diag(q)(α·V·Vᵀ + (1-α)·I)Diag(q) = W·Wᵀ + D with
// W = √α·Diag(q)·V and D = (1-α)·Diag(q²). The diagonal D is full-rank
// and non-scalar, so the d x d dual-Gram trick (low_rank.h) cannot
// produce L's spectrum — but L is still a rank-d update of a diagonal
// matrix, and that structure admits an O(n d²) secular characterization:
//
//   det(L - t·I) = det(D - t·I) · det(H(t)),
//   H(t) = I_d + Wᵀ(D - t·I)⁻¹W          (the d x d capacitance matrix),
//
// and by Haynsworth inertia additivity the eigenvalue counting function
// is computable from H alone:
//
//   N(t) = #{λ(L) < t} = #{d_i < t} - n_neg(H(t)) - n_zero(H(t)).
//
// FactorDiagSpectrum bisects N(t) per eigenvalue inside Weyl interlacing
// brackets (d_(i) <= λ_i <= d_(i+d), top brackets capped by
// d_max + trace(WᵀW)), evaluating each count with an O(n d²/2)
// capacitance assembly plus an O(d³/6) LDLᵀ inertia (eigensolver
// fallback on pivot breakdown). Memory stays O(n d + d²); the n x n
// operator is never formed.
//
// Eigenvectors are materialized on demand, column by column: for a
// non-pole eigenvalue λ, the null vector y of H(λ) maps to the primal
// eigenvector u_i = (w_iᵀy)/(d_i - λ); eigenvalues pinned at a diagonal
// entry (poles, where some w-rows vanish or repeat) instead take the
// null space of the pole group's factor rows. Degenerate clusters are
// resolved jointly and the basis construction is deterministic and
// request-independent, so partial requests (sampling's selected
// elementary DPP, chunked marginal accumulation) hand out consistent
// orthonormal vectors across separate calls.

#ifndef LKPDPP_LINALG_FACTOR_DIAG_H_
#define LKPDPP_LINALG_FACTOR_DIAG_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace lkpdpp {

/// All n eigenvalues of W·Wᵀ + Diag(diag), ascending, computed by
/// per-eigenvalue inertia bisection at O(n² d² log(1/eps)) time and
/// O(n d + d²) memory — never materializing the n x n operator. `w` is
/// the n x d factor (d >= 1, n >= 1); `diag` has length n (any finite
/// symmetric diagonal; serving always passes a PSD one). Accuracy is
/// ~4·eps relative to the spectrum scale, the same ballpark as a dense
/// eigensolver. Fails with NumericalError on non-finite input, overflowed
/// factor mass, or inertia-evaluation breakdown.
Result<Vector> FactorDiagSpectrum(const Matrix& w, const Vector& diag);

/// The eigenvectors of W·Wᵀ + Diag(diag) for the requested spectrum
/// columns, as an n x |cols| near-orthonormal matrix with canonical
/// column signs (CanonicalizeColumnSigns). `eigenvalues` must be the
/// full ascending spectrum from FactorDiagSpectrum; `cols` indexes into
/// it, strictly ascending. Degenerate clusters (eigenvalues within
/// working precision of each other) are resolved jointly and
/// deterministically from the full spectrum, independent of which
/// columns are requested — two calls that split a cluster between them
/// return disjoint, mutually orthogonal members of one fixed cluster
/// basis. Cost: O(n d²) per distinct eigenvalue plus O(d³) per
/// capacitance eigensolve; degenerate pole clusters add O(|G|²·d) for a
/// pole group of |G| rows. Fails with NumericalError when a cluster
/// basis collapses (requested multiplicity not representable).
Result<Matrix> FactorDiagEigenvectors(const Matrix& w, const Vector& diag,
                                      const Vector& eigenvalues,
                                      const std::vector<int>& cols);

/// diag(Σ_c weights[c]·u_c·u_cᵀ) over the eigenvectors of
/// W·Wᵀ + Diag(diag): out[i] = Σ_c weights[c]·u_c(i)². Eigenvectors are
/// materialized in bounded column chunks (never n x n at once);
/// zero-weight columns are skipped. The factor-diag counterpart of
/// WeightedEigenvectorDiagonal / WeightedLiftedDiagonal, shared by the
/// DPP and k-DPP marginal diagonals. `weights` has one entry per
/// spectrum column (length n).
Result<Vector> FactorDiagWeightedDiagonal(const Matrix& w, const Vector& diag,
                                          const Vector& eigenvalues,
                                          const Vector& weights);

/// Σ_c weights[c]·u_c·u_cᵀ as a materialized n x n matrix — for
/// marginal-kernel cross-checks and tests only; production code uses
/// FactorDiagWeightedDiagonal. Accumulated chunk-wise and symmetrized.
Result<Matrix> FactorDiagWeightedOuter(const Matrix& w, const Vector& diag,
                                       const Vector& eigenvalues,
                                       const Vector& weights);

}  // namespace lkpdpp

#endif  // LKPDPP_LINALG_FACTOR_DIAG_H_
