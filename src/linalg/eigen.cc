#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/string_util.h"

namespace lkpdpp {

Result<EigenDecomposition> SymmetricEigen(const Matrix& a, int max_sweeps) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument(
        StrFormat("SymmetricEigen requires square matrix, got %dx%d",
                  a.rows(), a.cols()));
  }
  if (!a.IsSymmetric(1e-8 * std::max(1.0, a.MaxAbs()))) {
    return Status::InvalidArgument("SymmetricEigen requires symmetric input");
  }
  const int n = a.rows();
  Matrix m = a;
  m.Symmetrize();
  Matrix v = Matrix::Identity(n);

  if (n <= 1) {
    EigenDecomposition out;
    out.eigenvalues = Vector(n);
    if (n == 1) out.eigenvalues[0] = m(0, 0);
    out.eigenvectors = v;
    return out;
  }

  const double scale = std::max(1.0, m.MaxAbs());
  const double tol = 1e-14 * scale;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Off-diagonal Frobenius mass; convergence when negligible.
    double off = 0.0;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) off += m(p, q) * m(p, q);
    }
    if (std::sqrt(off) <= tol * n) {
      EigenDecomposition out;
      out.eigenvalues = m.Diag();
      out.eigenvectors = v;
      // Sort ascending, permuting eigenvector columns to match.
      std::vector<int> order(n);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](int x, int y) {
        return out.eigenvalues[x] < out.eigenvalues[y];
      });
      Vector sorted_vals(n);
      Matrix sorted_vecs(n, n);
      for (int i = 0; i < n; ++i) {
        sorted_vals[i] = out.eigenvalues[order[i]];
        sorted_vecs.SetCol(i, out.eigenvectors.Col(order[i]));
      }
      out.eigenvalues = std::move(sorted_vals);
      out.eigenvectors = std::move(sorted_vecs);
      return out;
    }

    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::fabs(apq) <= tol * 1e-2) continue;
        const double app = m(p, p);
        const double aqq = m(q, q);
        // Classic Jacobi rotation (Golub & Van Loan 8.4).
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (int i = 0; i < n; ++i) {
          const double mip = m(i, p);
          const double miq = m(i, q);
          m(i, p) = c * mip - s * miq;
          m(i, q) = s * mip + c * miq;
        }
        for (int i = 0; i < n; ++i) {
          const double mpi = m(p, i);
          const double mqi = m(q, i);
          m(p, i) = c * mpi - s * mqi;
          m(q, i) = s * mpi + c * mqi;
        }
        for (int i = 0; i < n; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }
  return Status::NumericalError(
      StrFormat("Jacobi failed to converge in %d sweeps (n=%d)", max_sweeps,
                n));
}

Result<Matrix> ProjectToPsd(const Matrix& a, double floor) {
  LKP_ASSIGN_OR_RETURN(EigenDecomposition eig, SymmetricEigen(a));
  const int n = a.rows();
  Matrix scaled(n, n);
  for (int c = 0; c < n; ++c) {
    const double lam = std::max(eig.eigenvalues[c], floor);
    for (int r = 0; r < n; ++r) scaled(r, c) = eig.eigenvectors(r, c) * lam;
  }
  Matrix out = MatMulTransB(scaled, eig.eigenvectors);
  out.Symmetrize();
  return out;
}

}  // namespace lkpdpp
