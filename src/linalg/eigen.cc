#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/string_util.h"

namespace lkpdpp {

namespace {

Status CheckSquareSymmetric(const Matrix& a, const char* solver) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument(
        StrFormat("%s requires square matrix, got %dx%d", solver, a.rows(),
                  a.cols()));
  }
  if (!a.IsSymmetric(1e-8 * std::max(1.0, a.MaxAbs()))) {
    return Status::InvalidArgument(
        StrFormat("%s requires symmetric input", solver));
  }
  return Status::OK();
}

// Sorts eigenpairs ascending and applies the shared sign convention
// (CanonicalizeColumnSigns) so the two solvers emit identical
// decompositions on simple spectra and the sampling streams downstream
// are stable under solver swaps.
//
// `vecs` holds one eigenvector per row when `vectors_in_rows` (the QL
// path rotates rows because they are contiguous in the row-major layout)
// and one per column otherwise (the Jacobi path).
EigenDecomposition FinalizeEigenpairs(const Vector& vals, const Matrix& vecs,
                                      bool vectors_in_rows) {
  const int n = vals.size();
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int x, int y) { return vals[x] < vals[y]; });
  EigenDecomposition out;
  out.eigenvalues = Vector(n);
  out.eigenvectors = Matrix(n, n);
  for (int i = 0; i < n; ++i) {
    const int src = order[i];
    out.eigenvalues[i] = vals[src];
    for (int r = 0; r < n; ++r) {
      out.eigenvectors(r, i) = vectors_in_rows ? vecs(src, r) : vecs(r, src);
    }
  }
  CanonicalizeColumnSigns(&out.eigenvectors);
  return out;
}

// Householder reduction of symmetric z to tridiagonal form (Golub & Van
// Loan 8.3; EISPACK tred2 organization). On return d holds the diagonal,
// e[1..n-1] the subdiagonal (e[0] = 0), and z the accumulated orthogonal
// transform Q with Q^T A Q = T. Row segments are pre-scaled by their
// 1-norm so the squared norms cannot overflow.
void HouseholderTridiagonalize(Matrix* z_ptr, Vector* d_ptr, Vector* e_ptr) {
  Matrix& z = *z_ptr;
  Vector& d = *d_ptr;
  Vector& e = *e_ptr;
  const int n = z.rows();

  // Stage 1: build the reflection chain from the last row up. After step
  // i, row/column i of the working matrix is tridiagonal; the reflector
  // vector u is left in row i (and u/H in column i) for stage 2.
  for (int i = n - 1; i >= 1; --i) {
    const int l = i - 1;
    double h = 0.0;
    if (l > 0) {
      double scale = 0.0;
      for (int k = 0; k <= l; ++k) scale += std::fabs(z(i, k));
      if (scale == 0.0) {
        // Row already tridiagonal: nothing to annihilate.
        e[i] = z(i, l);
      } else {
        for (int k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;  // H = u^T u / 2 for the reflector u stored in row i.
        z(i, l) = f - g;
        f = 0.0;
        for (int j = 0; j <= l; ++j) {
          z(j, i) = z(i, j) / h;
          // g = (A u)_j over the leading (l+1)x(l+1) block, reading only
          // the lower triangle (the upper one holds stale values).
          g = 0.0;
          for (int k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (int k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[j] = g / h;
          f += e[j] * z(i, j);
        }
        // Rank-two update A <- A - u p^T - p u^T with p = A u / H -
        // (u^T A u / 2H^2) u.
        const double hh = f / (h + h);
        for (int j = 0; j <= l; ++j) {
          f = z(i, j);
          g = e[j] - hh * f;
          e[j] = g;
          for (int k = 0; k <= j; ++k) z(j, k) -= f * e[k] + g * z(i, k);
        }
      }
    } else {
      e[i] = z(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;

  // Stage 2: accumulate Q = P_1 P_2 ... by applying each stored reflector
  // to the identity, reusing d[i] != 0 as the "reflector applied" flag.
  std::vector<double> g_acc(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    if (d[i] != 0.0) {
      // g_j = sum_k z(i,k) z(k,j), then column update z(k,j) -= g_j
      // z(k,i) — both reorganized row-major with g precomputed (the
      // reduction order over k per entry matches the textbook loop).
      std::fill(g_acc.begin(), g_acc.begin() + i, 0.0);
      for (int k = 0; k < i; ++k) {
        const double zik = z(i, k);
        const double* row_k = z.RowPtr(k);
        for (int j = 0; j < i; ++j) g_acc[static_cast<size_t>(j)] +=
            zik * row_k[j];
      }
      for (int k = 0; k < i; ++k) {
        double* row_k = z.RowPtr(k);
        const double zki = row_k[i];
        for (int j = 0; j < i; ++j) row_k[j] -=
            g_acc[static_cast<size_t>(j)] * zki;
      }
    }
    d[i] = z(i, i);
    z(i, i) = 1.0;
    for (int j = 0; j < i; ++j) {
      z(j, i) = 0.0;
      z(i, j) = 0.0;
    }
  }
}

// Implicit-shift QL iteration on the tridiagonal (d, e) produced above
// (Golub & Van Loan 8.3.3; EISPACK tql2 organization). `q_rows` holds one
// eigenvector candidate per ROW; each plane rotation then updates two
// contiguous rows instead of two strided columns, which keeps the O(n^3)
// eigenvector back-transformation streaming at memory bandwidth.
Status TridiagonalQlImplicit(Vector* d_ptr, Vector* e_ptr, Matrix* q_rows,
                             int max_iter) {
  Vector& d = *d_ptr;
  Vector& e = *e_ptr;
  Matrix& q = *q_rows;
  const int n = d.size();
  for (int i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  for (int l = 0; l < n; ++l) {
    int iter = 0;
    int m;
    do {
      // Find the first negligible subdiagonal at or beyond l; the block
      // [l, m] is then an unreduced tridiagonal to iterate on.
      for (m = l; m < n - 1; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <=
            std::numeric_limits<double>::epsilon() * dd) {
          break;
        }
      }
      if (m != l) {
        if (iter++ == max_iter) {
          return Status::NumericalError(
              StrFormat("QL failed to converge for eigenvalue %d within %d "
                        "iterations (n=%d)",
                        l, max_iter, n));
        }
        // Wilkinson shift from the leading 2x2 of the block.
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        int i;
        for (i = m - 1; i >= l; --i) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            // Underflow split: deflate and restart on the smaller block.
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          double* row_lo = q.RowPtr(i);
          double* row_hi = q.RowPtr(i + 1);
          for (int k = 0; k < n; ++k) {
            f = row_hi[k];
            row_hi[k] = s * row_lo[k] + c * f;
            row_lo[k] = c * row_lo[k] - s * f;
          }
        }
        if (r == 0.0 && i >= l) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  return Status::OK();
}

}  // namespace

Result<EigenDecomposition> SymmetricEigen(const Matrix& a, int max_iter) {
  LKP_RETURN_IF_ERROR(CheckSquareSymmetric(a, "SymmetricEigen"));
  const int n = a.rows();
  if (n <= 1) {
    EigenDecomposition out;
    out.eigenvalues = Vector(n);
    if (n == 1) out.eigenvalues[0] = a(0, 0);
    out.eigenvectors = Matrix::Identity(n);
    return out;
  }
  Matrix z = a;
  z.Symmetrize();
  Vector d(n);
  Vector e(n);
  HouseholderTridiagonalize(&z, &d, &e);
  // Transpose once so QL rotates contiguous rows; FinalizeEigenpairs
  // gathers the sorted rows back into columns.
  Matrix q = z.Transpose();
  LKP_RETURN_IF_ERROR(TridiagonalQlImplicit(&d, &e, &q, max_iter));
  return FinalizeEigenpairs(d, q, /*vectors_in_rows=*/true);
}

Result<EigenDecomposition> SymmetricEigenJacobi(const Matrix& a,
                                                int max_sweeps) {
  LKP_RETURN_IF_ERROR(CheckSquareSymmetric(a, "SymmetricEigenJacobi"));
  const int n = a.rows();
  Matrix m = a;
  m.Symmetrize();
  Matrix v = Matrix::Identity(n);

  if (n <= 1) {
    EigenDecomposition out;
    out.eigenvalues = Vector(n);
    if (n == 1) out.eigenvalues[0] = m(0, 0);
    out.eigenvectors = v;
    return out;
  }

  const double scale = std::max(1.0, m.MaxAbs());
  const double tol = 1e-14 * scale;

  // The convergence test runs once more after the final rotation pass, so
  // a matrix that converges *during* sweep `max_sweeps` still succeeds.
  for (int sweep = 0;; ++sweep) {
    // Off-diagonal Frobenius mass; convergence when negligible.
    double off = 0.0;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) off += m(p, q) * m(p, q);
    }
    if (std::sqrt(off) <= tol * n) {
      return FinalizeEigenpairs(m.Diag(), v, /*vectors_in_rows=*/false);
    }
    if (sweep >= max_sweeps) break;

    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::fabs(apq) <= tol * 1e-2) continue;
        const double app = m(p, p);
        const double aqq = m(q, q);
        // Classic Jacobi rotation (Golub & Van Loan 8.4).
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (int i = 0; i < n; ++i) {
          const double mip = m(i, p);
          const double miq = m(i, q);
          m(i, p) = c * mip - s * miq;
          m(i, q) = s * mip + c * miq;
        }
        for (int i = 0; i < n; ++i) {
          const double mpi = m(p, i);
          const double mqi = m(q, i);
          m(p, i) = c * mpi - s * mqi;
          m(q, i) = s * mpi + c * mqi;
        }
        for (int i = 0; i < n; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }
  return Status::NumericalError(
      StrFormat("Jacobi failed to converge in %d sweeps (n=%d)", max_sweeps,
                n));
}

Vector WeightedEigenvectorDiagonal(const Matrix& vecs, const Vector& w) {
  Vector diag(vecs.rows());
  for (int r = 0; r < vecs.rows(); ++r) {
    double s = 0.0;
    for (int c = 0; c < vecs.cols(); ++c) {
      const double u = vecs(r, c);
      s += w[c] * u * u;
    }
    diag[r] = s;
  }
  return diag;
}

void CanonicalizeColumnSigns(Matrix* m_ptr) {
  Matrix& m = *m_ptr;
  for (int c = 0; c < m.cols(); ++c) {
    double peak = -1.0;
    double sign = 1.0;
    for (int r = 0; r < m.rows(); ++r) {
      const double x = m(r, c);
      if (std::fabs(x) > peak) {
        peak = std::fabs(x);
        sign = x < 0.0 ? -1.0 : 1.0;
      }
    }
    if (sign < 0.0) {
      for (int r = 0; r < m.rows(); ++r) m(r, c) = -m(r, c);
    }
  }
}

Status ClampSpectrumToPsd(Vector* eigenvalues, int ground_size) {
  Vector& lam = *eigenvalues;
  const double lam_max = lam.empty() ? 0.0 : std::max(lam.Max(), 0.0);
  const double neg_tol = -1e-8 * std::max(1.0, lam_max);
  const double zero_tol = static_cast<double>(ground_size) *
                          std::numeric_limits<double>::epsilon() * lam_max;
  for (int i = 0; i < lam.size(); ++i) {
    if (lam[i] < neg_tol) {
      return Status::NumericalError(
          StrFormat("kernel is not PSD: eigenvalue %d = %.3e", i, lam[i]));
    }
    if (lam[i] < zero_tol) lam[i] = 0.0;
  }
  return Status::OK();
}

Result<Matrix> ProjectToPsd(const Matrix& a, double floor) {
  LKP_ASSIGN_OR_RETURN(EigenDecomposition eig, SymmetricEigen(a));
  const int n = a.rows();
  Matrix scaled(n, n);
  for (int c = 0; c < n; ++c) {
    const double lam = std::max(eig.eigenvalues[c], floor);
    for (int r = 0; r < n; ++r) scaled(r, c) = eig.eigenvectors(r, c) * lam;
  }
  Matrix out = MatMulTransB(scaled, eig.eigenvectors);
  out.Symmetrize();
  return out;
}

}  // namespace lkpdpp
