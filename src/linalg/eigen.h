// Symmetric eigendecomposition.
//
// k-DPP normalization (Eq. 6 of the paper) needs all eigenvalues of the
// (k+n)x(k+n) kernel, and the normalizer gradient needs the eigenvectors
// too. The serving path additionally eigendecomposes every cold
// KernelCache pool, so the solver is a hot path at serving pool sizes.
//
// `SymmetricEigen` is a LAPACK-style two-stage solver: Householder
// reduction to tridiagonal form (accumulating the orthogonal transform)
// followed by implicit-shift QL iteration on the tridiagonal. It costs
// ~3n^3 flops total, versus ~6n^3 *per sweep* (times ~8-12 sweeps) for
// the cyclic Jacobi method it replaced. Jacobi is retained as
// `SymmetricEigenJacobi` for cross-checking; both emit eigenvalues in
// ascending order with sign-canonicalized eigenvector columns, so they
// agree exactly (not just up to sign) on simple spectra.

#ifndef LKPDPP_LINALG_EIGEN_H_
#define LKPDPP_LINALG_EIGEN_H_

#include "common/result.h"
#include "linalg/matrix.h"

namespace lkpdpp {

/// Eigendecomposition A = V diag(lambda) V^T of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues in ascending order.
  Vector eigenvalues;
  /// Column i of `eigenvectors` is the unit eigenvector for eigenvalues[i],
  /// with its largest-magnitude entry made positive (canonical sign).
  Matrix eigenvectors;
};

/// Computes the full eigendecomposition of symmetric `a` by Householder
/// tridiagonalization + implicit-shift QL.
///
/// Fails with InvalidArgument for non-square or non-symmetric input and
/// with NumericalError if any eigenvalue fails to converge within
/// `max_iter` QL iterations (30 is the classical bound; in practice 2-3
/// iterations per eigenvalue suffice).
Result<EigenDecomposition> SymmetricEigen(const Matrix& a, int max_iter = 30);

/// Cyclic Jacobi reference solver: simple, accurate to machine precision,
/// and independent of the production path above, which makes it the
/// cross-check oracle in tests and benchmarks. O(sweeps * n^3); use
/// `SymmetricEigen` everywhere performance matters.
///
/// Fails with InvalidArgument for non-square or non-symmetric input and
/// with NumericalError if the off-diagonal mass is still above tolerance
/// after `max_sweeps` full rotation passes (convergence is re-checked
/// after the final pass, so a matrix that converges *during* sweep
/// `max_sweeps` succeeds).
Result<EigenDecomposition> SymmetricEigenJacobi(const Matrix& a,
                                                int max_sweeps = 64);

/// Projects a symmetric matrix to the PSD cone by clamping negative
/// eigenvalues to `floor` (>= 0). Used to keep assembled DPP kernels
/// factorable in the presence of round-off.
Result<Matrix> ProjectToPsd(const Matrix& a, double floor = 0.0);

/// diag(V diag(w) V^T) without materializing the product:
/// out[r] = sum_c w[c] * vecs(r, c)^2. The primal-mode counterpart of
/// the dual path's WeightedLiftedDiagonal (low_rank.h), shared by the
/// DPP and k-DPP marginal diagonals.
Vector WeightedEigenvectorDiagonal(const Matrix& vecs, const Vector& w);

/// Flips each column's sign so its largest-magnitude entry is positive
/// (ties broken by lowest row index). This is THE eigenvector sign
/// convention: both solvers apply it to their outputs, and the dual
/// path applies it to lifted eigenvectors so primal and dual
/// decompositions agree in sign, not just up to it.
void CanonicalizeColumnSigns(Matrix* m);

/// PSD-boundary policy shared by every DPP construction path, primal or
/// dual: eigenvalues within working precision of zero — either sign,
/// |lambda| < ground_size * eps * lambda_max — are clamped to exactly
/// zero, and genuinely negative eigenvalues (below -1e-8 * max(1,
/// lambda_max)) fail with NumericalError. `ground_size` must be the size
/// of the PRIMAL ground set even when `eigenvalues` came from a d x d
/// dual kernel: the clamp threshold is a property of the n x n operator
/// the spectrum represents, so rank detection is representation-
/// independent (a rank-deficient kernel reports the same rank whether it
/// was eigendecomposed primally or through its low-rank factor).
Status ClampSpectrumToPsd(Vector* eigenvalues, int ground_size);

}  // namespace lkpdpp

#endif  // LKPDPP_LINALG_EIGEN_H_
