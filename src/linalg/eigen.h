// Symmetric eigendecomposition.
//
// k-DPP normalization (Eq. 6 of the paper) needs all eigenvalues of the
// (k+n)x(k+n) kernel, and the normalizer gradient needs the eigenvectors
// too. The serving path additionally eigendecomposes every cold
// KernelCache pool, so the solver is a hot path at serving pool sizes.
//
// `SymmetricEigen` is a LAPACK-style two-stage solver: Householder
// reduction to tridiagonal form (accumulating the orthogonal transform)
// followed by implicit-shift QL iteration on the tridiagonal. It costs
// ~3n^3 flops total, versus ~6n^3 *per sweep* (times ~8-12 sweeps) for
// the cyclic Jacobi method it replaced. Jacobi is retained as
// `SymmetricEigenJacobi` for cross-checking; both emit eigenvalues in
// ascending order with sign-canonicalized eigenvector columns, so they
// agree exactly (not just up to sign) on simple spectra.

#ifndef LKPDPP_LINALG_EIGEN_H_
#define LKPDPP_LINALG_EIGEN_H_

#include "common/result.h"
#include "linalg/matrix.h"

namespace lkpdpp {

/// Eigendecomposition A = V diag(lambda) V^T of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues in ascending order.
  Vector eigenvalues;
  /// Column i of `eigenvectors` is the unit eigenvector for eigenvalues[i],
  /// with its largest-magnitude entry made positive (canonical sign).
  Matrix eigenvectors;
};

/// Computes the full eigendecomposition of symmetric `a` by Householder
/// tridiagonalization + implicit-shift QL.
///
/// Fails with InvalidArgument for non-square or non-symmetric input and
/// with NumericalError if any eigenvalue fails to converge within
/// `max_iter` QL iterations (30 is the classical bound; in practice 2-3
/// iterations per eigenvalue suffice).
Result<EigenDecomposition> SymmetricEigen(const Matrix& a, int max_iter = 30);

/// Cyclic Jacobi reference solver: simple, accurate to machine precision,
/// and independent of the production path above, which makes it the
/// cross-check oracle in tests and benchmarks. O(sweeps * n^3); use
/// `SymmetricEigen` everywhere performance matters.
///
/// Fails with InvalidArgument for non-square or non-symmetric input and
/// with NumericalError if the off-diagonal mass is still above tolerance
/// after `max_sweeps` full rotation passes (convergence is re-checked
/// after the final pass, so a matrix that converges *during* sweep
/// `max_sweeps` succeeds).
Result<EigenDecomposition> SymmetricEigenJacobi(const Matrix& a,
                                                int max_sweeps = 64);

/// Projects a symmetric matrix to the PSD cone by clamping negative
/// eigenvalues to `floor` (>= 0). Used to keep assembled DPP kernels
/// factorable in the presence of round-off.
Result<Matrix> ProjectToPsd(const Matrix& a, double floor = 0.0);

}  // namespace lkpdpp

#endif  // LKPDPP_LINALG_EIGEN_H_
