// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// k-DPP normalization (Eq. 6 of the paper) needs all eigenvalues of the
// (k+n)x(k+n) kernel, and the normalizer gradient needs the eigenvectors
// too. Ground sets are small (<= ~32), where Jacobi is simple, accurate to
// machine precision, and plenty fast.

#ifndef LKPDPP_LINALG_EIGEN_H_
#define LKPDPP_LINALG_EIGEN_H_

#include "common/result.h"
#include "linalg/matrix.h"

namespace lkpdpp {

/// Eigendecomposition A = V diag(lambda) V^T of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues in ascending order.
  Vector eigenvalues;
  /// Column i of `eigenvectors` is the unit eigenvector for eigenvalues[i].
  Matrix eigenvectors;
};

/// Computes the full eigendecomposition of symmetric `a`.
///
/// Fails with InvalidArgument for non-square or non-symmetric input and
/// with NumericalError if Jacobi fails to converge within `max_sweeps`.
Result<EigenDecomposition> SymmetricEigen(const Matrix& a,
                                          int max_sweeps = 64);

/// Projects a symmetric matrix to the PSD cone by clamping negative
/// eigenvalues to `floor` (>= 0). Used to keep assembled DPP kernels
/// factorable in the presence of round-off.
Result<Matrix> ProjectToPsd(const Matrix& a, double floor = 0.0);

}  // namespace lkpdpp

#endif  // LKPDPP_LINALG_EIGEN_H_
