#include "linalg/matrix.h"

#include <cmath>
#include <sstream>

#include "common/string_util.h"

namespace lkpdpp {

namespace matrix_probe {

namespace {
// Thread-local so probe runs in one test cannot see allocations from
// concurrently running suites or pool workers.
thread_local bool armed = false;
thread_local long peak = 0;
}  // namespace

void Arm() {
  armed = true;
  peak = 0;
}

long Disarm() {
  armed = false;
  return peak;
}

void OnAlloc(long elements) {
  if (armed && elements > peak) peak = elements;
}

}  // namespace matrix_probe

Vector& Vector::operator+=(const Vector& other) {
  LKP_CHECK_EQ(size(), other.size());
  for (int i = 0; i < size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  LKP_CHECK_EQ(size(), other.size());
  for (int i = 0; i < size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Vector& Vector::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

double Vector::Sum() const {
  double s = 0.0;
  for (double x : data_) s += x;
  return s;
}

double Vector::Norm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Vector::Dot(const Vector& other) const {
  LKP_CHECK_EQ(size(), other.size());
  double s = 0.0;
  for (int i = 0; i < size(); ++i) s += data_[i] * other.data_[i];
  return s;
}

double Vector::Max() const {
  LKP_CHECK(!empty());
  double m = data_[0];
  for (double x : data_) m = std::max(m, x);
  return m;
}

double Vector::Min() const {
  LKP_CHECK(!empty());
  double m = data_[0];
  for (double x : data_) m = std::min(m, x);
  return m;
}

bool Vector::AllFinite() const {
  for (double x : data_) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

std::string Vector::ToString() const {
  std::ostringstream os;
  os << "[";
  for (int i = 0; i < size(); ++i) {
    if (i > 0) os << ", ";
    os << StrFormat("%.4g", data_[i]);
  }
  os << "]";
  return os.str();
}

Vector operator+(Vector a, const Vector& b) { return a += b; }
Vector operator-(Vector a, const Vector& b) { return a -= b; }
Vector operator*(Vector a, double s) { return a *= s; }
Vector operator*(double s, Vector a) { return a *= s; }

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = static_cast<int>(init.size());
  cols_ = rows_ > 0 ? static_cast<int>(init.begin()->size()) : 0;
  data_.reserve(static_cast<size_t>(rows_) * cols_);
  for (const auto& row : init) {
    LKP_CHECK_EQ(static_cast<int>(row.size()), cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
  matrix_probe::OnAlloc(static_cast<long>(rows_) * cols_);
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (int i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::Outer(const Vector& a, const Vector& b) {
  Matrix m(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) {
    for (int j = 0; j < b.size(); ++j) m(i, j) = a[i] * b[j];
  }
  return m;
}

double& Matrix::at(int r, int c) {
  LKP_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_)
      << "(" << r << "," << c << ") shape " << rows_ << "x" << cols_;
  return (*this)(r, c);
}

double Matrix::at(int r, int c) const {
  LKP_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_)
      << "(" << r << "," << c << ") shape " << rows_ << "x" << cols_;
  return (*this)(r, c);
}

Vector Matrix::Row(int r) const {
  LKP_CHECK(r >= 0 && r < rows_);
  Vector v(cols_);
  for (int c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

Vector Matrix::Col(int c) const {
  LKP_CHECK(c >= 0 && c < cols_);
  Vector v(rows_);
  for (int r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::SetRow(int r, const Vector& v) {
  LKP_CHECK(r >= 0 && r < rows_);
  LKP_CHECK_EQ(v.size(), cols_);
  for (int c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

void Matrix::SetCol(int c, const Vector& v) {
  LKP_CHECK(c >= 0 && c < cols_);
  LKP_CHECK_EQ(v.size(), rows_);
  for (int r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

Vector Matrix::Diag() const {
  const int n = std::min(rows_, cols_);
  Vector v(n);
  for (int i = 0; i < n; ++i) v[i] = (*this)(i, i);
  return v;
}

Matrix Matrix::Submatrix(const std::vector<int>& row_idx,
                         const std::vector<int>& col_idx) const {
  Matrix out(static_cast<int>(row_idx.size()),
             static_cast<int>(col_idx.size()));
  for (size_t i = 0; i < row_idx.size(); ++i) {
    LKP_CHECK(row_idx[i] >= 0 && row_idx[i] < rows_);
    for (size_t j = 0; j < col_idx.size(); ++j) {
      LKP_CHECK(col_idx[j] >= 0 && col_idx[j] < cols_);
      out(static_cast<int>(i), static_cast<int>(j)) =
          (*this)(row_idx[i], col_idx[j]);
    }
  }
  return out;
}

Matrix Matrix::PrincipalSubmatrix(const std::vector<int>& idx) const {
  return Submatrix(idx, idx);
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  LKP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  LKP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix& Matrix::HadamardInPlace(const Matrix& other) {
  LKP_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

void Matrix::AddDiagonal(double s) {
  const int n = std::min(rows_, cols_);
  for (int i = 0; i < n; ++i) (*this)(i, i) += s;
}

double Matrix::Trace() const {
  double t = 0.0;
  const int n = std::min(rows_, cols_);
  for (int i = 0; i < n; ++i) t += (*this)(i, i);
  return t;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::fabs(x));
  return m;
}

bool Matrix::AllFinite() const {
  for (double x : data_) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (int r = 0; r < rows_; ++r) {
    for (int c = r + 1; c < cols_; ++c) {
      if (std::fabs((*this)(r, c) - (*this)(c, r)) > tol) return false;
    }
  }
  return true;
}

void Matrix::Symmetrize() {
  LKP_CHECK_EQ(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = r + 1; c < cols_; ++c) {
      const double avg = 0.5 * ((*this)(r, c) + (*this)(c, r));
      (*this)(r, c) = avg;
      (*this)(c, r) = avg;
    }
  }
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  for (int r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[[" : " [");
    for (int c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << StrFormat("%.*g", precision, (*this)(r, c));
    }
    os << (r == rows_ - 1 ? "]]" : "]\n");
  }
  return os.str();
}

Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
Matrix operator*(Matrix a, double s) { return a *= s; }
Matrix operator*(double s, Matrix a) { return a *= s; }

namespace {

// Tile edge for the cache-blocked GEMM paths below: a 64x64 double tile
// is 32 KiB, so the two or three tiles each kernel keeps hot fit in a
// 256 KiB L2 with room to spare. The tiled loops visit the k (reduction)
// index in the same ascending order as the naive triple loop for every
// output entry, so blocking changes cache behavior only — results stay
// bit-identical, which the golden bench baselines rely on.
constexpr int kGemmTile = 64;

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  LKP_CHECK_EQ(a.cols(), b.rows());
  const int m = a.rows();
  const int kk = a.cols();
  const int n = b.cols();
  Matrix out(m, n);
  // i-k-j order keeps the inner loop streaming over contiguous rows;
  // blocking i and k keeps the active slab of b (tile x n) resident
  // while a full row-block of out accumulates against it.
  for (int i0 = 0; i0 < m; i0 += kGemmTile) {
    const int i1 = std::min(i0 + kGemmTile, m);
    for (int k0 = 0; k0 < kk; k0 += kGemmTile) {
      const int k1 = std::min(k0 + kGemmTile, kk);
      for (int i = i0; i < i1; ++i) {
        double* out_row = out.RowPtr(i);
        const double* a_row = a.RowPtr(i);
        for (int k = k0; k < k1; ++k) {
          const double aik = a_row[k];
          if (aik == 0.0) continue;
          const double* b_row = b.RowPtr(k);
          for (int j = 0; j < n; ++j) out_row[j] += aik * b_row[j];
        }
      }
    }
  }
  return out;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  LKP_CHECK_EQ(a.rows(), b.rows());
  const int m = a.cols();
  const int kk = a.rows();
  const int n = b.cols();
  Matrix out(m, n);
  // Blocking i keeps a row-block of out resident across the full k sweep
  // (the naive k-outer order re-streamed all of out for every k).
  for (int i0 = 0; i0 < m; i0 += kGemmTile) {
    const int i1 = std::min(i0 + kGemmTile, m);
    for (int k = 0; k < kk; ++k) {
      const double* a_row = a.RowPtr(k);
      const double* b_row = b.RowPtr(k);
      for (int i = i0; i < i1; ++i) {
        const double aki = a_row[i];
        if (aki == 0.0) continue;
        double* out_row = out.RowPtr(i);
        for (int j = 0; j < n; ++j) out_row[j] += aki * b_row[j];
      }
    }
  }
  return out;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  LKP_CHECK_EQ(a.cols(), b.cols());
  const int m = a.rows();
  const int n = b.rows();
  Matrix out(m, n);
  // Blocking j keeps a block of b rows resident while every row of a
  // streams past it once.
  for (int j0 = 0; j0 < n; j0 += kGemmTile) {
    const int j1 = std::min(j0 + kGemmTile, n);
    for (int i = 0; i < m; ++i) {
      const double* a_row = a.RowPtr(i);
      double* out_row = out.RowPtr(i);
      for (int j = j0; j < j1; ++j) {
        const double* b_row = b.RowPtr(j);
        double s = 0.0;
        for (int k = 0; k < a.cols(); ++k) s += a_row[k] * b_row[k];
        out_row[j] = s;
      }
    }
  }
  return out;
}

Vector MatVec(const Matrix& a, const Vector& x) {
  LKP_CHECK_EQ(a.cols(), x.size());
  Vector out(a.rows());
  for (int i = 0; i < a.rows(); ++i) {
    const double* row = a.RowPtr(i);
    double s = 0.0;
    for (int j = 0; j < a.cols(); ++j) s += row[j] * x[j];
    out[i] = s;
  }
  return out;
}

Vector MatVecTransA(const Matrix& a, const Vector& x) {
  LKP_CHECK_EQ(a.rows(), x.size());
  Vector out(a.cols());
  for (int i = 0; i < a.rows(); ++i) {
    const double* row = a.RowPtr(i);
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (int j = 0; j < a.cols(); ++j) out[j] += row[j] * xi;
  }
  return out;
}

Matrix Hadamard(Matrix a, const Matrix& b) { return a.HadamardInPlace(b); }

}  // namespace lkpdpp
