#include "linalg/low_rank.h"

#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace lkpdpp {

Result<LowRankFactor> LowRankFactor::Create(Matrix v) {
  if (v.rows() < 1 || v.cols() < 1) {
    return Status::InvalidArgument(
        StrFormat("low-rank factor must be non-empty, got %dx%d", v.rows(),
                  v.cols()));
  }
  if (!v.AllFinite()) {
    return Status::NumericalError(
        "low-rank factor contains non-finite values");
  }
  return LowRankFactor(std::move(v));
}

Matrix LowRankFactor::Gram() const {
  Matrix c = MatMulTransA(v_, v_);
  c.Symmetrize();
  return c;
}

Matrix LowRankFactor::Materialize() const {
  Matrix l = MatMulTransB(v_, v_);
  l.Symmetrize();
  return l;
}

Matrix LowRankFactor::SubsetGram(const std::vector<int>& rows) const {
  return SelectRows(rows).Materialize();
}

LowRankFactor LowRankFactor::SelectRows(const std::vector<int>& rows) const {
  const int s = static_cast<int>(rows.size());
  const int d = v_.cols();
  Matrix out(s, d);
  for (int i = 0; i < s; ++i) {
    LKP_CHECK(rows[static_cast<size_t>(i)] >= 0 &&
              rows[static_cast<size_t>(i)] < v_.rows())
        << "row " << rows[static_cast<size_t>(i)] << " outside factor of "
        << v_.rows() << " rows";
    for (int c = 0; c < d; ++c) {
      out(i, c) = v_(rows[static_cast<size_t>(i)], c);
    }
  }
  return LowRankFactor(std::move(out));
}

LowRankFactor LowRankFactor::ScaleRows(const Vector& scale) const {
  LKP_CHECK_EQ(scale.size(), v_.rows());
  Matrix out = v_;
  for (int r = 0; r < out.rows(); ++r) {
    const double s = scale[r];
    for (int c = 0; c < out.cols(); ++c) out(r, c) *= s;
  }
  return LowRankFactor(std::move(out));
}

double LowRankFactor::RowDot(int i, int j) const {
  const int d = v_.cols();
  const double* ri = v_.RowPtr(i);
  const double* rj = v_.RowPtr(j);
  double s = 0.0;
  for (int c = 0; c < d; ++c) s += ri[c] * rj[c];
  return s;
}

void LowRankFactor::RowDots(int j, double* out) const {
  const int n = v_.rows();
  const int d = v_.cols();
  LKP_CHECK(j >= 0 && j < n) << "row " << j << " outside factor of " << n
                             << " rows";
  const double* rj = v_.RowPtr(j);
  for (int i = 0; i < n; ++i) {
    const double* ri = v_.RowPtr(i);
    double s = 0.0;
    for (int c = 0; c < d; ++c) s += ri[c] * rj[c];
    out[i] = s;
  }
}

void LowRankFactor::SquaredRowNorms(double* out) const {
  const int n = v_.rows();
  const int d = v_.cols();
  for (int i = 0; i < n; ++i) {
    const double* ri = v_.RowPtr(i);
    double s = 0.0;
    for (int c = 0; c < d; ++c) s += ri[c] * ri[c];
    out[i] = s;
  }
}

Result<DualEigen> LowRankFactor::EigenDual() const {
  LKP_ASSIGN_OR_RETURN(EigenDecomposition eig, SymmetricEigen(Gram()));
  // The clamp threshold uses the PRIMAL ground size n, not d: the
  // spectrum stands in for an n x n operator, and rank detection must
  // not depend on which representation computed it.
  LKP_RETURN_IF_ERROR(ClampSpectrumToPsd(&eig.eigenvalues, ground_size()));
  DualEigen out;
  out.eigenvalues = std::move(eig.eigenvalues);
  out.dual_vectors = std::move(eig.eigenvectors);
  return out;
}

Matrix LowRankFactor::LiftEigenvectors(const Vector& eigenvalues,
                                       const Matrix& dual_vectors,
                                       const std::vector<int>& cols) const {
  const int n = v_.rows();
  const int d = v_.cols();
  LKP_CHECK_EQ(eigenvalues.size(), d);
  const int m = static_cast<int>(cols.size());
  // Gather the selected dual vectors scaled by 1/sqrt(lambda), then one
  // n x d x m product lifts them all: U = V * (W_sel / sqrt(lambda)).
  Matrix w(d, m);
  for (int c = 0; c < m; ++c) {
    const int j = cols[static_cast<size_t>(c)];
    LKP_CHECK(j >= 0 && j < d) << "dual eigenvector index " << j
                               << " outside rank bound " << d;
    const double lam = eigenvalues[j];
    LKP_CHECK(lam > 0.0)
        << "cannot lift dual eigenvector " << j
        << " with non-positive eigenvalue " << lam;
    const double inv_sqrt = 1.0 / std::sqrt(lam);
    for (int r = 0; r < d; ++r) w(r, c) = dual_vectors(r, j) * inv_sqrt;
  }
  Matrix lifted = MatMul(v_, w);
  LKP_CHECK_EQ(lifted.rows(), n);
  CanonicalizeColumnSigns(&lifted);
  return lifted;
}

namespace {

std::vector<int> PositiveWeightCols(const Vector& weights) {
  std::vector<int> cols;
  for (int c = 0; c < weights.size(); ++c) {
    if (weights[c] > 0.0) cols.push_back(c);
  }
  return cols;
}

}  // namespace

Matrix WeightedLiftedOuter(const LowRankFactor& factor,
                           const Vector& eigenvalues,
                           const Matrix& dual_vectors,
                           const Vector& weights) {
  const int n = factor.ground_size();
  const std::vector<int> cols = PositiveWeightCols(weights);
  if (cols.empty()) return Matrix(n, n);
  const Matrix lifted =
      factor.LiftEigenvectors(eigenvalues, dual_vectors, cols);
  Matrix scaled = lifted;
  for (size_t c = 0; c < cols.size(); ++c) {
    const double w = weights[cols[c]];
    for (int r = 0; r < n; ++r) scaled(r, static_cast<int>(c)) *= w;
  }
  Matrix out = MatMulTransB(scaled, lifted);
  out.Symmetrize();
  return out;
}

Vector WeightedLiftedDiagonal(const LowRankFactor& factor,
                              const Vector& eigenvalues,
                              const Matrix& dual_vectors,
                              const Vector& weights) {
  const int n = factor.ground_size();
  Vector diag(n);
  const std::vector<int> cols = PositiveWeightCols(weights);
  if (cols.empty()) return diag;
  const Matrix lifted =
      factor.LiftEigenvectors(eigenvalues, dual_vectors, cols);
  for (int r = 0; r < n; ++r) {
    double s = 0.0;
    for (size_t c = 0; c < cols.size(); ++c) {
      const double u = lifted(r, static_cast<int>(c));
      s += weights[cols[c]] * u * u;
    }
    diag[r] = s;
  }
  return diag;
}

}  // namespace lkpdpp
