#include "linalg/sparse.h"

#include <algorithm>

#include "common/string_util.h"

namespace lkpdpp {

Result<SparseMatrix> SparseMatrix::FromTriplets(
    int rows, int cols, std::vector<Triplet> triplets) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("negative sparse matrix shape");
  }
  for (const Triplet& t : triplets) {
    if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols) {
      return Status::OutOfRange(
          StrFormat("triplet (%d,%d) outside %dx%d", t.row, t.col, rows,
                    cols));
    }
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  std::vector<int> row_offsets(rows + 1, 0);
  std::vector<int> col_indices;
  std::vector<double> values;
  col_indices.reserve(triplets.size());
  values.reserve(triplets.size());

  for (size_t i = 0; i < triplets.size();) {
    size_t j = i;
    double sum = 0.0;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    col_indices.push_back(triplets[i].col);
    values.push_back(sum);
    ++row_offsets[triplets[i].row + 1];
    i = j;
  }
  for (int r = 0; r < rows; ++r) row_offsets[r + 1] += row_offsets[r];

  return SparseMatrix(rows, cols, std::move(row_offsets),
                      std::move(col_indices), std::move(values));
}

Matrix SparseMatrix::Multiply(const Matrix& dense) const {
  LKP_CHECK_EQ(cols_, dense.rows());
  Matrix out(rows_, dense.cols());
  for (int r = 0; r < rows_; ++r) {
    double* out_row = out.RowPtr(r);
    for (int p = row_offsets_[r]; p < row_offsets_[r + 1]; ++p) {
      const double v = values_[p];
      const double* in_row = dense.RowPtr(col_indices_[p]);
      for (int c = 0; c < dense.cols(); ++c) out_row[c] += v * in_row[c];
    }
  }
  return out;
}

Matrix SparseMatrix::MultiplyTransposed(const Matrix& dense) const {
  LKP_CHECK_EQ(rows_, dense.rows());
  Matrix out(cols_, dense.cols());
  for (int r = 0; r < rows_; ++r) {
    const double* in_row = dense.RowPtr(r);
    for (int p = row_offsets_[r]; p < row_offsets_[r + 1]; ++p) {
      const double v = values_[p];
      double* out_row = out.RowPtr(col_indices_[p]);
      for (int c = 0; c < dense.cols(); ++c) out_row[c] += v * in_row[c];
    }
  }
  return out;
}

Vector SparseMatrix::Multiply(const Vector& x) const {
  LKP_CHECK_EQ(cols_, x.size());
  Vector out(rows_);
  for (int r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (int p = row_offsets_[r]; p < row_offsets_[r + 1]; ++p) {
      s += values_[p] * x[col_indices_[p]];
    }
    out[r] = s;
  }
  return out;
}

Vector SparseMatrix::RowSums() const {
  Vector out(rows_);
  for (int r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (int p = row_offsets_[r]; p < row_offsets_[r + 1]; ++p) {
      s += values_[p];
    }
    out[r] = s;
  }
  return out;
}

Matrix SparseMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int p = row_offsets_[r]; p < row_offsets_[r + 1]; ++p) {
      out(r, col_indices_[p]) += values_[p];
    }
  }
  return out;
}

}  // namespace lkpdpp
