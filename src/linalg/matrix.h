// Dense row-major matrix and vector types.
//
// lkpdpp operates on dense matrices from tiny DPP kernels (k+n <= ~32
// ground sets) up to serving-pool kernels of a few hundred rows, so the
// GEMM-shaped products (MatMul / MatMulTransA / MatMulTransB) are
// cache-blocked: loops are tiled so the working set of each inner kernel
// stays L2-resident, while the reduction index is visited in the same
// order as the naive triple loop — blocked results are bit-identical to
// unblocked ones. All numerics are double precision: determinant ratios
// in k-DPP normalization lose accuracy fast in float.

#ifndef LKPDPP_LINALG_MATRIX_H_
#define LKPDPP_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/logging.h"

namespace lkpdpp {

namespace matrix_probe {
/// Test-only allocation probe: while armed on the current thread, every
/// Matrix construction records its element count (rows * cols) and the
/// largest single allocation is kept. Tests use it to assert a code
/// path never materializes an n x n kernel (e.g. factor-path greedy
/// MAP). Thread-local, so concurrent suites cannot interfere; costs one
/// thread-local branch per Matrix construction when disarmed.
void Arm();
/// Disarms the probe on this thread and returns the peak single-Matrix
/// element count observed since Arm() (0 if nothing was allocated).
long Disarm();
/// Internal hook called by Matrix constructors.
void OnAlloc(long elements);
}  // namespace matrix_probe

/// Dense column vector of doubles.
class Vector {
 public:
  Vector() = default;
  explicit Vector(int size, double fill = 0.0)
      : data_(static_cast<size_t>(size), fill) {
    LKP_CHECK_GE(size, 0);
  }
  Vector(std::initializer_list<double> init) : data_(init) {}
  explicit Vector(std::vector<double> data) : data_(std::move(data)) {}

  int size() const { return static_cast<int>(data_.size()); }
  bool empty() const { return data_.empty(); }

  double& operator[](int i) { return data_[static_cast<size_t>(i)]; }
  double operator[](int i) const { return data_[static_cast<size_t>(i)]; }

  /// Bounds-checked access.
  double& at(int i) {
    LKP_CHECK(i >= 0 && i < size()) << "index " << i << " size " << size();
    return data_[static_cast<size_t>(i)];
  }
  double at(int i) const {
    LKP_CHECK(i >= 0 && i < size()) << "index " << i << " size " << size();
    return data_[static_cast<size_t>(i)];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  const std::vector<double>& raw() const { return data_; }

  /// In-place elementwise operations.
  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);
  Vector& operator*=(double s);

  /// Sum of entries.
  double Sum() const;
  /// Euclidean norm.
  double Norm() const;
  /// Dot product. Sizes must match.
  double Dot(const Vector& other) const;
  /// Largest entry (requires non-empty).
  double Max() const;
  /// Smallest entry (requires non-empty).
  double Min() const;
  /// True if every entry is finite.
  bool AllFinite() const;

  std::string ToString() const;

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

 private:
  std::vector<double> data_;
};

Vector operator+(Vector a, const Vector& b);
Vector operator-(Vector a, const Vector& b);
Vector operator*(Vector a, double s);
Vector operator*(double s, Vector a);

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows),
        cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), fill) {
    LKP_CHECK_GE(rows, 0);
    LKP_CHECK_GE(cols, 0);
    matrix_probe::OnAlloc(static_cast<long>(rows) * cols);
  }
  /// Builds from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  static Matrix Identity(int n);
  static Matrix Diagonal(const Vector& d);
  /// Outer product a * b^T.
  static Matrix Outer(const Vector& a, const Vector& b);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(int r, int c) {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Bounds-checked access.
  double& at(int r, int c);
  double at(int r, int c) const;

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* RowPtr(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const double* RowPtr(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  /// Copies row r into a Vector.
  Vector Row(int r) const;
  /// Copies column c into a Vector.
  Vector Col(int c) const;
  /// Overwrites row r.
  void SetRow(int r, const Vector& v);
  /// Overwrites column c.
  void SetCol(int c, const Vector& v);
  /// The main diagonal (length min(rows, cols)).
  Vector Diag() const;

  /// Submatrix indexed by `row_idx` x `col_idx` (general gather).
  Matrix Submatrix(const std::vector<int>& row_idx,
                   const std::vector<int>& col_idx) const;
  /// Principal submatrix indexed by `idx` on both axes.
  Matrix PrincipalSubmatrix(const std::vector<int>& idx) const;

  Matrix Transpose() const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);
  /// Elementwise (Hadamard) product in place.
  Matrix& HadamardInPlace(const Matrix& other);

  /// Adds s to every diagonal entry (jitter).
  void AddDiagonal(double s);

  double Trace() const;
  double FrobeniusNorm() const;
  /// Largest absolute entry.
  double MaxAbs() const;
  bool AllFinite() const;
  /// True if max |A - A^T| entry <= tol.
  bool IsSymmetric(double tol = 1e-10) const;
  /// Symmetrizes in place: A <- (A + A^T) / 2. Requires square.
  void Symmetrize();

  std::string ToString(int precision = 4) const;

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, double s);
Matrix operator*(double s, Matrix a);

/// Dense matrix product a (m x k) * b (k x n).
Matrix MatMul(const Matrix& a, const Matrix& b);
/// a^T * b without forming the transpose.
Matrix MatMulTransA(const Matrix& a, const Matrix& b);
/// a * b^T without forming the transpose.
Matrix MatMulTransB(const Matrix& a, const Matrix& b);
/// Matrix-vector product (m x n) * (n) -> (m).
Vector MatVec(const Matrix& a, const Vector& x);
/// a^T * x.
Vector MatVecTransA(const Matrix& a, const Vector& x);
/// Elementwise product.
Matrix Hadamard(Matrix a, const Matrix& b);

}  // namespace lkpdpp

#endif  // LKPDPP_LINALG_MATRIX_H_
