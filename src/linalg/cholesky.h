// Cholesky factorization of symmetric positive-definite matrices.
//
// This is the workhorse for DPP kernels: log-determinants of kernel
// submatrices (Eq. 5 of the paper) and inverses L_S^{-1} appearing in the
// criterion gradient (Eq. 12) both come from a Cholesky factor.

#ifndef LKPDPP_LINALG_CHOLESKY_H_
#define LKPDPP_LINALG_CHOLESKY_H_

#include "common/result.h"
#include "linalg/matrix.h"

namespace lkpdpp {

/// Lower-triangular Cholesky factor of an SPD matrix, with derived
/// quantities (log-determinant, solves, inverse).
class Cholesky {
 public:
  /// Factors `a` = L L^T. Fails with NumericalError if `a` is not
  /// (numerically) positive definite or not symmetric. `jitter`, if
  /// positive, is added to the diagonal before factoring (a standard
  /// regularization for nearly singular kernels).
  static Result<Cholesky> Compute(const Matrix& a, double jitter = 0.0);

  /// Lower-triangular factor L with a = L L^T.
  const Matrix& factor() const { return l_; }

  int size() const { return l_.rows(); }

  /// log det(a) = 2 * sum_i log L_ii.
  double LogDet() const;

  /// det(a) = exp(LogDet()); may overflow for large well-scaled kernels,
  /// prefer LogDet.
  double Det() const;

  /// Solves a x = b.
  Vector Solve(const Vector& b) const;

  /// Solves a X = B column-wise.
  Matrix Solve(const Matrix& b) const;

  /// a^{-1} via two triangular solves against the identity.
  Matrix Inverse() const;

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

/// Convenience: log det of an SPD matrix. Fails if not SPD.
Result<double> LogDetSpd(const Matrix& a, double jitter = 0.0);

}  // namespace lkpdpp

#endif  // LKPDPP_LINALG_CHOLESKY_H_
