// Representation-generic read view of a PSD kernel.
//
// Every consumer of a serving kernel used to hard-code its storage: the
// greedy MAP re-ranker took a materialized n x n Matrix, the dual
// sampler took a LowRankFactor, and blended kernels (kernel_blend_alpha
// < 1) had no thin representation at all because the identity blend
// adds a full-rank diagonal no plain factor V·Vᵀ can carry. KernelRep
// factors the representation out of those call sites: an algorithm that
// only needs kernel *entries* — diagonals and rows, which is all greedy
// MAP's incremental Cholesky reads — is written once against this
// interface and runs on whichever representation is cheapest.
//
// Representations:
//   * PrimalKernelRep     — a materialized n x n Matrix. O(1) row reads;
//                           O(n² d) to build from a rank-d factor.
//   * FactorDiagKernelRep — L = Diag(s) (α·V·Vᵀ + δ·I) Diag(s) held as
//                           the thin n x d factor plus the three scalars
//                           /per-row scales. Rows are synthesized on
//                           demand at O(n d); the n x n is NEVER
//                           materialized. δ > 0 is what makes blended
//                           kernels (α < 1) representable: the diagonal
//                           correction rides beside the factor instead
//                           of being absorbed into it.
//
// Bit-exactness contract: FactorDiagKernelRep computes each entry with
// EXACTLY the arithmetic the primal serving pipeline uses to materialize
// the same kernel —
//     dot     = Σ_c V(i,c)·V(j,c)        ascending c
//               (DiversityKernel::Entry / naive-order blocked GEMM),
//     blended = dot · α, then + δ on the diagonal
//               (Matrix::operator*= then Matrix::AddDiagonal),
//     L(i,j)  = (s_i · blended) · s_j    left-to-right
//               (AssembleKernel's q_i * k * q_j) —
// so an entry-driven algorithm fed either representation sees
// bit-identical doubles and takes bit-identical branches. This is what
// lets serving pin "factor-path greedy MAP selects the same set as the
// forced-primal oracle" as an exact equality, not a tolerance.
//
// Scope: KernelRep serves ENTRY-driven algorithms (greedy MAP). The
// sampling side of the same blended kernel does not go through this
// interface — it needs the spectrum, which Dpp/KDpp::CreateFactorDiag
// obtain exactly from the identical W·Wᵀ + D split via
// linalg/factor_diag.h (W = √α·Diag(s)·V, D = δ·Diag(s²)). The two
// paths share the decomposition but not the code: a KernelRep never
// computes eigenvalues, and the factor-diag sampler never synthesizes
// full rows.
//
// Thread safety: reps are immutable after construction; concurrent
// FillRow/FillDiag/Entry calls are safe.

#ifndef LKPDPP_LINALG_KERNEL_REP_H_
#define LKPDPP_LINALG_KERNEL_REP_H_

#include <memory>
#include <utility>

#include "common/result.h"
#include "linalg/low_rank.h"
#include "linalg/matrix.h"

namespace lkpdpp {

/// Which storage backs a KernelRep (cost-model input + observability).
enum class KernelRepKind {
  kPrimal,      ///< Materialized n x n Matrix.
  kFactorDiag,  ///< Thin factor + diagonal: Diag(s)(α·V·Vᵀ + δ·I)Diag(s).
  kDiag,        ///< Pure diagonal: Diag(s)(δ·I)Diag(s); the α == 0 blend.
};

const char* KernelRepKindName(KernelRepKind kind);

/// Read-only view of a symmetric PSD kernel L over n items. Algorithms
/// that only consume entries (diagonals + rows) run unchanged on any
/// implementation; which one is profitable is the caller's cost model.
class KernelRep {
 public:
  virtual ~KernelRep() = default;

  /// Ground-set size n.
  virtual int size() const = 0;

  virtual KernelRepKind kind() const = 0;

  /// Writes L(i, i) for every i into out[0 .. size()).
  virtual void FillDiag(double* out) const = 0;

  /// Writes row j — L(j, i) for every i — into out[0 .. size()).
  /// Row-major row j of the materialized kernel, bit for bit.
  virtual void FillRow(int j, double* out) const = 0;

  /// Single entry L(i, j). Convenience for tests and cross-checks; hot
  /// loops use the Fill* batch calls.
  virtual double Entry(int i, int j) const = 0;
};

/// KernelRep over a materialized n x n Matrix, owning or viewing it.
class PrimalKernelRep final : public KernelRep {
 public:
  /// Takes ownership of the kernel. Must be square.
  explicit PrimalKernelRep(Matrix kernel);

  /// Non-owning view over a caller-owned kernel (the Matrix entry point
  /// of GreedyMapInference). The referent must outlive the view.
  static PrimalKernelRep View(const Matrix& kernel);

  int size() const override { return matrix_->rows(); }
  KernelRepKind kind() const override { return KernelRepKind::kPrimal; }
  void FillDiag(double* out) const override;
  void FillRow(int j, double* out) const override;
  double Entry(int i, int j) const override;

  const Matrix& matrix() const { return *matrix_; }

 private:
  PrimalKernelRep() = default;
  Matrix owned_;
  const Matrix* matrix_ = nullptr;  // &owned_, or the viewed referent.
};

/// KernelRep for L = Diag(scale) (alpha·V·Vᵀ + delta·I) Diag(scale)
/// stored as the n x d factor V plus the conditioning terms — the
/// serving-side conditioned kernel (quality scaling x identity-blended
/// diversity) without the n x n materialization. Entries are synthesized
/// on demand with the primal pipeline's exact arithmetic (see the file
/// header); FillRow costs O(n d), FillDiag O(n d), total memory O(n d).
class FactorDiagKernelRep final : public KernelRep {
 public:
  /// `v` is the n x d factor; `scale` (length n) the per-row outer
  /// scaling (quality); `alpha` the factor weight and `delta` the
  /// diagonal shift, both >= 0 and finite so L stays PSD. Fails on
  /// empty/non-finite inputs or shape mismatches.
  static Result<FactorDiagKernelRep> Create(Matrix v, Vector scale,
                                            double alpha, double delta);

  int size() const override { return factor_.ground_size(); }
  KernelRepKind kind() const override { return KernelRepKind::kFactorDiag; }
  void FillDiag(double* out) const override;
  void FillRow(int j, double* out) const override;
  double Entry(int i, int j) const override;

  const LowRankFactor& factor() const { return factor_; }
  const Vector& scale() const { return scale_; }
  double alpha() const { return alpha_; }
  double delta() const { return delta_; }

 private:
  FactorDiagKernelRep(LowRankFactor factor, Vector scale, double alpha,
                      double delta)
      : factor_(std::move(factor)),
        scale_(std::move(scale)),
        alpha_(alpha),
        delta_(delta) {}

  LowRankFactor factor_;  // V: n x d.
  Vector scale_;          // s: length n.
  double alpha_ = 1.0;
  double delta_ = 0.0;
};

/// KernelRep for the degenerate blend alpha == 0: L = Diag(s) (delta·I)
/// Diag(s), a pure diagonal. O(n) memory, no factor gather, no
/// materialization. Diagonal entries use the primal pipeline's exact
/// arithmetic — (s_i · delta) · s_i bit-matches AssembleKernel's
/// q_i * (0·K_ii + delta) * q_i because ±0.0 + delta == delta and
/// q_i * 1.0 == q_i exactly in IEEE-754. Off-diagonals return +0.0 where
/// the primal materialization can carry ±0.0 (sign of 0·K_ij·q_i·q_j);
/// the sign of an exact zero never changes a greedy-MAP branch (zeros
/// enter only as c² = +0.0 updates and ±0 dot terms), so selections
/// still pin bit-identical against the forced-primal oracle.
class DiagKernelRep final : public KernelRep {
 public:
  /// `scale` (length n) is the per-row outer scaling (quality); `delta`
  /// the diagonal shift, >= 0 and finite so L stays PSD. Fails on empty
  /// or non-finite inputs.
  static Result<DiagKernelRep> Create(Vector scale, double delta);

  int size() const override { return scale_.size(); }
  KernelRepKind kind() const override { return KernelRepKind::kDiag; }
  void FillDiag(double* out) const override;
  void FillRow(int j, double* out) const override;
  double Entry(int i, int j) const override;

  const Vector& scale() const { return scale_; }
  double delta() const { return delta_; }

 private:
  DiagKernelRep(Vector scale, double delta)
      : scale_(std::move(scale)), delta_(delta) {}

  Vector scale_;  // s: length n.
  double delta_ = 1.0;
};

}  // namespace lkpdpp

#endif  // LKPDPP_LINALG_KERNEL_REP_H_
