// Low-rank dual representation of PSD kernels (Gartrell et al. 2016,
// arXiv:1602.05436).
//
// When a DPP kernel is built from d-dimensional item embeddings,
//   L = V V^T with V in R^{n x d},
// the d x d dual kernel C = V^T V has exactly the same nonzero spectrum
// as L, and every primal eigenvector with eigenvalue lambda > 0 can be
// recovered from its dual counterpart w-hat as
//   u = V w-hat / sqrt(lambda).
// That turns the O(n^3) eigendecomposition the serving path pays per cold
// kernel into an O(n d^2) Gram product plus an O(d^3) eigensolve, and
// exact k-DPP sampling into O(n d k) per draw — without ever
// materializing the n x n kernel. Dpp::CreateDual / KDpp::CreateDual
// consume this representation; the serving layer builds it whenever the
// conditioned kernel advertises an exact factor.
//
// Conditioning composes in the dual: extracting a candidate pool is a row
// subset of V, and quality conditioning Diag(q) L Diag(q) is a row
// scaling of V — both O(n d) updates instead of an n x n rebuild.
//
// Factor-plus-diagonal extension (V·Vᵀ + D). Blended serving kernels
// add a diagonal the factor cannot absorb: L = α·V·Vᵀ + δ·I shifts the
// whole spectrum, λ_i(L) = α·λ_i(V·Vᵀ) + δ, including the (n - d)
// padded zeros — which become δ > 0, so the padding argument that made
// the d-eigenvalue dual ESP tables exact (zero eigenvalues contribute
// nothing) no longer applies, and after the outer Diag(q) scaling the
// shift is not even spectral (Diag(q)(α·V·Vᵀ + δ·I)Diag(q) =
// α·(Diag(q)V)(Diag(q)V)ᵀ + δ·Diag(q²), a NON-scalar diagonal). The
// d x d Gram trick therefore cannot eigendecompose a blended kernel —
// but the blend is still exactly W·Wᵀ + D with W = √α·Diag(q)·V and
// D = (1-α)·Diag(q²), and that shape has its own exact solver:
// linalg/factor_diag.h recovers the FULL n-length spectrum (and any
// requested eigenvectors) of a rank-d update of a diagonal matrix by
// inertia bisection on the d x d capacitance, O(n²d²·log(1/ε)) time and
// O(n·d) memory — never materializing the n x n kernel. Two exact
// factored paths follow:
//   * MAP rerank reads kernel ENTRIES only —
//       L(i,j) = q_i·(α·<v_i, v_j> + δ·1[i=j])·q_j
//     at O(d) each via RowDot/RowDots below; kernel_rep.h's
//     FactorDiagKernelRep serves that without any eigensolve.
//   * Sampling needs the spectrum: Dpp/KDpp::CreateFactorDiag run the
//     ESP walk over the factor_diag.h spectrum and lift elementary-DPP
//     bases on demand, so blended 0 < α < 1 sampling is exact and
//     draw-for-draw identical to the primal build (it walks the same
//     full spectrum) while staying O(n·d) in memory.
// The α == 1 case keeps the cheaper d-eigenvalue dual route above.

#ifndef LKPDPP_LINALG_LOW_RANK_H_
#define LKPDPP_LINALG_LOW_RANK_H_

#include <vector>

#include "common/result.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"

namespace lkpdpp {

/// Eigendecomposition of the dual kernel C = V^T V, standing in for the
/// spectrum of L = V V^T: L's eigenvalues are `eigenvalues` plus
/// (n - d) implicit zeros.
struct DualEigen {
  /// Ascending eigenvalues of C (length d). Zeros are clamped with the
  /// primal ground-size rule (ClampSpectrumToPsd with ground_size = n),
  /// so the detected rank matches what an n x n eigendecomposition of
  /// L would report.
  Vector eigenvalues;
  /// Column j of `dual_vectors` is the unit eigenvector of C for
  /// eigenvalues[j] (d x d, canonical signs from SymmetricEigen).
  Matrix dual_vectors;
};

/// An exact rank-<= d factor V of the PSD kernel L = V V^T over a ground
/// set of n items. Immutable once created; cheap to copy relative to the
/// n x n kernel it represents.
class LowRankFactor {
 public:
  /// Empty (0 x 0) placeholder, used where a factor slot may be unfilled
  /// (e.g. a primal-mode Dpp). Create() never returns one.
  LowRankFactor() = default;

  /// Wraps an n x d factor. Fails on empty or non-finite input, or d < 1.
  static Result<LowRankFactor> Create(Matrix v);

  /// Ground-set size n.
  int ground_size() const { return v_.rows(); }
  /// Number of factor columns d (an upper bound on rank(L)).
  int rank_bound() const { return v_.cols(); }
  const Matrix& v() const { return v_; }

  /// Dual kernel C = V^T V (d x d, symmetrized against round-off).
  Matrix Gram() const;

  /// Materializes L = V V^T (n x n) — for cross-checks and tests only;
  /// the dual path exists so production code never calls this at scale.
  Matrix Materialize() const;

  /// Gram matrix of a row subset: (V_S)(V_S)^T = L_S (|S| x |S|), the
  /// principal kernel submatrix without materializing L. Indices must be
  /// in range; duplicates allowed (they yield the expected singular L_S).
  Matrix SubsetGram(const std::vector<int>& rows) const;

  /// Factor of the principal submatrix L_S: the selected rows of V.
  LowRankFactor SelectRows(const std::vector<int>& rows) const;

  /// Factor of Diag(s) L Diag(s): V with row i scaled by s[i]. This is
  /// how quality conditioning enters the dual path.
  LowRankFactor ScaleRows(const Vector& scale) const;

  /// <v_i, v_j>, the kernel entry L(i, j), as the ascending-column dot
  /// product — the same reduction order DiversityKernel::Entry and the
  /// (naive-order) blocked GEMM use, so factor-computed entries are
  /// bit-identical to materialized ones. O(d).
  double RowDot(int i, int j) const;

  /// Kernel row j without materializing L: out[i] = <v_i, v_j> for
  /// every i, into out[0 .. ground_size()). O(n d) — the per-step
  /// primitive of factor-path greedy MAP.
  void RowDots(int j, double* out) const;

  /// diag(L) without materializing: out[i] = <v_i, v_i> into
  /// out[0 .. ground_size()). O(n d).
  void SquaredRowNorms(double* out) const;

  /// Eigendecomposition of the dual kernel via SymmetricEigen, with the
  /// shared PSD clamp applied at primal ground size (see DualEigen).
  Result<DualEigen> EigenDual() const;

  /// Lifts the selected dual eigenvectors to primal eigenvectors of L:
  /// column c of the result is V * dual_vectors[:, cols[c]] /
  /// sqrt(eigenvalues[cols[c]]) (n x |cols|), sign-canonicalized the same
  /// way SymmetricEigen canonicalizes primal eigenvectors. Every selected
  /// column must have a strictly positive eigenvalue (zero-eigenvalue
  /// dual vectors have no primal counterpart in range(L)). `eigenvalues`
  /// and `dual_vectors` are the pieces of a DualEigen for this factor.
  Matrix LiftEigenvectors(const Vector& eigenvalues,
                          const Matrix& dual_vectors,
                          const std::vector<int>& cols) const;

 private:
  explicit LowRankFactor(Matrix v) : v_(std::move(v)) {}
  Matrix v_;  // n x d.
};

/// Weighted outer product over lifted eigenvectors:
///   sum_{c : weights[c] > 0} weights[c] * u_c u_c^T   (n x n),
/// where u_c is the lift of dual eigenvector c. This is the dual-mode
/// assembly shared by DPP/k-DPP marginal kernels: zero-weight columns
/// are skipped, and every positive-weight column must have a strictly
/// positive eigenvalue (all weight functions in use vanish on zero
/// eigenvalues). `eigenvalues`/`dual_vectors` are the pieces of a
/// DualEigen for `factor`; `weights` has one entry per dual column.
Matrix WeightedLiftedOuter(const LowRankFactor& factor,
                           const Vector& eigenvalues,
                           const Matrix& dual_vectors, const Vector& weights);

/// diag of WeightedLiftedOuter without materializing the n x n result:
/// out[i] = sum_{c : weights[c] > 0} weights[c] * u_c(i)^2.
Vector WeightedLiftedDiagonal(const LowRankFactor& factor,
                              const Vector& eigenvalues,
                              const Matrix& dual_vectors,
                              const Vector& weights);

}  // namespace lkpdpp

#endif  // LKPDPP_LINALG_LOW_RANK_H_
