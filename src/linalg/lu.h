// LU factorization with partial pivoting for general square matrices.
//
// Used where kernels may be merely positive semi-definite (determinants of
// rank-deficient submatrices are legitimately zero) and as an independent
// cross-check of the Cholesky path in tests.

#ifndef LKPDPP_LINALG_LU_H_
#define LKPDPP_LINALG_LU_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace lkpdpp {

/// PA = LU factorization with partial pivoting.
class Lu {
 public:
  /// Factors `a`. Singular matrices factor successfully (their determinant
  /// is 0); only shape errors fail.
  static Result<Lu> Compute(const Matrix& a);

  /// det(a), including pivot sign. Exactly 0 for singular input.
  double Det() const;

  /// True if a zero pivot was encountered.
  bool IsSingular() const { return singular_; }

  /// Solves a x = b. Fails for singular matrices.
  Result<Vector> Solve(const Vector& b) const;

  /// a^{-1}. Fails for singular matrices.
  Result<Matrix> Inverse() const;

 private:
  Lu(Matrix lu, std::vector<int> perm, int sign, bool singular)
      : lu_(std::move(lu)),
        perm_(std::move(perm)),
        sign_(sign),
        singular_(singular) {}

  Matrix lu_;              // Packed L (unit diag, below) and U (on/above).
  std::vector<int> perm_;  // Row permutation.
  int sign_;               // Permutation parity (+1/-1).
  bool singular_;
};

/// Convenience: determinant of a general square matrix.
Result<double> Determinant(const Matrix& a);

}  // namespace lkpdpp

#endif  // LKPDPP_LINALG_LU_H_
