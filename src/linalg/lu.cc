#include "linalg/lu.h"

#include <cmath>

#include "common/string_util.h"

namespace lkpdpp {

Result<Lu> Lu::Compute(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument(
        StrFormat("LU requires square matrix, got %dx%d", a.rows(),
                  a.cols()));
  }
  const int n = a.rows();
  Matrix lu = a;
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  int sign = 1;
  bool singular = false;

  for (int col = 0; col < n; ++col) {
    // Partial pivot: largest |entry| in the column at or below the diagonal.
    int pivot = col;
    double best = std::fabs(lu(col, col));
    for (int r = col + 1; r < n; ++r) {
      const double v = std::fabs(lu(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best == 0.0) {
      singular = true;
      continue;
    }
    if (pivot != col) {
      for (int c = 0; c < n; ++c) std::swap(lu(col, c), lu(pivot, c));
      std::swap(perm[col], perm[pivot]);
      sign = -sign;
    }
    const double d = lu(col, col);
    for (int r = col + 1; r < n; ++r) {
      const double f = lu(r, col) / d;
      lu(r, col) = f;
      if (f == 0.0) continue;
      for (int c = col + 1; c < n; ++c) lu(r, c) -= f * lu(col, c);
    }
  }
  return Lu(std::move(lu), std::move(perm), sign, singular);
}

double Lu::Det() const {
  if (singular_) return 0.0;
  double d = static_cast<double>(sign_);
  for (int i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
  return d;
}

Result<Vector> Lu::Solve(const Vector& b) const {
  if (singular_) return Status::NumericalError("LU solve on singular matrix");
  const int n = lu_.rows();
  if (b.size() != n) {
    return Status::InvalidArgument("LU solve: size mismatch");
  }
  // Apply permutation, then forward/backward substitution.
  Vector y(n);
  for (int i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    for (int k = 0; k < i; ++k) s -= lu_(i, k) * y[k];
    y[i] = s;
  }
  Vector x(n);
  for (int i = n - 1; i >= 0; --i) {
    double s = y[i];
    for (int k = i + 1; k < n; ++k) s -= lu_(i, k) * x[k];
    x[i] = s / lu_(i, i);
  }
  return x;
}

Result<Matrix> Lu::Inverse() const {
  if (singular_) {
    return Status::NumericalError("LU inverse on singular matrix");
  }
  const int n = lu_.rows();
  Matrix out(n, n);
  Vector e(n);
  for (int c = 0; c < n; ++c) {
    for (int i = 0; i < n; ++i) e[i] = (i == c) ? 1.0 : 0.0;
    LKP_ASSIGN_OR_RETURN(Vector col, Solve(e));
    out.SetCol(c, col);
  }
  return out;
}

Result<double> Determinant(const Matrix& a) {
  LKP_ASSIGN_OR_RETURN(Lu lu, Lu::Compute(a));
  return lu.Det();
}

}  // namespace lkpdpp
