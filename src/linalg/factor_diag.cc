#include "linalg/factor_diag.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/string_util.h"
#include "linalg/eigen.h"

namespace lkpdpp {

namespace {

constexpr double kEps = std::numeric_limits<double>::epsilon();

// Signs of the spectrum of a symmetric matrix, for the counting function.
struct Inertia {
  int neg = 0;
  int zero = 0;
};

// Overall magnitude of the operator W·Wᵀ + Diag(diag): the larger of the
// diagonal range and the total factor mass trace(WᵀW). Every tolerance
// below is relative to this, so 1e±150-scaled kernels behave like
// unit-scaled ones.
double OperatorScale(const Matrix& w, const Vector& diag, double* trace_out) {
  double trace = 0.0;
  for (int i = 0; i < w.rows(); ++i) {
    const double* wi = w.RowPtr(i);
    for (int c = 0; c < w.cols(); ++c) trace += wi[c] * wi[c];
  }
  *trace_out = trace;
  double scale = trace;
  for (int i = 0; i < diag.size(); ++i) {
    scale = std::max(scale, std::fabs(diag[i]));
  }
  return std::max(scale, std::numeric_limits<double>::min());
}

// H(t) = I_d + Wᵀ(D - t·I)⁻¹W into *h (d x d, fully symmetric fill).
// Diagonal entries within `pole_floor` of t are pushed to a signed
// `pole_floor` so the resolvent stays finite; the resulting count is the
// exact count of a perturbation of t no larger than pole_floor, which
// bisection absorbs.
void AssembleCapacitance(const Matrix& w, const Vector& diag, double t,
                         double pole_floor, Matrix* h) {
  const int n = w.rows();
  const int d = w.cols();
  for (int a = 0; a < d; ++a) {
    double* ha = h->RowPtr(a);
    for (int b = 0; b < d; ++b) ha[b] = 0.0;
  }
  for (int i = 0; i < n; ++i) {
    double s = diag[i] - t;
    if (std::fabs(s) < pole_floor) {
      s = std::copysign(pole_floor, s == 0.0 ? 1.0 : s);
    }
    const double inv = 1.0 / s;
    const double* wi = w.RowPtr(i);
    for (int a = 0; a < d; ++a) {
      const double f = wi[a] * inv;
      if (f == 0.0) continue;
      double* ha = h->RowPtr(a);
      for (int b = a; b < d; ++b) ha[b] += f * wi[b];
    }
  }
  for (int a = 0; a < d; ++a) {
    (*h)(a, a) += 1.0;
    for (int b = a + 1; b < d; ++b) (*h)(b, a) = (*h)(a, b);
  }
}

// Inertia of a symmetric d x d matrix. Fast path: unpivoted LDLᵀ, whose
// pivot signs carry the inertia (Sylvester). A pivot too small to
// classify — the factorization's breakdown case — falls back to a full
// eigendecomposition, which also supplies the zero count.
Result<Inertia> SymmetricInertia(const Matrix& h) {
  const int d = h.rows();
  const double max_abs = h.MaxAbs();
  if (!std::isfinite(max_abs)) {
    return Status::NumericalError(
        "factor-diag inertia: capacitance matrix is non-finite");
  }
  const double breakdown = std::max(max_abs, 1.0) * 1e-11;
  Matrix a = h;  // LDLᵀ works in place on the lower triangle.
  Inertia out;
  bool fell_back = false;
  for (int j = 0; j < d; ++j) {
    const double pivot = a(j, j);
    if (!std::isfinite(pivot) || std::fabs(pivot) <= breakdown) {
      fell_back = true;
      break;
    }
    if (pivot < 0.0) ++out.neg;
    const double inv = 1.0 / pivot;
    for (int i = j + 1; i < d; ++i) {
      const double lij = a(i, j) * inv;
      if (lij == 0.0) continue;
      for (int k = j + 1; k <= i; ++k) a(i, k) -= lij * a(k, j);
    }
  }
  if (!fell_back) return out;

  Result<EigenDecomposition> eig = SymmetricEigen(h);
  if (!eig.ok()) eig = SymmetricEigenJacobi(h);
  if (!eig.ok()) return eig.status();
  const Vector& lam = eig->eigenvalues;
  double lam_max = 0.0;
  for (int i = 0; i < lam.size(); ++i) {
    lam_max = std::max(lam_max, std::fabs(lam[i]));
  }
  const double ztol = static_cast<double>(d) * kEps * std::max(lam_max, 1.0);
  out = Inertia{};
  for (int i = 0; i < lam.size(); ++i) {
    if (lam[i] < -ztol) {
      ++out.neg;
    } else if (lam[i] <= ztol) {
      ++out.zero;
    }
  }
  return out;
}

// N(t) = #{λ(W·Wᵀ + D) < t} via Haynsworth:
//   N(t) = #{d_i < t} - n_neg(H(t)) - n_zero(H(t)).
Result<int> CountBelow(const Matrix& w, const Vector& diag, double t,
                       double pole_floor, Matrix* h_ws) {
  AssembleCapacitance(w, diag, t, pole_floor, h_ws);
  LKP_ASSIGN_OR_RETURN(Inertia inertia, SymmetricInertia(*h_ws));
  int below = 0;
  for (int i = 0; i < diag.size(); ++i) {
    if (diag[i] < t) ++below;
  }
  return below - inertia.neg - inertia.zero;
}

Status ValidateFactorDiag(const Matrix& w, const Vector& diag) {
  if (w.rows() < 1 || w.cols() < 1) {
    return Status::InvalidArgument(
        StrFormat("factor-diag spectrum requires a non-empty factor, got "
                  "%dx%d",
                  w.rows(), w.cols()));
  }
  if (diag.size() != w.rows()) {
    return Status::InvalidArgument(
        StrFormat("factor-diag diagonal length %d != factor rows %d",
                  diag.size(), w.rows()));
  }
  if (!w.AllFinite() || !diag.AllFinite()) {
    return Status::NumericalError(
        "factor-diag spectrum: non-finite factor or diagonal");
  }
  return Status::OK();
}

}  // namespace

Result<Vector> FactorDiagSpectrum(const Matrix& w, const Vector& diag) {
  LKP_RETURN_IF_ERROR(ValidateFactorDiag(w, diag));
  const int n = w.rows();
  const int d = w.cols();

  double trace = 0.0;
  const double scale = OperatorScale(w, diag, &trace);
  if (!std::isfinite(trace)) {
    return Status::NumericalError(
        "factor-diag spectrum: factor mass trace(WᵀW) overflowed double "
        "range");
  }

  std::vector<double> dsort(diag.begin(), diag.end());
  std::sort(dsort.begin(), dsort.end());
  Vector out(n);
  if (trace == 0.0) {
    // W ≡ 0: the operator IS the diagonal.
    for (int i = 0; i < n; ++i) out[i] = dsort[i];
    return out;
  }

  const double d_max = dsort[static_cast<size_t>(n - 1)];
  const double pole_floor = scale * kEps;
  Matrix h_ws(d, d);

  for (int i = 0; i < n; ++i) {
    // Weyl interlacing brackets for a rank-<=d PSD update of a diagonal:
    // d_(i) <= λ_i <= d_(i+d), with the top d brackets capped by the
    // largest possible shift, d_max + trace(WᵀW) >= d_max + λ_max(WWᵀ).
    double lo = dsort[static_cast<size_t>(i)];
    double hi = (i + d < n) ? dsort[static_cast<size_t>(i + d)]
                            : d_max + trace;
    for (int iter = 0; iter < 200; ++iter) {
      if (hi - lo <= 4.0 * kEps * std::max(std::fabs(lo), std::fabs(hi))) {
        break;
      }
      // Geometric midpoints cross magnitude decades in O(log) steps when
      // the bracket spans them; arithmetic bisection otherwise.
      double mid;
      if (lo > 0.0 && hi > 4.0 * lo) {
        mid = std::sqrt(lo) * std::sqrt(hi);
      } else {
        mid = lo + 0.5 * (hi - lo);
      }
      if (!(mid > lo && mid < hi)) break;  // Bracket exhausted in doubles.
      LKP_ASSIGN_OR_RETURN(int count,
                           CountBelow(w, diag, mid, pole_floor, &h_ws));
      if (count > i) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    out[i] = lo + 0.5 * (hi - lo);
  }
  // Independent bisections can land adjacent eigenvalues a final-bit out
  // of order; the ascending contract is part of the API.
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

// One degenerate cluster's worth of eigenvectors: the full,
// request-independent basis for spectrum columns [g0, g1]. Pole null
// vectors (supported on the rows whose diagonal entry equals the
// eigenvalue) come first, capacitance null vectors fill the rest; the
// whole set is jointly re-orthonormalized.
Result<std::vector<Vector>> ClusterBasis(const Matrix& w, const Vector& diag,
                                         double lam, int multiplicity,
                                         double tol, double pole_floor) {
  const int n = w.rows();
  const int d = w.cols();
  std::vector<Vector> basis;
  basis.reserve(static_cast<size_t>(multiplicity));

  // Pole group: rows whose diagonal entry coincides with the eigenvalue.
  // Any vector supported on G with W_Gᵀ·u_G = 0 is an exact eigenvector
  // (the factor contributes nothing along it and D acts as λ·I there);
  // the null space of W_G comes out of its |G| x |G| row Gram.
  std::vector<int> group;
  for (int i = 0; i < n; ++i) {
    if (std::fabs(diag[i] - lam) <= tol) group.push_back(i);
  }
  if (!group.empty()) {
    const int g = static_cast<int>(group.size());
    Matrix gram(g, g);
    for (int a = 0; a < g; ++a) {
      const double* wa = w.RowPtr(group[static_cast<size_t>(a)]);
      for (int b = a; b < g; ++b) {
        const double* wb = w.RowPtr(group[static_cast<size_t>(b)]);
        double dot = 0.0;
        for (int c = 0; c < d; ++c) dot += wa[c] * wb[c];
        gram(a, b) = dot;
        gram(b, a) = dot;
      }
    }
    Result<EigenDecomposition> geig = SymmetricEigen(gram);
    if (!geig.ok()) geig = SymmetricEigenJacobi(gram);
    if (!geig.ok()) return geig.status();
    double gmax = 0.0;
    for (int j = 0; j < g; ++j) {
      gmax = std::max(gmax, std::fabs(geig->eigenvalues[j]));
    }
    const double gtol = 64.0 * static_cast<double>(g) * kEps * gmax;
    for (int j = 0;
         j < g && geig->eigenvalues[j] <= gtol &&
         static_cast<int>(basis.size()) < multiplicity;
         ++j) {
      Vector u(n, 0.0);
      for (int a = 0; a < g; ++a) {
        u[group[static_cast<size_t>(a)]] = geig->eigenvectors(a, j);
      }
      basis.push_back(std::move(u));
    }
  }

  // Remaining multiplicity: null directions of the capacitance H(λ),
  // mapped back through the resolvent — u_i = (w_iᵀ·y)/(d_i - λ).
  const int remaining = multiplicity - static_cast<int>(basis.size());
  if (remaining > 0) {
    if (remaining > d) {
      return Status::NumericalError(
          StrFormat("factor-diag eigenvectors: eigenvalue multiplicity %d "
                    "exceeds pole null space plus capacitance dimension %d",
                    multiplicity, d));
    }
    Matrix h(d, d);
    AssembleCapacitance(w, diag, lam, pole_floor, &h);
    Result<EigenDecomposition> heig = SymmetricEigen(h);
    if (!heig.ok()) heig = SymmetricEigenJacobi(h);
    if (!heig.ok()) return heig.status();
    // Take the `remaining` capacitance eigenvectors nearest the null
    // space (smallest |μ|), in a deterministic order.
    std::vector<int> order(static_cast<size_t>(d));
    for (int j = 0; j < d; ++j) order[static_cast<size_t>(j)] = j;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const double ma = std::fabs(heig->eigenvalues[a]);
      const double mb = std::fabs(heig->eigenvalues[b]);
      if (ma != mb) return ma < mb;
      return a < b;
    });
    for (int t = 0; t < remaining; ++t) {
      const int j = order[static_cast<size_t>(t)];
      Vector u(n, 0.0);
      for (int i = 0; i < n; ++i) {
        double s = diag[i] - lam;
        if (std::fabs(s) < pole_floor) {
          s = std::copysign(pole_floor, s == 0.0 ? 1.0 : s);
        }
        const double* wi = w.RowPtr(i);
        double dot = 0.0;
        for (int c = 0; c < d; ++c) dot += wi[c] * heig->eigenvectors(c, j);
        u[i] = dot / s;
      }
      basis.push_back(std::move(u));
    }
  }

  // Joint modified Gram-Schmidt: pole and capacitance vectors together.
  for (size_t a = 0; a < basis.size(); ++a) {
    double pre = basis[a].Norm();
    if (!(pre > 0.0) || !std::isfinite(pre)) {
      return Status::NumericalError(
          "factor-diag eigenvectors: cluster basis vector vanished");
    }
    basis[a] *= 1.0 / pre;
    for (size_t b = 0; b < a; ++b) {
      const double r = basis[a].Dot(basis[b]);
      for (int i = 0; i < n; ++i) basis[a][i] -= r * basis[b][i];
    }
    const double post = basis[a].Norm();
    if (!(post > 1e-6) || !std::isfinite(post)) {
      return Status::NumericalError(
          "factor-diag eigenvectors: degenerate cluster basis collapsed "
          "under re-orthonormalization");
    }
    basis[a] *= 1.0 / post;
  }
  return basis;
}

}  // namespace

Result<Matrix> FactorDiagEigenvectors(const Matrix& w, const Vector& diag,
                                      const Vector& eigenvalues,
                                      const std::vector<int>& cols) {
  LKP_RETURN_IF_ERROR(ValidateFactorDiag(w, diag));
  const int n = w.rows();
  if (eigenvalues.size() != n) {
    return Status::InvalidArgument(
        StrFormat("factor-diag eigenvectors: spectrum length %d != ground "
                  "size %d",
                  eigenvalues.size(), n));
  }
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i] < 0 || cols[i] >= n) {
      return Status::OutOfRange(
          StrFormat("spectrum column %d outside [0, %d)", cols[i], n));
    }
    if (i > 0 && cols[i] <= cols[i - 1]) {
      return Status::InvalidArgument(
          "factor-diag eigenvectors: cols must be strictly ascending");
    }
  }
  Matrix out(n, static_cast<int>(cols.size()));
  if (cols.empty()) return out;

  double trace = 0.0;
  const double scale = OperatorScale(w, diag, &trace);
  const double tol = 64.0 * kEps * scale;
  const double pole_floor = scale * kEps;

  size_t p = 0;
  while (p < cols.size()) {
    // Extend the requested column to its full degenerate cluster in the
    // spectrum, independent of which columns were requested — this is
    // what makes separate partial requests hand out consistent vectors.
    int g0 = cols[p];
    while (g0 > 0 && eigenvalues[g0] - eigenvalues[g0 - 1] <= tol) --g0;
    int g1 = cols[p];
    while (g1 + 1 < n && eigenvalues[g1 + 1] - eigenvalues[g1] <= tol) ++g1;
    size_t q = p;
    while (q < cols.size() && cols[q] <= g1) ++q;

    double lam = 0.0;
    for (int j = g0; j <= g1; ++j) lam += eigenvalues[j];
    lam /= static_cast<double>(g1 - g0 + 1);

    LKP_ASSIGN_OR_RETURN(
        std::vector<Vector> basis,
        ClusterBasis(w, diag, lam, g1 - g0 + 1, tol, pole_floor));
    for (size_t r = p; r < q; ++r) {
      const Vector& u = basis[static_cast<size_t>(cols[r] - g0)];
      for (int i = 0; i < n; ++i) out(i, static_cast<int>(r)) = u[i];
    }
    p = q;
  }
  CanonicalizeColumnSigns(&out);
  return out;
}

Result<Vector> FactorDiagWeightedDiagonal(const Matrix& w, const Vector& diag,
                                          const Vector& eigenvalues,
                                          const Vector& weights) {
  const int n = w.rows();
  if (weights.size() != n || eigenvalues.size() != n) {
    return Status::InvalidArgument(
        StrFormat("factor-diag weighted diagonal: weights length %d / "
                  "spectrum length %d != ground size %d",
                  weights.size(), eigenvalues.size(), n));
  }
  Vector out(n, 0.0);
  constexpr int kChunk = 64;
  int c = 0;
  while (c < n) {
    const int e = std::min(c + kChunk, n);
    std::vector<int> cols;
    for (int j = c; j < e; ++j) {
      if (weights[j] != 0.0) cols.push_back(j);
    }
    c = e;
    if (cols.empty()) continue;
    LKP_ASSIGN_OR_RETURN(Matrix u,
                         FactorDiagEigenvectors(w, diag, eigenvalues, cols));
    for (size_t t = 0; t < cols.size(); ++t) {
      const double wt = weights[cols[t]];
      for (int i = 0; i < n; ++i) {
        const double v = u(i, static_cast<int>(t));
        out[i] += wt * v * v;
      }
    }
  }
  return out;
}

Result<Matrix> FactorDiagWeightedOuter(const Matrix& w, const Vector& diag,
                                       const Vector& eigenvalues,
                                       const Vector& weights) {
  const int n = w.rows();
  if (weights.size() != n || eigenvalues.size() != n) {
    return Status::InvalidArgument(
        StrFormat("factor-diag weighted outer: weights length %d / "
                  "spectrum length %d != ground size %d",
                  weights.size(), eigenvalues.size(), n));
  }
  Matrix out(n, n);
  constexpr int kChunk = 64;
  int c = 0;
  while (c < n) {
    const int e = std::min(c + kChunk, n);
    std::vector<int> cols;
    for (int j = c; j < e; ++j) {
      if (weights[j] != 0.0) cols.push_back(j);
    }
    c = e;
    if (cols.empty()) continue;
    LKP_ASSIGN_OR_RETURN(Matrix u,
                         FactorDiagEigenvectors(w, diag, eigenvalues, cols));
    for (size_t t = 0; t < cols.size(); ++t) {
      const double wt = weights[cols[t]];
      for (int i = 0; i < n; ++i) {
        const double ui = wt * u(i, static_cast<int>(t));
        if (ui == 0.0) continue;
        for (int j = 0; j < n; ++j) {
          out(i, j) += ui * u(j, static_cast<int>(t));
        }
      }
    }
  }
  out.Symmetrize();
  return out;
}

}  // namespace lkpdpp
