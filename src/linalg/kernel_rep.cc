#include "linalg/kernel_rep.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace lkpdpp {

const char* KernelRepKindName(KernelRepKind kind) {
  switch (kind) {
    case KernelRepKind::kPrimal:
      return "primal";
    case KernelRepKind::kFactorDiag:
      return "factor_diag";
    case KernelRepKind::kDiag:
      return "diag";
  }
  return "?";
}

PrimalKernelRep::PrimalKernelRep(Matrix kernel) : owned_(std::move(kernel)) {
  LKP_CHECK_EQ(owned_.rows(), owned_.cols());
  matrix_ = &owned_;
}

PrimalKernelRep PrimalKernelRep::View(const Matrix& kernel) {
  LKP_CHECK_EQ(kernel.rows(), kernel.cols());
  PrimalKernelRep rep;
  rep.matrix_ = &kernel;
  return rep;
}

void PrimalKernelRep::FillDiag(double* out) const {
  const int n = matrix_->rows();
  for (int i = 0; i < n; ++i) out[i] = (*matrix_)(i, i);
}

void PrimalKernelRep::FillRow(int j, double* out) const {
  const int n = matrix_->rows();
  const double* row = matrix_->RowPtr(j);
  for (int i = 0; i < n; ++i) out[i] = row[i];
}

double PrimalKernelRep::Entry(int i, int j) const { return (*matrix_)(i, j); }

Result<FactorDiagKernelRep> FactorDiagKernelRep::Create(Matrix v,
                                                        Vector scale,
                                                        double alpha,
                                                        double delta) {
  if (scale.size() != v.rows()) {
    return Status::InvalidArgument(
        StrFormat("scale length %d does not match factor rows %d",
                  scale.size(), v.rows()));
  }
  if (!(alpha >= 0.0) || !std::isfinite(alpha) || !(delta >= 0.0) ||
      !std::isfinite(delta)) {
    return Status::InvalidArgument(
        StrFormat("alpha=%.3g delta=%.3g must be finite and >= 0 to keep "
                  "the kernel PSD",
                  alpha, delta));
  }
  if (!scale.AllFinite()) {
    return Status::NumericalError("kernel rep scale has non-finite entries");
  }
  LKP_ASSIGN_OR_RETURN(LowRankFactor factor, LowRankFactor::Create(std::move(v)));
  return FactorDiagKernelRep(std::move(factor), std::move(scale), alpha,
                             delta);
}

// Entry arithmetic note: the three expressions below must stay in
// lockstep with the primal materialization pipeline (RowDots's
// ascending-column dot == DiversityKernel::Entry / naive-order GEMM,
// `dot * alpha` == Matrix::operator*=, `+ delta` == Matrix::AddDiagonal,
// and the left-to-right (s_row * t) * s_col == AssembleKernel's
// q_i * k * q_j with i the row index). Reordering any of them breaks
// the bit-exactness contract in the header.

void FactorDiagKernelRep::FillDiag(double* out) const {
  const int n = size();
  factor_.SquaredRowNorms(out);
  for (int i = 0; i < n; ++i) {
    double t = out[i] * alpha_;
    t += delta_;
    out[i] = (scale_[i] * t) * scale_[i];
  }
}

void FactorDiagKernelRep::FillRow(int j, double* out) const {
  const int n = size();
  factor_.RowDots(j, out);
  const double sj = scale_[j];
  for (int i = 0; i < n; ++i) {
    double t = out[i] * alpha_;
    if (i == j) t += delta_;
    out[i] = (sj * t) * scale_[i];
  }
}

double FactorDiagKernelRep::Entry(int i, int j) const {
  double t = factor_.RowDot(i, j) * alpha_;
  if (i == j) t += delta_;
  return (scale_[i] * t) * scale_[j];
}

Result<DiagKernelRep> DiagKernelRep::Create(Vector scale, double delta) {
  if (scale.size() < 1) {
    return Status::InvalidArgument("diag kernel rep needs >= 1 row");
  }
  if (!(delta >= 0.0) || !std::isfinite(delta)) {
    return Status::InvalidArgument(
        StrFormat("delta=%.3g must be finite and >= 0 to keep the kernel "
                  "PSD",
                  delta));
  }
  if (!scale.AllFinite()) {
    return Status::NumericalError("kernel rep scale has non-finite entries");
  }
  return DiagKernelRep(std::move(scale), delta);
}

// The (s_i * delta) * s_i grouping mirrors AssembleKernel's
// q_i * blended * q_j (left-to-right) with blended == ±0 + delta ==
// delta; see the class comment for why this is bit-exact vs primal.

void DiagKernelRep::FillDiag(double* out) const {
  const int n = size();
  for (int i = 0; i < n; ++i) out[i] = (scale_[i] * delta_) * scale_[i];
}

void DiagKernelRep::FillRow(int j, double* out) const {
  const int n = size();
  for (int i = 0; i < n; ++i) out[i] = 0.0;
  out[j] = (scale_[j] * delta_) * scale_[j];
}

double DiagKernelRep::Entry(int i, int j) const {
  if (i != j) return 0.0;
  return (scale_[i] * delta_) * scale_[i];
}

}  // namespace lkpdpp
