// Experiment runner: spec -> trained model -> metrics.
//
// Owns the training loop shared by every bench binary: per-epoch
// ground-set construction, per-batch autodiff graph, criterion gradient
// injection, Adam updates, periodic validation with best-parameter
// snapshots, and final test-set evaluation. The diversity kernel is
// trained once per (dataset, rank) and cached across specs, mirroring the
// paper's "pre-trained and fixed" protocol.

#ifndef LKPDPP_EXP_RUNNER_H_
#define LKPDPP_EXP_RUNNER_H_

#include <map>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/criterion.h"
#include "data/dataset.h"
#include "eval/evaluator.h"
#include "exp/spec.h"
#include "kernels/diversity_kernel.h"
#include "models/rec_model.h"
#include "serve/service.h"

namespace lkpdpp {

struct ExperimentResult {
  /// Test metrics at each requested cutoff, from the best-validation
  /// parameter snapshot.
  std::map<int, MetricSet> test_metrics;
  /// Epoch (1-based) whose snapshot won on validation.
  int best_epoch = 0;
  int epochs_run = 0;
  double best_validation_ndcg = 0.0;
  /// Mean training loss of the final epoch.
  double final_train_loss = 0.0;
  /// Validation NDCG trace (one entry per evaluation round).
  std::vector<double> validation_history;
  /// Wall time spent in the training loop proper (epoch construction,
  /// gradient computation, optimizer steps) — excludes validation and
  /// the final test evaluation. The quantity bench/train_throughput
  /// sweeps against thread count.
  double train_seconds = 0.0;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(const Dataset* dataset)
      : dataset_(dataset), evaluator_(dataset) {}

  /// Attaches a pool so training minibatches shard per instance (see
  /// opt/parallel_batch.h), the diversity-kernel pre-training shards
  /// per pair, and the per-epoch validation and final test evaluation
  /// fan out per user. Results stay bit-identical at any pool size —
  /// every parallel section reduces in a fixed order. Pass nullptr to
  /// go back to serial. The pool must outlive the runner's Run calls.
  void SetThreadPool(ThreadPool* pool) {
    pool_ = pool;
    evaluator_.SetThreadPool(pool);
  }
  ThreadPool* thread_pool() const { return pool_; }

  /// Trains per `spec` and evaluates at `cutoffs` (default 5/10/20).
  Result<ExperimentResult> Run(const ExperimentSpec& spec,
                               const std::vector<int>& cutoffs = {5, 10,
                                                                  20});

  /// Like Run, but also hands back the trained model (used by the case
  /// study and the probability probes).
  Result<ExperimentResult> RunAndKeepModel(
      const ExperimentSpec& spec, std::unique_ptr<RecModel>* model_out,
      const std::vector<int>& cutoffs = {5, 10, 20});

  /// The cached pre-learned diversity kernel for this dataset (training
  /// it on first use).
  Result<const DiversityKernel*> GetDiversityKernel();

  /// Builds the backbone for a spec (exposed for examples/tests).
  Result<std::unique_ptr<RecModel>> MakeModel(
      const ExperimentSpec& spec) const;

  /// Builds the criterion for a spec given the model's preferred quality
  /// transform.
  std::unique_ptr<RankingCriterion> MakeCriterion(
      const ExperimentSpec& spec, QualityTransform quality) const;

  /// Wraps a trained model in a serving engine over this runner's cached
  /// diversity kernel (training the kernel on first use) and attached
  /// thread pool. The model and this runner must outlive the service.
  /// If `config.quality` disagrees with the model's PreferredQuality it
  /// is overridden to match.
  Result<std::unique_ptr<RecommendationService>> MakeService(
      RecModel* model, ServeConfig config = ServeConfig{});

 private:
  const Dataset* dataset_;
  Evaluator evaluator_;
  ThreadPool* pool_ = nullptr;
  std::unique_ptr<DiversityKernel> cached_kernel_;
};

}  // namespace lkpdpp

#endif  // LKPDPP_EXP_RUNNER_H_
