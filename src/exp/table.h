// Paper-style metric table formatting shared by the bench binaries.

#ifndef LKPDPP_EXP_TABLE_H_
#define LKPDPP_EXP_TABLE_H_

#include <map>
#include <string>
#include <vector>

#include "eval/metrics.h"

namespace lkpdpp {

/// One method's row in a Table II/III/IV style report.
struct TableRow {
  std::string label;
  std::map<int, MetricSet> metrics;  // keyed by cutoff N
};

/// Prints "Method | Re@5 .. Re@20 | Nd@5 .. | CC@5 .. | F@5 .." with the
/// best value per column marked by '*'.
void PrintMetricTable(const std::string& title,
                      const std::vector<TableRow>& rows,
                      const std::vector<int>& cutoffs);

/// Percentage improvement of `ours` over `base` (positive = better).
double ImprovementPercent(double ours, double base);

}  // namespace lkpdpp

#endif  // LKPDPP_EXP_TABLE_H_
