#include "exp/spec.h"

namespace lkpdpp {

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kMf:
      return "MF";
    case ModelKind::kGcn:
      return "GCN";
    case ModelKind::kNeuMf:
      return "NeuMF";
    case ModelKind::kGcmc:
      return "GCMC";
  }
  return "?";
}

const char* CriterionKindName(CriterionKind kind) {
  switch (kind) {
    case CriterionKind::kBce:
      return "BCE";
    case CriterionKind::kBpr:
      return "BPR";
    case CriterionKind::kSetRank:
      return "SetRank";
    case CriterionKind::kSet2SetRank:
      return "S2SRank";
    case CriterionKind::kLkp:
      return "LkP";
  }
  return "?";
}

std::string ExperimentSpec::VariantName() const {
  if (criterion != CriterionKind::kLkp) {
    return CriterionKindName(criterion);
  }
  std::string name;
  if (lkp_mode == LkpMode::kNegativeAndPositive) name += "N";
  name += "P";
  name += (target_mode == TargetSelection::kSequential) ? "S" : "R";
  if (kernel_source == KernelSource::kEmbedding) name += "E";
  return name;
}

}  // namespace lkpdpp
