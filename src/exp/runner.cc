#include "exp/runner.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "kernels/gaussian_embedding.h"
#include "models/gcmc.h"
#include "models/gcn.h"
#include "models/mf.h"
#include "models/neumf.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/optimizer.h"
#include "opt/parallel_batch.h"

namespace lkpdpp {

namespace {

obs::Counter* TrainEpochsTotal() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "lkp_train_epochs_total");
  return counter;
}

// Snapshot / restore of parameter values around the best epoch.
std::vector<Matrix> SnapshotParams(const std::vector<ad::Param*>& params) {
  std::vector<Matrix> out;
  out.reserve(params.size());
  for (ad::Param* p : params) out.push_back(p->value);
  return out;
}

void RestoreParams(const std::vector<ad::Param*>& params,
                   const std::vector<Matrix>& snapshot) {
  LKP_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->value = snapshot[i];
  }
}

// Converts a (m x 1) score tensor value into a Vector.
Vector ColumnToVector(const Matrix& column) {
  LKP_CHECK_EQ(column.cols(), 1);
  Vector v(column.rows());
  for (int r = 0; r < column.rows(); ++r) v[r] = column(r, 0);
  return v;
}

Matrix VectorToColumn(const Vector& v) {
  Matrix m(v.size(), 1);
  for (int r = 0; r < v.size(); ++r) m(r, 0) = v[r];
  return m;
}

}  // namespace

Result<std::unique_ptr<RecModel>> ExperimentRunner::MakeModel(
    const ExperimentSpec& spec) const {
  switch (spec.model) {
    case ModelKind::kMf: {
      MfModel::Config cfg;
      cfg.embedding_dim = spec.embedding_dim;
      cfg.seed = spec.seed;
      return std::unique_ptr<RecModel>(std::make_unique<MfModel>(
          dataset_->num_users(), dataset_->num_items(), cfg));
    }
    case ModelKind::kGcn: {
      GcnModel::Config cfg;
      cfg.embedding_dim = spec.embedding_dim;
      cfg.seed = spec.seed;
      LKP_ASSIGN_OR_RETURN(std::unique_ptr<GcnModel> model,
                           GcnModel::Create(*dataset_, cfg));
      return std::unique_ptr<RecModel>(std::move(model));
    }
    case ModelKind::kNeuMf: {
      NeuMfModel::Config cfg;
      cfg.embedding_dim = spec.embedding_dim;
      cfg.seed = spec.seed;
      return std::unique_ptr<RecModel>(std::make_unique<NeuMfModel>(
          dataset_->num_users(), dataset_->num_items(), cfg));
    }
    case ModelKind::kGcmc: {
      GcmcModel::Config cfg;
      cfg.embedding_dim = spec.embedding_dim;
      cfg.hidden_dim = spec.embedding_dim;
      cfg.seed = spec.seed;
      LKP_ASSIGN_OR_RETURN(std::unique_ptr<GcmcModel> model,
                           GcmcModel::Create(*dataset_, cfg));
      return std::unique_ptr<RecModel>(std::move(model));
    }
  }
  return Status::InvalidArgument("unknown model kind");
}

std::unique_ptr<RankingCriterion> ExperimentRunner::MakeCriterion(
    const ExperimentSpec& spec, QualityTransform quality) const {
  switch (spec.criterion) {
    case CriterionKind::kBce:
      return MakeBceCriterion();
    case CriterionKind::kBpr:
      return MakeBprCriterion();
    case CriterionKind::kSetRank:
      return MakeSetRankCriterion();
    case CriterionKind::kSet2SetRank:
      return MakeSet2SetRankCriterion();
    case CriterionKind::kLkp: {
      LkpConfig cfg;
      cfg.mode = spec.lkp_mode;
      cfg.quality = quality;
      cfg.normalize = spec.lkp_normalize;
      return std::make_unique<LkpCriterion>(cfg);
    }
  }
  return nullptr;
}

Result<const DiversityKernel*> ExperimentRunner::GetDiversityKernel() {
  if (cached_kernel_ == nullptr) {
    DiversityKernel::TrainConfig cfg;
    cfg.rank = 16;
    cfg.epochs = 8;
    cfg.pairs_per_epoch = 300;
    cfg.set_size = 5;
    cfg.pool = pool_;  // Bit-identical with or without a pool.
    LKP_ASSIGN_OR_RETURN(DiversityKernel kernel,
                         DiversityKernel::Train(*dataset_, cfg));
    cached_kernel_ = std::make_unique<DiversityKernel>(std::move(kernel));
  }
  return cached_kernel_.get();
}

Result<std::unique_ptr<RecommendationService>> ExperimentRunner::MakeService(
    RecModel* model, ServeConfig config) {
  if (model == nullptr) {
    return Status::InvalidArgument("MakeService requires a trained model");
  }
  LKP_ASSIGN_OR_RETURN(const DiversityKernel* diversity,
                       GetDiversityKernel());
  config.quality = model->PreferredQuality();
  return RecommendationService::Create(dataset_, model, diversity, pool_,
                                       config);
}

Result<ExperimentResult> ExperimentRunner::Run(
    const ExperimentSpec& spec, const std::vector<int>& cutoffs) {
  std::unique_ptr<RecModel> model;
  return RunAndKeepModel(spec, &model, cutoffs);
}

Result<ExperimentResult> ExperimentRunner::RunAndKeepModel(
    const ExperimentSpec& spec, std::unique_ptr<RecModel>* model_out,
    const std::vector<int>& cutoffs) {
  if (spec.k < 1 || spec.n < 1) {
    return Status::InvalidArgument("spec requires k >= 1 and n >= 1");
  }
  if (spec.criterion == CriterionKind::kLkp &&
      spec.lkp_mode == LkpMode::kNegativeAndPositive && spec.k != spec.n) {
    return Status::InvalidArgument(
        "LkP-NPS requires n == k (Section III-B4)");
  }

  LKP_ASSIGN_OR_RETURN(std::unique_ptr<RecModel> model, MakeModel(spec));
  std::unique_ptr<RankingCriterion> criterion =
      MakeCriterion(spec, model->PreferredQuality());
  if (criterion == nullptr) {
    return Status::InvalidArgument("unknown criterion kind");
  }

  const bool needs_kernel = criterion->NeedsDiversityKernel();
  const bool e_type =
      needs_kernel && spec.kernel_source == KernelSource::kEmbedding;
  const DiversityKernel* diversity = nullptr;
  if (needs_kernel && !e_type) {
    LKP_ASSIGN_OR_RETURN(diversity, GetDiversityKernel());
  }

  GroundSetBuilder builder(dataset_, spec.k, spec.n, spec.target_mode);
  AdamOptimizer::AdamOptions opts;
  opts.learning_rate = spec.learning_rate;
  opts.weight_decay = spec.weight_decay;
  opts.clip_norm = spec.clip_norm;
  AdamOptimizer optimizer(opts);
  optimizer.SetThreadPool(pool_);
  const std::vector<ad::Param*> params = model->Params();
  Rng rng(spec.seed ^ 0xD1B54A32D192ED03ULL);

  ExperimentResult result;
  std::vector<Matrix> best_snapshot = SnapshotParams(params);
  double best_val = -1.0;
  int rounds_since_best = 0;

  for (int epoch = 1; epoch <= spec.epochs; ++epoch) {
    LKP_TRACE_SPAN("train.epoch");
    TrainEpochsTotal()->Inc();
    Stopwatch train_timer;
    LKP_ASSIGN_OR_RETURN(std::vector<TrainingInstance> instances,
                         builder.BuildEpoch(&rng));
    rng.Shuffle(&instances);

    double epoch_loss = 0.0;
    long counted = 0;
    for (size_t start = 0; start < instances.size();
         start += static_cast<size_t>(spec.batch_size)) {
      const size_t end = std::min(
          instances.size(), start + static_cast<size_t>(spec.batch_size));
      const int batch_count = static_cast<int>(end - start);
      const double inv_batch = 1.0 / static_cast<double>(batch_count);

      // Shared forward prefix (e.g. GCN propagation) runs once; the
      // instances then shard across the pool, each on a private graph,
      // with gradients reduced in instance order (bit-identical at any
      // thread count — see opt/parallel_batch.h).
      std::unique_ptr<RecModel::Batch> batch = model->StartBatch();

      auto build_instance =
          [&](int i, ad::Graph* graph) -> Result<InstanceGrad> {
        const TrainingInstance& inst =
            instances[start + static_cast<size_t>(i)];
        ad::Tensor score_t =
            batch->ScoreItems(graph, inst.user, inst.items);
        const Vector scores = ColumnToVector(score_t.value());

        CriterionInput in;
        in.scores = scores;
        in.num_pos = inst.num_pos;
        Matrix k_sub;
        ad::Tensor emb_t;
        if (needs_kernel) {
          if (e_type) {
            emb_t = batch->ItemRepresentations(graph, inst.items);
            k_sub = GaussianKernel(emb_t.value(), spec.gaussian_sigma);
            in.want_kernel_grad = true;
          } else {
            k_sub = diversity->Submatrix(inst.items);
            // Convex blend toward identity (see spec.kernel_blend_alpha).
            k_sub *= spec.kernel_blend_alpha;
            k_sub.AddDiagonal(1.0 - spec.kernel_blend_alpha);
          }
          in.diversity = &k_sub;
        }
        Result<CriterionOutput> out = criterion->Evaluate(in);
        if (!out.ok()) {
          // A single ill-conditioned instance (e.g. duplicate-category
          // kernel collapse) should not abort training; skip it
          // (reported through the summary, logged in instance order).
          InstanceGrad skip;
          skip.skip_reason = out.status();
          return skip;
        }
        InstanceGrad grad;
        grad.loss = out->loss;
        grad.seeds.emplace_back(score_t,
                                VectorToColumn(out->dscore) * inv_batch);
        if (e_type && !out->dkernel.empty()) {
          Matrix demb = GaussianKernelBackward(
              emb_t.value(), k_sub, out->dkernel, spec.gaussian_sigma);
          demb *= inv_batch;
          grad.seeds.emplace_back(emb_t, std::move(demb));
        }
        return grad;
      };

      LKP_ASSIGN_OR_RETURN(
          BatchGradSummary summary,
          AccumulateBatchGradients(batch_count, pool_, build_instance));
      for (const auto& [index, reason] : summary.skipped) {
        LKP_LOG(kDebug) << "skipping instance " << (start + index) << ": "
                        << reason.ToString();
      }
      if (summary.contributed == 0) continue;
      epoch_loss += summary.loss_sum;
      counted += summary.contributed;
      LKP_RETURN_IF_ERROR(batch->Finish());
      LKP_RETURN_IF_ERROR(optimizer.Step(params));
    }
    result.final_train_loss =
        counted > 0 ? epoch_loss / static_cast<double>(counted) : 0.0;
    result.epochs_run = epoch;
    result.train_seconds += train_timer.ElapsedSeconds();

    const bool eval_now =
        (epoch % spec.eval_every == 0) || epoch == spec.epochs;
    if (eval_now) {
      const double val = evaluator_.ValidationNdcg(model.get(), 10);
      result.validation_history.push_back(val);
      if (val > best_val) {
        best_val = val;
        result.best_epoch = epoch;
        best_snapshot = SnapshotParams(params);
        rounds_since_best = 0;
      } else if (spec.patience > 0 && ++rounds_since_best >= spec.patience) {
        break;
      }
    }
  }

  RestoreParams(params, best_snapshot);
  result.best_validation_ndcg = best_val;
  result.test_metrics = evaluator_.Evaluate(model.get(), cutoffs);
  if (model_out != nullptr) *model_out = std::move(model);
  return result;
}

}  // namespace lkpdpp
