// Declarative experiment specification.
//
// One ExperimentSpec captures everything Table II/III/IV and the figure
// sweeps vary: the backbone model, the optimization criterion, the LkP
// variant switches (PS/NPS x S/R x pre-learned/E kernel), the (k, n)
// ground-set shape, and optimizer hyperparameters. The runner in
// runner.h turns a spec into metrics.

#ifndef LKPDPP_EXP_SPEC_H_
#define LKPDPP_EXP_SPEC_H_

#include <string>

#include "core/lkp.h"
#include "sampling/ground_set_builder.h"

namespace lkpdpp {

enum class ModelKind { kMf, kGcn, kNeuMf, kGcmc };
enum class CriterionKind { kBce, kBpr, kSetRank, kSet2SetRank, kLkp };
enum class KernelSource {
  kPreLearned,  ///< Default: fixed kernel trained by Eq. 3.
  kEmbedding,   ///< "E": Gaussian kernel over trainable embeddings.
};

const char* ModelKindName(ModelKind kind);
const char* CriterionKindName(CriterionKind kind);

struct ExperimentSpec {
  ModelKind model = ModelKind::kGcn;
  CriterionKind criterion = CriterionKind::kLkp;

  // LkP-only switches.
  LkpMode lkp_mode = LkpMode::kNegativeAndPositive;
  TargetSelection target_mode = TargetSelection::kSequential;
  KernelSource kernel_source = KernelSource::kPreLearned;

  /// Ground-set shape; the paper's default is k = n = 5.
  int k = 5;
  int n = 5;

  int embedding_dim = 16;
  int epochs = 30;
  int batch_size = 64;
  double learning_rate = 0.02;
  double weight_decay = 1e-5;
  /// Validation cadence (epochs) and early-stop patience (in validation
  /// rounds without improvement; 0 disables early stopping).
  int eval_every = 3;
  int patience = 4;
  /// Bandwidth of the E-type Gaussian kernel.
  double gaussian_sigma = 1.0;
  /// Global gradient-norm clip (0 disables).
  double clip_norm = 5.0;
  /// Weight of the learned diversity kernel in the convex blend
  /// K' = alpha * K + (1 - alpha) * I used by LkP. Full-strength learned
  /// kernels produce near-singular submatrices for same-category target
  /// sets, whose huge repulsive gradients drown the relevance signal;
  /// the blend keeps the diversity ranking interpretation while bounding
  /// conditioning (see DESIGN.md §4).
  double kernel_blend_alpha = 0.4;
  /// ABLATION ONLY: disable the k-DPP normalizer (Section IV-B2).
  bool lkp_normalize = true;
  uint64_t seed = 123;

  /// Paper-style variant label: PR/PS/NPR/NPS/PSE/NPSE for LkP, the
  /// criterion name otherwise.
  std::string VariantName() const;
};

}  // namespace lkpdpp

#endif  // LKPDPP_EXP_SPEC_H_
