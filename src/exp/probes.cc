#include "exp/probes.h"

#include <algorithm>

#include "core/kdpp.h"
#include "kernels/quality_diversity.h"

namespace lkpdpp {

namespace {

// Ground-set kernel from the model's current scores and the diversity
// kernel, as LkP assembles it during training.
Result<Matrix> InstanceKernel(RecModel* model, const DiversityKernel& kernel,
                              const TrainingInstance& inst,
                              QualityTransform quality) {
  const Vector all_scores = model->ScoreAllItems(inst.user);
  Vector scores(inst.ground_size());
  for (int i = 0; i < inst.ground_size(); ++i) {
    scores[i] = all_scores[inst.items[static_cast<size_t>(i)]];
  }
  const Vector q = ApplyQuality(scores, quality);
  return AssembleKernel(q, kernel.Submatrix(inst.items));
}

}  // namespace

Result<TargetCountProbe> ProbeProbabilityByTargetCount(
    RecModel* model, const Dataset& dataset, const DiversityKernel& kernel,
    int k, int n, int num_instances, QualityTransform quality, Rng* rng) {
  GroundSetBuilder builder(&dataset, k, n, TargetSelection::kSequential);
  model->PrepareForEval();

  TargetCountProbe probe;
  probe.mean_probability.assign(static_cast<size_t>(k) + 1, 0.0);
  std::vector<long> group_sizes(static_cast<size_t>(k) + 1, 0);

  int used = 0;
  int attempts = 0;
  while (used < num_instances && attempts < num_instances * 20) {
    ++attempts;
    const int user = rng->UniformInt(dataset.num_users());
    LKP_ASSIGN_OR_RETURN(std::vector<TrainingInstance> insts,
                         builder.BuildForUser(user, rng));
    if (insts.empty()) continue;
    const TrainingInstance& inst =
        insts[static_cast<size_t>(rng->UniformInt(
            static_cast<int>(insts.size())))];

    LKP_ASSIGN_OR_RETURN(Matrix l,
                         InstanceKernel(model, kernel, inst, quality));
    Result<KDpp> kdpp = KDpp::Create(std::move(l), k);
    if (!kdpp.ok()) continue;  // Rank-deficient corner; skip.
    LKP_ASSIGN_OR_RETURN(auto subsets, kdpp->EnumerateProbabilities());
    for (const auto& [subset, prob] : subsets) {
      int targets = 0;
      for (int idx : subset) {
        if (idx < k) ++targets;
      }
      probe.mean_probability[static_cast<size_t>(targets)] += prob;
      ++group_sizes[static_cast<size_t>(targets)];
    }
    ++used;
  }
  if (used == 0) {
    return Status::FailedPrecondition(
        "no usable ground sets for the probability probe");
  }
  for (size_t g = 0; g < probe.mean_probability.size(); ++g) {
    if (group_sizes[g] > 0) {
      probe.mean_probability[g] /= static_cast<double>(group_sizes[g]);
    }
  }
  probe.instances_used = used;
  return probe;
}

Result<DiversityProbe> ProbeDiverseVsMonotonous(
    RecModel* model, const Dataset& dataset, const DiversityKernel& kernel,
    int k, int n, int num_instances, QualityTransform quality,
    int low_categories, int high_categories, Rng* rng) {
  GroundSetBuilder builder(&dataset, k, n, TargetSelection::kSequential);
  model->PrepareForEval();

  DiversityProbe probe;
  int used = 0;
  int attempts = 0;
  while (used < num_instances && attempts < num_instances * 40) {
    ++attempts;
    const int user = rng->UniformInt(dataset.num_users());
    LKP_ASSIGN_OR_RETURN(std::vector<TrainingInstance> insts,
                         builder.BuildForUser(user, rng));
    if (insts.empty()) continue;
    const TrainingInstance& inst =
        insts[static_cast<size_t>(rng->UniformInt(
            static_cast<int>(insts.size())))];

    // Count distinct categories across the k targets.
    std::vector<bool> seen(static_cast<size_t>(dataset.num_categories()),
                           false);
    int categories = 0;
    for (int i = 0; i < inst.num_pos; ++i) {
      for (int c :
           dataset.ItemCategories(inst.items[static_cast<size_t>(i)])) {
        if (!seen[static_cast<size_t>(c)]) {
          seen[static_cast<size_t>(c)] = true;
          ++categories;
        }
      }
    }
    const bool diverse = categories >= high_categories;
    const bool monotonous = categories <= low_categories;
    if (!diverse && !monotonous) continue;

    LKP_ASSIGN_OR_RETURN(Matrix l,
                         InstanceKernel(model, kernel, inst, quality));
    Result<KDpp> kdpp = KDpp::Create(std::move(l), k);
    if (!kdpp.ok()) continue;
    std::vector<int> target_idx(static_cast<size_t>(k));
    for (int i = 0; i < k; ++i) target_idx[static_cast<size_t>(i)] = i;
    LKP_ASSIGN_OR_RETURN(double prob, kdpp->Prob(target_idx));

    if (diverse) {
      probe.diverse_mean += prob;
      ++probe.diverse_count;
    } else {
      probe.monotonous_mean += prob;
      ++probe.monotonous_count;
    }
    ++used;
  }
  if (probe.diverse_count > 0) probe.diverse_mean /= probe.diverse_count;
  if (probe.monotonous_count > 0) {
    probe.monotonous_mean /= probe.monotonous_count;
  }
  return probe;
}

}  // namespace lkpdpp
