// Probability-ranking probes behind Figure 4 and the Section IV-B2
// diversity analysis.
//
// Figure 4 groups all C(k+n, k) subsets of sampled ground sets by how
// many targets they contain and plots the mean k-DPP probability per
// group across training epochs: relevance-ranking interpretation means
// the all-target group's probability grows past uniform (1/C(k+n,k))
// while mostly-negative groups sink. The diversity probe contrasts the
// mean target-set probability of category-diverse vs monotonous target
// sets across distinct k-DPP distributions.

#ifndef LKPDPP_EXP_PROBES_H_
#define LKPDPP_EXP_PROBES_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "kernels/diversity_kernel.h"
#include "kernels/quality_diversity.h"
#include "models/rec_model.h"
#include "sampling/ground_set_builder.h"

namespace lkpdpp {

/// Mean k-DPP probability of subsets grouped by target count (index g =
/// number of targets in the subset, g in [0, k]); averaged over
/// `num_instances` sampled ground sets.
struct TargetCountProbe {
  /// mean_probability[g] for g targets; sums over groups weighted by
  /// group sizes to ~1.
  std::vector<double> mean_probability;
  int instances_used = 0;
};

Result<TargetCountProbe> ProbeProbabilityByTargetCount(
    RecModel* model, const Dataset& dataset, const DiversityKernel& kernel,
    int k, int n, int num_instances, QualityTransform quality, Rng* rng);

/// Mean target-subset probability for diverse (>= `high_categories`
/// distinct categories in the target set) vs monotonous (<=
/// `low_categories`) training instances.
struct DiversityProbe {
  double diverse_mean = 0.0;
  double monotonous_mean = 0.0;
  int diverse_count = 0;
  int monotonous_count = 0;
};

Result<DiversityProbe> ProbeDiverseVsMonotonous(
    RecModel* model, const Dataset& dataset, const DiversityKernel& kernel,
    int k, int n, int num_instances, QualityTransform quality,
    int low_categories, int high_categories, Rng* rng);

}  // namespace lkpdpp

#endif  // LKPDPP_EXP_PROBES_H_
