#include "exp/table.h"

#include <cstdio>

#include "common/string_util.h"

namespace lkpdpp {

namespace {

double Pick(const MetricSet& m, int which) {
  switch (which) {
    case 0:
      return m.recall;
    case 1:
      return m.ndcg;
    case 2:
      return m.category_coverage;
    default:
      return m.f_score;
  }
}

const char* MetricShortName(int which) {
  switch (which) {
    case 0:
      return "Re";
    case 1:
      return "Nd";
    case 2:
      return "CC";
    default:
      return "F";
  }
}

}  // namespace

void PrintMetricTable(const std::string& title,
                      const std::vector<TableRow>& rows,
                      const std::vector<int>& cutoffs) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-14s", "Method");
  for (int which = 0; which < 4; ++which) {
    for (int n : cutoffs) {
      std::printf(" %9s", StrFormat("%s@%d", MetricShortName(which), n)
                              .c_str());
    }
  }
  std::printf("\n");

  // Column-wise best for the '*' marker.
  std::vector<double> best(4 * cutoffs.size(), -1.0);
  for (const TableRow& row : rows) {
    int col = 0;
    for (int which = 0; which < 4; ++which) {
      for (int n : cutoffs) {
        const auto it = row.metrics.find(n);
        if (it != row.metrics.end()) {
          best[static_cast<size_t>(col)] =
              std::max(best[static_cast<size_t>(col)],
                       Pick(it->second, which));
        }
        ++col;
      }
    }
  }

  for (const TableRow& row : rows) {
    std::printf("%-14s", row.label.c_str());
    int col = 0;
    for (int which = 0; which < 4; ++which) {
      for (int n : cutoffs) {
        const auto it = row.metrics.find(n);
        if (it == row.metrics.end()) {
          std::printf(" %9s", "-");
        } else {
          const double v = Pick(it->second, which);
          const bool is_best = v >= best[static_cast<size_t>(col)] - 1e-12;
          std::printf(" %8.4f%s", v, is_best ? "*" : " ");
        }
        ++col;
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

double ImprovementPercent(double ours, double base) {
  if (base == 0.0) return 0.0;
  return 100.0 * (ours - base) / base;
}

}  // namespace lkpdpp
