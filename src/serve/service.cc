#include "serve/service.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/map_inference.h"
#include "linalg/low_rank.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lkpdpp {

namespace {

// Process-wide serving metrics. Handles are resolved once per site; the
// hot-path cost is one sharded-atomic increment (see obs/metrics.h).
obs::Counter* DualPathTotal() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "lkp_serve_dual_path_total");
  return counter;
}
obs::Counter* PrimalPathTotal() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "lkp_serve_primal_path_total");
  return counter;
}
obs::Counter* EigSkippedTotal() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "lkp_kernel_cache_eig_skipped_total");
  return counter;
}
obs::Counter* DiagPathTotal() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "lkp_serve_diag_path_total");
  return counter;
}
obs::Gauge* ModelVersionGauge() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Global().GetGauge(
      "lkp_model_version");
  return gauge;
}
obs::Histogram* UpdateApplyMs() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "lkp_serve_update_apply_ms", obs::LatencyBucketsMs());
  return histogram;
}
obs::Gauge* AdmissionQueueDepth() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Global().GetGauge(
      "lkp_serve_admission_queue_depth");
  return gauge;
}
obs::Histogram* AdmissionWaitMs() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "lkp_serve_admission_wait_ms", obs::LatencyBucketsMs());
  return histogram;
}
obs::Counter* ServeNumericalErrors() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "lkp_numerical_errors_total{site=\"serve\"}");
  return counter;
}
// Per-path build counters: exactly one of these increments per kernel
// build, keyed by the representation that actually got built. The legacy
// lkp_serve_{dual,primal,diag}_path_total counters stay for dashboard
// continuity but attribute more coarsely.
obs::Counter* PathTotal(ServePath path) {
  static obs::Counter* primal = obs::MetricsRegistry::Global().GetCounter(
      "lkp_serve_path_total{path=\"primal\"}");
  static obs::Counter* dual_sample =
      obs::MetricsRegistry::Global().GetCounter(
          "lkp_serve_path_total{path=\"dual_sample\"}");
  static obs::Counter* factor_diag_sample =
      obs::MetricsRegistry::Global().GetCounter(
          "lkp_serve_path_total{path=\"factor_diag_sample\"}");
  static obs::Counter* factor_map =
      obs::MetricsRegistry::Global().GetCounter(
          "lkp_serve_path_total{path=\"factor_map\"}");
  static obs::Counter* diag_map = obs::MetricsRegistry::Global().GetCounter(
      "lkp_serve_path_total{path=\"diag_map\"}");
  switch (path) {
    case ServePath::kPrimal:
      return primal;
    case ServePath::kDualSample:
      return dual_sample;
    case ServePath::kFactorDiagSample:
      return factor_diag_sample;
    case ServePath::kFactorMap:
      return factor_map;
    case ServePath::kDiagMap:
      return diag_map;
  }
  return primal;
}
obs::Counter* ApproxFallbackTotal() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "lkp_serve_approx_fallback_total");
  return counter;
}

// Counts a stage failure into the by-site NumericalError counter when
// that is what it is (other codes pass through untouched).
const Status& CountIfNumerical(const Status& s) {
  if (s.code() == StatusCode::kNumericalError) ServeNumericalErrors()->Inc();
  return s;
}

}  // namespace

const char* ServeModeName(ServeMode mode) {
  switch (mode) {
    case ServeMode::kMapRerank:
      return "map_rerank";
    case ServeMode::kSample:
      return "sample";
  }
  return "?";
}

const char* ServePathName(ServePath path) {
  switch (path) {
    case ServePath::kPrimal:
      return "primal";
    case ServePath::kDualSample:
      return "dual_sample";
    case ServePath::kFactorDiagSample:
      return "factor_diag_sample";
    case ServePath::kFactorMap:
      return "factor_map";
    case ServePath::kDiagMap:
      return "diag_map";
  }
  return "?";
}

RecommendationService::RecommendationService(
    const Dataset* dataset, RecModel* model,
    std::unique_ptr<const ServingKernelSource> source, ThreadPool* pool,
    ServeConfig config)
    : dataset_(dataset),
      model_(model),
      source_(std::move(source)),
      pool_(pool),
      config_(config),
      cache_(config.cache_capacity, config.cache_shards),
      master_rng_(config.seed) {}

RecommendationService::~RecommendationService() {
  {
    std::lock_guard<std::mutex> lk(adm_mu_);
    adm_stop_ = true;
  }
  adm_cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
}

namespace {

// Shared shape/range validation for both Create overloads. Every real-
// valued field uses the NaN-safe form !(x >= lo && x <= hi): a plain
// `x < lo || x > hi` passes NaN straight through (all comparisons with
// NaN are false) and the service then silently serves garbage blends —
// the exact bug this check replaces.
Status ValidateServeConfig(const ServeConfig& config) {
  if (config.top_k < 1) {
    return Status::InvalidArgument(
        StrFormat("top_k=%d must be >= 1", config.top_k));
  }
  if (config.pool_size < config.top_k) {
    return Status::InvalidArgument(
        StrFormat("pool_size=%d must be >= top_k=%d", config.pool_size,
                  config.top_k));
  }
  if (!(config.kernel_blend_alpha >= 0.0 &&
        config.kernel_blend_alpha <= 1.0)) {
    return Status::InvalidArgument(
        StrFormat("kernel_blend_alpha=%.3f outside [0, 1]",
                  config.kernel_blend_alpha));
  }
  if (config.cache_capacity < 0) {
    return Status::InvalidArgument("cache_capacity must be >= 0");
  }
  if (config.cache_shards < 1) {
    return Status::InvalidArgument("cache_shards must be >= 1");
  }
  if (config.max_batch_size < 1) {
    return Status::InvalidArgument(
        StrFormat("max_batch_size=%d must be >= 1", config.max_batch_size));
  }
  if (!(config.batch_deadline_ms >= 0.0) ||
      !std::isfinite(config.batch_deadline_ms)) {
    return Status::InvalidArgument(
        "batch_deadline_ms must be finite and >= 0");
  }
  if (config.parallel_grain < 0) {
    return Status::InvalidArgument("parallel_grain must be >= 0");
  }
  if (config.approx_factor_rank < 0) {
    return Status::InvalidArgument("approx_factor_rank must be >= 0");
  }
  if (!(config.approx_error_budget >= 0.0) ||
      !std::isfinite(config.approx_error_budget)) {
    return Status::InvalidArgument(
        "approx_error_budget must be finite and >= 0");
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<RecommendationService>> RecommendationService::Create(
    const Dataset* dataset, RecModel* model, const DiversityKernel* diversity,
    ThreadPool* pool, ServeConfig config) {
  if (dataset == nullptr || model == nullptr || diversity == nullptr) {
    return Status::InvalidArgument(
        "serving requires dataset, model, and diversity kernel");
  }
  LKP_RETURN_IF_ERROR(ValidateServeConfig(config));
  if (model->num_items() != dataset->num_items()) {
    return Status::InvalidArgument(
        StrFormat("model covers %d items but dataset has %d",
                  model->num_items(), dataset->num_items()));
  }
  if (diversity->num_items() != dataset->num_items()) {
    return Status::InvalidArgument(
        StrFormat("diversity kernel covers %d items but dataset has %d",
                  diversity->num_items(), dataset->num_items()));
  }
  model->PrepareForEval();
  return std::unique_ptr<RecommendationService>(new RecommendationService(
      dataset, model, std::make_unique<DiversityKernelSource>(diversity),
      pool, config));
}

Result<std::unique_ptr<RecommendationService>>
RecommendationService::CreateGaussian(const Dataset* dataset, RecModel* model,
                                      Matrix item_embeddings, double sigma,
                                      ThreadPool* pool, ServeConfig config) {
  if (dataset == nullptr || model == nullptr) {
    return Status::InvalidArgument("serving requires dataset and model");
  }
  LKP_RETURN_IF_ERROR(ValidateServeConfig(config));
  if (!(sigma > 0.0) || !std::isfinite(sigma)) {
    return Status::InvalidArgument(
        StrFormat("sigma must be finite and positive, got %g", sigma));
  }
  if (model->num_items() != dataset->num_items()) {
    return Status::InvalidArgument(
        StrFormat("model covers %d items but dataset has %d",
                  model->num_items(), dataset->num_items()));
  }
  if (item_embeddings.rows() != dataset->num_items()) {
    return Status::InvalidArgument(
        StrFormat("embeddings cover %d items but dataset has %d",
                  item_embeddings.rows(), dataset->num_items()));
  }
  model->PrepareForEval();
  auto source = std::make_unique<GaussianKernelSource>(
      std::move(item_embeddings), sigma, config.approx_factor_rank);
  return std::unique_ptr<RecommendationService>(new RecommendationService(
      dataset, model, std::move(source), pool, config));
}

void RecommendationService::InvalidateModel() {
  // Full-invalidation fallback: quiesce in-flight batches the same way
  // ApplyUpdate does, then nuke everything.
  std::unique_lock<std::shared_mutex> epoch_lk(epoch_mu_);
  model_->PrepareForEval();
  cache_.Clear();
}

uint64_t RecommendationService::ApplyUpdate(const UpdateFn& mutate) {
  LKP_TRACE_SPAN("serve.apply_update");
  Stopwatch timer;
  std::unique_lock<std::shared_mutex> epoch_lk(epoch_mu_);
  std::vector<int> touched_users;
  std::vector<int> touched_items;
  mutate(&touched_users, &touched_items);
  cache_.InvalidateUsers(touched_users);
  cache_.InvalidateItems(touched_items);
  const uint64_t version =
      model_version_.fetch_add(1, std::memory_order_relaxed) + 1;
  ModelVersionGauge()->Set(static_cast<double>(version));
  UpdateApplyMs()->Observe(timer.ElapsedMillis());
  return version;
}

int RecommendationService::StageGrain(int n) const {
  if (pool_ == nullptr) return 1;
  if (config_.parallel_grain > 0) return config_.parallel_grain;
  return pool_->GrainFor(n);
}

Result<RecommendationService::UserWork> RecommendationService::PrepareUser(
    int user, const Vector& scores) {
  LKP_TRACE_SPAN("serve.prepare_user");
  Stopwatch timer;
  UserWork work;
  work.pool = GroundSetBuilder::BuildServingPool(*dataset_, user, scores,
                                                 config_.pool_size);
  if (work.pool.empty()) {
    work.kernel_ms = timer.ElapsedMillis();
    return work;  // Fully saturated user: nothing left to recommend.
  }
  const int effective_k =
      std::min(config_.top_k, static_cast<int>(work.pool.size()));

  const uint64_t hash = HashGroundSet(work.pool);
  // The expensive build, run by the cache with no shard lock held and at
  // most once per key even under concurrent misses (in-flight guard).
  auto build = [&]() -> Result<std::shared_ptr<const ServedKernel>> {
    Vector pool_scores(static_cast<int>(work.pool.size()));
    for (size_t i = 0; i < work.pool.size(); ++i) {
      pool_scores[static_cast<int>(i)] = scores[work.pool[i]];
    }
    const Vector quality = ApplyQuality(pool_scores, config_.quality);

    auto built = std::make_shared<ServedKernel>();
    built->items = work.pool;
    built->model_version = model_version();
    const double alpha = config_.kernel_blend_alpha;
    if (config_.mode == ServeMode::kMapRerank && !config_.force_primal &&
        alpha == 0.0) {
      // alpha == 0 degenerates the blend to Diag(q)·(delta·I)·Diag(q):
      // pure diagonal, so neither the factor rows nor the materialized
      // submatrix is worth building. O(pool) memory, bit-identical
      // selections vs both (see DiagKernelRep).
      LKP_TRACE_SPAN("serve.diag_rep_build");
      EigSkippedTotal()->Inc();
      DiagPathTotal()->Inc();
      PathTotal(ServePath::kDiagMap)->Inc();
      LKP_ASSIGN_OR_RETURN(DiagKernelRep rep,
                           DiagKernelRep::Create(quality, 1.0 - alpha));
      built->rep = std::make_shared<const DiagKernelRep>(std::move(rep));
      return std::shared_ptr<const ServedKernel>(std::move(built));
    }
    // Thin factor paths. Approximate sources pass a per-pool gate: use
    // the factor only when its computed entry-error bound fits the
    // opted-in budget, else fall through to the exact primal build.
    const bool thin_wanted =
        config_.mode == ServeMode::kSample
            ? IsDualEligible(work.pool)
            : UseFactorRep(work.pool);
    if (thin_wanted) {
      LKP_ASSIGN_OR_RETURN(ServingKernelSource::ThinFactor thin,
                           source_->PoolFactor(work.pool));
      if (source_->exact() ||
          thin.entry_error_bound <= config_.approx_error_budget) {
        if (config_.mode == ServeMode::kSample && alpha == 1.0) {
          // The conditioned kernel is exactly Diag(q) K_S Diag(q) with
          // K_S = F_S F_S^T, so condition in factor space (ScaleRows)
          // and build the dual k-DPP — O(n d^2) instead of O(n^3), no
          // n x n materialization.
          LKP_TRACE_SPAN("serve.dual_build");
          DualPathTotal()->Inc();
          PathTotal(ServePath::kDualSample)->Inc();
          LKP_ASSIGN_OR_RETURN(LowRankFactor factor,
                               LowRankFactor::Create(std::move(thin.rows)));
          LKP_ASSIGN_OR_RETURN(
              KDpp kdpp,
              KDpp::CreateDual(factor.ScaleRows(quality), effective_k));
          built->kdpp = std::make_shared<const KDpp>(std::move(kdpp));
        } else if (config_.mode == ServeMode::kSample) {
          // 0 < alpha < 1: the conditioned kernel is
          //   Diag(q)(alpha K_S + (1-alpha) I)Diag(q) = W W^T + D,
          //   W = sqrt(alpha) Diag(q) F_S,  D = (1-alpha) Diag(q^2).
          // The factor-diag k-DPP computes the exact full spectrum from
          // that shape (linalg/factor_diag.h) — never pool x pool.
          LKP_TRACE_SPAN("serve.factor_diag_build");
          PathTotal(ServePath::kFactorDiagSample)->Inc();
          const int n = static_cast<int>(work.pool.size());
          const double sqrt_alpha = std::sqrt(alpha);
          Vector w_scale(n);
          Vector added(n);
          for (int i = 0; i < n; ++i) {
            w_scale[i] = sqrt_alpha * quality[i];
            added[i] = (1.0 - alpha) * quality[i] * quality[i];
          }
          LKP_ASSIGN_OR_RETURN(LowRankFactor factor,
                               LowRankFactor::Create(std::move(thin.rows)));
          LKP_ASSIGN_OR_RETURN(
              KDpp kdpp,
              KDpp::CreateFactorDiag(factor.ScaleRows(w_scale),
                                     std::move(added), effective_k));
          built->kdpp = std::make_shared<const KDpp>(std::move(kdpp));
        } else {
          // Greedy MAP only reads entries, so the blended conditioned
          // kernel rides as factor + diagonal — O(pool * rank) to build
          // and store versus O(pool^2 * rank) to materialize, and no
          // eigendecomposition either way (MAP entries never decompose).
          LKP_TRACE_SPAN("serve.factor_rep_build");
          EigSkippedTotal()->Inc();
          PathTotal(ServePath::kFactorMap)->Inc();
          LKP_ASSIGN_OR_RETURN(
              FactorDiagKernelRep rep,
              FactorDiagKernelRep::Create(std::move(thin.rows), quality,
                                          alpha, 1.0 - alpha));
          built->rep =
              std::make_shared<const FactorDiagKernelRep>(std::move(rep));
        }
        return std::shared_ptr<const ServedKernel>(std::move(built));
      }
      ApproxFallbackTotal()->Inc();
    }
    Matrix conditioned;
    {
      LKP_TRACE_SPAN("serve.kernel_assemble");
      Matrix k_sub = source_->PoolSubmatrix(work.pool);
      k_sub *= alpha;
      k_sub.AddDiagonal(1.0 - alpha);
      conditioned = AssembleKernel(quality, k_sub);
    }
    PathTotal(ServePath::kPrimal)->Inc();
    if (config_.mode == ServeMode::kSample) {
      LKP_TRACE_SPAN("serve.eigendecomp");
      PrimalPathTotal()->Inc();
      // KDpp keeps its own copy of the kernel, so hand ours over rather
      // than storing it twice per cache entry.
      LKP_ASSIGN_OR_RETURN(
          KDpp kdpp, KDpp::Create(std::move(conditioned), effective_k));
      built->kdpp = std::make_shared<const KDpp>(std::move(kdpp));
    } else {
      EigSkippedTotal()->Inc();
      PrimalPathTotal()->Inc();
      built->rep = std::make_shared<const PrimalKernelRep>(
          std::move(conditioned));
    }
    return std::shared_ptr<const ServedKernel>(std::move(built));
  };
  LKP_ASSIGN_OR_RETURN(
      work.entry,
      cache_.GetOrBuild(user, hash, work.pool, build, &work.cache_hit));
  work.kernel_ms = timer.ElapsedMillis();
  return work;
}

bool RecommendationService::IsDualEligible(
    const std::vector<int>& pool) const {
  // Thin sampling needs a factor thinner than the pool and a nonzero
  // diversity blend: alpha == 1 serves through the low-rank dual,
  // 0 < alpha < 1 through the exact factor-plus-diagonal spectrum
  // (linalg/factor_diag.h) — the full-rank diagonal the blend adds is no
  // longer a blocker. alpha == 0 stays primal: the kernel degenerates to
  // a diagonal and the primal build is already trivial there.
  const int rank = source_->ThinRank(static_cast<int>(pool.size()));
  return !config_.force_primal && config_.kernel_blend_alpha > 0.0 &&
         rank > 0 && rank < static_cast<int>(pool.size());
}

bool RecommendationService::UseFactorRep(const std::vector<int>& pool) const {
  // MAP rerank reads kernel ENTRIES only, and every entry of the blended
  // conditioned kernel is computable from the thin factor plus the blend
  // scalars (FactorDiagKernelRep) — so unlike the sampling paths, any
  // alpha qualifies. The factor rep wins whenever it is thinner than
  // the pool: greedy then costs O(k n d + k^2 n) instead of the
  // O(n^2 d) materialization alone.
  const int rank = source_->ThinRank(static_cast<int>(pool.size()));
  return !config_.force_primal && rank > 0 &&
         rank < static_cast<int>(pool.size());
}

Result<RecResponse> RecommendationService::SelectTopK(int user,
                                                      const UserWork& work,
                                                      Rng* rng) {
  Stopwatch timer;
  RecResponse response;
  response.user = user;
  response.cache_hit = work.cache_hit;
  if (work.entry == nullptr) {
    response.latency_ms = work.kernel_ms;
    return response;
  }
  // Attribute the request to the representation that actually served it.
  // (The old derivation lumped factor-backed MAP in with dual sampling;
  // the enum keeps every path distinct, and dual_path stays as the
  // coarse thin-vs-materialized bool.)
  if (work.entry->kdpp != nullptr) {
    response.path = work.entry->kdpp->is_dual()
                        ? ServePath::kDualSample
                        : work.entry->kdpp->is_factor_diag()
                              ? ServePath::kFactorDiagSample
                              : ServePath::kPrimal;
  } else if (work.entry->rep != nullptr) {
    switch (work.entry->rep->kind()) {
      case KernelRepKind::kFactorDiag:
        response.path = ServePath::kFactorMap;
        break;
      case KernelRepKind::kDiag:
        response.path = ServePath::kDiagMap;
        break;
      case KernelRepKind::kPrimal:
        response.path = ServePath::kPrimal;
        break;
    }
  }
  response.dual_path = response.path == ServePath::kDualSample ||
                       response.path == ServePath::kFactorDiagSample ||
                       response.path == ServePath::kFactorMap;
  const int effective_k =
      std::min(config_.top_k, static_cast<int>(work.pool.size()));

  std::vector<int> local;
  switch (config_.mode) {
    case ServeMode::kMapRerank: {
      LKP_TRACE_SPAN("serve.map_rerank");
      GreedyMapOptions opts;
      opts.max_size = effective_k;
      LKP_ASSIGN_OR_RETURN(local,
                           GreedyMapInference(*work.entry->rep, opts));
      if (static_cast<int>(local.size()) < effective_k) {
        // Rank-deficient corner: backfill by score order so every
        // response still carries exactly effective_k items.
        std::vector<bool> taken(work.pool.size(), false);
        for (int idx : local) taken[static_cast<size_t>(idx)] = true;
        for (size_t i = 0;
             i < work.pool.size() &&
             static_cast<int>(local.size()) < effective_k;
             ++i) {
          if (!taken[i]) local.push_back(static_cast<int>(i));
        }
      }
      break;
    }
    case ServeMode::kSample: {
      LKP_TRACE_SPAN("serve.sample");
      // Ascending pool-local indices == descending score, since the pool
      // is built in descending-score order.
      LKP_ASSIGN_OR_RETURN(local, work.entry->kdpp->Sample(rng));
      break;
    }
  }
  response.items.reserve(local.size());
  for (int idx : local) {
    response.items.push_back(work.pool[static_cast<size_t>(idx)]);
  }
  // A request's latency is its user's kernel stage plus its own
  // selection; duplicate requests for one user each report the shared
  // kernel cost once.
  response.latency_ms = work.kernel_ms + timer.ElapsedMillis();
  return response;
}

Result<std::vector<RecResponse>> RecommendationService::HandleBatch(
    const std::vector<RecRequest>& batch) {
  LKP_TRACE_SPAN("serve.batch");
  Stopwatch batch_timer;
  if (batch.empty()) return std::vector<RecResponse>{};
  // Epoch barrier (shared side): held for the whole batch so every
  // response in it is computed against exactly one model version.
  // Pool workers never acquire this lock — only the batch's entry
  // thread — so fanning the stages out below cannot deadlock.
  std::shared_lock<std::shared_mutex> epoch_lk(epoch_mu_);
  for (const RecRequest& req : batch) {
    if (req.user < 0 || req.user >= dataset_->num_users()) {
      return Status::OutOfRange(
          StrFormat("user %d outside [0, %d)", req.user,
                    dataset_->num_users()));
    }
  }

  // Stage 1: score each unique user's catalog once, in one parallel pass.
  std::unordered_map<int, int> slot_of_user;
  std::vector<int> unique_users;
  std::vector<int> request_slot(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    auto [it, inserted] = slot_of_user.emplace(
        batch[i].user, static_cast<int>(unique_users.size()));
    if (inserted) unique_users.push_back(batch[i].user);
    request_slot[i] = it->second;
  }
  const int num_unique = static_cast<int>(unique_users.size());
  std::vector<Vector> scores(unique_users.size());
  auto score_user = [&](int i) {
    scores[static_cast<size_t>(i)] =
        model_->ScoreAllItems(unique_users[static_cast<size_t>(i)]);
  };
  {
    LKP_TRACE_SPAN("serve.score");
    if (pool_ != nullptr) {
      pool_->ParallelFor(num_unique, StageGrain(num_unique), score_user);
    } else {
      for (int i = 0; i < num_unique; ++i) score_user(i);
    }
  }

  // Stage 2: fork one Rng per request in request order. Fork order is
  // independent of thread count AND of batch slicing, which is what
  // keeps sampling-mode responses bit-identical under any parallelism
  // and under async admission.
  std::vector<Rng> rngs;
  if (config_.mode == ServeMode::kSample) {
    rngs.reserve(batch.size());
    std::lock_guard<std::mutex> lk(rng_mu_);
    for (size_t i = 0; i < batch.size(); ++i) {
      rngs.push_back(master_rng_.Fork());
    }
  }

  // Stage 3: kernel work once per unique user — duplicate requests for
  // a user share the O(n^3) build even when the cache is cold or off
  // (and, through the cache's in-flight guard, even across concurrent
  // batches). Grain stays 1: per-user cost is large and uneven (hit vs
  // O(n^3) miss), so fine-grained claiming balances best.
  std::vector<UserWork> works(unique_users.size());
  std::vector<Status> user_statuses(unique_users.size(), Status::OK());
  auto prepare_user = [&](int i) {
    const size_t idx = static_cast<size_t>(i);
    Result<UserWork> w = PrepareUser(unique_users[idx], scores[idx]);
    if (w.ok()) {
      works[idx] = std::move(w).ValueOrDie();
    } else {
      user_statuses[idx] = w.status();
    }
  };
  {
    LKP_TRACE_SPAN("serve.prepare");
    if (pool_ != nullptr) {
      pool_->ParallelFor(num_unique, prepare_user);
    } else {
      for (int i = 0; i < num_unique; ++i) prepare_user(i);
    }
  }
  for (const Status& s : user_statuses) {
    if (!s.ok()) return CountIfNumerical(s);
  }

  // Stage 4: per-request selection, fanned out over the pool.
  std::vector<RecResponse> responses(batch.size());
  std::vector<Status> statuses(batch.size(), Status::OK());
  auto serve_request = [&](int i) {
    const size_t idx = static_cast<size_t>(i);
    Rng* rng = rngs.empty() ? nullptr : &rngs[idx];
    Result<RecResponse> r =
        SelectTopK(batch[idx].user,
                   works[static_cast<size_t>(request_slot[idx])], rng);
    if (r.ok()) {
      responses[idx] = std::move(r).ValueOrDie();
    } else {
      statuses[idx] = r.status();
    }
  };
  const int num_requests = static_cast<int>(batch.size());
  {
    LKP_TRACE_SPAN("serve.select");
    if (pool_ != nullptr) {
      pool_->ParallelFor(num_requests, StageGrain(num_requests),
                         serve_request);
    } else {
      for (int i = 0; i < num_requests; ++i) serve_request(i);
    }
  }
  for (const Status& s : statuses) {
    if (!s.ok()) return CountIfNumerical(s);
  }

  LKP_TRACE_SPAN("serve.respond");
  std::vector<double> latencies;
  latencies.reserve(responses.size());
  for (const RecResponse& r : responses) latencies.push_back(r.latency_ms);
  recorder_.RecordBatch(static_cast<long>(batch.size()),
                        batch_timer.ElapsedSeconds(), latencies.data(),
                        latencies.size());
  return responses;
}

Result<RecResponse> RecommendationService::HandleOne(int user) {
  LKP_ASSIGN_OR_RETURN(std::vector<RecResponse> responses,
                       HandleBatch({RecRequest{user}}));
  return responses.front();
}

std::future<Result<RecResponse>> RecommendationService::SubmitAsync(
    const RecRequest& request) {
  std::future<Result<RecResponse>> future;
  {
    std::lock_guard<std::mutex> lk(adm_mu_);
    if (!batcher_started_) {
      batcher_started_ = true;
      batcher_ = std::thread([this] { BatcherLoop(); });
    }
    const auto now = std::chrono::steady_clock::now();
    if (adm_queue_.empty()) {
      adm_oldest_ = now;
    }
    adm_queue_.emplace_back();
    adm_queue_.back().request = request;
    adm_queue_.back().enqueue = now;
    future = adm_queue_.back().promise.get_future();
    AdmissionQueueDepth()->Add(1.0);
  }
  adm_cv_.notify_one();
  return future;
}

void RecommendationService::Flush() {
  std::unique_lock<std::mutex> lk(adm_mu_);
  if (adm_queue_.empty() && !adm_busy_) return;
  adm_flush_ = true;
  adm_cv_.notify_all();
  adm_idle_cv_.wait(lk, [this] { return adm_queue_.empty() && !adm_busy_; });
}

void RecommendationService::BatcherLoop() {
  std::unique_lock<std::mutex> lk(adm_mu_);
  while (true) {
    adm_cv_.wait(lk, [this] { return adm_stop_ || !adm_queue_.empty(); });
    if (adm_queue_.empty()) {
      if (adm_stop_) return;
      continue;
    }
    // Occupancy/deadline window: flush early when the batch fills, at
    // the deadline otherwise. Stop/Flush cut the wait short.
    const auto deadline =
        adm_oldest_ + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              config_.batch_deadline_ms));
    adm_cv_.wait_until(lk, deadline, [this] {
      return adm_stop_ || adm_flush_ ||
             static_cast<int>(adm_queue_.size()) >= config_.max_batch_size;
    });
    const size_t take = std::min(
        adm_queue_.size(), static_cast<size_t>(config_.max_batch_size));
    std::vector<Pending> pending;
    pending.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      pending.push_back(std::move(adm_queue_.front()));
      adm_queue_.pop_front();
    }
    AdmissionQueueDepth()->Add(-static_cast<double>(take));
    // Each request's enqueue -> dequeue wait, as a histogram and (when
    // tracing) one span per request anchored at its enqueue instant.
    {
      const auto dequeued = std::chrono::steady_clock::now();
      obs::Histogram* wait_hist = AdmissionWaitMs();
      const bool traced = obs::TraceEnabled();
      for (const Pending& p : pending) {
        const double wait_ms =
            std::chrono::duration<double, std::milli>(dequeued - p.enqueue)
                .count();
        wait_hist->Observe(wait_ms);
        if (traced) {
          obs::RecordSpan("serve.admission_wait",
                          obs::ToTraceMicros(p.enqueue), wait_ms * 1e3);
        }
      }
    }
    if (!adm_queue_.empty()) {
      // The remainder became the oldest pending work just now as far as
      // the deadline is concerned (its true arrival is at most one
      // deadline old, so worst-case wait stays bounded by 2x).
      adm_oldest_ = std::chrono::steady_clock::now();
    } else {
      adm_flush_ = false;
    }
    adm_busy_ = true;
    lk.unlock();

    if (config_.on_batch_for_test) {
      config_.on_batch_for_test(static_cast<int>(pending.size()));
    }

    std::vector<RecRequest> batch;
    {
      LKP_TRACE_SPAN("serve.batch_assembly");
      batch.reserve(pending.size());
      for (const Pending& p : pending) batch.push_back(p.request);
    }
    Result<std::vector<RecResponse>> served = HandleBatch(batch);
    if (served.ok()) {
      for (size_t i = 0; i < pending.size(); ++i) {
        pending[i].promise.set_value(std::move((*served)[i]));
      }
    } else {
      for (Pending& p : pending) {
        p.promise.set_value(served.status());
      }
    }

    lk.lock();
    adm_busy_ = false;
    if (adm_queue_.empty()) {
      // Flush rendezvous complete: nothing queued, nothing in flight.
      // Resetting the flag HERE (not only when a take drains the queue
      // above) closes a leak — a Flush() issued while the batcher was
      // busy with the queue already empty used to leave adm_flush_ set,
      // and the NEXT batch skipped its occupancy/deadline window.
      adm_flush_ = false;
      adm_idle_cv_.notify_all();
      if (adm_stop_) return;
    }
  }
}

ServeStats RecommendationService::Snapshot() const {
  ServeStats out;
  recorder_.Snapshot(&out);
  out.cache_hits = cache_.hits();
  out.cache_misses = cache_.misses();
  return out;
}

void RecommendationService::ResetStats() {
  recorder_.Reset();
  cache_.ResetCounters();
}

}  // namespace lkpdpp
