#include "serve/service.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/map_inference.h"
#include "linalg/low_rank.h"

namespace lkpdpp {

const char* ServeModeName(ServeMode mode) {
  switch (mode) {
    case ServeMode::kMapRerank:
      return "map_rerank";
    case ServeMode::kSample:
      return "sample";
  }
  return "?";
}

RecommendationService::RecommendationService(const Dataset* dataset,
                                             RecModel* model,
                                             const DiversityKernel* diversity,
                                             ThreadPool* pool,
                                             ServeConfig config)
    : dataset_(dataset),
      model_(model),
      diversity_(diversity),
      pool_(pool),
      config_(config),
      cache_(config.cache_capacity),
      master_rng_(config.seed) {}

Result<std::unique_ptr<RecommendationService>> RecommendationService::Create(
    const Dataset* dataset, RecModel* model, const DiversityKernel* diversity,
    ThreadPool* pool, ServeConfig config) {
  if (dataset == nullptr || model == nullptr || diversity == nullptr) {
    return Status::InvalidArgument(
        "serving requires dataset, model, and diversity kernel");
  }
  if (config.top_k < 1) {
    return Status::InvalidArgument(
        StrFormat("top_k=%d must be >= 1", config.top_k));
  }
  if (config.pool_size < config.top_k) {
    return Status::InvalidArgument(
        StrFormat("pool_size=%d must be >= top_k=%d", config.pool_size,
                  config.top_k));
  }
  if (config.kernel_blend_alpha < 0.0 || config.kernel_blend_alpha > 1.0) {
    return Status::InvalidArgument(
        StrFormat("kernel_blend_alpha=%.3f outside [0, 1]",
                  config.kernel_blend_alpha));
  }
  if (config.cache_capacity < 0) {
    return Status::InvalidArgument("cache_capacity must be >= 0");
  }
  if (model->num_items() != dataset->num_items()) {
    return Status::InvalidArgument(
        StrFormat("model covers %d items but dataset has %d",
                  model->num_items(), dataset->num_items()));
  }
  if (diversity->num_items() != dataset->num_items()) {
    return Status::InvalidArgument(
        StrFormat("diversity kernel covers %d items but dataset has %d",
                  diversity->num_items(), dataset->num_items()));
  }
  model->PrepareForEval();
  return std::unique_ptr<RecommendationService>(new RecommendationService(
      dataset, model, diversity, pool, config));
}

void RecommendationService::InvalidateModel() {
  model_->PrepareForEval();
  cache_.Clear();
}

Result<RecommendationService::UserWork> RecommendationService::PrepareUser(
    int user, const Vector& scores) {
  Stopwatch timer;
  UserWork work;
  work.pool = GroundSetBuilder::BuildServingPool(*dataset_, user, scores,
                                                 config_.pool_size);
  if (work.pool.empty()) {
    work.kernel_ms = timer.ElapsedMillis();
    return work;  // Fully saturated user: nothing left to recommend.
  }
  const int effective_k =
      std::min(config_.top_k, static_cast<int>(work.pool.size()));

  const uint64_t hash = HashGroundSet(work.pool);
  std::shared_ptr<const ServedKernel> entry = cache_.Get(user, hash);
  if (entry != nullptr && entry->items != work.pool) {
    // 64-bit hash collision: rebuild rather than serve a kernel that was
    // conditioned on a different ground set.
    entry = nullptr;
  }
  work.cache_hit = entry != nullptr;
  if (entry == nullptr) {
    Vector pool_scores(static_cast<int>(work.pool.size()));
    for (size_t i = 0; i < work.pool.size(); ++i) {
      pool_scores[static_cast<int>(i)] = scores[work.pool[i]];
    }
    const Vector quality = ApplyQuality(pool_scores, config_.quality);

    auto built = std::make_shared<ServedKernel>();
    built->items = work.pool;
    if (config_.mode == ServeMode::kSample && UseDualPath(work.pool)) {
      // The conditioned kernel is exactly Diag(q) K_S Diag(q) with
      // K_S = F_S F_S^T, so condition in factor space (ScaleRows) and
      // build the dual k-DPP — O(n d^2) instead of O(n^3), no n x n
      // materialization.
      LKP_ASSIGN_OR_RETURN(
          LowRankFactor factor,
          LowRankFactor::Create(diversity_->FactorRows(work.pool)));
      LKP_ASSIGN_OR_RETURN(
          KDpp kdpp,
          KDpp::CreateDual(factor.ScaleRows(quality), effective_k));
      built->kdpp = std::make_shared<const KDpp>(std::move(kdpp));
    } else {
      Matrix k_sub = diversity_->Submatrix(work.pool);
      k_sub *= config_.kernel_blend_alpha;
      k_sub.AddDiagonal(1.0 - config_.kernel_blend_alpha);
      Matrix conditioned = AssembleKernel(quality, k_sub);
      if (config_.mode == ServeMode::kSample) {
        // KDpp keeps its own copy of the kernel, so hand ours over rather
        // than storing it twice per cache entry.
        LKP_ASSIGN_OR_RETURN(
            KDpp kdpp, KDpp::Create(std::move(conditioned), effective_k));
        built->kdpp = std::make_shared<const KDpp>(std::move(kdpp));
      } else {
        built->kernel = std::move(conditioned);
      }
    }
    cache_.Put(user, hash, built);
    entry = std::move(built);
  }
  work.entry = std::move(entry);
  work.kernel_ms = timer.ElapsedMillis();
  return work;
}

bool RecommendationService::UseDualPath(const std::vector<int>& pool) const {
  // The dual representation is exact only when the conditioned kernel
  // is itself low-rank, i.e. the identity blend vanishes (alpha == 1);
  // any alpha < 1 adds a full-rank diagonal the factor cannot carry.
  // Profitable only when the factor is thinner than the pool.
  return !config_.force_primal && config_.kernel_blend_alpha == 1.0 &&
         diversity_->rank() < static_cast<int>(pool.size());
}

Result<RecResponse> RecommendationService::SelectTopK(int user,
                                                      const UserWork& work,
                                                      Rng* rng) {
  Stopwatch timer;
  RecResponse response;
  response.user = user;
  response.cache_hit = work.cache_hit;
  if (work.entry == nullptr) {
    response.latency_ms = work.kernel_ms;
    return response;
  }
  response.dual_path =
      work.entry->kdpp != nullptr && work.entry->kdpp->is_dual();
  const int effective_k =
      std::min(config_.top_k, static_cast<int>(work.pool.size()));

  std::vector<int> local;
  switch (config_.mode) {
    case ServeMode::kMapRerank: {
      GreedyMapOptions opts;
      opts.max_size = effective_k;
      LKP_ASSIGN_OR_RETURN(local,
                           GreedyMapInference(work.entry->kernel, opts));
      if (static_cast<int>(local.size()) < effective_k) {
        // Rank-deficient corner: backfill by score order so every
        // response still carries exactly effective_k items.
        std::vector<bool> taken(work.pool.size(), false);
        for (int idx : local) taken[static_cast<size_t>(idx)] = true;
        for (size_t i = 0;
             i < work.pool.size() &&
             static_cast<int>(local.size()) < effective_k;
             ++i) {
          if (!taken[i]) local.push_back(static_cast<int>(i));
        }
      }
      break;
    }
    case ServeMode::kSample: {
      // Ascending pool-local indices == descending score, since the pool
      // is built in descending-score order.
      LKP_ASSIGN_OR_RETURN(local, work.entry->kdpp->Sample(rng));
      break;
    }
  }
  response.items.reserve(local.size());
  for (int idx : local) {
    response.items.push_back(work.pool[static_cast<size_t>(idx)]);
  }
  // A request's latency is its user's kernel stage plus its own
  // selection; duplicate requests for one user each report the shared
  // kernel cost once.
  response.latency_ms = work.kernel_ms + timer.ElapsedMillis();
  return response;
}

Result<std::vector<RecResponse>> RecommendationService::HandleBatch(
    const std::vector<RecRequest>& batch) {
  Stopwatch batch_timer;
  if (batch.empty()) return std::vector<RecResponse>{};
  for (const RecRequest& req : batch) {
    if (req.user < 0 || req.user >= dataset_->num_users()) {
      return Status::OutOfRange(
          StrFormat("user %d outside [0, %d)", req.user,
                    dataset_->num_users()));
    }
  }

  // Stage 1: score each unique user's catalog once, in one parallel pass.
  std::unordered_map<int, int> slot_of_user;
  std::vector<int> unique_users;
  std::vector<int> request_slot(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    auto [it, inserted] = slot_of_user.emplace(
        batch[i].user, static_cast<int>(unique_users.size()));
    if (inserted) unique_users.push_back(batch[i].user);
    request_slot[i] = it->second;
  }
  std::vector<Vector> scores(unique_users.size());
  auto score_user = [&](int i) {
    scores[static_cast<size_t>(i)] =
        model_->ScoreAllItems(unique_users[static_cast<size_t>(i)]);
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(static_cast<int>(unique_users.size()), score_user);
  } else {
    for (int i = 0; i < static_cast<int>(unique_users.size()); ++i) {
      score_user(i);
    }
  }

  // Stage 2: fork one Rng per request in request order. Fork order is
  // independent of thread count, which is what keeps sampling-mode
  // responses bit-identical under any parallelism.
  std::vector<Rng> rngs;
  if (config_.mode == ServeMode::kSample) {
    rngs.reserve(batch.size());
    std::lock_guard<std::mutex> lk(rng_mu_);
    for (size_t i = 0; i < batch.size(); ++i) {
      rngs.push_back(master_rng_.Fork());
    }
  }

  // Stage 3: kernel work once per unique user — duplicate requests for
  // a user share the O(n^3) build even when the cache is cold or off.
  std::vector<UserWork> works(unique_users.size());
  std::vector<Status> user_statuses(unique_users.size(), Status::OK());
  auto prepare_user = [&](int i) {
    const size_t idx = static_cast<size_t>(i);
    Result<UserWork> w = PrepareUser(unique_users[idx], scores[idx]);
    if (w.ok()) {
      works[idx] = std::move(w).ValueOrDie();
    } else {
      user_statuses[idx] = w.status();
    }
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(static_cast<int>(unique_users.size()), prepare_user);
  } else {
    for (int i = 0; i < static_cast<int>(unique_users.size()); ++i) {
      prepare_user(i);
    }
  }
  for (const Status& s : user_statuses) {
    if (!s.ok()) return s;
  }

  // Stage 4: per-request selection, fanned out over the pool.
  std::vector<RecResponse> responses(batch.size());
  std::vector<Status> statuses(batch.size(), Status::OK());
  auto serve_request = [&](int i) {
    const size_t idx = static_cast<size_t>(i);
    Rng* rng = rngs.empty() ? nullptr : &rngs[idx];
    Result<RecResponse> r =
        SelectTopK(batch[idx].user,
                   works[static_cast<size_t>(request_slot[idx])], rng);
    if (r.ok()) {
      responses[idx] = std::move(r).ValueOrDie();
    } else {
      statuses[idx] = r.status();
    }
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(static_cast<int>(batch.size()), serve_request);
  } else {
    for (int i = 0; i < static_cast<int>(batch.size()); ++i) {
      serve_request(i);
    }
  }
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }

  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    requests_ += static_cast<long>(batch.size());
    ++batches_;
    batch_wall_seconds_ += batch_timer.ElapsedSeconds();
    for (const RecResponse& r : responses) {
      if (latencies_ms_.size() < kLatencyWindow) {
        latencies_ms_.push_back(r.latency_ms);
      } else {
        latencies_ms_[latency_cursor_] = r.latency_ms;
        latency_cursor_ = (latency_cursor_ + 1) % kLatencyWindow;
      }
    }
  }
  return responses;
}

Result<RecResponse> RecommendationService::HandleOne(int user) {
  LKP_ASSIGN_OR_RETURN(std::vector<RecResponse> responses,
                       HandleBatch({RecRequest{user}}));
  return responses.front();
}

ServeStats RecommendationService::Snapshot() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  ServeStats out;
  out.requests = requests_;
  out.batches = batches_;
  out.cache_hits = cache_.hits();
  out.cache_misses = cache_.misses();
  out.mean_batch_occupancy =
      batches_ > 0 ? static_cast<double>(requests_) / batches_ : 0.0;
  if (!latencies_ms_.empty()) {
    // One sorted copy serves every percentile (nearest-rank).
    std::vector<double> sorted = latencies_ms_;
    std::sort(sorted.begin(), sorted.end());
    out.latency_p50_ms = PercentileOfSorted(sorted, 0.50);
    out.latency_p95_ms = PercentileOfSorted(sorted, 0.95);
    out.latency_p99_ms = PercentileOfSorted(sorted, 0.99);
    out.latency_max_ms = sorted.back();
  }
  out.wall_seconds = batch_wall_seconds_;
  out.throughput_rps =
      batch_wall_seconds_ > 0.0 ? requests_ / batch_wall_seconds_ : 0.0;
  return out;
}

void RecommendationService::ResetStats() {
  std::lock_guard<std::mutex> lk(stats_mu_);
  requests_ = 0;
  batches_ = 0;
  batch_wall_seconds_ = 0.0;
  latencies_ms_.clear();
  latency_cursor_ = 0;
  cache_.ResetCounters();
}

}  // namespace lkpdpp
