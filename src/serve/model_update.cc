#include "serve/model_update.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/parallel_batch.h"
#include "sampling/negative_sampler.h"

namespace lkpdpp {

namespace {

obs::Counter* UpdateEventsTotal() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "lkp_serve_update_events_total");
  return counter;
}
obs::Counter* UpdateEventsSkippedTotal() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "lkp_serve_update_events_skipped_total");
  return counter;
}
obs::Counter* UpdateKernelPairsTotal() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "lkp_serve_update_kernel_pairs_total");
  return counter;
}
obs::Histogram* UpdateStalenessMs() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "lkp_serve_update_staleness_ms", obs::LatencyBucketsMs());
  return histogram;
}

// Numerically stable sigma(t) and softplus(t) = log(1 + e^t); the BPR
// loss per (pos, neg) is softplus(-(s_pos - s_neg)) and its score
// gradient is -sigma(-(s_pos - s_neg)).
double StableSigmoid(double t) {
  if (t >= 0.0) return 1.0 / (1.0 + std::exp(-t));
  const double e = std::exp(t);
  return e / (1.0 + e);
}
double StableSoftplus(double t) {
  return std::max(t, 0.0) + std::log1p(std::exp(-std::abs(t)));
}

// theta -= lr * (grad + l2 * theta) on exactly `rows`, then re-zeroes
// those grad rows so the shared accumulator keeps its all-zero
// invariant for the next batch (the row-sparse analogue of
// Optimizer::Step + ZeroGrad, without the O(table) sweep).
void SgdStepRows(ad::Param* param, const std::vector<int>& rows, double lr,
                 double l2) {
  const int cols = param->value.cols();
  for (const int r : rows) {
    for (int c = 0; c < cols; ++c) {
      const double g = param->grad(r, c) + l2 * param->value(r, c);
      param->value(r, c) -= lr * g;
      param->grad(r, c) = 0.0;
    }
  }
}

}  // namespace

ModelUpdater::ModelUpdater(const Dataset* dataset, RecModel* model,
                           DiversityKernel* diversity,
                           RecommendationService* service,
                           UpdateConfig config)
    : dataset_(dataset),
      model_(model),
      diversity_(diversity),
      service_(service),
      config_(config),
      pair_sampler_(dataset, config.kernel_set_size),
      rng_(config.seed) {}

Result<std::unique_ptr<ModelUpdater>> ModelUpdater::Create(
    const Dataset* dataset, RecModel* model, DiversityKernel* diversity,
    RecommendationService* service, UpdateConfig config) {
  if (dataset == nullptr || model == nullptr || diversity == nullptr ||
      service == nullptr) {
    return Status::InvalidArgument(
        "streaming updates require dataset, model, diversity kernel, and "
        "service");
  }
  if (!(config.mf_learning_rate >= 0.0) ||
      !std::isfinite(config.mf_learning_rate) || !(config.mf_l2 >= 0.0) ||
      !std::isfinite(config.mf_l2)) {
    return Status::InvalidArgument(
        "mf_learning_rate and mf_l2 must be finite and >= 0");
  }
  if (config.negatives_per_event < 1) {
    return Status::InvalidArgument("negatives_per_event must be >= 1");
  }
  if (config.max_batch_events < 1) {
    return Status::InvalidArgument("max_batch_events must be >= 1");
  }
  if (config.update_kernel) {
    if (!(config.kernel_learning_rate >= 0.0) ||
        !std::isfinite(config.kernel_learning_rate)) {
      return Status::InvalidArgument(
          "kernel_learning_rate must be finite and >= 0");
    }
    if (!(config.kernel_jitter >= 0.0) ||
        !std::isfinite(config.kernel_jitter)) {
      return Status::InvalidArgument(
          "kernel_jitter must be finite and >= 0");
    }
    if (config.kernel_set_size < 1 ||
        config.kernel_set_size > diversity->rank()) {
      return Status::InvalidArgument(
          StrFormat("kernel_set_size=%d outside [1, rank=%d] (determinants "
                    "would vanish)",
                    config.kernel_set_size, diversity->rank()));
    }
  }
  if (diversity->num_items() != dataset->num_items()) {
    return Status::InvalidArgument(
        StrFormat("diversity kernel covers %d items but dataset has %d",
                  diversity->num_items(), dataset->num_items()));
  }
  // Row-sparse fold-in needs direct row-indexed tables: Params() ==
  // {user table, item table}. Models with a shared forward prefix (GCN)
  // spread one event's gradient over the whole graph — reject them.
  std::vector<ad::Param*> params = model->Params();
  if (params.size() != 2 ||
      params[0]->value.rows() != model->num_users() ||
      params[1]->value.rows() != model->num_items()) {
    return Status::InvalidArgument(
        StrFormat("streaming fold-in supports row-sparse (MF-style) models "
                  "only: expected Params() == {user table, item table}, got "
                  "%zu params",
                  params.size()));
  }
  return std::unique_ptr<ModelUpdater>(new ModelUpdater(
      dataset, model, diversity, service, std::move(config)));
}

void ModelUpdater::Enqueue(const InteractionEvent& event) {
  std::lock_guard<std::mutex> lk(queue_mu_);
  queue_.push_back(Queued{event, std::chrono::steady_clock::now()});
}

int ModelUpdater::pending() const {
  std::lock_guard<std::mutex> lk(queue_mu_);
  return static_cast<int>(queue_.size());
}

Result<UpdateResult> ModelUpdater::ApplyPending() {
  LKP_TRACE_SPAN("serve.update_pending");
  UpdateResult result;
  result.model_version = service_->model_version();

  std::vector<Queued> events;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    const size_t take = std::min(
        queue_.size(), static_cast<size_t>(config_.max_batch_events));
    events.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      events.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  }
  if (events.empty()) return result;
  const int num_events = static_cast<int>(events.size());

  for (const Queued& q : events) {
    if (q.event.user < 0 || q.event.user >= dataset_->num_users() ||
        q.event.item < 0 || q.event.item >= dataset_->num_items()) {
      return Status::OutOfRange(
          StrFormat("event (user=%d, item=%d) outside catalog", q.event.user,
                    q.event.item));
    }
  }

  // Serial pre-pass in event order: every random draw (negatives,
  // anchored pairs) comes from the updater's private Rng HERE, before
  // any parallel section, so the stream is a pure function of the event
  // sequence — the root of the replay-determinism contract.
  const bool mf_enabled = config_.mf_learning_rate > 0.0;
  NegativeSampler negatives(dataset_);
  std::vector<std::vector<int>> scored_items(events.size());
  std::vector<Status> mf_skip(events.size(), Status::OK());
  std::vector<DiverseSetPair> pairs;
  for (size_t i = 0; i < events.size(); ++i) {
    const InteractionEvent& ev = events[i].event;
    if (mf_enabled) {
      // The anchor may be a brand-new interaction the dataset has not
      // recorded, so exclude it from the negative pool explicitly.
      Result<std::vector<int>> negs = negatives.Sample(
          ev.user, config_.negatives_per_event, {ev.item}, &rng_);
      if (negs.ok()) {
        scored_items[i].reserve(1 + negs->size());
        scored_items[i].push_back(ev.item);
        scored_items[i].insert(scored_items[i].end(), negs->begin(),
                               negs->end());
      } else {
        mf_skip[i] = negs.status();  // Soft skip: saturated user.
      }
    }
    if (config_.update_kernel && config_.kernel_learning_rate > 0.0) {
      Result<DiverseSetPair> pair =
          pair_sampler_.SamplePairAnchored(ev.user, ev.item, &rng_);
      if (pair.ok()) {
        pairs.push_back(std::move(pair).ValueOrDie());
      } else {
        ++result.kernel_pairs_skipped;  // Soft skip: too few positives.
      }
    }
  }

  // Gradient phase — reads the parameter snapshot only, so it runs
  // concurrently with serving (which holds the shared epoch side).
  // Instance-order reduction keeps the summed gradient bit-identical at
  // any thread count.
  std::vector<ad::Param*> params = model_->Params();
  if (mf_enabled) {
    LKP_TRACE_SPAN("serve.update_gradients");
    std::unique_ptr<RecModel::Batch> batch = model_->StartBatch();
    auto build = [&](int i, ad::Graph* graph) -> Result<InstanceGrad> {
      InstanceGrad out;
      const size_t idx = static_cast<size_t>(i);
      if (!mf_skip[idx].ok()) {
        out.skip_reason = mf_skip[idx];
        return out;
      }
      ad::Tensor s =
          batch->ScoreItems(graph, events[idx].event.user, scored_items[idx]);
      const Matrix& sv = s.value();  // (1 + negatives) x 1; row 0 = pos.
      Matrix seed(sv.rows(), 1);
      double loss = 0.0;
      double dpos = 0.0;
      for (int j = 1; j < sv.rows(); ++j) {
        const double x = sv(0, 0) - sv(j, 0);
        loss += StableSoftplus(-x);
        const double dx = -StableSigmoid(-x);  // dLoss/dx.
        dpos += dx;
        seed(j, 0) = -dx;
      }
      seed(0, 0) = dpos;
      out.seeds.emplace_back(s, std::move(seed));
      out.loss = loss;
      return out;
    };
    LKP_ASSIGN_OR_RETURN(
        BatchGradSummary summary,
        AccumulateBatchGradients(num_events, config_.pool, build));
    LKP_RETURN_IF_ERROR(batch->Finish());
    result.events_applied = static_cast<int>(summary.contributed);
    result.events_skipped = static_cast<int>(summary.skipped.size());
    result.loss_sum = summary.loss_sum;
  }

  // Touched rows in first-touch event order — the fixed application
  // order that, with the instance-order reduction above, makes the
  // whole fold-in replay bit-identically.
  std::vector<int> touched_users;
  std::vector<int> touched_mf_items;
  if (mf_enabled) {
    std::vector<char> seen_user(static_cast<size_t>(dataset_->num_users()),
                                0);
    std::vector<char> seen_item(static_cast<size_t>(dataset_->num_items()),
                                0);
    for (size_t i = 0; i < events.size(); ++i) {
      if (!mf_skip[i].ok()) continue;
      const int user = events[i].event.user;
      if (!seen_user[static_cast<size_t>(user)]) {
        seen_user[static_cast<size_t>(user)] = 1;
        touched_users.push_back(user);
      }
      for (const int item : scored_items[i]) {
        if (!seen_item[static_cast<size_t>(item)]) {
          seen_item[static_cast<size_t>(item)] = 1;
          touched_mf_items.push_back(item);
        }
      }
    }
  }

  // Mutation phase, under the service's exclusive epoch barrier: step
  // the rows, fold the kernel pairs, hand the touched ids back for
  // targeted invalidation. Serving is quiesced for exactly this scope.
  Status fold_status = Status::OK();
  std::vector<int> kernel_touched;
  const long invalidated_before = service_->cache().invalidations();
  result.model_version = service_->ApplyUpdate(
      [&](std::vector<int>* users_out, std::vector<int>* items_out) {
        if (mf_enabled) {
          SgdStepRows(params[0], touched_users, config_.mf_learning_rate,
                      config_.mf_l2);
          SgdStepRows(params[1], touched_mf_items, config_.mf_learning_rate,
                      config_.mf_l2);
        }
        if (!pairs.empty()) {
          fold_status = diversity_->FoldInPairs(
              pairs, config_.kernel_learning_rate, config_.kernel_jitter,
              config_.pool, &kernel_touched);
        }
        model_->PrepareForEval();
        *users_out = touched_users;
        *items_out = touched_mf_items;
        // Kernel factor rows feed every cached entry containing them;
        // union them in (dedup against the MF rows).
        std::vector<char> seen(static_cast<size_t>(dataset_->num_items()),
                               0);
        for (const int item : touched_mf_items) {
          seen[static_cast<size_t>(item)] = 1;
        }
        for (const int item : kernel_touched) {
          if (!seen[static_cast<size_t>(item)]) {
            seen[static_cast<size_t>(item)] = 1;
            items_out->push_back(item);
          }
        }
      });
  // A failed fold-in applied nothing (pair gradients are validated
  // before any row moves), so the published state is consistent: MF rows
  // stepped + invalidated, kernel untouched. Surface the error.
  LKP_RETURN_IF_ERROR(fold_status);
  result.kernel_pairs = static_cast<int>(pairs.size());
  result.invalidated_entries =
      service_->cache().invalidations() - invalidated_before;
  result.touched_users = std::move(touched_users);
  result.touched_items = std::move(touched_mf_items);
  {
    std::vector<char> seen(static_cast<size_t>(dataset_->num_items()), 0);
    for (const int item : result.touched_items) {
      seen[static_cast<size_t>(item)] = 1;
    }
    for (const int item : kernel_touched) {
      if (!seen[static_cast<size_t>(item)]) {
        seen[static_cast<size_t>(item)] = 1;
        result.touched_items.push_back(item);
      }
    }
  }

  // Observability: throughput counters + event staleness (enqueue ->
  // applied). Wall-clock feeds histograms only, never the arithmetic.
  const auto applied_at = std::chrono::steady_clock::now();
  obs::Histogram* staleness = UpdateStalenessMs();
  for (const Queued& q : events) {
    const double wait_ms =
        std::chrono::duration<double, std::milli>(applied_at - q.enqueue)
            .count();
    staleness->Observe(wait_ms);
    result.max_staleness_ms = std::max(result.max_staleness_ms, wait_ms);
  }
  UpdateEventsTotal()->Inc(result.events_applied);
  UpdateEventsSkippedTotal()->Inc(result.events_skipped);
  UpdateKernelPairsTotal()->Inc(result.kernel_pairs);
  return result;
}

}  // namespace lkpdpp
