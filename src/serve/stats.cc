#include "serve/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace lkpdpp {

double PercentileOfSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

double Percentile(std::vector<double> sample, double q) {
  std::sort(sample.begin(), sample.end());
  return PercentileOfSorted(sample, q);
}

namespace {

// Nearest-rank element via one nth_element partition (no full sort).
double NthPercentile(std::vector<double>* scratch, double q) {
  const size_t n = scratch->size();
  size_t rank =
      static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank > 0) --rank;
  std::nth_element(scratch->begin(),
                   scratch->begin() + static_cast<std::ptrdiff_t>(rank),
                   scratch->end());
  return (*scratch)[rank];
}

}  // namespace

LatencySummary SummarizeLatencies(std::vector<double> window) {
  LatencySummary out;
  if (window.empty()) return out;
  out.p50 = NthPercentile(&window, 0.50);
  out.p95 = NthPercentile(&window, 0.95);
  out.p99 = NthPercentile(&window, 0.99);
  out.max = *std::max_element(window.begin(), window.end());
  return out;
}

ServeRecorder::ServeRecorder(size_t window_capacity, int stripes) {
  if (stripes < 1) stripes = 1;
  if (window_capacity < static_cast<size_t>(stripes)) {
    window_capacity = static_cast<size_t>(stripes);
  }
  stripes_.reserve(static_cast<size_t>(stripes));
  for (int s = 0; s < stripes; ++s) {
    stripes_.push_back(std::make_unique<Stripe>());
    stripes_.back()->capacity =
        window_capacity / static_cast<size_t>(stripes) +
        (static_cast<size_t>(s) <
                 window_capacity % static_cast<size_t>(stripes)
             ? 1
             : 0);
  }
  window_start_ = std::chrono::steady_clock::now();
}

namespace {

// Process-wide serve metrics the recorder publishes alongside its own
// window-scoped counters — one increment site, two consumers.
obs::Counter* ServeRequestsTotal() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("lkp_serve_requests_total");
  return counter;
}
obs::Counter* ServeBatchesTotal() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("lkp_serve_batches_total");
  return counter;
}
obs::Histogram* ServeLatencyMs() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "lkp_serve_request_latency_ms", obs::LatencyBucketsMs());
  return histogram;
}

}  // namespace

void ServeRecorder::RecordBatch(long requests, double batch_seconds,
                                const double* latencies_ms, size_t count) {
  requests_.Inc(requests);
  batches_.Inc();
  busy_seconds_.Add(batch_seconds);
  ServeRequestsTotal()->Inc(requests);
  ServeBatchesTotal()->Inc();
  obs::Histogram* latency_hist = ServeLatencyMs();
  Stripe& stripe =
      *stripes_[next_stripe_.fetch_add(1, std::memory_order_relaxed) %
                stripes_.size()];
  std::lock_guard<std::mutex> lk(stripe.mu);
  for (size_t i = 0; i < count; ++i) {
    latency_hist->Observe(latencies_ms[i]);
    if (stripe.window.size() < stripe.capacity) {
      stripe.window.push_back(latencies_ms[i]);
    } else {
      stripe.window[stripe.cursor] = latencies_ms[i];
      stripe.cursor = (stripe.cursor + 1) % stripe.capacity;
    }
  }
}

void ServeRecorder::Reset() {
  requests_.Reset();
  batches_.Reset();
  busy_seconds_.Reset();
  for (auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lk(stripe->mu);
    stripe->window.clear();
    stripe->cursor = 0;
  }
  std::lock_guard<std::mutex> lk(start_mu_);
  window_start_ = std::chrono::steady_clock::now();
}

void ServeRecorder::Snapshot(ServeStats* out) const {
  out->requests += requests_.Value();
  out->batches += batches_.Value();
  out->busy_seconds += busy_seconds_.Value();
  std::vector<double> merged;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lk(stripe->mu);
    merged.insert(merged.end(), stripe->window.begin(),
                  stripe->window.end());
  }
  out->mean_batch_occupancy =
      out->batches > 0
          ? static_cast<double>(out->requests) / out->batches
          : 0.0;
  const LatencySummary lat = SummarizeLatencies(std::move(merged));
  out->latency_p50_ms = lat.p50;
  out->latency_p95_ms = lat.p95;
  out->latency_p99_ms = lat.p99;
  out->latency_max_ms = lat.max;
  double elapsed;
  {
    std::lock_guard<std::mutex> lk(start_mu_);
    elapsed = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - window_start_)
                  .count();
  }
  out->wall_seconds = elapsed;
  out->throughput_rps = elapsed > 0.0 ? out->requests / elapsed : 0.0;
}

std::string ServeStats::ToString() const {
  return StrFormat(
      "requests=%ld batches=%ld occupancy=%.1f hit_rate=%.3f "
      "p50=%.3fms p95=%.3fms p99=%.3fms max=%.3fms rps=%.1f "
      "busy/wall=%.2f",
      requests, batches, mean_batch_occupancy, CacheHitRate(),
      latency_p50_ms, latency_p95_ms, latency_p99_ms, latency_max_ms,
      throughput_rps, wall_seconds > 0.0 ? busy_seconds / wall_seconds : 0.0);
}

}  // namespace lkpdpp
