#include "serve/stats.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace lkpdpp {

double PercentileOfSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

double Percentile(std::vector<double> sample, double q) {
  std::sort(sample.begin(), sample.end());
  return PercentileOfSorted(sample, q);
}

std::string ServeStats::ToString() const {
  return StrFormat(
      "requests=%ld batches=%ld occupancy=%.1f hit_rate=%.3f "
      "p50=%.3fms p95=%.3fms p99=%.3fms max=%.3fms rps=%.1f",
      requests, batches, mean_batch_occupancy, CacheHitRate(),
      latency_p50_ms, latency_p95_ms, latency_p99_ms, latency_max_ms,
      throughput_rps);
}

}  // namespace lkpdpp
