// Serving-side observability: latency percentiles, cache hit rate, and
// batch occupancy for RecommendationService.

#ifndef LKPDPP_SERVE_STATS_H_
#define LKPDPP_SERVE_STATS_H_

#include <string>
#include <vector>

namespace lkpdpp {

/// A point-in-time snapshot of serving counters. Latency percentiles are
/// computed over per-request wall times (Stopwatch) recorded since the
/// last ResetStats.
struct ServeStats {
  long requests = 0;
  long batches = 0;
  long cache_hits = 0;
  long cache_misses = 0;
  /// Mean number of requests per HandleBatch call.
  double mean_batch_occupancy = 0.0;
  /// Per-request latency distribution, milliseconds, over the most
  /// recent window (the service keeps a bounded ring, not full history).
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
  /// Wall time summed across HandleBatch calls and the derived request
  /// rate. Accurate for serialized callers (the bench harnesses);
  /// concurrent callers overlap in real time, so their summed wall time
  /// overstates elapsed time and throughput_rps reads conservatively low.
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;

  double CacheHitRate() const {
    const long total = cache_hits + cache_misses;
    return total > 0 ? static_cast<double>(cache_hits) / total : 0.0;
  }

  std::string ToString() const;
};

/// Nearest-rank percentile (q in [0, 1]) of an unsorted sample; 0 on an
/// empty sample. Exposed for tests and the bench harnesses.
double Percentile(std::vector<double> sample, double q);

/// Nearest-rank percentile of an already ascending-sorted sample; lets
/// callers pay one sort for several quantiles. 0 on an empty sample.
double PercentileOfSorted(const std::vector<double>& sorted, double q);

}  // namespace lkpdpp

#endif  // LKPDPP_SERVE_STATS_H_
