// Serving-side observability: latency percentiles, cache hit rate, and
// batch occupancy for RecommendationService.
//
// Scalar counters (requests, batches, busy time) live on obs::Counter/
// obs::Gauge — the same lock-free sharded-atomic primitives behind the
// process-wide MetricsRegistry, which RecordBatch also publishes into
// (lkp_serve_requests_total etc.), so the per-service Snapshot() and
// the Prometheus exposition share one source of truth. The latency
// window remains lock-striped: each recorded batch lands its latencies
// in one of a fixed set of independently locked stripes, so concurrent
// recorders — async admission flushes, multiple caller threads — never
// serialize on a single stats mutex. Stripes are merged only at
// Snapshot() time.

#ifndef LKPDPP_SERVE_STATS_H_
#define LKPDPP_SERVE_STATS_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace lkpdpp {

/// A point-in-time snapshot of serving counters. Latency percentiles are
/// computed over per-request wall times (Stopwatch) recorded since the
/// last ResetStats.
struct ServeStats {
  long requests = 0;
  long batches = 0;
  long cache_hits = 0;
  long cache_misses = 0;
  /// Mean number of requests per HandleBatch call.
  double mean_batch_occupancy = 0.0;
  /// Per-request latency distribution, milliseconds, over the most
  /// recent window (the recorder keeps a bounded ring, not full history).
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
  /// Real (monotonic) time elapsed since the stats window opened —
  /// construction or the last ResetStats. This is what throughput_rps
  /// divides by, so overlapping batches (async admission, concurrent
  /// callers) can no longer overstate the denominator: elapsed time is
  /// elapsed time no matter how many batches ran inside it.
  double wall_seconds = 0.0;
  /// Summed per-batch wall time. Under concurrency this exceeds
  /// wall_seconds (batches overlap); the ratio busy/wall is effective
  /// serving parallelism.
  double busy_seconds = 0.0;
  double throughput_rps = 0.0;

  double CacheHitRate() const {
    const long total = cache_hits + cache_misses;
    return total > 0 ? static_cast<double>(cache_hits) / total : 0.0;
  }

  std::string ToString() const;
};

/// Nearest-rank percentile (q in [0, 1]) of an unsorted sample; 0 on an
/// empty sample. Exposed for tests and the bench harnesses.
double Percentile(std::vector<double> sample, double q);

/// Nearest-rank percentile of an already ascending-sorted sample; lets
/// callers pay one sort for several quantiles. 0 on an empty sample.
double PercentileOfSorted(const std::vector<double>& sorted, double q);

/// p50/p95/p99/max of a latency window, all in one pass family.
struct LatencySummary {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Computes the summary via three std::nth_element partitions plus a
/// max scan — O(n) per snapshot instead of the O(n log n) full sort the
/// old Snapshot() path paid on every call. Nearest-rank semantics,
/// identical to Percentile() (pinned by unit tests down to the
/// 1-element and even/odd-length edge cases). Takes the window by value:
/// nth_element permutes its scratch.
LatencySummary SummarizeLatencies(std::vector<double> window);

/// Lock-striped accumulator behind RecommendationService::Snapshot().
/// RecordBatch picks a stripe round-robin and touches only that stripe's
/// mutex; Snapshot() locks each stripe once and merges. The latency
/// window budget is split evenly across stripes (each stripe keeps its
/// own bounded ring), so memory stays bounded for long-lived services.
class ServeRecorder {
 public:
  explicit ServeRecorder(size_t window_capacity = 1 << 16,
                         int stripes = kDefaultStripes);

  /// Folds one finished batch into a stripe: its request count, its
  /// wall time, and the per-request latencies.
  void RecordBatch(long requests, double batch_seconds,
                   const double* latencies_ms, size_t count);

  /// Zeroes every stripe and reopens the wall-clock window.
  void Reset();

  /// Merges every stripe into `out` (requests, batches, occupancy,
  /// latency percentiles, wall/busy seconds, throughput). Cache counters
  /// are the caller's to fill.
  void Snapshot(ServeStats* out) const;

  static constexpr int kDefaultStripes = 16;

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::vector<double> window;  // Bounded ring of latencies (ms).
    size_t cursor = 0;
    size_t capacity = 0;
  };

  // Window-scoped scalar counters (obs primitives, reset by Reset());
  // the registry's lkp_serve_* counters accumulate across windows.
  obs::Counter requests_;
  obs::Counter batches_;
  obs::Gauge busy_seconds_;

  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<unsigned> next_stripe_{0};

  mutable std::mutex start_mu_;
  std::chrono::steady_clock::time_point window_start_;
};

}  // namespace lkpdpp

#endif  // LKPDPP_SERVE_STATS_H_
