#include "serve/kernel_cache.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "obs/trace.h"

namespace lkpdpp {

namespace {

// Process-wide cache metrics, aggregated across every KernelCache in
// the process; the per-instance counters behind hits()/misses() are
// bumped at the same sites.
obs::Counter* CacheHitsTotal() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "lkp_serve_cache_hits_total");
  return counter;
}
obs::Counter* CacheMissesTotal() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "lkp_serve_cache_misses_total");
  return counter;
}
obs::Counter* CacheBuildsTotal() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "lkp_serve_cache_builds_total");
  return counter;
}
obs::Histogram* CacheBuildMs() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram("lkp_serve_cache_build_ms",
                                                  obs::LatencyBucketsMs());
  return histogram;
}
obs::Counter* ShardEvictionsTotal(int shard_index) {
  return obs::MetricsRegistry::Global().GetCounter(
      "lkp_serve_cache_evictions_total{shard=\"" +
      std::to_string(shard_index) + "\"}");
}
obs::Counter* ShardInvalidationsTotal(int shard_index) {
  return obs::MetricsRegistry::Global().GetCounter(
      "lkp_serve_cache_invalidations_total{shard=\"" +
      std::to_string(shard_index) + "\"}");
}

}  // namespace

uint64_t HashGroundSet(const std::vector<int>& items) {
  uint64_t state = 0x243F6A8885A308D3ULL ^ (items.size() * 0x100000001B3ULL);
  for (int item : items) {
    // Chain the avalanche-mixed output so every item diffuses into all
    // 64 bits (the state increment alone only carries upward).
    state ^= static_cast<uint64_t>(item) + 0x9E3779B97F4A7C15ULL;
    state = SplitMix64(&state);
  }
  return state;
}

KernelCache::KernelCache(int capacity, int shards) : capacity_(capacity) {
  LKP_CHECK_GE(capacity, 0);
  if (shards < 1) shards = 1;
  // Collapse to fewer shards rather than let per-shard capacity drop
  // below the floor: a capacity-2 cache must behave as one exact LRU,
  // not as two 1-entry shards with hash-dependent eviction.
  const int max_shards =
      capacity > 0 ? std::max(1, capacity / kMinEntriesPerShard) : 1;
  const int effective = std::min(shards, max_shards);
  shards_.reserve(static_cast<size_t>(effective));
  for (int s = 0; s < effective; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    // Distribute the budget so shard capacities sum exactly to capacity_.
    shards_.back()->capacity =
        capacity / effective + (s < capacity % effective ? 1 : 0);
    shards_.back()->evictions_metric = ShardEvictionsTotal(s);
    shards_.back()->invalidations_metric = ShardInvalidationsTotal(s);
  }
}

void KernelCache::IndexEntryLocked(Shard& shard, const Key& key,
                                   const ServedKernel& value) {
  shard.user_keys[key.user].push_back(key);
  for (int item : value.items) shard.item_keys[item].push_back(key);
}

void KernelCache::UnindexEntryLocked(Shard& shard, const Key& key,
                                     const ServedKernel& value) {
  auto remove_one = [&](std::unordered_map<int, std::vector<Key>>& buckets,
                        int id) {
    auto it = buckets.find(id);
    if (it == buckets.end()) return;
    std::vector<Key>& keys = it->second;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] == key) {
        keys[i] = keys.back();
        keys.pop_back();
        break;
      }
    }
    if (keys.empty()) buckets.erase(it);
  };
  remove_one(shard.user_keys, key.user);
  // A ground set never repeats an item, so one pass per item removes
  // exactly this entry's contribution.
  for (int item : value.items) remove_one(shard.item_keys, item);
}

std::shared_ptr<const ServedKernel> KernelCache::Get(int user,
                                                     uint64_t ground_hash) {
  const Key key{user, ground_hash};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lk(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.Inc();
    CacheMissesTotal()->Inc();
    return nullptr;
  }
  hits_.Inc();
  CacheHitsTotal()->Inc();
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void KernelCache::PutLocked(Shard& shard, const Key& key,
                            std::shared_ptr<const ServedKernel> value) {
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Concurrent fill of the same key: keep the newer value, refresh.
    // The ground sets may differ (64-bit hash collision), so re-derive
    // the reverse-index rows from each value rather than assuming they
    // match.
    UnindexEntryLocked(shard, key, *it->second->second);
    IndexEntryLocked(shard, key, *value);
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  IndexEntryLocked(shard, key, *value);
  shard.lru.emplace_front(key, std::move(value));
  shard.index[key] = shard.lru.begin();
  while (static_cast<int>(shard.lru.size()) > shard.capacity) {
    const Entry& victim = shard.lru.back();
    UnindexEntryLocked(shard, victim.first, *victim.second);
    shard.index.erase(victim.first);
    shard.lru.pop_back();
    evictions_.Inc();
    shard.evictions_metric->Inc();
  }
}

void KernelCache::EraseLocked(Shard& shard, const Key& key) {
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return;
  UnindexEntryLocked(shard, key, *it->second->second);
  shard.lru.erase(it->second);
  shard.index.erase(it);
}

long KernelCache::InvalidateUsers(const std::vector<int>& users) {
  long total = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    for (int user : users) {
      auto it = shard->user_keys.find(user);
      if (it == shard->user_keys.end()) continue;
      // EraseLocked mutates the bucket we're draining; move it out first.
      std::vector<Key> keys = std::move(it->second);
      shard->user_keys.erase(it);
      for (const Key& key : keys) {
        EraseLocked(*shard, key);
        ++total;
        shard->invalidated += 1;
        invalidations_.Inc();
        shard->invalidations_metric->Inc();
      }
    }
  }
  return total;
}

long KernelCache::InvalidateItems(const std::vector<int>& items) {
  long total = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    for (int item : items) {
      auto it = shard->item_keys.find(item);
      if (it == shard->item_keys.end()) continue;
      std::vector<Key> keys = std::move(it->second);
      shard->item_keys.erase(it);
      for (const Key& key : keys) {
        // A key can sit in several drained buckets (entry containing
        // two touched items); EraseLocked no-ops on the second visit.
        auto idx = shard->index.find(key);
        if (idx == shard->index.end()) continue;
        EraseLocked(*shard, key);
        ++total;
        shard->invalidated += 1;
        invalidations_.Inc();
        shard->invalidations_metric->Inc();
      }
    }
  }
  return total;
}

void KernelCache::Put(int user, uint64_t ground_hash,
                      std::shared_ptr<const ServedKernel> value) {
  if (capacity_ == 0) return;
  const Key key{user, ground_hash};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lk(shard.mu);
  PutLocked(shard, key, std::move(value));
}

Result<std::shared_ptr<const ServedKernel>> KernelCache::GetOrBuild(
    int user, uint64_t ground_hash, const std::vector<int>& items,
    const Builder& build, bool* was_hit) {
  const Key key{user, ground_hash};
  Shard& shard = ShardFor(key);
  if (was_hit != nullptr) *was_hit = false;

  std::shared_ptr<InFlight> flight;
  bool owner = false;
  {
    LKP_TRACE_SPAN("serve.cache_lookup");
    std::lock_guard<std::mutex> lk(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end() && it->second->second != nullptr &&
        it->second->second->items == items) {
      hits_.Inc();
      CacheHitsTotal()->Inc();
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      if (was_hit != nullptr) *was_hit = true;
      return it->second->second;
    }
    // Miss (or a 64-bit hash collision whose entry was conditioned on a
    // different ground set — rebuilt rather than served wrong).
    misses_.Inc();
    CacheMissesTotal()->Inc();
    auto [fit, inserted] = shard.inflight.try_emplace(key, nullptr);
    if (inserted) {
      fit->second = std::make_shared<InFlight>();
      owner = true;
    }
    flight = fit->second;
  }

  if (!owner) {
    // Someone else is already computing this key: wait for their result
    // instead of duplicating the O(n^3) work.
    Result<std::shared_ptr<const ServedKernel>> shared =
        Status::Internal("in-flight wait not resolved");
    {
      LKP_TRACE_SPAN("serve.cache_inflight_wait");
      std::unique_lock<std::mutex> lk(flight->mu);
      flight->cv.wait(lk, [&flight] { return flight->done; });
      shared = flight->result;
    }
    if (shared.ok() && (*shared)->items == items) return shared;
    if (!shared.ok()) return shared;
    // Astronomically rare: the in-flight build was for a colliding key
    // with different items. Fall back to a direct unguarded build.
    builds_.Inc();
    CacheBuildsTotal()->Inc();
    return build();
  }

  // Owner path: compute with NO shard lock held, publish, then release
  // the waiters.
  builds_.Inc();
  CacheBuildsTotal()->Inc();
  Stopwatch build_timer;
  Result<std::shared_ptr<const ServedKernel>> built = [&] {
    LKP_TRACE_SPAN("serve.cache_build");
    return build();
  }();
  CacheBuildMs()->Observe(build_timer.ElapsedMillis());
  if (built.ok() && *built == nullptr) {
    built = Status::Internal("kernel builder returned null");
  }
  {
    std::lock_guard<std::mutex> lk(shard.mu);
    if (built.ok() && capacity_ > 0) PutLocked(shard, key, *built);
    shard.inflight.erase(key);
  }
  {
    std::lock_guard<std::mutex> lk(flight->mu);
    flight->result = built;
    flight->done = true;
  }
  flight->cv.notify_all();
  return built;
}

void KernelCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->user_keys.clear();
    shard->item_keys.clear();
  }
}

void KernelCache::ResetCounters() {
  // Instance counters only: the registry's lkp_serve_cache_* mirrors
  // accumulate monotonically (Prometheus counter semantics).
  hits_.Reset();
  misses_.Reset();
  evictions_.Reset();
  builds_.Reset();
  invalidations_.Reset();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    shard->invalidated = 0;
  }
}

int KernelCache::size() const {
  int total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    total += static_cast<int>(shard->lru.size());
  }
  return total;
}

long KernelCache::hits() const { return hits_.Value(); }

long KernelCache::misses() const { return misses_.Value(); }

long KernelCache::evictions() const { return evictions_.Value(); }

long KernelCache::builds() const { return builds_.Value(); }

long KernelCache::invalidations() const { return invalidations_.Value(); }

std::vector<long> KernelCache::InvalidationsByShard() const {
  std::vector<long> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    out.push_back(shard->invalidated);
  }
  return out;
}

}  // namespace lkpdpp
