#include "serve/kernel_cache.h"

#include "common/logging.h"
#include "common/rng.h"

namespace lkpdpp {

uint64_t HashGroundSet(const std::vector<int>& items) {
  uint64_t state = 0x243F6A8885A308D3ULL ^ (items.size() * 0x100000001B3ULL);
  for (int item : items) {
    // Chain the avalanche-mixed output so every item diffuses into all
    // 64 bits (the state increment alone only carries upward).
    state ^= static_cast<uint64_t>(item) + 0x9E3779B97F4A7C15ULL;
    state = SplitMix64(&state);
  }
  return state;
}

KernelCache::KernelCache(int capacity) : capacity_(capacity) {
  LKP_CHECK_GE(capacity, 0);
}

std::shared_ptr<const ServedKernel> KernelCache::Get(int user,
                                                     uint64_t ground_hash) {
  const Key key{user, ground_hash};
  std::lock_guard<std::mutex> lk(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void KernelCache::Put(int user, uint64_t ground_hash,
                      std::shared_ptr<const ServedKernel> value) {
  if (capacity_ == 0) return;
  const Key key{user, ground_hash};
  std::lock_guard<std::mutex> lk(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent fill of the same key: keep the newer value, refresh.
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
  while (static_cast<int>(lru_.size()) > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

void KernelCache::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  lru_.clear();
  index_.clear();
}

void KernelCache::ResetCounters() {
  std::lock_guard<std::mutex> lk(mu_);
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

int KernelCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(lru_.size());
}

long KernelCache::hits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hits_;
}

long KernelCache::misses() const {
  std::lock_guard<std::mutex> lk(mu_);
  return misses_;
}

long KernelCache::evictions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return evictions_;
}

}  // namespace lkpdpp
