// Streaming model updates while the service is live.
//
// The offline pipeline is train-once-serve-forever: fresh interactions
// only reach serving through a full retrain + InvalidateModel (nuking
// every cached kernel). ModelUpdater opens the incremental path: it
// buffers interaction events (user u consumed item i) while
// RecommendationService serves, and ApplyPending folds a bounded batch
// of them into the live parameters —
//   * MF rows: one BPR-style SGD step (Rendle et al.) per event — the
//     positive item is scored against freshly drawn negatives, the
//     pairwise logistic loss seeds dLoss/dScore, and the gradients flow
//     through the existing autodiff/opt machinery (per-thread
//     GradientWorkspaces, instance-order reduction). MF fold-in is
//     row-sparse: only the event's user row and the scored item rows
//     move.
//   * Diversity-kernel rows: one Eq. 3 minibatch ascent step over pairs
//     anchored at the events (DiversePairSampler::SamplePairAnchored ->
//     DiversityKernel::FoldInPairs), touching only the pairs' factor
//     rows.
// Every applied batch publishes a new model_version epoch through
// RecommendationService::ApplyUpdate, which quiesces in-flight request
// batches (epoch barrier), applies the row updates, and evicts ONLY the
// cache entries whose user or items were touched (targeted
// invalidation) — everything else stays warm.
//
// Concurrency + determinism contract: Enqueue is thread-safe and can be
// called from any thread at any time. ApplyPending must be called from
// ONE driver thread at a time (it is the single writer of the model).
// For a fixed event sequence and fixed request/update interleave, the
// system replays bit-identically at any thread count: negatives and
// anchored pairs are drawn serially in event order from the updater's
// own Rng, gradients reduce in instance order (AccumulateBatchGradients)
// and pair order (FoldInPairs), rows are stepped in first-touch order,
// and the epoch barrier guarantees every response batch sees exactly one
// version. Wall-clock enters only observability (staleness/latency
// histograms), never the arithmetic.
//
// Scope: MF-style models only — Params() must be exactly {user table,
// item table} row-indexed by user/item id, so the fold-in step is
// row-sparse by construction. Models with a shared forward prefix (GCN
// propagation) spread one interaction's gradient across the whole graph
// and need the full retrain path; Create rejects them.

#ifndef LKPDPP_SERVE_MODEL_UPDATE_H_
#define LKPDPP_SERVE_MODEL_UPDATE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "kernels/diversity_kernel.h"
#include "models/rec_model.h"
#include "sampling/diverse_pairs.h"
#include "serve/service.h"

namespace lkpdpp {

/// One observed interaction: `user` consumed `item`.
struct InteractionEvent {
  int user = 0;
  int item = 0;
};

struct UpdateConfig {
  /// BPR step size for the MF user/item rows. 0 disables the MF step
  /// (kernel-only updates).
  double mf_learning_rate = 0.05;
  /// L2 weight decay applied to the touched MF rows inside the step
  /// (theta -= lr * (grad + l2 * theta)). 0 = plain SGD.
  double mf_l2 = 0.0;
  /// Negative items drawn per event for the pairwise loss.
  int negatives_per_event = 1;
  /// Fold events into the diversity-kernel factor rows too (one
  /// anchored Eq. 3 ascent step per applied batch).
  bool update_kernel = true;
  double kernel_learning_rate = 0.02;
  /// Diagonal jitter for the fold-in log-det systems.
  double kernel_jitter = 1e-4;
  /// |T+| = |T-| of each anchored pair; must not exceed the kernel rank.
  int kernel_set_size = 5;
  /// Events applied per ApplyPending call — the bound on how long the
  /// exclusive barrier (and therefore a serving stall) can last.
  int max_batch_events = 256;
  /// Seed of the updater's private Rng (negatives + anchored pairs).
  uint64_t seed = 0x0BADF00DULL;
  /// Fans out gradient computation; null = inline. Sharing the serving
  /// pool is safe (ParallelFor is reentrant and the barrier is never
  /// held while serving holds the pool).
  ThreadPool* pool = nullptr;
};

/// What one ApplyPending call did.
struct UpdateResult {
  /// Events whose MF step contributed gradients.
  int events_applied = 0;
  /// Events soft-skipped by the MF side (e.g. no negatives available).
  int events_skipped = 0;
  /// Anchored kernel pairs folded in / skipped (infeasible users).
  int kernel_pairs = 0;
  int kernel_pairs_skipped = 0;
  /// The epoch published by this batch (unchanged if nothing was
  /// pending).
  uint64_t model_version = 0;
  /// Cache entries evicted by this batch's targeted invalidation.
  long invalidated_entries = 0;
  /// Distinct user / item rows stepped, in first-touch order (items:
  /// MF rows then kernel factor rows) — exactly the ids handed to the
  /// cache for targeted invalidation.
  std::vector<int> touched_users;
  std::vector<int> touched_items;
  /// Summed BPR loss over contributing events (pre-step, diagnostics).
  double loss_sum = 0.0;
  /// Oldest applied event's enqueue -> apply wait.
  double max_staleness_ms = 0.0;
};

/// Accepts interaction events and folds them into the live model. One
/// instance per service; all referenced objects must outlive it, and
/// `model` / `diversity` must be the same objects the service serves
/// from (the whole point is mutating what serving reads, under the
/// service's epoch barrier).
class ModelUpdater {
 public:
  static Result<std::unique_ptr<ModelUpdater>> Create(
      const Dataset* dataset, RecModel* model, DiversityKernel* diversity,
      RecommendationService* service, UpdateConfig config);

  /// Buffers one event. Thread-safe, never blocks on the barrier.
  void Enqueue(const InteractionEvent& event);

  /// Buffered events not yet applied.
  int pending() const;

  /// Applies up to max_batch_events buffered events (FIFO) as ONE
  /// update epoch: gradients are computed against the current snapshot
  /// concurrently with serving (reads only), then the parameter rows
  /// are stepped and affected cache entries evicted under the service's
  /// exclusive epoch barrier, publishing a new model_version. Returns
  /// what was done; a no-op (nothing pending) returns the current
  /// version with zero counts. Call from a single driver thread.
  Result<UpdateResult> ApplyPending();

  const UpdateConfig& config() const { return config_; }

 private:
  ModelUpdater(const Dataset* dataset, RecModel* model,
               DiversityKernel* diversity, RecommendationService* service,
               UpdateConfig config);

  struct Queued {
    InteractionEvent event;
    std::chrono::steady_clock::time_point enqueue;
  };

  const Dataset* dataset_;
  RecModel* model_;
  DiversityKernel* diversity_;
  RecommendationService* service_;
  UpdateConfig config_;
  DiversePairSampler pair_sampler_;
  Rng rng_;  // Private stream: negatives + anchored pairs, event order.

  mutable std::mutex queue_mu_;
  std::deque<Queued> queue_;
};

}  // namespace lkpdpp

#endif  // LKPDPP_SERVE_MODEL_UPDATE_H_
