// What the serving path needs from an item-item kernel.
//
// RecommendationService historically hard-wired the pre-learned
// DiversityKernel (K = V V^T, exact factor always available). The
// paper's E-type variants (PSE/NPSE) serve a *trainable Gaussian* kernel
// instead — K_ij = exp(-||e_i - e_j||^2 / (2 sigma^2)) over learned
// embeddings — which has no exact thin factor at all. This interface
// narrows serving's dependency to the two things it actually consumes:
//
//   PoolSubmatrix  — exact K_S entries for a candidate pool (the primal
//                    build path and the differential oracle), and
//   PoolFactor     — a pool-local factor F with K_S ~= F F^T plus a
//                    COMPUTED entry-error bound, feeding the dual /
//                    factor-diag thin paths.
//
// DiversityKernelSource is exact (bound 0, factor rows straight off the
// trained factor). GaussianKernelSource is approximate: it builds a
// Nystrom factor by pivoted Cholesky (kernels/nystrom.h) and reports the
// exact residual bound, which the service compares against the
// explicitly-opted-in ServeConfig::approx_error_budget before trusting
// the factor; pools whose bound misses the budget fall back to the exact
// primal build, so approximation never silently degrades a response.

#ifndef LKPDPP_SERVE_KERNEL_SOURCE_H_
#define LKPDPP_SERVE_KERNEL_SOURCE_H_

#include <vector>

#include "common/result.h"
#include "kernels/diversity_kernel.h"
#include "linalg/matrix.h"

namespace lkpdpp {

/// Abstract item-item PSD kernel as consumed by serving. Implementations
/// must be immutable once handed to a service (serving reads them
/// concurrently with no locks).
class ServingKernelSource {
 public:
  virtual ~ServingKernelSource() = default;

  /// Catalog size the kernel covers.
  virtual int num_items() const = 0;

  /// Rank (column count) of the factor PoolFactor would return for a
  /// pool of this size; <= 0 when no thin factor is available. The
  /// service's cost model compares this against the pool size.
  virtual int ThinRank(int pool_size) const = 0;

  /// True when PoolFactor reproduces PoolSubmatrix exactly (up to
  /// round-off) — the thin paths then need no error budget.
  virtual bool exact() const = 0;

  /// A pool-local factor: rows is |pool| x r with K_S ~= rows * rows^T.
  struct ThinFactor {
    Matrix rows;
    /// Computed bound on max_ij |K_ij - (rows rows^T)_ij| over the pool.
    /// Exactly 0 for exact sources.
    double entry_error_bound = 0.0;
  };

  /// Builds the factor for one pool. Only called when
  /// ThinRank(pool.size()) > 0.
  virtual Result<ThinFactor> PoolFactor(const std::vector<int>& pool)
      const = 0;

  /// Exact principal submatrix K_S for the pool.
  virtual Matrix PoolSubmatrix(const std::vector<int>& pool) const = 0;
};

/// The pre-learned low-rank diversity kernel: exact factor rows, zero
/// error bound. Does not own the kernel; it must outlive this source.
class DiversityKernelSource : public ServingKernelSource {
 public:
  explicit DiversityKernelSource(const DiversityKernel* kernel)
      : kernel_(kernel) {}

  int num_items() const override { return kernel_->num_items(); }
  int ThinRank(int pool_size) const override;
  bool exact() const override { return true; }
  Result<ThinFactor> PoolFactor(const std::vector<int>& pool) const override;
  Matrix PoolSubmatrix(const std::vector<int>& pool) const override;

 private:
  const DiversityKernel* kernel_;
};

/// Trainable Gaussian kernel over item embeddings (paper's E variants),
/// served through a per-pool Nystrom factor with a computed error bound.
/// Owns a copy of the embeddings (a serving snapshot: training may keep
/// mutating its own copy).
class GaussianKernelSource : public ServingKernelSource {
 public:
  /// `max_rank` caps the Nystrom factor (0 disables the thin path
  /// entirely: ThinRank then reports 0 and serving stays exact/primal).
  /// `tolerance` stops pivoting early once the residual trace drops
  /// below it.
  GaussianKernelSource(Matrix embeddings, double sigma, int max_rank,
                       double tolerance = 0.0);

  int num_items() const override { return embeddings_.rows(); }
  int ThinRank(int pool_size) const override;
  bool exact() const override { return false; }
  Result<ThinFactor> PoolFactor(const std::vector<int>& pool) const override;
  Matrix PoolSubmatrix(const std::vector<int>& pool) const override;

  double sigma() const { return sigma_; }

 private:
  Matrix embeddings_;
  double sigma_;
  int max_rank_;
  double tolerance_;
};

}  // namespace lkpdpp

#endif  // LKPDPP_SERVE_KERNEL_SOURCE_H_
