// Sharded LRU memoization of per-(user, ground set) serving kernels.
//
// Building a personalized k-DPP over a candidate pool costs an O(n^3)
// eigendecomposition plus the ESP table (the hot path the ROADMAP flags).
// For a fixed trained model the conditioned kernel is a pure function of
// (user, ground set), so repeat requests can skip all of it. The cache
// stores the assembled quality x diversity kernel and, for sampling mode,
// the fully decomposed KDpp (eigenpairs + ESP table) behind shared_ptr,
// so an entry evicted mid-request stays alive for its readers.
//
// Concurrency: the table is lock-striped into N independent shards, each
// with its own mutex, LRU list, and counters, so concurrent lookups on
// different keys never serialize on one global lock. Eviction is LRU
// *per shard* (globally approximate LRU). Small capacities collapse to a
// single shard so the exact-LRU behavior unit tests rely on survives.
//
// The expensive build path goes through GetOrBuild: the builder runs
// with NO shard lock held, and a per-key in-flight guard makes
// concurrent misses on the same key compute once — the first caller
// builds, the rest block on the guard and share the result instead of
// duplicating (or serializing under a held lock) the O(n^3) work.
//
// Invalidation: entries are valid only for the model snapshot they were
// computed under, and every ServedKernel carries the model_version epoch
// it was built against. A streaming update (see serve/model_update.h)
// that folds fresh interactions into a handful of user/item parameter
// rows does NOT require nuking the cache: each shard keeps a reverse
// index (user id -> its keys, item id -> keys whose ground set contains
// the item), so InvalidateUsers/InvalidateItems evict exactly the
// entries whose inputs changed — any entry owned by a touched user, or
// whose pool contains a touched item — and leave everything else warm.
// Pool-membership drift needs no invalidation at all: the key includes
// the ground-set hash, so a pool recomputed from fresh scores that
// admits or drops an item simply misses and rebuilds, while the stale
// pool's entry ages out by LRU. Clear() remains the blunt fallback for
// full retrains / model swaps (the service owns this; see
// RecommendationService::InvalidateModel).

#ifndef LKPDPP_SERVE_KERNEL_CACHE_H_
#define LKPDPP_SERVE_KERNEL_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/kdpp.h"
#include "linalg/kernel_rep.h"
#include "linalg/matrix.h"
#include "obs/metrics.h"

namespace lkpdpp {

/// Everything reusable about one (user, ground set) pair.
struct ServedKernel {
  /// The exact ground set this kernel was built for. Consumers compare
  /// this against their pool on a cache hit, so a 64-bit hash collision
  /// costs one rebuild instead of silently serving the wrong kernel.
  std::vector<int> items;
  /// Conditioned kernel L = Diag(q) (alpha*K + (1-alpha)*I) Diag(q) over
  /// the pool, in pool-local indices, behind whichever KernelRep the
  /// service's cost model picked: a materialized PrimalKernelRep, or a
  /// FactorDiagKernelRep holding just the pool's factor rows + blend
  /// scalars (O(pool * rank) memory, rows synthesized on demand).
  /// MAP-rerank mode only: sampling-mode entries keep the kernel inside
  /// `kdpp` (kdpp->kernel()) instead of storing a second copy.
  std::shared_ptr<const KernelRep> rep;
  /// Decomposed k-DPP over the conditioned kernel (sampling mode only;
  /// null for MAP rerank, which needs no eigendecomposition). May be a
  /// primal k-DPP (n x n kernel + eigendecomposition), a low-rank dual
  /// one (factor + d x d dual eigendecomposition, kdpp->is_dual(),
  /// alpha == 1 only), or a factor-plus-diagonal one (W W^T + D with the
  /// full n-length spectrum from the rank-d diagonal-update solver,
  /// kdpp->is_factor_diag(), the default for blended 0 < alpha < 1
  /// pools) — the cache is representation-agnostic, and one service's
  /// cache can hold a mix when pool sizes straddle the factor rank.
  /// All three kinds ride the same versioned invalidation below.
  std::shared_ptr<const KDpp> kdpp;
  /// The model_version epoch the kernel was computed under (stamped by
  /// the service's builder). Targeted invalidation keeps entries from
  /// ever being SERVED stale, so a surviving entry's stamp only says how
  /// old its (still valid) inputs are — observability, not correctness.
  uint64_t model_version = 0;
};

/// Order-sensitive hash of a ground set (SplitMix64 chaining). Serving
/// pools are always produced in descending-score order, so equal sets
/// hash equally.
uint64_t HashGroundSet(const std::vector<int>& items);

/// Thread-safe sharded LRU cache keyed on (user, ground-set hash).
/// Capacity 0 disables storage (Get always misses, Put drops) but the
/// in-flight guard of GetOrBuild still deduplicates concurrent builds.
class KernelCache {
 public:
  /// `capacity` is the total entry budget, distributed across shards.
  /// The effective shard count is clamped so every shard holds at least
  /// kMinEntriesPerShard entries (exact single-shard LRU for small
  /// caches); pass `shards` <= 1 to force one shard.
  explicit KernelCache(int capacity, int shards = kDefaultShards);

  /// Returns the entry and refreshes its recency, or null on miss.
  std::shared_ptr<const ServedKernel> Get(int user, uint64_t ground_hash);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// entry of its shard when that shard is over capacity.
  void Put(int user, uint64_t ground_hash,
           std::shared_ptr<const ServedKernel> value);

  /// Builds one ServedKernel; runs with no cache lock held.
  using Builder =
      std::function<Result<std::shared_ptr<const ServedKernel>>()>;

  /// The memoized build path: returns the cached entry for (user,
  /// ground_hash) whose `items` equal `items`, or runs `build` to create
  /// it. Concurrent calls for the same key run the builder ONCE — the
  /// winner computes (lock-free for the cache), the rest wait on the
  /// per-key in-flight guard and share the result. Builder failures
  /// propagate to the owner and every waiter, and nothing is cached.
  /// `was_hit`, when non-null, reports whether the entry came from the
  /// cache (piggybacking on another caller's in-flight build counts as a
  /// miss: the kernel was not in the cache when this call arrived).
  Result<std::shared_ptr<const ServedKernel>> GetOrBuild(
      int user, uint64_t ground_hash, const std::vector<int>& items,
      const Builder& build, bool* was_hit = nullptr);

  /// Targeted invalidation: evicts every entry keyed on one of `users`
  /// (any ground set), via the per-shard user reverse index. Returns the
  /// number of entries evicted. O(shards + evicted), not O(cache).
  long InvalidateUsers(const std::vector<int>& users);

  /// Targeted invalidation: evicts every entry whose ground set contains
  /// one of `items`, via the per-shard item reverse index. Returns the
  /// number of entries evicted.
  long InvalidateItems(const std::vector<int>& items);

  void Clear();

  /// Zeroes hit/miss/eviction/build/invalidation counters without
  /// touching the entries (used by ServeStats windows).
  void ResetCounters();

  int capacity() const { return capacity_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int size() const;
  long hits() const;
  long misses() const;
  long evictions() const;
  /// Number of Builder invocations GetOrBuild actually ran. With the
  /// in-flight guard, concurrent misses on one key contribute one build.
  long builds() const;
  /// Entries evicted by InvalidateUsers/InvalidateItems (NOT counted as
  /// LRU evictions), total and per shard.
  long invalidations() const;
  std::vector<long> InvalidationsByShard() const;

  static constexpr int kDefaultShards = 16;
  /// Floor on per-shard capacity; below it the cache collapses to fewer
  /// shards (capacity < 2 * kMinEntriesPerShard means exactly one).
  static constexpr int kMinEntriesPerShard = 8;

 private:
  struct Key {
    int user;
    uint64_t hash;
    bool operator==(const Key& o) const {
      return user == o.user && hash == o.hash;
    }
  };
  struct KeyHasher {
    size_t operator()(const Key& k) const {
      // SplitMix64-style finalizer over the pair.
      uint64_t x = k.hash ^ (static_cast<uint64_t>(k.user) * 0x9E3779B97F4A7C15ULL);
      x ^= x >> 30;
      x *= 0xBF58476D1CE4E5B9ULL;
      x ^= x >> 27;
      return static_cast<size_t>(x);
    }
  };
  using Entry = std::pair<Key, std::shared_ptr<const ServedKernel>>;

  /// One caller computes, the rest block on `cv` until `done`.
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Result<std::shared_ptr<const ServedKernel>> result =
        Result<std::shared_ptr<const ServedKernel>>(
            Status::Internal("in-flight build not finished"));
  };

  struct Shard {
    mutable std::mutex mu;
    int capacity = 0;
    std::list<Entry> lru;  // Front = most recently used.
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHasher> index;
    std::unordered_map<Key, std::shared_ptr<InFlight>, KeyHasher> inflight;
    // Reverse indices for targeted invalidation: every resident key,
    // bucketed by its user and by each item of its entry's ground set.
    // Maintained by PutLocked/EraseLocked so they mirror `index`
    // exactly; empty buckets are erased so the maps stay proportional
    // to resident entries, not to ids ever seen.
    std::unordered_map<int, std::vector<Key>> user_keys;
    std::unordered_map<int, std::vector<Key>> item_keys;
    // Entries evicted by targeted invalidation (shard.mu held).
    long invalidated = 0;
    // Registry counters lkp_serve_cache_evictions_total{shard="<i>"} /
    // lkp_serve_cache_invalidations_total{shard="<i>"}, shared by every
    // cache with a shard at this index (process-wide per-shard
    // attribution).
    obs::Counter* evictions_metric = nullptr;
    obs::Counter* invalidations_metric = nullptr;
  };

  /// Shard selection re-mixes the key hash through SplitMix64 before
  /// the modulus. Reusing KeyHasher's value verbatim would make the
  /// shard index a pure function of the SAME bits the per-shard
  /// unordered_map buckets on, so every key landing in shard i would
  /// share `hash % num_shards == i` — correlated bucket structure
  /// inside every shard. The finalizer decorrelates the two uses.
  static size_t ShardIndexFor(size_t key_hash, size_t num_shards) {
    uint64_t x = static_cast<uint64_t>(key_hash) + 0x9E3779B97F4A7C15ULL;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return static_cast<size_t>(x) % num_shards;
  }

  Shard& ShardFor(const Key& key) {
    return *shards_[ShardIndexFor(KeyHasher{}(key), shards_.size())];
  }
  const Shard& ShardFor(const Key& key) const {
    return *shards_[ShardIndexFor(KeyHasher{}(key), shards_.size())];
  }

  /// Inserts or refreshes `key` in `shard` (shard.mu must be held).
  void PutLocked(Shard& shard, const Key& key,
                 std::shared_ptr<const ServedKernel> value);

  /// Removes `key`'s LRU node + index + reverse-index buckets
  /// (shard.mu must be held). No-op if the key is not resident.
  void EraseLocked(Shard& shard, const Key& key);

  /// Reverse-index bookkeeping (shard.mu must be held).
  static void IndexEntryLocked(Shard& shard, const Key& key,
                               const ServedKernel& value);
  static void UnindexEntryLocked(Shard& shard, const Key& key,
                                 const ServedKernel& value);

  const int capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Cache-instance counters behind hits()/misses()/evictions()/builds()
  // and ServeStats — obs primitives (lock-free sharded atomics), bumped
  // at the same sites as their process-wide lkp_serve_cache_* mirrors
  // in the MetricsRegistry.
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter evictions_;
  obs::Counter builds_;
  obs::Counter invalidations_;
};

}  // namespace lkpdpp

#endif  // LKPDPP_SERVE_KERNEL_CACHE_H_
