// LRU memoization of per-(user, ground set) serving kernels.
//
// Building a personalized k-DPP over a candidate pool costs an O(n^3)
// eigendecomposition plus the ESP table (the hot path the ROADMAP flags).
// For a fixed trained model the conditioned kernel is a pure function of
// (user, ground set), so repeat requests can skip all of it. The cache
// stores the assembled quality x diversity kernel and, for sampling mode,
// the fully decomposed KDpp (eigenpairs + ESP table) behind shared_ptr,
// so an entry evicted mid-request stays alive for its readers.
//
// Invalidation: entries are valid only for the model snapshot they were
// computed under. Retraining or swapping the model requires Clear() (the
// service owns this; see RecommendationService).

#ifndef LKPDPP_SERVE_KERNEL_CACHE_H_
#define LKPDPP_SERVE_KERNEL_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/kdpp.h"
#include "linalg/matrix.h"

namespace lkpdpp {

/// Everything reusable about one (user, ground set) pair.
struct ServedKernel {
  /// The exact ground set this kernel was built for. Consumers compare
  /// this against their pool on a cache hit, so a 64-bit hash collision
  /// costs one rebuild instead of silently serving the wrong kernel.
  std::vector<int> items;
  /// Conditioned kernel L = Diag(q) (alpha*K + (1-alpha)*I) Diag(q) over
  /// the pool, in pool-local indices. MAP-rerank mode only: sampling-mode
  /// entries keep the kernel inside `kdpp` (kdpp->kernel()) instead of
  /// storing a second copy.
  Matrix kernel;
  /// Decomposed k-DPP over the conditioned kernel (sampling mode only;
  /// null for MAP rerank, which needs no eigendecomposition). May be a
  /// primal k-DPP (n x n kernel + eigendecomposition) or a low-rank dual
  /// one (factor + d x d dual eigendecomposition, kdpp->is_dual()) —
  /// the cache is representation-agnostic, and one service's cache can
  /// hold a mix when pool sizes straddle the factor rank.
  std::shared_ptr<const KDpp> kdpp;
};

/// Order-sensitive hash of a ground set (SplitMix64 chaining). Serving
/// pools are always produced in descending-score order, so equal sets
/// hash equally.
uint64_t HashGroundSet(const std::vector<int>& items);

/// Thread-safe LRU cache keyed on (user, ground-set hash). Capacity 0
/// disables caching (Get always misses, Put drops).
class KernelCache {
 public:
  explicit KernelCache(int capacity);

  /// Returns the entry and refreshes its recency, or null on miss.
  std::shared_ptr<const ServedKernel> Get(int user, uint64_t ground_hash);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// entry when over capacity.
  void Put(int user, uint64_t ground_hash,
           std::shared_ptr<const ServedKernel> value);

  void Clear();

  /// Zeroes hit/miss/eviction counters without touching the entries
  /// (used by ServeStats windows).
  void ResetCounters();

  int capacity() const { return capacity_; }
  int size() const;
  long hits() const;
  long misses() const;
  long evictions() const;

 private:
  struct Key {
    int user;
    uint64_t hash;
    bool operator==(const Key& o) const {
      return user == o.user && hash == o.hash;
    }
  };
  struct KeyHasher {
    size_t operator()(const Key& k) const {
      // SplitMix64-style finalizer over the pair.
      uint64_t x = k.hash ^ (static_cast<uint64_t>(k.user) * 0x9E3779B97F4A7C15ULL);
      x ^= x >> 30;
      x *= 0xBF58476D1CE4E5B9ULL;
      x ^= x >> 27;
      return static_cast<size_t>(x);
    }
  };
  using Entry = std::pair<Key, std::shared_ptr<const ServedKernel>>;

  const int capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // Front = most recently used.
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHasher> index_;
  long hits_ = 0;
  long misses_ = 0;
  long evictions_ = 0;
};

}  // namespace lkpdpp

#endif  // LKPDPP_SERVE_KERNEL_CACHE_H_
