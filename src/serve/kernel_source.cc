#include "serve/kernel_source.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "kernels/nystrom.h"

namespace lkpdpp {

int DiversityKernelSource::ThinRank(int pool_size) const {
  (void)pool_size;
  return kernel_->rank();
}

Result<ServingKernelSource::ThinFactor> DiversityKernelSource::PoolFactor(
    const std::vector<int>& pool) const {
  ThinFactor out;
  out.rows = kernel_->FactorRows(pool);
  out.entry_error_bound = 0.0;
  return out;
}

Matrix DiversityKernelSource::PoolSubmatrix(
    const std::vector<int>& pool) const {
  return kernel_->Submatrix(pool);
}

GaussianKernelSource::GaussianKernelSource(Matrix embeddings, double sigma,
                                           int max_rank, double tolerance)
    : embeddings_(std::move(embeddings)),
      sigma_(sigma),
      max_rank_(max_rank),
      tolerance_(tolerance) {}

int GaussianKernelSource::ThinRank(int pool_size) const {
  if (max_rank_ <= 0) return 0;  // Approximation not opted into.
  return std::min(max_rank_, pool_size);
}

Result<ServingKernelSource::ThinFactor> GaussianKernelSource::PoolFactor(
    const std::vector<int>& pool) const {
  LKP_ASSIGN_OR_RETURN(
      NystromApproximation approx,
      GaussianNystrom(embeddings_, pool, sigma_,
                      ThinRank(static_cast<int>(pool.size())), tolerance_));
  ThinFactor out;
  out.rows = std::move(approx.factor);
  out.entry_error_bound = approx.entry_error_bound;
  return out;
}

Matrix GaussianKernelSource::PoolSubmatrix(
    const std::vector<int>& pool) const {
  const int n = static_cast<int>(pool.size());
  const int d = embeddings_.cols();
  const double inv_two_sigma2 = 1.0 / (2.0 * sigma_ * sigma_);
  Matrix k(n, n);
  for (int a = 0; a < n; ++a) {
    k(a, a) = 1.0;
    const double* ea = embeddings_.RowPtr(pool[static_cast<size_t>(a)]);
    for (int b = a + 1; b < n; ++b) {
      const double* eb = embeddings_.RowPtr(pool[static_cast<size_t>(b)]);
      double sq = 0.0;
      for (int c = 0; c < d; ++c) {
        const double diff = ea[c] - eb[c];
        sq += diff * diff;
      }
      const double v = std::exp(-sq * inv_two_sigma2);
      k(a, b) = v;
      k(b, a) = v;
    }
  }
  return k;
}

}  // namespace lkpdpp
